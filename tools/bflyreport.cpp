// bflyreport — run-report analytics CLI over bfly::obs::diff.
//
//   bflyreport diff <a.json> <b.json> [--thresholds <file>] [--no-config-check]
//       Markdown delta table between two schema-v1 run reports (counters,
//       gauges, histogram percentiles, span timings, artifact stats).
//
//   bflyreport trend <reports.jsonl> --metric <key> [--threshold <rel>]
//       Per-run series of one flattened metric across a JSONL trajectory
//       (one report per line), with an ASCII sparkline and a regression flag
//       comparing the newest run against the median of the earlier ones.
//
//   bflyreport check --baseline <dir> [--thresholds <file>] [--reports <dir>]
//                    [--bench-dir <dir>]
//       CI gate: for every <name>.json baseline in <dir>, obtain the current
//       report — <reports>/<name>.run.json if present, otherwise by running
//       <bench-dir>/<name> --benchmark_filter=none — diff it against the
//       baseline, classify with the thresholds file (default
//       <dir>/thresholds.json), and exit non-zero on any FAIL.
//
//   bflyreport paths <report.json> [--top <k>]
//       Path-blame analytics over a report's v2 "flight" block (per-packet
//       hop traces recorded by a flight_budget sweep point): the top-K
//       slowest delivered packets with their exact latency decomposition
//       (queue wait + transit + detour == latency), followed by the
//       per-link / per-stage wait blame table.
//
//   bflyreport recovery <report.json>
//       Live-fault recovery analytics from a report's artifact_stats: the
//       per-event recovery table (fault cycle, pre-fault throughput,
//       time-to-recover, transient packet loss) a scheduled bench run
//       exports, the spare-chip failover counters, and the MTBF/MTTR
//       availability curve.
//
//   bflyreport watch <telemetry.jsonl> [--once] [--interval-ms <n>]
//       Tails the live-progress JSONL stream a resumable sweep appends
//       ($BFLY_TELEMETRY_FILE / SweepRunOptions.telemetry_path) and renders
//       in-place progress: completed/total bar, point throughput, ETA from
//       wall-clock record timestamps, and per-stage / in-flight sparklines
//       from the latest telemetry samples.  Tolerates a torn final line
//       (an append in progress) and a file that does not exist yet; exits
//       when the stream's "done" record arrives.  --once renders the current
//       state once and exits — the scriptable form.
//
// Exit codes: 0 = ok (warnings allowed), 1 = regression / failed gate,
// 2 = usage or I/O error.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/diff.hpp"
#include "obs/flight.hpp"

namespace fs = std::filesystem;
using namespace bfly;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bflyreport diff <a.json> <b.json> [--thresholds <file>] [--no-config-check]\n"
               "  bflyreport trend <reports.jsonl> --metric <key> [--threshold <rel>]\n"
               "  bflyreport check --baseline <dir> [--thresholds <file>] [--reports <dir>]\n"
               "                   [--bench-dir <dir>]\n"
               "  bflyreport paths <report.json> [--top <k>]\n"
               "  bflyreport recovery <report.json>\n"
               "  bflyreport watch <telemetry.jsonl> [--once] [--interval-ms <n>]\n");
  return 2;
}

/// Strict full-string numeric flag parsing: "250x", "", and "1e999" are
/// usage errors with a message naming the flag, never silently truncated
/// (std::stoi("250x") == 250) or turned into an unhandled exception.
double parse_double_flag(const std::string& flag, const std::string& text) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (text.empty() || pos != text.size() || !std::isfinite(value)) {
    throw InvalidArgument(flag + " expects a finite number, got '" + text + "'");
  }
  return value;
}

int parse_int_flag(const std::string& flag, const std::string& text) {
  std::size_t pos = 0;
  int value = 0;
  try {
    value = std::stoi(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (text.empty() || pos != text.size()) {
    throw InvalidArgument(flag + " expects an integer, got '" + text + "'");
  }
  return value;
}

/// Pulls the value of `flag` out of args (mutating it); nullopt when absent.
std::optional<std::string> take_option(std::vector<std::string>* args, const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args->size(); ++i) {
    if ((*args)[i] == flag) {
      std::string value = (*args)[i + 1];
      args->erase(args->begin() + static_cast<std::ptrdiff_t>(i),
                  args->begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return value;
    }
  }
  return std::nullopt;
}

bool take_switch(std::vector<std::string>* args, const std::string& flag) {
  const auto it = std::find(args->begin(), args->end(), flag);
  if (it == args->end()) return false;
  args->erase(it);
  return true;
}

int run_diff(std::vector<std::string> args) {
  std::optional<obs::Thresholds> thresholds;
  if (const auto path = take_option(&args, "--thresholds")) {
    thresholds = obs::Thresholds::load(*path);
  }
  obs::DiffOptions options;
  options.require_matching_config = !take_switch(&args, "--no-config-check");
  if (args.size() != 2) return usage();

  const obs::RunReport a = obs::RunReport::load(args[0]);
  const obs::RunReport b = obs::RunReport::load(args[1]);
  const obs::ReportDiff diff = obs::diff_reports(a, b, options);
  std::cout << obs::render_diff_markdown(diff, thresholds ? &*thresholds : nullptr);
  if (thresholds) {
    obs::CheckResult result = obs::check_diff(diff, *thresholds);
    if (!b.is_complete()) {
      // An interrupted candidate legitimately moves or loses metrics: flag
      // the regressions as warnings instead of failing the comparison.
      result = obs::degrade_failures_to_warnings(std::move(result));
      std::cout << "\n_candidate run is " << b.status
                << " (" << b.points_completed << "/" << b.points_total
                << " points); failures downgraded to warnings_\n";
    }
    std::cout << "\n" << result.rows.size() << " metrics compared: " << result.num_warn
              << " warn, " << result.num_fail << " fail\n";
    return result.ok() ? 0 : 1;
  }
  return 0;
}

/// Eight-level sparkline of the series, min..max normalized.
std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  double lo = values[0];
  double hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    const double t = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    out += kLevels[std::min<std::size_t>(7, static_cast<std::size_t>(t * 8.0))];
  }
  return out;
}

int run_trend(std::vector<std::string> args) {
  const auto metric = take_option(&args, "--metric");
  const double threshold =
      parse_double_flag("--threshold", take_option(&args, "--threshold").value_or("0.10"));
  if (threshold < 0.0) throw InvalidArgument("--threshold must be >= 0");
  if (!metric || args.size() != 1) return usage();

  struct Entry {
    std::string run_id;
    std::string git;
    double value = 0.0;
  };
  std::vector<Entry> series;
  std::size_t skipped = 0;
  // Tolerant trajectory load: a crash mid-append leaves a torn final line,
  // which must not take the whole history with it.  Bad lines warn on
  // stderr; the exit is nonzero only when *nothing* parses.
  const std::vector<obs::RunReport> reports = obs::load_report_lines(args[0], &std::cerr, &skipped);
  if (reports.empty() && skipped > 0) {
    std::fprintf(stderr, "bflyreport: no parsable report in '%s' (%zu line(s) skipped)\n",
                 args[0].c_str(), skipped);
    return 2;
  }
  std::size_t without_metric = 0;
  for (const obs::RunReport& report : reports) {
    try {
      series.push_back({report.run_id, report.git_describe, obs::metric_value(report, *metric)});
    } catch (const InvalidArgument&) {
      // Runs that predate the metric are expected in a long-lived trajectory;
      // the series starts at the first run that records it.
      ++without_metric;
    }
  }
  if (series.empty()) {
    std::fprintf(stderr, "bflyreport: no report in '%s' has metric '%s'\n", args[0].c_str(),
                 metric->c_str());
    return 2;
  }

  std::cout << "# bflyreport trend — " << *metric << " (" << series.size() << " runs)\n\n";
  if (without_metric > 0) {
    std::cout << "_skipped " << without_metric << " earlier run(s) without this metric_\n\n";
  }
  std::cout << "| run | git | " << *metric << " | delta% |\n|---|---|---:|---:|\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::cout << "| `" << series[i].run_id << "` | " << series[i].git << " | "
              << obs::format_metric_value(series[i].value) << " | ";
    if (i == 0 || series[i - 1].value == 0.0) {
      std::cout << "— |\n";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.2f%%",
                    (series[i].value - series[i - 1].value) / std::abs(series[i - 1].value) *
                        100.0);
      std::cout << buf << " |\n";
    }
  }
  std::vector<double> values;
  for (const Entry& e : series) values.push_back(e.value);
  std::cout << "\n" << sparkline(values) << "\n";

  if (series.size() >= 2) {
    // Newest run vs the median of all earlier runs: robust to one noisy entry.
    std::vector<double> prior(values.begin(), values.end() - 1);
    std::nth_element(prior.begin(), prior.begin() + static_cast<std::ptrdiff_t>(prior.size() / 2),
                     prior.end());
    const double median = prior[prior.size() / 2];
    const double last = values.back();
    if (median != 0.0 && std::abs(last - median) / std::abs(median) > threshold) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%+.2f%%", (last - median) / std::abs(median) * 100.0);
      std::cout << "\nREGRESSION FLAG: latest run is " << buf << " vs prior median "
                << obs::format_metric_value(median) << " (threshold ±"
                << static_cast<int>(threshold * 100.0) << "%)\n";
    } else {
      std::cout << "\nno regression: latest within ±" << static_cast<int>(threshold * 100.0)
                << "% of prior median " << obs::format_metric_value(median) << "\n";
    }
  }
  return 0;
}

/// Runs a bench binary with benchmarks filtered out and returns its stdout
/// (the single-line JSON run report; tables stay on the inherited stderr).
std::string capture_bench_report(const fs::path& binary) {
  const std::string command = "'" + binary.string() + "' --benchmark_filter=none";
  if (binary.string().find('\'') != std::string::npos) {
    throw InvalidArgument("bench path must not contain quotes: " + binary.string());
  }
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) throw InvalidArgument("cannot run " + command);
  std::string out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, got);
  const int rc = pclose(pipe);
  if (rc != 0) {
    throw InvalidArgument(binary.string() + " exited with status " + std::to_string(rc));
  }
  return out;
}

int run_check(std::vector<std::string> args) {
  const auto baseline_dir = take_option(&args, "--baseline");
  const auto thresholds_path = take_option(&args, "--thresholds");
  const auto reports_dir = take_option(&args, "--reports");
  const std::string bench_dir = take_option(&args, "--bench-dir").value_or("build/bench");
  if (!baseline_dir || !args.empty()) return usage();

  obs::Thresholds thresholds;  // default: everything must match exactly
  const fs::path default_thresholds = fs::path(*baseline_dir) / "thresholds.json";
  if (thresholds_path) {
    thresholds = obs::Thresholds::load(*thresholds_path);
  } else if (fs::exists(default_thresholds)) {
    thresholds = obs::Thresholds::load(default_thresholds.string());
  }

  std::vector<fs::path> baselines;
  for (const fs::directory_entry& entry : fs::directory_iterator(*baseline_dir)) {
    if (entry.path().extension() == ".json" && entry.path().filename() != "thresholds.json") {
      baselines.push_back(entry.path());
    }
  }
  std::sort(baselines.begin(), baselines.end());
  if (baselines.empty()) {
    std::fprintf(stderr, "bflyreport: no baselines under '%s'\n", baseline_dir->c_str());
    return 2;
  }

  int total_fail = 0;
  int total_warn = 0;
  for (const fs::path& baseline_path : baselines) {
    const std::string name = baseline_path.stem().string();
    const obs::RunReport baseline = obs::RunReport::load(baseline_path.string());

    obs::RunReport current = [&] {
      if (reports_dir) {
        const fs::path candidate = fs::path(*reports_dir) / (name + ".run.json");
        if (fs::exists(candidate)) return obs::RunReport::load(candidate.string());
      }
      const fs::path binary = fs::path(bench_dir) / name;
      if (!fs::exists(binary)) {
        throw InvalidArgument("no current report for '" + name + "': " + binary.string() +
                              " not found (build it, or pass --reports)");
      }
      return obs::RunReport::parse(capture_bench_report(binary));
    }();

    const obs::ReportDiff diff = obs::diff_reports(baseline, current);
    obs::CheckResult result = obs::check_diff(diff, thresholds);
    const bool degraded = !current.is_complete();
    if (degraded) {
      // Partial / cancelled runs degrade gracefully: the gate flags them
      // instead of exploding on metrics an interrupted sweep never produced.
      result = obs::degrade_failures_to_warnings(std::move(result));
    }
    total_fail += result.num_fail;
    total_warn += result.num_warn;

    std::cout << "## " << name << ": " << (result.ok() ? "ok" : "FAIL") << " ("
              << result.rows.size() << " metrics, " << result.num_warn << " warn, "
              << result.num_fail << " fail)\n";
    if (degraded) {
      std::cout << "  note: current run is " << current.status << " ("
                << current.points_completed << "/" << current.points_total
                << " points); failures downgraded to warnings\n";
    }
    for (const obs::CheckResult::Row& row : result.rows) {
      if (row.severity == obs::Severity::kPass) continue;
      std::cout << (row.severity == obs::Severity::kFail ? "  FAIL " : "  warn ")
                << row.delta.key << ": " << obs::format_metric_value(row.delta.before) << " -> "
                << obs::format_metric_value(row.delta.after) << "\n";
    }
    for (const std::string& key : result.missing_in_b) {
      std::cout << (degraded ? "  warn " : "  FAIL ") << key
                << ": present in baseline, missing in current run\n";
    }
    for (const std::string& key : result.new_in_b) {
      std::cout << "  warn " << key << ": new metric, not in baseline (refresh baselines?)\n";
    }
    for (const std::string& key : result.histograms_absent_in_b) {
      std::cout << "  warn " << key
                << ": histogram in baseline, absent in current run (full replay records no"
                   " observations)\n";
    }
  }
  std::cout << "\nbaseline check: " << baselines.size() << " benches, " << total_warn
            << " warn, " << total_fail << " fail -> " << (total_fail == 0 ? "PASS" : "FAIL")
            << "\n";
  return total_fail == 0 ? 0 : 1;
}

// --- paths -------------------------------------------------------------------

int run_paths(std::vector<std::string> args) {
  const int top = parse_int_flag("--top", take_option(&args, "--top").value_or("10"));
  if (top <= 0) throw InvalidArgument("--top must be positive");
  if (args.size() != 1) return usage();

  const obs::RunReport report = obs::RunReport::load(args[0]);
  const json::Value* block = report.doc.find("flight");
  if (block == nullptr) {
    std::fprintf(stderr,
                 "bflyreport: report '%s' has no flight block (record one by running a sweep"
                 " point with a flight_budget)\n",
                 args[0].c_str());
    return 2;
  }
  const obs::FlightRecorder rec = obs::FlightRecorder::from_json(*block);

  u64 delivered_count = 0;
  u64 dropped_count = 0;
  std::vector<const obs::FlightTrace*> delivered;
  for (const obs::FlightTrace& t : rec.traces()) {
    if (t.outcome == obs::FlightOutcome::kDelivered) {
      ++delivered_count;
      delivered.push_back(&t);
    } else if (t.outcome == obs::FlightOutcome::kDropped) {
      ++dropped_count;
    }
  }
  std::cout << "# bflyreport paths — " << report.name << " (B_" << rec.n() << ", "
            << rec.traces().size() << " of " << rec.packets_seen() << " packets sampled: "
            << delivered_count << " delivered, " << dropped_count << " dropped, "
            << rec.traces().size() - delivered_count - dropped_count << " in flight)\n\n";
  if (delivered.empty()) {
    std::cout << "_no delivered trace to decompose_\n";
    return 0;
  }

  // Slowest first; ties broken by creation order so the table is stable.
  std::sort(delivered.begin(), delivered.end(),
            [](const obs::FlightTrace* a, const obs::FlightTrace* b) {
              const u64 la = a->end_cycle + 1 - a->injected_at;
              const u64 lb = b->end_cycle + 1 - b->injected_at;
              if (la != lb) return la > lb;
              return a->packet_id < b->packet_id;
            });
  const std::size_t k = std::min(delivered.size(), static_cast<std::size_t>(top));
  std::cout << "## top " << k << " slowest delivered packets\n\n"
            << "| packet | src -> dst | injected | latency | queue wait | transit | detour |"
               " hops |\n|---:|---|---:|---:|---:|---:|---:|---:|\n";
  for (std::size_t i = 0; i < k; ++i) {
    const obs::FlightTrace& t = *delivered[i];
    const obs::FlightDecomposition d = obs::decompose_flight(t, rec.n());
    std::cout << "| " << t.packet_id << " | " << t.src << " -> " << t.dst << " | "
              << t.injected_at << " | " << d.latency << " | " << d.queue_wait << " | "
              << d.transit << " | " << d.detour << " | " << t.hops.size() << " |\n";
  }

  const obs::FlightBlame blame = obs::flight_blame(rec.traces(), rec.n(), rec.rows());
  const std::size_t nlinks = std::min<std::size_t>(blame.links.size(), 10);
  std::cout << "\n## link blame (top " << nlinks << " by total wait, "
            << blame.links.size() << " links visited)\n\n"
            << "| link | stage | visits | wait sum | wait max | wait p99 |\n"
               "|---:|---:|---:|---:|---:|---:|\n";
  for (std::size_t i = 0; i < nlinks; ++i) {
    const obs::LinkBlame& lb = blame.links[i];
    std::cout << "| " << lb.link << " | " << lb.stage << " | " << lb.visits << " | "
              << lb.wait_sum << " | " << lb.wait_max << " | " << lb.wait_p99 << " |\n";
  }
  std::cout << "\n## stage blame\n\n| stage | visits | wait sum |\n|---:|---:|---:|\n";
  for (std::size_t s = 0; s < blame.stage_wait_sum.size(); ++s) {
    std::cout << "| " << s << " | " << blame.stage_visits[s] << " | " << blame.stage_wait_sum[s]
              << " |\n";
  }
  return 0;
}

// --- recovery ----------------------------------------------------------------

int run_recovery(std::vector<std::string> args) {
  if (args.size() != 1) return usage();
  const obs::RunReport report = obs::RunReport::load(args[0]);
  const json::Value* stats = report.doc.find("artifact_stats");
  const json::Value* recovery = stats != nullptr ? stats->find("recovery") : nullptr;
  const json::Value* live = stats != nullptr ? stats->find("live_fault") : nullptr;
  const json::Value* availability = stats != nullptr ? stats->find("availability") : nullptr;
  if (recovery == nullptr && live == nullptr && availability == nullptr) {
    std::fprintf(stderr,
                 "bflyreport: report '%s' has no recovery/live_fault/availability artifacts"
                 " (record them by running a sweep point with a FaultSchedule attached)\n",
                 args[0].c_str());
    return 2;
  }
  std::cout << "# bflyreport recovery — " << report.name << "\n";

  if (live != nullptr) {
    std::cout << "\n## live fault counters\n\n| counter | value |\n|---|---:|\n";
    for (const auto& [key, value] : live->members()) {
      std::cout << "| " << key << " | " << obs::format_metric_value(value.as_double())
                << " |\n";
    }
  }

  if (recovery != nullptr) {
    std::cout << "\n## recovery per fail epoch\n\n"
              << "| fault cycle | pre throughput | recovered | recovered cycle |"
                 " time to recover | packets lost |\n|---:|---:|---|---:|---:|---:|\n";
    for (std::size_t i = 0; i < recovery->size(); ++i) {
      const json::Value& ev = recovery->at(i);
      std::cout << "| " << ev.at("fault_cycle").as_u64() << " | "
                << obs::format_metric_value(ev.at("pre_throughput").as_double()) << " | "
                << (ev.at("recovered").as_bool() ? "yes" : "NO") << " | "
                << ev.at("recovered_cycle").as_u64() << " | "
                << ev.at("time_to_recover_cycles").as_u64() << " | "
                << ev.at("packets_lost").as_u64() << " |\n";
    }
    const json::Value* residual = stats->find("failover_residual_throughput");
    if (residual != nullptr) {
      std::cout << "\nresidual throughput after all repairs: "
                << obs::format_metric_value(residual->as_double())
                << " of the pre-fault steady state\n";
    }
  }

  if (availability != nullptr) {
    std::cout << "\n## availability curve\n\n"
              << "| mtbf | mttr | fails | repairs | availability | recovered | avg ttr |"
                 " lost | killed |\n|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
    for (std::size_t i = 0; i < availability->size(); ++i) {
      const json::Value& pt = availability->at(i);
      std::cout << "| " << pt.at("mtbf").as_u64() << " | " << pt.at("mttr").as_u64() << " | "
                << pt.at("fail_events").as_u64() << " | " << pt.at("repair_events").as_u64()
                << " | " << obs::format_metric_value(pt.at("availability").as_double())
                << " | " << pt.at("events_recovered").as_u64() << "/"
                << pt.at("events_total").as_u64() << " | "
                << obs::format_metric_value(pt.at("avg_time_to_recover").as_double()) << " | "
                << pt.at("packets_lost").as_u64() << " | " << pt.at("packets_killed").as_u64()
                << " |\n";
    }
  }
  return 0;
}

// --- watch -------------------------------------------------------------------

/// Everything the watch renderer knows, folded record by record from the
/// telemetry stream (exec's TelemetrySink emits start/point/samples/done).
struct WatchState {
  bool started = false;
  bool done = false;
  std::string done_status;
  u64 total = 0;
  u64 completed = 0;
  u64 replayed = 0;
  u64 failed = 0;
  // Latest completed point.
  bool have_point = false;
  u64 point_index = 0;
  double offered_load = 0.0;
  double throughput = 0.0;
  double avg_latency = 0.0;
  bool faulty = false;
  // Latest telemetry samples flush.
  std::vector<double> in_flight;
  std::vector<double> stage_occ;
  u64 sample_stride = 0;
  u64 num_samples = 0;
  // ETA bookkeeping from record wall-clock stamps: rate since the first
  // point record seen by *this* watcher (replayed points land in a burst
  // before the first simulated one, so the start record is a bad epoch).
  bool have_epoch = false;
  u64 epoch_t_ms = 0;
  u64 epoch_completed = 0;
  u64 last_t_ms = 0;
  std::size_t lines_skipped = 0;
};

void fold_record(WatchState* state, const json::Value& rec) {
  const std::string& type = rec.at("type").as_string();
  if (type == "start") {
    state->started = true;
    state->total = rec.at("total").as_u64();
    state->replayed = rec.at("replayed").as_u64();
    state->completed = state->replayed;
  } else if (type == "point") {
    state->have_point = true;
    state->point_index = rec.at("index").as_u64();
    state->completed = rec.at("completed").as_u64();  // includes replayed points
    state->total = rec.at("total").as_u64();
    state->offered_load = rec.at("offered_load").as_double();
    state->throughput = rec.at("throughput").as_double();
    state->avg_latency = rec.at("avg_latency").as_double();
    state->faulty = rec.at("faulty").as_bool();
    state->last_t_ms = rec.at("t_ms").as_u64();
    if (!state->have_epoch) {
      state->have_epoch = true;
      state->epoch_t_ms = state->last_t_ms;
      state->epoch_completed = state->completed;
    }
  } else if (type == "samples") {
    state->sample_stride = rec.at("stride").as_u64();
    state->num_samples = rec.at("num_samples").as_u64();
    const json::Value& in_flight = rec.at("in_flight");
    state->in_flight.clear();
    for (std::size_t i = 0; i < in_flight.size(); ++i) {
      state->in_flight.push_back(in_flight.at(i).as_double());
    }
    const json::Value& stage_occ = rec.at("stage_occ");
    state->stage_occ.clear();
    for (std::size_t i = 0; i < stage_occ.size(); ++i) {
      state->stage_occ.push_back(stage_occ.at(i).as_double());
    }
  } else if (type == "done") {
    state->done = true;
    state->done_status = rec.at("status").as_string();
    state->completed = rec.at("completed").as_u64();
    state->total = rec.at("total").as_u64();
    state->failed = rec.at("failed").as_u64();
  }
  // Unknown record types from a future writer fold to nothing — tolerated.
}

std::string format_duration(double seconds) {
  char buf[32];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%dm%02ds", static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%dh%02dm", static_cast<int>(seconds) / 3600,
                  static_cast<int>(seconds) % 3600 / 60);
  }
  return buf;
}

std::vector<std::string> render_watch(const WatchState& state, const std::string& path) {
  std::vector<std::string> lines;
  char buf[256];
  if (!state.started) {
    lines.push_back("watch " + path + " — waiting for run to start...");
    return lines;
  }

  const double frac =
      state.total > 0 ? static_cast<double>(state.completed) / static_cast<double>(state.total)
                      : 0.0;
  constexpr int kBarWidth = 24;
  const int filled = static_cast<int>(frac * kBarWidth);
  std::string bar;
  for (int i = 0; i < kBarWidth; ++i) bar += i < filled ? "█" : "░";
  std::snprintf(buf, sizeof(buf), "watch %s — [%s] %llu/%llu points (%.0f%%, %llu replayed)",
                path.c_str(), bar.c_str(), static_cast<unsigned long long>(state.completed),
                static_cast<unsigned long long>(state.total), frac * 100.0,
                static_cast<unsigned long long>(state.replayed));
  lines.emplace_back(buf);

  if (state.have_point) {
    std::snprintf(buf, sizeof(buf),
                  "latest: point %llu%s  load %.3f  throughput %.4f  avg latency %.2f",
                  static_cast<unsigned long long>(state.point_index),
                  state.faulty ? " (faulty)" : "", state.offered_load, state.throughput,
                  state.avg_latency);
    lines.emplace_back(buf);
  }

  if (state.done) {
    std::snprintf(buf, sizeof(buf), "done: %s (%llu failed)", state.done_status.c_str(),
                  static_cast<unsigned long long>(state.failed));
    lines.emplace_back(buf);
  } else if (state.have_epoch && state.completed > state.epoch_completed &&
             state.last_t_ms > state.epoch_t_ms) {
    const double elapsed_s =
        static_cast<double>(state.last_t_ms - state.epoch_t_ms) / 1000.0;
    const double rate =
        static_cast<double>(state.completed - state.epoch_completed) / elapsed_s;
    const double remaining = static_cast<double>(state.total - state.completed);
    std::snprintf(buf, sizeof(buf), "ETA ~%s at %.2f points/s",
                  format_duration(remaining / rate).c_str(), rate);
    lines.emplace_back(buf);
  } else {
    lines.emplace_back("ETA —");
  }

  if (!state.in_flight.empty()) {
    std::snprintf(buf, sizeof(buf), "  (%llu samples, stride %llu)",
                  static_cast<unsigned long long>(state.num_samples),
                  static_cast<unsigned long long>(state.sample_stride));
    lines.push_back("in-flight  " + sparkline(state.in_flight) + buf);
  }
  if (!state.stage_occ.empty()) {
    lines.push_back("stage occ  " + sparkline(state.stage_occ) + "  (queue occupancy by stage)");
  }
  return lines;
}

int run_watch(std::vector<std::string> args) {
  const bool once = take_switch(&args, "--once");
  const int interval_ms =
      parse_int_flag("--interval-ms", take_option(&args, "--interval-ms").value_or("250"));
  if (interval_ms <= 0) throw InvalidArgument("--interval-ms must be positive");
  if (args.size() != 1) return usage();
  const std::string path = args[0];
  if (once && !fs::exists(path)) {
    std::fprintf(stderr, "bflyreport: telemetry file '%s' does not exist\n", path.c_str());
    return 2;
  }

  WatchState state;
  std::streamoff offset = 0;
  std::string carry;  // torn tail of the previous read (an append in flight)

  const auto poll = [&] {
    std::ifstream in(path, std::ios::binary);
    if (!in) return;
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < offset) {
      // Truncated/rotated under us: start over from a clean slate.
      offset = 0;
      carry.clear();
      state = WatchState{};
    }
    if (size <= offset) return;
    in.seekg(offset);
    std::string chunk(static_cast<std::size_t>(size - offset), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    offset = size;
    carry += chunk;
    std::size_t start = 0;
    for (std::size_t nl = carry.find('\n'); nl != std::string::npos;
         nl = carry.find('\n', start)) {
      const std::string line = carry.substr(start, nl - start);
      start = nl + 1;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      try {
        fold_record(&state, json::Value::parse(line));
      } catch (const std::exception&) {
        // Corrupt line (should not happen — appends are durable and the torn
        // tail has no newline yet): count and keep tailing.
        ++state.lines_skipped;
      }
    }
    carry.erase(0, start);
  };

  int rendered = 0;
  const auto redraw = [&](const std::vector<std::string>& lines) {
    if (rendered > 0) std::printf("\x1b[%dA", rendered);
    for (const std::string& line : lines) std::printf("\x1b[2K%s\n", line.c_str());
    std::fflush(stdout);
    rendered = static_cast<int>(lines.size());
  };

  while (true) {
    poll();
    if (once) {
      // Scriptable form: plain lines, no cursor movement.
      for (const std::string& line : render_watch(state, path)) {
        std::printf("%s\n", line.c_str());
      }
      return 0;
    }
    redraw(render_watch(state, path));
    if (state.done) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "diff") return run_diff(std::move(args));
    if (command == "trend") return run_trend(std::move(args));
    if (command == "check") return run_check(std::move(args));
    if (command == "paths") return run_paths(std::move(args));
    if (command == "recovery") return run_recovery(std::move(args));
    if (command == "watch") return run_watch(std::move(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bflyreport: %s\n", e.what());
    return 2;
  }
  return usage();
}
