// bflyd: the bfly request daemon.
//
// Serves layout / packaging / census / sweep requests over a JSONL socket
// protocol (serve/protocol.hpp) with per-request deadlines, bounded
// admission, single-flight memoization, and a crash-recoverable result
// cache.  SIGTERM / SIGINT drain gracefully: admission closes, in-flight
// work finishes or cancels within the drain budget, the cache journal is
// compacted, and the process exits 0 with the final ledger on stderr.
//
// Startup prints exactly one line to stdout:
//
//   bflyd listening unix <path>
//   bflyd listening tcp 127.0.0.1:<port>
//
// (tests parse the resolved port out of this line), after a cache-recovery
// summary on stderr when a journal was loaded.
//
// Exit codes: 0 clean shutdown, 2 usage error (matching the bench/tool
// convention).

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "serve/daemon.hpp"
#include "util/flags.hpp"

namespace {

bfly::serve::Daemon* g_daemon = nullptr;

extern "C" void handle_shutdown_signal(int) {
  // Async-signal-safe: Daemon::shutdown is one write(2) on a self-pipe.
  if (g_daemon != nullptr) g_daemon->shutdown();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH | --port N] [options]\n"
      "\n"
      "transport (default: --socket /tmp/bflyd.sock):\n"
      "  --socket PATH            listen on a Unix-domain socket\n"
      "  --port N                 listen on 127.0.0.1:N (0 = kernel-assigned)\n"
      "\n"
      "serving options:\n"
      "  --max-inflight N         dispatcher threads            [1, 256]    (default 4)\n"
      "  --queue-depth N          bounded admission queue       [1, 65536]  (default 256)\n"
      "  --default-deadline-ms N  deadline when a request has none [1, 3600000] (default 10000)\n"
      "  --max-deadline-ms N      ceiling on requested deadlines   [1, 86400000] (default 300000)\n"
      "  --engine-threads N       per-compute pool parallelism  [1, 4096]   (0 = auto)\n"
      "  --cache FILE             persist results to a JSONL journal (crash-recoverable)\n"
      "  --cache-max-entries N    LRU cap on cached results     [1, 16777216] (default 65536)\n"
      "  --cache-max-mb N         LRU cap on cached bytes (MiB) [1, 1048576] (default 256)\n"
      "  --cache-compact-mb N     journal size (MiB) that triggers compaction\n"
      "                                                         [1, 1048576] (default 512)\n"
      "  --drain-ms N             graceful-drain budget on SIGTERM [0, 600000] (default 5000)\n"
      "  --max-connections N      concurrent connections        [1, 4096]   (default 128)\n",
      argv0);
  return 2;
}

// Strict bounded flag parsing (util/flags.hpp): anything malformed — not a
// value, trailing junk, out of range — is exit 2 + usage, never a silent
// default or clamp.
bool parse_flag_u64(int argc, char** argv, int* i, const char* name, bfly::u64 min_value,
                    bfly::u64 max_value, bfly::u64* out, bool* matched) {
  if (std::strcmp(argv[*i], name) != 0) {
    *matched = false;
    return true;
  }
  *matched = true;
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s requires a value\n", argv[0], name);
    return false;
  }
  ++*i;
  if (!bfly::util::parse_bounded_u64(argv[*i], min_value, max_value, out)) {
    std::fprintf(stderr, "%s: invalid %s value \"%s\" (expected integer in [%llu, %llu])\n",
                 argv[0], name, argv[*i], static_cast<unsigned long long>(min_value),
                 static_cast<unsigned long long>(max_value));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using bfly::u64;
  bfly::serve::DaemonOptions options;
  options.unix_socket_path = "/tmp/bflyd.sock";

  for (int i = 1; i < argc; ++i) {
    bool matched = false;
    if (std::strcmp(argv[i], "--socket") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --socket requires a path\n", argv[0]);
        return usage(argv[0]);
      }
      options.unix_socket_path = argv[++i];
      options.tcp_port = -1;
      continue;
    }
    if (std::strcmp(argv[i], "--cache") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --cache requires a path\n", argv[0]);
        return usage(argv[0]);
      }
      options.server.cache_path = argv[++i];
      continue;
    }
    u64 value = 0;
    if (!parse_flag_u64(argc, argv, &i, "--port", 0, 65535, &value, &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.tcp_port = static_cast<int>(value);
      options.unix_socket_path.clear();
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--max-inflight", 1, 256, &value, &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.server.max_inflight = static_cast<std::size_t>(value);
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--queue-depth", 1, 65536, &value, &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.server.queue_depth = static_cast<std::size_t>(value);
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--default-deadline-ms", 1, 3'600'000, &value,
                        &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.server.default_deadline_ms = value;
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--max-deadline-ms", 1, 86'400'000, &value, &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.server.max_deadline_ms = value;
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--engine-threads", 0, 4096, &value, &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.server.engine_threads = static_cast<std::size_t>(value);
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--cache-max-entries", 1, 16'777'216, &value,
                        &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.server.cache_limits.max_entries = static_cast<std::size_t>(value);
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--cache-max-mb", 1, 1'048'576, &value, &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.server.cache_limits.max_payload_bytes = static_cast<std::size_t>(value) << 20;
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--cache-compact-mb", 1, 1'048'576, &value,
                        &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.server.cache_limits.journal_compact_bytes = static_cast<std::size_t>(value)
                                                          << 20;
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--drain-ms", 0, 600'000, &value, &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.drain_budget_ms = value;
      continue;
    }
    if (!parse_flag_u64(argc, argv, &i, "--max-connections", 1, 4096, &value, &matched)) {
      return usage(argv[0]);
    }
    if (matched) {
      options.max_connections = static_cast<std::size_t>(value);
      continue;
    }
    std::fprintf(stderr, "%s: unknown argument \"%s\"\n", argv[0], argv[i]);
    return usage(argv[0]);
  }

  try {
    bfly::serve::Daemon daemon(options);
    g_daemon = &daemon;
    std::signal(SIGTERM, handle_shutdown_signal);
    std::signal(SIGINT, handle_shutdown_signal);
    std::signal(SIGPIPE, SIG_IGN);  // peer-gone writes surface as EPIPE, not death

    const bfly::serve::ServeCache& cache = daemon.server().cache();
    if (!options.server.cache_path.empty()) {
      std::fprintf(stderr, "bflyd: cache loaded %zu entries from %s (skipped %zu torn lines)\n",
                   cache.loaded_entries(), options.server.cache_path.c_str(),
                   cache.loaded_lines_skipped());
    }
    if (!options.unix_socket_path.empty()) {
      std::printf("bflyd listening unix %s\n", options.unix_socket_path.c_str());
    } else {
      std::printf("bflyd listening tcp 127.0.0.1:%d\n", daemon.port());
    }
    std::fflush(stdout);

    const bfly::serve::LedgerSnapshot ledger = daemon.run();
    g_daemon = nullptr;
    std::fprintf(stderr,
                 "bflyd: drained; accepted=%llu completed=%llu cancelled=%llu shed=%llu "
                 "failed=%llu cache_hits=%llu coalesced=%llu\n",
                 static_cast<unsigned long long>(ledger.accepted),
                 static_cast<unsigned long long>(ledger.completed),
                 static_cast<unsigned long long>(ledger.cancelled),
                 static_cast<unsigned long long>(ledger.shed),
                 static_cast<unsigned long long>(ledger.failed),
                 static_cast<unsigned long long>(ledger.cache_hits),
                 static_cast<unsigned long long>(ledger.coalesced));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bflyd: fatal: %s\n", e.what());
    return 1;
  }
}
