// Experiment E12 (Sec. 2.2 / A.2): FFT executed over the swap-butterfly's
// physical links equals the DFT for every parameterization -- the functional
// proof of the transformation -- plus throughput of the network FFT.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "core/bfly.hpp"
#include "util/prng.hpp"

namespace {

using namespace bfly;

std::vector<cplx> random_signal(u64 n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = {rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  return x;
}

void print_verification_table() {
  std::fprintf(stderr, "=== E12: FFT over swap-butterfly links vs reference FFT ===\n");
  std::fprintf(stderr, "%-14s %6s %10s %14s\n", "k", "size", "max err", "vs naive DFT");
  const std::vector<std::vector<int>> shapes = {
      {1, 1}, {2, 2}, {3, 3, 3}, {4, 3, 3}, {4, 4, 4}, {2, 2, 2, 2}, {5, 5, 5}, {6, 6, 6}};
  for (const auto& k : shapes) {
    const SwapButterfly sb(k);
    const auto x = random_signal(sb.rows(), 42);
    const auto net = fft_on_swap_butterfly(sb, x);
    const double err = max_abs_error(net, fft_reference(x));
    double naive_err = -1.0;
    if (sb.rows() <= 1024) naive_err = max_abs_error(net, dft_naive(x));
    std::fprintf(stderr, "(%d", k[0]);
    for (std::size_t i = 1; i < k.size(); ++i) std::fprintf(stderr, ",%d", k[i]);
    std::fprintf(stderr, ")%*s %6llu %10.2e ", static_cast<int>(11 - 2 * k.size()), "",
                static_cast<unsigned long long>(sb.rows()), err);
    if (naive_err >= 0) {
      std::fprintf(stderr, "%14.2e\n", naive_err);
    } else {
      std::fprintf(stderr, "%14s\n", "-");
    }
  }
  std::fprintf(stderr, "paper: the ISN is the FFT flow graph of the swap network, so the\n");
  std::fprintf(stderr, "       bypassed network computes the DFT exactly.\n\n");
}

void BM_FftOnSwapButterfly(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SwapButterfly sb({k, k, k});
  const auto x = random_signal(sb.rows(), 1);
  for (auto _ : state) {
    const auto out = fft_on_swap_butterfly(sb, x);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) *
                          static_cast<benchmark::IterationCount>(sb.rows()) * sb.dimension());
}
BENCHMARK(BM_FftOnSwapButterfly)->Arg(2)->Arg(4)->Arg(6);

void BM_FftReference(benchmark::State& state) {
  const u64 n = pow2(static_cast<int>(state.range(0)));
  const auto x = random_signal(n, 2);
  for (auto _ : state) {
    const auto out = fft_reference(x);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) *
                          static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_FftReference)->Arg(6)->Arg(12)->Arg(18);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_fft");
  print_verification_table();
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
