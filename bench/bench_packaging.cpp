// Experiments E5 + E6 (Sec. 2.3, Theorem 2.1): off-module links of the
// row-block and nucleus partitions vs the closed forms, the naive baseline,
// and Theorem 2.1's bounds.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <vector>

#include "core/bfly.hpp"

namespace {

using namespace bfly;

void print_rowblock_table() {
  std::fprintf(stderr, "=== E5: row-block packaging (Sec. 2.3) ===\n");
  std::fprintf(stderr, "%4s %4s %4s %10s %10s %10s %10s %8s\n", "n", "l", "k1", "modules", "avg-off",
              "formula", "naive", "gain");
  for (const int k1 : {2, 3, 4}) {
    for (const int l : {2, 3, 4}) {
      const int n = l * k1;
      if (n > 16) continue;
      const std::vector<int> k(static_cast<std::size_t>(l), k1);
      const SwapButterfly sb(k);
      const PartitionStats ours =
          evaluate_partition(sb.graph(), row_block_partition(sb, k1));
      const double formula = formulas::offmodule_links_per_node(l, k1, n);
      const Butterfly bf(n);
      const PartitionStats naive =
          evaluate_partition(bf.graph(), naive_row_partition(bf, pow2(k1)));
      std::fprintf(stderr, "%4d %4d %4d %10llu %10.4f %10.4f %10.4f %7.2fx\n", n, l, k1,
                  static_cast<unsigned long long>(ours.num_modules),
                  ours.avg_offmodule_links_per_node, formula,
                  naive.avg_offmodule_links_per_node,
                  naive.avg_offmodule_links_per_node / ours.avg_offmodule_links_per_node);
    }
  }
  std::fprintf(stderr, "paper: avg off-module links/node = 4(l-1)(2^k1-1)/((n+1)2^k1);\n");
  std::fprintf(stderr, "       naive consecutive-row packing ~2/node; Theta(log N) gain.\n\n");
}

void print_theorem21_table() {
  std::fprintf(stderr, "=== E6: nucleus partition vs Theorem 2.1 bounds ===\n");
  std::fprintf(stderr, "%-12s %10s %12s %12s %12s %12s\n", "k", "modules", "max nodes", "bound",
              "max off", "bound");
  for (const auto& k : {std::vector<int>{3, 3, 3}, std::vector<int>{4, 4, 4},
                        std::vector<int>{4, 4, 2}, std::vector<int>{5, 5, 5},
                        std::vector<int>{3, 3, 3, 3}}) {
    const SwapButterfly sb(k);
    const PartitionStats s = evaluate_partition(sb.graph(), nucleus_partition(sb));
    std::fprintf(stderr, "(%d", k[0]);
    for (std::size_t i = 1; i < k.size(); ++i) std::fprintf(stderr, ",%d", k[i]);
    std::fprintf(stderr, ")%*s %10llu %12llu %12llu %12llu %12llu\n",
                static_cast<int>(10 - 2 * k.size()), "",
                static_cast<unsigned long long>(s.num_modules),
                static_cast<unsigned long long>(s.max_nodes_per_module),
                static_cast<unsigned long long>(theorem21_max_nodes(k[0])),
                static_cast<unsigned long long>(s.max_offmodule_links_per_module),
                static_cast<unsigned long long>(theorem21_max_offlinks(k[0])));
  }
  std::fprintf(stderr, "paper: modules hold <= 2^k1 k1 nodes (we count the boundary stage too:\n");
  std::fprintf(stderr, "       <= 2^k1 (k1+1)) with <= 2^{k1+2} off-module links each.\n\n");
}

void print_lower_bound_table() {
  std::fprintf(stderr, "=== E6b: routing lower bound Omega(M / log R) ===\n");
  std::fprintf(stderr, "%4s %12s %14s %14s %10s\n", "n", "avg dist", "per-node inj", "pins LB/node",
              "ours/node");
  for (const int n : {6, 8, 10}) {
    const double dist = average_node_distance(n, 100000, 2026);
    // Capacity argument: 4 links per interior node, each carrying <= 1
    // packet per cycle; per-node injection <= 4 / avg distance.
    const double inj = 4.0 / dist;
    // A module must export traffic at rate ~ per-node injection: the pins
    // lower bound per node is Theta(1/log R).
    const std::vector<int> k(3, n / 3);
    const SwapButterfly sb(k);
    const PartitionStats ours = evaluate_partition(sb.graph(), row_block_partition(sb, n / 3));
    std::fprintf(stderr, "%4d %12.2f %14.4f %14.4f %10.4f\n", n, dist, inj, inj,
                ours.avg_offmodule_links_per_node);
  }
  std::fprintf(stderr, "paper: max injection rate Theta(1/log R) -> Omega(M/log R) off-module\n");
  std::fprintf(stderr, "       links; the row-block scheme meets it within a constant.\n\n");
}

void print_multilevel_table() {
  std::fprintf(stderr, "=== E5b: multi-level packaging hierarchy (Sec. 2.3, extension) ===\n");
  std::fprintf(stderr, "%-12s %6s %14s %10s %12s %12s\n", "k", "level", "rows/module", "modules",
              "avg off", "formula");
  for (const auto& k : {std::vector<int>{3, 3, 3}, std::vector<int>{2, 2, 2, 2},
                        std::vector<int>{4, 4, 4}}) {
    const SwapButterfly sb(k);
    for (const PackagingLevel& level : multilevel_packaging(sb)) {
      std::fprintf(stderr, "(%d", k[0]);
      for (std::size_t i = 1; i < k.size(); ++i) std::fprintf(stderr, ",%d", k[i]);
      std::fprintf(stderr, ")%*s %6d %14llu %10llu %12.4f %12.4f\n",
                  static_cast<int>(10 - 2 * k.size()), "", level.level,
                  static_cast<unsigned long long>(level.rows_per_module),
                  static_cast<unsigned long long>(level.stats.num_modules),
                  level.stats.avg_offmodule_links_per_node, level.predicted_avg);
    }
  }
  std::fprintf(stderr, "paper: at higher packaging levels only higher-level swap links escape,\n");
  std::fprintf(stderr, "       so per-node off-module links shrink further up the hierarchy.\n\n");
}

void BM_EvaluatePartition(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SwapButterfly sb({k, k, k});
  const Graph g = sb.graph();
  const Partition p = row_block_partition(sb, k);
  for (auto _ : state) {
    const PartitionStats s = evaluate_partition(g, p);
    benchmark::DoNotOptimize(s.total_offmodule_links);
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) *
                          static_cast<benchmark::IterationCount>(g.num_edges()));
}
BENCHMARK(BM_EvaluatePartition)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_NucleusPartition(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SwapButterfly sb({k, k, k});
  for (auto _ : state) {
    const Partition p = nucleus_partition(sb);
    benchmark::DoNotOptimize(p.module_of.data());
  }
}
BENCHMARK(BM_NucleusPartition)->Arg(3)->Arg(4)->Arg(5);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_packaging");
  print_rowblock_table();
  print_multilevel_table();
  print_theorem21_table();
  print_lower_bound_table();
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
