// Extension experiment (paper conclusion): grid layouts of hypercubes with
// the same collinear-channel machinery, measured against the Thompson lower
// bound (N/2)^2, plus Benes permutation-routing throughput (the switch
// substrate from the introduction).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <numeric>

#include "core/bfly.hpp"
#include "util/prng.hpp"

namespace {

using namespace bfly;

void print_hypercube_table() {
  std::fprintf(stderr, "=== extension: hypercube grid layouts vs (N/2)^2 lower bound ===\n");
  std::fprintf(stderr, "%4s %8s %16s %14s %8s %12s %8s\n", "n", "grid", "area", "bound", "ratio",
              "max wire", "legal");
  for (const int n : {6, 8, 10, 12, 14}) {
    const HypercubeLayoutPlan plan(n);
    const LayoutMetrics m = plan.metrics();
    const double bound = HypercubeLayoutPlan::area_lower_bound(n);
    const char* legal = "-";
    if (n <= 12) {
      legal = check_multilayer(plan.materialize()).ok ? "yes" : "NO";
    }
    std::fprintf(stderr, "%4d %3llux%-4llu %16lld %14.0f %8.3f %12lld %8s\n", n,
                static_cast<unsigned long long>(plan.grid_rows()),
                static_cast<unsigned long long>(plan.grid_cols()),
                static_cast<long long>(m.area), bound, static_cast<double>(m.area) / bound,
                static_cast<long long>(m.max_wire_length), legal);
  }
  std::fprintf(stderr, "\n");
}

void print_hypercube_layers() {
  std::fprintf(stderr, "--- hypercube area vs layers (n = 12) ---\n");
  std::fprintf(stderr, "%4s %16s %12s\n", "L", "area", "max wire");
  for (const int L : {2, 4, 6, 8}) {
    HypercubeLayoutOptions opt;
    opt.layers = L;
    const HypercubeLayoutPlan plan(12, opt);
    const LayoutMetrics m = plan.metrics();
    std::fprintf(stderr, "%4d %16lld %12lld\n", L, static_cast<long long>(m.area),
                static_cast<long long>(m.max_wire_length));
  }
  std::fprintf(stderr, "\n");
}

void print_benes_table() {
  std::fprintf(stderr, "=== extension: Benes permutation routing (looping algorithm) ===\n");
  std::fprintf(stderr, "%4s %8s %10s %14s\n", "n", "ports", "stages", "perms/sec est");
  for (const int n : {4, 6, 8, 10}) {
    const Benes b(n);
    Xoshiro256 rng(1);
    std::vector<u64> perm(b.rows());
    std::iota(perm.begin(), perm.end(), 0);
    for (u64 i = b.rows() - 1; i > 0; --i) std::swap(perm[i], perm[rng.below(i + 1)]);
    const auto t0 = std::chrono::steady_clock::now();
    int reps = 0;
    while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(50)) {
      const auto paths = b.route_permutation(perm);
      benchmark::DoNotOptimize(paths.data());
      ++reps;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::fprintf(stderr, "%4d %8llu %10d %14.0f\n", n, static_cast<unsigned long long>(b.rows()),
                b.num_stages(), reps / secs);
  }
  std::fprintf(stderr, "\n");
}

void BM_HypercubeMetrics(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const HypercubeLayoutPlan plan(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.metrics().area);
  }
}
BENCHMARK(BM_HypercubeMetrics)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_BenesRoute(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Benes b(n);
  Xoshiro256 rng(2);
  std::vector<u64> perm(b.rows());
  std::iota(perm.begin(), perm.end(), 0);
  for (u64 i = b.rows() - 1; i > 0; --i) std::swap(perm[i], perm[rng.below(i + 1)]);
  for (auto _ : state) {
    const auto paths = b.route_permutation(perm);
    benchmark::DoNotOptimize(paths.data());
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) *
                          static_cast<benchmark::IterationCount>(b.rows()));
}
BENCHMARK(BM_BenesRoute)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_hypercube");
  print_hypercube_table();
  print_hypercube_layers();
  print_benes_table();
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
