// Experiment E13 (+ E6 lower bound): random routing on butterflies.
// Saturation throughput per network node is Theta(1/log R), which is the
// quantity behind Theorem 2.1's Omega(M/log R) pin bound.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/bfly.hpp"
#include "obs/timeseries.hpp"
#include "routing/reference_sim.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace bfly;

constexpr double kCurveLoads[] = {0.1, 0.3, 0.5, 0.7, 0.9, 1.0};

std::vector<SweepPoint> curve_points(int n, u64 telemetry_budget = 0, u64 flight_budget = 0) {
  std::vector<SweepPoint> pts;
  for (const double load : kCurveLoads) {
    SweepPoint p;
    p.n = n;
    p.offered_load = load;
    p.cycles = 4000;
    p.seed = 2026;
    p.warmup_cycles = 500;
    p.telemetry_budget = telemetry_budget;
    // Flight tracing on the load-0.5 point only: the same representative
    // point the Little's-law check reads, comfortably under saturation so
    // most sampled packets terminate as deliveries.
    if (load == 0.5) p.flight_budget = flight_budget;
    pts.push_back(p);
  }
  return pts;
}

std::vector<SweepOutcome> print_saturation_curve(int n, bfly::bench::BenchSession* session) {
  std::fprintf(stderr, "=== E13: saturation curve of B_%d (uniform random traffic) ===\n", n);
  std::fprintf(stderr, "%10s %12s %12s %14s %10s\n", "offered", "throughput", "latency", "inj/node",
              "max queue");
  // One batched sweep through the resilient driver: outcomes stay bitwise
  // identical to the historical per-load simulate_saturation calls, and a
  // killed bench resumes from $BFLY_CHECKPOINT_DIR instead of starting over.
  // Telemetry is on (128-sample budget) — the probe never changes outcomes,
  // and the collected series feed the Little's-law self-check below.
  const std::vector<SweepPoint> pts = curve_points(n, 128, 64);
  std::vector<SweepOutcome> outcomes = session->resilient_sweep("curve", pts);
  for (const SweepOutcome& o : outcomes) {
    const SaturationPoint& p = o.point;
    std::fprintf(stderr, "%10.2f %12.4f %12.2f %14.4f %10llu\n", p.offered_load, p.throughput,
                p.avg_latency, p.per_node_injection,
                static_cast<unsigned long long>(p.max_queue));
  }
  std::fprintf(stderr, "\n");
  return outcomes;
}

/// Little's-law self-check (L = lambda * W) on one telemetered curve point,
/// printed and exported as a 1.0 / 0.0 artifact stat the baseline gate
/// matches exactly.  Runs on the load-0.5 point: comfortably under
/// saturation, so the queueing system actually reaches the steady state the
/// law assumes (at load 1.0 drops dominate and no steady window exists).
void check_littles_law(const std::vector<SweepOutcome>& curve,
                       bfly::bench::BenchSession* session) {
  const SweepOutcome* chosen = nullptr;
  for (const SweepOutcome& o : curve) {
    if (o.point.offered_load == 0.5 && !o.timeseries.empty()) chosen = &o;
  }
  if (chosen == nullptr) return;  // BFLY_OBS=OFF or full replay: nothing measured
  const obs::LittlesLawCheck check = obs::littles_law_check(chosen->timeseries);
  std::fprintf(stderr, "--- Little's law self-check (B_8, load 0.5, steady-state window) ---\n");
  std::fprintf(stderr, "%12s %12s %12s %12s %8s\n", "L", "lambda", "W", "rel error", "pass");
  std::fprintf(stderr, "%12.3f %12.4f %12.3f %12.4f %8s\n\n", check.l, check.lambda, check.w,
               check.rel_error, check.applicable && check.pass ? "yes" : "NO");
  session->artifact("timeseries_littles_law_pass",
                    check.applicable && check.pass ? 1.0 : 0.0);
  // The series itself rides along as the report's v2 "timeseries" block.
  session->timeseries(chosen->timeseries.to_json());
}

/// Flight-recorder self-check on the curve's flight-enabled point: every
/// delivered trace must decompose exactly (queue_wait + transit + detour ==
/// latency, u64 arithmetic — decompose_flight throws on any imbalance), and
/// the result is exported as a 1.0 / 0.0 artifact the baseline gate matches
/// exactly.  The traces ride along as the report's v2 "flight" block, and
/// when $BFLY_FLIGHT_TRACE_FILE names a path the Perfetto-compatible Chrome
/// trace export is written there (CI uploads it as an artifact).
void check_flight_decomposition(const std::vector<SweepOutcome>& curve,
                                bfly::bench::BenchSession* session) {
  const SweepOutcome* chosen = nullptr;
  for (const SweepOutcome& o : curve) {
    if (o.point.offered_load == 0.5 && !o.flight.empty()) chosen = &o;
  }
  if (chosen == nullptr) return;  // BFLY_OBS=OFF or full replay: nothing recorded
  const obs::FlightRecorder& rec = chosen->flight;
  u64 delivered = 0;
  u64 total_wait = 0;
  bool pass = true;
  try {
    for (const obs::FlightTrace& t : rec.traces()) {
      if (t.outcome != obs::FlightOutcome::kDelivered) continue;
      const obs::FlightDecomposition d = obs::decompose_flight(t, rec.n());
      if (d.queue_wait + d.transit + d.detour != d.latency) pass = false;
      ++delivered;
      total_wait += d.queue_wait;
    }
  } catch (const std::exception&) {
    pass = false;
  }
  if (delivered == 0) pass = false;
  std::fprintf(stderr, "--- flight decomposition self-check (B_8, load 0.5, %zu traces) ---\n",
               rec.traces().size());
  std::fprintf(stderr, "%12s %12s %14s %8s\n", "delivered", "wait sum", "wait/packet", "pass");
  std::fprintf(stderr, "%12llu %12llu %14.2f %8s\n\n",
               static_cast<unsigned long long>(delivered),
               static_cast<unsigned long long>(total_wait),
               delivered > 0 ? static_cast<double>(total_wait) / static_cast<double>(delivered)
                             : 0.0,
               pass ? "yes" : "NO");
  session->artifact("flight_decomposition_pass", pass ? 1.0 : 0.0);
  session->flight(rec.to_json());
  if (const char* path = std::getenv("BFLY_FLIGHT_TRACE_FILE")) {
    if (path[0] != '\0') {
      util::atomic_write_file(path, obs::flight_chrome_trace_json(rec.traces(), rec.rows()));
    }
  }
}

/// Flight-recorder tax on the serial single-core B_8 curve, same interleaved
/// best-of protocol as print_timeseries_overhead.  The disabled bar is the
/// acceptance criterion (< 1%): a null recorder costs one predictable branch
/// per packet event, so two interleaved A/A runs of the disabled config
/// bound the noise floor it hides under.  The enabled bar (64-trace budget)
/// is the real collection cost.  Both machine-dependent and gate-ignored.
std::pair<double, double> print_flight_overhead() {
  std::fprintf(stderr,
               "--- flight overhead: serial B_8 curve, recorder disabled / enabled ---\n");
  using Clock = std::chrono::steady_clock;
  const obs::ScopedRegistry scoped(nullptr);
  const auto run_curve = [](bool flight) {
    const auto t0 = Clock::now();
    for (SweepPoint p : curve_points(8)) {
      p.flight_budget = flight ? 64 : 0;
      obs::FlightRecorder rec = make_flight_recorder(p);
      const SaturationPoint r =
          simulate_saturation(p.n, p.offered_load, p.cycles, p.seed, p.warmup_cycles,
                              p.queue_capacity, nullptr, nullptr, nullptr,
                              rec.enabled() ? &rec : nullptr);
      benchmark::DoNotOptimize(r.delivered);
      benchmark::DoNotOptimize(rec.packets_seen());
    }
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  run_curve(false);  // warm caches before timing
  double disabled_a = 1e300;
  double disabled_b = 1e300;
  double enabled = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    disabled_a = std::min(disabled_a, run_curve(false));
    enabled = std::min(enabled, run_curve(true));
    disabled_b = std::min(disabled_b, run_curve(false));
  }
  const double disabled = std::min(disabled_a, disabled_b);
  const double disabled_pct = std::abs(disabled_a - disabled_b) / disabled * 100.0;
  const double enabled_pct = (enabled - disabled) / disabled * 100.0;
  std::fprintf(stderr, "%14s %14s %14s %14s\n", "disabled (s)", "enabled (s)",
               "disabled tax", "enabled tax");
  std::fprintf(stderr, "%14.4f %14.4f %13.2f%% %+13.2f%%\n\n", disabled, enabled, disabled_pct,
               enabled_pct);
  return {disabled_pct, enabled_pct};
}

/// Telemetry tax on the serial single-core B_8 curve, interleaved best-of
/// timing like print_obs_overhead, with the registry detached throughout so
/// only the probe is measured.  Two bars:
///
///   * disabled (< 1%): the runtime-off default (null series) differs from a
///     probe-free build only by per-event branches on a bool that is never
///     true, so no within-binary A/B can see it directly; two interleaved
///     A/A runs of the disabled config bound it empirically — the reported
///     |delta| is the measurement noise floor the branch cost hides under.
///   * enabled (< 3%): disabled vs a 128-sample-budget run, the real cost of
///     collecting telemetry.
///
/// Both are machine-dependent (gate-ignored) and tracked by the trajectory
/// log; the cross-commit arena timings there are the end-to-end check that
/// the instrumented engine did not regress.
std::pair<double, double> print_timeseries_overhead() {
  std::fprintf(stderr,
               "--- telemetry overhead: serial B_8 curve, probe disabled / enabled ---\n");
  using Clock = std::chrono::steady_clock;
  const std::vector<SweepPoint> pts = curve_points(8);
  const obs::ScopedRegistry scoped(nullptr);
  const auto run_curve = [&pts](bool telemetry) {
    const auto t0 = Clock::now();
    for (const SweepPoint& p : pts) {
      obs::TimeSeries series(128);
      const SaturationPoint r =
          simulate_saturation(p.n, p.offered_load, p.cycles, p.seed, p.warmup_cycles,
                              p.queue_capacity, nullptr, telemetry ? &series : nullptr);
      benchmark::DoNotOptimize(r.delivered);
      benchmark::DoNotOptimize(series.num_samples());
    }
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  run_curve(false);  // warm caches before timing
  double disabled_a = 1e300;
  double disabled_b = 1e300;
  double enabled = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    disabled_a = std::min(disabled_a, run_curve(false));
    enabled = std::min(enabled, run_curve(true));
    disabled_b = std::min(disabled_b, run_curve(false));
  }
  const double disabled = std::min(disabled_a, disabled_b);
  const double disabled_pct = std::abs(disabled_a - disabled_b) / disabled * 100.0;
  const double enabled_pct = (enabled - disabled) / disabled * 100.0;
  std::fprintf(stderr, "%14s %14s %14s %14s\n", "disabled (s)", "enabled (s)",
               "disabled tax", "enabled tax");
  std::fprintf(stderr, "%14.4f %14.4f %13.2f%% %+13.2f%%\n\n", disabled, enabled, disabled_pct,
               enabled_pct);
  return {disabled_pct, enabled_pct};
}

void print_injection_scaling(bfly::bench::BenchSession* session) {
  std::fprintf(stderr, "--- per-node injection at saturation vs 1/(n+1) = Theta(1/log R) ---\n");
  std::fprintf(stderr, "%4s %14s %12s %10s\n", "n", "inj/node", "1/(n+1)", "ratio");
  std::vector<SweepPoint> pts;
  for (const int n : {4, 6, 8, 10}) {
    SweepPoint p;
    p.n = n;
    p.offered_load = 1.0;
    p.cycles = 3000;
    p.seed = 7;
    p.warmup_cycles = 500;
    pts.push_back(p);
  }
  const std::vector<SweepOutcome> outcomes = session->resilient_sweep("injection", pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const int n = pts[i].n;
    const double bound = 1.0 / (n + 1);
    std::fprintf(stderr, "%4d %14.4f %12.4f %10.3f\n", n, outcomes[i].point.per_node_injection,
                bound, outcomes[i].point.per_node_injection / bound);
  }
  std::fprintf(stderr, "paper: the maximum per-node injection rate is Theta(1/log R); the ratio\n");
  std::fprintf(stderr, "       to 1/(n+1) stays within a constant across n.\n\n");
}

/// Engine speedup: the seed deque simulator run serially over the B_8 curve
/// vs the arena engine driven by saturation_sweep, both with the registry
/// detached so only the engines are timed.  Machine-dependent (the baseline
/// gate ignores it); the trajectory log tracks it across commits.
double print_arena_speedup() {
  std::fprintf(stderr, "--- arena sweep vs seed deque simulator (B_8 saturation curve) ---\n");
  using Clock = std::chrono::steady_clock;
  const std::vector<SweepPoint> pts = curve_points(8);
  const obs::ScopedRegistry scoped(nullptr);
  // Warm both engines (allocator + pool spin-up) before timing.
  simulate_saturation_reference(8, 0.5, 200, 1, 50);
  saturation_sweep(std::vector<SweepPoint>{pts[0]});
  double reference_s = 1e300;
  double arena_s = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = Clock::now();
    for (const SweepPoint& p : pts) {
      const SaturationPoint r = simulate_saturation_reference(
          p.n, p.offered_load, p.cycles, p.seed, p.warmup_cycles, p.queue_capacity);
      benchmark::DoNotOptimize(r.delivered);
    }
    const auto t1 = Clock::now();
    const std::vector<SweepOutcome> out = saturation_sweep(pts);
    benchmark::DoNotOptimize(out.back().point.delivered);
    const auto t2 = Clock::now();
    reference_s = std::min(reference_s, std::chrono::duration<double>(t1 - t0).count());
    arena_s = std::min(arena_s, std::chrono::duration<double>(t2 - t1).count());
  }
  const double speedup = reference_s / arena_s;
  std::fprintf(stderr, "%14s %14s %10s\n", "deque (s)", "arena (s)", "speedup");
  std::fprintf(stderr, "%14.4f %14.4f %9.2fx\n\n", reference_s, arena_s, speedup);
  return speedup;
}

void print_load_balance() {
  std::fprintf(stderr, "--- link-load balance under uniform random routing ---\n");
  std::fprintf(stderr, "%4s %12s %12s %12s\n", "n", "avg load", "max load", "imbalance");
  for (const int n : {6, 8, 10, 12}) {
    const LoadCensus c = measure_link_loads(n, 2'000'000, 99);
    std::fprintf(stderr, "%4d %12.1f %12llu %12.3f\n", n, c.avg_link_load,
                static_cast<unsigned long long>(c.max_link_load), c.imbalance);
  }
  std::fprintf(stderr, "paper: traffic is balanced within a constant factor between the most\n");
  std::fprintf(stderr, "       heavily used links and the average.\n\n");
}

void print_congestion_table() {
  std::fprintf(stderr, "--- worst-case vs random permutation congestion (greedy bit-fixing) ---\n");
  std::fprintf(stderr, "%4s %14s %14s %14s\n", "n", "bit-reversal", "random perm", "Benes");
  Xoshiro256 rng(17);
  for (const int n : {6, 8, 10, 12}) {
    std::vector<u64> perm(pow2(n));
    for (u64 i = 0; i < perm.size(); ++i) perm[i] = i;
    for (u64 i = perm.size() - 1; i > 0; --i) std::swap(perm[i], perm[rng.below(i + 1)]);
    std::fprintf(stderr, "%4d %14llu %14llu %14d\n", n,
                static_cast<unsigned long long>(bit_reversal_congestion(n)),
                static_cast<unsigned long long>(permutation_congestion(n, perm)), 1);
  }
  std::fprintf(stderr, "greedy butterfly routing hits Theta(sqrt(R)) congestion on bit-reversal;\n");
  std::fprintf(stderr, "a Benes fabric (looping algorithm) routes ANY permutation at congestion 1.\n\n");
}

/// Observability tax: simulate_saturation at n=14 with the registry detached
/// (the default-off fast path every library user gets) vs attached.  Best-of
/// timing, interleaved to cancel thermal drift.  The acceptance bar is < 2%.
double print_obs_overhead() {
  std::fprintf(stderr,
               "--- obs overhead: simulate_saturation(n=14), registry off vs on ---\n");
  using Clock = std::chrono::steady_clock;
  obs::Registry local;
  const auto run_once = [](obs::Registry* reg) {
    const obs::ScopedRegistry scoped(reg);
    const auto t0 = Clock::now();
    const SaturationPoint p = simulate_saturation(14, 0.5, 150, 11, 20);
    benchmark::DoNotOptimize(p.delivered);
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  run_once(nullptr);  // warm caches before timing
  double off = 1e300;
  double on = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    off = std::min(off, run_once(nullptr));
    on = std::min(on, run_once(&local));
  }
  const double overhead_pct = (on - off) / off * 100.0;
  std::fprintf(stderr, "%12s %12s %12s\n", "off (s)", "on (s)", "overhead");
  std::fprintf(stderr, "%12.4f %12.4f %+11.2f%%\n\n", off, on, overhead_pct);
  return overhead_pct;
}

void BM_LinkLoadCensus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const LoadCensus c = measure_link_loads(n, 500'000, 1);
    benchmark::DoNotOptimize(c.max_link_load);
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) * 500'000);
}
BENCHMARK(BM_LinkLoadCensus)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SaturationSim(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const SaturationPoint p = simulate_saturation(n, 0.8, 500, 5, 50);
    benchmark::DoNotOptimize(p.delivered);
  }
}
BENCHMARK(BM_SaturationSim)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bfly::bench::threads_override(&argc, argv);
  bfly::bench::BenchSession session("bench_routing");
  session.threads = threads;
  session.config("threads", static_cast<double>(threads));
  session.config("saturation_n", 8);
  session.config("saturation_cycles", 4000);
  session.config("census_packets", 2'000'000);
  session.config("telemetry_budget", 128);
  session.config("flight_budget", 64);
  const std::vector<SweepOutcome> curve = print_saturation_curve(8, &session);
  check_littles_law(curve, &session);
  check_flight_decomposition(curve, &session);
  print_injection_scaling(&session);
  print_load_balance();
  print_congestion_table();
  session.artifact("obs_overhead_percent", print_obs_overhead());
  session.artifact("arena_sweep_speedup_b8", print_arena_speedup());
  const auto [ts_disabled_pct, ts_enabled_pct] = print_timeseries_overhead();
  session.artifact("timeseries_overhead_disabled_percent", ts_disabled_pct);
  session.artifact("timeseries_overhead_enabled_percent", ts_enabled_pct);
  const auto [fl_disabled_pct, fl_enabled_pct] = print_flight_overhead();
  session.artifact("flight_overhead_disabled_percent", fl_disabled_pct);
  session.artifact("flight_overhead_enabled_percent", fl_enabled_pct);
  session.artifact_percentiles("routing.latency_cycles", "routing.latency_cycles");
  session.run_benchmarks(argc, argv);
  // Pool utilization gauges: idempotent last-write-wins snapshots of the
  // shared pool's counters, taken after all parallel work has finished.
  const ThreadPool::Stats pool = ThreadPool::shared().stats();
  obs::set(obs::get_gauge("pool.tasks_executed"), static_cast<double>(pool.tasks_executed));
  obs::set(obs::get_gauge("pool.assists"), static_cast<double>(pool.assists));
  obs::set(obs::get_gauge("pool.workers"), static_cast<double>(pool.worker_tasks.size()));
  u64 busy_us = 0;
  for (const u64 us : pool.worker_busy_us) busy_us += us;
  obs::set(obs::get_gauge("pool.busy_us"), static_cast<double>(busy_us));
  session.emit_report();
  return 0;
}
