// Experiments E9 + E10 (Sec. 5): the hierarchical layout of a 9-dimensional
// butterfly on pin-limited chips, and the diminishing-returns area-vs-L
// curve.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "core/bfly.hpp"

namespace {

using namespace bfly;

void print_section5_example() {
  const HierarchicalPlan plan = plan_hierarchical(9, {});
  std::fprintf(stderr, "=== E9: Sec. 5 example -- 9-dim butterfly, 64-pin chips of side 20 ===\n");
  std::fprintf(stderr, "%-34s %10s %10s\n", "quantity", "paper", "measured");
  std::fprintf(stderr, "%-34s %10s %10s\n", "ISN parameters", "(3,3,3)",
              (std::string("(") + std::to_string(plan.k[0]) + "," + std::to_string(plan.k[1]) +
               "," + std::to_string(plan.k[2]) + ")")
                  .c_str());
  std::fprintf(stderr, "%-34s %10d %10llu\n", "nodes per chip", 80,
              static_cast<unsigned long long>(plan.nodes_per_chip));
  std::fprintf(stderr, "%-34s %10d %10llu\n", "chips", 64,
              static_cast<unsigned long long>(plan.num_chips));
  std::fprintf(stderr, "%-34s %10s %7llux%llu\n", "chip grid", "8x8",
              static_cast<unsigned long long>(plan.grid_rows),
              static_cast<unsigned long long>(plan.grid_cols));
  std::fprintf(stderr, "%-34s %10s %10llu\n", "off-chip links per chip", "<=64",
              static_cast<unsigned long long>(plan.offchip_links_per_chip));
  std::fprintf(stderr, "%-34s %10d %10llu\n", "tracks per channel (optimized)", 60,
              static_cast<unsigned long long>(plan.logical_tracks_per_channel));
  std::fprintf(stderr, "%-34s %10d %10lld\n", "board area, L=2", 409600,
              static_cast<long long>(plan.board_area(2)));
  std::fprintf(stderr, "%-34s %10d %10lld\n", "board area, L=4", 160000,
              static_cast<long long>(plan.board_area(4)));
  std::fprintf(stderr, "%-34s %10d %10lld\n", "board area, L=8", 78400,
              static_cast<long long>(plan.board_area(8)));
  std::fprintf(stderr, "%-34s %10d %10llu\n", "naive chips (paper estimate)", 171,
              static_cast<unsigned long long>(naive_chip_count_paper_estimate(9, 64)));
  std::fprintf(stderr, "%-34s %10s %10llu\n", "naive chips (exact counting)", "-",
              static_cast<unsigned long long>(naive_chip_count(9, 64)));
  std::fprintf(stderr, "\n");
}

void print_area_vs_layers() {
  const HierarchicalPlan plan = plan_hierarchical(9, {});
  std::fprintf(stderr, "=== E10: diminishing area returns vs board layers (Sec. 5) ===\n");
  std::fprintf(stderr, "%4s %12s %12s %12s %10s\n", "L", "board side", "board area", "area gain",
              "max wire");
  i64 prev = 0;
  for (const int L : {2, 4, 8, 16, 32}) {
    const i64 area = plan.board_area(L);
    std::fprintf(stderr, "%4d %12lld %12lld %11.2fx %10lld\n", L,
                static_cast<long long>(plan.board_side(L)), static_cast<long long>(area),
                prev > 0 ? static_cast<double>(prev) / static_cast<double>(area) : 0.0,
                static_cast<long long>(plan.max_board_wire(L)));
    prev = area;
  }
  std::fprintf(stderr, "paper: gains fade once chips (side 20) rival the shrunken channels;\n");
  std::fprintf(stderr, "       L=4 -> L=8 shortens the max wire by ~1.4x.\n\n");
}

void print_pin_budget_sweep() {
  std::fprintf(stderr, "--- pin-budget sweep (n = 9) ---\n");
  std::fprintf(stderr, "%6s %6s %12s %10s %14s\n", "pins", "k1", "nodes/chip", "chips", "off/chip");
  for (const u64 pins : {24u, 32u, 48u, 64u, 96u, 128u}) {
    ChipConstraints c;
    c.max_offchip_links = pins;
    c.chip_side = 40;  // generous so pins are the binding constraint
    try {
      const HierarchicalPlan plan = plan_hierarchical(9, c);
      std::fprintf(stderr, "%6llu %6d %12llu %10llu %14llu\n", static_cast<unsigned long long>(pins),
                  plan.rows_log2, static_cast<unsigned long long>(plan.nodes_per_chip),
                  static_cast<unsigned long long>(plan.num_chips),
                  static_cast<unsigned long long>(plan.offchip_links_per_chip));
    } catch (const InvalidArgument&) {
      std::fprintf(stderr, "%6llu %6s %12s %10s %14s\n", static_cast<unsigned long long>(pins),
                  "-", "infeasible", "-", "-");
    }
  }
  std::fprintf(stderr, "\n");
}

void BM_PlanHierarchical(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const HierarchicalPlan plan = plan_hierarchical(n, {});
    benchmark::DoNotOptimize(plan.num_chips);
  }
}
BENCHMARK(BM_PlanHierarchical)->Arg(6)->Arg(9)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_hierarchical");
  print_section5_example();
  print_area_vs_layers();
  print_pin_budget_sweep();
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
