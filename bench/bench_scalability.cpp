// Experiment E11 (Sec. 3/4 scalability): node-size sweep.  Any node side
// W = o(sqrt(N)/(L log N)) leaves the leading constants of area and wire
// length unchanged; larger nodes start to dominate.
//
// Plus the packet-engine scalability study: one large B_12 saturation curve
// on the cycle-parallel sharded engine (routing/sharded_sim.hpp).  The curve
// itself is a pure function of (n, load, cycles, seed, shard_count) — bitwise
// machine-independent, so it is exported as an exact-gated artifact together
// with its conservation ledger — while the serial-vs-sharded wall-clock
// comparison is timing and therefore gate-ignored (thresholds.json), recorded
// for the trajectory plots.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/bfly.hpp"

namespace {

using namespace bfly;

// The sharded study's fixed operating point.  shard_count is pinned (never
// derived from the machine) so every runner reproduces the same bits.
constexpr int kShardN = 12;
constexpr u64 kShardCount = 8;
constexpr u64 kShardCycles = 1200;
constexpr u64 kShardWarmup = 200;
constexpr u64 kShardSeed = 2026;
constexpr double kSpeedupLoad = 0.7;

void print_node_size_sweep(int n, int L) {
  std::fprintf(stderr, "=== E11: node-size scalability of B_%d at L=%d ===\n", n, L);
  std::fprintf(stderr, "%6s %16s %12s %12s %12s\n", "W", "area", "area/W=4", "max wire", "wire/W=4");
  ButterflyLayoutOptions base;
  base.layers = L;
  const LayoutMetrics m0 = ButterflyLayoutPlan(ButterflyLayoutPlan::choose_parameters(n), base)
                               .metrics();
  for (const i64 w : {4, 8, 16, 32, 64}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    opt.node_side = w;
    const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n), opt);
    const LayoutMetrics m = plan.metrics();
    std::fprintf(stderr, "%6lld %16lld %12.3f %12lld %12.3f\n", static_cast<long long>(w),
                static_cast<long long>(m.area),
                static_cast<double>(m.area) / static_cast<double>(m0.area),
                static_cast<long long>(m.max_wire_length),
                static_cast<double>(m.max_wire_length) /
                    static_cast<double>(m0.max_wire_length));
  }
  std::fprintf(stderr, "paper: for W = o(sqrt(N)/(L log N)) (here: W << 2^{n/3+...}) the area\n");
  std::fprintf(stderr, "       ratio stays near 1; once W 2^{k1} rivals the channel width the\n");
  std::fprintf(stderr, "       node grid dominates and area grows ~ W^2.\n\n");
}

/// The sharded B_12 saturation curve with its conservation ledger.  Exports
/// two exact-gated artifacts: "sharded_curve" (the per-load statistics, all
/// deterministic) and "sharded_conservation_pass" (1 iff every point's
/// offered == delivered + dropped + in-flight held exactly).
void print_sharded_curve(std::size_t threads, bfly::bench::BenchSession* session) {
  std::fprintf(stderr, "=== sharded saturation curve: B_%d, %llu shards ===\n", kShardN,
               static_cast<unsigned long long>(kShardCount));
  std::fprintf(stderr, "%8s %12s %12s %12s %10s %12s %10s\n", "load", "throughput",
               "avg latency", "delivered", "dropped", "in flight", "conserved");
  json::Value curve = json::Value::array();
  bool all_conserved = true;
  for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    ShardedOptions opt;
    opt.shard_count = kShardCount;
    opt.threads = threads;
    opt.warmup_cycles = kShardWarmup;
    const ShardedSaturationPoint r =
        simulate_saturation_sharded(kShardN, load, kShardCycles, kShardSeed, opt);
    all_conserved = all_conserved && r.conserved();
    std::fprintf(stderr, "%8.2f %12.4f %12.2f %12llu %10llu %12llu %10s\n", load,
                 r.point.throughput, r.point.avg_latency,
                 static_cast<unsigned long long>(r.point.delivered),
                 static_cast<unsigned long long>(r.dropped_total),
                 static_cast<unsigned long long>(r.in_flight_end),
                 r.conserved() ? "yes" : "NO");
    json::Value pt = json::Value::object();
    pt.set("load", json::Value::number(load));
    pt.set("throughput", json::Value::number(r.point.throughput));
    pt.set("avg_latency", json::Value::number(r.point.avg_latency));
    pt.set("delivered", json::Value::number(r.point.delivered));
    pt.set("max_queue", json::Value::number(r.point.max_queue));
    pt.set("offered_total", json::Value::number(r.offered_total));
    pt.set("delivered_total", json::Value::number(r.delivered_total));
    pt.set("dropped_total", json::Value::number(r.dropped_total));
    pt.set("in_flight_end", json::Value::number(r.in_flight_end));
    curve.push_back(std::move(pt));
  }
  std::fprintf(stderr, "curve is a pure function of (n, load, cycles, seed, shard_count):\n");
  std::fprintf(stderr, "       every runner and thread count reproduces these bits exactly.\n\n");
  session->artifact("sharded_curve", std::move(curve));
  session->artifact("sharded_conservation_pass", all_conserved ? 1.0 : 0.0);
}

/// Serial arena engine vs sharded engine on the same B_12 point, interleaved
/// best-of-2.  Timing, so gate-ignored; the >= 2.5x bar applies on >= 8
/// cores (CI runners), which the table states explicitly so a laptop reading
/// ~1x is not mistaken for a regression.
std::pair<double, double> print_sharded_speedup(std::size_t threads) {
  using Clock = std::chrono::steady_clock;
  std::fprintf(stderr, "--- serial arena engine vs sharded engine (B_%d, load %.1f) ---\n",
               kShardN, kSpeedupLoad);
  const obs::ScopedRegistry scoped(nullptr);
  ShardedOptions opt;
  opt.shard_count = kShardCount;
  opt.threads = threads;
  opt.warmup_cycles = kShardWarmup;
  // Warm both engines (allocator + pool spin-up) before timing.
  simulate_saturation(kShardN, kSpeedupLoad, 100, kShardSeed, 0);
  simulate_saturation_sharded(kShardN, kSpeedupLoad, 100, kShardSeed, opt);
  double serial_s = 1e300;
  double sharded_s = 1e300;
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = Clock::now();
    const SaturationPoint s = simulate_saturation(kShardN, kSpeedupLoad, kShardCycles,
                                                  kShardSeed, kShardWarmup);
    benchmark::DoNotOptimize(s.delivered);
    const auto t1 = Clock::now();
    const ShardedSaturationPoint p =
        simulate_saturation_sharded(kShardN, kSpeedupLoad, kShardCycles, kShardSeed, opt);
    benchmark::DoNotOptimize(p.point.delivered);
    const auto t2 = Clock::now();
    serial_s = std::min(serial_s, std::chrono::duration<double>(t1 - t0).count());
    sharded_s = std::min(sharded_s, std::chrono::duration<double>(t2 - t1).count());
  }
  const double speedup = serial_s / sharded_s;
  // Node-visits per second through the sharded engine: rows * (n+1) node
  // slots advanced per cycle.
  const double nodes_per_sec = static_cast<double>(pow2(kShardN)) *
                               static_cast<double>(kShardN + 1) *
                               static_cast<double>(kShardCycles) / sharded_s;
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(stderr, "%14s %14s %10s %16s\n", "serial (s)", "sharded (s)", "speedup",
               "nodes/sec");
  std::fprintf(stderr, "%14.4f %14.4f %9.2fx %16.3e\n", serial_s, sharded_s, speedup,
               nodes_per_sec);
  if (cores >= 8) {
    std::fprintf(stderr, "bar: >= 2.5x expected on this %u-core machine.\n\n", cores);
  } else {
    std::fprintf(stderr, "bar: >= 2.5x applies on >= 8 cores; this machine has %u —\n", cores);
    std::fprintf(stderr, "     the ratio above measures sharding overhead, not the win.\n\n");
  }
  return {speedup, nodes_per_sec};
}

void BM_MetricsVsNodeSide(benchmark::State& state) {
  ButterflyLayoutOptions opt;
  opt.node_side = state.range(0);
  const ButterflyLayoutPlan plan({3, 3, 3}, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.metrics().area);
  }
}
BENCHMARK(BM_MetricsVsNodeSide)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ShardedSaturationB10(benchmark::State& state) {
  ShardedOptions opt;
  opt.shard_count = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    const ShardedSaturationPoint r = simulate_saturation_sharded(10, 0.7, 200, 1, opt);
    benchmark::DoNotOptimize(r.point.delivered);
  }
}
BENCHMARK(BM_ShardedSaturationB10)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bfly::bench::threads_override(&argc, argv);
  bfly::bench::BenchSession session("bench_scalability");
  session.threads = threads;
  session.config("threads", static_cast<double>(threads));
  session.config("shard_n", kShardN);
  session.config("shard_count", static_cast<double>(kShardCount));
  session.config("shard_cycles", static_cast<double>(kShardCycles));
  session.config("shard_seed", static_cast<double>(kShardSeed));
  print_node_size_sweep(12, 2);
  print_node_size_sweep(12, 4);
  print_sharded_curve(threads, &session);
  const auto [speedup, nodes_per_sec] = print_sharded_speedup(threads);
  session.artifact("sharded_speedup_b12", speedup);
  session.artifact("sharded_nodes_per_sec", nodes_per_sec);
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
