// Experiment E11 (Sec. 3/4 scalability): node-size sweep.  Any node side
// W = o(sqrt(N)/(L log N)) leaves the leading constants of area and wire
// length unchanged; larger nodes start to dominate.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "core/bfly.hpp"

namespace {

using namespace bfly;

void print_node_size_sweep(int n, int L) {
  std::fprintf(stderr, "=== E11: node-size scalability of B_%d at L=%d ===\n", n, L);
  std::fprintf(stderr, "%6s %16s %12s %12s %12s\n", "W", "area", "area/W=4", "max wire", "wire/W=4");
  ButterflyLayoutOptions base;
  base.layers = L;
  const LayoutMetrics m0 = ButterflyLayoutPlan(ButterflyLayoutPlan::choose_parameters(n), base)
                               .metrics();
  for (const i64 w : {4, 8, 16, 32, 64}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    opt.node_side = w;
    const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n), opt);
    const LayoutMetrics m = plan.metrics();
    std::fprintf(stderr, "%6lld %16lld %12.3f %12lld %12.3f\n", static_cast<long long>(w),
                static_cast<long long>(m.area),
                static_cast<double>(m.area) / static_cast<double>(m0.area),
                static_cast<long long>(m.max_wire_length),
                static_cast<double>(m.max_wire_length) /
                    static_cast<double>(m0.max_wire_length));
  }
  std::fprintf(stderr, "paper: for W = o(sqrt(N)/(L log N)) (here: W << 2^{n/3+...}) the area\n");
  std::fprintf(stderr, "       ratio stays near 1; once W 2^{k1} rivals the channel width the\n");
  std::fprintf(stderr, "       node grid dominates and area grows ~ W^2.\n\n");
}

void BM_MetricsVsNodeSide(benchmark::State& state) {
  ButterflyLayoutOptions opt;
  opt.node_side = state.range(0);
  const ButterflyLayoutPlan plan({3, 3, 3}, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.metrics().area);
  }
}
BENCHMARK(BM_MetricsVsNodeSide)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_scalability");
  print_node_size_sweep(12, 2);
  print_node_size_sweep(12, 4);
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
