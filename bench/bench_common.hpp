// Shared scaffolding for the bench binaries.
//
// Contract: every bench binary writes exactly one machine-readable JSON run
// report (schema version 1, see obs/report.hpp) to *stdout* and keeps all
// human-oriented output — reproduction tables and google-benchmark timing
// tables — on *stderr*.  `bench_routing ... > run.json` therefore always
// yields a parseable document, and BENCH_*.json trajectories can be captured
// by plain shell redirection.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/fileio.hpp"
#include "util/parallel.hpp"

namespace bfly::bench {

/// Resolves the worker-thread override for a bench binary and strips it from
/// argv before google-benchmark sees the flags it doesn't know.  Accepted
/// spellings: `--threads N`, `--threads=N`, and the $BFLY_THREADS environment
/// variable (the flag wins when both are given).  Returns 0 when no override
/// is present (callers pass that through to SweepRunOptions.threads, which
/// means "auto").  A malformed value — "4x", "0", "-2", "" — is a usage
/// error: the bench prints a diagnostic to stderr and exits with status 2,
/// the same contract bflyreport uses, instead of silently falling back and
/// reporting timings for a parallelism the user did not ask for.
inline std::size_t threads_override(int* argc, char** argv) {
  const auto reject = [](const std::string& source, const char* text) {
    std::cerr << "error: " << source << " must be an integer in [1, 4096], got '"
              << (text == nullptr ? "" : text) << "'\n";
    std::exit(2);
  };
  std::size_t threads = 0;
  if (const char* env = std::getenv("BFLY_THREADS")) {
    if (!parse_thread_count(env, &threads)) reject("$BFLY_THREADS", env);
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--threads") {
      if (i + 1 >= *argc) reject("--threads", "");
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = argv[i] + std::string("--threads=").size();
    } else {
      argv[out++] = argv[i];
      continue;
    }
    if (!parse_thread_count(value, &threads)) reject("--threads", value);
  }
  *argc = out;
  argv[out] = nullptr;  // benchmark::Initialize expects a null-terminated argv
  return threads;
}

/// Installs a process-wide metrics/trace registry for the duration of main().
/// Construct first thing in main(); every instrumented library call after
/// that records into it.
class BenchSession {
 public:
  explicit BenchSession(std::string name) : scoped_(&registry_) {
    options_.name = std::move(name);
  }

  obs::Registry& registry() { return registry_; }

  /// Run parameters for the report's "config" object.
  void config(const std::string& key, json::Value value) {
    options_.config.set(key, std::move(value));
  }
  void config(const std::string& key, double number) {
    options_.config.set(key, json::Value::number(number));
  }
  void config(const std::string& key, const std::string& text) {
    options_.config.set(key, json::Value::string(text));
  }

  /// Measured artifact facts for the report's "artifact_stats" object.
  void artifact(const std::string& key, json::Value value) {
    options_.artifact_stats.set(key, std::move(value));
  }
  void artifact(const std::string& key, double number) {
    options_.artifact_stats.set(key, json::Value::number(number));
  }

  /// Attaches one representative sweep point's cycle-resolved telemetry
  /// (TimeSeries::to_json()) as the report's optional "timeseries" block,
  /// bumping the emitted schema to version 2 (obs/report.hpp).  Skip the
  /// call — e.g. when the series is empty under BFLY_OBS=OFF — and the
  /// report stays version 1.
  void timeseries(json::Value block) { options_.timeseries = std::move(block); }

  /// Attaches one representative sweep point's per-packet flight traces
  /// (FlightRecorder::to_json()) as the report's optional "flight" block —
  /// same schema-versioning rule as timeseries().
  void flight(json::Value block) { options_.flight = std::move(block); }

  /// Exports interpolated percentiles of a named registry histogram into
  /// artifact_stats as `"<key>": {"p50": ..., "p95": ..., "p99": ...,
  /// "p999": ...}` so the values participate in baseline diffs as plain
  /// numeric leaves.  Call after the workload has populated the histogram;
  /// throws InvalidArgument when no histogram with that name was recorded.
  void artifact_percentiles(const std::string& key, const std::string& histogram) {
#if !BFLY_OBS_ENABLED
    // The instrumented hot paths record nothing when obs is compiled out, so
    // the histogram cannot exist; keep the report valid-but-empty.
    (void)key;
    (void)histogram;
    return;
#endif
    const obs::MetricsSnapshot snap = registry_.metrics_snapshot();
    for (const obs::MetricsSnapshot::Hist& h : snap.histograms) {
      if (h.name != histogram) continue;
      json::Value percentiles = json::Value::object();
      percentiles.set("p50", json::Value::number(h.percentile(0.50)));
      percentiles.set("p95", json::Value::number(h.percentile(0.95)));
      percentiles.set("p99", json::Value::number(h.percentile(0.99)));
      percentiles.set("p999", json::Value::number(h.percentile(0.999)));
      artifact(key, std::move(percentiles));
      return;
    }
    // A resumed sweep replays outcomes from the checkpoint without re-running
    // the engines, so an instrumented histogram can legitimately be absent
    // (or thin).  Skip the export instead of aborting the bench; the gate
    // runs without $BFLY_CHECKPOINT_DIR, so CI always gets the full metrics.
    if (sweep_replayed_) return;
    throw InvalidArgument("no histogram named '" + histogram + "' in this run");
  }

  /// Drives a sweep grid through exec::run_sweep_resumable — checkpointed
  /// under $BFLY_CHECKPOINT_DIR/<bench>.<tag>.ckpt when that variable is set,
  /// plain otherwise — folds the run's status into the report, and returns
  /// the outcome vector (bitwise identical to saturation_sweep when the run
  /// completes).  `tag` distinguishes a bench's sweeps from each other.
  std::vector<SweepOutcome> resilient_sweep(const std::string& tag,
                                            std::span<const SweepPoint> points) {
    exec::SweepRunOptions opt;
    opt.threads = threads;
    if (const char* dir = std::getenv("BFLY_CHECKPOINT_DIR")) {
      if (dir[0] != '\0') {
        opt.checkpoint_path = std::string(dir) + "/" + options_.name + "." + tag + ".ckpt";
      }
    }
    exec::SweepRun run = exec::run_sweep_resumable(points, opt);
    sweep_status(run);
    return std::move(run.outcomes);
  }

  /// Folds a resilient sweep's outcome into the report's status triple:
  /// point counts accumulate across sweeps, and the status only ever gets
  /// worse (complete < partial < cancelled).  Call once per
  /// exec::run_sweep_resumable the bench drives.
  void sweep_status(const exec::SweepRun& run) {
    options_.points_completed += run.num_completed;
    options_.points_total += static_cast<u64>(run.outcomes.size());
    if (run.num_replayed > 0) sweep_replayed_ = true;
    const auto rank = [](const std::string& s) { return s == "cancelled" ? 2 : s == "partial" ? 1 : 0; };
    const std::string next = exec::to_string(run.status);
    if (rank(next) > rank(options_.status)) options_.status = next;
  }

  /// google-benchmark with its console output redirected to stderr so the
  /// stdout JSON report stays clean.
  void run_benchmarks(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::ConsoleReporter reporter;
    reporter.SetOutputStream(&std::cerr);
    reporter.SetErrorStream(&std::cerr);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }

  /// The single-line JSON run report on stdout.  Call last.  When the
  /// BFLY_REPORT_FILE environment variable names a path, the same line is
  /// also written there crash-safely (atomic tmp+rename) — shell redirection
  /// of stdout cannot be torn-proof, the atomic file is.
  void emit_report() {
    std::ostringstream line;
    obs::write_report_line(line, registry_, options_);
    std::cout << line.str();
    if (const char* path = std::getenv("BFLY_REPORT_FILE")) {
      if (path[0] != '\0') util::atomic_write_file(path, line.str());
    }
  }

  /// The report written crash-safely to `path` (atomic tmp+rename) instead
  /// of stdout.
  void emit_report_file(const std::string& path) {
    std::ostringstream line;
    obs::write_report_line(line, registry_, options_);
    util::atomic_write_file(path, line.str());
  }

  /// Worker-thread override applied to every resilient_sweep (0 = auto, i.e.
  /// default_thread_count()).  Set from threads_override() in main() before
  /// the first sweep.  Per-point outcomes are bitwise independent of this —
  /// it only changes wall-clock — so benches record it in config as run
  /// metadata, not as part of the result's identity.
  std::size_t threads = 0;

 private:
  obs::Registry registry_;
  obs::ScopedRegistry scoped_;
  obs::ReportOptions options_;
  bool sweep_replayed_ = false;
};

}  // namespace bfly::bench
