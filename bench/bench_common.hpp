// Shared scaffolding for the bench binaries.
//
// Contract: every bench binary writes exactly one machine-readable JSON run
// report (schema version 1, see obs/report.hpp) to *stdout* and keeps all
// human-oriented output — reproduction tables and google-benchmark timing
// tables — on *stderr*.  `bench_routing ... > run.json` therefore always
// yields a parseable document, and BENCH_*.json trajectories can be captured
// by plain shell redirection.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace bfly::bench {

/// Installs a process-wide metrics/trace registry for the duration of main().
/// Construct first thing in main(); every instrumented library call after
/// that records into it.
class BenchSession {
 public:
  explicit BenchSession(std::string name) : scoped_(&registry_) {
    options_.name = std::move(name);
  }

  obs::Registry& registry() { return registry_; }

  /// Run parameters for the report's "config" object.
  void config(const std::string& key, json::Value value) {
    options_.config.set(key, std::move(value));
  }
  void config(const std::string& key, double number) {
    options_.config.set(key, json::Value::number(number));
  }
  void config(const std::string& key, const std::string& text) {
    options_.config.set(key, json::Value::string(text));
  }

  /// Measured artifact facts for the report's "artifact_stats" object.
  void artifact(const std::string& key, json::Value value) {
    options_.artifact_stats.set(key, std::move(value));
  }
  void artifact(const std::string& key, double number) {
    options_.artifact_stats.set(key, json::Value::number(number));
  }

  /// Exports interpolated percentiles of a named registry histogram into
  /// artifact_stats as `"<key>": {"p50": ..., "p95": ..., "p99": ...}` so
  /// the values participate in baseline diffs as plain numeric leaves.  Call
  /// after the workload has populated the histogram; throws InvalidArgument
  /// when no histogram with that name was recorded.
  void artifact_percentiles(const std::string& key, const std::string& histogram) {
#if !BFLY_OBS_ENABLED
    // The instrumented hot paths record nothing when obs is compiled out, so
    // the histogram cannot exist; keep the report valid-but-empty.
    (void)key;
    (void)histogram;
    return;
#endif
    const obs::MetricsSnapshot snap = registry_.metrics_snapshot();
    for (const obs::MetricsSnapshot::Hist& h : snap.histograms) {
      if (h.name != histogram) continue;
      json::Value percentiles = json::Value::object();
      percentiles.set("p50", json::Value::number(h.percentile(0.50)));
      percentiles.set("p95", json::Value::number(h.percentile(0.95)));
      percentiles.set("p99", json::Value::number(h.percentile(0.99)));
      artifact(key, std::move(percentiles));
      return;
    }
    throw InvalidArgument("no histogram named '" + histogram + "' in this run");
  }

  /// google-benchmark with its console output redirected to stderr so the
  /// stdout JSON report stays clean.
  void run_benchmarks(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::ConsoleReporter reporter;
    reporter.SetOutputStream(&std::cerr);
    reporter.SetErrorStream(&std::cerr);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }

  /// The single-line JSON run report on stdout.  Call last.
  void emit_report() { obs::write_report_line(std::cout, registry_, options_); }

 private:
  obs::Registry registry_;
  obs::ScopedRegistry scoped_;
  obs::ReportOptions options_;
};

}  // namespace bfly::bench
