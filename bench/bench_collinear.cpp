// Experiment E4 (Fig. 4 + Appendix B): strictly optimal collinear layouts of
// complete graphs.
//
// Reproduces: K_9 in 20 tracks; floor(N^2/4) tracks = bisection lower bound
// for all N; 25% improvement over the Chen-Agrawal layout [6, Theorem 1].
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "core/bfly.hpp"

namespace {

using namespace bfly;

void print_track_table() {
  std::fprintf(stderr, "=== E4: collinear layout of K_N (Appendix B, Fig. 4) ===\n");
  std::fprintf(stderr, "%6s %12s %12s %14s %12s %10s\n", "N", "tracks", "bisection", "Chen-Agrawal",
              "saving", "legal");
  for (const u64 n : {4u, 8u, 9u, 16u, 32u, 64u, 128u, 256u}) {
    const u64 tracks = collinear_track_count(n);
    const u64 bisection = CompleteGraph(n).bisection_width();
    const bool pow2n = is_pow2(n);
    const u64 ca = pow2n ? chen_agrawal_track_count(n) : 0;
    const double saving = pow2n && ca > 0
                              ? 100.0 * (1.0 - static_cast<double>(tracks) / static_cast<double>(ca))
                              : 0.0;
    // Geometry + legality for moderate sizes.
    const char* legal = "-";
    if (n <= 64) {
      const CollinearLayout cl = collinear_complete_graph(n);
      legal = (check_thompson(cl.layout).ok && check_multilayer(cl.layout).ok &&
               cl.num_tracks == tracks)
                  ? "yes"
                  : "NO";
    }
    if (pow2n) {
      std::fprintf(stderr, "%6llu %12llu %12llu %14llu %11.1f%% %10s\n",
                  static_cast<unsigned long long>(n), static_cast<unsigned long long>(tracks),
                  static_cast<unsigned long long>(bisection), static_cast<unsigned long long>(ca),
                  saving, legal);
    } else {
      std::fprintf(stderr, "%6llu %12llu %12llu %14s %12s %10s\n", static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(tracks),
                  static_cast<unsigned long long>(bisection), "-", "-", legal);
    }
  }
  std::fprintf(stderr, "paper: K_9 uses 20 tracks (Fig. 4); floor(N^2/4) matches bisection;\n");
  std::fprintf(stderr, "       asymptotic saving over [6] is 25%%.\n\n");

  // Track-order reversal reduces the max wire length (Appendix B remark).
  const CollinearLayout plain = collinear_complete_graph(16);
  const CollinearLayout reversed = collinear_complete_graph(16, {1, true});
  std::fprintf(stderr, "K_16 max wire: plain order %lld, reversed order %lld\n\n",
              static_cast<long long>(plain.layout.metrics().max_wire_length),
              static_cast<long long>(reversed.layout.metrics().max_wire_length));
}

void BM_CollinearConstruct(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    const CollinearLayout cl = collinear_complete_graph(n);
    benchmark::DoNotOptimize(cl.layout.wires().data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_CollinearConstruct)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_CollinearLegalityCheck(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  const CollinearLayout cl = collinear_complete_graph(n);
  for (auto _ : state) {
    const LegalityReport r = check_multilayer(cl.layout);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_CollinearLegalityCheck)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_collinear");
  print_track_table();
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
