// Experiment S: the serving layer under a hostile thousand-client storm.
//
// Drives the transport-free serve::Server (the core of bflyd) with 1200
// concurrent synthetic clients submitting a deterministic mixed workload —
// control pings, duplicate-keyed computes (coalescing / cache pressure),
// hostile frames, and a spread of request deadlines from hopeless to
// generous — against a deliberately undersized admission queue, so every
// robustness path fires: completion, deadline expiry, deterministic load
// shedding, and structured rejection.  The reproduction tables show the
// final ledger and the latency percentiles; the gated artifacts are the
// invariants that must hold on every machine at any speed:
//
//   * exact ledger conservation: accepted == completed + cancelled + shed
//     + failed, with accepted == every frame submitted;
//   * every frame answered exactly once;
//   * every hostile frame rejected with a structured invalid_request (and
//     nothing else rejected that way);
//   * crash-recovery bit-identity: responses served from a journal-restored
//     cache are byte-for-byte the responses the first process produced.
//
// Raw counts of the racy buckets (how many shed vs completed) and the
// latency percentiles are machine-dependent, so they are reported under
// ignore-ruled keys; only the invariants gate.
//
// All workloads run against local metrics registries so the session report's
// metric surface stays empty and deterministic; google-benchmark timings
// (stderr only) cover the per-frame round-trip costs.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

using namespace bfly;
using serve::LedgerSnapshot;
using serve::Server;
using serve::ServerOptions;

constexpr std::size_t kClients = 1200;
constexpr std::size_t kFramesPerClient = 4;
constexpr std::size_t kSubmitters = 8;  // threads multiplexing the clients
constexpr u64 kMixSeed = 2026;

// SplitMix64: the repo-standard deterministic stream for workload mixing.
u64 splitmix64(u64* state) {
  u64 z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bULL;
  z = (z ^ (z >> 27)) * 0x94d9b19937133111ULL;
  return z ^ (z >> 31);
}

const std::vector<std::string>& hostile_frames() {
  static const std::vector<std::string> frames = {
      "this is not json",
      "{\"op\":\"layout\"}",
      "{\"op\":\"warp_core_breach\",\"id\":\"h\"}",
      "{\"op\":\"census\",\"id\":\"h\",\"n\":6,\"packets\":0}",
      "{\"op\":\"sweep\",\"id\":\"h\",\"n\":99,\"offered_load\":0.5,\"cycles\":1000}",
      "{\"op\":\"layout\",\"id\":\"h\",\"n\":6,\"bogus_field\":1}",
  };
  return frames;
}

/// One client's frame for one round, deterministically mixed: pings,
/// duplicate-keyed computes drawn from a small pool (so coalescing and cache
/// hits fire), hostile frames, and sweeps carrying a deadline spread from
/// hopeless (1 ms) to generous.  `*hostile` reports whether the frame is one
/// of the malformed ones (the caller counts them for the rejection gate).
std::string storm_frame(std::size_t client, std::size_t round, bool* hostile) {
  u64 state = kMixSeed ^ (static_cast<u64>(client) << 20) ^ static_cast<u64>(round);
  const u64 pick = splitmix64(&state) % 100;
  const std::string id = "c" + std::to_string(client) + "-" + std::to_string(round);
  *hostile = false;
  if (pick < 10) {
    return "{\"op\":\"ping\",\"id\":\"" + id + "\"}";
  }
  if (pick < 16) {
    *hostile = true;
    return hostile_frames()[splitmix64(&state) % hostile_frames().size()];
  }
  if (pick < 45) {
    // Census from a pool of 8 duplicate keys: identical concurrent requests
    // coalesce onto one compute; repeats hit the cache.
    const u64 pool = splitmix64(&state) % 8;
    return "{\"op\":\"census\",\"id\":\"" + id + "\",\"n\":" + std::to_string(5 + pool % 3) +
           ",\"packets\":" + std::to_string(40'000 + 10'000 * pool) +
           ",\"seed\":" + std::to_string(pool) + "}";
  }
  if (pick < 70) {
    // Layout / packaging pool of 6 keys.
    const u64 pool = splitmix64(&state) % 6;
    if (pool % 2 == 0) {
      return "{\"op\":\"layout\",\"id\":\"" + id + "\",\"n\":" + std::to_string(4 + pool) + "}";
    }
    return "{\"op\":\"packaging\",\"id\":\"" + id + "\",\"n\":" + std::to_string(4 + pool) + "}";
  }
  // Sweeps with a deadline spread: ~1/3 hopeless (1-4 ms), the rest wide.
  const u64 pool = splitmix64(&state) % 4;
  const u64 roll = splitmix64(&state) % 3;
  const u64 deadline_ms = roll == 0 ? 1 + splitmix64(&state) % 4 : 2'000 + 500 * pool;
  return "{\"op\":\"sweep\",\"id\":\"" + id + "\",\"n\":6,\"offered_load\":0." +
         std::to_string(5 + pool) + ",\"cycles\":" + std::to_string(20'000 + 5'000 * pool) +
         ",\"seed\":" + std::to_string(pool) + ",\"deadline_ms\":" + std::to_string(deadline_ms) +
         "}";
}

/// Minimal response classification without a full JSON parse: the callback
/// runs on server threads, so it must stay cheap and non-throwing.
enum class Outcome { kOk, kDeadline, kOverloaded, kInvalid, kShutdown, kOther };

Outcome classify(const std::string& line) {
  if (line.find("\"ok\":true") != std::string::npos) return Outcome::kOk;
  if (line.find("\"code\":\"deadline_exceeded\"") != std::string::npos) return Outcome::kDeadline;
  if (line.find("\"code\":\"overloaded\"") != std::string::npos) return Outcome::kOverloaded;
  if (line.find("\"code\":\"invalid_request\"") != std::string::npos) return Outcome::kInvalid;
  if (line.find("\"code\":\"shutting_down\"") != std::string::npos) return Outcome::kShutdown;
  return Outcome::kOther;
}

struct StormResult {
  std::size_t frames = 0;
  std::size_t hostile = 0;
  std::size_t responses = 0;
  std::size_t ok = 0, deadline = 0, overloaded = 0, invalid = 0, shutdown = 0, other = 0;
  LedgerSnapshot ledger;
  double wall_ms = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0;
};

StormResult run_storm() {
  StormResult result;
  obs::Registry local;
  const obs::ScopedRegistry scoped(&local);

  ServerOptions options;
  options.max_inflight = 4;
  options.queue_depth = 192;  // undersized on purpose: the shed path must fire
  options.default_deadline_ms = 10'000;
  Server server(options);

  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::size_t> responded{0};
  std::atomic<std::size_t> ok{0}, deadline{0}, overloaded{0}, invalid{0}, shutdown{0}, other{0};
  const std::size_t total = kClients * kFramesPerClient;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> submitters;
  std::atomic<std::size_t> hostile_count{0};
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      // Open loop, round-major: every client has a frame in flight before any
      // client submits its second, so all 1200 are concurrently outstanding.
      for (std::size_t round = 0; round < kFramesPerClient; ++round) {
        for (std::size_t client = s; client < kClients; client += kSubmitters) {
          bool hostile = false;
          const std::string frame = storm_frame(client, round, &hostile);
          if (hostile) hostile_count.fetch_add(1, std::memory_order_relaxed);
          server.submit_frame(frame, [&](std::string line) {
            switch (classify(line)) {
              case Outcome::kOk: ok.fetch_add(1, std::memory_order_relaxed); break;
              case Outcome::kDeadline: deadline.fetch_add(1, std::memory_order_relaxed); break;
              case Outcome::kOverloaded:
                overloaded.fetch_add(1, std::memory_order_relaxed);
                break;
              case Outcome::kInvalid: invalid.fetch_add(1, std::memory_order_relaxed); break;
              case Outcome::kShutdown: shutdown.fetch_add(1, std::memory_order_relaxed); break;
              case Outcome::kOther: other.fetch_add(1, std::memory_order_relaxed); break;
            }
            if (responded.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
              const std::lock_guard<std::mutex> lock(mu);
              cv.notify_all();
            }
          });
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responded.load(std::memory_order_acquire) == total; });
  }
  result.ledger = server.drain(60'000);
  result.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                            start)
                       .count();

  result.frames = total;
  result.hostile = hostile_count.load();
  result.responses = responded.load();
  result.ok = ok.load();
  result.deadline = deadline.load();
  result.overloaded = overloaded.load();
  result.invalid = invalid.load();
  result.shutdown = shutdown.load();
  result.other = other.load();

  for (const obs::MetricsSnapshot::Hist& h : local.metrics_snapshot().histograms) {
    if (h.name != "serve.latency_us") continue;
    result.p50 = h.percentile(0.50);
    result.p95 = h.percentile(0.95);
    result.p99 = h.percentile(0.99);
    result.p999 = h.percentile(0.999);
  }
  return result;
}

void print_storm_table(const StormResult& r) {
  std::fprintf(stderr, "=== S1: %zu-client mixed storm against a bounded server ===\n", kClients);
  std::fprintf(stderr, "%10s %10s %10s %10s %10s %10s %10s\n", "frames", "completed", "cancelled",
               "shed", "failed", "hits", "coalesced");
  std::fprintf(stderr, "%10zu %10llu %10llu %10llu %10llu %10llu %10llu\n", r.frames,
               static_cast<unsigned long long>(r.ledger.completed),
               static_cast<unsigned long long>(r.ledger.cancelled),
               static_cast<unsigned long long>(r.ledger.shed),
               static_cast<unsigned long long>(r.ledger.failed),
               static_cast<unsigned long long>(r.ledger.cache_hits),
               static_cast<unsigned long long>(r.ledger.coalesced));
  std::fprintf(stderr,
               "latency_us p50=%.0f p95=%.0f p99=%.0f p999=%.0f   wall=%.0f ms   "
               "conserved=%s\n",
               r.p50, r.p95, r.p99, r.p999, r.wall_ms, r.ledger.conserved() ? "yes" : "NO");
}

/// One synchronous request against an in-process server.
std::string call(Server* server, const std::string& frame) {
  std::mutex mu;
  std::condition_variable cv;
  std::string response;
  bool done = false;
  server->submit_frame(frame, [&](std::string line) {
    const std::lock_guard<std::mutex> lock(mu);
    response = std::move(line);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return response;
}

std::string as_cached(std::string line) {
  const std::size_t pos = line.find("\"cached\":false");
  if (pos != std::string::npos) line.replace(pos, 14, "\"cached\":true");
  return line;
}

struct ReplayResult {
  std::size_t frames = 0;
  std::size_t bit_identical = 0;
  u64 restart_hits = 0;
  u64 restart_misses = 0;
};

/// The crash-recovery bit-identity contract, end to end: compute through a
/// journaling server, restart a fresh server over the same journal, and
/// demand every response back byte-for-byte (modulo the cached flag).
ReplayResult run_replay_check() {
  ReplayResult result;
  obs::Registry local;
  const obs::ScopedRegistry scoped(&local);

  const std::string cache_path =
      "/tmp/bench_serve_cache." + std::to_string(::getpid()) + ".jsonl";
  std::remove(cache_path.c_str());

  const std::vector<std::string> frames = {
      "{\"op\":\"layout\",\"id\":\"r1\",\"n\":5}",
      "{\"op\":\"layout\",\"id\":\"r2\",\"n\":6,\"layers\":4}",
      "{\"op\":\"packaging\",\"id\":\"r3\",\"n\":6}",
      "{\"op\":\"census\",\"id\":\"r4\",\"n\":6,\"packets\":50000,\"seed\":3}",
      "{\"op\":\"census\",\"id\":\"r5\",\"n\":7,\"packets\":80000,\"seed\":4}",
      "{\"op\":\"sweep\",\"id\":\"r6\",\"n\":6,\"offered_load\":0.6,\"cycles\":20000,"
      "\"seed\":5}",
  };
  result.frames = frames.size();

  std::vector<std::string> first;
  {
    ServerOptions options;
    options.cache_path = cache_path;
    Server server(options);
    for (const std::string& frame : frames) first.push_back(call(&server, frame));
    server.drain(60'000);
  }
  {
    ServerOptions options;
    options.cache_path = cache_path;
    Server server(options);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (as_cached(first[i]) == call(&server, frames[i])) ++result.bit_identical;
    }
    const LedgerSnapshot ledger = server.drain(60'000);
    result.restart_hits = ledger.cache_hits;
    result.restart_misses = ledger.cache_misses;
  }
  std::remove(cache_path.c_str());
  return result;
}

void print_replay_table(const ReplayResult& r) {
  std::fprintf(stderr, "=== S2: journal restart replay (crash-recovery bit-identity) ===\n");
  std::fprintf(stderr,
               "frames=%zu bit_identical=%zu restart_hits=%llu restart_misses=%llu\n",
               r.frames, r.bit_identical, static_cast<unsigned long long>(r.restart_hits),
               static_cast<unsigned long long>(r.restart_misses));
}

// --- google-benchmark timings (stderr only, not gated) -----------------------

void BM_PingRoundTrip(benchmark::State& state) {
  const obs::ScopedRegistry scoped(nullptr);
  Server server(ServerOptions{});
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string response =
        call(&server, "{\"op\":\"ping\",\"id\":\"p" + std::to_string(i++) + "\"}");
    benchmark::DoNotOptimize(response);
  }
  server.drain(1'000);
}
BENCHMARK(BM_PingRoundTrip);

void BM_WarmCacheHit(benchmark::State& state) {
  const obs::ScopedRegistry scoped(nullptr);
  Server server(ServerOptions{});
  const std::string frame = "{\"op\":\"layout\",\"id\":\"w\",\"n\":7}";
  call(&server, frame);  // populate the cache
  for (auto _ : state) {
    const std::string response = call(&server, frame);
    benchmark::DoNotOptimize(response);
  }
  server.drain(1'000);
}
BENCHMARK(BM_WarmCacheHit);

void BM_ColdCensusCompute(benchmark::State& state) {
  const obs::ScopedRegistry scoped(nullptr);
  Server server(ServerOptions{});
  u64 seed = 0;  // a fresh seed per iteration defeats the memoizer
  for (auto _ : state) {
    const std::string response =
        call(&server, "{\"op\":\"census\",\"id\":\"c\",\"n\":5,\"packets\":20000,\"seed\":" +
                          std::to_string(seed++) + "}");
    benchmark::DoNotOptimize(response);
  }
  server.drain(5'000);
}
BENCHMARK(BM_ColdCensusCompute);

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bfly::bench::threads_override(&argc, argv);
  bfly::bench::BenchSession session("bench_serve");
  session.threads = threads;
  session.config("threads", static_cast<double>(threads));
  session.config("clients", static_cast<double>(kClients));
  session.config("frames_per_client", static_cast<double>(kFramesPerClient));
  session.config("mix_seed", static_cast<double>(kMixSeed));

  const StormResult storm = run_storm();
  print_storm_table(storm);
  const ReplayResult replay = run_replay_check();
  print_replay_table(replay);

  // The gated invariants: exact on every machine.
  const bool ledger_pass = storm.ledger.conserved() && storm.ledger.accepted == storm.frames;
  session.artifact("serve_clients", static_cast<double>(kClients));
  session.artifact("serve_frames", static_cast<double>(storm.frames));
  session.artifact("serve_ledger_pass", ledger_pass ? 1.0 : 0.0);
  session.artifact("serve_all_answered_pass", storm.responses == storm.frames ? 1.0 : 0.0);
  // Hostile frames — and only hostile frames — answer invalid_request.
  session.artifact("serve_hostile_rejected_pass",
                   storm.invalid == storm.hostile && storm.other == 0 ? 1.0 : 0.0);
  session.artifact("serve_replay_bitwise_pass",
                   replay.bit_identical == replay.frames && replay.restart_misses == 0 ? 1.0
                                                                                      : 0.0);
  session.artifact("serve_replay_frames", static_cast<double>(replay.frames));

  // Machine-speed-dependent facts: reported for the trajectory, ignore-ruled
  // in the gate (thresholds.json).
  json::Value counts = json::Value::object();
  counts.set("completed", json::Value::number(static_cast<double>(storm.ledger.completed)));
  counts.set("cancelled", json::Value::number(static_cast<double>(storm.ledger.cancelled)));
  counts.set("shed", json::Value::number(static_cast<double>(storm.ledger.shed)));
  counts.set("failed", json::Value::number(static_cast<double>(storm.ledger.failed)));
  counts.set("cache_hits", json::Value::number(static_cast<double>(storm.ledger.cache_hits)));
  counts.set("coalesced", json::Value::number(static_cast<double>(storm.ledger.coalesced)));
  counts.set("wall_ms", json::Value::number(storm.wall_ms));
  session.artifact("serve_storm", std::move(counts));
  json::Value latency = json::Value::object();
  latency.set("p50", json::Value::number(storm.p50));
  latency.set("p95", json::Value::number(storm.p95));
  latency.set("p99", json::Value::number(storm.p99));
  latency.set("p999", json::Value::number(storm.p999));
  session.artifact("serve_latency_us", std::move(latency));

  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
