// Experiment E8 (Theorem 4.1): multilayer layouts for L = 2..16 layers.
// area -> 4 N^2/(L^2 log^2 N) (even) and 4 N^2/((L^2-1) log^2 N) (odd);
// max wire -> 2N/(L log N); volume -> 4 N^2/(L log^2 N).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "core/bfly.hpp"

namespace {

using namespace bfly;

void print_theorem41_table(int n) {
  const double nodes = formulas::nodes(n);
  std::fprintf(stderr, "=== E8: multilayer layouts of B_%d (N = %.0f nodes), Theorem 4.1 ===\n", n,
              nodes);
  std::fprintf(stderr, "%4s %14s %12s %8s %10s %8s %14s %8s\n", "L", "area", "formula", "ratio",
              "max wire", "ratio", "volume", "ratio");
  for (const int L : {2, 3, 4, 5, 6, 8, 12, 16}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n), opt);
    const LayoutMetrics m = plan.metrics();
    const double f_area = formulas::multilayer_area(n, L);
    const double f_wire = formulas::multilayer_max_wire(n, L);
    const double f_vol = formulas::multilayer_volume(n, L);
    std::fprintf(stderr, "%4d %14lld %12.0f %8.3f %10lld %8.3f %14lld %8.3f\n", L,
                static_cast<long long>(m.area), f_area, static_cast<double>(m.area) / f_area,
                static_cast<long long>(m.max_wire_length),
                static_cast<double>(m.max_wire_length) / f_wire,
                static_cast<long long>(m.volume),
                static_cast<double>(m.volume) / f_vol);
  }
  std::fprintf(stderr, "paper: ratios -> 1 as n grows; the channel term scales exactly as the\n");
  std::fprintf(stderr, "       formulas while the block term (o()) is L-independent.\n\n");
}

void print_fold_ablation(int n) {
  // Design-choice ablation (DESIGN.md): the paper leaves block internals on
  // two layers (an o() term); folding them across the layer groups as well
  // makes the measured area track the 1/L^2 law at practical sizes.
  std::fprintf(stderr, "--- ablation: intra-block channel folding (B_%d) ---\n", n);
  std::fprintf(stderr, "%4s %14s %14s %8s %10s %10s\n", "L", "plain area", "folded area", "shrink",
              "plain/f", "folded/f");
  for (const int L : {2, 4, 6, 8, 12, 16}) {
    ButterflyLayoutOptions plain;
    plain.layers = L;
    ButterflyLayoutOptions folded = plain;
    folded.fold_block_channels = true;
    const auto kparams = ButterflyLayoutPlan::choose_parameters(n);
    const double a_plain =
        static_cast<double>(ButterflyLayoutPlan(kparams, plain).metrics().area);
    const double a_folded =
        static_cast<double>(ButterflyLayoutPlan(kparams, folded).metrics().area);
    const double f = formulas::multilayer_area(n, L);
    std::fprintf(stderr, "%4d %14.0f %14.0f %7.2fx %10.3f %10.3f\n", L, a_plain, a_folded,
                a_plain / a_folded, a_plain / f, a_folded / f);
  }
  std::fprintf(stderr, "\n");
}

void print_channel_scaling(int n) {
  std::fprintf(stderr, "--- channel positions (exact folding, B_%d) ---\n", n);
  std::fprintf(stderr, "%4s %14s %14s\n", "L", "row positions", "col positions");
  for (const int L : {2, 3, 4, 5, 6, 8, 12, 16}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n), opt);
    std::fprintf(stderr, "%4d %14lld %14lld\n", L, static_cast<long long>(plan.row_fold().positions),
                static_cast<long long>(plan.col_fold().positions));
  }
  std::fprintf(stderr, "\n");
}

void BM_MultilayerMetrics(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  ButterflyLayoutOptions opt;
  opt.layers = L;
  const ButterflyLayoutPlan plan({4, 4, 4}, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.metrics().area);
  }
}
BENCHMARK(BM_MultilayerMetrics)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_MultilayerLegality(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  ButterflyLayoutOptions opt;
  opt.layers = L;
  const ButterflyLayoutPlan plan({3, 3, 3}, opt);
  const Layout layout = plan.materialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_multilayer(layout).ok);
  }
}
BENCHMARK(BM_MultilayerLegality)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_multilayer");
  print_theorem41_table(12);
  print_theorem41_table(15);
  print_channel_scaling(12);
  print_fold_ablation(12);
  print_fold_ablation(15);
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
