// Experiment E2 (Figs. 1-2, Sec. 2.2): ISN -> swap-butterfly transformation
// and the explicit isomorphism onto B_n, across parameterizations and sizes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "core/bfly.hpp"

namespace {

using namespace bfly;

std::string shape_name(const std::vector<int>& k) {
  std::string s = "(";
  for (std::size_t i = 0; i < k.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(k[i]);
  }
  return s + ")";
}

void print_transform_table() {
  std::fprintf(stderr, "=== E2: swap-butterfly automorphisms of B_n (Figs. 1-2) ===\n");
  std::fprintf(stderr, "%-14s %4s %10s %10s %12s %6s\n", "k", "n", "rows", "nodes", "links", "iso?");
  const std::vector<std::vector<int>> shapes = {
      {1, 1},       {1, 1, 1},    {2, 2},    {3, 3, 3},    {4, 3, 3},
      {4, 4, 3},    {4, 4, 4},    {5, 5, 5}, {2, 2, 2, 2}, {4, 4, 4, 4},
      {6, 6, 6},
  };
  for (const auto& k : shapes) {
    const SwapButterfly sb(k);
    const Butterfly target(sb.dimension());
    std::string why;
    const bool iso =
        is_isomorphism(sb.graph(), target.graph(), sb.isomorphism_to_butterfly(), &why);
    std::fprintf(stderr, "%-14s %4d %10llu %10llu %12llu %6s\n", shape_name(k).c_str(), sb.dimension(),
                static_cast<unsigned long long>(sb.rows()),
                static_cast<unsigned long long>(sb.num_nodes()),
                static_cast<unsigned long long>(sb.num_links()), iso ? "yes" : "NO");
  }
  std::fprintf(stderr, "paper: every ISN(k_1..k_l) transforms into an automorphism of B_{n_l}.\n\n");
}

void BM_SwapButterflyBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const SwapButterfly sb({k, k, k});
    benchmark::DoNotOptimize(sb.dimension());
  }
}
BENCHMARK(BM_SwapButterflyBuild)->Arg(2)->Arg(4)->Arg(6);

void BM_IsomorphismVerification(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SwapButterfly sb({k, k, k});
  const Graph a = sb.graph();
  const Graph b = Butterfly(sb.dimension()).graph();
  const auto map = sb.isomorphism_to_butterfly();
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_isomorphism(a, b, map));
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) *
                          static_cast<benchmark::IterationCount>(a.num_edges()));
}
BENCHMARK(BM_IsomorphismVerification)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_GraphContraction(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SwapButterfly sb({k, k, k});
  const Graph g = sb.graph();
  std::vector<u64> labels(g.num_nodes());
  for (u64 id = 0; id < g.num_nodes(); ++id) labels[id] = sb.row_of(id) >> k;
  for (auto _ : state) {
    const Graph q = g.contract(labels, pow2(2 * k));
    benchmark::DoNotOptimize(q.num_edges());
  }
}
BENCHMARK(BM_GraphContraction)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_transform");
  print_transform_table();
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
