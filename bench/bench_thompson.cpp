// Experiments E3 + E7 (Sec. 3, Fig. 3): the recursive grid layout under the
// Thompson model.  Measured area -> N^2/log2^2(N) = 2^{2n} and measured max
// wire length -> N/log2(N) = 2^n, with machine-checked legality at the sizes
// where geometry fits in memory.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "core/bfly.hpp"

namespace {

using namespace bfly;

void print_convergence_table() {
  std::fprintf(stderr, "=== E7: Thompson-model butterfly layout (Sec. 3) ===\n");
  std::fprintf(stderr, "%4s %-10s %16s %10s %12s %10s %8s\n", "n", "k", "area", "area/2^2n", "max wire",
              "wire/2^n", "legal");
  for (const int n : {3, 6, 9, 12, 15, 18}) {
    const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n));
    const LayoutMetrics m = plan.metrics();
    const double area_ratio = static_cast<double>(m.area) / formulas::thompson_area(n);
    const double wire_ratio =
        static_cast<double>(m.max_wire_length) / formulas::thompson_max_wire(n);
    const char* legal = "-";
    if (n <= 12) {
      const LegalityReport thompson = check_thompson(plan.materialize());
      const LegalityReport multi = check_multilayer(plan.materialize());
      legal = thompson.ok && multi.ok ? "yes" : "NO";
    }
    const auto& k = plan.network().group_sizes();
    std::fprintf(stderr, "%4d (%d,%d,%d)%*s %16lld %10.3f %12lld %10.3f %8s\n", n, k[0], k[1], k[2],
                3, "", static_cast<long long>(m.area), area_ratio,
                static_cast<long long>(m.max_wire_length), wire_ratio, legal);
  }
  std::fprintf(stderr, "paper: area = N^2/log2^2 N (1+o(1)) [ratio -> 1], max wire = N/log2 N\n");
  std::fprintf(stderr, "       (1+o(1)) [ratio -> 1]; both ratios must decrease monotonically.\n");
  std::fprintf(stderr, "       The o(1) is the Theta(2^{n/3}) block side vs Theta(2^{2n/3}) channels.\n\n");
}

void print_structure() {
  // Fig. 3: the top-view structure of the recursive grid layout.
  const ButterflyLayoutPlan plan({2, 2, 2});
  std::fprintf(stderr, "=== E3: recursive grid layout structure (Fig. 3), n=6 ===\n");
  std::fprintf(stderr, "blocks: %llu x %llu grid, block %lld x %lld, cell %lld x %lld\n",
              static_cast<unsigned long long>(plan.grid_rows()),
              static_cast<unsigned long long>(plan.grid_cols()),
              static_cast<long long>(plan.block_width()),
              static_cast<long long>(plan.block_height()),
              static_cast<long long>(plan.cell_width()),
              static_cast<long long>(plan.cell_height()));
  std::fprintf(stderr, "row channels: %llu logical tracks; column channels: %llu logical tracks\n\n",
              static_cast<unsigned long long>(plan.row_fold().logical_tracks),
              static_cast<unsigned long long>(plan.col_fold().logical_tracks));
}

void print_prior_art() {
  std::fprintf(stderr, "--- prior-art leading constants (x N^2/log2^2 N, introduction) ---\n");
  std::fprintf(stderr, "%-42s %10s\n", "layout", "constant");
  std::fprintf(stderr, "%-42s %10.3f\n", "Avior et al. [1], upright 2-layer", formulas::avior_area_constant());
  std::fprintf(stderr, "%-42s %10.3f\n", "Muthukrishnan et al. [16], knock-knee",
              formulas::knock_knee_area_constant());
  std::fprintf(stderr, "%-42s %10.3f\n", "Dinitz et al. [10], slanted rectangle",
              formulas::dinitz_slanted_area_constant());
  for (const int L : {2, 3, 4, 8}) {
    std::fprintf(stderr, "this paper, multilayer L=%-17d %10.3f\n", L,
                formulas::multilayer_area_constant(L));
  }
  std::fprintf(stderr, "\n");
}

void BM_LayoutMetricsStreaming(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n));
  for (auto _ : state) {
    const LayoutMetrics m = plan.metrics();
    benchmark::DoNotOptimize(m.area);
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) *
                          static_cast<benchmark::IterationCount>(plan.network().num_links()));
}
BENCHMARK(BM_LayoutMetricsStreaming)->Arg(6)->Arg(9)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_LayoutMaterialize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n));
  for (auto _ : state) {
    const Layout layout = plan.materialize();
    benchmark::DoNotOptimize(layout.wires().data());
  }
}
BENCHMARK(BM_LayoutMaterialize)->Arg(6)->Arg(9)->Unit(benchmark::kMillisecond);

void BM_MultilayerLegalityCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n));
  const Layout layout = plan.materialize();
  for (auto _ : state) {
    const LegalityReport r = check_multilayer(layout);
    benchmark::DoNotOptimize(r.ok);
  }
}
BENCHMARK(BM_MultilayerLegalityCheck)->Arg(6)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_thompson");
  print_structure();
  print_convergence_table();
  print_prior_art();
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
