// Experiment F: graceful degradation of the butterfly under faults.
//
// Two reproduction tables:
//   * the degradation curve of B_8 — BFS-oracle reachability, the budgeted
//     router's delivered fraction and drop breakdown, and saturation
//     throughput/latency, swept over random link-fault rates;
//   * single-chip failure sensitivity of the Section 5 package (B_9 on 64
//     pin-limited chips): what the worst chip failure costs in surviving
//     reachability and dead board-channel links.
//
// Every number in artifact_stats is seeded and bitwise deterministic (the
// fault subsystem's determinism contract), so the baseline gate compares
// them exactly; only wall-clock spans get loose thresholds.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/bfly.hpp"

namespace {

using namespace bfly;

constexpr int kCurveN = 8;
constexpr u64 kCurveSeed = 2026;

DegradationOptions curve_options() {
  DegradationOptions options;
  options.census_packets = 500'000;
  options.sim_cycles = 2000;
  options.sim_warmup = 200;
  options.offered_load = 0.6;
  return options;
}

const std::vector<double>& curve_rates() {
  static const std::vector<double> rates = {0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1};
  return rates;
}

std::vector<DegradationPoint> print_degradation_curve(bfly::bench::BenchSession* session) {
  std::fprintf(stderr, "=== F1: graceful degradation of B_%d under random link faults ===\n",
               kCurveN);
  std::fprintf(stderr, "%8s %6s %8s %11s %9s %9s %10s %10s %9s\n", "rate", "dead", "reach",
               "delivered", "misroute", "wraps", "dropped", "thruput", "latency");
  // The split degradation API: the per-rate queued simulations run through the
  // resilient driver (checkpointed under $BFLY_CHECKPOINT_DIR), then the
  // serial census/reachability instruments assemble the curve.  Bitwise
  // identical to the degradation_curve() convenience wrapper.
  BFLY_TRACE_SCOPE("fault.degradation_curve");
  const DegradationSweep sweep =
      degradation_sweep(kCurveN, curve_rates(), kCurveSeed, curve_options());
  const std::vector<SweepOutcome> sims =
      session->resilient_sweep("degradation", sweep.sweep_points);
  const std::vector<DegradationPoint> curve = degradation_curve_from(
      kCurveN, curve_rates(), kCurveSeed, curve_options(), sweep, sims);
  for (const DegradationPoint& pt : curve) {
    const u64 dropped = pt.dropped_endpoint + pt.dropped_no_alive_link + pt.dropped_budget;
    std::fprintf(stderr, "%8.3f %6llu %8.4f %10.2f%% %9llu %9llu %10llu %10.4f %9.2f\n",
                 pt.link_fault_rate, static_cast<unsigned long long>(pt.dead_links),
                 pt.reachability, 100.0 * pt.delivered_fraction,
                 static_cast<unsigned long long>(pt.misroutes),
                 static_cast<unsigned long long>(pt.wraps),
                 static_cast<unsigned long long>(dropped), pt.throughput, pt.avg_latency);
  }
  std::fprintf(stderr,
               "reach = exact BFS-oracle pair reachability; delivered = budgeted router\n"
               "(misroute %d / wrap %d).  The fabric degrades gracefully: a few %% of dead\n"
               "links costs a few %% of pairs, not a partition.\n\n",
               FaultRoutingOptions{}.misroute_budget, FaultRoutingOptions{}.wrap_budget);
  return curve;
}

SpareChipSummary print_spare_chip_table(const HierarchicalPlan& plan) {
  std::fprintf(stderr, "--- single-chip failure sweep of the Section 5 package (B_%d) ---\n",
               plan.n);
  const SpareChipSummary summary = spare_chip_sensitivity(plan);
  std::fprintf(stderr, "%28s %12llu\n", "chips",
               static_cast<unsigned long long>(summary.num_chips));
  std::fprintf(stderr, "%28s %12llu\n", "nodes lost per failure",
               static_cast<unsigned long long>(summary.nodes_per_chip));
  std::fprintf(stderr, "%28s %6llu..%llu\n", "dead off-module links",
               static_cast<unsigned long long>(summary.min_dead_offmodule_links),
               static_cast<unsigned long long>(summary.max_dead_offmodule_links));
  std::fprintf(stderr, "%28s %12.4f\n", "best surviving reachability", summary.best_reachability);
  std::fprintf(stderr, "%28s %12.4f  (chip %llu)\n", "worst surviving reachability",
               summary.worst_reachability, static_cast<unsigned long long>(summary.worst_chip));
  std::fprintf(stderr,
               "any single chip failure costs the same node block; reachability stays\n"
               "above %.0f%%, so one spare chip per board restores full service.\n\n",
               100.0 * summary.worst_reachability);
  return summary;
}

json::Value curve_artifact(const std::vector<DegradationPoint>& curve) {
  json::Value arr = json::Value::array();
  for (const DegradationPoint& pt : curve) {
    json::Value o = json::Value::object();
    o.set("rate", json::Value::number(pt.link_fault_rate));
    o.set("dead_links", json::Value::number(pt.dead_links));
    o.set("reachability", json::Value::number(pt.reachability));
    o.set("reachability_exact", json::Value::boolean(pt.reachability_exact));
    o.set("delivered_fraction", json::Value::number(pt.delivered_fraction));
    o.set("dropped_endpoint", json::Value::number(pt.dropped_endpoint));
    o.set("dropped_no_alive_link", json::Value::number(pt.dropped_no_alive_link));
    o.set("dropped_budget", json::Value::number(pt.dropped_budget));
    o.set("misroutes", json::Value::number(pt.misroutes));
    o.set("wraps", json::Value::number(pt.wraps));
    o.set("throughput", json::Value::number(pt.throughput));
    o.set("avg_latency", json::Value::number(pt.avg_latency));
    o.set("sim_delivered", json::Value::number(pt.sim_delivered));
    arr.push_back(std::move(o));
  }
  return arr;
}

json::Value spare_chip_artifact(const SpareChipSummary& summary) {
  json::Value o = json::Value::object();
  o.set("num_chips", json::Value::number(summary.num_chips));
  o.set("nodes_per_chip", json::Value::number(summary.nodes_per_chip));
  o.set("min_dead_offmodule_links", json::Value::number(summary.min_dead_offmodule_links));
  o.set("max_dead_offmodule_links", json::Value::number(summary.max_dead_offmodule_links));
  o.set("best_reachability", json::Value::number(summary.best_reachability));
  o.set("worst_reachability", json::Value::number(summary.worst_reachability));
  o.set("worst_chip", json::Value::number(summary.worst_chip));
  return o;
}

void BM_FaultCensus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FaultSet faults = FaultSet::random_links(n, 0.02, 1);
  for (auto _ : state) {
    const FaultLoadCensus c = measure_link_loads_faulty(n, 500'000, 1, faults);
    benchmark::DoNotOptimize(c.tally.delivered);
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) * 500'000);
}
BENCHMARK(BM_FaultCensus)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_FaultSaturation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FaultSet faults = FaultSet::random_links(n, 0.02, 1);
  for (auto _ : state) {
    const FaultSaturationPoint p = simulate_saturation_faulty(n, 0.8, 500, 5, faults, {}, 50);
    benchmark::DoNotOptimize(p.point.delivered);
  }
}
BENCHMARK(BM_FaultSaturation)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ExactReachability(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FaultSet faults = FaultSet::random_links(n, 0.05, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_reachability(n, faults));
  }
}
BENCHMARK(BM_ExactReachability)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bfly::bench::BenchSession session("bench_fault");
  session.config("curve_n", kCurveN);
  session.config("curve_seed", static_cast<double>(kCurveSeed));
  session.config("census_packets", 500'000);
  session.config("sim_cycles", 2000);
  session.config("offered_load", 0.6);

  const std::vector<DegradationPoint> curve = print_degradation_curve(&session);
  const HierarchicalPlan plan = plan_hierarchical(9, {});
  const SpareChipSummary spare = print_spare_chip_table(plan);

  session.artifact("degradation", curve_artifact(curve));
  session.artifact("spare_chip", spare_chip_artifact(spare));
  session.artifact_percentiles("fault.latency_cycles", "fault.latency_cycles");
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
