// Experiment F: graceful degradation of the butterfly under faults.
//
// Two reproduction tables:
//   * the degradation curve of B_8 — BFS-oracle reachability, the budgeted
//     router's delivered fraction and drop breakdown, and saturation
//     throughput/latency, swept over random link-fault rates;
//   * single-chip failure sensitivity of the Section 5 package (B_9 on 64
//     pin-limited chips): what the worst chip failure costs in surviving
//     reachability and dead board-channel links.
//
// Two resilience tables:
//   * a scripted live-fault run of B_8 — a chip of the Section 5 plan dies
//     mid-run, a provisioned spare chip takes over after the detection
//     latency, and a link fails and is repaired later; the recovery
//     analytics (time-to-recover, transient packet loss, residual
//     throughput) gate exactly;
//   * an availability curve — seeded random MTBF/MTTR link schedules on B_6
//     against a pristine baseline.
//
// Every number in artifact_stats is seeded and bitwise deterministic (the
// fault subsystem's determinism contract), so the baseline gate compares
// them exactly; only wall-clock spans get loose thresholds.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "core/bfly.hpp"

namespace {

using namespace bfly;

constexpr int kCurveN = 8;
constexpr u64 kCurveSeed = 2026;

DegradationOptions curve_options() {
  DegradationOptions options;
  options.census_packets = 500'000;
  options.sim_cycles = 2000;
  options.sim_warmup = 200;
  options.offered_load = 0.6;
  return options;
}

const std::vector<double>& curve_rates() {
  static const std::vector<double> rates = {0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1};
  return rates;
}

std::vector<DegradationPoint> print_degradation_curve(bfly::bench::BenchSession* session) {
  std::fprintf(stderr, "=== F1: graceful degradation of B_%d under random link faults ===\n",
               kCurveN);
  std::fprintf(stderr, "%8s %6s %8s %11s %9s %9s %10s %10s %9s\n", "rate", "dead", "reach",
               "delivered", "misroute", "wraps", "dropped", "thruput", "latency");
  // The split degradation API: the per-rate queued simulations run through the
  // resilient driver (checkpointed under $BFLY_CHECKPOINT_DIR), then the
  // serial census/reachability instruments assemble the curve.  Bitwise
  // identical to the degradation_curve() convenience wrapper.
  BFLY_TRACE_SCOPE("fault.degradation_curve");
  const DegradationSweep sweep =
      degradation_sweep(kCurveN, curve_rates(), kCurveSeed, curve_options());
  const std::vector<SweepOutcome> sims =
      session->resilient_sweep("degradation", sweep.sweep_points);
  const std::vector<DegradationPoint> curve = degradation_curve_from(
      kCurveN, curve_rates(), kCurveSeed, curve_options(), sweep, sims);
  for (const DegradationPoint& pt : curve) {
    const u64 dropped = pt.dropped_endpoint + pt.dropped_no_alive_link + pt.dropped_budget;
    std::fprintf(stderr, "%8.3f %6llu %8.4f %10.2f%% %9llu %9llu %10llu %10.4f %9.2f\n",
                 pt.link_fault_rate, static_cast<unsigned long long>(pt.dead_links),
                 pt.reachability, 100.0 * pt.delivered_fraction,
                 static_cast<unsigned long long>(pt.misroutes),
                 static_cast<unsigned long long>(pt.wraps),
                 static_cast<unsigned long long>(dropped), pt.throughput, pt.avg_latency);
  }
  std::fprintf(stderr,
               "reach = exact BFS-oracle pair reachability; delivered = budgeted router\n"
               "(misroute %d / wrap %d).  The fabric degrades gracefully: a few %% of dead\n"
               "links costs a few %% of pairs, not a partition.\n\n",
               FaultRoutingOptions{}.misroute_budget, FaultRoutingOptions{}.wrap_budget);
  return curve;
}

SpareChipSummary print_spare_chip_table(const HierarchicalPlan& plan) {
  std::fprintf(stderr, "--- single-chip failure sweep of the Section 5 package (B_%d) ---\n",
               plan.n);
  const SpareChipSummary summary = spare_chip_sensitivity(plan);
  std::fprintf(stderr, "%28s %12llu\n", "chips",
               static_cast<unsigned long long>(summary.num_chips));
  std::fprintf(stderr, "%28s %12llu\n", "nodes lost per failure",
               static_cast<unsigned long long>(summary.nodes_per_chip));
  std::fprintf(stderr, "%28s %6llu..%llu\n", "dead off-module links",
               static_cast<unsigned long long>(summary.min_dead_offmodule_links),
               static_cast<unsigned long long>(summary.max_dead_offmodule_links));
  std::fprintf(stderr, "%28s %12.4f\n", "best surviving reachability", summary.best_reachability);
  std::fprintf(stderr, "%28s %12.4f  (chip %llu)\n", "worst surviving reachability",
               summary.worst_reachability, static_cast<unsigned long long>(summary.worst_chip));
  std::fprintf(stderr,
               "any single chip failure costs the same node block; reachability stays\n"
               "above %.0f%%, so one spare chip per board restores full service.\n\n",
               100.0 * summary.worst_reachability);
  return summary;
}

json::Value curve_artifact(const std::vector<DegradationPoint>& curve) {
  json::Value arr = json::Value::array();
  for (const DegradationPoint& pt : curve) {
    json::Value o = json::Value::object();
    o.set("rate", json::Value::number(pt.link_fault_rate));
    o.set("dead_links", json::Value::number(pt.dead_links));
    o.set("reachability", json::Value::number(pt.reachability));
    o.set("reachability_exact", json::Value::boolean(pt.reachability_exact));
    o.set("delivered_fraction", json::Value::number(pt.delivered_fraction));
    o.set("dropped_endpoint", json::Value::number(pt.dropped_endpoint));
    o.set("dropped_no_alive_link", json::Value::number(pt.dropped_no_alive_link));
    o.set("dropped_budget", json::Value::number(pt.dropped_budget));
    o.set("misroutes", json::Value::number(pt.misroutes));
    o.set("wraps", json::Value::number(pt.wraps));
    o.set("throughput", json::Value::number(pt.throughput));
    o.set("avg_latency", json::Value::number(pt.avg_latency));
    o.set("sim_delivered", json::Value::number(pt.sim_delivered));
    arr.push_back(std::move(o));
  }
  return arr;
}

json::Value spare_chip_artifact(const SpareChipSummary& summary) {
  json::Value o = json::Value::object();
  o.set("num_chips", json::Value::number(summary.num_chips));
  o.set("nodes_per_chip", json::Value::number(summary.nodes_per_chip));
  o.set("min_dead_offmodule_links", json::Value::number(summary.min_dead_offmodule_links));
  o.set("max_dead_offmodule_links", json::Value::number(summary.max_dead_offmodule_links));
  o.set("best_reachability", json::Value::number(summary.best_reachability));
  o.set("worst_reachability", json::Value::number(summary.worst_reachability));
  o.set("worst_chip", json::Value::number(summary.worst_chip));
  return o;
}

// --- live faults -------------------------------------------------------------

constexpr int kLiveN = 8;
constexpr u64 kLiveSeed = 91;
constexpr u64 kLiveCycles = 4000;
constexpr u64 kLiveChip = 2;
constexpr u64 kLiveChipFailCycle = 1000;
constexpr u64 kLiveDetectionLatency = 200;

/// The scripted fail -> failover -> repair timeline: chip kLiveChip of the
/// B_8 packaging plan dies at cycle 1000 and is absorbed by the one spare
/// after 200 cycles of detection latency; later one cross link fails and is
/// explicitly repaired.
FaultSchedule live_schedule() {
  FaultSchedule schedule(kLiveN);
  schedule.attach_plan(plan_hierarchical(kLiveN, {}));
  schedule.set_failover({/*spare_chips=*/1, /*detection_latency=*/kLiveDetectionLatency});
  schedule.fail_chip_at(kLiveChipFailCycle, kLiveChip);
  schedule.fail_link_at(2500, /*row=*/5, /*stage=*/3, /*cross=*/true);
  schedule.repair_link_at(2800, /*row=*/5, /*stage=*/3, /*cross=*/true);
  return schedule;
}

void print_live_fault_table(bfly::bench::BenchSession* session) {
  std::fprintf(stderr, "=== F2: live fault -> spare-chip failover -> repair (B_%d) ===\n",
               kLiveN);
  const FaultSchedule schedule = live_schedule();
  // Point 0 is the pristine reference, point 1 runs the schedule; both
  // record the cycle-resolved series the recovery analysis reads.
  std::vector<SweepPoint> points(2);
  for (SweepPoint& p : points) {
    p.n = kLiveN;
    p.offered_load = 0.6;
    p.cycles = kLiveCycles;
    p.seed = kLiveSeed;
    p.telemetry_budget = 512;
  }
  points[1].schedule = &schedule;
  const std::vector<SweepOutcome> sims = session->resilient_sweep("live_fault", points);

  const LiveFaultStats& live = sims[1].live;
  std::fprintf(stderr,
               "schedule: chip %llu fails @%llu (1 spare, detection %llu), link (5,3,x)"
               " fails @2500, repaired @2800\n"
               "applied: %llu fail / %llu repair events, %llu failover(s) (%llu spare(s)),"
               " links killed %llu / revived %llu\n",
               static_cast<unsigned long long>(kLiveChip),
               static_cast<unsigned long long>(kLiveChipFailCycle),
               static_cast<unsigned long long>(kLiveDetectionLatency),
               static_cast<unsigned long long>(live.fail_events),
               static_cast<unsigned long long>(live.repair_events),
               static_cast<unsigned long long>(live.failovers),
               static_cast<unsigned long long>(live.spares_used),
               static_cast<unsigned long long>(live.links_killed),
               static_cast<unsigned long long>(live.links_revived));

  json::Value live_artifact = json::Value::object();
  live_artifact.set("fail_events", json::Value::number(live.fail_events));
  live_artifact.set("repair_events", json::Value::number(live.repair_events));
  live_artifact.set("failovers", json::Value::number(live.failovers));
  live_artifact.set("spares_used", json::Value::number(live.spares_used));
  live_artifact.set("links_killed", json::Value::number(live.links_killed));
  live_artifact.set("links_revived", json::Value::number(live.links_revived));
  live_artifact.set("packets_killed",
                    json::Value::number(
                        sims[1].tally.dropped[drop_index(DropReason::kKilledByFault)]));
  session->artifact("live_fault", std::move(live_artifact));

  // The schedule itself is reproducible input: exported for CI artifact
  // upload when $BFLY_SCHEDULE_FILE names a path.
  if (const char* path = std::getenv("BFLY_SCHEDULE_FILE")) {
    if (path[0] != '\0') util::atomic_write_file(path, schedule.to_json().dump() + "\n");
  }

  const RecoveryAnalysis rec = analyze_recovery(sims[1].timeseries, schedule);
  if (!rec.applicable) {
    // BFLY_OBS=OFF records no series; keep the report valid without the
    // recovery block (the gate skips it, like the histogram exports).
    std::fprintf(stderr, "no telemetry series recorded; recovery analysis skipped\n\n");
    return;
  }
  std::fprintf(stderr, "%10s %10s %11s %10s %6s %13s\n", "fault@", "pre-thru", "recovered",
               "recov@", "ttr", "packets lost");
  json::Value rec_artifact = json::Value::array();
  for (const RecoveryEvent& ev : rec.events) {
    std::fprintf(stderr, "%10llu %10.4f %11s %10llu %6llu %13llu\n",
                 static_cast<unsigned long long>(ev.fault_cycle), ev.pre_throughput,
                 ev.recovered ? "yes" : "NO",
                 static_cast<unsigned long long>(ev.recovered_cycle),
                 static_cast<unsigned long long>(ev.time_to_recover_cycles),
                 static_cast<unsigned long long>(ev.packets_lost));
    json::Value o = json::Value::object();
    o.set("fault_cycle", json::Value::number(ev.fault_cycle));
    o.set("pre_throughput", json::Value::number(ev.pre_throughput));
    o.set("recovered", json::Value::boolean(ev.recovered));
    o.set("recovered_cycle", json::Value::number(ev.recovered_cycle));
    o.set("time_to_recover_cycles", json::Value::number(ev.time_to_recover_cycles));
    o.set("packets_lost", json::Value::number(ev.packets_lost));
    rec_artifact.push_back(std::move(o));
  }
  std::fprintf(stderr,
               "residual throughput after all repairs: %.4f of the pre-fault steady state\n\n",
               rec.residual_throughput);
  session->artifact("recovery", std::move(rec_artifact));
  // The headline scalars the gate matches exactly: the chip failure's
  // recovery time, the total transient loss, and the residual level.
  session->artifact("recovery_time_to_recover_cycles",
                    static_cast<double>(rec.events.empty()
                                            ? 0
                                            : rec.events.front().time_to_recover_cycles));
  session->artifact("recovery_packets_lost", static_cast<double>(rec.packets_lost_total));
  session->artifact("failover_residual_throughput", rec.residual_throughput);
  // The scheduled point's series (with its dead_links channel stepping at
  // the fault epochs) rides along as the report's v2 telemetry block.
  session->timeseries(sims[1].timeseries.to_json());
}

constexpr int kAvailN = 6;
constexpr u64 kAvailSeed = 7;

const std::vector<u64>& avail_mtbf() {
  static const std::vector<u64> v = {200'000, 50'000};
  return v;
}
const std::vector<u64>& avail_mttr() {
  static const std::vector<u64> v = {300, 1'000};
  return v;
}

AvailabilityOptions avail_options() {
  AvailabilityOptions options;
  options.sim_cycles = 3000;
  options.offered_load = 0.6;
  options.telemetry_budget = 256;
  return options;
}

void print_availability_table(bfly::bench::BenchSession* session) {
  std::fprintf(stderr, "--- availability under random MTBF/MTTR link schedules (B_%d) ---\n",
               kAvailN);
  const AvailabilityOptions options = avail_options();
  const AvailabilitySweep sweep =
      availability_sweep(kAvailN, avail_mtbf(), avail_mttr(), kAvailSeed, options);
  const std::vector<SweepOutcome> sims =
      session->resilient_sweep("availability", sweep.sweep_points);
  const std::vector<AvailabilityPoint> curve = availability_curve_from(
      kAvailN, avail_mtbf(), avail_mttr(), kAvailSeed, options, sweep, sims);

  std::fprintf(stderr, "%8s %6s %6s %8s %13s %9s %8s %7s %7s\n", "mtbf", "mttr", "fails",
               "repairs", "availability", "recovered", "avg ttr", "lost", "killed");
  json::Value arr = json::Value::array();
  for (const AvailabilityPoint& pt : curve) {
    std::fprintf(stderr, "%8llu %6llu %6llu %8llu %13.4f %6llu/%-2llu %8.1f %7llu %7llu\n",
                 static_cast<unsigned long long>(pt.mtbf),
                 static_cast<unsigned long long>(pt.mttr),
                 static_cast<unsigned long long>(pt.fail_events),
                 static_cast<unsigned long long>(pt.repair_events), pt.availability,
                 static_cast<unsigned long long>(pt.events_recovered),
                 static_cast<unsigned long long>(pt.events_total), pt.avg_time_to_recover,
                 static_cast<unsigned long long>(pt.packets_lost),
                 static_cast<unsigned long long>(pt.packets_killed));
    json::Value o = json::Value::object();
    o.set("mtbf", json::Value::number(pt.mtbf));
    o.set("mttr", json::Value::number(pt.mttr));
    o.set("fail_events", json::Value::number(pt.fail_events));
    o.set("repair_events", json::Value::number(pt.repair_events));
    o.set("availability", json::Value::number(pt.availability));
    o.set("avg_time_to_recover", json::Value::number(pt.avg_time_to_recover));
    o.set("events_total", json::Value::number(pt.events_total));
    o.set("events_recovered", json::Value::number(pt.events_recovered));
    o.set("packets_lost", json::Value::number(pt.packets_lost));
    o.set("packets_killed", json::Value::number(pt.packets_killed));
    arr.push_back(std::move(o));
  }
  std::fprintf(stderr,
               "availability = delivered / the pristine baseline's delivered (same load,\n"
               "cycles, seed).  Frequent short outages cost little; slow repairs dominate.\n\n");
  session->artifact("availability", std::move(arr));
}

void BM_FaultCensus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FaultSet faults = FaultSet::random_links(n, 0.02, 1);
  for (auto _ : state) {
    const FaultLoadCensus c = measure_link_loads_faulty(n, 500'000, 1, faults);
    benchmark::DoNotOptimize(c.tally.delivered);
  }
  state.SetItemsProcessed(static_cast<benchmark::IterationCount>(state.iterations()) * 500'000);
}
BENCHMARK(BM_FaultCensus)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_FaultSaturation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FaultSet faults = FaultSet::random_links(n, 0.02, 1);
  for (auto _ : state) {
    const FaultSaturationPoint p = simulate_saturation_faulty(n, 0.8, 500, 5, faults, {}, 50);
    benchmark::DoNotOptimize(p.point.delivered);
  }
}
BENCHMARK(BM_FaultSaturation)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ExactReachability(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FaultSet faults = FaultSet::random_links(n, 0.05, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_reachability(n, faults));
  }
}
BENCHMARK(BM_ExactReachability)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bfly::bench::threads_override(&argc, argv);
  bfly::bench::BenchSession session("bench_fault");
  session.threads = threads;
  session.config("threads", static_cast<double>(threads));
  session.config("curve_n", kCurveN);
  session.config("curve_seed", static_cast<double>(kCurveSeed));
  session.config("census_packets", 500'000);
  session.config("sim_cycles", 2000);
  session.config("offered_load", 0.6);

  session.config("live_n", kLiveN);
  session.config("live_seed", static_cast<double>(kLiveSeed));
  session.config("live_cycles", static_cast<double>(kLiveCycles));
  session.config("avail_n", kAvailN);
  session.config("avail_seed", static_cast<double>(kAvailSeed));

  const std::vector<DegradationPoint> curve = print_degradation_curve(&session);
  const HierarchicalPlan plan = plan_hierarchical(9, {});
  const SpareChipSummary spare = print_spare_chip_table(plan);
  print_live_fault_table(&session);
  print_availability_table(&session);

  session.artifact("degradation", curve_artifact(curve));
  session.artifact("spare_chip", spare_chip_artifact(spare));
  session.artifact_percentiles("fault.latency_cycles", "fault.latency_cycles");
  session.run_benchmarks(argc, argv);
  session.emit_report();
  return 0;
}
