file(REMOVE_RECURSE
  "CMakeFiles/bfly_util.dir/check.cpp.o"
  "CMakeFiles/bfly_util.dir/check.cpp.o.d"
  "CMakeFiles/bfly_util.dir/parallel.cpp.o"
  "CMakeFiles/bfly_util.dir/parallel.cpp.o.d"
  "libbfly_util.a"
  "libbfly_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
