# Empty compiler generated dependencies file for bfly_util.
# This may be replaced when dependencies are built.
