file(REMOVE_RECURSE
  "libbfly_util.a"
)
