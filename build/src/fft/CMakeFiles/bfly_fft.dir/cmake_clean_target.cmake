file(REMOVE_RECURSE
  "libbfly_fft.a"
)
