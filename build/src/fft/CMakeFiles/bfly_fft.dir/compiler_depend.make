# Empty compiler generated dependencies file for bfly_fft.
# This may be replaced when dependencies are built.
