file(REMOVE_RECURSE
  "CMakeFiles/bfly_fft.dir/isn_fft.cpp.o"
  "CMakeFiles/bfly_fft.dir/isn_fft.cpp.o.d"
  "libbfly_fft.a"
  "libbfly_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
