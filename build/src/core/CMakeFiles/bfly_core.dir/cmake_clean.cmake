file(REMOVE_RECURSE
  "CMakeFiles/bfly_core.dir/bfly.cpp.o"
  "CMakeFiles/bfly_core.dir/bfly.cpp.o.d"
  "libbfly_core.a"
  "libbfly_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
