file(REMOVE_RECURSE
  "libbfly_core.a"
)
