# Empty compiler generated dependencies file for bfly_packaging.
# This may be replaced when dependencies are built.
