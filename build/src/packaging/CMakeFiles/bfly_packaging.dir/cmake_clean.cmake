file(REMOVE_RECURSE
  "CMakeFiles/bfly_packaging.dir/hierarchical.cpp.o"
  "CMakeFiles/bfly_packaging.dir/hierarchical.cpp.o.d"
  "CMakeFiles/bfly_packaging.dir/partition.cpp.o"
  "CMakeFiles/bfly_packaging.dir/partition.cpp.o.d"
  "libbfly_packaging.a"
  "libbfly_packaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
