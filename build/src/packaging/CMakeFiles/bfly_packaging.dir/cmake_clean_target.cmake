file(REMOVE_RECURSE
  "libbfly_packaging.a"
)
