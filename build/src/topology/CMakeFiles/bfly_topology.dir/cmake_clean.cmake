file(REMOVE_RECURSE
  "CMakeFiles/bfly_topology.dir/basic_graphs.cpp.o"
  "CMakeFiles/bfly_topology.dir/basic_graphs.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/benes.cpp.o"
  "CMakeFiles/bfly_topology.dir/benes.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/butterfly.cpp.o"
  "CMakeFiles/bfly_topology.dir/butterfly.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/complete_graph.cpp.o"
  "CMakeFiles/bfly_topology.dir/complete_graph.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/generalized_hypercube.cpp.o"
  "CMakeFiles/bfly_topology.dir/generalized_hypercube.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/graph.cpp.o"
  "CMakeFiles/bfly_topology.dir/graph.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/hypercube.cpp.o"
  "CMakeFiles/bfly_topology.dir/hypercube.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/isn.cpp.o"
  "CMakeFiles/bfly_topology.dir/isn.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/isomorphism.cpp.o"
  "CMakeFiles/bfly_topology.dir/isomorphism.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/swap_butterfly.cpp.o"
  "CMakeFiles/bfly_topology.dir/swap_butterfly.cpp.o.d"
  "CMakeFiles/bfly_topology.dir/swap_network.cpp.o"
  "CMakeFiles/bfly_topology.dir/swap_network.cpp.o.d"
  "libbfly_topology.a"
  "libbfly_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
