
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/basic_graphs.cpp" "src/topology/CMakeFiles/bfly_topology.dir/basic_graphs.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/basic_graphs.cpp.o.d"
  "/root/repo/src/topology/benes.cpp" "src/topology/CMakeFiles/bfly_topology.dir/benes.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/benes.cpp.o.d"
  "/root/repo/src/topology/butterfly.cpp" "src/topology/CMakeFiles/bfly_topology.dir/butterfly.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/butterfly.cpp.o.d"
  "/root/repo/src/topology/complete_graph.cpp" "src/topology/CMakeFiles/bfly_topology.dir/complete_graph.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/complete_graph.cpp.o.d"
  "/root/repo/src/topology/generalized_hypercube.cpp" "src/topology/CMakeFiles/bfly_topology.dir/generalized_hypercube.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/generalized_hypercube.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/bfly_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/topology/CMakeFiles/bfly_topology.dir/hypercube.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/hypercube.cpp.o.d"
  "/root/repo/src/topology/isn.cpp" "src/topology/CMakeFiles/bfly_topology.dir/isn.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/isn.cpp.o.d"
  "/root/repo/src/topology/isomorphism.cpp" "src/topology/CMakeFiles/bfly_topology.dir/isomorphism.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/isomorphism.cpp.o.d"
  "/root/repo/src/topology/swap_butterfly.cpp" "src/topology/CMakeFiles/bfly_topology.dir/swap_butterfly.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/swap_butterfly.cpp.o.d"
  "/root/repo/src/topology/swap_network.cpp" "src/topology/CMakeFiles/bfly_topology.dir/swap_network.cpp.o" "gcc" "src/topology/CMakeFiles/bfly_topology.dir/swap_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bfly_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
