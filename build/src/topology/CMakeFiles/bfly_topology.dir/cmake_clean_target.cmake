file(REMOVE_RECURSE
  "libbfly_topology.a"
)
