file(REMOVE_RECURSE
  "libbfly_layout.a"
)
