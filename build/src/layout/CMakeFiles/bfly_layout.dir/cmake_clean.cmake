file(REMOVE_RECURSE
  "CMakeFiles/bfly_layout.dir/butterfly_3d.cpp.o"
  "CMakeFiles/bfly_layout.dir/butterfly_3d.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/butterfly_layout.cpp.o"
  "CMakeFiles/bfly_layout.dir/butterfly_layout.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/collinear.cpp.o"
  "CMakeFiles/bfly_layout.dir/collinear.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/hypercube_layout.cpp.o"
  "CMakeFiles/bfly_layout.dir/hypercube_layout.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/layout.cpp.o"
  "CMakeFiles/bfly_layout.dir/layout.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/legality.cpp.o"
  "CMakeFiles/bfly_layout.dir/legality.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/product_layout.cpp.o"
  "CMakeFiles/bfly_layout.dir/product_layout.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/render.cpp.o"
  "CMakeFiles/bfly_layout.dir/render.cpp.o.d"
  "CMakeFiles/bfly_layout.dir/track_assign.cpp.o"
  "CMakeFiles/bfly_layout.dir/track_assign.cpp.o.d"
  "libbfly_layout.a"
  "libbfly_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
