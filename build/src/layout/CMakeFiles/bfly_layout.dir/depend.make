# Empty dependencies file for bfly_layout.
# This may be replaced when dependencies are built.
