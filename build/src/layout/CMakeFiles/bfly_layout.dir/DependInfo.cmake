
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/butterfly_3d.cpp" "src/layout/CMakeFiles/bfly_layout.dir/butterfly_3d.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/butterfly_3d.cpp.o.d"
  "/root/repo/src/layout/butterfly_layout.cpp" "src/layout/CMakeFiles/bfly_layout.dir/butterfly_layout.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/butterfly_layout.cpp.o.d"
  "/root/repo/src/layout/collinear.cpp" "src/layout/CMakeFiles/bfly_layout.dir/collinear.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/collinear.cpp.o.d"
  "/root/repo/src/layout/hypercube_layout.cpp" "src/layout/CMakeFiles/bfly_layout.dir/hypercube_layout.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/hypercube_layout.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/layout/CMakeFiles/bfly_layout.dir/layout.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/layout.cpp.o.d"
  "/root/repo/src/layout/legality.cpp" "src/layout/CMakeFiles/bfly_layout.dir/legality.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/legality.cpp.o.d"
  "/root/repo/src/layout/product_layout.cpp" "src/layout/CMakeFiles/bfly_layout.dir/product_layout.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/product_layout.cpp.o.d"
  "/root/repo/src/layout/render.cpp" "src/layout/CMakeFiles/bfly_layout.dir/render.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/render.cpp.o.d"
  "/root/repo/src/layout/track_assign.cpp" "src/layout/CMakeFiles/bfly_layout.dir/track_assign.cpp.o" "gcc" "src/layout/CMakeFiles/bfly_layout.dir/track_assign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bfly_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
