file(REMOVE_RECURSE
  "CMakeFiles/bfly_routing.dir/routing.cpp.o"
  "CMakeFiles/bfly_routing.dir/routing.cpp.o.d"
  "libbfly_routing.a"
  "libbfly_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfly_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
