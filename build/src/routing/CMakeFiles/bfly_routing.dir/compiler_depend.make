# Empty compiler generated dependencies file for bfly_routing.
# This may be replaced when dependencies are built.
