file(REMOVE_RECURSE
  "libbfly_routing.a"
)
