# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_swap_networks[1]_include.cmake")
include("/root/repo/build/tests/test_swap_butterfly[1]_include.cmake")
include("/root/repo/build/tests/test_layout_engine[1]_include.cmake")
include("/root/repo/build/tests/test_legality[1]_include.cmake")
include("/root/repo/build/tests/test_collinear[1]_include.cmake")
include("/root/repo/build/tests/test_butterfly_layout[1]_include.cmake")
include("/root/repo/build/tests/test_packaging[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_hypercube_layout[1]_include.cmake")
include("/root/repo/build/tests/test_benes[1]_include.cmake")
include("/root/repo/build/tests/test_legality_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_butterfly_3d[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_product_layout[1]_include.cmake")
