# Empty compiler generated dependencies file for test_butterfly_3d.
# This may be replaced when dependencies are built.
