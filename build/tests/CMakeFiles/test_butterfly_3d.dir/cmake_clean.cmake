file(REMOVE_RECURSE
  "CMakeFiles/test_butterfly_3d.dir/test_butterfly_3d.cpp.o"
  "CMakeFiles/test_butterfly_3d.dir/test_butterfly_3d.cpp.o.d"
  "test_butterfly_3d"
  "test_butterfly_3d.pdb"
  "test_butterfly_3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_butterfly_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
