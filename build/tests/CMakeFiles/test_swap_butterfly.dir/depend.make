# Empty dependencies file for test_swap_butterfly.
# This may be replaced when dependencies are built.
