file(REMOVE_RECURSE
  "CMakeFiles/test_swap_butterfly.dir/test_swap_butterfly.cpp.o"
  "CMakeFiles/test_swap_butterfly.dir/test_swap_butterfly.cpp.o.d"
  "test_swap_butterfly"
  "test_swap_butterfly.pdb"
  "test_swap_butterfly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
