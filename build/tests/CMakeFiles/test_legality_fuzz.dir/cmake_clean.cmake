file(REMOVE_RECURSE
  "CMakeFiles/test_legality_fuzz.dir/test_legality_fuzz.cpp.o"
  "CMakeFiles/test_legality_fuzz.dir/test_legality_fuzz.cpp.o.d"
  "test_legality_fuzz"
  "test_legality_fuzz.pdb"
  "test_legality_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_legality_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
