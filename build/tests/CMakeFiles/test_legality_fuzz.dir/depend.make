# Empty dependencies file for test_legality_fuzz.
# This may be replaced when dependencies are built.
