# Empty dependencies file for test_collinear.
# This may be replaced when dependencies are built.
