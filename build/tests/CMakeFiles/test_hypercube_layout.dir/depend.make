# Empty dependencies file for test_hypercube_layout.
# This may be replaced when dependencies are built.
