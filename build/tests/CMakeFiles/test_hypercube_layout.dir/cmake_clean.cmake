file(REMOVE_RECURSE
  "CMakeFiles/test_hypercube_layout.dir/test_hypercube_layout.cpp.o"
  "CMakeFiles/test_hypercube_layout.dir/test_hypercube_layout.cpp.o.d"
  "test_hypercube_layout"
  "test_hypercube_layout.pdb"
  "test_hypercube_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypercube_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
