file(REMOVE_RECURSE
  "CMakeFiles/test_swap_networks.dir/test_swap_networks.cpp.o"
  "CMakeFiles/test_swap_networks.dir/test_swap_networks.cpp.o.d"
  "test_swap_networks"
  "test_swap_networks.pdb"
  "test_swap_networks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
