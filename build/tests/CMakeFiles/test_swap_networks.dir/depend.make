# Empty dependencies file for test_swap_networks.
# This may be replaced when dependencies are built.
