# Empty compiler generated dependencies file for test_product_layout.
# This may be replaced when dependencies are built.
