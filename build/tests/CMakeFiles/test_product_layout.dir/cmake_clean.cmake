file(REMOVE_RECURSE
  "CMakeFiles/test_product_layout.dir/test_product_layout.cpp.o"
  "CMakeFiles/test_product_layout.dir/test_product_layout.cpp.o.d"
  "test_product_layout"
  "test_product_layout.pdb"
  "test_product_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_product_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
