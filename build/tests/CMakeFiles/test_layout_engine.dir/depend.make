# Empty dependencies file for test_layout_engine.
# This may be replaced when dependencies are built.
