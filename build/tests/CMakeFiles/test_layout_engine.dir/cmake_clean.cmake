file(REMOVE_RECURSE
  "CMakeFiles/test_layout_engine.dir/test_layout_engine.cpp.o"
  "CMakeFiles/test_layout_engine.dir/test_layout_engine.cpp.o.d"
  "test_layout_engine"
  "test_layout_engine.pdb"
  "test_layout_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
