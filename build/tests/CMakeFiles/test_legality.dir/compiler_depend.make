# Empty compiler generated dependencies file for test_legality.
# This may be replaced when dependencies are built.
