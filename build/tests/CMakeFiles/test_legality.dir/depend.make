# Empty dependencies file for test_legality.
# This may be replaced when dependencies are built.
