# Empty dependencies file for test_packaging.
# This may be replaced when dependencies are built.
