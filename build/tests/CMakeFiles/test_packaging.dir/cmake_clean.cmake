file(REMOVE_RECURSE
  "CMakeFiles/test_packaging.dir/test_packaging.cpp.o"
  "CMakeFiles/test_packaging.dir/test_packaging.cpp.o.d"
  "test_packaging"
  "test_packaging.pdb"
  "test_packaging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
