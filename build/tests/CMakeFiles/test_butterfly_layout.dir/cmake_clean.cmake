file(REMOVE_RECURSE
  "CMakeFiles/test_butterfly_layout.dir/test_butterfly_layout.cpp.o"
  "CMakeFiles/test_butterfly_layout.dir/test_butterfly_layout.cpp.o.d"
  "test_butterfly_layout"
  "test_butterfly_layout.pdb"
  "test_butterfly_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_butterfly_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
