# Empty compiler generated dependencies file for test_butterfly_layout.
# This may be replaced when dependencies are built.
