
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/test_topology.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/test_topology.dir/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfly_core.dir/DependInfo.cmake"
  "/root/repo/build/src/packaging/CMakeFiles/bfly_packaging.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/bfly_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/bfly_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/bfly_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bfly_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfly_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
