# Empty dependencies file for bench_multilayer.
# This may be replaced when dependencies are built.
