file(REMOVE_RECURSE
  "CMakeFiles/bench_multilayer.dir/bench_multilayer.cpp.o"
  "CMakeFiles/bench_multilayer.dir/bench_multilayer.cpp.o.d"
  "bench_multilayer"
  "bench_multilayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
