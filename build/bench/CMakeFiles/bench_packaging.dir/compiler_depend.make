# Empty compiler generated dependencies file for bench_packaging.
# This may be replaced when dependencies are built.
