file(REMOVE_RECURSE
  "CMakeFiles/bench_thompson.dir/bench_thompson.cpp.o"
  "CMakeFiles/bench_thompson.dir/bench_thompson.cpp.o.d"
  "bench_thompson"
  "bench_thompson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thompson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
