# Empty dependencies file for bench_thompson.
# This may be replaced when dependencies are built.
