# Empty dependencies file for bench_collinear.
# This may be replaced when dependencies are built.
