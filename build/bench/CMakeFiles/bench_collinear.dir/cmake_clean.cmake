file(REMOVE_RECURSE
  "CMakeFiles/bench_collinear.dir/bench_collinear.cpp.o"
  "CMakeFiles/bench_collinear.dir/bench_collinear.cpp.o.d"
  "bench_collinear"
  "bench_collinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
