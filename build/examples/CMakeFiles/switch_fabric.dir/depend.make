# Empty dependencies file for switch_fabric.
# This may be replaced when dependencies are built.
