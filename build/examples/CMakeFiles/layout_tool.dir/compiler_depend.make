# Empty compiler generated dependencies file for layout_tool.
# This may be replaced when dependencies are built.
