file(REMOVE_RECURSE
  "CMakeFiles/layout_tool.dir/layout_tool.cpp.o"
  "CMakeFiles/layout_tool.dir/layout_tool.cpp.o.d"
  "layout_tool"
  "layout_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
