file(REMOVE_RECURSE
  "CMakeFiles/fft_accelerator.dir/fft_accelerator.cpp.o"
  "CMakeFiles/fft_accelerator.dir/fft_accelerator.cpp.o.d"
  "fft_accelerator"
  "fft_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
