# Empty compiler generated dependencies file for fft_accelerator.
# This may be replaced when dependencies are built.
