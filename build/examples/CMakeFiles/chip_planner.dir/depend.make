# Empty dependencies file for chip_planner.
# This may be replaced when dependencies are built.
