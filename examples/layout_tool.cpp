// layout_tool: the library's Swiss-army CLI.
//
//   layout_tool metrics <n> [L] [--fold] [--node-side W]
//       measured layout metrics vs the paper's closed forms
//   layout_tool verify <n> [L] [--fold]
//       materialize the layout and run both legality checkers
//   layout_tool render <n> <out.svg> [L]
//       write an SVG of the layout (small n)
//   layout_tool transform <k1> <k2> [...]
//       build the swap-butterfly and verify the isomorphism onto B_n
//   layout_tool plan <n> [pins] [chip_side]
//       two-level chip/board package (Section 5 planner)
//   layout_tool stack <n> [layers_per_copy]
//       3-D stacked-layout volume sweep (Sec. 4.2 closing construction)
//   layout_tool benes <n> [seed]
//       route a random permutation through a Benes network
//   layout_tool hypercube <n> [L]
//       hypercube grid layout metrics vs the (N/2)^2 bound
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>

#include "core/bfly.hpp"
#include "util/fileio.hpp"
#include "util/prng.hpp"

namespace {

using namespace bfly;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <metrics|verify|render|transform|plan|stack|benes|hypercube> ...\n"
               "run with no arguments after the subcommand for defaults; see the\n"
               "header of examples/layout_tool.cpp for the full synopsis.\n",
               argv0);
  return 2;
}

ButterflyLayoutOptions parse_layout_options(int argc, char** argv, int first) {
  ButterflyLayoutOptions opt;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fold") == 0) {
      opt.fold_block_channels = true;
    } else if (std::strcmp(argv[i], "--node-side") == 0 && i + 1 < argc) {
      opt.node_side = std::atoll(argv[++i]);
    } else if (argv[i][0] != '-') {
      opt.layers = std::atoi(argv[i]);
    }
  }
  return opt;
}

int cmd_metrics(int argc, char** argv) {
  const int n = std::atoi(argv[2]);
  const ButterflyLayoutOptions opt = parse_layout_options(argc, argv, 3);
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n), opt);
  const LayoutMetrics m = plan.metrics();
  std::printf("B_%d, L=%d%s, node side %lld\n", n, opt.layers,
              opt.fold_block_channels ? " (folded blocks)" : "",
              static_cast<long long>(opt.node_side));
  std::printf("  %-18s %lld x %lld\n", "dimensions", static_cast<long long>(m.width),
              static_cast<long long>(m.height));
  std::printf("  %-18s %lld (formula %.0f, ratio %.3f)\n", "area",
              static_cast<long long>(m.area), formulas::multilayer_area(n, opt.layers),
              static_cast<double>(m.area) / formulas::multilayer_area(n, opt.layers));
  std::printf("  %-18s %lld (formula %.0f, ratio %.3f)\n", "max wire",
              static_cast<long long>(m.max_wire_length),
              formulas::multilayer_max_wire(n, opt.layers),
              static_cast<double>(m.max_wire_length) /
                  formulas::multilayer_max_wire(n, opt.layers));
  std::printf("  %-18s %lld\n", "volume", static_cast<long long>(m.volume));
  std::printf("  %-18s %llu wires, %llu nodes\n", "entities",
              static_cast<unsigned long long>(m.num_wires),
              static_cast<unsigned long long>(m.num_nodes));
  return 0;
}

int cmd_verify(int argc, char** argv) {
  const int n = std::atoi(argv[2]);
  if (n > 12) {
    std::fprintf(stderr, "verify materializes full geometry; use n <= 12\n");
    return 1;
  }
  const ButterflyLayoutOptions opt = parse_layout_options(argc, argv, 3);
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n), opt);
  const Layout layout = plan.materialize();
  const LegalityReport multi = check_multilayer(layout);
  std::printf("multilayer: %s\n", multi.summary().c_str());
  if (opt.layers == 2) {
    const LegalityReport thompson = check_thompson(layout);
    std::printf("thompson:   %s\n", thompson.summary().c_str());
    return multi.ok && thompson.ok ? 0 : 1;
  }
  return multi.ok ? 0 : 1;
}

int cmd_render(int argc, char** argv) {
  const int n = std::atoi(argv[2]);
  if (n > 9) {
    std::fprintf(stderr, "rendering is useful for n <= 9\n");
    return 1;
  }
  const ButterflyLayoutOptions opt = parse_layout_options(argc, argv, 4);
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n), opt);
  // Atomic write: a crashed render never leaves a truncated SVG behind.
  util::atomic_write_file(argv[3], render_svg(plan.materialize(), {n <= 6 ? 4.0 : 1.0, true}));
  std::printf("wrote %s\n", argv[3]);
  return 0;
}

int cmd_transform(int argc, char** argv) {
  std::vector<int> k;
  for (int i = 2; i < argc; ++i) k.push_back(std::atoi(argv[i]));
  const SwapButterfly sb(k);
  std::string why;
  const bool ok = is_isomorphism(sb.graph(), Butterfly(sb.dimension()).graph(),
                                 sb.isomorphism_to_butterfly(), &why);
  std::printf("ISN -> swap-butterfly of dimension %d (%llu nodes): %s\n", sb.dimension(),
              static_cast<unsigned long long>(sb.num_nodes()),
              ok ? "isomorphic to the butterfly" : why.c_str());
  return ok ? 0 : 1;
}

int cmd_plan(int argc, char** argv) {
  const int n = std::atoi(argv[2]);
  ChipConstraints c;
  if (argc > 3) c.max_offchip_links = static_cast<u64>(std::atoll(argv[3]));
  if (argc > 4) c.chip_side = std::atoll(argv[4]);
  const HierarchicalPlan plan = plan_hierarchical(n, c);
  std::printf("%llu chips of %llu nodes (grid %llux%llu), %llu off-chip links/chip\n",
              static_cast<unsigned long long>(plan.num_chips),
              static_cast<unsigned long long>(plan.nodes_per_chip),
              static_cast<unsigned long long>(plan.grid_rows),
              static_cast<unsigned long long>(plan.grid_cols),
              static_cast<unsigned long long>(plan.offchip_links_per_chip));
  for (const int L : {2, 4, 8}) {
    std::printf("board area (L=%d): %lld\n", L, static_cast<long long>(plan.board_area(L)));
  }
  return 0;
}

int cmd_stack(int argc, char** argv) {
  const int n = std::atoi(argv[2]);
  Butterfly3DOptions opt;
  if (argc > 3) opt.layers_per_copy = std::atoi(argv[3]);
  std::printf("%4s %16s %14s %8s\n", "k4", "footprint", "volume", "layers");
  for (const auto& [k4, volume] : volume_sweep(n, opt)) {
    std::vector<int> k = ButterflyLayoutPlan::choose_parameters(n - k4);
    k.push_back(k4);
    const Butterfly3DPlan plan = plan_butterfly_3d(k, opt);
    std::printf("%4d %16lld %14lld %8d\n", k4, static_cast<long long>(plan.footprint_area),
                static_cast<long long>(volume), plan.total_layers);
  }
  return 0;
}

int cmd_benes(int argc, char** argv) {
  const int n = std::atoi(argv[2]);
  const u64 seed = argc > 3 ? static_cast<u64>(std::atoll(argv[3])) : 1;
  const Benes b(n);
  Xoshiro256 rng(seed);
  std::vector<u64> perm(b.rows());
  std::iota(perm.begin(), perm.end(), 0);
  for (u64 i = b.rows() - 1; i > 0; --i) std::swap(perm[i], perm[rng.below(i + 1)]);
  const auto paths = b.route_permutation(perm);
  std::printf("routed a random permutation of %llu ports through %d stages\n",
              static_cast<unsigned long long>(b.rows()), b.num_stages());
  if (b.rows() <= 16) {
    for (u64 s = 0; s < b.rows(); ++s) {
      std::printf("  %2llu ->", static_cast<unsigned long long>(s));
      for (const u64 row : paths[s]) std::printf(" %llu", static_cast<unsigned long long>(row));
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_hypercube(int argc, char** argv) {
  const int n = std::atoi(argv[2]);
  HypercubeLayoutOptions opt;
  if (argc > 3) opt.layers = std::atoi(argv[3]);
  const HypercubeLayoutPlan plan(n, opt);
  const LayoutMetrics m = plan.metrics();
  std::printf("Q_%d as a %llux%llu grid: area %lld (bound %.0f, ratio %.3f), max wire %lld\n",
              n, static_cast<unsigned long long>(plan.grid_rows()),
              static_cast<unsigned long long>(plan.grid_cols()), static_cast<long long>(m.area),
              HypercubeLayoutPlan::area_lower_bound(n),
              static_cast<double>(m.area) / HypercubeLayoutPlan::area_lower_bound(n),
              static_cast<long long>(m.max_wire_length));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  try {
    if (cmd == "metrics") return cmd_metrics(argc, argv);
    if (cmd == "verify") return cmd_verify(argc, argv);
    if (cmd == "render" && argc >= 4) return cmd_render(argc, argv);
    if (cmd == "transform") return cmd_transform(argc, argv);
    if (cmd == "plan") return cmd_plan(argc, argv);
    if (cmd == "stack") return cmd_stack(argc, argv);
    if (cmd == "benes") return cmd_benes(argc, argv);
    if (cmd == "hypercube") return cmd_hypercube(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
