// Chip planner: the Section 5 workflow as a command-line tool.
//
// Given a butterfly dimension and chip constraints (pin budget, chip side),
// produce the two-level package: the ISN parameters, chips, chip grid, board
// channel tracks, and board area for a range of wiring layer counts --
// alongside the naive consecutive-row baseline.
//
// Run:  ./chip_planner [n] [pins] [chip_side]     (defaults: 9 64 20)
#include <cstdio>
#include <cstdlib>

#include "core/bfly.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  const int n = argc > 1 ? std::atoi(argv[1]) : 9;
  const u64 pins = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 64;
  const i64 side = argc > 3 ? std::atoll(argv[3]) : 20;
  if (n < 2 || n > 14) {
    std::fprintf(stderr, "usage: %s [n in 2..14] [pins] [chip_side]\n", argv[0]);
    return 1;
  }

  ChipConstraints constraints;
  constraints.max_offchip_links = pins;
  constraints.chip_side = side;

  std::printf("planning a %d-dimensional butterfly (%llu nodes) onto chips with\n", n,
              static_cast<unsigned long long>(pow2(n) * static_cast<u64>(n + 1)));
  std::printf("<= %llu off-chip links and side %lld\n\n", static_cast<unsigned long long>(pins),
              static_cast<long long>(side));

  HierarchicalPlan plan;
  try {
    plan = plan_hierarchical(n, constraints);
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "infeasible: %s\n", e.what());
    return 2;
  }

  std::printf("ISN parameters       : (");
  for (std::size_t i = 0; i < plan.k.size(); ++i) {
    std::printf("%s%d", i ? "," : "", plan.k[i]);
  }
  std::printf(")\n");
  std::printf("rows per chip        : %llu\n", static_cast<unsigned long long>(pow2(plan.rows_log2)));
  std::printf("nodes per chip       : %llu\n", static_cast<unsigned long long>(plan.nodes_per_chip));
  std::printf("chips                : %llu (grid %llu x %llu)\n",
              static_cast<unsigned long long>(plan.num_chips),
              static_cast<unsigned long long>(plan.grid_rows),
              static_cast<unsigned long long>(plan.grid_cols));
  std::printf("off-chip links/chip  : %llu\n",
              static_cast<unsigned long long>(plan.offchip_links_per_chip));
  std::printf("channel tracks       : %llu (after neighbor-link optimization)\n",
              static_cast<unsigned long long>(plan.logical_tracks_per_channel));
  std::printf("terminals per edge   : %llu\n",
              static_cast<unsigned long long>(plan.terminals_per_edge));

  std::printf("\nboard area vs wiring layers:\n");
  std::printf("  %4s %12s %12s %12s\n", "L", "side", "area", "max wire");
  for (const int L : {2, 4, 8, 16}) {
    std::printf("  %4d %12lld %12lld %12lld\n", L, static_cast<long long>(plan.board_side(L)),
                static_cast<long long>(plan.board_area(L)),
                static_cast<long long>(plan.max_board_wire(L)));
  }

  std::printf("\nbaseline (consecutive rows of a plain butterfly):\n");
  try {
    std::printf("  exact counting : %llu chips\n",
                static_cast<unsigned long long>(naive_chip_count(n, pins)));
    std::printf("  paper estimate : %llu chips\n",
                static_cast<unsigned long long>(naive_chip_count_paper_estimate(n, pins)));
  } catch (const InvalidArgument&) {
    std::printf("  infeasible under this pin budget\n");
  }
  return 0;
}
