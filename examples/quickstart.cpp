// Quickstart: the three things the library does, in ~80 lines.
//
//   1. Transform an indirect swap network into a butterfly (Sec. 2.2) and
//      verify the isomorphism.
//   2. Produce an optimal Thompson-model layout (Sec. 3), machine-check its
//      legality, and measure area / max wire length against the paper's
//      closed forms — plus a congestion heatmap SVG coloring every wire by
//      its measured link load under uniform random routing.
//   3. Partition the network for packaging (Sec. 2.3) and count off-module
//      links.
//   4. Run a small saturation sweep through bfly::exec — checkpointed to
//      quickstart.sweep.ckpt, so a killed run resumes where it stopped with
//      bitwise-identical results.
//   5. Attach cycle-resolved telemetry to one simulation: a deterministic
//      time series (checked against Little's law L = λW) and a heatmap-over-
//      time film strip (butterfly_heatmap_time.svg).
//   6. Flight-record a deterministically sampled packet subset: full hop
//      sequences with exact latency decomposition (queue wait + transit +
//      detour == latency), wire-length path attribution through the layout
//      geometry, and a per-packet Chrome trace (butterfly_paths.trace.json —
//      one Perfetto row per sampled packet).
//   7. Survive live faults: a FaultSchedule kills a whole packaging chip
//      mid-run, spare-chip failover rewires it after a detection latency, a
//      link dies and is repaired — and the recovery analytics report the
//      time-to-recover and packets lost in each transient.
//   8. Record the whole run with bfly::obs — every step above lands in the
//      installed registry, and the end of main() writes a structured JSON
//      run report plus a Chrome trace (load quickstart.trace.json in
//      https://ui.perfetto.dev to see the phase spans).
//
// Every artifact is written crash-safely (util::atomic_write_file: tmp +
// fsync + rename), so readers never observe a torn file.
//
// Run:  ./quickstart [n] [--threads N]    (default n = 6, threads auto;
// $BFLY_THREADS is honoured when the flag is absent)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/bfly.hpp"
#include "util/fileio.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  // --threads N (or $BFLY_THREADS) bounds the sweep's worker threads; a
  // malformed value is a usage error (exit 2), never a silent fallback.
  std::size_t threads = 0;
  if (const char* env = std::getenv("BFLY_THREADS")) {
    if (!parse_thread_count(env, &threads)) {
      std::fprintf(stderr, "error: $BFLY_THREADS must be an integer in [1, 4096], got '%s'\n", env);
      return 2;
    }
  }
  int n = 6;
  bool saw_n = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--threads") {
      value = i + 1 < argc ? argv[++i] : "";
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = argv[i] + std::string("--threads=").size();
    } else if (!saw_n) {
      n = std::atoi(argv[i]);
      saw_n = true;
      continue;
    } else {
      std::fprintf(stderr, "usage: %s [n in 3..15] [--threads N]\n", argv[0]);
      return 2;
    }
    if (!parse_thread_count(value, &threads)) {
      std::fprintf(stderr, "error: --threads must be an integer in [1, 4096], got '%s'\n", value);
      return 2;
    }
  }
  if (n < 3 || n > 15) {
    std::fprintf(stderr, "usage: %s [n in 3..15] [--threads N]\n", argv[0]);
    return 1;
  }

  // Install the metrics/trace registry for the rest of the run.
  obs::Registry registry;
  const obs::ScopedRegistry scoped(&registry);

  // --- 1. ISN -> swap-butterfly -> butterfly -------------------------------
  const std::vector<int> k = ButterflyLayoutPlan::choose_parameters(n);
  const SwapButterfly sb(k);
  std::printf("B_%d: %llu rows x %d stages = %llu nodes, %llu links\n", n,
              static_cast<unsigned long long>(sb.rows()), sb.num_stages(),
              static_cast<unsigned long long>(sb.num_nodes()),
              static_cast<unsigned long long>(sb.num_links()));

  std::string why;
  const bool iso = is_isomorphism(sb.graph(), Butterfly(n).graph(),
                                  sb.isomorphism_to_butterfly(), &why);
  std::printf("swap-butterfly is an automorphism of B_%d: %s\n", n, iso ? "verified" : why.c_str());

  // A Fig. 1/2-style diagram of the underlying ISN.
  if (n <= 6) {
    const IndirectSwapNetwork& isn = sb.isn();
    util::atomic_write_file("isn_diagram.svg", render_multistage_svg(
        isn.rows(), isn.num_stages(), [&](const std::function<void(u64, int, u64)>& emit) {
          for (int t = 1; t <= isn.num_steps(); ++t) {
            for (u64 u = 0; u < isn.rows(); ++u) {
              const auto out = isn.outgoing(u, t);
              if (out.is_swap) {
                emit(u, t - 1, out.swap);
              } else {
                emit(u, t - 1, out.straight);
                emit(u, t - 1, out.cross);
              }
            }
          }
        }));
    std::printf("wrote isn_diagram.svg (Fig. 1/2 style)\n");
  }

  // --- 2. Optimal layout ----------------------------------------------------
  const ButterflyLayoutPlan plan(k);
  const LayoutMetrics m = plan.metrics();
  std::printf("\nThompson-model layout (L = 2):\n");
  std::printf("  %lld x %lld, area %lld (paper leading term %.0f, ratio %.3f)\n",
              static_cast<long long>(m.width), static_cast<long long>(m.height),
              static_cast<long long>(m.area), formulas::thompson_area(n),
              static_cast<double>(m.area) / formulas::thompson_area(n));
  std::printf("  max wire %lld (paper leading term %.0f, ratio %.3f)\n",
              static_cast<long long>(m.max_wire_length), formulas::thompson_max_wire(n),
              static_cast<double>(m.max_wire_length) / formulas::thompson_max_wire(n));

  if (n <= 9) {
    const Layout layout = plan.materialize();
    const LegalityReport thompson = check_thompson(layout);
    const LegalityReport multilayer = check_multilayer(layout);
    std::printf("  legality: Thompson %s; multilayer %s\n", thompson.summary().c_str(),
                multilayer.summary().c_str());
    util::atomic_write_file("butterfly_layout.svg", render_svg(layout, {n <= 6 ? 4.0 : 1.0, true}));
    std::printf("  wrote butterfly_layout.svg\n");

    // Congestion heatmap: census the per-link loads of B_n under uniform
    // random routing, map each layout wire (swap-butterfly link) onto its
    // butterfly link through rho, and color it by load / max load.
    const LoadCensus census = measure_link_loads(n, 500'000, 99, 0, /*keep_link_loads=*/true);
    const Butterfly bf(n);
    const SwapButterfly& net = plan.network();
    const u64 rows = net.rows();
    // Min-max normalize: uniform random routing balances loads within a few
    // percent of each other, so dividing by the max alone would paint every
    // wire the same color.
    const u64 min_load = *std::min_element(census.link_loads.begin(), census.link_loads.end());
    const u64 spread = census.max_link_load - min_load;
    std::vector<double> heat(layout.wires().size(), 0.0);
    for (std::size_t wi = 0; wi < layout.wires().size(); ++wi) {
      const Wire& wire = layout.wires()[wi];
      if (!wire.from_node || !wire.to_node) continue;
      const int s = static_cast<int>(*wire.from_node / rows);
      const u64 r1 = net.rho(s, *wire.from_node % rows);
      const u64 r2 = net.rho(s + 1, *wire.to_node % rows);
      const u64 load = census.link_loads[link_index(bf, r1, s, r1 != r2)];
      heat[wi] = spread > 0 ? static_cast<double>(load - min_load) / static_cast<double>(spread)
                            : 0.0;
    }
    RenderOptions heat_options;
    heat_options.scale = n <= 6 ? 4.0 : 1.0;
    heat_options.wire_heat = &heat;
    util::atomic_write_file("butterfly_heatmap.svg", render_svg(layout, heat_options));
    std::printf("  wrote butterfly_heatmap.svg (wires colored by measured link load,\n");
    std::printf("        %llu packets; max/avg imbalance %.3f)\n",
                static_cast<unsigned long long>(census.packets), census.imbalance);

    // Degraded-mode heatmap: inject 2%% random link faults, re-census with
    // the fault-tolerant router, and draw dead links dashed gray on top of
    // the congestion ramp.
    const FaultSet faults = FaultSet::random_links(n, 0.02, 99);
    const FaultLoadCensus degraded =
        measure_link_loads_faulty(n, 500'000, 99, faults, {}, 0, /*keep_link_loads=*/true);
    const u64 dmin = *std::min_element(degraded.census.link_loads.begin(),
                                       degraded.census.link_loads.end());
    const u64 dspread = degraded.census.max_link_load - dmin;
    std::vector<double> dheat(layout.wires().size(), 0.0);
    std::vector<bool> dead(layout.wires().size(), false);
    for (std::size_t wi = 0; wi < layout.wires().size(); ++wi) {
      const Wire& wire = layout.wires()[wi];
      if (!wire.from_node || !wire.to_node) continue;
      const int s = static_cast<int>(*wire.from_node / rows);
      const u64 r1 = net.rho(s, *wire.from_node % rows);
      const u64 r2 = net.rho(s + 1, *wire.to_node % rows);
      const u64 load = degraded.census.link_loads[link_index(bf, r1, s, r1 != r2)];
      dheat[wi] = dspread > 0
                      ? static_cast<double>(load - dmin) / static_cast<double>(dspread)
                      : 0.0;
      dead[wi] = !faults.link_alive(r1, s, r1 != r2);
    }
    heat_options.wire_heat = &dheat;
    heat_options.wire_dead = &dead;
    util::atomic_write_file("butterfly_heatmap_faults.svg", render_svg(layout, heat_options));
    std::printf("  wrote butterfly_heatmap_faults.svg (%llu dead links dashed gray;\n",
                static_cast<unsigned long long>(faults.num_dead_links()));
    std::printf("        %.2f%% of packets delivered by the fault-tolerant router)\n",
                100.0 * degraded.delivered_fraction);
  }

  // --- 3. Packaging ---------------------------------------------------------
  const Partition part = row_block_partition(sb, k[0]);
  const PartitionStats stats = evaluate_partition(sb.graph(), part);
  std::printf("\nPackaging (2^%d rows per module):\n", k[0]);
  std::printf("  %llu modules of %llu nodes; avg off-module links/node %.4f (formula %.4f)\n",
              static_cast<unsigned long long>(stats.num_modules),
              static_cast<unsigned long long>(stats.max_nodes_per_module),
              stats.avg_offmodule_links_per_node,
              formulas::offmodule_links_per_node_general(k));

  // --- 4. Resilient saturation sweep ---------------------------------------
  // Three queued simulations through exec::run_sweep_resumable.  Each finished
  // point is journaled to quickstart.sweep.ckpt (durable single-line appends);
  // kill the process mid-sweep and rerun, and the finished points replay from
  // the checkpoint — the outcome vector is bitwise identical either way.
  std::vector<SweepPoint> sweep_points;
  for (const double load : {0.3, 0.6, 0.9}) {
    SweepPoint p;
    p.n = n;
    p.offered_load = load;
    p.cycles = 600;
    p.seed = 7;
    p.warmup_cycles = 100;
    sweep_points.push_back(p);
  }
  exec::SweepRunOptions sweep_options;
  sweep_options.threads = threads;  // 0 = auto; outcomes are thread-invariant
  sweep_options.checkpoint_path = "quickstart.sweep.ckpt";
  const exec::SweepRun sweep = exec::run_sweep_resumable(sweep_points, sweep_options);
  std::printf("\nResilient sweep (checkpoint quickstart.sweep.ckpt): %s, %llu/%llu points"
              " (%llu replayed from checkpoint)\n",
              exec::to_string(sweep.status), static_cast<unsigned long long>(sweep.num_completed),
              static_cast<unsigned long long>(sweep_points.size()),
              static_cast<unsigned long long>(sweep.num_replayed));
  for (std::size_t i = 0; i < sweep.outcomes.size(); ++i) {
    if (!sweep.completed[i]) continue;
    std::printf("  load %.1f -> throughput %.4f, avg latency %.2f cycles\n",
                sweep_points[i].offered_load, sweep.outcomes[i].point.throughput,
                sweep.outcomes[i].point.avg_latency);
  }

  // --- 5. Cycle-resolved telemetry ------------------------------------------
  // Re-run one moderate-load point with the time-series probe and the
  // occupancy-frame recorder attached.  Both are keyed purely by simulation
  // cycle (power-of-two stride thinning), so the samples below are bitwise
  // identical across thread counts and checkpoint replay — the same rows a
  // telemetry_budget sweep point journals.
  obs::TimeSeries series(128);
  obs::OccupancyFrames occupancy(6);
  simulate_saturation(n, 0.5, 600, 7, 100, 0, nullptr, &series, &occupancy);
  if (!series.empty()) {
    std::printf("\nCycle-resolved telemetry (load 0.5): %llu samples at stride %llu\n",
                static_cast<unsigned long long>(series.num_samples()),
                static_cast<unsigned long long>(series.stride()));
    const obs::LittlesLawCheck law = obs::littles_law_check(series);
    if (law.applicable) {
      std::printf("  Little's law: L %.1f vs lambda*W %.1f*%.2f = %.1f (rel err %.3f) -> %s\n",
                  law.l, law.lambda, law.w, law.lambda * law.w, law.rel_error,
                  law.pass ? "PASS" : "FAIL");
    }
  }
  // Heatmap over time: a film strip with one frame per retained occupancy
  // snapshot, every wire colored by its queue occupancy normalized to the
  // hottest link seen across all frames (so color is comparable between
  // frames).
  if (!occupancy.empty() && n <= 9) {
    const Layout layout = plan.materialize();
    const Butterfly bf(n);
    const SwapButterfly& net = plan.network();
    const u64 rows = net.rows();
    double peak = 0.0;
    for (std::size_t f = 0; f < occupancy.num_frames(); ++f) {
      for (const double v : occupancy.frame(f)) peak = std::max(peak, v);
    }
    std::vector<std::vector<double>> heat_frames;
    for (std::size_t f = 0; f < occupancy.num_frames(); ++f) {
      std::vector<double> heat(layout.wires().size(), 0.0);
      for (std::size_t wi = 0; wi < layout.wires().size(); ++wi) {
        const Wire& wire = layout.wires()[wi];
        if (!wire.from_node || !wire.to_node) continue;
        const int s = static_cast<int>(*wire.from_node / rows);
        const u64 r1 = net.rho(s, *wire.from_node % rows);
        const u64 r2 = net.rho(s + 1, *wire.to_node % rows);
        const double load = occupancy.frame(f)[link_index(bf, r1, s, r1 != r2)];
        heat[wi] = peak > 0.0 ? load / peak : 0.0;
      }
      heat_frames.push_back(std::move(heat));
    }
    HeatmapFilmOptions film;
    film.base.scale = n <= 6 ? 4.0 : 1.0;
    film.columns = 3;
    util::atomic_write_file("butterfly_heatmap_time.svg",
                            render_svg_small_multiples(layout, heat_frames,
                                                       occupancy.cycles(), film));
    std::printf("  wrote butterfly_heatmap_time.svg (%llu frames, queue occupancy over time)\n",
                static_cast<unsigned long long>(occupancy.num_frames()));
  }

  // --- 6. Packet flight recorder --------------------------------------------
  // Re-run the same load-0.5 point with a flight recorder attached: a
  // deterministic SplitMix64(seed ^ packet_id) sample of packets gets its
  // full hop sequence recorded.  The sampled subset is a pure function of
  // (seed, budget, expected packets), so it is bitwise identical across
  // thread counts and checkpoint replay — exactly like the telemetry above.
  SweepPoint flight_point;
  flight_point.n = n;
  flight_point.offered_load = 0.5;
  flight_point.cycles = 600;
  flight_point.seed = 7;
  flight_point.warmup_cycles = 100;
  flight_point.flight_budget = 32;
  obs::FlightRecorder flights = make_flight_recorder(flight_point);
  simulate_saturation(n, 0.5, 600, 7, 100, 0, nullptr, nullptr, nullptr, &flights);
  if (!flights.empty()) {
    std::printf("\nPacket flight recorder (load 0.5): %llu of %llu packets sampled\n",
                static_cast<unsigned long long>(flights.traces().size()),
                static_cast<unsigned long long>(flights.packets_seen()));
    // Exact latency decomposition of the slowest sampled delivery, plus its
    // physical path length through the Thompson layout (grid edge units).
    const std::vector<i64> wire_lengths = link_wire_lengths(plan);
    const obs::FlightTrace* slowest = nullptr;
    u64 slowest_latency = 0;
    for (const obs::FlightTrace& t : flights.traces()) {
      if (t.outcome != obs::FlightOutcome::kDelivered) continue;
      const u64 latency = t.end_cycle + 1 - t.injected_at;
      if (slowest == nullptr || latency > slowest_latency) {
        slowest = &t;
        slowest_latency = latency;
      }
    }
    if (slowest != nullptr) {
      const obs::FlightDecomposition d = obs::decompose_flight(*slowest, n);
      std::printf("  slowest sampled packet %llu (%llu -> %llu): latency %llu\n",
                  static_cast<unsigned long long>(slowest->packet_id),
                  static_cast<unsigned long long>(slowest->src),
                  static_cast<unsigned long long>(slowest->dst),
                  static_cast<unsigned long long>(d.latency));
      std::printf("    = queue wait %llu + transit %llu + detour %llu (sums exactly)\n",
                  static_cast<unsigned long long>(d.queue_wait),
                  static_cast<unsigned long long>(d.transit),
                  static_cast<unsigned long long>(d.detour));
      std::printf("    wire length through the layout: %lld grid edges over %zu hops\n",
                  static_cast<long long>(obs::flight_distance(*slowest, wire_lengths)),
                  slowest->hops.size());
    }
    util::atomic_write_file("butterfly_paths.trace.json",
                            obs::flight_chrome_trace_json(flights.traces(), sb.rows()));
    std::printf("  wrote butterfly_paths.trace.json (per-packet spans; open in\n");
    std::printf("        https://ui.perfetto.dev — also try: bflyreport paths quickstart.run.json)\n");
  }

  // --- 7. Live faults: fail -> failover -> repair ---------------------------
  // A deterministic mid-run timeline: chip 1 of the Section 5 packing dies at
  // cycle 150 and a provisioned spare takes over its rows 50 cycles later
  // (the detection latency); one link dies at cycle 300 and is repaired at
  // cycle 400.  Packets caught on a dying link are dropped as
  // killed_by_fault; the recovery analytics read the cycle-resolved
  // telemetry to measure each transient.
  {
    FaultSchedule schedule(n);
    schedule.attach_plan(plan_hierarchical(n, {}));
    schedule.set_failover({/*spare_chips=*/1, /*detection_latency=*/50});
    schedule.fail_chip_at(150, /*chip=*/1);
    schedule.fail_link_at(300, /*row=*/3, /*stage=*/1, /*cross=*/true);
    schedule.repair_link_at(400, 3, 1, true);

    const FaultSet pristine_base(n);
    obs::TimeSeries live_series(128);
    const FaultSaturationPoint live = simulate_saturation_faulty(
        n, 0.5, 600, 7, pristine_base, {}, 0, 0, nullptr, &live_series, nullptr,
        nullptr, &schedule);
    std::printf("\nLive faults (chip %d dies @150, failover @200; link repaired @400):\n", 1);
    std::printf("  %llu fail / %llu repair events, %llu failover(s);"
                " links killed %llu, revived %llu\n",
                static_cast<unsigned long long>(live.live.fail_events),
                static_cast<unsigned long long>(live.live.repair_events),
                static_cast<unsigned long long>(live.live.failovers),
                static_cast<unsigned long long>(live.live.links_killed),
                static_cast<unsigned long long>(live.live.links_revived));
    std::printf("  throughput %.4f; %llu packet(s) killed in flight\n",
                live.point.throughput,
                static_cast<unsigned long long>(
                    live.tally.dropped[drop_index(DropReason::kKilledByFault)]));
    const RecoveryAnalysis recovery = analyze_recovery(live_series, schedule);
    if (recovery.applicable) {
      for (const RecoveryEvent& ev : recovery.events) {
        std::printf("  fault @%llu: %s (time to recover %llu cycles, %llu packets lost)\n",
                    static_cast<unsigned long long>(ev.fault_cycle),
                    ev.recovered ? "recovered" : "did not recover",
                    static_cast<unsigned long long>(ev.time_to_recover_cycles),
                    static_cast<unsigned long long>(ev.packets_lost));
      }
      std::printf("  residual throughput after all repairs: %.4f of the pre-fault level\n",
                  recovery.residual_throughput);
    }
  }

  // --- 8. The run report ----------------------------------------------------
  obs::ReportOptions report;
  report.name = "quickstart";
  report.status = exec::to_string(sweep.status);
  report.points_completed = sweep.num_completed;
  report.points_total = static_cast<u64>(sweep_points.size());
  report.config.set("n", json::Value::number(n));
  report.artifact_stats.set("area", json::Value::number(m.area));
  report.artifact_stats.set("max_wire_length", json::Value::number(m.max_wire_length));
  report.artifact_stats.set("num_modules", json::Value::number(stats.num_modules));
  // Attaching the time series bumps the report to schema v2; with BFLY_OBS
  // compiled out the series is empty and the report stays v1 — both parse
  // with obs::RunReport::parse / bflyreport.
  if (!series.empty()) report.timeseries = series.to_json();
  if (!flights.empty()) report.flight = flights.to_json();
  {
    std::ostringstream out;
    obs::write_report_pretty(out, registry, report);
    util::atomic_write_file("quickstart.run.json", out.str());
  }
  {
    std::ostringstream out;
    obs::write_chrome_trace(out, registry);
    util::atomic_write_file("quickstart.trace.json", out.str());
  }
  std::printf("\nwrote quickstart.run.json (structured run report) and\n");
  std::printf("      quickstart.trace.json (open in https://ui.perfetto.dev)\n");
  return 0;
}
