// Quickstart: the three things the library does, in ~80 lines.
//
//   1. Transform an indirect swap network into a butterfly (Sec. 2.2) and
//      verify the isomorphism.
//   2. Produce an optimal Thompson-model layout (Sec. 3), machine-check its
//      legality, and measure area / max wire length against the paper's
//      closed forms.
//   3. Partition the network for packaging (Sec. 2.3) and count off-module
//      links.
//   4. Record the whole run with bfly::obs — every step above lands in the
//      installed registry, and the end of main() writes a structured JSON
//      run report plus a Chrome trace (load quickstart.trace.json in
//      https://ui.perfetto.dev to see the phase spans).
//
// Run:  ./quickstart [n]    (default n = 6)
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/bfly.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  if (n < 3 || n > 15) {
    std::fprintf(stderr, "usage: %s [n in 3..15]\n", argv[0]);
    return 1;
  }

  // Install the metrics/trace registry for the rest of the run.
  obs::Registry registry;
  const obs::ScopedRegistry scoped(&registry);

  // --- 1. ISN -> swap-butterfly -> butterfly -------------------------------
  const std::vector<int> k = ButterflyLayoutPlan::choose_parameters(n);
  const SwapButterfly sb(k);
  std::printf("B_%d: %llu rows x %d stages = %llu nodes, %llu links\n", n,
              static_cast<unsigned long long>(sb.rows()), sb.num_stages(),
              static_cast<unsigned long long>(sb.num_nodes()),
              static_cast<unsigned long long>(sb.num_links()));

  std::string why;
  const bool iso = is_isomorphism(sb.graph(), Butterfly(n).graph(),
                                  sb.isomorphism_to_butterfly(), &why);
  std::printf("swap-butterfly is an automorphism of B_%d: %s\n", n, iso ? "verified" : why.c_str());

  // A Fig. 1/2-style diagram of the underlying ISN.
  if (n <= 6) {
    const IndirectSwapNetwork& isn = sb.isn();
    std::ofstream diagram("isn_diagram.svg");
    diagram << render_multistage_svg(
        isn.rows(), isn.num_stages(), [&](const std::function<void(u64, int, u64)>& emit) {
          for (int t = 1; t <= isn.num_steps(); ++t) {
            for (u64 u = 0; u < isn.rows(); ++u) {
              const auto out = isn.outgoing(u, t);
              if (out.is_swap) {
                emit(u, t - 1, out.swap);
              } else {
                emit(u, t - 1, out.straight);
                emit(u, t - 1, out.cross);
              }
            }
          }
        });
    std::printf("wrote isn_diagram.svg (Fig. 1/2 style)\n");
  }

  // --- 2. Optimal layout ----------------------------------------------------
  const ButterflyLayoutPlan plan(k);
  const LayoutMetrics m = plan.metrics();
  std::printf("\nThompson-model layout (L = 2):\n");
  std::printf("  %lld x %lld, area %lld (paper leading term %.0f, ratio %.3f)\n",
              static_cast<long long>(m.width), static_cast<long long>(m.height),
              static_cast<long long>(m.area), formulas::thompson_area(n),
              static_cast<double>(m.area) / formulas::thompson_area(n));
  std::printf("  max wire %lld (paper leading term %.0f, ratio %.3f)\n",
              static_cast<long long>(m.max_wire_length), formulas::thompson_max_wire(n),
              static_cast<double>(m.max_wire_length) / formulas::thompson_max_wire(n));

  if (n <= 9) {
    const Layout layout = plan.materialize();
    const LegalityReport thompson = check_thompson(layout);
    const LegalityReport multilayer = check_multilayer(layout);
    std::printf("  legality: Thompson %s; multilayer %s\n", thompson.summary().c_str(),
                multilayer.summary().c_str());
    std::ofstream svg("butterfly_layout.svg");
    svg << render_svg(layout, {n <= 6 ? 4.0 : 1.0, true});
    std::printf("  wrote butterfly_layout.svg\n");
  }

  // --- 3. Packaging ---------------------------------------------------------
  const Partition part = row_block_partition(sb, k[0]);
  const PartitionStats stats = evaluate_partition(sb.graph(), part);
  std::printf("\nPackaging (2^%d rows per module):\n", k[0]);
  std::printf("  %llu modules of %llu nodes; avg off-module links/node %.4f (formula %.4f)\n",
              static_cast<unsigned long long>(stats.num_modules),
              static_cast<unsigned long long>(stats.max_nodes_per_module),
              stats.avg_offmodule_links_per_node,
              formulas::offmodule_links_per_node_general(k));

  // --- 4. The run report ----------------------------------------------------
  obs::ReportOptions report;
  report.name = "quickstart";
  report.config.set("n", json::Value::number(n));
  report.artifact_stats.set("area", json::Value::number(m.area));
  report.artifact_stats.set("max_wire_length", json::Value::number(m.max_wire_length));
  report.artifact_stats.set("num_modules", json::Value::number(stats.num_modules));
  {
    std::ofstream out("quickstart.run.json");
    obs::write_report_pretty(out, registry, report);
  }
  {
    std::ofstream out("quickstart.trace.json");
    obs::write_chrome_trace(out, registry);
  }
  std::printf("\nwrote quickstart.run.json (schema-v1 run report) and\n");
  std::printf("      quickstart.trace.json (open in https://ui.perfetto.dev)\n");
  return 0;
}
