// FFT accelerator floorplanner: the PIM / smart-memory motivation from the
// paper's introduction.
//
// Design a 2^n-point FFT engine whose dataflow *is* the butterfly network:
// pick ISN parameters, verify the network computes the DFT exactly over its
// own links, then report the VLSI floorplan (with large compute nodes --
// node size scalability, Sec. 3) and the chip-level packaging.
//
// Run:  ./fft_accelerator [log2_points]     (default 9)
#include <cstdio>
#include <cstdlib>

#include "core/bfly.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  const int n = argc > 1 ? std::atoi(argv[1]) : 9;
  if (n < 3 || n > 14) {
    std::fprintf(stderr, "usage: %s [log2_points in 3..14]\n", argv[0]);
    return 1;
  }
  const std::vector<int> k = ButterflyLayoutPlan::choose_parameters(n);
  const SwapButterfly sb(k);
  std::printf("%llu-point FFT engine on a B_%d dataflow network\n",
              static_cast<unsigned long long>(sb.rows()), n);

  // --- functional verification over the network links -----------------------
  Xoshiro256 rng(7);
  std::vector<cplx> x(sb.rows());
  for (auto& v : x) v = {rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  const double err = max_abs_error(fft_on_swap_butterfly(sb, x), fft_reference(x));
  std::printf("network FFT vs reference FFT: max |error| = %.2e\n\n", err);

  // --- floorplan with realistic compute-node sizes ---------------------------
  std::printf("floorplan (each node = butterfly ALU + registers):\n");
  std::printf("  %10s %16s %12s\n", "node side", "area", "max wire");
  for (const i64 w : {4, 8, 16}) {
    ButterflyLayoutOptions opt;
    opt.node_side = w;
    const ButterflyLayoutPlan plan(k, opt);
    const LayoutMetrics m = plan.metrics();
    std::printf("  %10lld %16lld %12lld\n", static_cast<long long>(w),
                static_cast<long long>(m.area), static_cast<long long>(m.max_wire_length));
  }

  // --- multi-chip version -----------------------------------------------------
  std::printf("\nmulti-chip packaging (Sec. 2.3 row-block scheme):\n");
  const Partition part = row_block_partition(sb, k[0]);
  const PartitionStats stats = evaluate_partition(sb.graph(), part);
  std::printf("  %llu chips, %llu nodes each, avg %.3f off-chip links per node\n",
              static_cast<unsigned long long>(stats.num_modules),
              static_cast<unsigned long long>(stats.max_nodes_per_module),
              stats.avg_offmodule_links_per_node);
  std::printf("  (naive packing would need ~%.1f links per node)\n",
              formulas::naive_offmodule_links_per_node());
  return 0;
}
