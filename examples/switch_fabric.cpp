// Switch fabric designer: the "network switches and routers" motivation from
// the paper's introduction.
//
// Given a port count, build the butterfly switching fabric that connects
// them, lay it out under the multilayer grid model for several metal stack
// heights, and simulate its saturation throughput under uniform random
// traffic.
//
// Run:  ./switch_fabric [ports]     (default 256; rounded up to a power of 2)
#include <cstdio>
#include <cstdlib>

#include "core/bfly.hpp"

int main(int argc, char** argv) {
  using namespace bfly;
  u64 ports = argc > 1 ? static_cast<u64>(std::atoll(argv[1])) : 256;
  if (ports < 8) ports = 8;
  int n = ilog2(ports);
  if (!is_pow2(ports)) ++n;
  if (n > 12) {
    std::fprintf(stderr, "at most 4096 ports in this demo\n");
    return 1;
  }
  std::printf("switch fabric for %llu ports: butterfly B_%d (%llu x %llu, %llu switch nodes)\n\n",
              static_cast<unsigned long long>(pow2(n)), n,
              static_cast<unsigned long long>(pow2(n)),
              static_cast<unsigned long long>(pow2(n)),
              static_cast<unsigned long long>(pow2(n) * static_cast<u64>(n + 1)));

  // --- silicon: multilayer layouts over a metal-stack sweep -----------------
  std::printf("layout vs metal stack (multilayer 2-D grid model):\n");
  std::printf("  %4s %14s %12s %12s\n", "L", "area", "max wire", "volume");
  for (const int L : {2, 4, 6, 8}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n), opt);
    const LayoutMetrics m = plan.metrics();
    std::printf("  %4d %14lld %12lld %14lld\n", L, static_cast<long long>(m.area),
                static_cast<long long>(m.max_wire_length), static_cast<long long>(m.volume));
  }

  // --- traffic: saturation behaviour ----------------------------------------
  std::printf("\nuniform random traffic (synchronous store-and-forward):\n");
  std::printf("  %8s %12s %10s\n", "offered", "throughput", "latency");
  for (const double load : {0.25, 0.5, 0.75, 1.0}) {
    const SaturationPoint p = simulate_saturation(std::min(n, 9), load, 3000, 1, 300);
    std::printf("  %8.2f %12.4f %10.2f\n", p.offered_load, p.throughput, p.avg_latency);
  }

  // --- worst-case traffic: why switches use Benes fabrics ---------------------
  std::printf("\nworst-case (bit-reversal) permutation:\n");
  const int bn = std::min(n, 10);
  std::printf("  greedy butterfly congestion : %llu packets on one link\n",
              static_cast<unsigned long long>(bit_reversal_congestion(bn)));
  {
    const Benes benes(bn);
    std::vector<u64> perm(benes.rows());
    for (u64 i = 0; i < perm.size(); ++i) perm[i] = bit_reverse(i, bn);
    const auto paths = benes.route_permutation(perm);
    std::printf("  Benes fabric (looping alg.) : congestion 1 over %zu node-disjoint paths\n",
                paths.size());
  }

  // --- the same fabric as line cards -----------------------------------------
  std::printf("\npartition onto line cards (64 off-card links each):\n");
  try {
    const HierarchicalPlan plan = plan_hierarchical(n, {});
    std::printf("  %llu cards of %llu nodes, %llu off-card links each\n",
                static_cast<unsigned long long>(plan.num_chips),
                static_cast<unsigned long long>(plan.nodes_per_chip),
                static_cast<unsigned long long>(plan.offchip_links_per_chip));
  } catch (const InvalidArgument& e) {
    std::printf("  %s\n", e.what());
  }
  return 0;
}
