// The cycle-parallel sharded engine (routing/sharded_sim.hpp) and its
// building blocks.
//
// The load-bearing contract is the determinism one: a sharded run is a pure
// function of (n, offered_load, cycles, seed, shard_count) — bitwise
// invariant across thread counts — and every offered packet is exactly
// accounted for (delivered + dropped + in flight == offered) over the whole
// run, warmup included.  On top of that sit the SPSC hand-off ring's FIFO
// semantics, the PacketArena's index-width hardening, the sweep integration
// (dispatch, serial fallback, checkpoint identity), and the kill/resume
// bit-identity of a checkpointed sharded grid.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/exec.hpp"
#include "fault/fault_set.hpp"
#include "routing/packet_arena.hpp"
#include "routing/routing.hpp"
#include "routing/sharded_sim.hpp"
#include "sim/sweep.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"
#include "util/spsc_ring.hpp"

namespace bfly {
namespace {

// ---------------------------------------------------------------------------
// util::SpscRing

TEST(SpscRing, RequiresPowerOfTwoCapacity) {
  EXPECT_THROW(util::SpscRing<int>(0), InvalidArgument);
  EXPECT_THROW(util::SpscRing<int>(3), InvalidArgument);
  EXPECT_THROW(util::SpscRing<int>(12), InvalidArgument);
  EXPECT_NO_THROW(util::SpscRing<int>(1));
  EXPECT_NO_THROW(util::SpscRing<int>(64));
}

TEST(SpscRing, FifoOrderAndFullEmpty) {
  util::SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  int out = 0;
  EXPECT_FALSE(ring.try_pop(&out));  // empty pops fail
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full pushes fail, slot 0 not clobbered
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(&out));
    EXPECT_EQ(out, i);  // strict FIFO
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(&out));
}

TEST(SpscRing, WrapAroundPreservesOrder) {
  // Push/pop far past the capacity so head/tail wrap the index mask many
  // times; order and values must survive every wrap.
  util::SpscRing<int> ring(8);
  int expect = 0;
  int next = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(next++));
    for (int i = 0; i < 5; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.try_pop(&out));
      EXPECT_EQ(out, expect++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ReuseAcrossCyclesLikeTheEngineDoes) {
  // The engine's pattern: fill during phase A, drain completely during phase
  // B, repeat.  The ring must come back empty-and-usable every cycle.
  util::SpscRing<u64> ring(16);
  for (u64 cycle = 0; cycle < 50; ++cycle) {
    const u64 n = cycle % 17;  // varying fill, including 0 and capacity
    for (u64 i = 0; i < std::min<u64>(n, 16); ++i) {
      ASSERT_TRUE(ring.try_push(cycle * 100 + i));
    }
    u64 out = 0;
    u64 drained = 0;
    while (ring.try_pop(&out)) {
      EXPECT_EQ(out, cycle * 100 + drained);
      ++drained;
    }
    EXPECT_EQ(drained, std::min<u64>(n, 16));
    EXPECT_TRUE(ring.empty());
  }
}

TEST(SpscRing, TwoThreadStressKeepsSequence) {
  // One producer, one consumer, tight capacity so both sides hit the
  // full/empty edges constantly.  Under TSan this is the data-race probe for
  // the acquire/release protocol; everywhere it checks the sequence exactly.
  // Yield on the full/empty edges: on a single-core runner a busy spin
  // ping-pongs against the OS scheduler for minutes; with yields the test is
  // milliseconds everywhere and TSan still sees every edge.
  util::SpscRing<u64> ring(4);
  constexpr u64 kCount = 20'000;
  std::atomic<bool> failed{false};
  std::thread consumer([&] {
    u64 expect = 0;
    while (expect < kCount) {
      u64 out = 0;
      if (ring.try_pop(&out)) {
        if (out != expect) {
          failed.store(true);
          return;
        }
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (u64 i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------------
// PacketArena index-width hardening

TEST(PacketArena, RejectsLinkCountBeyondIndexWidth) {
  // Slot/link ids are u32 with kNil as the sentinel; an oversized request
  // must throw before any allocation (this would be a ~TB reserve otherwise).
  EXPECT_THROW(PacketArena(u64{1} << 33), InvalidArgument);
  EXPECT_THROW(PacketArena(static_cast<u64>(PacketArena::kNil)), InvalidArgument);
  EXPECT_NO_THROW(PacketArena(1));
}

TEST(PacketArena, RejectsInitialSlotsBeyondIndexWidth) {
  EXPECT_THROW(PacketArena(4, false, false, std::size_t{1} << 33), InvalidArgument);
  EXPECT_THROW(PacketArena(4, false, false, static_cast<std::size_t>(PacketArena::kNil)),
               InvalidArgument);
  EXPECT_NO_THROW(PacketArena(4, false, false, 16));
}

// ---------------------------------------------------------------------------
// parse_thread_count (the --threads / $BFLY_THREADS validator)

TEST(ParseThreadCount, AcceptsOnlyPlainIntegersInRange) {
  std::size_t out = 77;
  EXPECT_TRUE(parse_thread_count("1", &out));
  EXPECT_EQ(out, 1u);
  EXPECT_TRUE(parse_thread_count("4096", &out));
  EXPECT_EQ(out, 4096u);
  out = 77;
  for (const char* bad : {"0", "4097", "", "4x", "x4", "-2", "+3", " 4", "4 ", "1e3",
                          "0x10", "999999999999999999999"}) {
    EXPECT_FALSE(parse_thread_count(bad, &out)) << "'" << bad << "'";
    EXPECT_EQ(out, 77u) << "rejected parse must not touch *out";
  }
  EXPECT_FALSE(parse_thread_count(nullptr, &out));
}

// ---------------------------------------------------------------------------
// Sharded engine: validation and defaults

TEST(ShardedSim, ValidatesItsParameters) {
  EXPECT_THROW(simulate_saturation_sharded(0, 0.5, 10, 1), InvalidArgument);
  EXPECT_THROW(simulate_saturation_sharded(31, 0.5, 10, 1), InvalidArgument);
  EXPECT_THROW(simulate_saturation_sharded(4, 1.5, 10, 1), InvalidArgument);
  EXPECT_THROW(simulate_saturation_sharded(4, -0.1, 10, 1), InvalidArgument);
  ShardedOptions opt;
  opt.shard_count = 3;  // not a power of two
  EXPECT_THROW(simulate_saturation_sharded(4, 0.5, 10, 1, opt), InvalidArgument);
  opt.shard_count = 32;  // > 2^4 rows
  EXPECT_THROW(simulate_saturation_sharded(4, 0.5, 10, 1, opt), InvalidArgument);
  const FaultSet wrong_dim(5);
  EXPECT_THROW(simulate_saturation_sharded(4, 0.5, 10, 1, {}, &wrong_dim), InvalidArgument);
}

TEST(ShardedSim, DefaultShardCountIsMachineIndependent) {
  // 0 picks min(2^n, 8) — a fixed constant, never the core count, so a
  // defaulted run is still a pure function of its parameters.
  EXPECT_EQ(simulate_saturation_sharded(6, 0.3, 50, 1).shard_count, 8u);
  EXPECT_EQ(simulate_saturation_sharded(2, 0.3, 50, 1).shard_count, 4u);
}

// ---------------------------------------------------------------------------
// Thread invariance: the acceptance criterion

void expect_sharded_eq(const ShardedSaturationPoint& a, const ShardedSaturationPoint& b) {
  // Bitwise equality including the doubles: the contract is bit-identity,
  // not closeness, so EXPECT_EQ throughout.
  EXPECT_EQ(a.point.offered_load, b.point.offered_load);
  EXPECT_EQ(a.point.throughput, b.point.throughput);
  EXPECT_EQ(a.point.avg_latency, b.point.avg_latency);
  EXPECT_EQ(a.point.per_node_injection, b.point.per_node_injection);
  EXPECT_EQ(a.point.delivered, b.point.delivered);
  EXPECT_EQ(a.point.max_queue, b.point.max_queue);
  EXPECT_EQ(a.point.dropped_queue_full, b.point.dropped_queue_full);
  EXPECT_EQ(a.tally.delivered, b.tally.delivered);
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    EXPECT_EQ(a.tally.dropped[r], b.tally.dropped[r]) << "drop reason " << r;
  }
  EXPECT_EQ(a.tally.misroutes, b.tally.misroutes);
  EXPECT_EQ(a.tally.wraps, b.tally.wraps);
  EXPECT_EQ(a.shard_count, b.shard_count);
  EXPECT_EQ(a.offered_total, b.offered_total);
  EXPECT_EQ(a.injected_total, b.injected_total);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.dropped_total, b.dropped_total);
  EXPECT_EQ(a.in_flight_end, b.in_flight_end);
}

void expect_thread_invariant(int n, u64 shard_count, const FaultSet* faults,
                             u64 queue_capacity, u64 cycles) {
  ShardedOptions opt;
  opt.shard_count = shard_count;
  opt.warmup_cycles = cycles / 6;
  opt.queue_capacity = queue_capacity;
  opt.routing.misroute_budget = 2;
  opt.routing.wrap_budget = 1;
  opt.threads = 1;
  const ShardedSaturationPoint reference =
      simulate_saturation_sharded(n, 0.7, cycles, 2026, opt, faults);
  EXPECT_TRUE(reference.conserved());
  EXPECT_GT(reference.point.delivered, 0u);
  // 0 = hardware concurrency — whatever this machine has; the pool helps
  // while waiting, so an oversubscribed request is fine too.
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ShardedOptions o = opt;
    o.threads = threads;
    expect_sharded_eq(simulate_saturation_sharded(n, 0.7, cycles, 2026, o, faults), reference);
  }
}

TEST(ShardedSim, BitwiseInvariantAcrossThreadCountsPristineB6) {
  expect_thread_invariant(6, 8, nullptr, 0, 600);
}

TEST(ShardedSim, BitwiseInvariantAcrossThreadCountsPristineBoundedB6) {
  // Bounded queues exercise the drop paths; invariance must hold there too.
  expect_thread_invariant(6, 8, nullptr, 2, 600);
}

TEST(ShardedSim, BitwiseInvariantAcrossThreadCountsFaultyB6) {
  FaultSet faults = FaultSet::random_links(6, 0.05, 99);
  faults.fail_node(3, 2);
  expect_thread_invariant(6, 8, &faults, 8, 600);
}

TEST(ShardedSim, BitwiseInvariantAcrossThreadCountsPristineB12) {
  expect_thread_invariant(12, 8, nullptr, 0, 400);
}

TEST(ShardedSim, BitwiseInvariantAcrossThreadCountsFaultyB12) {
  const FaultSet faults = FaultSet::random_links(12, 0.02, 7);
  expect_thread_invariant(12, 8, &faults, 16, 400);
}

TEST(ShardedSim, ShardCountOneAndMaxAreValidDegenerateGeometries) {
  // S = 1: no cross stages at all (every hop shard-local); S = rows: every
  // cross stage hands off.  Both extremes must conserve and stay
  // thread-invariant.
  expect_thread_invariant(4, 1, nullptr, 0, 300);
  expect_thread_invariant(4, 16, nullptr, 0, 300);
  const FaultSet faults = FaultSet::random_links(4, 0.05, 3);
  expect_thread_invariant(4, 16, &faults, 4, 300);
}

// ---------------------------------------------------------------------------
// Conservation and statistical agreement with the serial engines

TEST(ShardedSim, ConservationIsExactUnderHeavyDrops) {
  // Saturating load into capacity-1 queues: most offered packets drop.  The
  // ledger must still balance exactly, and the parts must be self-consistent.
  ShardedOptions opt;
  opt.shard_count = 8;
  opt.queue_capacity = 1;
  opt.threads = 2;
  const ShardedSaturationPoint r = simulate_saturation_sharded(6, 1.0, 500, 5, opt);
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.offered_total, r.delivered_total + r.dropped_total + r.in_flight_end);
  EXPECT_GT(r.dropped_total, 0u);
  EXPECT_LE(r.injected_total, r.offered_total);
  EXPECT_GE(r.delivered_total, r.point.delivered);  // whole-run >= post-warmup
}

TEST(ShardedSim, ZeroLoadAndZeroishCyclesDegenerateCleanly) {
  ShardedOptions opt;
  opt.shard_count = 4;
  const ShardedSaturationPoint none = simulate_saturation_sharded(4, 0.0, 100, 1, opt);
  EXPECT_EQ(none.offered_total, 0u);
  EXPECT_EQ(none.point.delivered, 0u);
  EXPECT_EQ(none.point.throughput, 0.0);
  EXPECT_EQ(none.point.avg_latency, 0.0);
  EXPECT_TRUE(none.conserved());
}

TEST(ShardedSim, AgreesStatisticallyWithTheSerialEngine) {
  // The sharded engine deliberately produces different bits (its injection
  // RNG decomposes per row block), but it simulates the same physics: at an
  // uncongested operating point both engines deliver essentially every
  // injected packet, so throughput must agree closely and latency loosely.
  const int n = 8;
  const double load = 0.5;
  const u64 cycles = 2000;
  const u64 warmup = 200;
  const SaturationPoint serial = simulate_saturation(n, load, cycles, 77, warmup, 0);
  ShardedOptions opt;
  opt.shard_count = 8;
  opt.warmup_cycles = warmup;
  const ShardedSaturationPoint sharded =
      simulate_saturation_sharded(n, load, cycles, 77, opt);
  EXPECT_TRUE(sharded.conserved());
  ASSERT_GT(serial.throughput, 0.0);
  EXPECT_NEAR(sharded.point.throughput / serial.throughput, 1.0, 0.05);
  ASSERT_GT(serial.avg_latency, 0.0);
  EXPECT_NEAR(sharded.point.avg_latency / serial.avg_latency, 1.0, 0.10);
}

TEST(ShardedSim, CancelStopsAtACycleBoundaryWithAnExactLedger) {
  CancelToken token;
  token.request_cancel();  // pre-cancelled: polled before cycle 0 runs
  ShardedOptions opt;
  opt.shard_count = 4;
  const ShardedSaturationPoint r =
      simulate_saturation_sharded(6, 0.8, 10'000, 3, opt, nullptr, &token);
  EXPECT_EQ(r.offered_total, 0u);
  EXPECT_EQ(r.point.throughput, 0.0);
  EXPECT_TRUE(r.conserved());
}

// ---------------------------------------------------------------------------
// Sweep integration and checkpoint identity

TEST(ShardedSweep, ShardedPointMatchesTheDirectEngineCall) {
  SweepPoint p;
  p.n = 6;
  p.offered_load = 0.6;
  p.cycles = 400;
  p.seed = 11;
  p.warmup_cycles = 50;
  p.shard_count = 4;
  const std::vector<SweepPoint> grid{p};
  const std::vector<SweepOutcome> outcomes = saturation_sweep(grid);
  ShardedOptions opt;
  opt.shard_count = 4;
  opt.warmup_cycles = 50;
  const ShardedSaturationPoint direct =
      simulate_saturation_sharded(6, 0.6, 400, 11, opt);
  EXPECT_EQ(outcomes[0].point.throughput, direct.point.throughput);
  EXPECT_EQ(outcomes[0].point.avg_latency, direct.point.avg_latency);
  EXPECT_EQ(outcomes[0].point.delivered, direct.point.delivered);
  EXPECT_EQ(outcomes[0].point.max_queue, direct.point.max_queue);
}

TEST(ShardedSweep, ProbeRequestsFallBackToTheSerialEngineBitwise) {
  // shard_count plus a telemetry budget: the sharded engine carries no
  // probes, so the point must route to the serial engine and match the
  // shard_count == 0 outcome exactly, telemetry included.
  SweepPoint serial;
  serial.n = 5;
  serial.offered_load = 0.6;
  serial.cycles = 300;
  serial.seed = 9;
  serial.warmup_cycles = 50;
  serial.telemetry_budget = 16;
  SweepPoint sharded = serial;
  sharded.shard_count = 4;
  const std::vector<SweepPoint> grid{serial, sharded};
  const std::vector<SweepOutcome> outcomes = saturation_sweep(grid);
  EXPECT_EQ(outcomes[0].point.throughput, outcomes[1].point.throughput);
  EXPECT_EQ(outcomes[0].point.avg_latency, outcomes[1].point.avg_latency);
  EXPECT_EQ(outcomes[0].point.delivered, outcomes[1].point.delivered);
  EXPECT_EQ(outcomes[0].point.dropped_queue_full, outcomes[1].point.dropped_queue_full);
  EXPECT_TRUE(outcomes[0].timeseries == outcomes[1].timeseries);
}

TEST(ShardedSweep, ValidationRejectsBadShardCounts) {
  SweepPoint p;
  p.n = 4;
  p.offered_load = 0.5;
  p.cycles = 100;
  p.shard_count = 3;
  const std::vector<SweepPoint> bad{p};
  EXPECT_THROW(saturation_sweep(bad), InvalidArgument);
  p.shard_count = 32;  // > 2^4
  const std::vector<SweepPoint> too_many{p};
  EXPECT_THROW(saturation_sweep(too_many), InvalidArgument);
  p.shard_count = 4;
  const std::vector<SweepPoint> ok{p};
  EXPECT_NO_THROW(saturation_sweep(ok));
}

TEST(ShardedSweep, ShardCountJoinsTheCheckpointIdentity) {
  SweepPoint p;
  p.n = 6;
  p.offered_load = 0.5;
  p.cycles = 200;
  p.seed = 1;
  const std::string serial_key = exec::sweep_point_key(p);
  SweepPoint q = p;
  q.shard_count = 2;
  EXPECT_NE(exec::sweep_point_key(q), serial_key);
  SweepPoint r = p;
  r.shard_count = 4;
  EXPECT_NE(exec::sweep_point_key(r), serial_key);
  EXPECT_NE(exec::sweep_point_key(r), exec::sweep_point_key(q));
  EXPECT_EQ(exec::sweep_point_key(q), exec::sweep_point_key(q));
}

// ---------------------------------------------------------------------------
// Kill/resume bit-identity for a sharded grid

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "bfly_" + name;
  std::remove(path.c_str());
  return path;
}

TEST(ShardedSweep, KillAfterEveryPrefixThenResumeIsBitIdentical) {
  std::vector<SweepPoint> points;
  for (const double load : {0.2, 0.4, 0.6, 0.8}) {
    SweepPoint p;
    p.n = 6;
    p.offered_load = load;
    p.cycles = 300;
    p.seed = 13;
    p.warmup_cycles = 50;
    p.shard_count = 4;
    points.push_back(p);
  }
  exec::SweepRunOptions base;
  base.threads = 1;
  const std::vector<SweepOutcome> baseline = exec::run_sweep_resumable(points, base).outcomes;

  const std::string path = temp_path("sharded_kill_resume.ckpt");
  for (std::size_t k = 1; k < points.size(); ++k) {
    SCOPED_TRACE(::testing::Message() << "kill after " << k << " points");
    std::remove(path.c_str());
    CancelToken token;
    exec::SweepRunOptions kill;
    kill.threads = 1;
    kill.checkpoint_path = path;
    kill.cancel = &token;
    kill.after_checkpoint = [&](std::size_t appended) {
      if (appended == k) token.request_cancel();
    };
    const exec::SweepRun killed = exec::run_sweep_resumable(points, kill);
    EXPECT_EQ(killed.status, exec::SweepStatus::kCancelled);
    EXPECT_EQ(killed.num_completed, k);

    exec::SweepRunOptions resume;
    resume.threads = 3;
    resume.checkpoint_path = path;
    const exec::SweepRun resumed = exec::run_sweep_resumable(points, resume);
    EXPECT_EQ(resumed.status, exec::SweepStatus::kComplete);
    EXPECT_EQ(resumed.num_replayed, k);
    ASSERT_EQ(resumed.outcomes.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(resumed.outcomes[i].point.throughput, baseline[i].point.throughput);
      EXPECT_EQ(resumed.outcomes[i].point.avg_latency, baseline[i].point.avg_latency);
      EXPECT_EQ(resumed.outcomes[i].point.delivered, baseline[i].point.delivered);
      EXPECT_EQ(resumed.outcomes[i].point.max_queue, baseline[i].point.max_queue);
      EXPECT_EQ(resumed.outcomes[i].point.dropped_queue_full,
                baseline[i].point.dropped_queue_full);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bfly
