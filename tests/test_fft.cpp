// The functional proof of Section 2.2: running an FFT over the
// swap-butterfly's physical links computes the DFT exactly, for every ISN
// parameterization -- possible only if the transformed network is a genuine
// butterfly.
#include <gtest/gtest.h>

#include "fft/isn_fft.hpp"
#include "util/prng.hpp"

namespace bfly {
namespace {

std::vector<cplx> random_signal(u64 n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = {rng.uniform() * 2 - 1, rng.uniform() * 2 - 1};
  return x;
}

TEST(Fft, ReferenceMatchesNaiveDft) {
  for (const u64 n : {2u, 4u, 16u, 64u, 256u}) {
    const auto x = random_signal(n, n);
    EXPECT_LT(max_abs_error(fft_reference(x), dft_naive(x)), 1e-8 * static_cast<double>(n));
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cplx> x(16, 0.0);
  x[0] = 1.0;
  const auto X = fft_reference(x);
  for (const cplx& v : X) EXPECT_NEAR(std::abs(v - cplx{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Fft, ConstantGivesImpulse) {
  std::vector<cplx> x(32, 1.0);
  const auto X = fft_reference(x);
  EXPECT_NEAR(std::abs(X[0] - cplx{32.0, 0.0}), 0.0, 1e-9);
  for (std::size_t k = 1; k < 32; ++k) EXPECT_NEAR(std::abs(X[k]), 0.0, 1e-9);
}

class SwapButterflyFft : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(SwapButterflyFft, MatchesReference) {
  const SwapButterfly sb(GetParam());
  const auto x = random_signal(sb.rows(), 1234);
  const auto network = fft_on_swap_butterfly(sb, x);
  const auto reference = fft_reference(x);
  EXPECT_LT(max_abs_error(network, reference), 1e-9 * static_cast<double>(sb.rows()));
}

TEST_P(SwapButterflyFft, MatchesNaiveDft) {
  const SwapButterfly sb(GetParam());
  if (sb.rows() > 1024) GTEST_SKIP() << "naive DFT too slow";
  const auto x = random_signal(sb.rows(), 77);
  const auto network = fft_on_swap_butterfly(sb, x);
  const auto naive = dft_naive(x);
  EXPECT_LT(max_abs_error(network, naive), 1e-7 * static_cast<double>(sb.rows()));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, SwapButterflyFft,
    ::testing::Values(std::vector<int>{1, 1}, std::vector<int>{1, 1, 1},
                      std::vector<int>{2, 2}, std::vector<int>{3, 2},
                      std::vector<int>{2, 2, 2}, std::vector<int>{3, 3, 3},
                      std::vector<int>{4, 3, 3}, std::vector<int>{4, 4, 3},
                      std::vector<int>{2, 2, 2, 2}, std::vector<int>{3, 2, 2, 1},
                      std::vector<int>{6, 6}),
    [](const ::testing::TestParamInfo<std::vector<int>>& pinfo) {
      std::string name = "k";
      for (const int v : pinfo.param) name += "_" + std::to_string(v);
      return name;
    });

TEST(Fft, LinearityOnTheNetwork) {
  const SwapButterfly sb({2, 2, 2});
  const auto x = random_signal(sb.rows(), 5);
  const auto y = random_signal(sb.rows(), 6);
  std::vector<cplx> sum(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) sum[i] = x[i] + 2.0 * y[i];
  const auto X = fft_on_swap_butterfly(sb, x);
  const auto Y = fft_on_swap_butterfly(sb, y);
  const auto S = fft_on_swap_butterfly(sb, sum);
  std::vector<cplx> expect(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) expect[i] = X[i] + 2.0 * Y[i];
  EXPECT_LT(max_abs_error(S, expect), 1e-9 * static_cast<double>(sb.rows()));
}

TEST(Fft, ParsevalHoldsOnTheNetwork) {
  const SwapButterfly sb({3, 3});
  const auto x = random_signal(sb.rows(), 8);
  const auto X = fft_on_swap_butterfly(sb, x);
  double time_energy = 0;
  double freq_energy = 0;
  for (const cplx& v : x) time_energy += std::norm(v);
  for (const cplx& v : X) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(sb.rows()),
              1e-6 * freq_energy);
}

TEST(Fft, RejectsWrongInputSize) {
  const SwapButterfly sb({2, 2});
  std::vector<cplx> x(8, 0.0);
  EXPECT_THROW(fft_on_swap_butterfly(sb, x), InvalidArgument);
  std::vector<cplx> bad(6, 0.0);
  EXPECT_THROW(fft_reference(bad), InvalidArgument);
}

}  // namespace
}  // namespace bfly
