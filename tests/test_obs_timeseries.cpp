// bfly::obs time-series telemetry: the determinism contract and its oracles.
//
// The load-bearing claims under test:
//   1. Downsampling is a pure function of the cycle sequence — power-of-two
//      stride, thinning in place, never over budget.
//   2. A probed engine run is bitwise identical across thread counts and
//      equals the unprobed run's outcome exactly (observation changes
//      nothing it observes).
//   3. The JSON encoding round-trips bit-for-bit (checkpoint replay identity).
//   4. Little's law L = λW holds on a pristine steady-state run — the
//      queueing-law self-check a miscounting engine cannot pass.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fault/fault_routing.hpp"
#include "fault/fault_set.hpp"
#include "obs/metrics.hpp"  // for BFLY_OBS_ENABLED
#include "obs/timeseries.hpp"
#include "routing/routing.hpp"
#include "sim/sweep.hpp"
#include "util/check.hpp"

namespace bfly::obs {
namespace {

TimeSeries make_series(u64 budget, std::vector<std::string> channels) {
  TimeSeries ts(budget);
  ts.reset_channels(std::move(channels));
  return ts;
}

// --- downsampling ------------------------------------------------------------

TEST(TimeSeriesTest, RetainsEveryCycleWhileUnderBudget) {
  TimeSeries ts = make_series(8, {"a"});
  for (u64 c = 0; c < 8; ++c) {
    ASSERT_TRUE(ts.want(c));
    const double v[] = {static_cast<double>(c)};
    ts.record(c, v);
  }
  EXPECT_EQ(ts.stride(), 1u);
  EXPECT_EQ(ts.num_samples(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ts.cycles()[i], i);
    EXPECT_EQ(ts.value(i, 0), static_cast<double>(i));
  }
}

TEST(TimeSeriesTest, StrideDoublesAndThinsInPlace) {
  TimeSeries ts = make_series(4, {"a"});
  for (u64 c = 0; c < 64; ++c) {
    if (!ts.want(c)) continue;
    const double v[] = {static_cast<double>(c)};
    ts.record(c, v);
  }
  // 64 cycles into a 4-row budget: stride must have reached 16 and the
  // retained cycles are the consecutive multiples 0, 16, 32, 48.
  EXPECT_EQ(ts.stride(), 16u);
  ASSERT_EQ(ts.num_samples(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ts.cycles()[i], i * 16);
    EXPECT_EQ(ts.value(i, 0), static_cast<double>(i * 16));
  }
  // Samples never exceed the budget at any point, and stride stays a power
  // of two (want() relies on the & (stride-1) trick).
  EXPECT_LE(ts.num_samples(), ts.sample_budget());
  EXPECT_EQ(ts.stride() & (ts.stride() - 1), 0u);
}

TEST(TimeSeriesTest, SamplingIsAPureFunctionOfTheCycleSequence) {
  // Recording the same cycles through two differently-interleaved want()
  // checks yields identical stores — there is no hidden state besides the
  // cycle index.
  TimeSeries a = make_series(8, {"x", "y"});
  TimeSeries b = make_series(8, {"x", "y"});
  for (u64 c = 0; c < 200; ++c) {
    const double v[] = {static_cast<double>(c), static_cast<double>(c) * 0.5};
    if (a.want(c)) a.record(c, v);
  }
  for (u64 c = 0; c < 200; ++c) {
    const double v[] = {static_cast<double>(c), static_cast<double>(c) * 0.5};
    if (b.want(c)) b.record(c, v);
    // record() on a non-sampling cycle is an ignored no-op, not a skew.
    if (!b.want(c)) b.record(c, v);
  }
  EXPECT_TRUE(a == b);
}

TEST(TimeSeriesTest, RejectsMisshapenRecords) {
  TimeSeries ts = make_series(4, {"a", "b"});
  const double one[] = {1.0};
  EXPECT_THROW(ts.record(0, one), InvalidArgument);
  const double two[] = {1.0, 2.0};
  ts.record(0, two);
  EXPECT_THROW(ts.record(0, two), InternalError);  // cycles must increase
}

// --- JSON round-trip ---------------------------------------------------------

TEST(TimeSeriesTest, JsonRoundTripIsBitwiseExact) {
  TimeSeries ts = make_series(8, {"in_flight", "delivered"});
  for (u64 c = 0; c < 40; ++c) {
    if (!ts.want(c)) continue;
    // Awkward doubles on purpose: 1/3 and a subnormal-ish scale exercise the
    // %.17g round-trip, not just integers.
    const double v[] = {static_cast<double>(c) / 3.0, std::ldexp(1.0, -40) * static_cast<double>(c)};
    ts.record(c, v);
  }
  const TimeSeries back = TimeSeries::from_json(ts.to_json());
  EXPECT_TRUE(ts == back);
  // And the encoding itself is stable: encode(decode(encode(x))) == encode(x).
  EXPECT_EQ(ts.to_json().dump(), back.to_json().dump());
}

TEST(TimeSeriesTest, FromJsonValidatesShape) {
  TimeSeries ts = make_series(4, {"a"});
  const double v[] = {1.0};
  ts.record(0, v);

  json::Value good = ts.to_json();
  EXPECT_NO_THROW(TimeSeries::from_json(good));

  // A row with the wrong arity must be rejected, not silently padded.
  json::Value bad_rows = good;
  bad_rows.set("samples", json::Value::parse("[[1.0, 2.0]]"));
  EXPECT_THROW(TimeSeries::from_json(bad_rows), InvalidArgument);

  json::Value not_object = json::Value::parse("[]");
  EXPECT_THROW(TimeSeries::from_json(not_object), InvalidArgument);
}

// --- steady state and Little's law ------------------------------------------

TEST(SteadyStateTest, FindsOnsetAfterARamp) {
  // 8 ramp samples then 56 flat ones: onset must land at/after the ramp ends
  // and before the flat region's midpoint.
  TimeSeries ts = make_series(64, {"q"});
  for (u64 c = 0; c < 64; ++c) {
    const double value = c < 8 ? static_cast<double>(c) * 10.0 : 80.0;
    const double v[] = {value};
    ts.record(c, v);
  }
  const SteadyState s = steady_state_onset(ts, "q");
  ASSERT_TRUE(s.found);
  EXPECT_GE(s.cycle, 1u);
  EXPECT_LE(s.cycle, 36u);
}

TEST(SteadyStateTest, NeedsEnoughSamplesAndTheChannel) {
  TimeSeries ts = make_series(64, {"q"});
  for (u64 c = 0; c < 4; ++c) {
    const double v[] = {1.0};
    ts.record(c, v);
  }
  EXPECT_FALSE(steady_state_onset(ts, "q").found);   // < 2 * window samples
  EXPECT_FALSE(steady_state_onset(ts, "zz").found);  // unknown channel
}

TEST(LittlesLawTest, NotApplicableWithoutTheChannels) {
  TimeSeries ts = make_series(16, {"q"});
  for (u64 c = 0; c < 16; ++c) {
    const double v[] = {1.0};
    ts.record(c, v);
  }
  EXPECT_FALSE(littles_law_check(ts).applicable);
}

TEST(LittlesLawTest, PassesOnASyntheticExactQueue) {
  // A synthetic M-ish system constructed to satisfy L = λW exactly:
  // λ = 2 packets/cycle, W = 5 cycles, L = 10 in flight, constant.
  TimeSeries ts = make_series(64, {std::string(kChannelInFlight), std::string(kChannelDelivered),
                                   std::string(kChannelLatencySum)});
  for (u64 c = 0; c < 64; ++c) {
    const double delivered = static_cast<double>(c) * 2.0;
    const double v[] = {10.0, delivered, delivered * 5.0};
    ts.record(c, v);
  }
  const LittlesLawCheck check = littles_law_check(ts);
  ASSERT_TRUE(check.applicable);
  EXPECT_TRUE(check.pass);
  EXPECT_NEAR(check.l, 10.0, 1e-9);
  EXPECT_NEAR(check.lambda, 2.0, 1e-9);
  EXPECT_NEAR(check.w, 5.0, 1e-9);
  EXPECT_NEAR(check.rel_error, 0.0, 1e-9);
}

TEST(LittlesLawTest, FailsWhenOccupancyIsInconsistent) {
  // Same deliveries and latencies, but the in-flight channel claims 3x the
  // consistent occupancy — the check must reject it.
  TimeSeries ts = make_series(64, {std::string(kChannelInFlight), std::string(kChannelDelivered),
                                   std::string(kChannelLatencySum)});
  for (u64 c = 0; c < 64; ++c) {
    const double delivered = static_cast<double>(c) * 2.0;
    const double v[] = {30.0, delivered, delivered * 5.0};
    ts.record(c, v);
  }
  const LittlesLawCheck check = littles_law_check(ts);
  ASSERT_TRUE(check.applicable);
  EXPECT_FALSE(check.pass);
  EXPECT_GT(check.rel_error, 0.5);
}

// --- occupancy frames --------------------------------------------------------

TEST(OccupancyFramesTest, ThinsLikeTimeSeries) {
  OccupancyFrames frames(4);
  const std::vector<double> occ = {0.1, 0.2, 0.3};
  for (u64 c = 0; c < 64; ++c) {
    if (frames.want(c)) frames.record(c, occ);
  }
  EXPECT_EQ(frames.stride(), 16u);
  ASSERT_EQ(frames.num_frames(), 4u);
  EXPECT_EQ(frames.num_links(), 3u);
  for (std::size_t f = 0; f < frames.num_frames(); ++f) {
    EXPECT_EQ(frames.cycles()[f], f * 16);
    ASSERT_EQ(frames.frame(f).size(), 3u);
    EXPECT_EQ(frames.frame(f)[1], 0.2);
  }
}

// --- engine integration ------------------------------------------------------
//
// These run the real engines.  With BFLY_OBS compiled out the probe hooks are
// empty and the series stays empty — the tests then only assert the
// observation-changes-nothing half of the contract.

SweepPoint probe_point(u64 telemetry_budget, const FaultSet* faults = nullptr) {
  SweepPoint p;
  p.n = 8;
  p.offered_load = 0.5;
  p.cycles = 3000;
  p.seed = 42;
  p.warmup_cycles = 500;
  p.telemetry_budget = telemetry_budget;
  p.faults = faults;
  return p;
}

TEST(EngineTelemetryTest, ProbeLeavesTheOutcomeBitUnchanged) {
  const SweepPoint plain = probe_point(0);
  const SaturationPoint without =
      simulate_saturation(plain.n, plain.offered_load, plain.cycles, plain.seed,
                          plain.warmup_cycles);
  TimeSeries ts(128);
  OccupancyFrames frames(8);
  const SaturationPoint with =
      simulate_saturation(plain.n, plain.offered_load, plain.cycles, plain.seed,
                          plain.warmup_cycles, 0, nullptr, &ts, &frames);
  EXPECT_EQ(without.delivered, with.delivered);
  EXPECT_EQ(without.max_queue, with.max_queue);
  EXPECT_DOUBLE_EQ(without.throughput, with.throughput);
  EXPECT_DOUBLE_EQ(without.avg_latency, with.avg_latency);
#if BFLY_OBS_ENABLED
  EXPECT_FALSE(ts.empty());
  EXPECT_FALSE(frames.empty());
  EXPECT_GT(frames.num_links(), 0u);
#else
  EXPECT_TRUE(ts.empty());
  EXPECT_TRUE(frames.empty());
#endif
}

TEST(EngineTelemetryTest, SamplesAreIdenticalAcrossThreadCounts) {
  const std::vector<SweepPoint> points = {probe_point(64), probe_point(128)};
  const std::vector<SweepOutcome> serial = saturation_sweep(points, 1);
  const std::vector<SweepOutcome> parallel = saturation_sweep(points, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].timeseries == parallel[i].timeseries) << "point " << i;
  }
#if BFLY_OBS_ENABLED
  EXPECT_FALSE(serial[0].timeseries.empty());
  EXPECT_FALSE(serial[1].timeseries.empty());
#endif
}

TEST(EngineTelemetryTest, FaultyEngineWithEmptyFaultSetMatchesItsOwnReplay) {
  // The faulty engine's probe must be wired identically: an empty fault set
  // run twice yields the same samples (determinism), and the per-stage
  // channel layout matches the pristine engine's.
  const FaultSet none(8);
  const SweepPoint p = probe_point(64, &none);
  const std::vector<SweepPoint> points = {p};
  const std::vector<SweepOutcome> a = saturation_sweep(points, 1);
  const std::vector<SweepOutcome> b = saturation_sweep(points, 2);
  EXPECT_TRUE(a[0].timeseries == b[0].timeseries);
#if BFLY_OBS_ENABLED
  ASSERT_FALSE(a[0].timeseries.empty());
  const std::vector<SweepPoint> pristine_points = {probe_point(64)};
  const std::vector<SweepOutcome> pristine = saturation_sweep(pristine_points, 1);
  EXPECT_EQ(a[0].timeseries.channels(), pristine[0].timeseries.channels());
#endif
}

#if BFLY_OBS_ENABLED
TEST(EngineTelemetryTest, LittlesLawHoldsOnAPristineSteadyRun) {
  // The acceptance oracle: a B_8 run at load 0.5 (well below saturation)
  // must satisfy L ≈ λW over its steady window.
  SweepPoint p = probe_point(128);
  p.cycles = 6000;
  const std::vector<SweepPoint> points = {p};
  const std::vector<SweepOutcome> out = saturation_sweep(points, 0);
  ASSERT_FALSE(out[0].timeseries.empty());
  const LittlesLawCheck check = littles_law_check(out[0].timeseries);
  ASSERT_TRUE(check.applicable);
  EXPECT_TRUE(check.pass) << "L=" << check.l << " lambda=" << check.lambda
                          << " W=" << check.w << " rel_error=" << check.rel_error;
}

TEST(EngineTelemetryTest, ChannelLayoutMatchesTheDocumentedScheme) {
  const std::vector<SweepPoint> points = {probe_point(32)};
  const std::vector<SweepOutcome> out = saturation_sweep(points, 1);
  const TimeSeries& ts = out[0].timeseries;
  ASSERT_FALSE(ts.empty());
  // stage0..stage{n-1} first, then the aggregate channels, all resolvable.
  for (int s = 0; s < points[0].n; ++s) {
    EXPECT_EQ(ts.channel_index("stage" + std::to_string(s)), static_cast<std::size_t>(s));
  }
  EXPECT_NE(ts.channel_index(kChannelInFlight), TimeSeries::npos);
  EXPECT_NE(ts.channel_index(kChannelInjected), TimeSeries::npos);
  EXPECT_NE(ts.channel_index(kChannelDelivered), TimeSeries::npos);
  EXPECT_NE(ts.channel_index(kChannelDropped), TimeSeries::npos);
  EXPECT_NE(ts.channel_index(kChannelLatencySum), TimeSeries::npos);
  EXPECT_NE(ts.channel_index(kChannelArenaFill), TimeSeries::npos);
  // Cumulative channels are monotone; arena fill stays a fraction.
  const std::size_t delivered = ts.channel_index(kChannelDelivered);
  const std::size_t fill = ts.channel_index(kChannelArenaFill);
  for (std::size_t i = 1; i < ts.num_samples(); ++i) {
    EXPECT_GE(ts.value(i, delivered), ts.value(i - 1, delivered));
  }
  for (std::size_t i = 0; i < ts.num_samples(); ++i) {
    EXPECT_GE(ts.value(i, fill), 0.0);
    EXPECT_LE(ts.value(i, fill), 1.0);
  }
}
#endif  // BFLY_OBS_ENABLED

}  // namespace
}  // namespace bfly::obs
