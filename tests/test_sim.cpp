// bfly::sim: batched saturation sweeps on the shared pool.
//
// The load-bearing contract: a sweep is *only* a scheduler.  Its outcomes
// must equal calling the engines point by point, bit for bit, for any pool
// size — the sweep buys wall clock, never different numbers.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "fault/fault_routing.hpp"
#include "fault/fault_set.hpp"
#include "routing/routing.hpp"
#include "sim/degradation.hpp"
#include "sim/sweep.hpp"
#include "util/check.hpp"

namespace bfly {
namespace {

void expect_point_eq(const SaturationPoint& a, const SaturationPoint& b) {
  EXPECT_DOUBLE_EQ(a.offered_load, b.offered_load);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_DOUBLE_EQ(a.per_node_injection, b.per_node_injection);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.dropped_queue_full, b.dropped_queue_full);
}

void expect_tally_eq(const FaultTally& a, const FaultTally& b) {
  EXPECT_EQ(a.delivered, b.delivered);
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    EXPECT_EQ(a.dropped[r], b.dropped[r]) << "drop reason " << r;
  }
  EXPECT_EQ(a.misroutes, b.misroutes);
  EXPECT_EQ(a.wraps, b.wraps);
}

/// A mixed batch: pristine points across loads/seeds plus faulty points
/// (bounded and unbounded queues) against two fault sets.
std::vector<SweepPoint> mixed_points(const FaultSet& light, const FaultSet& heavy) {
  std::vector<SweepPoint> pts;
  for (const u64 seed : {u64{3}, u64{9}, u64{2026}}) {
    for (const double load : {0.3, 0.8}) {
      SweepPoint p;
      p.n = 5;
      p.offered_load = load;
      p.cycles = 600;
      p.seed = seed;
      p.warmup_cycles = 100;
      pts.push_back(p);
    }
  }
  for (const FaultSet* fs : {&light, &heavy}) {
    SweepPoint p;
    p.n = 5;
    p.offered_load = 0.6;
    p.cycles = 600;
    p.seed = 11;
    p.warmup_cycles = 100;
    p.faults = fs;
    pts.push_back(p);
    p.queue_capacity = 3;
    pts.push_back(p);
  }
  return pts;
}

TEST(Sweep, MatchesPointwiseEngineCalls) {
  const FaultSet light = FaultSet::random_links(5, 0.01, 77);
  const FaultSet heavy = FaultSet::random_links(5, 0.08, 78);
  const std::vector<SweepPoint> pts = mixed_points(light, heavy);
  const std::vector<SweepOutcome> out = saturation_sweep(pts);
  ASSERT_EQ(out.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const SweepPoint& p = pts[i];
    SCOPED_TRACE(i);
    if (p.faults == nullptr) {
      const SaturationPoint direct = simulate_saturation(
          p.n, p.offered_load, p.cycles, p.seed, p.warmup_cycles, p.queue_capacity);
      expect_point_eq(out[i].point, direct);
      expect_tally_eq(out[i].tally, FaultTally{});
    } else {
      const FaultSaturationPoint direct = simulate_saturation_faulty(
          p.n, p.offered_load, p.cycles, p.seed, *p.faults, p.routing, p.warmup_cycles,
          p.queue_capacity);
      expect_point_eq(out[i].point, direct.point);
      expect_tally_eq(out[i].tally, direct.tally);
    }
  }
}

TEST(Sweep, PoolSizeInvariant) {
  const FaultSet light = FaultSet::random_links(5, 0.01, 77);
  const FaultSet heavy = FaultSet::random_links(5, 0.08, 78);
  const std::vector<SweepPoint> pts = mixed_points(light, heavy);
  const std::vector<SweepOutcome> one = saturation_sweep(pts, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    const std::vector<SweepOutcome> other = saturation_sweep(pts, threads);
    ASSERT_EQ(other.size(), one.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads << " point=" << i);
      expect_point_eq(other[i].point, one[i].point);
      expect_tally_eq(other[i].tally, one[i].tally);
    }
  }
}

TEST(Sweep, EmptyBatchIsANoOp) {
  EXPECT_TRUE(saturation_sweep({}).empty());
}

TEST(Sweep, ValidationRejectsMalformedPoints) {
  // Each rejection rule fires with a message naming the offending index, and
  // the batch is rejected before any engine runs.
  const auto expect_rejected = [](SweepPoint p, const char* what) {
    SCOPED_TRACE(what);
    std::vector<SweepPoint> pts(1, p);
    EXPECT_THROW(saturation_sweep(pts), InvalidArgument);
    EXPECT_THROW(validate_sweep_point(p, 0), InvalidArgument);
  };
  SweepPoint good;
  good.n = 4;
  good.offered_load = 0.5;
  good.cycles = 100;
  good.seed = 1;
  EXPECT_NO_THROW(validate_sweep_point(good, 0));

  SweepPoint p = good;
  p.cycles = 0;
  expect_rejected(p, "cycles == 0");
  p = good;
  p.warmup_cycles = 100;
  expect_rejected(p, "warmup >= cycles");
  p = good;
  p.offered_load = -0.1;
  expect_rejected(p, "negative load");
  p = good;
  p.offered_load = 1.5;
  expect_rejected(p, "load > 1");
  p = good;
  p.offered_load = std::numeric_limits<double>::quiet_NaN();
  expect_rejected(p, "NaN load");
  p = good;
  p.offered_load = std::numeric_limits<double>::infinity();
  expect_rejected(p, "infinite load");
  p = good;
  p.n = 0;
  expect_rejected(p, "n == 0");
  p = good;
  p.n = 31;
  expect_rejected(p, "n > 30");
  const FaultSet wrong_dim = FaultSet::random_links(5, 0.01, 1);
  p = good;  // p.n = 4 but faults built for n = 5
  p.faults = &wrong_dim;
  expect_rejected(p, "fault dimension mismatch");
}

TEST(Sweep, ValidationMessageNamesThePointIndex) {
  SweepPoint good;
  good.n = 4;
  good.offered_load = 0.5;
  good.cycles = 100;
  SweepPoint bad = good;
  bad.cycles = 0;
  const std::vector<SweepPoint> pts = {good, good, bad};
  try {
    saturation_sweep(pts);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("sweep point 2"), std::string::npos) << e.what();
  }
}

TEST(Degradation, CurveUnchangedByBatchedSweep) {
  // degradation_curve now routes its per-rate simulations through
  // saturation_sweep; the curve must still be bitwise deterministic and its
  // sim-derived fields must equal direct engine calls.
  const std::vector<double> rates = {0.0, 0.02, 0.08};
  DegradationOptions opt;
  opt.census_packets = 20000;
  opt.sim_cycles = 500;
  opt.sim_warmup = 100;
  const std::vector<DegradationPoint> a = degradation_curve(5, rates, 2026, opt);
  const std::vector<DegradationPoint> b = degradation_curve(5, rates, 2026, opt);
  ASSERT_EQ(a.size(), rates.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sim_delivered, b[i].sim_delivered);
    EXPECT_DOUBLE_EQ(a[i].throughput, b[i].throughput);
    EXPECT_DOUBLE_EQ(a[i].avg_latency, b[i].avg_latency);

    const FaultSet faults = FaultSet::random_links(
        5, rates[i], 2026 ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    const FaultSaturationPoint direct = simulate_saturation_faulty(
        5, opt.offered_load, opt.sim_cycles, 2026, faults, opt.routing, opt.sim_warmup,
        opt.queue_capacity);
    EXPECT_EQ(a[i].sim_delivered, direct.point.delivered);
    EXPECT_DOUBLE_EQ(a[i].throughput, direct.point.throughput);
    EXPECT_DOUBLE_EQ(a[i].avg_latency, direct.point.avg_latency);
  }
}

}  // namespace
}  // namespace bfly
