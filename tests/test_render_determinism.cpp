// SVG rendering byte-determinism (the PR's reproducibility contract for
// figures): two renders of the same layout and options are byte-identical,
// independent of the process-global locale and of the thread count used to
// produce the heat data.  Without the classic-locale pinning in
// make_svg_stream a German-style numpunct would turn "3.5" into "3,5" and
// silently corrupt every coordinate in the document.
#include <gtest/gtest.h>

#include <locale>
#include <string>
#include <vector>

#include "layout/butterfly_layout.hpp"
#include "layout/render.hpp"
#include "routing/routing.hpp"
#include "topology/swap_butterfly.hpp"
#include "topology/butterfly.hpp"

namespace bfly {
namespace {

/// A numpunct that formats doubles the way a European locale would — built
/// from whole cloth so the test does not depend on which locales the OS has
/// installed.
class CommaNumpunct : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// Temporarily swaps in a hostile global locale; restores on destruction.
class ScopedGlobalLocale {
 public:
  explicit ScopedGlobalLocale(const std::locale& loc) : previous_(std::locale::global(loc)) {}
  ~ScopedGlobalLocale() { std::locale::global(previous_); }

 private:
  std::locale previous_;
};

struct HeatmapFixture {
  ButterflyLayoutPlan plan;
  Layout layout;

  explicit HeatmapFixture(int n)
      : plan(ButterflyLayoutPlan::choose_parameters(n)), layout(plan.materialize()) {}

  /// Maps a link-load census onto layout wires, min-max normalized — the same
  /// construction quickstart uses for butterfly_heatmap.svg.
  std::vector<double> heat_from_census(const LoadCensus& census) const {
    const Butterfly bf(plan.network().dimension());
    const SwapButterfly& net = plan.network();
    const u64 rows = net.rows();
    u64 min_load = census.link_loads.empty() ? 0 : census.link_loads[0];
    for (const u64 load : census.link_loads) min_load = std::min(min_load, load);
    const u64 spread = census.max_link_load - min_load;
    std::vector<double> heat(layout.wires().size(), 0.0);
    for (std::size_t wi = 0; wi < layout.wires().size(); ++wi) {
      const Wire& wire = layout.wires()[wi];
      if (!wire.from_node || !wire.to_node) continue;
      const int s = static_cast<int>(*wire.from_node / rows);
      const u64 r1 = net.rho(s, *wire.from_node % rows);
      const u64 r2 = net.rho(s + 1, *wire.to_node % rows);
      const u64 load = census.link_loads[link_index(bf, r1, s, r1 != r2)];
      heat[wi] = spread > 0
                     ? static_cast<double>(load - min_load) / static_cast<double>(spread)
                     : 0.0;
    }
    return heat;
  }

  /// Synthetic per-wire heat — cheap, deterministic, covers the full ramp.
  std::vector<double> synthetic_heat() const {
    std::vector<double> heat(layout.wires().size());
    for (std::size_t i = 0; i < heat.size(); ++i) {
      heat[i] = static_cast<double>(i % 17) / 16.0;
    }
    return heat;
  }
};

TEST(RenderDeterminism, TwoRendersAreByteIdentical) {
  const HeatmapFixture fix(4);
  const std::vector<double> heat = fix.synthetic_heat();
  std::vector<bool> dead(fix.layout.wires().size(), false);
  for (std::size_t i = 0; i < dead.size(); i += 13) dead[i] = true;

  RenderOptions options;
  options.wire_heat = &heat;
  EXPECT_EQ(render_svg(fix.layout, options), render_svg(fix.layout, options));

  options.wire_dead = &dead;  // the butterfly_heatmap_faults.svg configuration
  EXPECT_EQ(render_svg(fix.layout, options), render_svg(fix.layout, options));
}

TEST(RenderDeterminism, OutputIgnoresTheGlobalLocale) {
  const HeatmapFixture fix(4);
  const std::vector<double> heat = fix.synthetic_heat();
  RenderOptions options;
  options.wire_heat = &heat;
  const std::string reference = render_svg(fix.layout, options);

  const std::locale hostile(std::locale::classic(), new CommaNumpunct);
  const ScopedGlobalLocale guard(hostile);
  EXPECT_EQ(render_svg(fix.layout, options), reference);
  EXPECT_EQ(render_multistage_svg(4, 2,
                                  [](const std::function<void(u64, int, u64)>& emit) {
                                    emit(0, 0, 1);
                                    emit(1, 0, 3);
                                  }),
            render_multistage_svg(4, 2, [](const std::function<void(u64, int, u64)>& emit) {
              emit(0, 0, 1);
              emit(1, 0, 3);
            }));
}

TEST(RenderDeterminism, HeatInputIsThreadCountIndependentEndToEnd) {
  // The full figure pipeline: census -> heat vector -> SVG, with the census
  // run on 1 thread vs 3.  The census is documented bitwise thread-
  // independent; this pins the composed artifact to the same guarantee.
  const HeatmapFixture fix(4);
  const LoadCensus serial = measure_link_loads(4, 20'000, 99, 1, /*keep_link_loads=*/true);
  const LoadCensus parallel = measure_link_loads(4, 20'000, 99, 3, /*keep_link_loads=*/true);
  const std::vector<double> heat_a = fix.heat_from_census(serial);
  const std::vector<double> heat_b = fix.heat_from_census(parallel);
  RenderOptions options;
  options.wire_heat = &heat_a;
  const std::string svg_a = render_svg(fix.layout, options);
  options.wire_heat = &heat_b;
  EXPECT_EQ(svg_a, render_svg(fix.layout, options));
}

TEST(RenderDeterminism, SmallMultiplesAreDeterministicAndCaptioned) {
  const HeatmapFixture fix(4);
  const std::size_t wires = fix.layout.wires().size();
  std::vector<std::vector<double>> frames;
  for (int f = 0; f < 5; ++f) {
    std::vector<double> frame(wires);
    for (std::size_t i = 0; i < wires; ++i) {
      frame[i] = static_cast<double>((i + static_cast<std::size_t>(f) * 7) % 11) / 10.0;
    }
    frames.push_back(std::move(frame));
  }
  const std::vector<u64> cycles = {0, 16, 32, 48, 64};

  HeatmapFilmOptions options;
  options.columns = 2;
  const std::string film = render_svg_small_multiples(fix.layout, frames, cycles, options);
  EXPECT_EQ(film, render_svg_small_multiples(fix.layout, frames, cycles, options));
  for (const u64 c : cycles) {
    EXPECT_NE(film.find("cycle " + std::to_string(c)), std::string::npos) << c;
  }
  // One frame border per frame, and a well-formed single SVG document.
  EXPECT_EQ(film.find("<svg"), film.rfind("<svg"));
  EXPECT_NE(film.find("</svg>"), std::string::npos);

  // Captions off when no cycles are supplied.
  const std::string bare = render_svg_small_multiples(fix.layout, frames, {}, options);
  EXPECT_EQ(bare.find("cycle "), std::string::npos);
}

}  // namespace
}  // namespace bfly
