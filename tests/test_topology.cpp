#include <gtest/gtest.h>

#include <vector>

#include "topology/butterfly.hpp"
#include "topology/complete_graph.hpp"
#include "topology/generalized_hypercube.hpp"
#include "topology/hypercube.hpp"

namespace bfly {
namespace {

TEST(Butterfly, Counts) {
  for (int n = 1; n <= 8; ++n) {
    const Butterfly b(n);
    EXPECT_EQ(b.rows(), pow2(n));
    EXPECT_EQ(b.num_stages(), n + 1);
    EXPECT_EQ(b.num_nodes(), pow2(n) * static_cast<u64>(n + 1));
    EXPECT_EQ(b.num_links(), static_cast<u64>(n) * pow2(n + 1));
    const Graph g = b.graph();
    EXPECT_EQ(g.num_nodes(), b.num_nodes());
    EXPECT_EQ(g.num_edges(), b.num_links());
  }
}

TEST(Butterfly, DegreeProfile) {
  const Butterfly b(4);
  const Graph g = b.graph();
  // First and last stage: degree 2; interior stages: degree 4.
  for (u64 u = 0; u < b.rows(); ++u) {
    EXPECT_EQ(g.degree(b.node_id(u, 0)), 2u);
    EXPECT_EQ(g.degree(b.node_id(u, 4)), 2u);
    for (int s = 1; s < 4; ++s) EXPECT_EQ(g.degree(b.node_id(u, s)), 4u);
  }
}

TEST(Butterfly, CrossLinksFlipStageBit) {
  const Butterfly b(5);
  for (int s = 0; s < 5; ++s) {
    EXPECT_EQ(b.cross_target(0b10101, s), 0b10101u ^ pow2(s));
    EXPECT_EQ(b.straight_target(0b10101, s), 0b10101u);
  }
}

TEST(Butterfly, Connected) {
  EXPECT_EQ(Butterfly(3).graph().connected_components(), 1u);
  EXPECT_EQ(Butterfly(6).graph().connected_components(), 1u);
}

TEST(Butterfly, NodeIdRoundTrip) {
  const Butterfly b(3);
  for (int s = 0; s <= 3; ++s) {
    for (u64 u = 0; u < b.rows(); ++u) {
      const u64 id = b.node_id(u, s);
      EXPECT_EQ(b.row_of(id), u);
      EXPECT_EQ(b.stage_of(id), s);
    }
  }
}

TEST(Butterfly, RejectsBadDimension) {
  EXPECT_THROW(Butterfly(0), InvalidArgument);
  EXPECT_THROW(Butterfly(31), InvalidArgument);
}

TEST(Hypercube, CountsAndRegularity) {
  for (int k = 1; k <= 8; ++k) {
    const Hypercube q(k);
    const Graph g = q.graph();
    EXPECT_EQ(g.num_nodes(), pow2(k));
    EXPECT_EQ(g.num_edges(), q.num_links());
    const auto h = g.degree_histogram();
    ASSERT_EQ(h.size(), static_cast<std::size_t>(k) + 1);
    EXPECT_EQ(h[static_cast<std::size_t>(k)], pow2(k));  // k-regular
    EXPECT_EQ(g.connected_components(), 1u);
  }
}

TEST(Hypercube, NeighborsDifferInOneBit) {
  const Hypercube q(4);
  for (u64 v = 0; v < 16; ++v) {
    for (int d = 0; d < 4; ++d) {
      EXPECT_EQ(q.neighbor(v, d) ^ v, pow2(d));
    }
  }
}

TEST(CompleteGraph, CountsAndBisection) {
  const CompleteGraph k9(9);
  EXPECT_EQ(k9.num_links(), 36u);
  EXPECT_EQ(k9.bisection_width(), 20u);  // floor(81/4), paper Appendix B
  const CompleteGraph k8(8);
  EXPECT_EQ(k8.bisection_width(), 16u);  // N even: N^2/4

  const Graph g = k9.graph();
  EXPECT_EQ(g.num_edges(), 36u);
  const auto h = g.degree_histogram();
  EXPECT_EQ(h[8], 9u);  // (N-1)-regular
}

TEST(CompleteGraph, Multigraph) {
  const CompleteGraph k4(4, /*multiplicity=*/4);
  const Graph g = k4.graph();
  EXPECT_EQ(g.num_edges(), 4u * 6u);
  EXPECT_EQ(g.multiplicity(0, 3), 4u);
  EXPECT_EQ(g.degree(0), 12u);
}

TEST(GeneralizedHypercube, DigitsRoundTrip) {
  const GeneralizedHypercube ghc({4, 3, 2});
  EXPECT_EQ(ghc.num_nodes(), 24u);
  for (u64 id = 0; id < 24; ++id) {
    const auto d = ghc.digits(id);
    EXPECT_EQ(ghc.encode(d), id);
  }
}

TEST(GeneralizedHypercube, SingleDigitIsCompleteGraph) {
  const GeneralizedHypercube ghc({7});
  EXPECT_TRUE(ghc.graph().same_as(CompleteGraph(7).graph()));
}

TEST(GeneralizedHypercube, TwoDimensionalStructure) {
  // 2-D radix-r GHC: nodes adjacent iff same row or same column (as an r x r
  // grid).  This is the block-level quotient structure of Section 3.
  const u64 r = 4;
  const GeneralizedHypercube ghc({r, r});
  const Graph g = ghc.graph();
  EXPECT_EQ(g.num_nodes(), r * r);
  EXPECT_EQ(g.num_edges(), ghc.num_links());
  for (u64 a = 0; a < r * r; ++a) {
    for (u64 b = a + 1; b < r * r; ++b) {
      const bool same_row = (a / r) == (b / r);
      const bool same_col = (a % r) == (b % r);
      EXPECT_EQ(g.has_edge(a, b), same_row || same_col) << a << " " << b;
    }
  }
}

TEST(GeneralizedHypercube, DegreeIsSumOfRadixMinusOne) {
  const GeneralizedHypercube ghc({5, 3});
  const Graph g = ghc.graph();
  const auto h = g.degree_histogram();
  ASSERT_EQ(h.size(), 7u);
  EXPECT_EQ(h[6], 15u);  // (5-1) + (3-1) = 6, all nodes
}

TEST(GeneralizedHypercube, MultiplicityFour) {
  // The contracted swap-butterfly block graph has 4 parallel links per pair.
  const GeneralizedHypercube ghc({3, 3}, 4);
  const Graph g = ghc.graph();
  EXPECT_EQ(g.multiplicity(0, 1), 4u);
  EXPECT_EQ(g.multiplicity(0, 3), 4u);
  EXPECT_EQ(g.multiplicity(0, 4), 0u);  // different row and column
}

}  // namespace
}  // namespace bfly
