// Appendix B: the strictly optimal collinear layout of K_N.
#include <gtest/gtest.h>

#include "layout/collinear.hpp"
#include "topology/complete_graph.hpp"
#include "layout/legality.hpp"

namespace bfly {
namespace {

TEST(Collinear, TrackCountIsFloorNSquaredOver4) {
  EXPECT_EQ(collinear_track_count(2), 1u);
  EXPECT_EQ(collinear_track_count(3), 2u);
  EXPECT_EQ(collinear_track_count(4), 4u);
  EXPECT_EQ(collinear_track_count(8), 16u);
  EXPECT_EQ(collinear_track_count(9), 20u);  // Fig. 4: K_9 in 20 tracks
  EXPECT_EQ(collinear_track_count(16), 64u);
  EXPECT_EQ(collinear_track_count(9, 4), 80u);
}

TEST(Collinear, MatchesBisectionLowerBound) {
  // The paper: the layout is strictly optimal because floor(N^2/4) equals
  // the bisection width of K_N.
  for (u64 n = 2; n <= 40; ++n) {
    EXPECT_EQ(collinear_track_count(n), CompleteGraph(n).bisection_width()) << n;
    EXPECT_EQ(collinear_track_count(n), collinear_cut_lower_bound(n)) << n;
  }
}

TEST(Collinear, ChenAgrawalIsLarger) {
  // [6, Theorem 1] uses ~N^2/3 tracks; ours is 25% smaller asymptotically.
  EXPECT_EQ(chen_agrawal_track_count(4), 4u);
  EXPECT_EQ(chen_agrawal_track_count(8), 20u);
  EXPECT_EQ(chen_agrawal_track_count(16), 84u);
  for (int lg = 3; lg <= 10; ++lg) {
    const u64 n = pow2(lg);
    EXPECT_GT(chen_agrawal_track_count(n), collinear_track_count(n)) << n;
  }
  // Asymptotic ratio -> 3/4.
  const double ratio = static_cast<double>(collinear_track_count(1024)) /
                       static_cast<double>(chen_agrawal_track_count(1024));
  EXPECT_NEAR(ratio, 0.75, 0.01);
}

TEST(Collinear, K9UsesExactly20Tracks) {
  const CollinearLayout cl = collinear_complete_graph(9);
  EXPECT_EQ(cl.num_tracks, 20u);
  // Geometry: 20 distinct horizontal track lines above the node row.
  i64 max_y = 0;
  for (const Wire& w : cl.layout.wires()) {
    max_y = std::max(max_y, w.bbox().y1);
  }
  EXPECT_EQ(max_y, cl.node_side - 1 + 1 + 19);  // node top + topmost track
}

class CollinearLegality : public ::testing::TestWithParam<std::tuple<u64, u64, bool>> {};

TEST_P(CollinearLegality, LegalUnderBothModels) {
  const auto [n, mult, reverse] = GetParam();
  const CollinearLayout cl = collinear_complete_graph(n, {mult, reverse});
  EXPECT_EQ(cl.layout.wires().size(), mult * n * (n - 1) / 2);
  const LegalityReport thompson = check_thompson(cl.layout);
  EXPECT_TRUE(thompson.ok) << thompson.summary();
  const LegalityReport multi = check_multilayer(cl.layout);
  EXPECT_TRUE(multi.ok) << multi.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollinearLegality,
    ::testing::Values(std::make_tuple(2, 1, false), std::make_tuple(3, 1, false),
                      std::make_tuple(4, 1, false), std::make_tuple(5, 2, false),
                      std::make_tuple(8, 1, false), std::make_tuple(8, 4, false),
                      std::make_tuple(9, 1, false), std::make_tuple(9, 1, true),
                      std::make_tuple(16, 1, false), std::make_tuple(16, 2, true),
                      std::make_tuple(32, 1, false)),
    [](const ::testing::TestParamInfo<std::tuple<u64, u64, bool>>& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_m" +
             std::to_string(std::get<1>(pinfo.param)) +
             (std::get<2>(pinfo.param) ? "_rev" : "");
    });

TEST(Collinear, TrackAssignmentRespectsTypeClasses) {
  const CollinearLayout cl = collinear_complete_graph(9);
  // Type-1 links all share one track.
  const u64 t01 = cl.track_index(0, 1, 0);
  for (u64 i = 1; i + 1 < 9; ++i) {
    EXPECT_EQ(cl.track_index(i, i + 1, 0), t01);
  }
  // Type-2 links split by parity into two tracks.
  EXPECT_EQ(cl.track_index(0, 2, 0), cl.track_index(2, 4, 0));
  EXPECT_EQ(cl.track_index(1, 3, 0), cl.track_index(3, 5, 0));
  EXPECT_NE(cl.track_index(0, 2, 0), cl.track_index(1, 3, 0));
  // Long types (d > N/2) get one track per link.
  EXPECT_NE(cl.track_index(0, 7, 0), cl.track_index(1, 8, 0));
}

TEST(Collinear, ReversalReducesMaxWireLength) {
  const CollinearLayout plain = collinear_complete_graph(16);
  const CollinearLayout reversed = collinear_complete_graph(16, {1, true});
  EXPECT_LT(reversed.layout.metrics().max_wire_length, plain.layout.metrics().max_wire_length);
}

TEST(Collinear, MultiplicityScalesTracksLinearly) {
  const CollinearLayout m1 = collinear_complete_graph(8, {1, false});
  const CollinearLayout m4 = collinear_complete_graph(8, {4, false});
  EXPECT_EQ(m4.num_tracks, 4 * m1.num_tracks);
  // Four parallel wires between each pair.
  EXPECT_EQ(m4.layout.wires().size(), 4 * m1.layout.wires().size());
}

class CollinearEveryN : public ::testing::TestWithParam<u64> {};

TEST_P(CollinearEveryN, TrackOptimalAndLegal) {
  // Property sweep over every N: the constructed layout uses exactly
  // floor(N^2/4) tracks (= bisection = max cut congestion) and is legal.
  const u64 n = GetParam();
  const CollinearLayout cl = collinear_complete_graph(n);
  EXPECT_EQ(cl.num_tracks, collinear_track_count(n));
  EXPECT_EQ(cl.num_tracks, collinear_cut_lower_bound(n));
  const LegalityReport r = check_multilayer(cl.layout);
  EXPECT_TRUE(r.ok) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(AllN, CollinearEveryN, ::testing::Range<u64>(2, 37),
                         [](const ::testing::TestParamInfo<u64>& pinfo) {
                           return "N" + std::to_string(pinfo.param);
                         });

TEST(Collinear, RejectsDegenerateInputs) {
  EXPECT_THROW(collinear_complete_graph(1), InvalidArgument);
  EXPECT_THROW(collinear_complete_graph(4, {0, false}), InvalidArgument);
  EXPECT_THROW(chen_agrawal_track_count(9), InvalidArgument);
}

}  // namespace
}  // namespace bfly
