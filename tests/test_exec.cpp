// bfly::exec: the resilient sweep driver.
//
// The load-bearing contract is *bit-identity under interruption*: for every
// prefix k, killing a checkpointed run after its k-th completed point and
// resuming yields the same outcome vector, status, counts, and
// outcome-derived gauges as one uninterrupted run — for any pool size.  The
// checkpoint is a content-keyed JSONL journal whose torn tail (the worst a
// crash can leave, given append_line_durable's single-write discipline) must
// degrade to re-running a point, never to corrupt results.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/exec.hpp"
#include "fault/fault_set.hpp"
#include "obs/metrics.hpp"
#include "routing/routing.hpp"
#include "sim/sweep.hpp"
#include "util/cancel.hpp"
#include "util/fileio.hpp"

namespace bfly {
namespace {

// Exact (bitwise) equality throughout: EXPECT_EQ on doubles, not
// EXPECT_DOUBLE_EQ — the resume guarantee is bit-identity, not closeness.
void expect_outcome_eq(const SweepOutcome& a, const SweepOutcome& b) {
  EXPECT_EQ(a.point.offered_load, b.point.offered_load);
  EXPECT_EQ(a.point.throughput, b.point.throughput);
  EXPECT_EQ(a.point.avg_latency, b.point.avg_latency);
  EXPECT_EQ(a.point.per_node_injection, b.point.per_node_injection);
  EXPECT_EQ(a.point.delivered, b.point.delivered);
  EXPECT_EQ(a.point.max_queue, b.point.max_queue);
  EXPECT_EQ(a.point.dropped_queue_full, b.point.dropped_queue_full);
  EXPECT_EQ(a.tally.delivered, b.tally.delivered);
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    EXPECT_EQ(a.tally.dropped[r], b.tally.dropped[r]) << "drop reason " << r;
  }
  EXPECT_EQ(a.tally.misroutes, b.tally.misroutes);
  EXPECT_EQ(a.tally.wraps, b.tally.wraps);
  // operator== is the bit-pattern comparison (channels, cycles, stride, and
  // every sample double compared by bits) — telemetry replays exactly too.
  EXPECT_TRUE(a.timeseries == b.timeseries);
  // Same for flight traces: packet ids, hop sequences, and terminals are all
  // integers, and the replay contract is bit-identity.
  EXPECT_TRUE(a.flight == b.flight);
}

void expect_outcomes_eq(const std::vector<SweepOutcome>& a, const std::vector<SweepOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expect_outcome_eq(a[i], b[i]);
  }
}

double gauge_value(const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "no gauge named " << name;
  return -1.0;
}

u64 counter_value(const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "no counter named " << name;
  return ~u64{0};
}

/// A small mixed grid: pristine points (one with a bounded queue) plus faulty
/// points against two fault sets — the same shape the bench sweeps have.
struct TestGrid {
  FaultSet light = FaultSet::random_links(4, 0.03, 77);
  FaultSet heavy = FaultSet::random_links(4, 0.10, 78);
  std::vector<SweepPoint> points;

  TestGrid() {
    for (const double load : {0.3, 0.7, 1.0}) {
      SweepPoint p;
      p.n = 4;
      p.offered_load = load;
      p.cycles = 300;
      p.seed = 9;
      p.warmup_cycles = 50;
      points.push_back(p);
    }
    points[1].queue_capacity = 3;
    // Cycle-resolved telemetry on a pristine point: its samples are part of
    // the journaled outcome, so the kill/resume loops below also prove the
    // timeseries replays bit-for-bit.  Flight traces ride the same journal
    // (checkpoint v3), so give the point a flight budget too.
    points[2].telemetry_budget = 32;
    points[2].flight_budget = 16;
    for (const FaultSet* fs : {&light, &heavy}) {
      SweepPoint p;
      p.n = 4;
      p.offered_load = 0.6;
      p.cycles = 300;
      p.seed = 11;
      p.warmup_cycles = 50;
      p.faults = fs;
      points.push_back(p);
    }
    // ...and on a faulty point, covering the other engine's probe wiring.
    points.back().telemetry_budget = 32;
    points.back().flight_budget = 16;
  }
};

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "bfly_" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path, const std::vector<std::string>& lines,
                 const std::string& torn_tail = "") {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& l : lines) out << l << "\n";
  out << torn_tail;  // no newline: a torn final line, as a crash would leave
}

TEST(Checkpoint, SweepPointKeyIsAContentHash) {
  const TestGrid grid;
  // Equal content -> equal key; every parameter (including the fault map)
  // participates.
  SweepPoint p = grid.points[0];
  EXPECT_EQ(exec::sweep_point_key(p), exec::sweep_point_key(grid.points[0]));
  SweepPoint q = p;
  q.seed ^= 1;
  EXPECT_NE(exec::sweep_point_key(q), exec::sweep_point_key(p));
  q = p;
  q.offered_load += 1e-16;
  EXPECT_NE(exec::sweep_point_key(q), exec::sweep_point_key(p));
  q = p;
  q.queue_capacity = 7;
  EXPECT_NE(exec::sweep_point_key(q), exec::sweep_point_key(p));
  q = p;
  q.telemetry_budget = 64;  // changes what the outcome carries -> new identity
  EXPECT_NE(exec::sweep_point_key(q), exec::sweep_point_key(p));
  q = p;
  q.flight_budget = 64;  // likewise: a journaled outcome gains a flight block
  EXPECT_NE(exec::sweep_point_key(q), exec::sweep_point_key(p));
  q = p;
  q.faults = &grid.light;
  EXPECT_NE(exec::sweep_point_key(q), exec::sweep_point_key(p));
  SweepPoint r = q;
  r.faults = &grid.heavy;
  EXPECT_NE(exec::sweep_point_key(r), exec::sweep_point_key(q));
  EXPECT_EQ(exec::sweep_point_key(p).size(), 16u);
}

TEST(Checkpoint, RoundTripIsBitwise) {
  const TestGrid grid;
  const std::vector<SweepOutcome> outcomes = saturation_sweep(grid.points, 1);
  const std::string path = temp_path("ckpt_roundtrip.ckpt");
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    util::append_line_durable(
        path, exec::encode_checkpoint_line(exec::sweep_point_key(grid.points[i]), outcomes[i]));
  }
  const exec::CheckpointLoad load = exec::load_checkpoint(path);
  EXPECT_EQ(load.lines_read, grid.points.size());
  EXPECT_EQ(load.lines_skipped, 0u);
  ASSERT_EQ(load.outcomes.size(), grid.points.size());
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    SCOPED_TRACE(i);
    const auto it = load.outcomes.find(exec::sweep_point_key(grid.points[i]));
    ASSERT_NE(it, load.outcomes.end());
    expect_outcome_eq(it->second, outcomes[i]);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsAFreshCheckpoint) {
  const exec::CheckpointLoad load = exec::load_checkpoint(temp_path("ckpt_missing.ckpt"));
  EXPECT_TRUE(load.outcomes.empty());
  EXPECT_EQ(load.lines_read, 0u);
}

TEST(Checkpoint, TornAndCorruptLinesAreSkipped) {
  const TestGrid grid;
  const std::vector<SweepOutcome> outcomes = saturation_sweep(grid.points, 1);
  const std::string path = temp_path("ckpt_torn.ckpt");
  const std::string line0 =
      exec::encode_checkpoint_line(exec::sweep_point_key(grid.points[0]), outcomes[0]);
  const std::string line1 =
      exec::encode_checkpoint_line(exec::sweep_point_key(grid.points[1]), outcomes[1]);
  write_lines(path, {line0, "not json at all", line1, R"({"v": 99, "key": "00", "outcome": 0})"},
              line1.substr(0, line1.size() / 2));
  const exec::CheckpointLoad load = exec::load_checkpoint(path);
  EXPECT_EQ(load.lines_skipped, 3u);  // garbage + future version + torn tail
  ASSERT_EQ(load.outcomes.size(), 2u);
  expect_outcome_eq(load.outcomes.at(exec::sweep_point_key(grid.points[0])), outcomes[0]);
  expect_outcome_eq(load.outcomes.at(exec::sweep_point_key(grid.points[1])), outcomes[1]);
  std::remove(path.c_str());
}

TEST(Exec, CleanRunMatchesPlainSweepForAnyPoolSize) {
  const TestGrid grid;
  const std::vector<SweepOutcome> plain = saturation_sweep(grid.points, 1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE(threads);
    obs::Registry reg;
    const obs::ScopedRegistry scoped(&reg);
    exec::SweepRunOptions opt;
    opt.threads = threads;
    const exec::SweepRun run = exec::run_sweep_resumable(grid.points, opt);
    EXPECT_EQ(run.status, exec::SweepStatus::kComplete);
    EXPECT_TRUE(run.complete());
    EXPECT_EQ(run.num_completed, grid.points.size());
    EXPECT_EQ(run.num_replayed, 0u);
    EXPECT_EQ(run.num_retries, 0u);
    EXPECT_EQ(run.num_failed, 0u);
    expect_outcomes_eq(run.outcomes, plain);
    // The exec metric family exists (at zero) even on a clean run, so every
    // run report carries it.
    const obs::MetricsSnapshot snap = reg.metrics_snapshot();
    EXPECT_EQ(counter_value(snap, "exec.retries"), 0u);
    EXPECT_EQ(counter_value(snap, "exec.cancelled"), 0u);
    EXPECT_EQ(counter_value(snap, "exec.expired"), 0u);
    EXPECT_EQ(counter_value(snap, "exec.replayed"), 0u);
    EXPECT_EQ(counter_value(snap, "exec.failed"), 0u);
    EXPECT_EQ(gauge_value(snap, "exec.points_completed"),
              static_cast<double>(grid.points.size()));
    EXPECT_EQ(gauge_value(snap, "exec.points_total"), static_cast<double>(grid.points.size()));
  }
}

/// The headline guarantee, end to end: cancel a checkpointed run right after
/// its k-th point is journaled, then resume — for every k, and with a
/// different pool size on resume.  Outcomes, status, counts, and the
/// outcome-derived gauges must all match one uninterrupted run, bit for bit.
TEST(Exec, KillAfterEveryPrefixThenResumeIsBitIdentical) {
  const TestGrid grid;
  const std::size_t total = grid.points.size();

  obs::Registry baseline_reg;
  std::vector<SweepOutcome> baseline;
  {
    const obs::ScopedRegistry scoped(&baseline_reg);
    exec::SweepRunOptions opt;
    opt.threads = 1;
    baseline = exec::run_sweep_resumable(grid.points, opt).outcomes;
  }
  const obs::MetricsSnapshot base_snap = baseline_reg.metrics_snapshot();

  const std::string path = temp_path("ckpt_kill_resume.ckpt");
  for (std::size_t k = 1; k < total; ++k) {
    SCOPED_TRACE(::testing::Message() << "kill after " << k << " points");
    std::remove(path.c_str());

    // Phase 1: run serially, cancel the moment the k-th record is durable.
    CancelToken token;
    exec::SweepRunOptions kill;
    kill.threads = 1;
    kill.checkpoint_path = path;
    kill.cancel = &token;
    kill.after_checkpoint = [&](std::size_t appended) {
      if (appended == k) token.request_cancel();
    };
    const exec::SweepRun killed = exec::run_sweep_resumable(grid.points, kill);
    EXPECT_EQ(killed.status, exec::SweepStatus::kCancelled);
    EXPECT_EQ(killed.num_completed, k);
    EXPECT_EQ(read_lines(path).size(), k);

    // Phase 2: resume from the journal with a different pool size.
    obs::Registry reg;
    const obs::ScopedRegistry scoped(&reg);
    exec::SweepRunOptions resume;
    resume.threads = 3;
    resume.checkpoint_path = path;
    const exec::SweepRun resumed = exec::run_sweep_resumable(grid.points, resume);
    EXPECT_EQ(resumed.status, exec::SweepStatus::kComplete);
    EXPECT_EQ(resumed.num_completed, total);
    EXPECT_EQ(resumed.num_replayed, k);
    expect_outcomes_eq(resumed.outcomes, baseline);

    // Outcome-derived registry state matches the uninterrupted run too.
    const obs::MetricsSnapshot snap = reg.metrics_snapshot();
    for (const char* g : {"routing.max_queue", "routing.throughput", "fault.max_queue",
                          "fault.throughput", "exec.points_completed", "exec.points_total"}) {
      EXPECT_EQ(gauge_value(snap, g), gauge_value(base_snap, g)) << g;
    }
    EXPECT_EQ(counter_value(snap, "exec.replayed"), k);
  }
  std::remove(path.c_str());
}

TEST(Exec, ResumesPastATornJournalTail) {
  // A crash mid-append leaves a torn final line; the resume must replay the
  // intact prefix and re-run the rest, landing on the same results.
  const TestGrid grid;
  const std::string path = temp_path("ckpt_torn_resume.ckpt");
  exec::SweepRunOptions opt;
  opt.threads = 1;
  opt.checkpoint_path = path;
  const exec::SweepRun full = exec::run_sweep_resumable(grid.points, opt);
  ASSERT_EQ(full.status, exec::SweepStatus::kComplete);
  const std::vector<std::string> journal = read_lines(path);
  ASSERT_EQ(journal.size(), grid.points.size());

  for (std::size_t k = 0; k < journal.size(); ++k) {
    SCOPED_TRACE(::testing::Message() << "intact prefix " << k);
    const std::vector<std::string> prefix(journal.begin(),
                                          journal.begin() + static_cast<std::ptrdiff_t>(k));
    write_lines(path, prefix, journal[k].substr(0, journal[k].size() / 2));
    exec::SweepRunOptions resume;
    resume.threads = 1;
    resume.checkpoint_path = path;
    const exec::SweepRun resumed = exec::run_sweep_resumable(grid.points, resume);
    EXPECT_EQ(resumed.status, exec::SweepStatus::kComplete);
    EXPECT_EQ(resumed.num_replayed, k);
    expect_outcomes_eq(resumed.outcomes, full.outcomes);
  }
  std::remove(path.c_str());
}

TEST(Exec, CancellationDiscardsPartialFlightTracesAndResumesBitIdentical) {
  // The probe x cancellation interaction: with flight-budget points in the
  // grid, trip the token while workers are mid-sweep (after_checkpoint fires
  // on the first durable append while the other two workers are still inside
  // their engines).  The contract under test:
  //   1. A cancelled point's outcome slot is fully discarded — no partial
  //      flight traces (or telemetry) survive in the returned vector.
  //   2. The journal holds only whole, parseable records — never a torn
  //      trace — so the checkpoint loader skips nothing.
  //   3. Resuming completes the grid bit-identically (flight included).
  const TestGrid grid;
  exec::SweepRunOptions base;
  base.threads = 1;
  const std::vector<SweepOutcome> baseline = exec::run_sweep_resumable(grid.points, base).outcomes;

  const std::string path = temp_path("ckpt_flight_cancel.ckpt");
  CancelToken token;
  exec::SweepRunOptions kill;
  kill.threads = 3;
  kill.checkpoint_path = path;
  kill.cancel = &token;
  kill.after_checkpoint = [&](std::size_t appended) {
    if (appended == 1) token.request_cancel();
  };
  const exec::SweepRun killed = exec::run_sweep_resumable(grid.points, kill);
  EXPECT_EQ(killed.status, exec::SweepStatus::kCancelled);
  EXPECT_LT(killed.num_completed, grid.points.size());
  for (std::size_t i = 0; i < grid.points.size(); ++i) {
    if (killed.completed[i]) continue;
    // Discarded, not truncated: the slot carries no recorded state at all.
    EXPECT_TRUE(killed.outcomes[i].flight.empty()) << "point " << i;
    EXPECT_TRUE(killed.outcomes[i].timeseries.empty()) << "point " << i;
    EXPECT_EQ(killed.outcomes[i].point.delivered, 0u) << "point " << i;
  }
  // Every journal line is a whole record (append_line_durable's single-write
  // discipline + the post-engine cancel check): the loader skips nothing and
  // recovers exactly the completed points.
  EXPECT_EQ(read_lines(path).size(), killed.num_completed);
  const exec::CheckpointLoad load = exec::load_checkpoint(path);
  EXPECT_EQ(load.lines_skipped, 0u);
  EXPECT_EQ(load.outcomes.size(), killed.num_completed);

  exec::SweepRunOptions resume;
  resume.threads = 2;
  resume.checkpoint_path = path;
  const exec::SweepRun resumed = exec::run_sweep_resumable(grid.points, resume);
  EXPECT_EQ(resumed.status, exec::SweepStatus::kComplete);
  EXPECT_EQ(resumed.num_replayed, killed.num_completed);
  expect_outcomes_eq(resumed.outcomes, baseline);
#if BFLY_OBS_ENABLED
  // The flight-budget points really carried traces through the journal.
  EXPECT_FALSE(resumed.outcomes[2].flight.empty());
  EXPECT_FALSE(resumed.outcomes.back().flight.empty());
#endif
  std::remove(path.c_str());
}

TEST(Exec, RetryBackoffStaysWithinBaseAndCapAndIsDeterministic) {
  exec::RetryPolicy policy;
  policy.backoff_base_ms = 5.0;
  policy.backoff_factor = 2.0;
  policy.backoff_cap_ms = 80.0;
  // Every (seed, index, attempt) cell: the jittered delay never leaves
  // [base, cap], however deep the exponential schedule runs.
  for (const u64 seed : {u64{0}, u64{1}, u64{42}, u64{0xdeadbeef}}) {
    policy.jitter_seed = seed;
    for (std::size_t index = 0; index < 16; ++index) {
      for (int attempt = 1; attempt <= 12; ++attempt) {
        const double ms = exec::retry_backoff_ms(policy, index, attempt);
        EXPECT_GE(ms, policy.backoff_base_ms) << seed << "/" << index << "/" << attempt;
        EXPECT_LE(ms, policy.backoff_cap_ms) << seed << "/" << index << "/" << attempt;
      }
    }
  }
  // Deterministic per seed: replaying the same policy yields bit-identical
  // delays, and the jitter actually depends on the seed (two seeds must
  // disagree somewhere in the grid).
  policy.jitter_seed = 7;
  bool seeds_differ = false;
  for (std::size_t index = 0; index < 8; ++index) {
    for (int attempt = 1; attempt <= 6; ++attempt) {
      const double a = exec::retry_backoff_ms(policy, index, attempt);
      const double b = exec::retry_backoff_ms(policy, index, attempt);
      EXPECT_EQ(a, b);
      exec::RetryPolicy other = policy;
      other.jitter_seed = 8;
      if (exec::retry_backoff_ms(other, index, attempt) != a) seeds_differ = true;
    }
  }
  EXPECT_TRUE(seeds_differ);
  // The jitter does spread: attempts of *different* points differ (the whole
  // reason per-index jitter exists — concurrent retries must not stampede).
  EXPECT_NE(exec::retry_backoff_ms(policy, 0, 1), exec::retry_backoff_ms(policy, 1, 1));
  // A malformed policy (base above cap) is rejected loudly.
  exec::RetryPolicy bad;
  bad.backoff_base_ms = 10.0;
  bad.backoff_cap_ms = 1.0;
  EXPECT_THROW(exec::retry_backoff_ms(bad, 0, 1), InvalidArgument);
}

TEST(Exec, RetriesFlakyPointWithBackoffThenSucceeds) {
  const TestGrid grid;
  const std::vector<SweepOutcome> plain = saturation_sweep(grid.points, 1);
  obs::Registry reg;
  const obs::ScopedRegistry scoped(&reg);
  int failures_left = 2;
  exec::SweepRunOptions opt;
  opt.threads = 1;
  opt.retry.max_attempts = 3;
  opt.retry.backoff_base_ms = 0.01;  // keep the test fast; jitter still applies
  opt.before_point = [&](std::size_t index, int /*attempt*/) {
    if (index == 1 && failures_left > 0) {
      --failures_left;
      throw std::runtime_error("injected flake");
    }
  };
  const exec::SweepRun run = exec::run_sweep_resumable(grid.points, opt);
  EXPECT_EQ(run.status, exec::SweepStatus::kComplete);
  EXPECT_EQ(run.num_retries, 2u);
  EXPECT_EQ(run.num_failed, 0u);
  EXPECT_EQ(run.first_error, "injected flake");
  expect_outcomes_eq(run.outcomes, plain);
  EXPECT_EQ(counter_value(reg.metrics_snapshot(), "exec.retries"), 2u);
}

TEST(Exec, ExhaustedRetriesDegradeTheRunToPartial) {
  const TestGrid grid;
  const std::vector<SweepOutcome> plain = saturation_sweep(grid.points, 1);
  obs::Registry reg;
  const obs::ScopedRegistry scoped(&reg);
  exec::SweepRunOptions opt;
  opt.threads = 1;
  opt.retry.max_attempts = 2;
  opt.retry.backoff_base_ms = 0.01;
  opt.before_point = [](std::size_t index, int /*attempt*/) {
    if (index == 0) throw std::runtime_error("permanently broken");
  };
  const exec::SweepRun run = exec::run_sweep_resumable(grid.points, opt);
  EXPECT_EQ(run.status, exec::SweepStatus::kPartial);
  EXPECT_FALSE(run.complete());
  EXPECT_EQ(run.num_failed, 1u);
  EXPECT_EQ(run.num_retries, 1u);
  EXPECT_EQ(run.num_completed, grid.points.size() - 1);
  EXPECT_EQ(run.completed[0], 0);
  EXPECT_EQ(run.first_error, "permanently broken");
  // Every other point still finished, with the usual bit-exact results.
  for (std::size_t i = 1; i < grid.points.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(run.completed[i], 1);
    expect_outcome_eq(run.outcomes[i], plain[i]);
  }
  const obs::MetricsSnapshot snap = reg.metrics_snapshot();
  EXPECT_EQ(counter_value(snap, "exec.failed"), 1u);
  EXPECT_EQ(gauge_value(snap, "exec.points_completed"),
            static_cast<double>(grid.points.size() - 1));
}

TEST(Exec, CancellationStopsALongSweepWithinTheBound) {
  // Four points that would each take minutes uncancelled.  Cancel ~50 ms in;
  // the engines poll every kCancelPollCycles cycles, so the run must return
  // within one poll batch per worker — asserted with a very generous ceiling
  // so TSan/ASan builds on a loaded single-core machine still pass.
  std::vector<SweepPoint> pts;
  for (const double load : {0.4, 0.6, 0.8, 1.0}) {
    SweepPoint p;
    p.n = 8;
    p.offered_load = load;
    p.cycles = 50'000'000;
    p.seed = 5;
    pts.push_back(p);
  }
  obs::Registry reg;
  const obs::ScopedRegistry scoped(&reg);
  CancelToken token;
  exec::SweepRunOptions opt;
  opt.threads = 2;
  opt.cancel = &token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.request_cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  const exec::SweepRun run = exec::run_sweep_resumable(pts, opt);
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  canceller.join();
  EXPECT_EQ(run.status, exec::SweepStatus::kCancelled);
  EXPECT_LT(run.num_completed, pts.size());
  EXPECT_LT(elapsed, 60.0);  // generous: an uncancelled run would take far longer
  const obs::MetricsSnapshot snap = reg.metrics_snapshot();
  EXPECT_EQ(counter_value(snap, "exec.cancelled"),
            static_cast<u64>(pts.size()) - run.num_completed);
  EXPECT_EQ(counter_value(snap, "exec.expired"), 0u);
}

TEST(Exec, DeadlineExpiryIsAccountedAsExpired) {
  std::vector<SweepPoint> pts;
  for (const double load : {0.5, 0.9}) {
    SweepPoint p;
    p.n = 8;
    p.offered_load = load;
    p.cycles = 50'000'000;
    p.seed = 6;
    pts.push_back(p);
  }
  obs::Registry reg;
  const obs::ScopedRegistry scoped(&reg);
  exec::SweepRunOptions opt;
  opt.threads = 1;
  opt.deadline_seconds = 0.05;
  const auto t0 = std::chrono::steady_clock::now();
  const exec::SweepRun run = exec::run_sweep_resumable(pts, opt);
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(run.status, exec::SweepStatus::kCancelled);
  EXPECT_LT(elapsed, 60.0);
  const obs::MetricsSnapshot snap = reg.metrics_snapshot();
  EXPECT_EQ(counter_value(snap, "exec.expired"),
            static_cast<u64>(pts.size()) - run.num_completed);
  EXPECT_EQ(counter_value(snap, "exec.cancelled"), 0u);
}

TEST(Exec, RejectsMalformedGridsAndOptions) {
  TestGrid grid;
  exec::SweepRunOptions opt;
  opt.retry.max_attempts = 0;
  EXPECT_THROW(exec::run_sweep_resumable(grid.points, opt), InvalidArgument);
  opt = {};
  opt.deadline_seconds = -1.0;
  EXPECT_THROW(exec::run_sweep_resumable(grid.points, opt), InvalidArgument);
  opt = {};
  grid.points[2].cycles = 0;
  EXPECT_THROW(exec::run_sweep_resumable(grid.points, opt), InvalidArgument);
}

TEST(Routing, UncancelledTokenDoesNotPerturbTheEngines) {
  // Threading a live-but-never-tripped token through the engines must not
  // change a single bit of the result.
  CancelToken token;
  const SaturationPoint with_token = simulate_saturation(5, 0.7, 400, 3, 50, 0, &token);
  const SaturationPoint without = simulate_saturation(5, 0.7, 400, 3, 50, 0, nullptr);
  EXPECT_EQ(with_token.throughput, without.throughput);
  EXPECT_EQ(with_token.avg_latency, without.avg_latency);
  EXPECT_EQ(with_token.delivered, without.delivered);
  EXPECT_EQ(with_token.max_queue, without.max_queue);
}

TEST(Routing, CancelledEngineReturnsAPartialMeasurement) {
  // A pre-cancelled token stops the engine at its first poll (cycle 0): no
  // cycles simulated, zero throughput, and no crash or division by zero.
  CancelToken token;
  token.request_cancel();
  const SaturationPoint p = simulate_saturation(5, 0.7, 400, 3, 50, 0, &token);
  EXPECT_EQ(p.delivered, 0u);
  EXPECT_EQ(p.throughput, 0.0);
}

}  // namespace
}  // namespace bfly
