#include <gtest/gtest.h>

#include <vector>

#include "topology/graph.hpp"

namespace bfly {
namespace {

Graph triangle() {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  return g;
}

TEST(Graph, BasicCounts) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Graph, NeighborsSortedWithMultiplicity) {
  Graph g(4);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(0, 3);  // parallel edge
  const auto nb = g.neighbors(0);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 2u);
  EXPECT_EQ(nb[1], 3u);
  EXPECT_EQ(nb[2], 3u);
  EXPECT_EQ(g.multiplicity(0, 3), 2u);
  EXPECT_EQ(g.multiplicity(3, 0), 2u);
  EXPECT_EQ(g.multiplicity(0, 2), 1u);
  EXPECT_EQ(g.multiplicity(1, 2), 0u);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Graph, SelfLoopCountsTwiceInDegree) {
  Graph g(2);
  g.add_edge(0, 0);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(Graph, EdgesCanonicalized) {
  Graph g(5);
  g.add_edge(4, 1);
  const auto e = g.edges();
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].first, 1u);
  EXPECT_EQ(e[0].second, 4u);
}

TEST(Graph, AddEdgeOutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), InvalidArgument);
}

TEST(Graph, DegreeHistogram) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  const auto h = g.degree_histogram();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[1], 3u);  // nodes 0, 2, 3
  EXPECT_EQ(h[2], 0u);
  EXPECT_EQ(h[3], 1u);  // node 1
}

TEST(Graph, ConnectedComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  // node 5 isolated
  EXPECT_EQ(g.connected_components(), 3u);
}

TEST(Graph, ContractDropsInternalEdges) {
  // Two clusters {0,1} and {2,3}; one internal edge each, two cross edges.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  const std::vector<u64> labels{0, 0, 1, 1};
  const Graph q = g.contract(labels, 2);
  EXPECT_EQ(q.num_nodes(), 2u);
  EXPECT_EQ(q.num_edges(), 2u);
  EXPECT_EQ(q.multiplicity(0, 1), 2u);
}

TEST(Graph, ContractKeepsSelfLoopsOnRequest) {
  Graph g(2);
  g.add_edge(0, 1);
  const std::vector<u64> labels{0, 0};
  EXPECT_EQ(g.contract(labels, 1).num_edges(), 0u);
  EXPECT_EQ(g.contract(labels, 1, /*keep_self_loops=*/true).num_edges(), 1u);
}

TEST(Graph, SameAsIsOrderInsensitive) {
  Graph a(3);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  Graph b(3);
  b.add_edge(2, 1);
  b.add_edge(1, 0);
  EXPECT_TRUE(a.same_as(b));
  b.add_edge(0, 2);
  EXPECT_FALSE(a.same_as(b));
}

TEST(Graph, FinalizeIsIdempotentAcrossMutation) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(g.degree(0), 1u);
  g.add_edge(0, 2);  // invalidates CSR
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.neighbors(0).size(), 2u);
}

}  // namespace
}  // namespace bfly
