// Verifies the central structural claim of Section 2.2: the swap-butterfly
// obtained from ISN(k_1, ..., k_l) is an automorphism (relabeled copy) of the
// butterfly B_{n_l}, via the explicit stage-wise row maps rho_s.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "topology/butterfly.hpp"
#include "topology/generalized_hypercube.hpp"
#include "topology/isomorphism.hpp"
#include "topology/swap_butterfly.hpp"

namespace bfly {
namespace {

TEST(Isomorphism, AcceptsIdentityOnButterfly) {
  const Graph g = Butterfly(3).graph();
  std::vector<u64> identity(g.num_nodes());
  for (u64 i = 0; i < g.num_nodes(); ++i) identity[i] = i;
  std::string why;
  EXPECT_TRUE(is_isomorphism(g, g, identity, &why)) << why;
}

TEST(Isomorphism, RejectsNonBijective) {
  const Graph g = Butterfly(2).graph();
  std::vector<u64> constant(g.num_nodes(), 0);
  std::string why;
  EXPECT_FALSE(is_isomorphism(g, g, constant, &why));
  EXPECT_NE(why.find("injective"), std::string::npos);
}

TEST(Isomorphism, RejectsWrongEdgeImage) {
  Graph a(4);
  a.add_edge(0, 1);
  a.add_edge(2, 3);
  Graph b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const std::vector<u64> identity{0, 1, 2, 3};
  EXPECT_FALSE(is_isomorphism(a, b, identity));
}

TEST(Isomorphism, RejectsSizeMismatch) {
  const Graph a = Butterfly(2).graph();
  const Graph b = Butterfly(3).graph();
  std::vector<u64> map(a.num_nodes(), 0);
  std::string why;
  EXPECT_FALSE(is_isomorphism(a, b, map, &why));
}

TEST(SwapButterfly, Fig1FourByFour) {
  // Figure 1: 4x4 ISN (k1=k2=1) transformed into a 4x4 butterfly (B_2).
  const SwapButterfly sb({1, 1});
  EXPECT_EQ(sb.dimension(), 2);
  EXPECT_EQ(sb.rows(), 4u);
  EXPECT_EQ(sb.num_stages(), 3);
  std::string why;
  EXPECT_TRUE(is_isomorphism(sb.graph(), Butterfly(2).graph(),
                             sb.isomorphism_to_butterfly(), &why))
      << why;
  // The paper's example: node (1,2) of the swap-butterfly maps to row 2.
  // With k1=k2=1, sigma_2 swaps bit 1 and bit 0, so rho_2(0b01) = 0b10.
  EXPECT_EQ(sb.rho(2, 1), 2u);
}

TEST(SwapButterfly, Fig2aEightByEight) {
  // Figure 2(a): an 8x8 butterfly (B_3) from a 3-level ISN with k_i = 1.
  const SwapButterfly sb({1, 1, 1});
  EXPECT_EQ(sb.dimension(), 3);
  EXPECT_EQ(sb.rows(), 8u);
  std::string why;
  EXPECT_TRUE(is_isomorphism(sb.graph(), Butterfly(3).graph(),
                             sb.isomorphism_to_butterfly(), &why))
      << why;
}

TEST(SwapButterfly, Fig2bSixteenBySixteen) {
  // Figure 2(b): a 16x16 butterfly (B_4) from ISN(2, B_2).
  const SwapButterfly sb({2, 2});
  EXPECT_EQ(sb.dimension(), 4);
  EXPECT_EQ(sb.rows(), 16u);
  std::string why;
  EXPECT_TRUE(is_isomorphism(sb.graph(), Butterfly(4).graph(),
                             sb.isomorphism_to_butterfly(), &why))
      << why;
}

TEST(SwapButterfly, RhoStageZeroIsIdentityAndBijective) {
  const SwapButterfly sb({3, 2, 2});
  for (u64 v = 0; v < sb.rows(); ++v) EXPECT_EQ(sb.rho(0, v), v);
  for (int s = 0; s <= sb.dimension(); ++s) {
    std::vector<bool> hit(sb.rows(), false);
    for (u64 v = 0; v < sb.rows(); ++v) {
      const u64 w = sb.rho(s, v);
      ASSERT_LT(w, sb.rows());
      EXPECT_FALSE(hit[w]);
      hit[w] = true;
    }
  }
}

TEST(SwapButterfly, FirstLevelStagesKeepRowNumbers) {
  // Paper: "a node in stage 0 ... same row number"; the first k_1 + 1 stages
  // keep their row numbers (no swap has been applied yet).
  const SwapButterfly sb({3, 3});
  for (int s = 0; s <= 3; ++s) {
    for (u64 v = 0; v < sb.rows(); ++v) EXPECT_EQ(sb.rho(s, v), v);
  }
  // Beyond the boundary rho is sigma_2.
  for (u64 v = 0; v < sb.rows(); ++v) {
    EXPECT_EQ(sb.rho(4, v), sb.isn().sigma(2, v));
  }
}

TEST(SwapButterfly, SwapTransitionsAreExactlyLevelBoundaries) {
  const SwapButterfly sb({3, 2, 2});
  for (int s = 0; s < sb.dimension(); ++s) {
    const bool expected = (s == 3) || (s == 5);  // n_1 = 3, n_2 = 5
    EXPECT_EQ(sb.is_swap_transition(s), expected) << s;
  }
}

TEST(SwapButterfly, DegreeProfileMatchesButterfly) {
  const SwapButterfly sb({2, 2, 2});
  const auto ours = sb.graph().degree_histogram();
  const auto theirs = Butterfly(6).graph().degree_histogram();
  EXPECT_EQ(ours, theirs);
}

// ---------------------------------------------------------------------------
// Parameterized sweep: every parameterization listed must transform into an
// exact copy of B_{n_l}.
// ---------------------------------------------------------------------------

class SwapButterflyIsomorphism : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(SwapButterflyIsomorphism, TransformsIntoButterfly) {
  const SwapButterfly sb(GetParam());
  const Butterfly target(sb.dimension());
  ASSERT_EQ(sb.num_nodes(), target.num_nodes());
  std::string why;
  EXPECT_TRUE(is_isomorphism(sb.graph(), target.graph(), sb.isomorphism_to_butterfly(), &why))
      << why;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, SwapButterflyIsomorphism,
    ::testing::Values(
        std::vector<int>{1, 1},           // Fig. 1
        std::vector<int>{1, 1, 1},        // Fig. 2a
        std::vector<int>{2, 2},           // Fig. 2b
        std::vector<int>{2, 1},           // unequal groups
        std::vector<int>{3, 2},           //
        std::vector<int>{3, 3},           //
        std::vector<int>{2, 2, 2},        // l = 3, n = 6
        std::vector<int>{3, 3, 3},        // the Section 3 layout shape, n = 9
        std::vector<int>{4, 3, 3},        // n = 10 (n mod 3 == 1 rule)
        std::vector<int>{4, 4, 3},        // n = 11 (n mod 3 == 2 rule)
        std::vector<int>{4, 4, 4},        // n = 12
        std::vector<int>{2, 2, 2, 2},     // l = 4
        std::vector<int>{3, 2, 2, 1},     // mixed groups, l = 4
        std::vector<int>{2, 1, 1, 1, 1},  // l = 5
        std::vector<int>{5, 4},           // two-level, larger nucleus
        std::vector<int>{6, 6}),          // n = 12 two-level
    [](const ::testing::TestParamInfo<std::vector<int>>& pinfo) {
      std::string name = "k";
      for (const int v : pinfo.param) name += "_" + std::to_string(v);
      return name;
    });

// ---------------------------------------------------------------------------
// Section 3 structural claims about the block quotient.
// ---------------------------------------------------------------------------

TEST(SwapButterfly, BlockQuotientIsGeneralizedHypercubeTimesFour) {
  // Place every 2^{k1} consecutive rows into a block; contract each block's
  // nodes (all stages).  The paper: the quotient is a 2-D radix-2^{k}
  // generalized hypercube where each pair of blocks in the same row or
  // column of the 2^{k3} x 2^{k2} grid is connected by 4 links
  // (k1 = k2 = k3 = k).
  const int k = 2;
  const SwapButterfly sb({k, k, k});
  const u64 blocks = pow2(2 * k);
  std::vector<u64> labels(sb.num_nodes());
  for (u64 id = 0; id < sb.num_nodes(); ++id) {
    labels[id] = sb.row_of(id) >> k;  // block = top k2+k3 bits of the row
  }
  const Graph quotient = sb.graph().contract(labels, blocks);
  // Block index bits: [0,k) = group-2 address (grid column), [k,2k) = group-3
  // address (grid row).  GHC digit order is least-significant first.
  const Graph expected = GeneralizedHypercube({pow2(k), pow2(k)}, 4).graph();
  EXPECT_TRUE(quotient.same_as(expected));
}

TEST(SwapButterfly, GeneralCaseBlockQuotient) {
  // k1=3, k2=2, k3=2: row-channel multiplicity 2^(2+k1-k2) = 8 and
  // column-channel multiplicity 2^(2+k1-k3) = 8.
  const SwapButterfly sb({3, 2, 2});
  const u64 blocks = pow2(4);
  std::vector<u64> labels(sb.num_nodes());
  for (u64 id = 0; id < sb.num_nodes(); ++id) labels[id] = sb.row_of(id) >> 3;
  const Graph quotient = sb.graph().contract(labels, blocks);
  for (u64 a = 0; a < blocks; ++a) {
    for (u64 b = a + 1; b < blocks; ++b) {
      const bool same_col = (a & 3u) == (b & 3u);   // group-2 digits equal
      const bool same_row = (a >> 2) == (b >> 2);   // group-3 digits equal
      const u64 expected = same_row || same_col ? 8u : 0u;
      EXPECT_EQ(quotient.multiplicity(a, b), expected) << a << "," << b;
    }
  }
}

}  // namespace
}  // namespace bfly
