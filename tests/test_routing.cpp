// Random routing: the empirical Theta(1/log R) injection bound of
// Theorem 2.1's lower-bound argument.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "routing/reference_sim.hpp"
#include "routing/routing.hpp"
#include "util/prng.hpp"

namespace bfly {
namespace {

TEST(Distance, SameRow) {
  EXPECT_EQ(butterfly_distance(4, 5, 1, 5, 3), 2);
  EXPECT_EQ(butterfly_distance(4, 5, 3, 5, 3), 0);
}

TEST(Distance, SingleBitAdjacent) {
  // Rows differing in bit 0: nodes at stages 0 and 1 are directly linked.
  EXPECT_EQ(butterfly_distance(3, 0, 0, 1, 1), 1);
  // Same rows-differ-in-bit-0 but both at stage 0: down and back.
  EXPECT_EQ(butterfly_distance(3, 0, 0, 1, 0), 2);
}

TEST(Distance, FullSweep) {
  // Opposite corners: all n bits differ; from stage 0 to stage n the walk is
  // exactly n hops.
  for (int n = 2; n <= 8; ++n) {
    EXPECT_EQ(butterfly_distance(n, 0, 0, pow2(n) - 1, n), n);
  }
}

TEST(Distance, SymmetricInEndpoints) {
  for (u64 r1 = 0; r1 < 8; ++r1) {
    for (u64 r2 = 0; r2 < 8; ++r2) {
      for (int s1 = 0; s1 <= 3; ++s1) {
        for (int s2 = 0; s2 <= 3; ++s2) {
          EXPECT_EQ(butterfly_distance(3, r1, s1, r2, s2),
                    butterfly_distance(3, r2, s2, r1, s1));
        }
      }
    }
  }
}

TEST(Distance, MatchesBfsGroundTruth) {
  // The closed-form sweep distance must equal true shortest paths on the
  // butterfly graph; verified exhaustively for n = 3 and 4.
  for (const int n : {3, 4}) {
    const Butterfly bf(n);
    const Graph g = bf.graph();
    const u64 nodes = g.num_nodes();
    for (u64 src = 0; src < nodes; ++src) {
      // BFS from src.
      std::vector<i64> dist(nodes, -1);
      std::vector<u64> queue{src};
      dist[src] = 0;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const u64 v = queue[head];
        for (const u64 w : g.neighbors(v)) {
          if (dist[w] == -1) {
            dist[w] = dist[v] + 1;
            queue.push_back(w);
          }
        }
      }
      for (u64 dst = 0; dst < nodes; ++dst) {
        const i64 formula = butterfly_distance(n, bf.row_of(src), bf.stage_of(src),
                                               bf.row_of(dst), bf.stage_of(dst));
        EXPECT_EQ(formula, dist[dst])
            << "n=" << n << " src=(" << bf.row_of(src) << "," << bf.stage_of(src) << ") dst=("
            << bf.row_of(dst) << "," << bf.stage_of(dst) << ")";
      }
    }
  }
}

TEST(Distance, AverageIsThetaLogR) {
  // Average distance between random nodes grows linearly in n (Theta(log R)).
  const double d6 = average_node_distance(6, 20000, 1);
  const double d12 = average_node_distance(12, 20000, 1);
  EXPECT_GT(d6, 0.5 * 6);
  EXPECT_LT(d6, 2.5 * 6);
  EXPECT_NEAR(d12 / d6, 2.0, 0.4);
}

TEST(LoadCensus, DeterministicAndBalanced) {
  const LoadCensus a = measure_link_loads(6, 200000, 42, 4);
  const LoadCensus b = measure_link_loads(6, 200000, 42, 4);
  EXPECT_EQ(a.max_link_load, b.max_link_load);
  EXPECT_DOUBLE_EQ(a.avg_link_load, b.avg_link_load);
  // Uniform traffic balances within a small constant.
  EXPECT_LT(a.imbalance, 1.5);
  // Each packet traverses exactly n links in the DAG.
  EXPECT_DOUBLE_EQ(a.avg_distance, 6.0);
}

TEST(LoadCensus, AverageLoadMatchesFlowConservation) {
  // packets * n traversals spread over 2 n R links: avg = packets / (2R).
  const int n = 5;
  const u64 packets = 64000;
  const LoadCensus c = measure_link_loads(n, packets, 7, 2);
  EXPECT_DOUBLE_EQ(c.avg_link_load, static_cast<double>(packets) / (2.0 * pow2(n)));
}

TEST(LoadCensus, DeterministicAcrossThreadCounts) {
  // Packet streams are seeded per fixed-size chunk, not per thread, so for a
  // fixed seed the census is bitwise identical however the chunks are split
  // across workers.  300k packets spans multiple 2^16-packet chunks, so the
  // multithreaded runs genuinely split the work.
  const u64 packets = 300000;
  const LoadCensus one = measure_link_loads(6, packets, 3, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    const LoadCensus other = measure_link_loads(6, packets, 3, threads);
    EXPECT_EQ(one.max_link_load, other.max_link_load) << threads;
    EXPECT_DOUBLE_EQ(one.avg_link_load, other.avg_link_load) << threads;
    EXPECT_DOUBLE_EQ(one.imbalance, other.imbalance) << threads;
    EXPECT_DOUBLE_EQ(one.avg_distance, other.avg_distance) << threads;
  }
}

TEST(Saturation, LowLoadDeliversEverything) {
  const SaturationPoint p = simulate_saturation(5, 0.2, 2000, 9, 200);
  EXPECT_NEAR(p.throughput, 0.2, 0.02);
  // Latency close to the n-cycle pipeline depth.
  EXPECT_LT(p.avg_latency, 10.0);
  EXPECT_LT(p.max_queue, 20u);
}

TEST(Saturation, HighLoadSaturates) {
  const SaturationPoint low = simulate_saturation(5, 0.3, 2000, 9, 200);
  const SaturationPoint high = simulate_saturation(5, 0.95, 2000, 9, 200);
  EXPECT_GT(high.avg_latency, low.avg_latency);
  // Per-node injection at saturation is Theta(1/log R): bounded by
  // 1/(n+1) and not hugely below it.
  EXPECT_LE(high.per_node_injection, 1.0 / 6.0 + 1e-9);
  EXPECT_GT(high.per_node_injection, 0.5 / 6.0);
}

TEST(Saturation, ThroughputMonotoneInOfferedLoadBelowCapacity) {
  double prev = -1.0;
  for (const double load : {0.1, 0.3, 0.5}) {
    const SaturationPoint p = simulate_saturation(4, load, 3000, 11, 300);
    EXPECT_GT(p.throughput, prev);
    prev = p.throughput;
  }
}

TEST(Saturation, RejectsBadLoad) {
  EXPECT_THROW(simulate_saturation(4, 1.5, 100, 1), InvalidArgument);
}

TEST(Validation, RejectsOutOfRangeDimension) {
  // n = 0 is degenerate and n = 31 would overflow the dense link-index space
  // (n * 2^n * 2 links) long before exhausting u64 packet counts elsewhere.
  EXPECT_THROW(measure_link_loads(0, 100, 1), InvalidArgument);
  EXPECT_THROW(measure_link_loads(31, 100, 1), InvalidArgument);
  EXPECT_THROW(simulate_saturation(0, 0.5, 100, 1), InvalidArgument);
  EXPECT_THROW(simulate_saturation(31, 0.5, 100, 1), InvalidArgument);
  EXPECT_THROW(average_node_distance(0, 100, 1), InvalidArgument);
  EXPECT_THROW(average_node_distance(31, 100, 1), InvalidArgument);
  EXPECT_THROW(average_node_distance(4, 0, 1), InvalidArgument);
}

TEST(Saturation, BoundedQueuesDropAndStayBounded) {
  const SaturationPoint bounded = simulate_saturation(5, 0.95, 800, 3, 100, /*queue_capacity=*/2);
  EXPECT_GT(bounded.dropped_queue_full, 0u);
  EXPECT_LE(bounded.max_queue, 2u);
  const SaturationPoint unbounded = simulate_saturation(5, 0.95, 800, 3, 100);
  EXPECT_EQ(unbounded.dropped_queue_full, 0u);
  // Dropping work cannot raise throughput.
  EXPECT_LE(bounded.throughput, unbounded.throughput + 1e-9);
}

TEST(Saturation, ArenaMatchesReferenceBitwise) {
  // The tentpole contract of the flat-arena engine: identical FIFO semantics,
  // RNG stream, and accumulation order as the seed deque simulator, so every
  // SaturationPoint field matches bit for bit — across seeds, loads, and both
  // unbounded and bounded-queue modes.
  for (const u64 seed : {u64{3}, u64{9}, u64{2026}}) {
    for (const double load : {0.2, 0.6, 0.95}) {
      for (const u64 capacity : {u64{0}, u64{2}, u64{8}}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " load=" << load << " capacity=" << capacity);
        const SaturationPoint ref =
            simulate_saturation_reference(5, load, 800, seed, 100, capacity);
        const SaturationPoint arena = simulate_saturation(5, load, 800, seed, 100, capacity);
        EXPECT_DOUBLE_EQ(arena.offered_load, ref.offered_load);
        EXPECT_DOUBLE_EQ(arena.throughput, ref.throughput);
        EXPECT_DOUBLE_EQ(arena.avg_latency, ref.avg_latency);
        EXPECT_DOUBLE_EQ(arena.per_node_injection, ref.per_node_injection);
        EXPECT_EQ(arena.delivered, ref.delivered);
        EXPECT_EQ(arena.max_queue, ref.max_queue);
        EXPECT_EQ(arena.dropped_queue_full, ref.dropped_queue_full);
      }
    }
  }
}

TEST(Distance, AverageMatchesSerialChunkOracle) {
  // average_node_distance draws samples in 2^16-sample chunks seeded by
  // (seed, chunk index).  Recompute the n = 6 value with a plain serial loop
  // over the same chunk scheme: the parallel version must match it exactly,
  // for every thread count.
  const int n = 6;
  const u64 samples = 150000;  // spans multiple chunks
  const u64 seed = 17;
  constexpr u64 kChunkSamples = u64{1} << 16;
  const u64 rows = pow2(n);
  i64 total = 0;
  for (u64 chunk = 0; chunk * kChunkSamples < samples; ++chunk) {
    Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)));
    const u64 end = std::min(samples, (chunk + 1) * kChunkSamples);
    for (u64 i = chunk * kChunkSamples; i < end; ++i) {
      const u64 r1 = rng.below(rows);
      const u64 r2 = rng.below(rows);
      const int s1 = static_cast<int>(rng.below(static_cast<u64>(n) + 1));
      const int s2 = static_cast<int>(rng.below(static_cast<u64>(n) + 1));
      total += butterfly_distance(n, r1, s1, r2, s2);
    }
  }
  const double expected = static_cast<double>(total) / static_cast<double>(samples);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    EXPECT_DOUBLE_EQ(average_node_distance(n, samples, seed, threads), expected)
        << "threads=" << threads;
  }
}

TEST(Validation, CongestionRejectsOutOfRangeDimension) {
  const std::vector<u64> empty_perm;
  EXPECT_THROW(permutation_congestion(0, empty_perm), InvalidArgument);
  EXPECT_THROW(permutation_congestion(31, empty_perm), InvalidArgument);
  EXPECT_THROW(bit_reversal_congestion(0), InvalidArgument);
  EXPECT_THROW(bit_reversal_congestion(31), InvalidArgument);
}

TEST(Saturation, HugeCapacityMatchesUnboundedBitwise) {
  // A bound that is never hit must not perturb the simulation at all.
  const SaturationPoint unbounded = simulate_saturation(5, 0.6, 1000, 7, 100);
  const SaturationPoint huge = simulate_saturation(5, 0.6, 1000, 7, 100, u64{1} << 40);
  EXPECT_DOUBLE_EQ(huge.throughput, unbounded.throughput);
  EXPECT_DOUBLE_EQ(huge.avg_latency, unbounded.avg_latency);
  EXPECT_EQ(huge.delivered, unbounded.delivered);
  EXPECT_EQ(huge.max_queue, unbounded.max_queue);
  EXPECT_EQ(huge.dropped_queue_full, 0u);
}

}  // namespace
}  // namespace bfly
