// Umbrella header, version, closed forms, and the renderers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/bfly.hpp"
#include "util/prng.hpp"

namespace bfly {
namespace {

TEST(Core, VersionIsSemver) {
  const std::string v = version();
  EXPECT_EQ(std::count(v.begin(), v.end(), '.'), 2);
}

TEST(Formulas, NodeCount) {
  EXPECT_DOUBLE_EQ(formulas::nodes(3), 32.0);
  EXPECT_DOUBLE_EQ(formulas::nodes(9), 5120.0);
}

TEST(Formulas, ThompsonLeadingTerms) {
  EXPECT_DOUBLE_EQ(formulas::thompson_area(9), 262144.0);
  EXPECT_DOUBLE_EQ(formulas::thompson_max_wire(9), 512.0);
}

TEST(Formulas, MultilayerReducesToThompsonAtL2) {
  for (const int n : {6, 9, 12}) {
    EXPECT_DOUBLE_EQ(formulas::multilayer_area(n, 2), formulas::thompson_area(n));
    EXPECT_DOUBLE_EQ(formulas::multilayer_max_wire(n, 2), formulas::thompson_max_wire(n));
  }
}

TEST(Formulas, OddLayerAreaUsesLSquaredMinusOne) {
  EXPECT_DOUBLE_EQ(formulas::multilayer_area(9, 3),
                   4.0 * formulas::thompson_area(9) / 8.0);
}

TEST(Formulas, VolumeScalesAsOneOverL) {
  EXPECT_DOUBLE_EQ(formulas::multilayer_volume(9, 8),
                   formulas::multilayer_volume(9, 4) / 2.0);
}

TEST(Formulas, PriorArtOrdering) {
  // slanted < knock-knee < upright two-layer; multilayer beats all for L>=3.
  EXPECT_LT(formulas::dinitz_slanted_area_constant(), formulas::knock_knee_area_constant());
  EXPECT_LT(formulas::knock_knee_area_constant(), formulas::avior_area_constant());
  EXPECT_DOUBLE_EQ(formulas::multilayer_area_constant(3),
                   formulas::dinitz_slanted_area_constant());  // L=3 ties the slanted model
  EXPECT_LT(formulas::multilayer_area_constant(4), formulas::dinitz_slanted_area_constant());
  EXPECT_DOUBLE_EQ(formulas::multilayer_area_constant(2), 1.0);
}

TEST(Render, SvgContainsNodesAndWires) {
  const CollinearLayout cl = collinear_complete_graph(5);
  const std::string svg = render_svg(cl.layout);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 5 node rects (+1 background) and 10 wires x >= 3 segments.
  EXPECT_GE(static_cast<int>(std::count(svg.begin(), svg.end(), '\n')), 5 + 30);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<line"), std::string::npos);
}

TEST(Render, AsciiHasNodesAndBothOrientations) {
  const CollinearLayout cl = collinear_complete_graph(6);
  const std::string art = render_ascii(cl.layout, 60, 20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('-'), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);
}

TEST(Render, EmptyLayout) {
  EXPECT_EQ(render_ascii(Layout{}), "(empty layout)\n");
}

TEST(Routing, BitReversalCongestionIsSqrtR) {
  // The classic lower-bound permutation: bit-fixing concentrates
  // 2^{floor((n-1)/2)} ~ sqrt(R/2) packets on a middle-stage link.
  EXPECT_EQ(bit_reversal_congestion(4), 2u);
  EXPECT_EQ(bit_reversal_congestion(6), 4u);
  EXPECT_EQ(bit_reversal_congestion(8), 8u);
  EXPECT_EQ(bit_reversal_congestion(10), 16u);
  EXPECT_EQ(bit_reversal_congestion(12), 32u);
}

TEST(Routing, RandomPermutationCongestionIsSmall) {
  // Random permutations stay near O(log R / log log R) -- far below
  // bit-reversal's sqrt(R).
  Xoshiro256 rng(5);
  const int n = 10;
  std::vector<u64> perm(pow2(n));
  for (u64 i = 0; i < perm.size(); ++i) perm[i] = i;
  for (u64 i = perm.size() - 1; i > 0; --i) std::swap(perm[i], perm[rng.below(i + 1)]);
  const u64 random_congestion = permutation_congestion(n, perm);
  EXPECT_LT(random_congestion, bit_reversal_congestion(n) / 2);
  EXPECT_GE(random_congestion, 2u);
}

TEST(Routing, IdentityPermutationHasUnitCongestion) {
  std::vector<u64> perm(pow2(6));
  for (u64 i = 0; i < perm.size(); ++i) perm[i] = i;
  EXPECT_EQ(permutation_congestion(6, perm), 1u);
}

TEST(Routing, BenesAvoidsBitReversalHotspot) {
  // The same worst-case permutation routes with congestion 1 on a Benes
  // fabric -- the architectural payoff of rearrangeability.
  const int n = 8;
  const Benes b(n);
  std::vector<u64> perm(pow2(n));
  for (u64 i = 0; i < perm.size(); ++i) perm[i] = bit_reverse(i, n);
  const auto paths = b.route_permutation(perm);
  // Node-disjoint per stage (checked in test_benes) implies link congestion 1.
  EXPECT_EQ(paths.size(), pow2(n));
  EXPECT_GT(bit_reversal_congestion(n), 1u);
}

TEST(Render, MultistageDiagramOfFig1) {
  // The Fig. 1 ISN: 4 rows x 4 stages with 2 exchange steps (8 links each)
  // and 1 swap step (4 links).
  const IndirectSwapNetwork isn({1, 1});
  const std::string svg = render_multistage_svg(
      isn.rows(), isn.num_stages(), [&](const std::function<void(u64, int, u64)>& emit) {
        for (int t = 1; t <= isn.num_steps(); ++t) {
          for (u64 u = 0; u < isn.rows(); ++u) {
            const auto out = isn.outgoing(u, t);
            if (out.is_swap) {
              emit(u, t - 1, out.swap);
            } else {
              emit(u, t - 1, out.straight);
              emit(u, t - 1, out.cross);
            }
          }
        }
      });
  // One <line> per link: 8 + 8 exchange links and 4 swap links.
  std::size_t lines = 0;
  for (std::size_t pos = svg.find("<line"); pos != std::string::npos;
       pos = svg.find("<line", pos + 1)) {
    ++lines;
  }
  EXPECT_EQ(lines, 20u);
  // One circle per node.
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 16u);
}

TEST(Hierarchical, TwoLevelSplitUsesSingleGridRow) {
  // When the split degenerates to l = 2 (no k3), the board is a single row
  // of chips and column channels vanish.
  ChipConstraints c;
  c.max_offchip_links = 512;
  c.chip_side = 40;
  const HierarchicalPlan plan = plan_hierarchical(4, c);
  if (plan.k.size() == 2) {
    EXPECT_EQ(plan.grid_rows, 1u);
    EXPECT_GT(plan.board_area(2), 0);
  }
}

TEST(Collinear, ReversalPreservesTracksAndArea) {
  for (const u64 n : {6u, 9u, 12u}) {
    const CollinearLayout plain = collinear_complete_graph(n);
    const CollinearLayout reversed = collinear_complete_graph(n, {1, true});
    EXPECT_EQ(plain.num_tracks, reversed.num_tracks);
    EXPECT_EQ(plain.layout.metrics().area, reversed.layout.metrics().area);
    EXPECT_EQ(plain.layout.metrics().num_wires, reversed.layout.metrics().num_wires);
  }
}

}  // namespace
}  // namespace bfly
