// bfly::obs: JSON round-trips, registry semantics, trace-event nesting from
// a real layout run, and the schema-v1 run report contract.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "layout/butterfly_layout.hpp"
#include "layout/collinear.hpp"
#include "layout/legality.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "routing/routing.hpp"

namespace bfly {
namespace {

// --- JSON model -------------------------------------------------------------

TEST(Json, RoundTripPreservesStructureAndOrder) {
  json::Value v = json::Value::object();
  v.set("zeta", json::Value::number(1));
  v.set("alpha", json::Value::string("a\"b\\c\n"));
  json::Value arr = json::Value::array();
  arr.push_back(json::Value::boolean(true));
  arr.push_back(json::Value());
  arr.push_back(json::Value::number(-2.5));
  v.set("list", std::move(arr));

  const std::string text = v.dump();
  // Insertion order survives serialization (diffable reports).
  EXPECT_LT(text.find("zeta"), text.find("alpha"));

  const json::Value back = json::Value::parse(text);
  EXPECT_EQ(back.at("zeta").as_u64(), 1u);
  EXPECT_EQ(back.at("alpha").as_string(), "a\"b\\c\n");
  EXPECT_TRUE(back.at("list").at(0).as_bool());
  EXPECT_TRUE(back.at("list").at(1).is_null());
  EXPECT_DOUBLE_EQ(back.at("list").at(2).as_double(), -2.5);
}

TEST(Json, IntegralDoublesPrintWithoutFraction) {
  json::Value v = json::Value::number(17714232.0);
  EXPECT_EQ(v.dump(), "17714232");
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(json::Value::parse("{\"a\": }"), InvalidArgument);
  EXPECT_THROW(json::Value::parse("[1, 2,]"), InvalidArgument);
  EXPECT_THROW(json::Value::parse("{} trailing"), InvalidArgument);
  EXPECT_THROW(json::Value::parse(""), InvalidArgument);
}

TEST(Json, ParseUnicodeEscape) {
  const json::Value v = json::Value::parse("\"a\\u0041\\u00e9\"");
  EXPECT_EQ(v.as_string(), "aA\xc3\xa9");
}

// --- registry semantics -----------------------------------------------------

TEST(Registry, HandlesAreStableAndAccumulate) {
  obs::Registry reg;
  obs::Counter* c = reg.counter("x");
  EXPECT_EQ(c, reg.counter("x"));
  c->add(3);
  reg.counter("x")->add(2);
  EXPECT_EQ(c->value(), 5u);
  reg.gauge("g")->set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g")->value(), 1.5);
}

TEST(Registry, HistogramBucketsSumToCount) {
  obs::Registry reg;
  obs::Histogram* h = reg.histogram("lat", obs::Histogram::exponential_bounds(1, 2, 4));
  // bounds 1,2,4,8 (+overflow): probe every bucket including both edges.
  for (const double v : {0.5, 1.0, 2.0, 3.0, 8.0, 9.0, 100.0}) h->observe(v);
  const std::vector<u64> counts = h->bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 1u);  // 2.0
  EXPECT_EQ(counts[2], 1u);  // 3.0 <= 4
  EXPECT_EQ(counts[3], 1u);  // 8.0
  EXPECT_EQ(counts[4], 2u);  // overflow
  u64 total = 0;
  for (const u64 n : counts) total += n;
  EXPECT_EQ(total, h->count());
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1 + 2 + 3 + 8 + 9 + 100);
}

TEST(Registry, LocalHistogramMergesExactly) {
  obs::Registry reg;
  obs::Histogram* h = reg.histogram("lh", obs::Histogram::linear_bounds(1, 1, 3));
  obs::LocalHistogram local(h);
  for (int i = 0; i < 10; ++i) local.observe(static_cast<double>(i));
  EXPECT_EQ(h->count(), 0u);  // nothing visible before flush
  local.flush();
  EXPECT_EQ(h->count(), 10u);
  EXPECT_DOUBLE_EQ(h->sum(), 45.0);
  local.flush();  // flush is idempotent once drained
  EXPECT_EQ(h->count(), 10u);
}

TEST(Registry, HelpersAreNullSafeWithoutRegistry) {
  ASSERT_EQ(obs::registry(), nullptr);
  EXPECT_EQ(obs::get_counter("nope"), nullptr);
  obs::add(obs::get_counter("nope"), 7);
  obs::set(obs::get_gauge("nope"), 1.0);
  obs::observe(obs::get_histogram("nope", obs::Histogram::linear_bounds(1, 1, 2)), 1.0);
  obs::LocalHistogram local(nullptr);
  local.observe(3.0);
  local.flush();
  { BFLY_TRACE_SCOPE("no-registry"); }
}

TEST(Registry, ScopedRegistryInstallsAndRestores) {
  ASSERT_EQ(obs::registry(), nullptr);
  obs::Registry reg;
  {
    const obs::ScopedRegistry scoped(&reg);
    EXPECT_EQ(obs::registry(), &reg);
    obs::add(obs::get_counter("seen"));
  }
  EXPECT_EQ(obs::registry(), nullptr);
  EXPECT_EQ(reg.counter("seen")->value(), 1u);
}

// --- trace events from a real layout run ------------------------------------

/// Runs the full n=12 pipeline (plan, materialize, legality, collinear) with
/// `reg` installed, so the trace stream holds real nested phases.
void run_instrumented_layout(obs::Registry& reg) {
  const obs::ScopedRegistry scoped(&reg);
  BFLY_TRACE_SCOPE("test.run");
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(12));
  const Layout layout = plan.materialize();
  const LegalityReport legal = check_multilayer(layout);
  EXPECT_TRUE(legal.ok) << legal.summary();
  collinear_complete_graph(12);
}

TEST(Trace, SpansAreStrictlyNestedPerThread) {
  obs::Registry reg;
  run_instrumented_layout(reg);

  const std::vector<obs::TraceEvent> events = reg.trace_events();
  ASSERT_FALSE(events.empty());
  // Strict nesting: per thread, every E matches the innermost open B (same
  // name) and timestamps never run backwards.
  std::map<u64, std::vector<const obs::TraceEvent*>> open;
  std::map<u64, double> last_ts;
  for (const obs::TraceEvent& ev : events) {
    auto it = last_ts.find(ev.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ev.ts_us, it->second);
    }
    last_ts[ev.tid] = ev.ts_us;
    if (ev.phase == 'B') {
      open[ev.tid].push_back(&ev);
    } else {
      ASSERT_EQ(ev.phase, 'E');
      ASSERT_FALSE(open[ev.tid].empty()) << "E without open B for " << ev.name;
      EXPECT_STREQ(open[ev.tid].back()->name, ev.name);
      open[ev.tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }

  const std::vector<obs::CompletedSpan> spans = reg.completed_spans();
  ASSERT_FALSE(spans.empty());
  std::set<std::string> names;
  for (const obs::CompletedSpan& s : spans) {
    EXPECT_GE(s.dur_us, 0.0);
    names.insert(s.name);
  }
  // The layout pipeline's phases all showed up.
  for (const char* expected :
       {"layout.plan", "layout.materialize", "layout.place_nodes", "layout.route_wires",
        "legality.multilayer", "legality.extract_segments", "collinear.layout",
        "collinear.assign_tracks"}) {
    EXPECT_TRUE(names.contains(expected)) << expected;
  }
}

TEST(Trace, ChromeTraceJsonIsStructurallyValid) {
  obs::Registry reg;
  run_instrumented_layout(reg);

  const json::Value doc = json::Value::parse(obs::chrome_trace_json(reg));
  ASSERT_TRUE(doc.contains("traceEvents"));
  const json::Value& evs = doc.at("traceEvents");
  ASSERT_GT(evs.size(), 0u);
  // Validate the Chrome trace-event contract: B/E events, monotone ts, and
  // strict LIFO pairing per (pid, tid).
  std::map<u64, std::vector<std::string>> open;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const json::Value& e = evs.at(i);
    for (const char* key : {"name", "cat", "ph", "ts", "pid", "tid"}) {
      ASSERT_TRUE(e.contains(key)) << key;
    }
    const std::string ph = e.at("ph").as_string();
    const u64 tid = e.at("tid").as_u64();
    ASSERT_TRUE(ph == "B" || ph == "E") << ph;
    if (ph == "B") {
      open[tid].push_back(e.at("name").as_string());
    } else {
      ASSERT_FALSE(open[tid].empty());
      EXPECT_EQ(open[tid].back(), e.at("name").as_string());
      open[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : open) EXPECT_TRUE(stack.empty()) << tid;
}

// --- run reports ------------------------------------------------------------

TEST(Report, SchemaAndHistogramTotalsRoundTrip) {
  obs::Registry reg;
  SaturationPoint sat;
  {
    const obs::ScopedRegistry scoped(&reg);
    sat = simulate_saturation(8, 0.6, 600, 42, 100);
  }
  ASSERT_GT(sat.delivered, 0u);

  obs::ReportOptions options;
  options.name = "test_obs";
  options.config.set("n", json::Value::number(8));
  options.artifact_stats.set("delivered", json::Value::number(static_cast<double>(sat.delivered)));

  std::ostringstream line;
  obs::write_report_line(line, reg, options);
  EXPECT_EQ(line.str().back(), '\n');
  EXPECT_EQ(line.str().find('\n'), line.str().size() - 1);  // single line
  const json::Value doc = json::Value::parse(line.str());

  // Exactly the schema-v1 top-level keys, in order.
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 11u);
  const char* expected_keys[] = {"schema_version", "name",
                                 "run_id",         "git_describe",
                                 "status",         "points_completed",
                                 "points_total",   "config",
                                 "metrics",        "spans",
                                 "artifact_stats"};
  for (std::size_t i = 0; i < 11; ++i) EXPECT_EQ(members[i].first, expected_keys[i]);
  EXPECT_EQ(doc.at("schema_version").as_u64(), 1u);
  EXPECT_EQ(doc.at("name").as_string(), "test_obs");
  EXPECT_EQ(doc.at("run_id").as_string().size(), 16u);
  EXPECT_EQ(doc.at("status").as_string(), "complete");  // the default
  EXPECT_EQ(doc.at("points_completed").as_u64(), 0u);
  EXPECT_EQ(doc.at("points_total").as_u64(), 0u);
  EXPECT_EQ(doc.at("config").at("n").as_u64(), 8u);

  // The histogram invariant: bucket counts reconstruct the delivered total
  // without trusting any separate field.
  const json::Value& hist = doc.at("metrics").at("histograms").at("routing.latency_cycles");
  ASSERT_EQ(hist.at("counts").size(), hist.at("bounds").size() + 1);
  u64 total = 0;
  for (std::size_t i = 0; i < hist.at("counts").size(); ++i) {
    total += hist.at("counts").at(i).as_u64();
  }
  EXPECT_EQ(total, hist.at("count").as_u64());
  EXPECT_EQ(total, sat.delivered);
  EXPECT_EQ(doc.at("metrics").at("counters").at("routing.delivered").as_u64(), sat.delivered);

  // Spans are aggregated per name with stable row keys.
  const json::Value& spans = doc.at("spans");
  ASSERT_GT(spans.size(), 0u);
  bool saw_sim = false;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const json::Value& row = spans.at(i);
    for (const char* key : {"name", "count", "total_us", "max_us"}) {
      ASSERT_TRUE(row.contains(key)) << key;
    }
    if (row.at("name").as_string() == "routing.simulate_saturation") {
      EXPECT_EQ(row.at("count").as_u64(), 1u);
      saw_sim = true;
    }
  }
  EXPECT_TRUE(saw_sim);

  // The pretty form parses to the same document.
  std::ostringstream pretty;
  obs::write_report_pretty(pretty, reg, options);
  const json::Value doc2 = json::Value::parse(pretty.str());
  EXPECT_EQ(doc2.at("metrics").dump(), doc.at("metrics").dump());
}

TEST(Report, RunIdsAreUnique) {
  const std::string a = obs::make_run_id();
  const std::string b = obs::make_run_id();
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace bfly
