// Grid layouts of hypercubes (the conclusion's "other networks" extension).
#include <gtest/gtest.h>

#include <map>

#include "layout/hypercube_layout.hpp"
#include "layout/legality.hpp"
#include "topology/hypercube.hpp"

namespace bfly {
namespace {

TEST(HypercubeLayout, SplitsDimensions) {
  const HypercubeLayoutPlan plan(7);
  EXPECT_EQ(plan.row_dims() + plan.col_dims(), 7);
  EXPECT_EQ(plan.grid_rows() * plan.grid_cols(), pow2(7));
}

TEST(HypercubeLayout, WiresRealizeTheHypercube) {
  const HypercubeLayoutPlan plan(6);
  std::map<std::pair<u64, u64>, u64> got;
  plan.for_each_wire([&](Wire&& w) {
    ASSERT_TRUE(w.from_node.has_value());
    ASSERT_TRUE(w.to_node.has_value());
    u64 a = *w.from_node;
    u64 b = *w.to_node;
    if (a > b) std::swap(a, b);
    ++got[{a, b}];
  });
  std::map<std::pair<u64, u64>, u64> want;
  const Graph g = Hypercube(6).graph();
  for (const auto& [a, b] : g.edges()) ++want[{a, b}];
  EXPECT_EQ(got, want);
}

class HypercubeLegality : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HypercubeLegality, LegalUnderBothModels) {
  const auto [n, L] = GetParam();
  HypercubeLayoutOptions opt;
  opt.layers = L;
  const HypercubeLayoutPlan plan(n, opt);
  const Layout layout = plan.materialize();
  const LegalityReport multi = check_multilayer(layout);
  EXPECT_TRUE(multi.ok) << multi.summary();
  if (L == 2) {
    const LegalityReport thompson = check_thompson(layout);
    EXPECT_TRUE(thompson.ok) << thompson.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HypercubeLegality,
                         ::testing::Values(std::make_tuple(2, 2), std::make_tuple(4, 2),
                                           std::make_tuple(5, 2), std::make_tuple(6, 2),
                                           std::make_tuple(8, 2), std::make_tuple(10, 2),
                                           std::make_tuple(8, 4), std::make_tuple(8, 6),
                                           std::make_tuple(9, 3), std::make_tuple(10, 8)),
                         [](const ::testing::TestParamInfo<std::tuple<int, int>>& pinfo) {
                           return "n" + std::to_string(std::get<0>(pinfo.param)) + "_L" +
                                  std::to_string(std::get<1>(pinfo.param));
                         });

TEST(HypercubeLayout, MetricsMatchGeometry) {
  const HypercubeLayoutPlan plan(8);
  const LayoutMetrics streamed = plan.metrics();
  const LayoutMetrics measured = plan.materialize().metrics();
  EXPECT_EQ(streamed.area, measured.area);
  EXPECT_EQ(streamed.max_wire_length, measured.max_wire_length);
  EXPECT_EQ(streamed.num_wires, measured.num_wires);
}

TEST(HypercubeLayout, AreaWithinConstantOfLowerBound) {
  // Thompson lower bound: (N/2)^2.  The grid layout stays within a modest
  // constant that shrinks as n grows.
  double prev = 1e30;
  for (const int n : {8, 10, 12, 14}) {
    const HypercubeLayoutPlan plan(n);
    const double ratio =
        static_cast<double>(plan.metrics().area) / HypercubeLayoutPlan::area_lower_bound(n);
    EXPECT_GT(ratio, 1.0) << n;
    EXPECT_LT(ratio, prev * 1.05) << n;  // non-increasing (mod parity wobble)
    prev = ratio;
  }
  EXPECT_LT(prev, 12.0);
}

TEST(HypercubeLayout, MultilayerShrinksArea) {
  HypercubeLayoutOptions l2;
  HypercubeLayoutOptions l8;
  l8.layers = 8;
  const double a2 = static_cast<double>(HypercubeLayoutPlan(12, l2).metrics().area);
  const double a8 = static_cast<double>(HypercubeLayoutPlan(12, l8).metrics().area);
  EXPECT_LT(a8, a2 / 2.5);
}

TEST(HypercubeLayout, RejectsBadOptions) {
  EXPECT_THROW(HypercubeLayoutPlan(1), InvalidArgument);
  HypercubeLayoutOptions tiny;
  tiny.node_side = 3;
  EXPECT_THROW(HypercubeLayoutPlan(8, tiny), InvalidArgument);
  HypercubeLayoutOptions one_layer;
  one_layer.layers = 1;
  EXPECT_THROW(HypercubeLayoutPlan(8, one_layer), InvalidArgument);
}

}  // namespace
}  // namespace bfly
