// bfly::fault live schedules: the deterministic mid-run fault/repair
// timeline, the counting liveness overlay, spare-chip failover, and the
// recovery analytics built on top.
//
// The load-bearing contracts:
//   * Determinism — an empty schedule is bitwise identical to the static
//     path, a schedule whose events all sit at cycle 0 is bitwise identical
//     to the equivalent static FaultSet, and scheduled sweep points
//     kill/resume bit-identically at every prefix across thread counts.
//   * Soundness — liveness is cause-counted, so overlapping faults repair in
//     any order without resurrecting a link another cause still holds dead.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exec/checkpoint.hpp"
#include "exec/exec.hpp"
#include "fault/fault_routing.hpp"
#include "fault/fault_schedule.hpp"
#include "packaging/hierarchical.hpp"
#include "sim/recovery.hpp"
#include "sim/sweep.hpp"
#include "util/cancel.hpp"

namespace bfly {
namespace {

// Bitwise equality on every engine output — the determinism contract is
// bit-identity, so EXPECT_EQ on doubles, not EXPECT_DOUBLE_EQ.
void expect_fsp_eq(const FaultSaturationPoint& a, const FaultSaturationPoint& b) {
  EXPECT_EQ(a.point.offered_load, b.point.offered_load);
  EXPECT_EQ(a.point.throughput, b.point.throughput);
  EXPECT_EQ(a.point.avg_latency, b.point.avg_latency);
  EXPECT_EQ(a.point.per_node_injection, b.point.per_node_injection);
  EXPECT_EQ(a.point.delivered, b.point.delivered);
  EXPECT_EQ(a.point.max_queue, b.point.max_queue);
  EXPECT_EQ(a.point.dropped_queue_full, b.point.dropped_queue_full);
  EXPECT_EQ(a.tally.delivered, b.tally.delivered);
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    EXPECT_EQ(a.tally.dropped[r], b.tally.dropped[r]) << "drop reason " << r;
  }
  EXPECT_EQ(a.tally.misroutes, b.tally.misroutes);
  EXPECT_EQ(a.tally.wraps, b.tally.wraps);
}

// --- schedule surgery --------------------------------------------------------

TEST(FaultSchedule, EventsStaySortedAndStable) {
  FaultSchedule s(4);
  s.fail_link_at(300, 1, 0, false);
  s.fail_link_at(100, 2, 1, true);
  s.repair_link_at(300, 1, 0, false);  // same cycle: applies after the fail
  s.fail_node_at(200, 7, 2);
  ASSERT_EQ(s.events().size(), 4u);
  EXPECT_EQ(s.events()[0].cycle, 100u);
  EXPECT_EQ(s.events()[1].cycle, 200u);
  EXPECT_EQ(s.events()[2].cycle, 300u);
  EXPECT_EQ(s.events()[2].action, FaultAction::kFail);
  EXPECT_EQ(s.events()[3].cycle, 300u);
  EXPECT_EQ(s.events()[3].action, FaultAction::kRepair);
  EXPECT_EQ(s.last_event_cycle(), 300u);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(FaultSchedule(4).empty());
}

TEST(FaultSchedule, RejectsOutOfRangeTargets) {
  EXPECT_THROW(FaultSchedule(0), InvalidArgument);
  EXPECT_THROW(FaultSchedule(31), InvalidArgument);
  FaultSchedule s(3);
  EXPECT_THROW(s.fail_link_at(0, 8, 0, false), InvalidArgument);
  EXPECT_THROW(s.fail_link_at(0, 0, 3, false), InvalidArgument);
  EXPECT_THROW(s.repair_node_at(0, 0, 4), InvalidArgument);
  // Chip events need a plan; the plan must match the dimension.
  EXPECT_THROW(s.fail_chip_at(0, 0), InvalidArgument);
  EXPECT_THROW(s.attach_plan({2, 2}, 1), InvalidArgument);  // dimension 4 != 3
  s.attach_plan({2, 1}, 1);
  EXPECT_EQ(s.num_chips(), 4u);
  EXPECT_THROW(s.fail_chip_at(0, 4), InvalidArgument);
  EXPECT_THROW(s.attach_plan({2, 1}, 1), InvalidArgument);  // already attached
  s.fail_chip_at(10, 3);
  EXPECT_EQ(s.events().size(), 1u);
}

TEST(FaultSchedule, RandomLinksIsDeterministicPerTuple) {
  const FaultSchedule a = FaultSchedule::random_links(4, 500, 50, 2000, 7);
  const FaultSchedule b = FaultSchedule::random_links(4, 500, 50, 2000, 7);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_GT(a.events().size(), 0u);
  const FaultSchedule c = FaultSchedule::random_links(4, 500, 50, 2000, 8);
  EXPECT_FALSE(a == c);
  // Per link the timeline alternates fail, repair, fail, ... starting alive.
  const FaultSchedule dense = FaultSchedule::random_links(3, 100, 10, 500, 1);
  std::map<u64, bool> expect_fail;
  u64 previous_cycle = 0;
  for (const FaultEvent& e : dense.events()) {
    EXPECT_GE(e.cycle, previous_cycle);  // sorted timeline
    previous_cycle = e.cycle;
    EXPECT_EQ(e.target, FaultTarget::kLink);
    const u64 id = (static_cast<u64>(e.stage) * 8 + e.row) * 2 + (e.cross ? 1 : 0);
    const auto [it, fresh] = expect_fail.emplace(id, true);
    EXPECT_EQ(e.action, it->second ? FaultAction::kFail : FaultAction::kRepair) << id;
    it->second = !it->second;
  }
  EXPECT_THROW(FaultSchedule::random_links(4, 1, 10, 100, 1), InvalidArgument);
  EXPECT_THROW(FaultSchedule::random_links(4, 10, 0, 100, 1), InvalidArgument);
  EXPECT_THROW(FaultSchedule::random_links(4, 10, 10, 0, 1), InvalidArgument);
}

// --- JSON --------------------------------------------------------------------

FaultSchedule populated_schedule() {
  FaultSchedule s(4);
  s.attach_plan({2, 2}, 2);
  s.set_failover({/*spare_chips=*/2, /*detection_latency=*/64});
  s.set_link_death_policy(LinkDeathPolicy::kDeflect);
  s.fail_link_at(10, 3, 1, true);
  s.fail_node_at(20, 5, 2);
  s.fail_chip_at(30, 1);
  s.repair_node_at(40, 5, 2);
  s.repair_chip_at(50, 1);
  return s;
}

TEST(FaultScheduleJson, RoundTripIsBitwiseExact) {
  const FaultSchedule s = populated_schedule();
  const FaultSchedule back = FaultSchedule::from_json(s.to_json());
  EXPECT_TRUE(s == back);
  EXPECT_EQ(s.to_json().dump(), back.to_json().dump());
  EXPECT_EQ(s.content_hash(), back.content_hash());
  EXPECT_EQ(back.failover().spare_chips, 2u);
  EXPECT_EQ(back.failover().detection_latency, 64u);
  EXPECT_EQ(back.link_death_policy(), LinkDeathPolicy::kDeflect);
  ASSERT_TRUE(back.has_plan());
  EXPECT_EQ(back.plan_rows_log2(), 2);
  // The random generator's output round-trips too.
  const FaultSchedule r = FaultSchedule::random_links(5, 300, 40, 1500, 3);
  EXPECT_TRUE(FaultSchedule::from_json(r.to_json()) == r);
}

/// `good` with its events array replaced by one event parsed from `event`.
json::Value with_event(const json::Value& good, const char* event) {
  json::Value bad = good;
  json::Value events = json::Value::array();
  events.push_back(json::Value::parse(event));
  bad.set("events", std::move(events));
  return bad;
}

TEST(FaultScheduleJson, RejectsMalformedDocuments) {
  const json::Value good = populated_schedule().to_json();
  EXPECT_NO_THROW(FaultSchedule::from_json(good));

  json::Value bad = good;
  bad.set("v", json::Value::number(2));
  EXPECT_THROW(FaultSchedule::from_json(bad), InvalidArgument);

  bad = good;
  bad.set("n", json::Value::number(31));
  EXPECT_THROW(FaultSchedule::from_json(bad), InvalidArgument);

  bad = good;
  bad.set("link_death_policy", json::Value::number(2));
  EXPECT_THROW(FaultSchedule::from_json(bad), InvalidArgument);

  bad = good;
  json::Value plan = json::Value::object();
  plan.set("k", json::Value::parse("[2, 3]"));  // dimension 5 != 4
  plan.set("rows_log2", json::Value::number(1));
  bad.set("plan", std::move(plan));
  EXPECT_THROW(FaultSchedule::from_json(bad), InvalidArgument);

  // Event shape and code violations.
  EXPECT_THROW(FaultSchedule::from_json(with_event(good, "[1, 0, 0, 0, 0, 0]")),
               InvalidArgument);  // arity 6
  EXPECT_THROW(FaultSchedule::from_json(with_event(good, "[1, 2, 0, 0, 0, 0, 0]")),
               InvalidArgument);  // bad action
  EXPECT_THROW(FaultSchedule::from_json(with_event(good, "[1, 0, 3, 0, 0, 0, 0]")),
               InvalidArgument);  // bad target
  EXPECT_THROW(FaultSchedule::from_json(with_event(good, "[1, 0, 0, 16, 0, 0, 0]")),
               InvalidArgument);  // row out of range
  EXPECT_THROW(FaultSchedule::from_json(with_event(good, "[1, 0, 0, 0, 4, 0, 0]")),
               InvalidArgument);  // link stage out of range
  EXPECT_THROW(FaultSchedule::from_json(with_event(good, "[1, 0, 0, 0, 0, 2, 0]")),
               InvalidArgument);  // cross flag must be 0/1
  EXPECT_THROW(FaultSchedule::from_json(with_event(good, "[1, 0, 2, 0, 0, 0, 4]")),
               InvalidArgument);  // chip out of range for the plan

  EXPECT_THROW(FaultSchedule::from_json(json::Value::parse("[]")), InvalidArgument);
}

// --- LiveFaultState ----------------------------------------------------------

TEST(LiveFaultState, StartsFromTheBaseFaultSet) {
  FaultSet base(4);
  base.fail_link(2, 1, false);
  base.fail_node(9, 2);
  const FaultSchedule empty(4);
  const LiveFaultState live(base, empty);
  EXPECT_EQ(live.num_dead_links(), base.num_dead_links());
  EXPECT_EQ(live.num_dead_nodes(), base.num_dead_nodes());
  for (u64 link = 0; link < base.num_links(); ++link) {
    ASSERT_EQ(live.link_alive_index(link), base.link_alive_index(link)) << link;
  }
  EXPECT_FALSE(live.node_alive(9, 2));
  EXPECT_THROW(LiveFaultState(FaultSet(3), empty), InvalidArgument);
}

TEST(LiveFaultState, CountsOverlappingCausesAndRepairsSoundly) {
  // A node fault and an explicit link fault both hold (0, 1, straight) dead.
  FaultSchedule s(3);
  s.fail_node_at(10, 0, 1);
  s.fail_link_at(10, 0, 1, false);
  s.repair_node_at(20, 0, 1);  // link still held by the explicit fault
  s.repair_link_at(30, 0, 1, false);
  s.repair_link_at(40, 0, 1, false);  // surplus repair: a no-op
  const FaultSet none(3);
  LiveFaultState live(none, s);
  for (u64 cycle = 0; cycle <= 45; ++cycle) live.advance_to(cycle, nullptr);
  EXPECT_TRUE(live.link_alive(0, 1, false));
  EXPECT_TRUE(live.node_alive(0, 1));
  EXPECT_EQ(live.num_dead_links(), 0u);
  EXPECT_EQ(live.num_dead_nodes(), 0u);
  EXPECT_EQ(live.stats().fail_events, 2u);
  EXPECT_EQ(live.stats().repair_events, 3u);

  // Same timeline, repairs in the opposite order: the link must stay dead
  // between the link repair and the node repair.
  FaultSchedule t(3);
  t.fail_node_at(10, 0, 1);
  t.fail_link_at(10, 0, 1, false);
  t.repair_link_at(20, 0, 1, false);
  t.repair_node_at(30, 0, 1);
  LiveFaultState live2(none, t);
  for (u64 cycle = 0; cycle <= 25; ++cycle) live2.advance_to(cycle, nullptr);
  EXPECT_FALSE(live2.link_alive(0, 1, false));  // node cause still standing
  live2.advance_to(30, nullptr);
  EXPECT_TRUE(live2.link_alive(0, 1, false));
}

TEST(LiveFaultState, ReportsNewlyDeadLinksOnce) {
  FaultSchedule s(3);
  s.fail_link_at(5, 1, 0, false);
  s.fail_link_at(5, 1, 0, true);
  s.fail_link_at(5, 1, 0, true);  // duplicate cause, one transition
  const FaultSet none(3);
  LiveFaultState live(none, s);
  std::vector<u64> newly;
  live.advance_to(4, &newly);
  EXPECT_TRUE(newly.empty());
  live.advance_to(5, &newly);
  ASSERT_EQ(newly.size(), 2u);
  EXPECT_LT(newly[0], newly[1]);  // ascending dense indices
  live.advance_to(6, &newly);
  EXPECT_TRUE(newly.empty());  // already dead: no new transition
}

TEST(LiveFaultState, SpareChipFailoverRemapsAfterDetectionLatency) {
  FaultSchedule s(4);
  s.attach_plan({2, 2}, 2);  // 4 chips of 4 rows
  s.set_failover({/*spare_chips=*/1, /*detection_latency=*/50});
  s.fail_chip_at(100, 1);
  s.fail_chip_at(300, 2);  // no spare left: stays dead
  const FaultSet none(4);
  LiveFaultState live(none, s);
  live.advance_to(99, nullptr);
  EXPECT_EQ(live.num_dead_nodes(), 0u);
  live.advance_to(100, nullptr);
  EXPECT_GT(live.num_dead_nodes(), 0u);
  EXPECT_EQ(live.stats().spares_used, 1u);
  EXPECT_EQ(live.stats().failovers, 0u);
  live.advance_to(149, nullptr);
  EXPECT_GT(live.num_dead_nodes(), 0u);  // detection latency not yet elapsed
  live.advance_to(150, nullptr);
  EXPECT_EQ(live.num_dead_nodes(), 0u);  // spare wired in
  EXPECT_EQ(live.num_dead_links(), 0u);
  EXPECT_EQ(live.stats().failovers, 1u);
  for (u64 cycle = 151; cycle <= 500; ++cycle) live.advance_to(cycle, nullptr);
  EXPECT_GT(live.num_dead_nodes(), 0u);  // chip 2 has no spare
  EXPECT_EQ(live.stats().spares_used, 1u);
  EXPECT_EQ(live.stats().failovers, 1u);
}

// --- engine equivalence ------------------------------------------------------

TEST(LiveEngine, EmptyScheduleMatchesStaticPathBitwise) {
  const int n = 5;
  const FaultSet faults = FaultSet::random_links(n, 0.05, 13);
  const FaultSchedule empty(n);
  const FaultSaturationPoint live =
      simulate_saturation_faulty(n, 0.5, 1200, 9, faults, {}, 200, 0, nullptr, nullptr,
                                 nullptr, nullptr, &empty);
  const FaultSaturationPoint fixed =
      simulate_saturation_faulty(n, 0.5, 1200, 9, faults, {}, 200);
  expect_fsp_eq(live, fixed);
  EXPECT_EQ(live.live.fail_events, 0u);
  EXPECT_EQ(live.live.links_killed, 0u);
}

TEST(LiveEngine, CycleZeroScheduleMatchesEquivalentStaticFaultSetBitwise) {
  const int n = 5;
  // The same random fault map, expressed once as a static FaultSet and once
  // as a schedule of cycle-0 fail events over a pristine base.
  const FaultSet statics = FaultSet::random_links(n, 0.06, 21);
  FaultSchedule schedule(n);
  for (u64 link = 0; link < statics.num_links(); ++link) {
    if (statics.link_alive_index(link)) continue;
    const u64 rows = pow2(n);
    const u64 row = (link / 2) % rows;
    const int stage = static_cast<int>(link / (2 * rows));
    schedule.fail_link_at(0, row, stage, (link & 1) != 0);
  }
  const FaultSet none(n);
  for (const u64 capacity : {u64{0}, u64{3}}) {
    SCOPED_TRACE(capacity);
    const FaultSaturationPoint live = simulate_saturation_faulty(
        n, 0.6, 1000, 17, none, {}, 100, capacity, nullptr, nullptr, nullptr, nullptr,
        &schedule);
    const FaultSaturationPoint fixed =
        simulate_saturation_faulty(n, 0.6, 1000, 17, statics, {}, 100, capacity);
    expect_fsp_eq(live, fixed);
    // Events at cycle 0 precede all routing, so nothing was in flight to kill.
    EXPECT_EQ(live.tally.dropped[drop_index(DropReason::kKilledByFault)], 0u);
    EXPECT_EQ(live.live.links_killed, statics.num_dead_links());
  }
}

TEST(LiveEngine, MidRunFaultKillsOrDeflectsInFlightPackets) {
  const int n = 5;
  const FaultSet none(n);
  // Kill every stage-2 link at cycle 500 of a busy run: under kKillInFlight
  // the resident packets drop as kKilledByFault; under kDeflect they stay
  // queued and drain through the router's liveness checks.
  const auto build = [&](LinkDeathPolicy policy) {
    FaultSchedule s(n);
    for (u64 row = 0; row < pow2(n); ++row) {
      s.fail_link_at(500, row, 2, false);
      s.fail_link_at(500, row, 2, true);
    }
    s.set_link_death_policy(policy);
    return s;
  };
  const FaultSchedule kill = build(LinkDeathPolicy::kKillInFlight);
  const FaultSchedule deflect = build(LinkDeathPolicy::kDeflect);
  const auto run = [&](const FaultSchedule& s) {
    return simulate_saturation_faulty(n, 0.8, 1000, 3, none, {}, 0, 0, nullptr, nullptr,
                                      nullptr, nullptr, &s);
  };
  const FaultSaturationPoint killed = run(kill);
  EXPECT_GT(killed.tally.dropped[drop_index(DropReason::kKilledByFault)], 0u);
  EXPECT_EQ(killed.live.links_killed, 2 * pow2(n));
  const FaultSaturationPoint deflected = run(deflect);
  EXPECT_EQ(deflected.tally.dropped[drop_index(DropReason::kKilledByFault)], 0u);
  // Stage 2 is fully severed either way: everything injected after the fault
  // that needs to pass stage 2 is eventually dropped at the dead wall.
  EXPECT_GT(deflected.tally.dropped[drop_index(DropReason::kNoAliveLink)] +
                deflected.tally.dropped[drop_index(DropReason::kBudgetExhausted)],
            0u);
  // Both modes are deterministic.
  expect_fsp_eq(killed, run(kill));
  expect_fsp_eq(deflected, run(deflect));
}

// --- sweep / exec integration ------------------------------------------------

TEST(LiveSweep, ValidatesScheduleDimensionAndBudgets) {
  const FaultSchedule wrong(3);
  SweepPoint p;
  p.n = 4;
  p.offered_load = 0.5;
  p.cycles = 100;
  p.schedule = &wrong;
  try {
    saturation_sweep({&p, 1});
    FAIL() << "dimension mismatch accepted";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("sweep point 0"), std::string::npos) << e.what();
  }
  const FaultSchedule right(4);
  p.schedule = &right;
  p.routing.misroute_budget = -1;
  EXPECT_THROW(saturation_sweep({&p, 1}), InvalidArgument);
  p.routing.misroute_budget = 8;
  p.routing.wrap_budget = -1;
  EXPECT_THROW(saturation_sweep({&p, 1}), InvalidArgument);
  p.routing.wrap_budget = 2;
  EXPECT_EQ(saturation_sweep({&p, 1}).size(), 1u);
  EXPECT_TRUE(sweep_point_is_faulty(p));
  p.schedule = nullptr;
  EXPECT_FALSE(sweep_point_is_faulty(p));
}

TEST(LiveSweep, ScheduleJoinsTheCheckpointKey) {
  SweepPoint p;
  p.n = 4;
  p.offered_load = 0.5;
  p.cycles = 200;
  const std::string bare = exec::sweep_point_key(p);
  const FaultSchedule empty(4);
  p.schedule = &empty;
  const std::string with_empty = exec::sweep_point_key(p);
  EXPECT_NE(with_empty, bare);  // presence alone reroutes the engine
  FaultSchedule one(4);
  one.fail_link_at(50, 1, 1, false);
  p.schedule = &one;
  const std::string with_one = exec::sweep_point_key(p);
  EXPECT_NE(with_one, with_empty);
  // Policies are outcome-relevant, so they key too.
  FaultSchedule policy = one;
  policy.set_link_death_policy(LinkDeathPolicy::kDeflect);
  p.schedule = &policy;
  EXPECT_NE(exec::sweep_point_key(p), with_one);
}

TEST(LiveSweep, ScheduledPointsKillResumeBitIdenticalAtEveryPrefix) {
  // The exec contract extended to live points: a mixed grid (pristine,
  // static-faulted, scheduled with telemetry) must resume bit-identically
  // from every journal prefix, with a different pool size on resume.
  const FaultSet statics = FaultSet::random_links(4, 0.05, 31);
  FaultSchedule schedule(4);
  schedule.fail_link_at(100, 3, 1, false);
  schedule.fail_node_at(150, 9, 2);
  schedule.repair_node_at(220, 9, 2);
  std::vector<SweepPoint> points;
  for (int i = 0; i < 3; ++i) {
    SweepPoint p;
    p.n = 4;
    p.offered_load = 0.6;
    p.cycles = 300;
    p.seed = 5;
    points.push_back(p);
  }
  points[1].faults = &statics;
  points[2].schedule = &schedule;
  points[2].telemetry_budget = 32;

  exec::SweepRunOptions serial;
  serial.threads = 1;
  const std::vector<SweepOutcome> baseline =
      exec::run_sweep_resumable(points, serial).outcomes;
  EXPECT_GT(baseline[2].live.fail_events, 0u);

  const std::string path = ::testing::TempDir() + "bfly_sched_resume.ckpt";
  for (std::size_t k = 1; k < points.size(); ++k) {
    SCOPED_TRACE(::testing::Message() << "kill after " << k << " points");
    std::remove(path.c_str());
    CancelToken token;
    exec::SweepRunOptions kill;
    kill.threads = 1;
    kill.checkpoint_path = path;
    kill.cancel = &token;
    kill.after_checkpoint = [&](std::size_t appended) {
      if (appended == k) token.request_cancel();
    };
    EXPECT_EQ(exec::run_sweep_resumable(points, kill).status, exec::SweepStatus::kCancelled);

    exec::SweepRunOptions resume;
    resume.threads = 3;
    resume.checkpoint_path = path;
    const exec::SweepRun resumed = exec::run_sweep_resumable(points, resume);
    EXPECT_EQ(resumed.status, exec::SweepStatus::kComplete);
    EXPECT_EQ(resumed.num_replayed, k);
    ASSERT_EQ(resumed.outcomes.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(resumed.outcomes[i].point.delivered, baseline[i].point.delivered);
      EXPECT_EQ(resumed.outcomes[i].point.throughput, baseline[i].point.throughput);
      EXPECT_EQ(resumed.outcomes[i].tally.dropped, baseline[i].tally.dropped);
      // The live counters replay through the v4 journal too.
      EXPECT_TRUE(resumed.outcomes[i].live == baseline[i].live);
      EXPECT_TRUE(resumed.outcomes[i].timeseries == baseline[i].timeseries);
    }
  }
  std::remove(path.c_str());
}

// --- recovery analytics ------------------------------------------------------

TEST(Recovery, MeasuresTimeToRecoverAndTransientLoss) {
  // Sever all of stage 2 at cycle 800, repair at 1200: throughput collapses
  // and must re-enter the pre-fault band only after the repair.
  const int n = 5;
  FaultSchedule schedule(n);
  for (u64 row = 0; row < pow2(n); ++row) {
    schedule.fail_link_at(800, row, 2, false);
    schedule.fail_link_at(800, row, 2, true);
    schedule.repair_link_at(1200, row, 2, false);
    schedule.repair_link_at(1200, row, 2, true);
  }
  SweepPoint p;
  p.n = n;
  p.offered_load = 0.7;
  p.cycles = 2400;
  p.seed = 11;
  p.telemetry_budget = 256;
  p.schedule = &schedule;
  const std::vector<SweepOutcome> out = saturation_sweep({&p, 1});
  const RecoveryAnalysis rec = analyze_recovery(out[0].timeseries, schedule);
  if (out[0].timeseries.empty()) {
    // BFLY_OBS=OFF builds record no series; the analysis degrades, not throws.
    EXPECT_FALSE(rec.applicable);
    return;
  }
  ASSERT_TRUE(rec.applicable);
  ASSERT_EQ(rec.events.size(), 1u);  // one distinct fail cycle
  const RecoveryEvent& ev = rec.events[0];
  EXPECT_EQ(ev.fault_cycle, 800u);
  EXPECT_GT(ev.pre_throughput, 0.0);
  EXPECT_TRUE(ev.recovered);
  EXPECT_GT(ev.time_to_recover_cycles, 0u);
  EXPECT_LE(ev.recovered_cycle, 2400u);
  EXPECT_GT(ev.packets_lost, 0u);  // the severed stage drops traffic
  EXPECT_GE(ev.recovered_cycle, 1200u);  // can't re-enter the band before repair
  EXPECT_EQ(rec.packets_lost_total, ev.packets_lost);
  EXPECT_EQ(rec.events_recovered, 1u);
  // Fully repaired: the residual level is within the tolerance band of 1.
  EXPECT_GT(rec.residual_throughput, 0.8);
  // Pure function of (series, schedule): bitwise repeatable.
  const RecoveryAnalysis again = analyze_recovery(out[0].timeseries, schedule);
  EXPECT_EQ(again.events[0].time_to_recover_cycles, ev.time_to_recover_cycles);
  EXPECT_EQ(again.events[0].packets_lost, ev.packets_lost);
  EXPECT_EQ(again.residual_throughput, rec.residual_throughput);
}

TEST(Recovery, DegradesWithoutTelemetryAndValidatesOptions) {
  const obs::TimeSeries empty;
  const FaultSchedule schedule(4);
  const RecoveryAnalysis rec = analyze_recovery(empty, schedule);
  EXPECT_FALSE(rec.applicable);
  EXPECT_TRUE(rec.events.empty());
  EXPECT_EQ(rec.residual_throughput, 0.0);
  EXPECT_THROW(analyze_recovery(empty, schedule, {.window = 0}), InvalidArgument);
  EXPECT_THROW(analyze_recovery(empty, schedule, {.tolerance = 1.5}), InvalidArgument);
}

TEST(Recovery, AvailabilityCurveIsDeterministicAndOrdered) {
  const std::vector<u64> mtbf = {400'000, 60'000};
  const std::vector<u64> mttr = {200, 800};
  AvailabilityOptions options;
  options.sim_cycles = 800;
  options.telemetry_budget = 64;
  const std::vector<AvailabilityPoint> curve = availability_curve(4, mtbf, mttr, 5, options);
  ASSERT_EQ(curve.size(), 2u);
  for (const AvailabilityPoint& pt : curve) {
    EXPECT_GT(pt.availability, 0.0);
    EXPECT_LE(pt.availability, 1.0 + 1e-9);
    EXPECT_GE(pt.fail_events, pt.repair_events > 0 ? 1u : 0u);
  }
  const std::vector<AvailabilityPoint> again = availability_curve(4, mtbf, mttr, 5, options);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i].availability, again[i].availability) << i;
    EXPECT_EQ(curve[i].fail_events, again[i].fail_events) << i;
    EXPECT_EQ(curve[i].packets_killed, again[i].packets_killed) << i;
  }
  // Index-carrying validation, mirroring validate_sweep_point's style.
  try {
    availability_curve(4, std::vector<u64>{1}, std::vector<u64>{10}, 5, options);
    FAIL() << "mtbf = 1 accepted";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("pair 0"), std::string::npos) << e.what();
  }
  EXPECT_THROW(availability_curve(4, mtbf, std::vector<u64>{200}, 5, options),
               InvalidArgument);
}

}  // namespace
}  // namespace bfly
