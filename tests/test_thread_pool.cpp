// The persistent worker pool behind parallel_for_chunked and the sweep
// drivers.  Load-bearing contracts:
//   * Reuse — one pool serves many submissions (that is its reason to exist).
//   * Partition determinism — run_chunked splits [begin, end) exactly like
//     the historical parallel_for_chunked, so chunk-keyed work is bitwise
//     identical for every pool size.
//   * Exceptions — a throwing range surfaces in the caller (first captured
//     wins) and the pool stays usable afterwards.
//   * Nesting — submitting from inside a pool task must not deadlock
//     (help-while-wait scheduling).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/bits.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace bfly {
namespace {

/// Sums i*i over [0, n) chunk-by-chunk through `pool`, tagging each range
/// with its tid so the test can also check the partition layout.
u64 chunked_square_sum(ThreadPool& pool, std::size_t n, std::size_t max_chunks,
                       std::vector<std::size_t>* tids = nullptr) {
  std::vector<u64> partial(max_chunks, 0);
  std::vector<std::size_t> seen(max_chunks, ~std::size_t{0});
  pool.run_chunked(0, n, max_chunks, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
    u64 s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += static_cast<u64>(i) * i;
    partial[tid] = s;
    seen[tid] = tid;
  });
  if (tids != nullptr) *tids = seen;
  u64 total = 0;
  for (const u64 p : partial) total += p;
  return total;
}

u64 serial_square_sum(std::size_t n) {
  u64 total = 0;
  for (std::size_t i = 0; i < n; ++i) total += static_cast<u64>(i) * i;
  return total;
}

TEST(ThreadPool, ReusedAcrossManySubmissions) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  for (std::size_t round = 0; round < 50; ++round) {
    const std::size_t n = 100 + round * 7;
    EXPECT_EQ(chunked_square_sum(pool, n, 4), serial_square_sum(n)) << round;
  }
}

TEST(ThreadPool, PartitionMatchesHistoricalChunking) {
  // 10 elements over at most 4 chunks: ceil(10/4) = 3 -> ranges
  // [0,3) [3,6) [6,9) [9,10), tids 0..3.
  ThreadPool pool(2);
  std::vector<std::vector<std::size_t>> ranges(4);
  pool.run_chunked(0, 10, 4, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
    ranges[tid] = {lo, hi};
  });
  EXPECT_EQ(ranges[0], (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(ranges[1], (std::vector<std::size_t>{3, 6}));
  EXPECT_EQ(ranges[2], (std::vector<std::size_t>{6, 9}));
  EXPECT_EQ(ranges[3], (std::vector<std::size_t>{9, 10}));
}

TEST(ThreadPool, PoolSizeDoesNotChangeResults) {
  // The partition (and therefore anything keyed off ranges/tids) depends only
  // on (begin, end, max_chunks), never on how many workers execute it.
  const std::size_t n = 1000;
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool four(4);
  std::vector<std::size_t> tids_one;
  std::vector<std::size_t> tids_four;
  const u64 a = chunked_square_sum(one, n, 8, &tids_one);
  const u64 b = chunked_square_sum(two, n, 8);
  const u64 c = chunked_square_sum(four, n, 8, &tids_four);
  EXPECT_EQ(a, serial_square_sum(n));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(tids_one, tids_four);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_chunked(0, 8, 8,
                       [&](std::size_t lo, std::size_t, std::size_t) {
                         ++ran;
                         if (lo == 3) throw std::runtime_error("range 3 failed");
                       }),
      std::runtime_error);
  // All ranges still ran (the pool does not cancel siblings)...
  EXPECT_EQ(ran.load(), 8);
  // ...and the pool is fully usable afterwards.
  EXPECT_EQ(chunked_square_sum(pool, 500, 4), serial_square_sum(500));
}

TEST(ThreadPool, FirstCapturedExceptionWins) {
  // Every range throws; exactly one exception must surface and it must be
  // one of the thrown ones (not a mangled or dropped state).
  ThreadPool pool(2);
  try {
    pool.run_chunked(0, 4, 4, [](std::size_t lo, std::size_t, std::size_t) {
      throw std::runtime_error("range " + std::to_string(lo));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("range ", 0), 0u) << e.what();
  }
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  // A range body that itself submits a region: help-while-wait means the
  // inner region drains even when every worker is busy in the outer one.
  ThreadPool pool(2);
  std::vector<u64> inner(4, 0);
  pool.run_chunked(0, 4, 4, [&](std::size_t lo, std::size_t, std::size_t tid) {
    inner[tid] = chunked_square_sum(pool, 100 + lo, 4);
  });
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(inner[t], serial_square_sum(100 + t));
  }
}

TEST(ThreadPool, EmptyAndSingleChunkRuns) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_chunked(5, 5, 4, [&](std::size_t, std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);  // empty range: body never invoked
  // max_chunks = 1 runs inline on the caller.
  std::vector<std::size_t> tids;
  EXPECT_EQ(chunked_square_sum(pool, 100, 1, &tids), serial_square_sum(100));
  EXPECT_EQ(tids, std::vector<std::size_t>{0});
}

TEST(ThreadPool, PreCancelledTokenRunsNoBodies) {
  ThreadPool pool(2);
  CancelToken token;
  token.request_cancel();
  std::atomic<int> ran{0};
  pool.run_chunked(0, 16, 16,
                   [&](std::size_t, std::size_t, std::size_t) { ++ran; }, &token);
  EXPECT_EQ(ran.load(), 0);
  // The pool is untouched by a pre-cancelled submission.
  EXPECT_EQ(chunked_square_sum(pool, 200, 4), serial_square_sum(200));
}

TEST(ThreadPool, MidRunCancelSkipsUnstartedRanges) {
  // The first body to run cancels the token.  Bodies already past their gate
  // (at most one per executor: 2 workers + the helping caller) may still run;
  // every not-yet-started range must be skipped, and run_chunked must still
  // return normally (the completion epilogue runs for skipped ranges too).
  ThreadPool pool(2);
  CancelToken token;
  std::atomic<int> ran{0};
  pool.run_chunked(
      0, 64, 64,
      [&](std::size_t, std::size_t, std::size_t) {
        ++ran;
        token.request_cancel();
      },
      &token);
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 3);  // 2 workers + helping caller
  EXPECT_TRUE(token.cancelled());
  // Cancellation is per-submission state, not pool state: the same pool (and
  // a fresh token) runs everything again.
  CancelToken fresh;
  std::atomic<int> ran2{0};
  pool.run_chunked(0, 16, 16,
                   [&](std::size_t, std::size_t, std::size_t) { ++ran2; }, &fresh);
  EXPECT_EQ(ran2.load(), 16);
}

TEST(ThreadPool, DeadlineExpiryCancelsToken) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.set_deadline_after(std::chrono::nanoseconds(1));
  // A 1ns budget is in the past by the time we poll; expired() implies
  // cancelled() for every consumer (pool gates and engine polls alike).
  while (!token.expired()) {
  }
  EXPECT_TRUE(token.cancelled());
  token.clear_deadline();
  EXPECT_FALSE(token.cancelled());
}

TEST(ThreadPool, StatsCountEveryExecutedTask) {
  // Utilization accounting: every range body lands in either a worker slot
  // or the caller-assist counter, and the total is exact — run_chunked does
  // not return before all its ranges complete, so nothing is in flight when
  // stats() is read.
  ThreadPool pool(3);
  const ThreadPool::Stats before = pool.stats();
  EXPECT_EQ(before.tasks_executed, 0u);
  EXPECT_EQ(before.assists, 0u);
  ASSERT_EQ(before.worker_tasks.size(), 3u);
  ASSERT_EQ(before.worker_busy_us.size(), 3u);

  for (std::size_t round = 0; round < 10; ++round) {
    EXPECT_EQ(chunked_square_sum(pool, 2000, 8), serial_square_sum(2000));
  }
  const ThreadPool::Stats after = pool.stats();
  EXPECT_EQ(after.tasks_executed, 80u);  // 10 rounds x 8 ranges, none lost
  u64 from_slots = after.assists;
  for (const u64 t : after.worker_tasks) from_slots += t;
  EXPECT_EQ(from_slots, after.tasks_executed);
}

TEST(ThreadPool, StatsAreMonotone) {
  ThreadPool pool(2);
  chunked_square_sum(pool, 500, 4);
  const ThreadPool::Stats a = pool.stats();
  chunked_square_sum(pool, 500, 4);
  const ThreadPool::Stats b = pool.stats();
  EXPECT_EQ(b.tasks_executed, a.tasks_executed + 4);
  EXPECT_GE(b.assists, a.assists);
  for (std::size_t w = 0; w < 2; ++w) {
    EXPECT_GE(b.worker_tasks[w], a.worker_tasks[w]);
    EXPECT_GE(b.worker_busy_us[w], a.worker_busy_us[w]);
  }
}

TEST(ThreadPool, AssistsAreVisibleWhenTheCallerHelps) {
  // Two ranges that each spin until both have started: a single-worker pool
  // can only satisfy that with the caller helping (help-while-wait), so
  // exactly one range runs on the worker and one as a caller assist.
  ThreadPool pool(1);
  std::atomic<int> started{0};
  pool.run_chunked(0, 2, 2, [&](std::size_t, std::size_t, std::size_t) {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
  });
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed, 2u);
  EXPECT_EQ(stats.assists, 1u);
  EXPECT_EQ(stats.worker_tasks[0], 1u);
  EXPECT_GT(stats.worker_busy_us.size(), 0u);
}

TEST(ThreadPool, ParallelForChunkedForwardsToken) {
  CancelToken token;
  token.request_cancel();
  std::atomic<int> ran{0};
  parallel_for_chunked(0, 32, 8,
                       [&](std::size_t, std::size_t, std::size_t) { ++ran; }, &token);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, SharedPoolBacksParallelForChunked) {
  // parallel_for_chunked now delegates to the shared pool; its results (and
  // partition) must match a private pool's.
  const std::size_t n = 777;
  std::vector<u64> partial(5, 0);
  parallel_for_chunked(0, n, 5, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
    u64 s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += static_cast<u64>(i) * i;
    partial[tid] = s;
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), u64{0}), serial_square_sum(n));
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

}  // namespace
}  // namespace bfly
