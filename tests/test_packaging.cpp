// Section 2.3 and Theorem 2.1: partitioning and packaging.
#include <gtest/gtest.h>

#include "core/formulas.hpp"
#include "packaging/hierarchical.hpp"
#include "packaging/partition.hpp"

namespace bfly {
namespace {

TEST(Partition, EvaluateCountsOffModuleLinks) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  Partition p;
  p.module_of = {0, 0, 1, 1};
  p.num_modules = 2;
  const PartitionStats s = evaluate_partition(g, p);
  EXPECT_EQ(s.total_offmodule_links, 2u);
  EXPECT_EQ(s.max_offmodule_links_per_module, 2u);
  EXPECT_EQ(s.max_nodes_per_module, 2u);
  EXPECT_EQ(s.min_nodes_per_module, 2u);
  EXPECT_DOUBLE_EQ(s.avg_offmodule_links_per_node, 1.0);
}

TEST(Partition, RowBlockMatchesClosedForm) {
  // The generalized Section 2.3 average: (4/(n+1)) sum_{i>=2} (1 - 2^{-k_i});
  // for equal group sizes it reduces to the paper's printed formula
  // 4(l-1)(2^k1 - 1) / ((n_l + 1) 2^k1).
  const struct {
    std::vector<int> k;
  } cases[] = {{{2, 2}}, {{3, 3}}, {{2, 2, 2}}, {{3, 3, 3}}, {{3, 2, 2}}, {{2, 2, 2, 2}}};
  for (const auto& c : cases) {
    const SwapButterfly sb(c.k);
    const int k1 = c.k[0];
    const Partition p = row_block_partition(sb, k1);
    const PartitionStats s = evaluate_partition(sb.graph(), p);
    const double predicted = formulas::offmodule_links_per_node_general(c.k);
    EXPECT_NEAR(s.avg_offmodule_links_per_node, predicted, 1e-9) << "k1=" << k1;
  }
}

TEST(Partition, GeneralFormulaReducesToPaperFormula) {
  for (const int k1 : {2, 3, 4}) {
    for (const int l : {2, 3, 4}) {
      const std::vector<int> k(static_cast<std::size_t>(l), k1);
      EXPECT_NEAR(formulas::offmodule_links_per_node_general(k),
                  formulas::offmodule_links_per_node(l, k1, l * k1), 1e-12);
    }
  }
}

TEST(Partition, RowBlockKeepsExchangeLinksInside) {
  // Only the (doubled) swap links may leave the modules: the total
  // off-module link count is at most 2 R (l-1).
  const SwapButterfly sb({3, 3, 3});
  const Partition p = row_block_partition(sb, 3);
  const PartitionStats s = evaluate_partition(sb.graph(), p);
  EXPECT_LE(s.total_offmodule_links, 2 * sb.rows() * 2);
  EXPECT_EQ(s.num_modules, 64u);
  EXPECT_EQ(s.max_nodes_per_module, 8u * 10u);  // 2^k1 rows x (n+1) stages
}

TEST(Partition, RowBlockBeatsNaiveByLogFactor) {
  // The naive scheme's average approaches 2 off-module links per node; the
  // row-block scheme's is O(1/log N).
  const SwapButterfly sb({3, 3, 3});
  const Partition ours = row_block_partition(sb, 3);
  const PartitionStats s_ours = evaluate_partition(sb.graph(), ours);

  const Butterfly bf(9);
  const Partition naive = naive_row_partition(bf, 8);
  const PartitionStats s_naive = evaluate_partition(bf.graph(), naive);

  // With q = 2^c aligned rows the naive average is 2(n - c)/(n + 1); for
  // n = 9, c = 3 that is 1.2 against our 0.7 -- and the gap widens with n
  // (Theta(log N) improvement).
  EXPECT_NEAR(s_naive.avg_offmodule_links_per_node, 1.2, 1e-9);
  EXPECT_NEAR(s_ours.avg_offmodule_links_per_node, 0.7, 1e-9);
  EXPECT_GT(s_naive.avg_offmodule_links_per_node / s_ours.avg_offmodule_links_per_node, 1.7);

  // The improvement factor grows with n: compare n = 12 (k1 = 4).
  const SwapButterfly sb12({4, 4, 4});
  const double ours12 =
      evaluate_partition(sb12.graph(), row_block_partition(sb12, 4)).avg_offmodule_links_per_node;
  const Butterfly bf12(12);
  const double naive12 =
      evaluate_partition(bf12.graph(), naive_row_partition(bf12, 16)).avg_offmodule_links_per_node;
  EXPECT_GT(naive12 / ours12, s_naive.avg_offmodule_links_per_node /
                                  s_ours.avg_offmodule_links_per_node);
}

TEST(Partition, NucleusRespectsTheorem21Bounds) {
  for (const auto& k : {std::vector<int>{3, 3, 3}, std::vector<int>{4, 4, 2},
                        std::vector<int>{2, 2, 2, 2}, std::vector<int>{4, 3}}) {
    const SwapButterfly sb(k);
    const Partition p = nucleus_partition(sb);
    const PartitionStats s = evaluate_partition(sb.graph(), p);
    EXPECT_LE(s.max_nodes_per_module, theorem21_max_nodes(k[0]));
    EXPECT_LE(s.max_offmodule_links_per_module, theorem21_max_offlinks(k[0]));
  }
}

TEST(Partition, NucleusModuleCount) {
  // l modules per 2^{n-k_i} row groups: for HSN-shaped parameters,
  // l * 2^{n-k1} modules.
  const SwapButterfly sb({3, 3, 3});
  const Partition p = nucleus_partition(sb);
  EXPECT_EQ(p.num_modules, 3u * pow2(6));
}

TEST(Partition, NucleusCoversAllNodesExactlyOnce) {
  const SwapButterfly sb({2, 2, 2});
  const Partition p = nucleus_partition(sb);
  std::vector<u64> count(p.num_modules, 0);
  for (const u64 m : p.module_of) ++count[m];
  for (const u64 c : count) EXPECT_GT(c, 0u);
}

TEST(Partition, NaiveRowPartition) {
  const Butterfly bf(4);
  const Partition p = naive_row_partition(bf, 3);
  EXPECT_EQ(p.num_modules, 6u);  // ceil(16/3)
  const PartitionStats s = evaluate_partition(bf.graph(), p);
  EXPECT_GT(s.avg_offmodule_links_per_node, 1.0);
}

TEST(Partition, RejectsBadInputs) {
  const SwapButterfly sb({2, 2});
  EXPECT_THROW(row_block_partition(sb, 5), InvalidArgument);
  const Butterfly bf(3);
  EXPECT_THROW(naive_row_partition(bf, 0), InvalidArgument);
  Graph g(2);
  Partition p;
  p.module_of = {0};
  p.num_modules = 1;
  EXPECT_THROW(evaluate_partition(g, p), InvalidArgument);
}

// --------------------------------------------------------------------------
// Multi-level packaging hierarchy (Sec. 2.3, final paragraph).
// --------------------------------------------------------------------------

TEST(Multilevel, MatchesClosedFormAtEveryLevel) {
  for (const auto& k : {std::vector<int>{2, 2, 2}, std::vector<int>{3, 3, 3},
                        std::vector<int>{2, 2, 2, 2}, std::vector<int>{3, 2, 2, 1}}) {
    const SwapButterfly sb(k);
    const auto levels = multilevel_packaging(sb);
    ASSERT_EQ(levels.size(), k.size() - 1);
    for (const PackagingLevel& level : levels) {
      EXPECT_NEAR(level.stats.avg_offmodule_links_per_node, level.predicted_avg, 1e-9)
          << "level " << level.level;
    }
  }
}

TEST(Multilevel, OffLinksDecreaseUpTheHierarchy) {
  // Higher levels enclose more swap levels, so fewer links escape.
  const SwapButterfly sb({2, 2, 2, 2});
  const auto levels = multilevel_packaging(sb);
  for (std::size_t j = 1; j < levels.size(); ++j) {
    EXPECT_LT(levels[j].stats.avg_offmodule_links_per_node,
              levels[j - 1].stats.avg_offmodule_links_per_node);
    EXPECT_GT(levels[j].rows_per_module, levels[j - 1].rows_per_module);
  }
}

TEST(Multilevel, ModuleCountsAreConsistent) {
  const SwapButterfly sb({3, 3, 3});
  const auto levels = multilevel_packaging(sb);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].stats.num_modules, 64u);  // chips: 2^6
  EXPECT_EQ(levels[1].stats.num_modules, 8u);   // boards: 2^3
}

// --------------------------------------------------------------------------
// Section 5: the worked hierarchical example.
// --------------------------------------------------------------------------

TEST(Hierarchical, PaperExampleNumbers) {
  ChipConstraints chips;  // 64 pins, side 20 (the paper's assumptions)
  const HierarchicalPlan plan = plan_hierarchical(9, chips);
  EXPECT_EQ(plan.k, (std::vector<int>{3, 3, 3}));
  EXPECT_EQ(plan.nodes_per_chip, 80u);
  EXPECT_EQ(plan.num_chips, 64u);
  EXPECT_LE(plan.offchip_links_per_chip, 64u);
  EXPECT_EQ(plan.grid_rows, 8u);
  EXPECT_EQ(plan.grid_cols, 8u);
  EXPECT_EQ(plan.logical_tracks_per_channel, 60u);  // 64 - 4 (neighbor opt.)
  EXPECT_EQ(plan.terminals_per_edge, 14u);          // 28 split across edges

  EXPECT_EQ(plan.board_area(2), 409600);  // "409.6K"
  EXPECT_EQ(plan.board_area(4), 160000);  // "160K"
  EXPECT_EQ(plan.board_area(8), 78400);   // "78.4K"
}

TEST(Hierarchical, NaiveChipCounts) {
  // The paper estimates 3 rows per chip (2 off-links per node) -> 171 chips;
  // exact link counting fits 4 aligned rows -> 128 chips.  Either way our
  // 64-chip plan at least halves the chip count.
  EXPECT_EQ(naive_chip_count_paper_estimate(9, 64), 171u);
  EXPECT_EQ(naive_chip_count(9, 64), 128u);
}

TEST(Hierarchical, DiminishingAreaReturns) {
  // Section 5: "the saving in total area diminishes in relative importance
  // when the number L of layers becomes larger."
  const HierarchicalPlan plan = plan_hierarchical(9, {});
  const double gain_2_to_4 = static_cast<double>(plan.board_area(2)) /
                             static_cast<double>(plan.board_area(4));
  const double gain_8_to_16 = static_cast<double>(plan.board_area(8)) /
                              static_cast<double>(plan.board_area(16));
  EXPECT_GT(gain_2_to_4, 2.0);
  EXPECT_LT(gain_8_to_16, 2.0);
}

TEST(Hierarchical, WireLengthFactorFromL4ToL8) {
  // Section 5: max wire length shrinks by a factor of about 1.4 from L=4 to
  // L=8 (640 -> 400 -> 280 board side).
  const HierarchicalPlan plan = plan_hierarchical(9, {});
  EXPECT_EQ(plan.max_board_wire(2), 640);
  EXPECT_EQ(plan.max_board_wire(4), 400);
  EXPECT_EQ(plan.max_board_wire(8), 280);
  const double factor = static_cast<double>(plan.max_board_wire(4)) /
                        static_cast<double>(plan.max_board_wire(8));
  EXPECT_NEAR(factor, 1.43, 0.05);
}

TEST(Hierarchical, RespectsPinBudgetAcrossSizes) {
  for (const int n : {6, 7, 8, 9, 10}) {
    const HierarchicalPlan plan = plan_hierarchical(n, {});
    EXPECT_LE(plan.offchip_links_per_chip, 64u) << n;
    EXPECT_EQ(plan.num_chips * plan.nodes_per_chip,
              pow2(n) * static_cast<u64>(n + 1))
        << n;
  }
}

TEST(Hierarchical, TightPinBudgetShrinksChips) {
  const HierarchicalPlan loose = plan_hierarchical(9, {});
  ChipConstraints tight;
  tight.max_offchip_links = 32;
  const HierarchicalPlan plan = plan_hierarchical(9, tight);
  EXPECT_LT(plan.nodes_per_chip, loose.nodes_per_chip);
  EXPECT_GT(plan.num_chips, loose.num_chips);
  EXPECT_LE(plan.offchip_links_per_chip, 32u);
}

}  // namespace
}  // namespace bfly
