// The legality checkers must accept the textbook-legal patterns and reject
// every class of violation they claim to detect.  These tests construct
// small layouts by hand for both rule sets.
#include <gtest/gtest.h>

#include "layout/legality.hpp"

namespace bfly {
namespace {

Layout two_nodes() {
  Layout layout;
  layout.add_node(0, Rect::square(0, 0, 4));    // [0..3] x [0..3]
  layout.add_node(1, Rect::square(20, 0, 4));   // [20..23] x [0..3]
  return layout;
}

Wire channel_wire(Point from, i64 track_y, i64 to_x, i64 to_y, u64 from_node, u64 to_node) {
  return WireBuilder(from).from(from_node).to_y(track_y, 1).to_x(to_x, 2).to_y(to_y, 1).to(
      to_node).build();
}

TEST(Thompson, AcceptsSimpleChannelRoute) {
  Layout layout = two_nodes();
  layout.add_wire(channel_wire({1, 3}, 8, 21, 3, 0, 1));
  const LegalityReport r = check_thompson(layout);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_EQ(r.segments_checked, 3u);
}

TEST(Thompson, AcceptsProperCrossing) {
  Layout layout = two_nodes();
  layout.add_node(2, Rect::square(0, 20, 4));  // [0..3] x [20..23]
  // Wire A: horizontal run at y=10 between x in [2, 22].
  layout.add_wire(channel_wire({2, 3}, 10, 22, 3, 0, 1));
  // Wire B: vertical run at x=12 crossing y=10 properly, ending on node 1's
  // left edge at exactly its endpoint.
  layout.add_wire(WireBuilder(Point{3, 21})
                      .from(2)
                      .to_x(12, 2)
                      .to_y(3, 1)
                      .to_x(20, 2)
                      .to(1)
                      .build());
  const LegalityReport r = check_thompson(layout);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Thompson, RejectsHorizontalOverlap) {
  Layout layout = two_nodes();
  layout.add_wire(channel_wire({1, 3}, 8, 21, 3, 0, 1));
  layout.add_wire(channel_wire({2, 3}, 8, 22, 3, 0, 1));  // same track y=8, overlapping x
  const LegalityReport r = check_thompson(layout);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("collinear overlap"), std::string::npos);
}

TEST(Thompson, RejectsVerticalOverlap) {
  Layout layout = two_nodes();
  layout.add_wire(WireBuilder(Point{3, 1}).from(0).to_x(10, 2).to_y(30, 1).to_x(21, 2).build());
  layout.add_wire(WireBuilder(Point{3, 2}).from(0).to_x(10, 2).to_y(25, 1).to_x(22, 2).build());
  const LegalityReport r = check_thompson(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Thompson, RejectsKnockKnee) {
  // Two (free-floating) wires bending at the same grid point (10, 8).
  Layout layout;
  layout.add_wire(WireBuilder(Point{1, 3}).to_y(8, 1).to_x(10, 2).to_y(20, 1).build());
  layout.add_wire(WireBuilder(Point{10, 3}).to_y(8, 1).to_x(21, 2).build());
  const LegalityReport r = check_thompson(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Thompson, RejectsEndpointTouchOnStraightRun) {
  Layout layout = two_nodes();
  // Wire A: horizontal at y=8 from 1 to 21.
  layout.add_wire(channel_wire({1, 3}, 8, 21, 3, 0, 1));
  // Wire B: vertical at x=15 ENDING exactly on A's straight run (improper
  // contact, would need a via on top of A's wire).
  layout.add_node(2, Rect::square(12, 20, 4));
  layout.add_wire(WireBuilder(Point{15, 20}).from(2).to_y(8, 1).build());
  const LegalityReport r = check_thompson(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Thompson, RejectsWireThroughNode) {
  Layout layout = two_nodes();
  layout.add_node(2, Rect::square(8, 0, 4));  // node in the middle at y 0..3
  layout.add_wire(WireBuilder(Point{3, 3}).from(0).to_x(20, 2).to(1).build());
  const LegalityReport r = check_thompson(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Thompson, AcceptsEdgeHuggingTerminals) {
  // The same shape as RejectsWireThroughNode but with the middle node out of
  // the way: a single horizontal wire ending exactly on node 1's edge point.
  Layout layout = two_nodes();
  Wire w = WireBuilder(Point{3, 3}).from(0).to_x(20, 2).to(1).build();
  layout.add_wire(std::move(w));
  const LegalityReport r = check_thompson(layout);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Thompson, RejectsOverlappingNodes) {
  Layout layout;
  layout.add_node(0, Rect::square(0, 0, 4));
  layout.add_node(1, Rect::square(3, 3, 4));
  const LegalityReport r = check_thompson(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Thompson, RejectsDetachedTerminal) {
  Layout layout = two_nodes();
  layout.add_wire(WireBuilder(Point{6, 6}).from(0).to_x(21, 2).to_y(3, 1).to(1).build());
  const LegalityReport r = check_thompson(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Multilayer, AcceptsLayeredCrossing) {
  Layout layout = two_nodes();
  layout.add_node(2, Rect::square(0, 20, 4));
  layout.add_wire(channel_wire({1, 3}, 10, 21, 3, 0, 1));
  // Vertical (layer 1) of this wire crosses the first wire's horizontal
  // (layer 2) at (12, 10): fine in 3-D.
  layout.add_wire(
      WireBuilder(Point{3, 21}).from(2).to_x(12, 2).to_y(3, 1).to_x(20, 2).to(1).build());
  const LegalityReport r = check_multilayer(layout);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_GT(r.vias_checked, 0u);
}

TEST(Multilayer, RejectsSameLayerCrossing) {
  Layout layout = two_nodes();
  layout.add_node(2, Rect::square(8, 20, 4));
  // Horizontal on layer 1 at y=10 and a layer-1 vertical crossing it: the
  // 3-D grid model forbids same-layer crossings (paths must be node-disjoint).
  layout.add_wire(WireBuilder(Point{1, 3}).from(0).to_y(10, 1).to_x(21, 1).to_y(3, 1).to(1).build());
  layout.add_wire(WireBuilder(Point{10, 20}).from(2).to_y(5, 1).build());
  const LegalityReport r = check_multilayer(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Multilayer, RejectsViaCollisionAndTouch) {
  Layout layout = two_nodes();
  layout.add_node(2, Rect::square(8, 20, 4));
  // Wire 1 bends at (10,10) from layer 2 to 3; wire 2 bends there from 3 to
  // 4: the via z-ranges share layer 3 (and the layer-3 segments touch).
  layout.add_wire(
      WireBuilder(Point{1, 3}).from(0).to_y(10, 1).to_x(10, 2).to_y(21, 3).to(2).build());
  layout.add_wire(WireBuilder(Point{10, 3}).to_y(10, 3).to_x(21, 4).build());
  const LegalityReport r = check_multilayer(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Multilayer, RejectsViaThroughForeignSegment) {
  Layout layout = two_nodes();
  layout.add_node(2, Rect::square(10, 20, 4));  // [10..13] x [20..23]
  layout.add_node(3, Rect::square(20, 20, 4));
  // Wire A: horizontal on layer 2 at y=10 through x=[2,21].
  layout.add_wire(WireBuilder(Point{2, 3}).from(0).to_y(10, 1).to_x(21, 2).to_y(3, 1).to(1).build());
  // Wire B's via at (12, 10) spans layers 1..3 and punches through A.
  layout.add_wire(
      WireBuilder(Point{12, 21}).from(2).to_y(10, 1).to_x(22, 3).to_y(21, 1).to(3).build());
  const LegalityReport r = check_multilayer(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Multilayer, RejectsLayer1IntrusionIntoNode) {
  Layout layout = two_nodes();
  layout.add_node(2, Rect::square(8, 0, 4));
  layout.add_node(3, Rect::square(8, 20, 4));
  // Vertical layer-1 segment descending straight through node 2.
  layout.add_wire(WireBuilder(Point{10, 20}).from(3).to_y(1, 1).build());
  const LegalityReport r = check_multilayer(layout);
  EXPECT_FALSE(r.ok);
}

TEST(Multilayer, AcceptsHighLayerOverNode) {
  Layout layout = two_nodes();
  layout.add_node(2, Rect::square(8, 0, 4));
  // Horizontal on layer 2 passes OVER node 2: legal (nodes occupy layer 1).
  layout.add_wire(WireBuilder(Point{3, 3}).from(0).to_x(20, 2).to(1).build());
  const LegalityReport r = check_multilayer(layout);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Multilayer, CountsSegmentsAndVias) {
  Layout layout = two_nodes();
  layout.add_wire(channel_wire({1, 3}, 8, 21, 3, 0, 1));
  const LegalityReport r = check_multilayer(layout);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_EQ(r.segments_checked, 3u);
  EXPECT_EQ(r.vias_checked, 4u);  // 2 terminal + 2 bend vias
}

TEST(Legality, ReportSummaryMentionsFirstViolation) {
  Layout layout = two_nodes();
  layout.add_wire(channel_wire({1, 3}, 8, 21, 3, 0, 1));
  layout.add_wire(channel_wire({2, 3}, 8, 22, 3, 0, 1));
  const LegalityReport r = check_thompson(layout);
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_NE(r.summary().find("violations"), std::string::npos);
}

}  // namespace
}  // namespace bfly
