// Transport-free tests of the serving core: protocol parsing and hostile
// frames, content keys, the single-flight cache (dedup storms, joiner
// deadlines), deadline expiry everywhere a request can expire, bounded
// admission and shedding, drain, the exact request ledger, and crash-style
// journal recovery (torn tails, bit-identical replay).
//
// The dedup-storm and ledger tests are also the serve entries in the TSan CI
// job: many submitter threads racing dispatchers, the reaper, and cache
// resolution is exactly the interleaving surface the single-flight map has
// to survive.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/checkpoint.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace bfly::serve {
namespace {

using json::Value;

// Collects responses and lets a test block until all expected ones arrived
// (responses fire from dispatcher / reaper / submitter threads).
class ResponseBin {
 public:
  ResponseCallback callback() {
    return [this](std::string line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(std::move(line));
      cv_.notify_all();
    };
  }

  std::vector<std::string> wait_for(std::size_t count) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ok = cv_.wait_for(lock, std::chrono::seconds(60),
                                 [&] { return lines_.size() >= count; });
    EXPECT_TRUE(ok) << "only " << lines_.size() << "/" << count << " responses arrived";
    return lines_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "serve_" + name + "_" + std::to_string(::getpid()) +
         ".jsonl";
}

WaitCallback noop_wait() {
  return [](WaitResult, ErrorCode, const std::string&) {};
}

// --- protocol ----------------------------------------------------------------

TEST(ServeProtocol, ParsesAndValidatesRequests) {
  const Request r = parse_request_line(
      R"({"op":"sweep","id":"a","n":6,"offered_load":0.5,"cycles":1000,"seed":3,)"
      R"("warmup_cycles":100,"queue_capacity":64,"shard_count":4,"deadline_ms":250})");
  EXPECT_EQ(r.op, Op::kSweep);
  EXPECT_EQ(r.id, "a");
  EXPECT_EQ(r.n, 6);
  EXPECT_DOUBLE_EQ(r.offered_load, 0.5);
  EXPECT_EQ(r.cycles, 1000u);
  EXPECT_EQ(r.warmup_cycles, 100u);
  EXPECT_EQ(r.queue_capacity, 64u);
  EXPECT_EQ(r.shard_count, 4u);
  EXPECT_EQ(r.deadline_ms, 250u);
}

TEST(ServeProtocol, RejectsHostileFrames) {
  // Every one of these must throw InvalidArgument — never crash, never
  // silently default.
  const std::vector<std::string> bad = {
      "",                                                  // empty
      "not json at all",                                   // not JSON
      "[1,2,3]",                                           // not an object
      "{}",                                                // no op
      R"({"op":"evil"})",                                  // unknown op
      R"({"op":"layout"})",                                // missing n
      R"({"op":"layout","n":2})",                          // n below layout min
      R"({"op":"layout","n":17})",                         // n above cap
      R"({"op":"layout","n":6,"layres":2})",               // misspelled field
      R"({"op":"layout","n":"six"})",                      // mistyped n
      R"({"op":"layout","n":6.5})",                        // non-integral n
      R"({"op":"census","n":8,"packets":0})",              // packets = 0
      R"({"op":"census","n":8})",                          // packets missing
      R"({"op":"census","n":8,"packets":1e18})",           // packets over cap
      R"({"op":"sweep","n":6,"offered_load":1.5,"cycles":10})",  // load > 1
      R"({"op":"sweep","n":6,"offered_load":0.5,"cycles":0})",   // cycles = 0
      R"({"op":"sweep","n":6,"offered_load":0.5,"cycles":10,"warmup_cycles":10})",
      R"({"op":"sweep","n":6,"offered_load":0.5,"cycles":10,"shard_count":3})",
      R"({"op":"ping","deadline_ms":0})",                  // zero deadline
      R"({"op":"ping","id":7})",                           // mistyped id
      std::string(2048, 'x'),                              // long junk
  };
  for (const std::string& frame : bad) {
    EXPECT_THROW((void)parse_request_line(frame), InvalidArgument) << frame;
  }
}

TEST(ServeProtocol, RequestKeyCoversParametersAndIgnoresDeliveryMetadata) {
  const Request a = parse_request_line(R"({"op":"census","n":8,"packets":1000,"seed":7})");
  Request b = a;
  b.id = "different";
  b.deadline_ms = 123;
  b.no_cache = true;
  EXPECT_EQ(request_key(a), request_key(b));  // delivery metadata is not content

  Request c = a;
  c.seed = 8;
  EXPECT_NE(request_key(a), request_key(c));
  Request d = a;
  d.packets = 1001;
  EXPECT_NE(request_key(a), request_key(d));

  // Distinct ops with overlapping parameter values must not collide.
  const Request layout = parse_request_line(R"({"op":"layout","n":8})");
  const Request packaging = parse_request_line(R"({"op":"packaging","n":8})");
  EXPECT_NE(request_key(layout), request_key(packaging));
}

TEST(ServeProtocol, SweepKeysMatchCheckpointKeys) {
  // A served sweep point and an exec checkpoint of the same parameters share
  // one identity — the cross-layer cache story.
  const Request r = parse_request_line(
      R"({"op":"sweep","n":6,"offered_load":0.7,"cycles":500,"seed":11})");
  EXPECT_EQ(request_key(r), exec::sweep_point_key(to_sweep_point(r)));
}

TEST(ServeProtocol, ExecuteIsDeterministicAndCancellable) {
  const Request r = parse_request_line(
      R"({"op":"census","n":6,"packets":200000,"seed":5})");
  const std::string a = execute_request(r, nullptr).dump();
  const std::string b = execute_request(r, nullptr).dump();
  EXPECT_EQ(a, b);

  // An untripped token changes nothing (bitwise).
  CancelToken idle;
  idle.set_deadline_after(std::chrono::hours(1));
  EXPECT_EQ(execute_request(r, &idle).dump(), a);

  // A pre-tripped token stops the engine at its first poll: the partial
  // result differs from the full compute (the server discards it; here we
  // just prove cancellation actually bites).
  CancelToken tripped;
  tripped.request_cancel();
  EXPECT_NE(execute_request(r, &tripped).dump(), a);
}

TEST(ServeProtocol, ResponseEnvelopesAreWellFormedJson) {
  const std::string ok = build_response_ok("id-1", "abcd", true, R"({"x":1})");
  const Value doc = Value::parse(ok);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("cached").as_bool());
  EXPECT_EQ(doc.at("result").at("x").as_u64(), 1u);

  const std::string err =
      build_response_error("weird \"id\"\n", ErrorCode::kOverloaded, "q full", 25);
  const Value edoc = Value::parse(err);
  EXPECT_FALSE(edoc.at("ok").as_bool());
  EXPECT_EQ(edoc.at("id").as_string(), "weird \"id\"\n");
  EXPECT_EQ(edoc.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(edoc.at("error").at("retry_after_ms").as_u64(), 25u);
}

// --- single-flight cache -----------------------------------------------------

TEST(ServeCache, SingleFlightDedupUnderRequestStorm) {
  // The satellite TSan scenario: many threads race lookup_or_begin on one
  // key; exactly one must become the owner, everyone else joins or hits, and
  // after the one publish every resolution carries the identical payload.
  ServeCache cache("");
  constexpr int kThreads = 16;
  constexpr int kRoundsPerThread = 32;
  std::atomic<int> owners{0};
  std::atomic<int> joined{0};
  std::atomic<int> hits{0};
  std::atomic<int> ready{0};
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        std::string payload;
        const CancelToken* token = nullptr;
        const Admission admission = cache.lookup_or_begin(
            "the-key", deadline, &payload, &token,
            [&](WaitResult result, ErrorCode, const std::string& body) {
              if (result == WaitResult::kReady && body == "payload") {
                ready.fetch_add(1);
              }
            });
        if (admission == Admission::kOwner) {
          owners.fetch_add(1);
          EXPECT_NE(token, nullptr);
          cache.publish("the-key", "payload");
        } else if (admission == Admission::kJoined) {
          joined.fetch_add(1);
        } else {
          EXPECT_EQ(payload, "payload");
          hits.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(owners.load(), 1);  // exactly one compute, ever
  EXPECT_EQ(ready.load(), joined.load());
  EXPECT_EQ(owners.load() + joined.load() + hits.load(), kThreads * kRoundsPerThread);
  EXPECT_EQ(cache.ready_entries(), 1u);
}

TEST(ServeCache, JoinersExtendTheSharedDeadlineMonotonically) {
  ServeCache cache("");
  const auto now = std::chrono::steady_clock::now();
  std::string payload;
  const CancelToken* token = nullptr;
  ASSERT_EQ(cache.lookup_or_begin("k", now + std::chrono::milliseconds(10), &payload,
                                  &token, noop_wait()),
            Admission::kOwner);
  ASSERT_NE(token, nullptr);
  EXPECT_EQ(token->deadline(), now + std::chrono::milliseconds(10));

  // A patient joiner pushes the shared compute's deadline out...
  ASSERT_EQ(cache.lookup_or_begin("k", now + std::chrono::seconds(10), &payload, &token,
                                  noop_wait()),
            Admission::kJoined);
  EXPECT_EQ(token->deadline(), now + std::chrono::seconds(10));

  // ...and an impatient one can never pull it back in.
  ASSERT_EQ(cache.lookup_or_begin("k", now + std::chrono::milliseconds(1), &payload,
                                  &token, noop_wait()),
            Admission::kJoined);
  EXPECT_EQ(token->deadline(), now + std::chrono::seconds(10));
  cache.publish("k", "done");
}

TEST(ServeCache, FailDropsEntryAndNotifiesJoiners) {
  ServeCache cache("");
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::string payload;
  const CancelToken* token = nullptr;
  ASSERT_EQ(cache.lookup_or_begin("k", deadline, &payload, &token, noop_wait()),
            Admission::kOwner);

  WaitResult seen = WaitResult::kReady;
  ErrorCode seen_code = ErrorCode::kInternal;
  std::string seen_body;
  ASSERT_EQ(cache.lookup_or_begin("k", deadline, &payload, &token,
                                  [&](WaitResult r, ErrorCode c, const std::string& b) {
                                    seen = r;
                                    seen_code = c;
                                    seen_body = b;
                                  }),
            Admission::kJoined);

  cache.fail("k", ErrorCode::kDeadlineExceeded, "compute cancelled");
  EXPECT_EQ(seen, WaitResult::kFailed);
  EXPECT_EQ(seen_code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(seen_body, "compute cancelled");

  // The failed entry is gone: the next identical request computes afresh.
  EXPECT_EQ(cache.lookup_or_begin("k", deadline, &payload, &token, noop_wait()),
            Admission::kOwner);
  cache.publish("k", "second try");
  EXPECT_EQ(cache.ready_entries(), 1u);
}

TEST(ServeCache, ExpireWaitersFiresOnlyOverdueJoiners) {
  ServeCache cache("");
  const auto now = std::chrono::steady_clock::now();
  std::string payload;
  const CancelToken* token = nullptr;
  ASSERT_EQ(cache.lookup_or_begin("k", now + std::chrono::hours(1), &payload, &token,
                                  noop_wait()),
            Admission::kOwner);

  int expired_count = 0;
  int late_ready = 0;
  ASSERT_EQ(cache.lookup_or_begin("k", now - std::chrono::milliseconds(1), &payload,
                                  &token,
                                  [&](WaitResult r, ErrorCode, const std::string&) {
                                    if (r == WaitResult::kExpired) ++expired_count;
                                  }),
            Admission::kJoined);
  ASSERT_EQ(cache.lookup_or_begin("k", now + std::chrono::hours(1), &payload, &token,
                                  [&](WaitResult r, ErrorCode, const std::string&) {
                                    if (r == WaitResult::kReady) ++late_ready;
                                  }),
            Admission::kJoined);

  EXPECT_EQ(cache.expire_waiters(now), 1u);  // only the overdue joiner fires
  EXPECT_EQ(expired_count, 1);
  cache.publish("k", "done");
  EXPECT_EQ(late_ready, 1);  // the patient joiner still resolves kReady
  EXPECT_EQ(cache.expire_waiters(now + std::chrono::hours(2)), 0u);
}

TEST(ServeCache, EvictsLeastRecentlyUsedBeyondEntryCap) {
  CacheLimits limits;
  limits.max_entries = 2;
  ServeCache cache("", limits);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::string payload;
  const CancelToken* token = nullptr;

  const auto put = [&](const std::string& key, const std::string& value) {
    ASSERT_EQ(cache.lookup_or_begin(key, deadline, &payload, &token, noop_wait()),
              Admission::kOwner);
    cache.publish(key, value);
  };
  put("k1", "v1");
  put("k2", "v2");
  EXPECT_EQ(cache.evicted_entries(), 0u);

  // Touch k1 so k2 is the coldest, then overflow: k2 must go, k1 must stay.
  ASSERT_EQ(cache.lookup_or_begin("k1", deadline, &payload, &token, noop_wait()),
            Admission::kHit);
  put("k3", "v3");
  EXPECT_EQ(cache.ready_entries(), 2u);
  EXPECT_EQ(cache.evicted_entries(), 1u);
  EXPECT_EQ(cache.lookup_or_begin("k1", deadline, &payload, &token, noop_wait()),
            Admission::kHit);
  EXPECT_EQ(payload, "v1");
  EXPECT_EQ(cache.lookup_or_begin("k3", deadline, &payload, &token, noop_wait()),
            Admission::kHit);
  // The evicted key computes afresh — and bit-identically, by determinism.
  EXPECT_EQ(cache.lookup_or_begin("k2", deadline, &payload, &token, noop_wait()),
            Admission::kOwner);
  cache.publish("k2", "v2");
}

TEST(ServeCache, EvictsByPayloadBytesButNeverTheNewestEntry) {
  CacheLimits limits;
  limits.max_payload_bytes = 10;
  ServeCache cache("", limits);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::string payload;
  const CancelToken* token = nullptr;

  ASSERT_EQ(cache.lookup_or_begin("a", deadline, &payload, &token, noop_wait()),
            Admission::kOwner);
  cache.publish("a", "12345678");  // 8 bytes: fits
  ASSERT_EQ(cache.lookup_or_begin("b", deadline, &payload, &token, noop_wait()),
            Admission::kOwner);
  cache.publish("b", "1234");  // 12 bytes total: evicts a
  EXPECT_EQ(cache.ready_entries(), 1u);
  EXPECT_EQ(cache.ready_payload_bytes(), 4u);
  EXPECT_EQ(cache.lookup_or_begin("a", deadline, &payload, &token, noop_wait()),
            Admission::kOwner);
  cache.publish("a", std::string(64, 'x'));  // alone over the cap: still kept
  EXPECT_EQ(cache.ready_entries(), 1u);
  EXPECT_EQ(cache.ready_payload_bytes(), 64u);
}

TEST(ServeCache, JournalStaysBoundedUnderUniqueKeyTraffic) {
  // The unbounded-memory regression scenario: a client iterating unique keys
  // forever.  RSS is bounded by the LRU caps and the journal by the
  // compaction threshold — publish() compacts once appends cross it.
  const std::string path = temp_path("bounded_journal");
  std::remove(path.c_str());
  CacheLimits limits;
  limits.max_entries = 4;
  limits.journal_compact_bytes = 512;
  {
    ServeCache cache(path, limits);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    std::string payload;
    const CancelToken* token = nullptr;
    for (int i = 0; i < 200; ++i) {
      const std::string key = "key-" + std::to_string(i);
      ASSERT_EQ(cache.lookup_or_begin(key, deadline, &payload, &token, noop_wait()),
                Admission::kOwner);
      cache.publish(key, R"({"value":)" + std::to_string(i) + "}");
    }
    EXPECT_EQ(cache.ready_entries(), 4u);
    EXPECT_EQ(cache.evicted_entries(), 196u);
    std::ifstream in(path, std::ios::ate | std::ios::binary);
    ASSERT_TRUE(in.is_open());
    // Bounded: at most the threshold plus the few records appended since the
    // last compaction crossed it — nowhere near 200 records.
    EXPECT_LT(static_cast<std::size_t>(in.tellg()), limits.journal_compact_bytes + 256);
  }
  // A reload honours the caps too and serves only the retained entries.
  ServeCache reloaded(path, limits);
  EXPECT_LE(reloaded.loaded_entries(), 4u);
  EXPECT_GE(reloaded.loaded_entries(), 1u);
  std::string payload;
  const CancelToken* token = nullptr;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  EXPECT_EQ(reloaded.lookup_or_begin("key-199", deadline, &payload, &token, noop_wait()),
            Admission::kHit);
  EXPECT_EQ(payload, R"({"value":199})");
  std::remove(path.c_str());
}

TEST(ServeCache, JournalSurvivesTornTailAndReplaysBitIdentically) {
  const std::string path = temp_path("journal");
  const std::string payload_a = R"({"result":"alpha","value":1.5})";
  const std::string payload_b = R"({"result":"beta"})";
  {
    ServeCache cache(path);
    std::string payload;
    const CancelToken* token = nullptr;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    ASSERT_EQ(cache.lookup_or_begin("aaaa", deadline, &payload, &token, noop_wait()),
              Admission::kOwner);
    cache.publish("aaaa", payload_a);
    ASSERT_EQ(cache.lookup_or_begin("bbbb", deadline, &payload, &token, noop_wait()),
              Admission::kOwner);
    cache.publish("bbbb", payload_b);
  }
  // Simulate a kill -9 mid-append: a torn, unterminated record at the tail.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"v\":1,\"key\":\"cccc\",\"result\":\"{\\\"trunc";
  }

  ServeCache reloaded(path);
  EXPECT_EQ(reloaded.loaded_entries(), 2u);
  EXPECT_EQ(reloaded.loaded_lines_skipped(), 1u);

  std::string payload;
  const CancelToken* token = nullptr;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  ASSERT_EQ(reloaded.lookup_or_begin("aaaa", deadline, &payload, &token, noop_wait()),
            Admission::kHit);
  EXPECT_EQ(payload, payload_a);  // byte-identical replay
  ASSERT_EQ(reloaded.lookup_or_begin("bbbb", deadline, &payload, &token, noop_wait()),
            Admission::kHit);
  EXPECT_EQ(payload, payload_b);

  // compact() rewrites atomically: reload again, torn line gone.
  reloaded.compact();
  ServeCache compacted(path);
  EXPECT_EQ(compacted.loaded_entries(), 2u);
  EXPECT_EQ(compacted.loaded_lines_skipped(), 0u);
  std::remove(path.c_str());
}

// --- server ------------------------------------------------------------------

ServerOptions small_server(std::size_t inflight = 2, std::size_t depth = 64) {
  ServerOptions options;
  options.max_inflight = inflight;
  options.queue_depth = depth;
  options.default_deadline_ms = 30'000;
  options.engine_threads = 2;
  return options;
}

TEST(ServeServer, AnswersComputeAndControlOps) {
  Server server(small_server());
  ResponseBin bin;
  server.submit_frame(R"({"op":"ping","id":"p"})", bin.callback());
  server.submit_frame(R"({"op":"layout","id":"l","n":5})", bin.callback());
  server.submit_frame(R"({"op":"stats","id":"s"})", bin.callback());
  const auto lines = bin.wait_for(3);

  for (const std::string& line : lines) {
    const Value doc = Value::parse(line);
    EXPECT_TRUE(doc.at("ok").as_bool()) << line;
  }
  const LedgerSnapshot ledger = server.drain(1000);
  EXPECT_EQ(ledger.accepted, 3u);
  EXPECT_EQ(ledger.completed, 3u);
  EXPECT_TRUE(ledger.conserved());
}

TEST(ServeServer, CacheHitsAreBitIdenticalToColdComputes) {
  Server server(small_server());
  ResponseBin bin;
  const std::string frame = R"({"op":"census","id":"x","n":7,"packets":150000,"seed":9})";
  server.submit_frame(frame, bin.callback());
  bin.wait_for(1);
  server.submit_frame(frame, bin.callback());
  const auto lines = bin.wait_for(2);

  EXPECT_FALSE(Value::parse(lines[0]).at("cached").as_bool());
  EXPECT_TRUE(Value::parse(lines[1]).at("cached").as_bool());
  // The response lines must match byte for byte once the one envelope field
  // that differs ("cached") is normalized away — the result text is served
  // verbatim, not re-rendered.
  std::string cold = lines[0];
  const std::size_t pos = cold.find("\"cached\":false");
  ASSERT_NE(pos, std::string::npos);
  cold.replace(pos, 14, "\"cached\":true");
  EXPECT_EQ(cold, lines[1]);

  const LedgerSnapshot ledger = server.drain(1000);
  EXPECT_EQ(ledger.cache_hits, 1u);
  EXPECT_EQ(ledger.cache_misses, 1u);
  EXPECT_TRUE(ledger.conserved());
}

TEST(ServeServer, IdenticalConcurrentRequestsCoalesceToOneCompute) {
  // One slow sweep, many identical requests racing it: exactly one compute
  // (cache_misses == 1), every response carries the same result text.
  obs::Registry registry;
  obs::ScopedRegistry scoped(&registry);
  Server server(small_server(4, 256));
  ResponseBin bin;
  const std::string frame =
      R"({"op":"sweep","id":"s","n":8,"offered_load":0.8,"cycles":60000,"seed":13})";
  constexpr std::size_t kClients = 48;
  for (std::size_t i = 0; i < kClients; ++i) server.submit_frame(frame, bin.callback());
  const auto lines = bin.wait_for(kClients);

  std::set<std::string> result_texts;
  for (const std::string& line : lines) {
    const Value doc = Value::parse(line);
    ASSERT_TRUE(doc.at("ok").as_bool()) << line;
    result_texts.insert(doc.at("result").dump());
  }
  EXPECT_EQ(result_texts.size(), 1u);  // one result, many deliveries

  const LedgerSnapshot ledger = server.drain(2000);
  EXPECT_EQ(ledger.accepted, kClients);
  EXPECT_EQ(ledger.completed, kClients);
  EXPECT_EQ(ledger.cache_misses, 1u);  // the single-flight guarantee
  EXPECT_EQ(ledger.cache_hits + ledger.coalesced, kClients - 1);
  EXPECT_TRUE(ledger.conserved());

  // The obs mirror carries the same story.
  const auto snapshot = registry.metrics_snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "serve.cache_misses") EXPECT_EQ(value, 1u);
    if (name == "serve.accepted") EXPECT_EQ(value, kClients);
  }
}

TEST(ServeServer, DeadlineExpiredRequestsGetStructuredErrors) {
  Server server(small_server(1, 64));
  ResponseBin bin;
  // A sweep far too long for its 100 ms budget starts executing immediately
  // (the only dispatcher is idle) and must trip mid-engine via its token.
  server.submit_frame(
      R"({"op":"sweep","id":"trip","n":10,"offered_load":0.9,"cycles":4000000,"seed":1,)"
      R"("deadline_ms":100})",
      bin.callback());
  // Queued behind it with a 40 ms budget: expires while queued — the reaper
  // answers it; no dispatcher ever sees it.
  server.submit_frame(R"({"op":"layout","id":"late","n":5,"deadline_ms":40})",
                      bin.callback());
  // Control ops are admission-exempt and still answer instantly.
  server.submit_frame(R"({"op":"ping","id":"alive"})", bin.callback());

  const auto lines = bin.wait_for(3);
  int deadline_errors = 0;
  for (const std::string& line : lines) {
    const Value doc = Value::parse(line);
    if (!doc.at("ok").as_bool() &&
        doc.at("error").at("code").as_string() == "deadline_exceeded") {
      ++deadline_errors;
    }
  }
  EXPECT_EQ(deadline_errors, 2) << "trip + late must both expire structurally";

  const LedgerSnapshot ledger = server.drain(10'000);
  EXPECT_EQ(ledger.cancelled, 2u);
  EXPECT_EQ(ledger.completed, 1u);  // the ping
  EXPECT_TRUE(ledger.conserved());
}

TEST(ServeServer, OwnerPastItsOwnDeadlineAnswersExpiredWhileJoinersGetTheResult) {
  // A patient joiner extends the shared compute's token past the owner's own
  // deadline, so the compute legitimately outlives the owner.  The joiner
  // gets the published result; the owner must still answer deadline_exceeded
  // — its own contract is not overridden by whoever rode along.
  Server server(small_server(2, 16));
  ResponseBin bin;
  // The compute must reliably outlive the owner's 100 ms budget (also under
  // sanitizers), and the joiner's budget must reliably cover the compute.
  const std::string params =
      R"("n":8,"offered_load":0.9,"cycles":100000,"seed":77)";
  server.submit_frame(
      R"({"op":"sweep","id":"own",)" + params + R"(,"deadline_ms":100})", bin.callback());
  server.submit_frame(
      R"({"op":"sweep","id":"join",)" + params + R"(,"deadline_ms":120000})",
      bin.callback());

  const auto lines = bin.wait_for(2);
  std::string owner_code;
  bool joiner_ok = false;
  for (const std::string& line : lines) {
    const Value doc = Value::parse(line);
    if (doc.at("id").as_string() == "own") {
      EXPECT_FALSE(doc.at("ok").as_bool()) << line;
      owner_code = doc.at("error").at("code").as_string();
    } else {
      joiner_ok = doc.at("ok").as_bool();
      EXPECT_TRUE(joiner_ok) << line;
    }
  }
  // Whether the owner expired queued, mid-compute (token tripped before the
  // joiner extended), or post-compute (the fixed path), the answer is the
  // same structured error.
  EXPECT_EQ(owner_code, "deadline_exceeded");

  const LedgerSnapshot ledger = server.drain(120'000);
  EXPECT_TRUE(ledger.conserved());
  EXPECT_EQ(ledger.cancelled, 1u);
  EXPECT_EQ(ledger.completed, 1u);
}

TEST(ServeServer, BoundedQueueShedsDeterministically) {
  // queue_depth 2, one dispatcher pinned by a long compute: the burst beyond
  // the queue must shed with overloaded + a retry_after_ms hint.
  Server server(small_server(1, 2));
  ResponseBin bin;
  server.submit_frame(
      R"({"op":"sweep","id":"pin","n":6,"offered_load":0.9,"cycles":2000000,"seed":1})",
      bin.callback());
  // Let the dispatcher pop the pin so the queue itself is empty.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  constexpr std::size_t kBurst = 8;
  for (std::size_t i = 0; i < kBurst; ++i) {
    server.submit_frame(R"({"op":"census","id":"b","n":6,"packets":1000,"seed":)" +
                            std::to_string(i) + "}",
                        bin.callback());
  }
  const auto lines = bin.wait_for(1 + kBurst);

  std::size_t shed = 0;
  for (const std::string& line : lines) {
    const Value doc = Value::parse(line);
    if (doc.at("ok").as_bool()) continue;
    if (doc.at("error").at("code").as_string() == "overloaded") {
      EXPECT_GE(doc.at("error").at("retry_after_ms").as_u64(), 1u);
      ++shed;
    }
  }
  EXPECT_GE(shed, kBurst - 2);  // at most queue_depth of the burst admitted

  const LedgerSnapshot ledger = server.drain(120'000);
  EXPECT_EQ(ledger.shed, shed);
  EXPECT_TRUE(ledger.conserved());
}

TEST(ServeServer, MalformedFramesCountAsFailedNotCrash) {
  Server server(small_server());
  ResponseBin bin;
  const std::vector<std::string> hostile = {
      "garbage",
      "{\"op\":\"layout\"",           // truncated JSON
      R"({"op":"layout","n":9999})",  // out of range
      R"({"op":"census","n":8})",     // missing packets
      std::string(2048, 'x'),         // long junk
  };
  for (const std::string& frame : hostile) server.submit_frame(frame, bin.callback());
  const auto lines = bin.wait_for(hostile.size());
  for (const std::string& line : lines) {
    const Value doc = Value::parse(line);
    EXPECT_FALSE(doc.at("ok").as_bool());
    EXPECT_EQ(doc.at("error").at("code").as_string(), "invalid_request");
  }
  const LedgerSnapshot ledger = server.drain(1000);
  EXPECT_EQ(ledger.failed, hostile.size());
  EXPECT_TRUE(ledger.conserved());
}

TEST(ServeServer, DrainShedsLateArrivalsAndConservesLedger) {
  Server server(small_server());
  ResponseBin bin;
  server.submit_frame(R"({"op":"ping","id":"a"})", bin.callback());
  bin.wait_for(1);
  const LedgerSnapshot ledger = server.drain(1000);
  EXPECT_TRUE(ledger.conserved());

  // Post-drain submissions still answer (shutting_down) and stay conserved.
  server.submit_frame(R"({"op":"layout","id":"late","n":5})", bin.callback());
  const auto lines = bin.wait_for(2);
  const Value doc = Value::parse(lines[1]);
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").at("code").as_string(), "shutting_down");
  EXPECT_TRUE(server.ledger().conserved());
}

TEST(ServeServer, DrainBudgetCancelsInflightComputes) {
  Server server(small_server(1, 8));
  ResponseBin bin;
  // A sweep that would run for many seconds; drain with a tiny budget must
  // cancel it via its token rather than wait it out.
  server.submit_frame(
      R"({"op":"sweep","id":"long","n":10,"offered_load":0.9,"cycles":4000000,"seed":3,)"
      R"("deadline_ms":300000})",
      bin.callback());
  server.submit_frame(
      R"({"op":"sweep","id":"queued","n":10,"offered_load":0.9,"cycles":4000000,"seed":4,)"
      R"("deadline_ms":300000})",
      bin.callback());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  const LedgerSnapshot ledger = server.drain(50);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(30)) << "drain must not wait out the sweep";

  const auto lines = bin.wait_for(2);
  std::multiset<std::string> codes;
  for (const std::string& line : lines) {
    const Value doc = Value::parse(line);
    ASSERT_FALSE(doc.at("ok").as_bool());
    codes.insert(doc.at("error").at("code").as_string());
  }
  // The in-flight sweep cancels; the still-queued one sheds.
  EXPECT_EQ(codes.count("deadline_exceeded"), 1u);
  EXPECT_EQ(codes.count("shutting_down"), 1u);
  EXPECT_TRUE(ledger.conserved());
  EXPECT_EQ(ledger.cancelled, 1u);
  EXPECT_EQ(ledger.shed, 1u);
}

TEST(ServeServer, LedgerConservationUnderMixedConcurrentStorm) {
  // The headline exactness property, stressed: many submitter threads firing
  // mixed valid / hostile / duplicate / short-deadline traffic at a small
  // server.  After drain: accepted == completed + cancelled + shed + failed,
  // exactly.
  Server server(small_server(3, 16));
  ResponseBin bin;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string frame;
        switch ((t + i) % 5) {
          case 0:
            frame = R"({"op":"ping","id":"p"})";
            break;
          case 1:  // identical census across threads: coalesce / hit
            frame = R"({"op":"census","id":"c","n":6,"packets":100000,"seed":1})";
            break;
          case 2:  // hostile
            frame = "]]not json[[";
            break;
          case 3:  // short deadline on a long sweep
            frame =
                R"({"op":"sweep","id":"d","n":8,"offered_load":0.9,"cycles":2000000,)"
                R"("seed":)" +
                std::to_string(i) + R"(,"deadline_ms":20})";
            break;
          default:  // varied small layouts
            frame = R"({"op":"layout","id":"l","n":)" + std::to_string(4 + (i % 5)) + "}";
            break;
        }
        server.submit_frame(frame, bin.callback());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  bin.wait_for(static_cast<std::size_t>(kThreads * kPerThread));
  const LedgerSnapshot ledger = server.drain(120'000);
  EXPECT_EQ(ledger.accepted, static_cast<u64>(kThreads * kPerThread));
  EXPECT_EQ(ledger.accepted,
            ledger.completed + ledger.cancelled + ledger.shed + ledger.failed);
}

TEST(ServeServer, PersistedCacheServesRestartBitIdentically) {
  const std::string path = temp_path("server_journal");
  const std::string frame = R"({"op":"census","id":"r","n":7,"packets":120000,"seed":21})";
  std::string first_result;
  {
    ServerOptions options = small_server();
    options.cache_path = path;
    Server server(options);
    ResponseBin bin;
    server.submit_frame(frame, bin.callback());
    const auto lines = bin.wait_for(1);
    first_result = Value::parse(lines[0]).at("result").dump();
    server.drain(5000);
  }
  {
    // "Restart": a fresh Server over the same journal must hit, not compute.
    ServerOptions options = small_server();
    options.cache_path = path;
    Server server(options);
    ResponseBin bin;
    server.submit_frame(frame, bin.callback());
    const auto lines = bin.wait_for(1);
    const Value doc = Value::parse(lines[0]);
    EXPECT_TRUE(doc.at("cached").as_bool());
    EXPECT_EQ(doc.at("result").dump(), first_result);
    const LedgerSnapshot ledger = server.drain(1000);
    EXPECT_EQ(ledger.cache_hits, 1u);
    EXPECT_EQ(ledger.cache_misses, 0u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bfly::serve
