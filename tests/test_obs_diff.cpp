// Run-report analytics (obs/diff.hpp): report validation, delta computation,
// threshold classification, percentile estimation, and the JSON parser edge
// cases the analytics path depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/diff.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/check.hpp"

namespace bfly::obs {
namespace {

// --- fixtures ----------------------------------------------------------------

/// A minimal but complete schema-v1 report with one of everything.
std::string report_text(double counter, double gauge, double total_us,
                        const std::string& histogram_counts = "[2, 3, 5, 0]",
                        const std::string& histogram_count = "10",
                        const std::string& config = R"({"n": 6})") {
  std::ostringstream out;
  out << R"({"schema_version": 1, "name": "demo", "run_id": "abc123", )"
      << R"("git_describe": "v1-test", "config": )" << config << R"(, "metrics": {)"
      << R"("counters": {"routing.delivered": )" << counter << R"(}, )"
      << R"("gauges": {"routing.throughput": )" << gauge << R"(}, )"
      << R"("histograms": {"latency": {"bounds": [1, 2, 4], "counts": )" << histogram_counts
      << R"(, "count": )" << histogram_count << R"(, "sum": 20}}}, )"
      << R"("spans": [{"name": "phase", "count": 3, "total_us": )" << total_us
      << R"(, "max_us": 9.5}], "artifact_stats": {"area": 4096, "nested": {"depth": 2}, )"
      << R"("tags": ["x"], "label": "not-a-number"}})";
  return out.str();
}

RunReport make_report(double counter, double gauge, double total_us) {
  return RunReport::parse(report_text(counter, gauge, total_us));
}

// --- RunReport parsing / validation ------------------------------------------

TEST(RunReportTest, ParsesWellFormedReport) {
  const RunReport r = make_report(100, 0.5, 12.5);
  EXPECT_EQ(r.name, "demo");
  EXPECT_EQ(r.run_id, "abc123");
  EXPECT_EQ(r.git_describe, "v1-test");
}

TEST(RunReportTest, ParsesRealReportWriterOutput) {
  // The analytics layer must accept exactly what obs/report.cpp emits.
  // Registry handles are driven directly (not via the get_* helpers) so the
  // round trip also holds in the BFLY_OBS=OFF build.
  Registry registry;
  registry.counter("work.items")->add(42);
  Histogram* h = registry.histogram("work.size", Histogram::linear_bounds(1, 1, 8));
  h->observe(3.0);
  h->observe(5.0);
  ReportOptions options;
  options.name = "roundtrip";
  options.artifact_stats.set("area", json::Value::number(7));
  std::ostringstream line;
  write_report_line(line, registry, options);

  const RunReport r = RunReport::parse(line.str());
  EXPECT_EQ(r.name, "roundtrip");
  EXPECT_EQ(metric_value(r, "counters.work.items"), 42.0);
  EXPECT_EQ(metric_value(r, "histograms.work.size.count"), 2.0);
  EXPECT_EQ(metric_value(r, "artifact_stats.area"), 7.0);
}

TEST(RunReportTest, RejectsWrongSchemaVersion) {
  std::string text = report_text(1, 1, 1);
  text.replace(text.find("\"schema_version\": 1"), 19, "\"schema_version\": 3");
  EXPECT_THROW(RunReport::parse(text), InvalidArgument);
}

/// report_text() as a schema-v2 report with a "timeseries" block appended.
std::string report_text_v2(const std::string& timeseries) {
  std::string text = report_text(1, 1, 1);
  text.replace(text.find("\"schema_version\": 1"), 19, "\"schema_version\": 2");
  text.insert(text.rfind('}'), ", \"timeseries\": " + timeseries);
  return text;
}

TEST(RunReportTest, ParsesV2ReportWithTimeseriesBlock) {
  const RunReport r = RunReport::parse(report_text_v2(
      R"({"v": 1, "budget": 8, "stride": 2, "channels": ["in_flight", "delivered"],
          "cycles": [0, 2, 4], "samples": [[1, 0], [5, 2], [3, 6]]})"));
  EXPECT_EQ(metric_value(r, "timeseries.samples"), 3.0);
  EXPECT_EQ(metric_value(r, "timeseries.stride"), 2.0);
  EXPECT_EQ(metric_value(r, "timeseries.in_flight.mean"), 3.0);
  EXPECT_EQ(metric_value(r, "timeseries.in_flight.last"), 3.0);
  EXPECT_EQ(metric_value(r, "timeseries.delivered.last"), 6.0);
}

TEST(RunReportTest, V2WithoutTimeseriesBlockIsTolerated) {
  // obs::diff must tolerate the block's absence even at version 2.
  std::string text = report_text(1, 1, 1);
  text.replace(text.find("\"schema_version\": 1"), 19, "\"schema_version\": 2");
  const RunReport r = RunReport::parse(text);
  EXPECT_THROW(metric_value(r, "timeseries.samples"), InvalidArgument);
}

TEST(RunReportTest, RejectsMalformedTimeseriesBlock) {
  // Row width must match the channel count.
  EXPECT_THROW(RunReport::parse(report_text_v2(
                   R"({"v": 1, "budget": 8, "stride": 1, "channels": ["a", "b"],
                       "cycles": [0], "samples": [[1]]})")),
               InvalidArgument);
  // One sample row per cycle.
  EXPECT_THROW(RunReport::parse(report_text_v2(
                   R"({"v": 1, "budget": 8, "stride": 1, "channels": ["a"],
                       "cycles": [0, 1], "samples": [[1]]})")),
               InvalidArgument);
  EXPECT_THROW(RunReport::parse(report_text_v2("[1, 2]")), InvalidArgument);
}

TEST(RunReportTest, RejectsMissingTopLevelKey) {
  EXPECT_THROW(RunReport::parse(R"({"schema_version": 1, "name": "x"})"), InvalidArgument);
}

TEST(RunReportTest, RejectsNonObjectDocument) {
  EXPECT_THROW(RunReport::parse("[1, 2]"), InvalidArgument);
}

TEST(RunReportTest, RejectsHistogramWithWrongBucketArity) {
  // 3 bounds need 4 counts.
  EXPECT_THROW(RunReport::parse(report_text(1, 1, 1, "[2, 3, 5]", "10")), InvalidArgument);
}

TEST(RunReportTest, RejectsHistogramWhoseCountsDoNotSum) {
  EXPECT_THROW(RunReport::parse(report_text(1, 1, 1, "[2, 3, 5, 0]", "11")), InvalidArgument);
}

// --- status field ------------------------------------------------------------

/// report_text() with status/progress keys spliced in before "config".
std::string report_text_with_status(const std::string& status, int completed, int total) {
  std::string text = report_text(1, 1, 1);
  std::ostringstream keys;
  keys << R"("status": ")" << status << R"(", "points_completed": )" << completed
       << R"(, "points_total": )" << total << ", ";
  text.insert(text.find("\"config\""), keys.str());
  return text;
}

TEST(RunReportTest, MissingStatusParsesAsCompleteForBackCompat) {
  const RunReport r = make_report(1, 1, 1);
  EXPECT_EQ(r.status, "complete");
  EXPECT_TRUE(r.is_complete());
  EXPECT_EQ(r.points_completed, 0u);
  EXPECT_EQ(r.points_total, 0u);
}

TEST(RunReportTest, ParsesStatusAndProgressKeys) {
  const RunReport r = RunReport::parse(report_text_with_status("partial", 3, 5));
  EXPECT_EQ(r.status, "partial");
  EXPECT_FALSE(r.is_complete());
  EXPECT_EQ(r.points_completed, 3u);
  EXPECT_EQ(r.points_total, 5u);
  EXPECT_EQ(RunReport::parse(report_text_with_status("cancelled", 0, 5)).status, "cancelled");
  EXPECT_TRUE(RunReport::parse(report_text_with_status("complete", 5, 5)).is_complete());
}

TEST(RunReportTest, RejectsUnknownStatusValue) {
  EXPECT_THROW(RunReport::parse(report_text_with_status("exploded", 1, 2)), InvalidArgument);
}

TEST(DegradeTest, FailuresBecomeWarningsWithRetalliedCounts) {
  CheckResult result;
  result.rows.push_back({MetricDelta{"counters.a", 1, 2, 1, 1.0}, Severity::kFail});
  result.rows.push_back({MetricDelta{"counters.b", 1, 1, 0, 0.0}, Severity::kPass});
  result.rows.push_back({MetricDelta{"gauges.c", 1, 1.1, 0.1, 0.1}, Severity::kWarn});
  result.missing_in_b = {"counters.gone"};
  result.new_in_b = {"counters.fresh"};
  result.num_fail = 2;  // the fail row + the missing key
  result.num_warn = 2;  // the warn row + the new key
  const CheckResult degraded = degrade_failures_to_warnings(std::move(result));
  EXPECT_EQ(degraded.num_fail, 0);
  EXPECT_EQ(degraded.num_warn, 4);  // fail row + warn row + missing + new
  EXPECT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.rows[0].severity, Severity::kWarn);
  EXPECT_EQ(degraded.rows[1].severity, Severity::kPass);
  EXPECT_EQ(degraded.rows[2].severity, Severity::kWarn);
}

// --- load_report_lines -------------------------------------------------------

TEST(LoadReportLinesTest, SkipsTornAndCorruptLinesWithWarnings) {
  const std::string path = ::testing::TempDir() + "bfly_trajectory.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << report_text(1, 1, 1) << "\n";
    out << "\n";                    // blank: ignored silently
    out << "{\"torn\": tru" << "\n";  // corrupt: skipped with a warning
    out << report_text(2, 2, 2) << "\n";
    const std::string torn_tail = report_text(3, 3, 3);
    out << torn_tail.substr(0, torn_tail.size() / 2);  // crash-torn final line
  }
  std::ostringstream warnings;
  std::size_t skipped = 0;
  const std::vector<RunReport> reports = load_report_lines(path, &warnings, &skipped);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(skipped, 2u);
  // One summary warning for the whole file, naming the count and the first
  // offending line — never one line per skip.
  EXPECT_NE(warnings.str().find("skipped 2 torn lines"), std::string::npos) << warnings.str();
  EXPECT_NE(warnings.str().find("first at line 3"), std::string::npos) << warnings.str();
  EXPECT_EQ(metric_value(reports[1], "counters.routing.delivered"), 2.0);
  std::remove(path.c_str());
}

TEST(LoadReportLinesTest, ManyTornLinesEmitOneSummaryWarning) {
  const std::string path = ::testing::TempDir() + "bfly_flooded.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << report_text(1, 1, 1) << "\n";
    for (int i = 0; i < 500; ++i) out << "{\"torn\": " << i << "\n";  // all unparsable
  }
  std::ostringstream warnings;
  std::size_t skipped = 0;
  const std::vector<RunReport> reports = load_report_lines(path, &warnings, &skipped);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(skipped, 500u);
  // A corrupt journal must not flood the log: exactly one warning line.
  const std::string text = warnings.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1) << text;
  EXPECT_NE(text.find("skipped 500 torn lines"), std::string::npos) << text;
  EXPECT_NE(text.find("first at line 2"), std::string::npos) << text;
  std::remove(path.c_str());
}

TEST(LoadReportLinesTest, AllCorruptFileReturnsEmptyNotThrow) {
  const std::string path = ::testing::TempDir() + "bfly_corrupt.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "garbage\nmore garbage\n";
  }
  std::size_t skipped = 0;
  EXPECT_TRUE(load_report_lines(path, nullptr, &skipped).empty());
  EXPECT_EQ(skipped, 2u);
  EXPECT_THROW(load_report_lines(path + ".does-not-exist"), InvalidArgument);
  std::remove(path.c_str());
}

// --- diff_reports ------------------------------------------------------------

TEST(DiffReportsTest, ComputesAbsoluteAndRelativeDeltas) {
  const ReportDiff diff = diff_reports(make_report(100, 0.5, 10.0), make_report(110, 0.25, 30.0));
  ASSERT_FALSE(diff.deltas.empty());

  const auto delta_for = [&](const std::string& key) -> const MetricDelta& {
    for (const MetricDelta& d : diff.deltas) {
      if (d.key == key) return d;
    }
    ADD_FAILURE() << "no delta for " << key;
    static MetricDelta none;
    return none;
  };
  const MetricDelta& counter = delta_for("counters.routing.delivered");
  EXPECT_EQ(counter.before, 100.0);
  EXPECT_EQ(counter.after, 110.0);
  EXPECT_EQ(counter.abs_delta, 10.0);
  EXPECT_NEAR(counter.rel_delta, 0.10, 1e-12);

  const MetricDelta& gauge = delta_for("gauges.routing.throughput");
  EXPECT_NEAR(gauge.rel_delta, -0.5, 1e-12);

  const MetricDelta& span = delta_for("spans.phase.total_us");
  EXPECT_NEAR(span.rel_delta, 2.0, 1e-12);
}

TEST(DiffReportsTest, FlattensNestedArtifactStatsNumericLeavesOnly) {
  const ReportDiff diff = diff_reports(make_report(1, 1, 1), make_report(1, 1, 1));
  bool saw_nested = false;
  bool saw_array = false;
  for (const MetricDelta& d : diff.deltas) {
    if (d.key == "artifact_stats.nested.depth") saw_nested = true;
    // "tags" holds a string element; "label" is a string: neither may appear.
    EXPECT_EQ(d.key.find("artifact_stats.tags"), std::string::npos);
    EXPECT_EQ(d.key.find("artifact_stats.label"), std::string::npos);
    if (d.key.find("artifact_stats.tags") != std::string::npos) saw_array = true;
  }
  EXPECT_TRUE(saw_nested);
  EXPECT_FALSE(saw_array);
}

TEST(DiffReportsTest, ZeroBaselineYieldsInfiniteRelativeDelta) {
  const ReportDiff diff = diff_reports(make_report(0, 1, 1), make_report(5, 1, 1));
  for (const MetricDelta& d : diff.deltas) {
    if (d.key == "counters.routing.delivered") {
      EXPECT_EQ(d.abs_delta, 5.0);
      EXPECT_TRUE(std::isinf(d.rel_delta));
      EXPECT_GT(d.rel_delta, 0.0);
      return;
    }
  }
  FAIL() << "counter delta missing";
}

TEST(DiffReportsTest, RefusesMismatchedNames) {
  RunReport b = make_report(1, 1, 1);
  std::string text = report_text(1, 1, 1);
  text.replace(text.find("\"demo\""), 6, "\"other\"");
  EXPECT_THROW(diff_reports(RunReport::parse(text), b), InvalidArgument);
}

TEST(DiffReportsTest, RefusesMismatchedConfigsUnlessDisabled) {
  const RunReport a = make_report(1, 1, 1);
  const RunReport b =
      RunReport::parse(report_text(1, 1, 1, "[2, 3, 5, 0]", "10", R"({"n": 8})"));
  EXPECT_THROW(diff_reports(a, b), InvalidArgument);
  DiffOptions relaxed;
  relaxed.require_matching_config = false;
  EXPECT_NO_THROW(diff_reports(a, b, relaxed));
}

TEST(DiffReportsTest, ThreadsConfigIsRunMetadataNotIdentity) {
  // "threads" only changes wall-clock, never outcomes, so two runs differing
  // only there must diff cleanly — and the diff surfaces both values.
  const RunReport a =
      RunReport::parse(report_text(1, 1, 1, "[2, 3, 5, 0]", "10", R"({"n": 6, "threads": 0})"));
  const RunReport b =
      RunReport::parse(report_text(1, 1, 1, "[2, 3, 5, 0]", "10", R"({"n": 6, "threads": 4})"));
  ReportDiff diff;
  ASSERT_NO_THROW(diff = diff_reports(a, b));
  EXPECT_EQ(diff.threads_a, "auto");  // 0 = auto (default_thread_count)
  EXPECT_EQ(diff.threads_b, "4");
  EXPECT_EQ(diff.shard_count_a, "");  // key absent: predates the field
  const std::string md = render_diff_markdown(diff);
  EXPECT_NE(md.find("threads auto → 4"), std::string::npos);
}

TEST(DiffReportsTest, ShardCountConfigStaysPartOfTheIdentity) {
  // A sharded run produces different bits than a serial one, so a
  // shard_count difference is a real config mismatch and must refuse.
  const RunReport a = RunReport::parse(
      report_text(1, 1, 1, "[2, 3, 5, 0]", "10", R"({"n": 6, "shard_count": 8})"));
  const RunReport b = RunReport::parse(
      report_text(1, 1, 1, "[2, 3, 5, 0]", "10", R"({"n": 6, "shard_count": 4})"));
  EXPECT_THROW(diff_reports(a, b), InvalidArgument);
  // Equal shard counts are comparable and get labelled.
  const ReportDiff diff = diff_reports(a, a);
  EXPECT_EQ(diff.shard_count_a, "8");
  EXPECT_EQ(diff.shard_count_b, "8");
  EXPECT_NE(render_diff_markdown(diff).find("shard_count 8"), std::string::npos);
}

TEST(DiffReportsTest, ReportsKeysPresentOnOneSideOnly) {
  std::string text_b = report_text(1, 1, 1);
  text_b.replace(text_b.find("\"area\": 4096"), 12, "\"area2\": 4096");
  const ReportDiff diff = diff_reports(make_report(1, 1, 1), RunReport::parse(text_b));
  ASSERT_EQ(diff.only_in_a.size(), 1u);
  EXPECT_EQ(diff.only_in_a[0], "artifact_stats.area");
  ASSERT_EQ(diff.only_in_b.size(), 1u);
  EXPECT_EQ(diff.only_in_b[0], "artifact_stats.area2");
}

TEST(MetricValueTest, LooksUpFlattenedKeysAndThrowsOnUnknown) {
  const RunReport r = make_report(100, 0.5, 10.0);
  EXPECT_EQ(metric_value(r, "counters.routing.delivered"), 100.0);
  EXPECT_EQ(metric_value(r, "artifact_stats.nested.depth"), 2.0);
  EXPECT_THROW(metric_value(r, "counters.nope"), InvalidArgument);
}

// --- percentile estimation ---------------------------------------------------

TEST(PercentileTest, ExactOnOneValuePerBucketDistribution) {
  // Uniform 1..100 observed into bounds {1, 2, ..., 100}: bucket i holds
  // exactly the value bounds[i], so interpolation must return the true
  // percentile of the discrete distribution.
  Histogram h(Histogram::linear_bounds(1, 1, 100));
  for (int v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.percentile(1.0), 100.0, 1e-9);
}

TEST(PercentileTest, InterpolatesWithinBucket) {
  // 100 observations all landing in the (8, 16] bucket: the estimator walks
  // linearly across that bucket's width.
  const std::vector<double> bounds = {8, 16};
  const std::vector<u64> counts = {0, 100, 0};
  EXPECT_NEAR(estimate_percentile(bounds, counts, 0.5), 12.0, 1e-9);
  EXPECT_NEAR(estimate_percentile(bounds, counts, 0.25), 10.0, 1e-9);
}

TEST(PercentileTest, OverflowBucketClampsToLastBound) {
  const std::vector<double> bounds = {1, 2};
  const std::vector<u64> counts = {1, 1, 8};  // 80% of mass beyond the last bound
  EXPECT_EQ(estimate_percentile(bounds, counts, 0.99), 2.0);
}

TEST(PercentileTest, EmptyHistogramIsZero) {
  const std::vector<double> bounds = {1, 2};
  const std::vector<u64> counts = {0, 0, 0};
  EXPECT_EQ(estimate_percentile(bounds, counts, 0.5), 0.0);
}

TEST(PercentileTest, RejectsBadArguments) {
  const std::vector<double> bounds = {1, 2};
  const std::vector<u64> ok_counts = {1, 1, 1};
  const std::vector<u64> bad_counts = {1, 1};
  EXPECT_THROW(estimate_percentile(bounds, bad_counts, 0.5), InvalidArgument);
  EXPECT_THROW(estimate_percentile(bounds, ok_counts, 1.5), InvalidArgument);
  EXPECT_THROW(estimate_percentile(bounds, ok_counts, -0.1), InvalidArgument);
}

// --- glob matching + threshold classification --------------------------------

TEST(GlobMatchTest, MatchesWildcards) {
  EXPECT_TRUE(glob_match("*", "anything.at.all"));
  EXPECT_TRUE(glob_match("spans.*.total_us", "spans.routing.census.total_us"));
  EXPECT_FALSE(glob_match("spans.*.total_us", "spans.routing.max_us"));
  EXPECT_TRUE(glob_match("counters.routing.delivered", "counters.routing.delivered"));
  EXPECT_FALSE(glob_match("counters.routing", "counters.routing.delivered"));
  EXPECT_TRUE(glob_match("*.p50", "histograms.latency.p50"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("*", ""));
}

TEST(ThresholdsTest, FirstMatchingRuleWinsWithFallback) {
  Thresholds t = Thresholds::parse(json::Value::parse(R"({
    "default": {"warn_rel": 0, "fail_rel": 0},
    "rules": [
      {"match": "spans.special.*", "ignore": true},
      {"match": "spans.*", "warn_rel": 0.25, "fail_rel": 3.0}
    ]})"));
  EXPECT_TRUE(t.rule_for("spans.special.total_us").ignore);
  EXPECT_FALSE(t.rule_for("spans.other.total_us").ignore);
  EXPECT_EQ(t.rule_for("spans.other.total_us").warn_rel, 0.25);
  EXPECT_EQ(t.rule_for("counters.x").warn_rel, 0.0);
}

TEST(ThresholdsTest, RejectsUnknownRuleKeysAndInvertedBounds) {
  EXPECT_THROW(Thresholds::parse(json::Value::parse(R"({"rules": [{"oops": 1}]})")),
               InvalidArgument);
  EXPECT_THROW(
      Thresholds::parse(json::Value::parse(R"({"rules": [{"warn_rel": 1, "fail_rel": 0.5}]})")),
      InvalidArgument);
}

TEST(ClassifyTest, PassWarnFailBands) {
  ThresholdRule rule;
  rule.warn_rel = 0.10;
  rule.fail_rel = 0.50;
  const auto delta_with_rel = [](double rel) {
    MetricDelta d;
    d.before = 100.0;
    d.after = 100.0 * (1.0 + rel);
    d.abs_delta = d.after - d.before;
    d.rel_delta = rel;
    return d;
  };
  EXPECT_EQ(classify(delta_with_rel(0.05), rule), Severity::kPass);
  EXPECT_EQ(classify(delta_with_rel(-0.10), rule), Severity::kPass);
  EXPECT_EQ(classify(delta_with_rel(0.25), rule), Severity::kWarn);
  EXPECT_EQ(classify(delta_with_rel(-1.0), rule), Severity::kFail);
}

TEST(ClassifyTest, AbsoluteToleranceExcusesSmallDeltas) {
  ThresholdRule rule;  // warn_rel = fail_rel = 0: exact match required...
  rule.abs_tol = 5.0;  // ...except within the absolute noise floor.
  MetricDelta d;
  d.before = 1.0;
  d.after = 4.0;
  d.abs_delta = 3.0;
  d.rel_delta = 3.0;
  EXPECT_EQ(classify(d, rule), Severity::kPass);
  d.after = 7.0;
  d.abs_delta = 6.0;
  d.rel_delta = 6.0;
  EXPECT_EQ(classify(d, rule), Severity::kFail);
}

TEST(ClassifyTest, InfiniteRelativeDeltaOnlyExcusedByAbsTol) {
  MetricDelta d;
  d.before = 0.0;
  d.after = 1.0;
  d.abs_delta = 1.0;
  d.rel_delta = std::numeric_limits<double>::infinity();
  ThresholdRule loose;
  loose.warn_rel = 10.0;
  loose.fail_rel = 100.0;  // any finite rel tolerance must not excuse it
  EXPECT_EQ(classify(d, loose), Severity::kFail);
  loose.abs_tol = 1.0;
  EXPECT_EQ(classify(d, loose), Severity::kPass);
}

TEST(CheckDiffTest, CountsSeveritiesAndMissingKeys) {
  std::string text_b = report_text(110, 0.5, 1.0);
  text_b.replace(text_b.find("\"area\": 4096"), 12, "\"area2\": 4096");
  const ReportDiff diff = diff_reports(make_report(100, 0.5, 1.0), RunReport::parse(text_b));

  Thresholds exact;  // default-constructed: everything must match exactly
  const CheckResult strict = check_diff(diff, exact);
  EXPECT_FALSE(strict.ok());
  // counter moved 10% (fail) + artifact_stats.area vanished (fail).
  EXPECT_EQ(strict.num_fail, 2);
  ASSERT_EQ(strict.missing_in_b.size(), 1u);
  EXPECT_EQ(strict.missing_in_b[0], "artifact_stats.area");
  ASSERT_EQ(strict.new_in_b.size(), 1u);
  EXPECT_EQ(strict.new_in_b[0], "artifact_stats.area2");
  EXPECT_EQ(strict.num_warn, 1);

  Thresholds loose = Thresholds::parse(json::Value::parse(
      R"({"default": {"warn_rel": 0.25, "fail_rel": 1.0},
          "rules": [{"match": "artifact_stats.area*", "ignore": true}]})"));
  const CheckResult relaxed = check_diff(diff, loose);
  EXPECT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.num_fail, 0);
  EXPECT_TRUE(relaxed.missing_in_b.empty());  // ignored keys drop out entirely
}

TEST(CheckDiffTest, AbsentHistogramWarnsInsteadOfFailing) {
  // A candidate with no histograms at all — what a full checkpoint replay
  // produces (no per-event observations re-recorded).  The baseline's
  // histogram keys must surface as a typed warn, not silence and not FAIL.
  std::string text_b = report_text(100, 0.5, 1.0);
  const std::string hist =
      R"("histograms": {"latency": {"bounds": [1, 2, 4], "counts": [2, 3, 5, 0], "count": 10, "sum": 20}})";
  const std::size_t pos = text_b.find(hist);
  ASSERT_NE(pos, std::string::npos);
  text_b.replace(pos, hist.size(), R"("histograms": {})");
  const ReportDiff diff = diff_reports(make_report(100, 0.5, 1.0), RunReport::parse(text_b));

  Thresholds exact;  // default-constructed: everything must match exactly
  const CheckResult result = check_diff(diff, exact);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.num_fail, 0);
  EXPECT_TRUE(result.missing_in_b.empty());
  // latency.count plus the p50/p95/p99 percentile keys, all typed warns.
  EXPECT_EQ(result.histograms_absent_in_b.size(), 4u);
  EXPECT_EQ(result.num_warn, 4);

  // The markdown table renders the same verdict.
  const std::string md = render_diff_markdown(diff, &exact);
  EXPECT_NE(md.find("| histograms.latency.count | present | missing | | | WARN |"),
            std::string::npos);

  // Degrading (partial candidate) keeps them as warnings, tallied once.
  const CheckResult degraded = degrade_failures_to_warnings(check_diff(diff, exact));
  EXPECT_EQ(degraded.num_fail, 0);
  EXPECT_EQ(degraded.num_warn, 4);

  // An ignore rule still drops them entirely.
  const Thresholds ignoring = Thresholds::parse(json::Value::parse(
      R"({"rules": [{"match": "histograms.*", "ignore": true}]})"));
  EXPECT_TRUE(check_diff(diff, ignoring).histograms_absent_in_b.empty());
}

// --- rendering ---------------------------------------------------------------

TEST(RenderDiffTest, MarkdownTableContainsPercentileRowsAndStatuses) {
  const ReportDiff diff = diff_reports(make_report(100, 0.5, 10.0), make_report(110, 0.5, 10.0));
  const std::string plain = render_diff_markdown(diff);
  EXPECT_NE(plain.find("histograms.latency.p50"), std::string::npos);
  EXPECT_NE(plain.find("histograms.latency.p95"), std::string::npos);
  EXPECT_NE(plain.find("histograms.latency.p99"), std::string::npos);
  EXPECT_NE(plain.find("| counters.routing.delivered | 100 | 110 | 10 | +10.00% |"),
            std::string::npos);
  EXPECT_EQ(plain.find("status"), std::string::npos);

  Thresholds exact;
  const std::string gated = render_diff_markdown(diff, &exact);
  EXPECT_NE(gated.find("FAIL"), std::string::npos);
}

// --- JSON parser edge cases the analytics layer leans on ---------------------

TEST(JsonEdgeCaseTest, DuplicateKeysLastValueWins) {
  const json::Value v = json::Value::parse(R"({"a": 1, "b": 2, "a": 3})");
  EXPECT_EQ(v.at("a").as_double(), 3.0);
  EXPECT_EQ(v.size(), 2u);           // "a" is stored once...
  EXPECT_EQ(v.members()[0].first, "a");  // ...at its first-seen position.
}

TEST(JsonEdgeCaseTest, DeepNestingIsBounded) {
  std::string deep;
  for (int i = 0; i < 500; ++i) deep += '[';
  for (int i = 0; i < 500; ++i) deep += ']';
  EXPECT_THROW(json::Value::parse(deep), InvalidArgument);

  std::string ok;
  for (int i = 0; i < 100; ++i) ok += '[';
  for (int i = 0; i < 100; ++i) ok += ']';
  EXPECT_NO_THROW(json::Value::parse(ok));
}

TEST(JsonEdgeCaseTest, NumbersBeyondDoubleRangeAreRejected) {
  EXPECT_THROW(json::Value::parse("1e999"), InvalidArgument);
  EXPECT_THROW(json::Value::parse("-1e999"), InvalidArgument);
  // Values that round to the double extremes still parse.
  EXPECT_NO_THROW(json::Value::parse("1.7976931348623157e308"));
  EXPECT_NO_THROW(json::Value::parse("1e-999"));  // underflows to 0.0, not an error
}

}  // namespace
}  // namespace bfly::obs
