// bfly::fault: fault injection, the budgeted fault-tolerant router, and the
// degradation / packaging-robustness analyses.
//
// The two load-bearing contracts checked here:
//   * Determinism — every instrument is bitwise reproducible per seed across
//     thread counts, and with an empty FaultSet the fault-aware census and
//     simulator reproduce their pristine counterparts bit for bit.
//   * Soundness — the budgeted router never "delivers" a packet the
//     exhaustive BFS oracle says is unreachable, and every oracle-unreachable
//     pair is dropped (exhaustively cross-checked at small n).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/degradation.hpp"
#include "fault/fault_routing.hpp"
#include "fault/fault_set.hpp"
#include "fault/reference_fault_sim.hpp"
#include "layout/butterfly_layout.hpp"
#include "layout/render.hpp"
#include "packaging/hierarchical.hpp"
#include "routing/routing.hpp"

namespace bfly {
namespace {

// --- FaultSet ---------------------------------------------------------------

TEST(FaultSet, StartsAllAlive) {
  const FaultSet f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.num_dead_links(), 0u);
  EXPECT_EQ(f.num_dead_nodes(), 0u);
  EXPECT_EQ(f.num_links(), 4u * 16u * 2u);
  EXPECT_EQ(f.num_nodes(), 5u * 16u);
  EXPECT_TRUE(f.link_alive(3, 2, true));
  EXPECT_TRUE(f.node_alive(15, 4));
}

TEST(FaultSet, FailLinkIsIdempotent) {
  FaultSet f(3);
  f.fail_link(2, 1, false);
  f.fail_link(2, 1, false);
  EXPECT_EQ(f.num_dead_links(), 1u);
  EXPECT_FALSE(f.link_alive(2, 1, false));
  EXPECT_TRUE(f.link_alive(2, 1, true));
  EXPECT_FALSE(f.empty());
}

TEST(FaultSet, FailNodeInducesIncidentLinkFaults) {
  // An interior node (row 0, stage 1) of B_3 has two outgoing links and two
  // incoming: straight from (0, 0) and cross from (0 ^ 1, 0).
  FaultSet f(3);
  f.fail_node(0, 1);
  EXPECT_EQ(f.num_dead_nodes(), 1u);
  EXPECT_FALSE(f.node_alive(0, 1));
  EXPECT_FALSE(f.link_alive(0, 1, false));
  EXPECT_FALSE(f.link_alive(0, 1, true));
  EXPECT_FALSE(f.link_alive(0, 0, false));
  EXPECT_FALSE(f.link_alive(1, 0, true));
  EXPECT_EQ(f.num_dead_links(), 4u);
  // Boundary nodes only have links on one side.
  FaultSet g(3);
  g.fail_node(5, 0);
  EXPECT_EQ(g.num_dead_links(), 2u);
  FaultSet h(3);
  h.fail_node(5, 3);
  EXPECT_EQ(h.num_dead_links(), 2u);
}

TEST(FaultSet, RejectsOutOfRange) {
  EXPECT_THROW(FaultSet(0), InvalidArgument);
  EXPECT_THROW(FaultSet(31), InvalidArgument);
  FaultSet f(3);
  EXPECT_THROW(f.fail_link(8, 0, false), InvalidArgument);
  EXPECT_THROW(f.fail_node(0, 4), InvalidArgument);
  EXPECT_THROW((void)f.link_alive(0, 3, false), InvalidArgument);
}

TEST(FaultSet, RandomLinksIsDeterministicAndRateFaithful) {
  const FaultSet a = FaultSet::random_links(6, 0.1, 77);
  const FaultSet b = FaultSet::random_links(6, 0.1, 77);
  EXPECT_EQ(a.num_dead_links(), b.num_dead_links());
  for (u64 link = 0; link < a.num_links(); ++link) {
    ASSERT_EQ(a.link_alive_index(link), b.link_alive_index(link)) << link;
  }
  EXPECT_TRUE(FaultSet::random_links(6, 0.0, 77).empty());
  EXPECT_EQ(FaultSet::random_links(6, 1.0, 77).num_dead_links(), a.num_links());
  // ~10% of 768 links, within generous Monte-Carlo slack.
  EXPECT_GT(a.num_dead_links(), 30u);
  EXPECT_LT(a.num_dead_links(), 140u);
  const FaultSet c = FaultSet::random_links(6, 0.1, 78);
  EXPECT_TRUE(a.num_dead_links() != c.num_dead_links() || [&] {
    for (u64 link = 0; link < a.num_links(); ++link) {
      if (a.link_alive_index(link) != c.link_alive_index(link)) return true;
    }
    return false;
  }());
}

TEST(FaultSet, RandomNodesInducesLinks) {
  const FaultSet f = FaultSet::random_nodes(5, 0.05, 3);
  EXPECT_GT(f.num_dead_nodes(), 0u);
  EXPECT_GT(f.num_dead_links(), f.num_dead_nodes());  // >= 2 links per node
  EXPECT_TRUE(FaultSet::random_nodes(5, 0.0, 3).empty());
}

// --- route_packet -----------------------------------------------------------

TEST(RoutePacket, PristineFabricBitFixes) {
  const FaultSet f(4);
  std::vector<u64> path;
  const RouteResult r = route_packet(4, f, {}, 3, 12, &path);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 4);
  EXPECT_EQ(r.misroutes, 0);
  EXPECT_EQ(r.wraps, 0);
  EXPECT_EQ(path.size(), 4u);
}

TEST(RoutePacket, MisroutesAroundADeadLinkThenWraps) {
  // 0 -> 0 in B_3 wants straight everywhere; killing straight (0, 0) forces
  // one deflection onto row 1, and the packet fixes bit 0 on a second pass.
  FaultSet f(3);
  f.fail_link(0, 0, false);
  const RouteResult r = route_packet(3, f, {}, 0, 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.misroutes, 1);
  EXPECT_EQ(r.wraps, 1);
  EXPECT_EQ(r.hops, 6);
}

TEST(RoutePacket, DropReasons) {
  {  // No misroute budget: the deflection above is not allowed.
    FaultSet f(3);
    f.fail_link(0, 0, false);
    const RouteResult r = route_packet(3, f, {.misroute_budget = 0, .wrap_budget = 2}, 0, 0);
    EXPECT_FALSE(r.delivered);
    EXPECT_EQ(r.reason, DropReason::kBudgetExhausted);
  }
  {  // No wrap budget: the packet reaches stage n on the wrong row.
    FaultSet f(3);
    f.fail_link(0, 0, false);
    const RouteResult r = route_packet(3, f, {.misroute_budget = 8, .wrap_budget = 0}, 0, 0);
    EXPECT_FALSE(r.delivered);
    EXPECT_EQ(r.reason, DropReason::kBudgetExhausted);
  }
  {  // Both forward links dead at the source.
    FaultSet f(3);
    f.fail_link(0, 0, false);
    f.fail_link(0, 0, true);
    const RouteResult r = route_packet(3, f, {}, 0, 5);
    EXPECT_FALSE(r.delivered);
    EXPECT_EQ(r.reason, DropReason::kNoAliveLink);
  }
  {  // Dead source / destination switch.
    FaultSet f(3);
    f.fail_node(0, 0);
    EXPECT_EQ(route_packet(3, f, {}, 0, 5).reason, DropReason::kEndpointDead);
    FaultSet g(3);
    g.fail_node(5, 3);
    EXPECT_EQ(route_packet(3, g, {}, 0, 5).reason, DropReason::kEndpointDead);
  }
}

// --- BFS oracle cross-check -------------------------------------------------

TEST(Oracle, PristineFabricReachesEverything) {
  const FaultSet f(4);
  for (u64 src = 0; src < 16; ++src) {
    const std::vector<std::uint8_t> out = reachable_destinations(4, f, src);
    EXPECT_EQ(std::count(out.begin(), out.end(), 1), 16);
  }
  EXPECT_DOUBLE_EQ(exact_reachability(4, f), 1.0);
}

// The budgeted router against the exhaustive oracle, over every (src, dst)
// pair of small faulted fabrics: delivered implies reachable, and (with a
// generous budget) unreachable implies dropped for a terminal reason.
TEST(Oracle, RouterNeverBeatsTheOracle) {
  const FaultRoutingOptions generous{.misroute_budget = 32, .wrap_budget = 8};
  for (const int n : {3, 4, 5}) {
    const u64 rows = pow2(n);
    for (const double rate : {0.05, 0.15, 0.3}) {
      for (const u64 seed : {1ull, 2ull, 3ull}) {
        const FaultSet faults = FaultSet::random_links(n, rate, seed);
        for (u64 src = 0; src < rows; ++src) {
          const std::vector<std::uint8_t> reach = reachable_destinations(n, faults, src);
          for (u64 dst = 0; dst < rows; ++dst) {
            const RouteResult r = route_packet(n, faults, generous, src, dst);
            if (r.delivered) {
              EXPECT_TRUE(reach[dst])
                  << "router delivered an oracle-unreachable packet: n=" << n
                  << " rate=" << rate << " seed=" << seed << " " << src << "->" << dst;
            }
            if (!reach[dst]) {
              EXPECT_FALSE(r.delivered);
            }
          }
        }
      }
    }
  }
}

TEST(Oracle, ExactReachabilityMatchesPerSourceCounts) {
  const FaultSet faults = FaultSet::random_links(4, 0.2, 9);
  u64 reachable = 0;
  for (u64 src = 0; src < 16; ++src) {
    const std::vector<std::uint8_t> out = reachable_destinations(4, faults, src);
    reachable += static_cast<u64>(std::count(out.begin(), out.end(), 1));
  }
  EXPECT_DOUBLE_EQ(exact_reachability(4, faults), static_cast<double>(reachable) / 256.0);
}

// --- fault-aware census -----------------------------------------------------

TEST(FaultCensus, EmptyFaultSetReproducesPristineCensusBitwise) {
  const int n = 6;
  const u64 packets = 200000;
  const u64 seed = 42;
  const LoadCensus pristine = measure_link_loads(n, packets, seed, 0, /*keep_link_loads=*/true);
  const FaultSet none(n);
  const FaultLoadCensus faulty =
      measure_link_loads_faulty(n, packets, seed, none, {}, 0, /*keep_link_loads=*/true);
  EXPECT_EQ(faulty.census.packets, pristine.packets);
  EXPECT_EQ(faulty.census.max_link_load, pristine.max_link_load);
  EXPECT_DOUBLE_EQ(faulty.census.avg_link_load, pristine.avg_link_load);
  EXPECT_DOUBLE_EQ(faulty.census.imbalance, pristine.imbalance);
  EXPECT_DOUBLE_EQ(faulty.census.avg_distance, pristine.avg_distance);
  ASSERT_EQ(faulty.census.link_loads.size(), pristine.link_loads.size());
  EXPECT_EQ(faulty.census.link_loads, pristine.link_loads);
  EXPECT_EQ(faulty.tally.delivered, packets);
  EXPECT_EQ(faulty.tally.total_dropped(), 0u);
  EXPECT_EQ(faulty.tally.misroutes, 0u);
  EXPECT_EQ(faulty.tally.wraps, 0u);
  EXPECT_DOUBLE_EQ(faulty.delivered_fraction, 1.0);
}

TEST(FaultCensus, BitwiseDeterministicAcrossThreadCounts) {
  const int n = 6;
  const FaultSet faults = FaultSet::random_links(n, 0.05, 21);
  const FaultLoadCensus one =
      measure_link_loads_faulty(n, 300000, 7, faults, {}, 1, /*keep_link_loads=*/true);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    const FaultLoadCensus other =
        measure_link_loads_faulty(n, 300000, 7, faults, {}, threads, /*keep_link_loads=*/true);
    EXPECT_EQ(one.census.link_loads, other.census.link_loads) << threads;
    EXPECT_EQ(one.census.max_link_load, other.census.max_link_load) << threads;
    EXPECT_DOUBLE_EQ(one.census.avg_distance, other.census.avg_distance) << threads;
    EXPECT_EQ(one.tally.delivered, other.tally.delivered) << threads;
    EXPECT_EQ(one.tally.dropped, other.tally.dropped) << threads;
    EXPECT_EQ(one.tally.misroutes, other.tally.misroutes) << threads;
    EXPECT_EQ(one.tally.wraps, other.tally.wraps) << threads;
  }
  // Faults actually bit: something was deflected or dropped.
  EXPECT_GT(one.tally.misroutes + one.tally.total_dropped(), 0u);
  EXPECT_LT(one.delivered_fraction, 1.0 + 1e-12);
}

TEST(FaultCensus, SeveredStageZeroDropsEverything) {
  const int n = 4;
  FaultSet faults(n);
  for (u64 row = 0; row < pow2(n); ++row) {
    faults.fail_link(row, 0, false);
    faults.fail_link(row, 0, true);
  }
  const FaultLoadCensus census = measure_link_loads_faulty(n, 50000, 5, faults);
  EXPECT_EQ(census.tally.delivered, 0u);
  EXPECT_EQ(census.tally.dropped[drop_index(DropReason::kNoAliveLink)], 50000u);
  EXPECT_DOUBLE_EQ(census.delivered_fraction, 0.0);
}

// --- fault-aware saturation simulation --------------------------------------

TEST(FaultSaturation, EmptyFaultSetReproducesPristineSimulatorBitwise) {
  const int n = 5;
  const SaturationPoint pristine = simulate_saturation(n, 0.3, 1500, 9, 200);
  const FaultSet none(n);
  const FaultSaturationPoint faulty = simulate_saturation_faulty(n, 0.3, 1500, 9, none, {}, 200);
  EXPECT_DOUBLE_EQ(faulty.point.offered_load, pristine.offered_load);
  EXPECT_DOUBLE_EQ(faulty.point.throughput, pristine.throughput);
  EXPECT_DOUBLE_EQ(faulty.point.avg_latency, pristine.avg_latency);
  EXPECT_DOUBLE_EQ(faulty.point.per_node_injection, pristine.per_node_injection);
  EXPECT_EQ(faulty.point.delivered, pristine.delivered);
  EXPECT_EQ(faulty.point.max_queue, pristine.max_queue);
  EXPECT_EQ(faulty.point.dropped_queue_full, 0u);
  EXPECT_EQ(faulty.tally.total_dropped(), 0u);
  EXPECT_EQ(faulty.tally.misroutes, 0u);
  EXPECT_EQ(faulty.tally.wraps, 0u);
}

TEST(FaultSaturation, DeterministicAndDegradedUnderFaults) {
  const int n = 6;
  const FaultSet faults = FaultSet::random_links(n, 0.05, 13);
  const FaultSaturationPoint a = simulate_saturation_faulty(n, 0.5, 1500, 9, faults, {}, 200);
  const FaultSaturationPoint b = simulate_saturation_faulty(n, 0.5, 1500, 9, faults, {}, 200);
  EXPECT_DOUBLE_EQ(a.point.throughput, b.point.throughput);
  EXPECT_DOUBLE_EQ(a.point.avg_latency, b.point.avg_latency);
  EXPECT_EQ(a.point.delivered, b.point.delivered);
  EXPECT_EQ(a.tally.dropped, b.tally.dropped);
  EXPECT_EQ(a.tally.misroutes, b.tally.misroutes);
  EXPECT_EQ(a.tally.wraps, b.tally.wraps);
  // 5% dead links must cost something relative to the pristine fabric.
  const SaturationPoint pristine = simulate_saturation(n, 0.5, 1500, 9, 200);
  EXPECT_GT(a.tally.total_dropped() + a.tally.misroutes, 0u);
  EXPECT_LE(a.point.throughput, pristine.throughput + 1e-9);
  EXPECT_GT(a.point.delivered, 0u);
}

TEST(FaultSaturation, BoundedQueuesMatchPristineBoundedMode) {
  // With no faults, the fault-aware simulator's bounded-queue mode must agree
  // with simulate_saturation's: same streams, same drops, same stats.
  const int n = 5;
  const u64 capacity = 2;
  const SaturationPoint pristine = simulate_saturation(n, 0.95, 800, 3, 100, capacity);
  const FaultSet none(n);
  const FaultSaturationPoint faulty =
      simulate_saturation_faulty(n, 0.95, 800, 3, none, {}, 100, capacity);
  EXPECT_DOUBLE_EQ(faulty.point.throughput, pristine.throughput);
  EXPECT_DOUBLE_EQ(faulty.point.avg_latency, pristine.avg_latency);
  EXPECT_EQ(faulty.point.delivered, pristine.delivered);
  EXPECT_EQ(faulty.point.max_queue, pristine.max_queue);
  EXPECT_EQ(faulty.point.dropped_queue_full, pristine.dropped_queue_full);
  EXPECT_EQ(faulty.tally.dropped[drop_index(DropReason::kQueueFull)],
            pristine.dropped_queue_full);
  EXPECT_GT(pristine.dropped_queue_full, 0u);
  EXPECT_LE(pristine.max_queue, capacity);
}

TEST(FaultSaturation, ArenaMatchesReferenceBitwise) {
  // The tentpole contract for the faulty engine: the flat-arena FIFOs (with
  // misroute/wrap budget lanes) replicate the seed deque simulator bit for
  // bit — every SaturationPoint field and every FaultTally counter — across
  // seeds, fault rates, and both unbounded and bounded-queue modes.
  const int n = 5;
  for (const u64 seed : {u64{3}, u64{9}, u64{2026}}) {
    for (const double rate : {0.0, 0.02, 0.08}) {
      for (const u64 capacity : {u64{0}, u64{3}}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " rate=" << rate << " capacity=" << capacity);
        const FaultSet faults = FaultSet::random_links(n, rate, seed + 100);
        const FaultSaturationPoint ref = simulate_saturation_faulty_reference(
            n, 0.6, 800, seed, faults, {}, 100, capacity);
        const FaultSaturationPoint arena =
            simulate_saturation_faulty(n, 0.6, 800, seed, faults, {}, 100, capacity);
        EXPECT_DOUBLE_EQ(arena.point.offered_load, ref.point.offered_load);
        EXPECT_DOUBLE_EQ(arena.point.throughput, ref.point.throughput);
        EXPECT_DOUBLE_EQ(arena.point.avg_latency, ref.point.avg_latency);
        EXPECT_DOUBLE_EQ(arena.point.per_node_injection, ref.point.per_node_injection);
        EXPECT_EQ(arena.point.delivered, ref.point.delivered);
        EXPECT_EQ(arena.point.max_queue, ref.point.max_queue);
        EXPECT_EQ(arena.point.dropped_queue_full, ref.point.dropped_queue_full);
        EXPECT_EQ(arena.tally.delivered, ref.tally.delivered);
        EXPECT_EQ(arena.tally.dropped, ref.tally.dropped);
        EXPECT_EQ(arena.tally.misroutes, ref.tally.misroutes);
        EXPECT_EQ(arena.tally.wraps, ref.tally.wraps);
      }
    }
  }
}

// --- input validation -------------------------------------------------------

TEST(FaultValidation, RejectsOutOfRangeDimension) {
  const FaultSet f(3);
  EXPECT_THROW(measure_link_loads_faulty(0, 100, 1, f), InvalidArgument);
  EXPECT_THROW(measure_link_loads_faulty(31, 100, 1, f), InvalidArgument);
  EXPECT_THROW(simulate_saturation_faulty(0, 0.5, 100, 1, f), InvalidArgument);
  // Dimension mismatch between n and the fault set.
  EXPECT_THROW(measure_link_loads_faulty(4, 100, 1, f), InvalidArgument);
  EXPECT_THROW(simulate_saturation_faulty(4, 0.5, 100, 1, f), InvalidArgument);
  EXPECT_THROW(route_packet(4, f, {}, 0, 1), InvalidArgument);
}

TEST(FaultValidation, DegradationRejectsBadBudgetsAndRates) {
  DegradationOptions options;
  options.routing.misroute_budget = -1;
  EXPECT_THROW(degradation_sweep(4, std::vector<double>{0.1}, 1, options), InvalidArgument);
  options.routing.misroute_budget = 8;
  options.routing.wrap_budget = -2;
  EXPECT_THROW(degradation_sweep(4, std::vector<double>{0.1}, 1, options), InvalidArgument);
  options.routing.wrap_budget = 2;
  // Bad rates are rejected up front with the offending index in the message.
  const std::vector<double> nan_rate = {0.1, std::nan("")};
  try {
    degradation_sweep(4, nan_rate, 1, options);
    FAIL() << "NaN rate accepted";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("rate 1"), std::string::npos) << e.what();
  }
  EXPECT_THROW(degradation_sweep(4, std::vector<double>{-0.1}, 1, options), InvalidArgument);
  EXPECT_THROW(degradation_sweep(4, std::vector<double>{1.5}, 1, options), InvalidArgument);
}

// --- degradation curve ------------------------------------------------------

TEST(Degradation, CurveIsPristineAtRateZeroAndDegrades) {
  DegradationOptions options;
  options.census_packets = 50000;
  options.sim_cycles = 800;
  options.sim_warmup = 100;
  const std::vector<double> rates = {0.0, 0.1, 0.3};
  const std::vector<DegradationPoint> curve = degradation_curve(5, rates, 77, options);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].dead_links, 0u);
  EXPECT_DOUBLE_EQ(curve[0].reachability, 1.0);
  EXPECT_TRUE(curve[0].reachability_exact);
  EXPECT_DOUBLE_EQ(curve[0].delivered_fraction, 1.0);
  EXPECT_GT(curve[0].throughput, 0.0);
  EXPECT_GT(curve[2].dead_links, curve[1].dead_links);
  EXPECT_LT(curve[2].reachability, curve[0].reachability);
  EXPECT_LT(curve[2].delivered_fraction, 1.0);
  // Deterministic: same seed, same curve.
  const std::vector<DegradationPoint> again = degradation_curve(5, rates, 77, options);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i].reachability, again[i].reachability) << i;
    EXPECT_DOUBLE_EQ(curve[i].delivered_fraction, again[i].delivered_fraction) << i;
    EXPECT_DOUBLE_EQ(curve[i].throughput, again[i].throughput) << i;
    EXPECT_EQ(curve[i].misroutes, again[i].misroutes) << i;
  }
}

// --- packaging robustness ---------------------------------------------------

TEST(ChipFault, Section5ExampleLosesOneChipOfNodes) {
  const HierarchicalPlan plan = plan_hierarchical(9, {});
  ASSERT_EQ(plan.num_chips, 64u);
  const ChipFaultImpact impact = analyze_chip_fault(plan, 0, /*with_reachability=*/true);
  EXPECT_EQ(impact.nodes_lost, plan.nodes_per_chip);
  EXPECT_EQ(impact.nodes_lost, 80u);
  EXPECT_GE(impact.rows_touched, pow2(plan.rows_log2));
  EXPECT_LE(impact.dead_offmodule_links, plan.offchip_links_per_chip);
  EXPECT_GT(impact.dead_offmodule_links, 0u);
  EXPECT_LT(impact.reachability, 1.0);
  EXPECT_GT(impact.reachability, 0.5);  // one chip of 64 must not sever most pairs
  EXPECT_THROW(analyze_chip_fault(plan, plan.num_chips, false), InvalidArgument);
}

TEST(ChipFault, SpareChipSweepBoundsMatchThePlan) {
  const HierarchicalPlan plan = plan_hierarchical(9, {});
  const SpareChipSummary summary = spare_chip_sensitivity(plan);
  EXPECT_EQ(summary.num_chips, plan.num_chips);
  EXPECT_EQ(summary.nodes_per_chip, plan.nodes_per_chip);
  // offchip_links_per_chip is the plan's exact per-chip maximum, so the sweep
  // must find the same extreme.
  EXPECT_EQ(summary.max_dead_offmodule_links, plan.offchip_links_per_chip);
  EXPECT_LE(summary.min_dead_offmodule_links, summary.max_dead_offmodule_links);
  EXPECT_GT(summary.worst_reachability, 0.0);
  EXPECT_LE(summary.worst_reachability, summary.best_reachability);
  EXPECT_LT(summary.best_reachability, 1.0);
  EXPECT_LT(summary.worst_chip, plan.num_chips);
}

// --- dead-link rendering ----------------------------------------------------

TEST(Render, DeadWiresAreDashedGray) {
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(3));
  const Layout layout = plan.materialize();
  ASSERT_GT(layout.wires().size(), 0u);
  RenderOptions options;
  std::vector<bool> dead(layout.wires().size(), false);
  dead[0] = true;
  options.wire_dead = &dead;
  const std::string svg = render_svg(layout, options);
  EXPECT_NE(svg.find("stroke-dasharray=\"5 4\""), std::string::npos);
  EXPECT_NE(svg.find("#9e9e9e"), std::string::npos);
  // Without the overlay no wire is dashed.
  const std::string clean = render_svg(layout, {});
  EXPECT_EQ(clean.find("stroke-dasharray"), std::string::npos);
}

}  // namespace
}  // namespace bfly
