// Geometry container, wire builder, and track assignment.
#include <gtest/gtest.h>

#include "layout/layout.hpp"
#include "layout/track_assign.hpp"

namespace bfly {
namespace {

TEST(Geometry, RectBasics) {
  const Rect r = Rect::square(2, 3, 4);
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 16);
  EXPECT_TRUE(r.contains({2, 3}));
  EXPECT_TRUE(r.contains({5, 6}));
  EXPECT_FALSE(r.contains({6, 6}));
  EXPECT_FALSE(Rect{}.contains({0, 0}));
}

TEST(Geometry, RectIntersectsAndUnites) {
  const Rect a{0, 0, 3, 3};
  const Rect b{3, 3, 5, 5};
  const Rect c{4, 0, 6, 2};
  EXPECT_TRUE(a.intersects(b));  // closed rects share (3,3)
  EXPECT_FALSE(a.intersects(c));
  const Rect u = a.united(c);
  EXPECT_EQ(u, (Rect{0, 0, 6, 3}));
  EXPECT_EQ(Rect{}.united(a), a);
}

TEST(Geometry, IntervalBasics) {
  const Interval iv{2, 5};
  EXPECT_EQ(iv.length(), 4);
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains(6));
  EXPECT_TRUE(iv.overlaps({5, 9}));
  EXPECT_FALSE(iv.overlaps({6, 9}));
  EXPECT_EQ(make_interval(7, 3), (Interval{3, 7}));
}

TEST(Wire, LengthAndBbox) {
  const Wire w = WireBuilder(Point{0, 0}).to_y(5, 1).to_x(3, 2).to_y(2, 1).build();
  EXPECT_EQ(w.length(), 5 + 3 + 3);
  EXPECT_EQ(w.bbox(), (Rect{0, 0, 3, 5}));
  EXPECT_EQ(w.num_segments(), 3u);
}

TEST(Wire, BuilderSkipsNoopMoves) {
  const Wire w = WireBuilder(Point{0, 0}).to_x(0, 2).to_y(4, 1).to_y(4, 1).to_x(2, 2).build();
  EXPECT_EQ(w.num_segments(), 2u);
}

TEST(Wire, BuilderRequiresSegment) {
  EXPECT_THROW(WireBuilder(Point{1, 1}).build(), InvalidArgument);
}

TEST(Layout, NodeAndWireAccounting) {
  Layout layout;
  layout.add_node(7, Rect::square(0, 0, 4));
  layout.add_node(9, Rect::square(10, 0, 4));
  layout.add_wire(WireBuilder(Point{3, 1}).from(7).to_y(6, 1).to_x(10, 2).to_y(1, 1).to(9).build());
  EXPECT_TRUE(layout.has_node(7));
  EXPECT_FALSE(layout.has_node(8));
  EXPECT_EQ(layout.node(9).rect.x0, 10);

  const LayoutMetrics m = layout.metrics();
  EXPECT_EQ(m.num_nodes, 2u);
  EXPECT_EQ(m.num_wires, 1u);
  EXPECT_EQ(m.width, 14);
  EXPECT_EQ(m.height, 7);
  EXPECT_EQ(m.area, 98);
  EXPECT_EQ(m.max_wire_length, 5 + 7 + 5);
  EXPECT_EQ(m.num_layers, 2);
  EXPECT_EQ(m.volume, 2 * 98);
}

TEST(Layout, RejectsMalformedWires) {
  Layout layout;
  Wire diagonal;
  diagonal.points = {{0, 0}, {1, 1}};
  diagonal.layers = {1};
  EXPECT_THROW(layout.add_wire(std::move(diagonal)), InvalidArgument);

  Wire zero_len;
  zero_len.points = {{0, 0}, {0, 0}};
  zero_len.layers = {1};
  EXPECT_THROW(layout.add_wire(std::move(zero_len)), InvalidArgument);
}

TEST(Layout, RejectsDuplicateNodes) {
  Layout layout;
  layout.add_node(1, Rect::square(0, 0, 2));
  EXPECT_THROW(layout.add_node(1, Rect::square(5, 5, 2)), InvalidArgument);
}

TEST(TrackAssign, DisjointIntervalsShareTrack) {
  const std::vector<Interval> ivs{{0, 2}, {4, 6}, {8, 9}};
  const TrackAssignment t = assign_tracks_left_edge(ivs);
  EXPECT_EQ(t.num_tracks, 1u);
}

TEST(TrackAssign, TouchingIntervalsNeedDistinctTracks) {
  // Shared endpoints are shared grid points: not allowed in one track.
  const std::vector<Interval> ivs{{0, 4}, {4, 8}};
  const TrackAssignment t = assign_tracks_left_edge(ivs);
  EXPECT_EQ(t.num_tracks, 2u);
}

TEST(TrackAssign, MeetsCongestionLowerBound) {
  // Nested intervals: congestion = number of intervals.
  std::vector<Interval> ivs;
  for (i64 i = 0; i < 10; ++i) ivs.push_back({i, 19 - i});
  EXPECT_EQ(max_point_congestion(ivs), 10u);
  EXPECT_EQ(assign_tracks_left_edge(ivs).num_tracks, 10u);
}

TEST(TrackAssign, StaircasePacksTightly) {
  std::vector<Interval> ivs;
  for (i64 i = 0; i < 100; ++i) ivs.push_back({2 * i, 2 * i + 3});  // overlap depth 2
  const TrackAssignment t = assign_tracks_left_edge(ivs);
  EXPECT_EQ(t.num_tracks, 2u);
  // Verify assignment validity: same track => strictly disjoint.
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    for (std::size_t j = i + 1; j < ivs.size(); ++j) {
      if (t.track[i] == t.track[j]) {
        EXPECT_FALSE(ivs[i].overlaps(ivs[j]));
      }
    }
  }
}

TEST(TrackAssign, EmptyInput) {
  EXPECT_EQ(assign_tracks_left_edge(std::vector<Interval>{}).num_tracks, 0u);
  EXPECT_EQ(max_point_congestion(std::vector<Interval>{}), 0u);
}

}  // namespace
}  // namespace bfly
