// Stacked (multiple active layer) butterfly layouts -- Sec. 4.2's closing
// construction, grounded in the measured 2-D geometry.
#include <gtest/gtest.h>

#include "layout/butterfly_3d.hpp"

namespace bfly {
namespace {

TEST(Butterfly3D, BasicPlanShape) {
  const Butterfly3DPlan plan = plan_butterfly_3d({3, 3, 3, 2});
  EXPECT_EQ(plan.n, 11);
  EXPECT_EQ(plan.copies, 4u);
  EXPECT_EQ(plan.total_layers, 4 * 3);  // 4 copies x (1 active + 2 wiring)
  EXPECT_GT(plan.footprint_area, 0);
  EXPECT_EQ(plan.volume, plan.footprint_area * plan.total_layers);
  EXPECT_TRUE(plan.feedthroughs_fit);
}

TEST(Butterfly3D, StackingShrinksFootprint) {
  // Same total dimension, taller stack => smaller footprint.
  const Butterfly3DPlan flat = plan_butterfly_3d({4, 3, 3, 1});
  const Butterfly3DPlan tall = plan_butterfly_3d({3, 3, 2, 3});
  EXPECT_EQ(flat.n, tall.n);
  EXPECT_LT(tall.footprint_area, flat.footprint_area);
}

TEST(Butterfly3D, VolumeSweepHasInteriorOptimum) {
  // The paper: volume is minimized at an interior stack height (neither flat
  // nor maximally tall), trending toward L = Theta(sqrt(N)/log N).
  const auto sweep = volume_sweep(14);
  ASSERT_GE(sweep.size(), 3u);
  i64 best = sweep[0].second;
  int best_k4 = sweep[0].first;
  for (const auto& [k4, volume] : sweep) {
    if (volume < best) {
      best = volume;
      best_k4 = k4;
    }
  }
  EXPECT_GT(best_k4, sweep.front().first);
  EXPECT_LE(best, sweep.front().second);
}

TEST(Butterfly3D, MoreWiringLayersShrinkVolumeAtFixedStack) {
  Butterfly3DOptions l2;
  Butterfly3DOptions l4;
  l4.layers_per_copy = 4;
  const Butterfly3DPlan a = plan_butterfly_3d({3, 3, 3, 2}, l2);
  const Butterfly3DPlan b = plan_butterfly_3d({3, 3, 3, 2}, l4);
  // 4 wiring layers shrink the footprint by ~4x while adding only ~1.7x in
  // height: net volume reduction.
  EXPECT_LT(b.volume, a.volume);
}

TEST(Butterfly3D, RejectsBadShapes) {
  EXPECT_THROW(plan_butterfly_3d({3, 3, 3}), InvalidArgument);
  EXPECT_THROW(plan_butterfly_3d({2, 2, 2, 9}), InvalidArgument);  // k4 > n_3
}

}  // namespace
}  // namespace bfly
