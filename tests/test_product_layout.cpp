// Product-network grid layouts: tori / k-ary n-cubes, meshes, Hamming
// graphs, and hypercubes through one generator.
#include <gtest/gtest.h>

#include "layout/hypercube_layout.hpp"
#include "layout/legality.hpp"
#include <map>

#include "layout/product_layout.hpp"
#include "topology/basic_graphs.hpp"
#include "topology/complete_graph.hpp"
#include "topology/hypercube.hpp"

namespace bfly {
namespace {

TEST(BasicGraphs, PathCycleTorus) {
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_EQ(cycle_graph(5).num_edges(), 5u);
  const Graph t = torus_graph(4, 2);
  EXPECT_EQ(t.num_nodes(), 16u);
  EXPECT_EQ(t.num_edges(), 32u);  // 2 links per node per digit / 2
  const auto h = t.degree_histogram();
  EXPECT_EQ(h[4], 16u);  // 4-regular
  // k = 2 degenerates to the hypercube.
  EXPECT_TRUE(torus_graph(2, 3).same_as(Hypercube(3).graph()));
}

TEST(ProductLayout, RealizesTheProductGraph) {
  const ProductLayoutPlan plan(cycle_graph(4), cycle_graph(6));
  std::map<std::pair<u64, u64>, u64> got;
  plan.for_each_wire([&](Wire&& w) {
    u64 a = *w.from_node;
    u64 b = *w.to_node;
    if (a > b) std::swap(a, b);
    ++got[{a, b}];
  });
  std::map<std::pair<u64, u64>, u64> want;
  const Graph g = plan.product_graph();
  for (const auto& [a, b] : g.edges()) ++want[{a, b}];
  EXPECT_EQ(got, want);
  EXPECT_EQ(g.num_nodes(), 24u);
  EXPECT_EQ(g.num_edges(), 4u * 6 + 6u * 4);  // C4 x C6 torus
}

TEST(ProductLayout, HypercubeAsProductMatchesDedicatedPlan) {
  // Q_8 = Q_4 x Q_4: the generic product layout and the dedicated hypercube
  // plan wire the same graph (areas differ only via channel details).
  const ProductLayoutPlan generic(Hypercube(4).graph(), Hypercube(4).graph());
  EXPECT_TRUE(generic.product_graph().same_as(Hypercube(8).graph()));
  const HypercubeLayoutPlan dedicated(8);
  const double a1 = static_cast<double>(generic.metrics().area);
  const double a2 = static_cast<double>(dedicated.metrics().area);
  EXPECT_LT(std::abs(a1 - a2) / a2, 0.5);
}

class ProductLegality : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ProductLegality, TorusLayoutsAreLegal) {
  const auto [k, d_split, L] = GetParam();
  ProductLayoutOptions opt;
  opt.layers = L;
  const ProductLayoutPlan plan(torus_graph(static_cast<u64>(k), d_split),
                               torus_graph(static_cast<u64>(k), d_split), opt);
  const LegalityReport r = check_multilayer(plan.materialize());
  EXPECT_TRUE(r.ok) << r.summary();
  if (L == 2) {
    const LegalityReport t = check_thompson(plan.materialize());
    EXPECT_TRUE(t.ok) << t.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Tori, ProductLegality,
                         ::testing::Values(std::make_tuple(3, 1, 2), std::make_tuple(4, 1, 2),
                                           std::make_tuple(5, 1, 4), std::make_tuple(4, 2, 2),
                                           std::make_tuple(3, 2, 4), std::make_tuple(4, 2, 6),
                                           std::make_tuple(8, 1, 3)),
                         [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& pinfo) {
                           return "k" + std::to_string(std::get<0>(pinfo.param)) + "d" +
                                  std::to_string(std::get<1>(pinfo.param)) + "_L" +
                                  std::to_string(std::get<2>(pinfo.param));
                         });

TEST(ProductLegality, MixedFactorsAreLegal) {
  // Mesh (paths), complete-by-cycle, and complete-by-complete (Hamming).
  for (const auto& [gr, gc] : {
           std::pair<Graph, Graph>{path_graph(7), path_graph(9)},
           std::pair<Graph, Graph>{CompleteGraph(5).graph(), cycle_graph(8)},
           std::pair<Graph, Graph>{CompleteGraph(4).graph(), CompleteGraph(6).graph()},
       }) {
    const ProductLayoutPlan plan(gr, gc);
    const LegalityReport r = check_multilayer(plan.materialize());
    EXPECT_TRUE(r.ok) << r.summary();
  }
}

TEST(ProductLayout, FoldingShrinksChannels) {
  ProductLayoutOptions l2;
  ProductLayoutOptions l6;
  l6.layers = 6;
  const Graph q5 = Hypercube(5).graph();
  const double a2 = static_cast<double>(ProductLayoutPlan(q5, q5, l2).metrics().area);
  const double a6 = static_cast<double>(ProductLayoutPlan(q5, q5, l6).metrics().area);
  EXPECT_LT(a6, a2 / 1.8);
}

TEST(ProductLayout, MeshChannelsAreNarrow) {
  // Paths need exactly one track per channel (all intervals overlap only in
  // chains), so mesh layouts are nearly node-limited.
  const ProductLayoutPlan plan(path_graph(8), path_graph(8));
  EXPECT_EQ(plan.row_channel_tracks(), 1u);
  EXPECT_EQ(plan.col_channel_tracks(), 1u);
}

TEST(ProductLayout, RejectsBadInputs) {
  Graph loop(2);
  loop.add_edge(0, 0);
  EXPECT_THROW(ProductLayoutPlan(loop, path_graph(2)), InvalidArgument);
  ProductLayoutOptions tiny;
  tiny.node_side = 2;
  EXPECT_THROW(ProductLayoutPlan(path_graph(3), path_graph(3), tiny), InvalidArgument);
}

}  // namespace
}  // namespace bfly
