// Sections 3 and 4: the recursive grid layout of butterfly networks must be
// (a) geometrically legal under the claimed model, (b) structurally faithful
// (every butterfly link appears exactly once, attached to the right nodes),
// and (c) metrically convergent to the paper's closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "layout/butterfly_layout.hpp"
#include "layout/legality.hpp"

namespace bfly {
namespace {

TEST(ButterflyLayoutPlan, ChooseParameters) {
  EXPECT_EQ(ButterflyLayoutPlan::choose_parameters(3), (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(ButterflyLayoutPlan::choose_parameters(4), (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(ButterflyLayoutPlan::choose_parameters(5), (std::vector<int>{2, 2, 1}));
  EXPECT_EQ(ButterflyLayoutPlan::choose_parameters(9), (std::vector<int>{3, 3, 3}));
  EXPECT_EQ(ButterflyLayoutPlan::choose_parameters(10), (std::vector<int>{4, 3, 3}));
  EXPECT_EQ(ButterflyLayoutPlan::choose_parameters(11), (std::vector<int>{4, 4, 3}));
  EXPECT_THROW(ButterflyLayoutPlan::choose_parameters(2), InvalidArgument);
}

TEST(ButterflyLayoutPlan, RejectsBadOptions) {
  EXPECT_THROW(ButterflyLayoutPlan({3, 3}, {}), InvalidArgument);  // needs 3 levels
  ButterflyLayoutOptions bad_layers;
  bad_layers.layers = 1;
  EXPECT_THROW(ButterflyLayoutPlan({1, 1, 1}, bad_layers), InvalidArgument);
  ButterflyLayoutOptions bad_node;
  bad_node.node_side = 2;
  EXPECT_THROW(ButterflyLayoutPlan({1, 1, 1}, bad_node), InvalidArgument);
}

TEST(ButterflyLayoutPlan, RowChannelTrackCountMatchesPaper) {
  // Section 3.2 (n = 3k): the number of tracks for a row of blocks is
  // 2^{2n/3}; with L layers each channel folds to ceil(2^{k1+k2+1}/L)
  // positions (Sec. 4.2).
  const ButterflyLayoutPlan plan({3, 3, 3});
  EXPECT_EQ(plan.row_fold().logical_tracks, pow2(6));
  EXPECT_EQ(plan.col_fold().logical_tracks, pow2(6));
  EXPECT_EQ(plan.row_fold().positions, static_cast<i64>(pow2(6)));  // L=2: one group

  ButterflyLayoutOptions l8;
  l8.layers = 8;
  const ButterflyLayoutPlan plan8({3, 3, 3}, l8);
  EXPECT_EQ(plan8.row_fold().groups, 4u);
  EXPECT_EQ(plan8.row_fold().positions, static_cast<i64>(pow2(6) / 4));
}

// Structural fidelity: the materialized wires, read back as a graph, must be
// exactly the swap-butterfly's link multiset.
TEST(ButterflyLayoutPlan, WiresRealizeTheNetwork) {
  const ButterflyLayoutPlan plan({2, 1, 1});
  const SwapButterfly& sb = plan.network();
  std::map<std::pair<u64, u64>, u64> got;
  plan.for_each_wire([&](Wire&& w) {
    ASSERT_TRUE(w.from_node.has_value());
    ASSERT_TRUE(w.to_node.has_value());
    u64 a = *w.from_node;
    u64 b = *w.to_node;
    if (a > b) std::swap(a, b);
    ++got[{a, b}];
  });
  std::map<std::pair<u64, u64>, u64> want;
  const Graph g = sb.graph();
  for (const auto& [a, b] : g.edges()) ++want[{a, b}];
  EXPECT_EQ(got, want);
}

class GridLayoutLegality : public ::testing::TestWithParam<std::tuple<std::vector<int>, int>> {};

TEST_P(GridLayoutLegality, LegalUnderMultilayerModel) {
  const auto& [k, layers] = GetParam();
  ButterflyLayoutOptions opt;
  opt.layers = layers;
  const ButterflyLayoutPlan plan(k, opt);
  const Layout layout = plan.materialize();
  const LegalityReport r = check_multilayer(layout);
  EXPECT_TRUE(r.ok) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridLayoutLegality,
    ::testing::Values(std::make_tuple(std::vector<int>{1, 1, 1}, 2),
                      std::make_tuple(std::vector<int>{2, 1, 1}, 2),
                      std::make_tuple(std::vector<int>{2, 2, 1}, 2),
                      std::make_tuple(std::vector<int>{2, 2, 2}, 2),
                      std::make_tuple(std::vector<int>{3, 2, 2}, 2),
                      std::make_tuple(std::vector<int>{3, 3, 3}, 2),
                      std::make_tuple(std::vector<int>{2, 2, 2}, 4),
                      std::make_tuple(std::vector<int>{3, 3, 3}, 4),
                      std::make_tuple(std::vector<int>{3, 3, 3}, 8),
                      std::make_tuple(std::vector<int>{2, 2, 2}, 3),   // odd L
                      std::make_tuple(std::vector<int>{3, 3, 3}, 5),   // odd L
                      std::make_tuple(std::vector<int>{3, 3, 2}, 6)),
    [](const ::testing::TestParamInfo<std::tuple<std::vector<int>, int>>& pinfo) {
      std::string name = "k";
      for (const int v : std::get<0>(pinfo.param)) name += std::to_string(v);
      return name + "_L" + std::to_string(std::get<1>(pinfo.param));
    });

TEST(ButterflyLayoutPlan, ThompsonLegalAtTwoLayers) {
  // The L=2 multilayer layout also satisfies the (more permissive in
  // crossings, stricter over nodes) Thompson discipline, except that the
  // Thompson model does not let wires pass over node squares -- our wiring
  // never does, so the full check must pass.
  const ButterflyLayoutPlan plan({2, 2, 2});
  const Layout layout = plan.materialize();
  const LegalityReport r = check_thompson(layout);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(ButterflyLayoutPlan, MetricsMatchMaterializedGeometry) {
  for (const int L : {2, 4}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    const ButterflyLayoutPlan plan({2, 2, 2}, opt);
    const LayoutMetrics streamed = plan.metrics();
    const LayoutMetrics measured = plan.materialize().metrics();
    EXPECT_EQ(streamed.width, measured.width);
    EXPECT_EQ(streamed.height, measured.height);
    EXPECT_EQ(streamed.area, measured.area);
    EXPECT_EQ(streamed.max_wire_length, measured.max_wire_length);
    EXPECT_EQ(streamed.total_wire_length, measured.total_wire_length);
    EXPECT_EQ(streamed.num_wires, measured.num_wires);
  }
}

TEST(ButterflyLayoutPlan, AreaApproachesPaperFormula) {
  // Thompson model: area -> N^2 / log2(N)^2 * (1 + o(1)), i.e. 2^{2n} for an
  // N = (n+1) 2^n node butterfly.  The o(1) term is the Theta(2^{n/3})
  // block side against the Theta(2^{2n/3}) channels, so convergence is slow
  // in n; the unit test asserts the ratio is strictly decreasing (the bench
  // tabulates larger n via the streaming metrics).
  double prev_ratio = 1e30;
  for (const int n : {6, 9, 12}) {
    const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n));
    const double area = static_cast<double>(plan.metrics().area);
    const double formula = std::pow(2.0, 2 * n);
    const double ratio = area / formula;
    EXPECT_GT(ratio, 1.0) << n;  // the Avior et al. lower bound is fundamental
    EXPECT_LT(ratio, prev_ratio) << n;
    prev_ratio = ratio;
  }
  EXPECT_LT(prev_ratio, 3.2);  // n = 12: cell = channel + ~0.8x block overhead
}

TEST(ButterflyLayoutPlan, MaxWireApproachesPaperFormula) {
  // Max wire length -> 2N / (L log2 N) = 2^{n+1} / L plus an o() detour
  // through block-internal channels; the detour is L-independent, so the
  // measured/formula ratio grows with L at fixed n but the wire still
  // shrinks monotonically with L (the paper's actual claim).
  double prev = 1e30;
  for (const int L : {2, 4}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    const ButterflyLayoutPlan plan({4, 4, 4}, opt);
    const double measured = static_cast<double>(plan.metrics().max_wire_length);
    const double formula = std::pow(2.0, 13) / L;
    EXPECT_GT(measured / formula, 1.0);
    EXPECT_LT(measured / formula, 2.2 * (L / 2.0));
    EXPECT_LT(measured, prev);
    prev = measured;
  }
}

TEST(ButterflyLayoutPlan, MultilayerAreaScalesAsOneOverLSquared) {
  // Theorem 4.1 (even L): area = 4 N^2 / (L^2 log^2 N) (1 + o(1)).  The
  // channel positions shrink exactly as 1/(L/2); the block term does not, so
  // measured area sits between the pure-channel prediction and the L=2 area.
  const ButterflyLayoutPlan base({4, 4, 4});
  const double a2 = static_cast<double>(base.metrics().area);
  double prev = 1e30;
  for (const int L : {4, 8}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    const ButterflyLayoutPlan plan({4, 4, 4}, opt);
    const double aL = static_cast<double>(plan.metrics().area);
    const double channel_prediction = a2 * 4.0 / (L * L);
    EXPECT_GT(aL, channel_prediction);
    EXPECT_LT(aL, a2);
    EXPECT_LT(aL, prev);
    prev = aL;
    // The folded channel geometry itself is exact.
    EXPECT_EQ(plan.row_fold().positions, static_cast<i64>(pow2(8)) / (L / 2));
  }
}

TEST(ButterflyLayoutPlan, NodeSizeScalability) {
  // Section 3: node side W = o(sqrt(N)/log N) leaves the leading constant of
  // the area unchanged.  Here: doubling the node side of a small layout must
  // increase area by far less than 4x (channels dominate).
  ButterflyLayoutOptions small;
  small.node_side = 4;
  ButterflyLayoutOptions big;
  big.node_side = 8;
  const double a_small =
      static_cast<double>(ButterflyLayoutPlan({3, 3, 3}, small).metrics().area);
  const double a_big = static_cast<double>(ButterflyLayoutPlan({3, 3, 3}, big).metrics().area);
  EXPECT_LT(a_big / a_small, 2.0);
}

TEST(ButterflyLayoutPlan, LargerNodesStillLegal) {
  ButterflyLayoutOptions opt;
  opt.node_side = 7;
  const ButterflyLayoutPlan plan({2, 2, 1}, opt);
  const LegalityReport r = check_multilayer(plan.materialize());
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(ButterflyLayoutPlan, OddLayerCountMatchesTheorem) {
  // Theorem 4.1 (odd L): area = 4 N^2 / ((L^2-1) log^2 N) (1 + o(1)):
  // check the channel folding geometry directly.
  ButterflyLayoutOptions opt;
  opt.layers = 5;
  const ButterflyLayoutPlan plan({4, 4, 4}, opt);
  // Horizontal: (L+1)/2 = 3 groups; vertical: (L-1)/2 = 2 groups.  With
  // k1 = k2 = k3 = 4 the logical per-channel track count is
  // 2^{k1+k2} = 256 positions (x2 layers in Thompson terms), so the paper's
  // ceil(2^{k1+k2+1}/(L+1)) horizontal positions equal ceil(256/3).
  EXPECT_EQ(plan.row_fold().groups, 3u);
  EXPECT_EQ(plan.col_fold().groups, 2u);
  EXPECT_EQ(plan.row_fold().positions,
            static_cast<i64>(ceil_div(static_cast<i64>(pow2(8)), 3)));
  EXPECT_EQ(plan.col_fold().positions, static_cast<i64>(pow2(8) / 2));
}

// ---------------------------------------------------------------------------
// fold_block_channels: the intra-block channels fold across layer groups too.
// ---------------------------------------------------------------------------

class FoldedBlockLegality : public ::testing::TestWithParam<std::tuple<std::vector<int>, int>> {};

TEST_P(FoldedBlockLegality, LegalUnderMultilayerModel) {
  const auto& [k, layers] = GetParam();
  ButterflyLayoutOptions opt;
  opt.layers = layers;
  opt.fold_block_channels = true;
  const ButterflyLayoutPlan plan(k, opt);
  const LegalityReport r = check_multilayer(plan.materialize());
  EXPECT_TRUE(r.ok) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FoldedBlockLegality,
    ::testing::Values(std::make_tuple(std::vector<int>{2, 2, 2}, 2),
                      std::make_tuple(std::vector<int>{2, 2, 2}, 4),
                      std::make_tuple(std::vector<int>{3, 3, 3}, 4),
                      std::make_tuple(std::vector<int>{3, 3, 3}, 8),
                      std::make_tuple(std::vector<int>{3, 2, 2}, 4),
                      std::make_tuple(std::vector<int>{3, 3, 3}, 5),
                      std::make_tuple(std::vector<int>{3, 3, 2}, 6),
                      std::make_tuple(std::vector<int>{2, 2, 1}, 3)),
    [](const ::testing::TestParamInfo<std::tuple<std::vector<int>, int>>& pinfo) {
      std::string name = "k";
      for (const int v : std::get<0>(pinfo.param)) name += std::to_string(v);
      return name + "_L" + std::to_string(std::get<1>(pinfo.param));
    });

TEST(FoldedBlocks, StillRealizesTheNetwork) {
  ButterflyLayoutOptions opt;
  opt.layers = 4;
  opt.fold_block_channels = true;
  const ButterflyLayoutPlan plan({2, 2, 1}, opt);
  const SwapButterfly& sb = plan.network();
  std::map<std::pair<u64, u64>, u64> got;
  plan.for_each_wire([&](Wire&& w) {
    u64 a = *w.from_node;
    u64 b = *w.to_node;
    if (a > b) std::swap(a, b);
    ++got[{a, b}];
  });
  std::map<std::pair<u64, u64>, u64> want;
  const Graph g = sb.graph();
  for (const auto& [a, b] : g.edges()) ++want[{a, b}];
  EXPECT_EQ(got, want);
}

TEST(FoldedBlocks, ShrinksBlocksWithL) {
  // The unfolded blocks are L-independent; folded blocks shrink ~ L/2.
  ButterflyLayoutOptions base;
  base.layers = 8;
  const ButterflyLayoutPlan plain({3, 3, 3}, base);
  ButterflyLayoutOptions folded = base;
  folded.fold_block_channels = true;
  const ButterflyLayoutPlan fold({3, 3, 3}, folded);
  EXPECT_LT(fold.block_width(), plain.block_width());
  EXPECT_LT(fold.block_height(), plain.block_height());
  EXPECT_LT(fold.metrics().area, plain.metrics().area);
}

TEST(FoldedBlocks, NoChangeAtTwoLayers) {
  // With L = 2 there is a single group, so folding is a no-op for the
  // channel *widths* (cell dimensions identical); the rank reordering can
  // shift which extreme tracks are occupied, moving the bounding box by a
  // few grid units.
  const ButterflyLayoutPlan plain({2, 2, 2});
  ButterflyLayoutOptions folded;
  folded.fold_block_channels = true;
  const ButterflyLayoutPlan fold({2, 2, 2}, folded);
  EXPECT_EQ(plain.cell_width(), fold.cell_width());
  EXPECT_EQ(plain.cell_height(), fold.cell_height());
  EXPECT_NEAR(static_cast<double>(fold.metrics().area),
              static_cast<double>(plain.metrics().area),
              0.03 * static_cast<double>(plain.metrics().area));
}

TEST(FoldedBlocks, ImprovesTheoremRatio) {
  // At n = 12, L = 8 the folded construction must be substantially closer to
  // the 4 N^2/(L^2 log^2 N) leading term than the plain one.
  ButterflyLayoutOptions opt;
  opt.layers = 8;
  const double formula = 4.0 * std::pow(2.0, 24) / 64.0;
  const double plain =
      static_cast<double>(ButterflyLayoutPlan({4, 4, 4}, opt).metrics().area) / formula;
  opt.fold_block_channels = true;
  const double folded =
      static_cast<double>(ButterflyLayoutPlan({4, 4, 4}, opt).metrics().area) / formula;
  EXPECT_LT(folded, 0.55 * plain);
}

TEST(ButterflyLayoutPlan, LayersUsedNeverExceedL) {
  for (const int L : {2, 3, 4, 5, 8}) {
    ButterflyLayoutOptions opt;
    opt.layers = L;
    const ButterflyLayoutPlan plan({2, 2, 2}, opt);
    EXPECT_LE(plan.metrics().num_layers, L) << L;
  }
}

}  // namespace
}  // namespace bfly
