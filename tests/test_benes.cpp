// Benes networks: rearrangeable non-blocking routing via the looping
// algorithm -- every permutation must realize node-disjoint paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "topology/benes.hpp"
#include "util/prng.hpp"

namespace bfly {
namespace {

/// Validates a routed permutation end to end: path shape, every hop is a
/// real Benes link, per-stage occupancies are permutations (node- and hence
/// link-disjoint), and delivery matches perm.
void validate_routing(const Benes& benes, std::span<const u64> perm,
                      const std::vector<std::vector<u64>>& paths) {
  const u64 r = benes.rows();
  ASSERT_EQ(paths.size(), r);
  for (u64 s = 0; s < r; ++s) {
    ASSERT_EQ(paths[s].size(), static_cast<std::size_t>(benes.num_stages()));
    EXPECT_EQ(paths[s].front(), s);
    EXPECT_EQ(paths[s].back(), perm[s]);
    for (int t = 0; t < benes.num_transitions(); ++t) {
      const u64 a = paths[s][static_cast<std::size_t>(t)];
      const u64 b = paths[s][static_cast<std::size_t>(t) + 1];
      const u64 diff = a ^ b;
      EXPECT_TRUE(diff == 0 || diff == pow2(benes.transition_dim(t)))
          << "illegal hop at transition " << t;
    }
  }
  // Node-disjointness per stage.
  for (int stage = 0; stage < benes.num_stages(); ++stage) {
    std::vector<bool> used(r, false);
    for (u64 s = 0; s < r; ++s) {
      const u64 row = paths[s][static_cast<std::size_t>(stage)];
      ASSERT_LT(row, r);
      EXPECT_FALSE(used[row]) << "stage " << stage << " row collision";
      used[row] = true;
    }
  }
}

TEST(Benes, StructureCounts) {
  const Benes b(3);
  EXPECT_EQ(b.rows(), 8u);
  EXPECT_EQ(b.num_stages(), 7);
  EXPECT_EQ(b.num_nodes(), 56u);
  EXPECT_EQ(b.num_links(), 96u);
  const Graph g = b.graph();
  EXPECT_EQ(g.num_nodes(), 56u);
  EXPECT_EQ(g.num_edges(), 96u);
  EXPECT_EQ(g.connected_components(), 1u);
}

TEST(Benes, TransitionDimsAscendThenDescend) {
  const Benes b(3);
  const int expected[] = {0, 1, 2, 2, 1, 0};
  for (int t = 0; t < 6; ++t) EXPECT_EQ(b.transition_dim(t), expected[t]);
}

TEST(Benes, RoutesIdentity) {
  const Benes b(3);
  std::vector<u64> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  validate_routing(b, perm, b.route_permutation(perm));
}

TEST(Benes, RoutesReversal) {
  const Benes b(4);
  std::vector<u64> perm(16);
  for (u64 i = 0; i < 16; ++i) perm[i] = 15 - i;
  validate_routing(b, perm, b.route_permutation(perm));
}

TEST(Benes, RoutesBitReversalPermutation) {
  const Benes b(4);
  std::vector<u64> perm(16);
  for (u64 i = 0; i < 16; ++i) perm[i] = bit_reverse(i, 4);
  validate_routing(b, perm, b.route_permutation(perm));
}

TEST(Benes, RoutesAllPermutationsOfFourExhaustively) {
  // Rearrangeability, checked exhaustively for N = 4.
  const Benes b(2);
  std::vector<u64> perm{0, 1, 2, 3};
  do {
    validate_routing(b, perm, b.route_permutation(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
}

class BenesRandomPermutations : public ::testing::TestWithParam<int> {};

TEST_P(BenesRandomPermutations, RoutesNodeDisjointly) {
  const int n = GetParam();
  const Benes b(n);
  Xoshiro256 rng(static_cast<u64>(n) * 7919);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u64> perm(b.rows());
    std::iota(perm.begin(), perm.end(), 0);
    // Fisher-Yates with our deterministic PRNG.
    for (u64 i = b.rows() - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.below(i + 1)]);
    }
    validate_routing(b, perm, b.route_permutation(perm));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BenesRandomPermutations, ::testing::Values(1, 2, 3, 4, 5, 6, 8),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "n" + std::to_string(pinfo.param);
                         });

TEST(Benes, RejectsNonPermutations) {
  const Benes b(2);
  EXPECT_THROW(b.route_permutation(std::vector<u64>{0, 0, 1, 2}), InvalidArgument);
  EXPECT_THROW(b.route_permutation(std::vector<u64>{0, 1, 2}), InvalidArgument);
  EXPECT_THROW(b.route_permutation(std::vector<u64>{0, 1, 2, 7}), InvalidArgument);
}

TEST(Benes, DegreeProfile) {
  const Benes b(3);
  const Graph g = b.graph();
  for (u64 u = 0; u < b.rows(); ++u) {
    EXPECT_EQ(g.degree(b.node_id(u, 0)), 2u);
    EXPECT_EQ(g.degree(b.node_id(u, b.num_stages() - 1)), 2u);
    for (int s = 1; s + 1 < b.num_stages(); ++s) {
      EXPECT_EQ(g.degree(b.node_id(u, s)), 4u);
    }
  }
}

}  // namespace
}  // namespace bfly
