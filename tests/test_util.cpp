#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bits.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"

namespace bfly {
namespace {

TEST(Bits, Pow2AndLog) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(5), 32u);
  EXPECT_EQ(pow2(30), 1u << 30);
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(63));
  EXPECT_FALSE(is_pow2(0));
}

TEST(Bits, ExtractDeposit) {
  const u64 x = 0b1011'0110'1101;
  EXPECT_EQ(extract_bits(x, 0, 4), 0b1101u);
  EXPECT_EQ(extract_bits(x, 4, 4), 0b0110u);
  EXPECT_EQ(extract_bits(x, 8, 4), 0b1011u);
  EXPECT_EQ(extract_bits(x, 0, 0), 0u);
  EXPECT_EQ(deposit_bits(x, 4, 4, 0b1111), 0b1011'1111'1101u);
  EXPECT_EQ(deposit_bits(x, 0, 0, 0b1111), x);
  // deposit then extract roundtrip
  for (int lo = 0; lo < 12; ++lo) {
    for (int len = 1; lo + len <= 12; ++len) {
      const u64 v = 0b10101010'10101010 & (pow2(len) - 1);
      EXPECT_EQ(extract_bits(deposit_bits(x, lo, len, v), lo, len), v);
    }
  }
}

TEST(Bits, SwapBitGroupsBasic) {
  // Swap bits [4,8) with bits [0,4).
  EXPECT_EQ(swap_bit_groups(0b1011'0110'1101, 4, 4), 0b1011'1101'0110u);
  // Identity when lo == 0 or len == 0.
  EXPECT_EQ(swap_bit_groups(0xdeadbeef, 0, 4), 0xdeadbeefu);
  EXPECT_EQ(swap_bit_groups(0xdeadbeef, 8, 0), 0xdeadbeefu);
}

TEST(Bits, SwapBitGroupsIsInvolution) {
  for (int lo = 1; lo <= 10; ++lo) {
    for (int len = 1; len <= lo; ++len) {
      for (u64 x = 0; x < 4096; x += 7) {
        EXPECT_EQ(swap_bit_groups(swap_bit_groups(x, lo, len), lo, len), x)
            << "lo=" << lo << " len=" << len << " x=" << x;
      }
    }
  }
}

TEST(Bits, SwapBitGroupsIsPermutation) {
  // On [0, 2^10), sigma with lo=6, len=4 must be a bijection.
  std::vector<bool> hit(1024, false);
  for (u64 x = 0; x < 1024; ++x) {
    const u64 y = swap_bit_groups(x, 6, 4);
    ASSERT_LT(y, 1024u);
    EXPECT_FALSE(hit[y]);
    hit[y] = true;
  }
}

TEST(Bits, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  for (u64 x = 0; x < 256; ++x) {
    EXPECT_EQ(bit_reverse(bit_reverse(x, 8), 8), x);
  }
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 8), 1);
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(BFLY_REQUIRE(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(BFLY_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsInternalError) {
  EXPECT_THROW(BFLY_CHECK(false, "bug"), InternalError);
  EXPECT_NO_THROW(BFLY_CHECK(true, "fine"));
}

TEST(Prng, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Xoshiro256 c(43);
  bool any_diff = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) any_diff |= (a2() != c());
  EXPECT_TRUE(any_diff);
}

TEST(Prng, BelowIsInRangeAndCoversValues) {
  Xoshiro256 rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const u64 v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (const int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Parallel, SumsMatchSerial) {
  const std::size_t n = 100000;
  std::vector<u64> data(n);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<u64> total{0};
  parallel_for_chunked(0, n, 8, [&](std::size_t lo, std::size_t hi, std::size_t) {
    u64 local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += data[i];
    total += local;
  });
  EXPECT_EQ(total.load(), u64{n} * (n - 1) / 2);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool ran = false;
  parallel_for_chunked(5, 5, 4, [&](std::size_t, std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for_chunked(0, 100, 4,
                           [](std::size_t lo, std::size_t, std::size_t) {
                             if (lo == 0) throw std::runtime_error("worker failure");
                           }),
      std::runtime_error);
}

TEST(Parallel, SoleThrowerWinsVerbatim) {
  // Only worker 2 throws; its exact exception must come back.
  try {
    parallel_for_chunked(0, 400, 4, [](std::size_t, std::size_t, std::size_t tid) {
      if (tid == 2) throw std::runtime_error("tid-2 failure");
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "tid-2 failure");
  }
}

TEST(Parallel, FirstExceptionWinsWhenAllThrow) {
  // Every worker throws a distinct exception.  Exactly one propagates (the
  // first to be captured); the rest are swallowed, never terminate().
  for (int round = 0; round < 8; ++round) {
    try {
      parallel_for_chunked(0, 400, 4, [](std::size_t, std::size_t, std::size_t tid) {
        throw std::runtime_error("worker " + std::to_string(tid));
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      ASSERT_TRUE(what.rfind("worker ", 0) == 0) << what;
      const int tid = std::stoi(what.substr(7));
      EXPECT_GE(tid, 0);
      EXPECT_LT(tid, 4);
    }
  }
}

TEST(Parallel, ExceptionDoesNotLoseNonThrowingWork) {
  // Side effects of workers that completed before/alongside the thrower are
  // still visible after the rethrow — failure is loud, not corrupting.
  std::vector<std::atomic<int>> seen(400);
  try {
    parallel_for_chunked(0, 400, 4, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
      for (std::size_t i = lo; i < hi; ++i) seen[i]++;
      if (tid == 1) throw std::runtime_error("late failure");
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error&) {
  }
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i].load(), 1) << i;
}

TEST(Parallel, ElementwiseCoversAllIndices) {
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> seen(n);
  parallel_for(0, n, [&](std::size_t i) { seen[i]++; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i].load(), 1) << i;
}

TEST(Flags, ParseBoundedU64AcceptsInRangeIntegers) {
  u64 v = 99;
  EXPECT_TRUE(util::parse_bounded_u64("0", 0, 10, &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(util::parse_bounded_u64("65535", 1, 65535, &v));
  EXPECT_EQ(v, 65535u);
  EXPECT_TRUE(util::parse_bounded_u64("007", 1, 10, &v));  // leading zeros are fine
  EXPECT_EQ(v, 7u);
  const u64 max = ~u64{0};
  EXPECT_TRUE(util::parse_bounded_u64("18446744073709551615", 0, max, &v));
  EXPECT_EQ(v, max);
}

TEST(Flags, ParseBoundedU64RejectsGarbageAndOutOfRange) {
  u64 v = 42;
  for (const char* bad : {"", "4x", "x4", "-2", "+2", " 7", "7 ", "1e3", "0x10", "1.5"}) {
    EXPECT_FALSE(util::parse_bounded_u64(bad, 0, 1000, &v)) << bad;
    EXPECT_EQ(v, 42u) << "out must stay untouched for '" << bad << "'";
  }
  EXPECT_FALSE(util::parse_bounded_u64(nullptr, 0, 1000, &v));
  EXPECT_FALSE(util::parse_bounded_u64("0", 1, 1000, &v));      // below min
  EXPECT_FALSE(util::parse_bounded_u64("1001", 1, 1000, &v));   // above max
  // Far past u64: must be rejected by the overflow guard, not wrapped into
  // an in-range value.
  EXPECT_FALSE(util::parse_bounded_u64("99999999999999999999999", 0, 1000, &v));
  EXPECT_FALSE(util::parse_bounded_u64("18446744073709551616", 0, ~u64{0}, &v));
  EXPECT_EQ(v, 42u);
}

TEST(Flags, ParseThreadCountDelegatesToBoundedParser) {
  std::size_t t = 0;
  EXPECT_TRUE(parse_thread_count("4096", &t));
  EXPECT_EQ(t, 4096u);
  EXPECT_FALSE(parse_thread_count("0", &t));
  EXPECT_FALSE(parse_thread_count("4097", &t));
  EXPECT_FALSE(parse_thread_count("8f", &t));
}

TEST(Cancel, ExtendDeadlineOnlyMovesLater) {
  using clock = std::chrono::steady_clock;
  CancelToken token;
  const auto near = clock::now() + std::chrono::milliseconds(50);
  const auto far = clock::now() + std::chrono::hours(1);
  token.extend_deadline_until(near);
  ASSERT_TRUE(token.has_deadline());
  EXPECT_EQ(token.deadline(), near);
  // Extending to a later instant moves the deadline out...
  token.extend_deadline_until(far);
  EXPECT_EQ(token.deadline(), far);
  // ...but a shorter joiner can never pull it back in.
  token.extend_deadline_until(near);
  EXPECT_EQ(token.deadline(), far);
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancel, ExtendDeadlineArmsUnarmedToken) {
  using clock = std::chrono::steady_clock;
  CancelToken token;
  EXPECT_FALSE(token.has_deadline());
  token.extend_deadline_until(clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.expired());
  EXPECT_TRUE(token.cancelled());
}

}  // namespace
}  // namespace bfly
