// End-to-end tests of the real bflyd process over its socket transports.
//
// These tests fork/exec the actual daemon binary (BFLYD_PATH, injected by
// CMake as $<TARGET_FILE:bflyd>), speak the JSONL protocol through
// serve::Client, and exercise the full robustness story the in-process suite
// cannot: process startup/readiness, SIGTERM graceful drain with a clean
// exit code, and — the headline — kill -9 mid-burst followed by a restart
// that re-serves every previously completed response bit-identically from
// the recovered journal.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"

#ifndef BFLYD_PATH
#error "BFLYD_PATH must be defined to the bflyd binary path"
#endif

namespace bfly::serve {
namespace {

using json::Value;

std::string temp_file(const std::string& name, const std::string& ext) {
  return testing::TempDir() + "bflyd_" + name + "_" + std::to_string(::getpid()) + ext;
}

// A spawned bflyd process.  The constructor blocks until the daemon prints
// its readiness line ("bflyd listening ...") on stdout, so a connect after
// construction never races the bind.
class DaemonProcess {
 public:
  explicit DaemonProcess(std::vector<std::string> args) { start(std::move(args)); }

  // gtest ASSERTs need a void function; the ctor delegates here.
  void start(std::vector<std::string> args) {
    int out_pipe[2];
    ASSERT_EQ(::pipe(out_pipe), 0);
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      std::vector<char*> argv;
      static const std::string binary = BFLYD_PATH;
      argv.push_back(const_cast<char*>(binary.c_str()));
      for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);  // exec failed
    }
    ::close(out_pipe[1]);
    stdout_ = ::fdopen(out_pipe[0], "r");
    ASSERT_NE(stdout_, nullptr);

    char line[512];
    ASSERT_NE(std::fgets(line, sizeof(line), stdout_), nullptr)
        << "daemon exited before printing its readiness line";
    ready_line_ = line;
    ASSERT_NE(ready_line_.find("bflyd listening"), std::string::npos) << ready_line_;
  }

  ~DaemonProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (stdout_ != nullptr) std::fclose(stdout_);
  }

  /// The TCP port out of "bflyd listening tcp 127.0.0.1:<port>".
  int tcp_port() const {
    const std::size_t colon = ready_line_.rfind(':');
    EXPECT_NE(colon, std::string::npos) << ready_line_;
    return std::stoi(ready_line_.substr(colon + 1));
  }

  void kill_hard() {
    ASSERT_EQ(::kill(pid_, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    EXPECT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    pid_ = -1;
  }

  int terminate_and_wait() {
    if (pid_ <= 0) return -1;
    if (::kill(pid_, SIGTERM) != 0) return -1;
    int status = 0;
    if (::waitpid(pid_, &status, 0) != pid_) return -1;
    pid_ = -1;
    if (!WIFEXITED(status)) return -1;
    return WEXITSTATUS(status);
  }

 private:
  pid_t pid_ = -1;
  FILE* stdout_ = nullptr;
  std::string ready_line_;
};

/// Normalizes "cached":false -> "cached":true so a cold response can be
/// compared byte-for-byte against its replay.
std::string as_cached(std::string line) {
  const std::size_t pos = line.find("\"cached\":false");
  if (pos != std::string::npos) line.replace(pos, 14, "\"cached\":true");
  return line;
}

TEST(BflydDaemon, ServesMixedBurstOverUnixSocketAndDrainsOnSigterm) {
  const std::string socket_path = temp_file("mixed", ".sock");
  DaemonProcess daemon({"--socket", socket_path, "--max-inflight", "2"});

  Client client = Client::connect_unix(socket_path);
  // Control op.
  EXPECT_TRUE(Value::parse(client.call(R"({"op":"ping","id":"1"})")).at("ok").as_bool());

  // Cold compute, then a bit-identical cache hit.
  const std::string frame = R"({"op":"layout","id":"2","n":6})";
  const std::string cold = client.call(frame);
  const std::string warm = client.call(frame);
  EXPECT_FALSE(Value::parse(cold).at("cached").as_bool());
  EXPECT_TRUE(Value::parse(warm).at("cached").as_bool());
  EXPECT_EQ(as_cached(cold), warm);

  // Hostile frame: structured invalid_request, connection stays usable.
  const Value bad = Value::parse(client.call("this is not json"));
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").at("code").as_string(), "invalid_request");

  // Deadline-doomed sweep: structured deadline_exceeded.
  const Value doomed = Value::parse(client.call(
      R"({"op":"sweep","id":"3","n":10,"offered_load":0.9,"cycles":4000000,"seed":7,)"
      R"("deadline_ms":50})"));
  EXPECT_FALSE(doomed.at("ok").as_bool());
  EXPECT_EQ(doomed.at("error").at("code").as_string(), "deadline_exceeded");

  // The stats op carries the exact ledger.  The snapshot is rendered while
  // the stats request itself is still in flight, so it is the one request
  // accepted but not yet in a terminal bucket.
  const Value stats = Value::parse(client.call(R"({"op":"stats","id":"4"})"));
  ASSERT_TRUE(stats.at("ok").as_bool());
  const Value& ledger = stats.at("result");
  EXPECT_EQ(ledger.at("accepted").as_u64(), 6u);
  EXPECT_EQ(ledger.at("completed").as_u64(), 3u);  // ping, cold, warm
  EXPECT_EQ(ledger.at("failed").as_u64(), 1u);     // the hostile frame
  EXPECT_EQ(ledger.at("cancelled").as_u64(), 1u);  // the doomed sweep
  EXPECT_EQ(ledger.at("shed").as_u64(), 0u);

  // SIGTERM: graceful drain, exit 0, connection closes cleanly (EOF).
  EXPECT_EQ(daemon.terminate_and_wait(), 0);
  std::string leftover;
  EXPECT_FALSE(client.read_line(&leftover));
}

TEST(BflydDaemon, KillNineMidBurstThenRestartReplaysCompletedResponsesBitIdentically) {
  const std::string socket_path = temp_file("crash", ".sock");
  const std::string cache_path = temp_file("crash_cache", ".jsonl");
  std::remove(cache_path.c_str());

  // Requests whose responses we will demand back, byte for byte.
  const std::vector<std::string> frames = {
      R"({"op":"layout","id":"a","n":5})",
      R"({"op":"layout","id":"b","n":6,"layers":4})",
      R"({"op":"packaging","id":"c","n":6})",
      R"({"op":"census","id":"d","n":6,"packets":50000,"seed":3})",
      R"({"op":"sweep","id":"e","n":6,"offered_load":0.6,"cycles":20000,"seed":5})",
  };

  std::vector<std::string> first_responses;
  {
    DaemonProcess daemon({"--socket", socket_path, "--cache", cache_path});
    Client client = Client::connect_unix(socket_path);
    for (const std::string& frame : frames) {
      first_responses.push_back(client.call(frame));
      ASSERT_TRUE(Value::parse(first_responses.back()).at("ok").as_bool())
          << first_responses.back();
    }
    // Make the kill land mid-burst: more work in flight, responses unread.
    client.send(R"({"op":"census","id":"x","n":8,"packets":20000000,"seed":9})");
    client.send(R"({"op":"census","id":"y","n":8,"packets":20000000,"seed":10})");
    daemon.kill_hard();
    // The client observes the crash as EOF, not a protocol error.
    std::string line;
    while (client.read_line(&line)) {
    }
  }

  // Restart over the same journal: every response a client already saw must
  // replay bit-identically, served from the recovered cache.
  {
    DaemonProcess daemon({"--socket", socket_path, "--cache", cache_path});
    Client client = Client::connect_unix(socket_path);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const std::string replay = client.call(frames[i]);
      const Value doc = Value::parse(replay);
      ASSERT_TRUE(doc.at("ok").as_bool()) << replay;
      EXPECT_TRUE(doc.at("cached").as_bool()) << "expected a journal hit: " << replay;
      EXPECT_EQ(as_cached(first_responses[i]), replay);
    }
    EXPECT_EQ(daemon.terminate_and_wait(), 0);
  }
  std::remove(cache_path.c_str());
}

TEST(BflydDaemon, ServesOverLocalhostTcp) {
  DaemonProcess daemon({"--port", "0"});
  Client client = Client::connect_tcp(daemon.tcp_port());
  const Value pong = Value::parse(client.call(R"({"op":"ping","id":"t"})"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_TRUE(pong.at("result").at("pong").as_bool());
  EXPECT_EQ(daemon.terminate_and_wait(), 0);
}

TEST(BflydDaemon, ReapsShortLivedConnectionsInsteadOfLeakingFds) {
  // The long-lived-service regression: a reader thread and its fd must be
  // reclaimed when a connection closes, not parked until shutdown.  Before
  // the reap existed, every short-lived client left a dead fd + thread
  // behind and the daemon hit EMFILE after ~1000 clients; here 64 sequential
  // clients must leave the tracked-connection set near empty.  In-process
  // (not fork/exec) so the internal connection table is observable.
  DaemonOptions options;
  options.unix_socket_path = testing::TempDir() + "bflyd_reap_" +
                             std::to_string(::getpid()) + ".sock";
  options.server.max_inflight = 2;
  Daemon daemon(options);
  std::thread runner([&] { daemon.run(); });

  constexpr std::size_t kClients = 64;
  for (std::size_t i = 0; i < kClients; ++i) {
    Client client = Client::connect_unix(options.unix_socket_path);
    const Value pong = Value::parse(client.call(R"({"op":"ping","id":"r"})"));
    EXPECT_TRUE(pong.at("ok").as_bool());
    // client's destructor closes the socket: the reader sees EOF and the
    // next accept reaps it.
  }
  // Every accept reaps all previously finished connections, so the table
  // never accumulates dead ones — only the most recent clients can still be
  // in flight between their close and the next accept.
  EXPECT_LE(daemon.tracked_connections(), 8u);

  daemon.shutdown();
  runner.join();
  EXPECT_EQ(daemon.tracked_connections(), 0u);
  const LedgerSnapshot ledger = daemon.server().ledger();
  EXPECT_EQ(ledger.accepted, kClients);
  EXPECT_EQ(ledger.completed, kClients);
}

TEST(BflydDaemon, MalformedFlagsExitTwoWithUsage) {
  // Satellite contract at the daemon boundary: strict bounded flag parsing —
  // malformed values are exit 2 + usage, never a silent default.
  const std::vector<std::vector<std::string>> bad_args = {
      {"--queue-depth", "banana"},
      {"--queue-depth", "0"},
      {"--queue-depth", "12trailing"},
      {"--port", "65536"},
      {"--max-inflight"},
      {"--cache-max-entries", "0"},
      {"--cache-max-mb", "-5"},
      {"--cache-compact-mb", "many"},
      {"--unknown-flag"},
  };
  for (const auto& args : bad_args) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Quiet the usage text; the exit code is the contract under test.
      std::freopen("/dev/null", "w", stderr);
      std::vector<char*> argv;
      static const std::string binary = BFLYD_PATH;
      argv.push_back(const_cast<char*>(binary.c_str()));
      for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 2) << "args: " << args[0];
  }
}

}  // namespace
}  // namespace bfly::serve
