#include <gtest/gtest.h>

#include <vector>

#include "topology/complete_graph.hpp"
#include "topology/hypercube.hpp"
#include "topology/isn.hpp"
#include "topology/swap_network.hpp"

namespace bfly {
namespace {

TEST(SwapNetworkParams, Validation) {
  EXPECT_EQ(validate_swap_parameters(std::vector<int>{3}), 3);
  EXPECT_EQ(validate_swap_parameters(std::vector<int>{3, 3, 3}), 9);
  EXPECT_EQ(validate_swap_parameters(std::vector<int>{2, 2, 3}), 7);  // k_3 <= n_2 = 4
  EXPECT_THROW(validate_swap_parameters(std::vector<int>{}), InvalidArgument);
  EXPECT_THROW(validate_swap_parameters(std::vector<int>{0}), InvalidArgument);
  EXPECT_THROW(validate_swap_parameters(std::vector<int>{2, 3}), InvalidArgument);  // k_2 > k_1
  EXPECT_THROW(validate_swap_parameters(std::vector<int>{1, 1, 3}), InvalidArgument);
}

TEST(SwapNetwork, PrefixSums) {
  const SwapNetwork sn({3, 2, 4});
  EXPECT_EQ(sn.prefix(0), 0);
  EXPECT_EQ(sn.prefix(1), 3);
  EXPECT_EQ(sn.prefix(2), 5);
  EXPECT_EQ(sn.prefix(3), 9);
  EXPECT_EQ(sn.dimension(), 9);
  EXPECT_EQ(sn.num_nodes(), 512u);
}

TEST(SwapNetwork, SigmaIsInvolution) {
  const SwapNetwork sn({3, 3, 3});
  for (int level = 2; level <= 3; ++level) {
    for (u64 v = 0; v < sn.num_nodes(); ++v) {
      EXPECT_EQ(sn.sigma(level, sn.sigma(level, v)), v);
    }
  }
}

TEST(SwapNetwork, SigmaSwapsCorrectGroups) {
  const SwapNetwork sn({2, 2, 2});
  // sigma_2 swaps bits [2,4) with [0,2); sigma_3 swaps [4,6) with [0,2).
  EXPECT_EQ(sn.sigma(2, 0b00'01'10), 0b00'10'01u);
  EXPECT_EQ(sn.sigma(3, 0b11'01'10), 0b10'01'11u);
}

TEST(SwapNetwork, SingleLevelIsHypercube) {
  const SwapNetwork sn({4});
  EXPECT_TRUE(sn.graph().same_as(Hypercube(4).graph()));
}

TEST(SwapNetwork, NodeDegrees) {
  // Degree = k_1 + (#levels whose sigma moves the node).
  const SwapNetwork sn({2, 2});
  const Graph g = sn.graph();
  for (u64 v = 0; v < sn.num_nodes(); ++v) {
    const int moved = sn.sigma(2, v) != v ? 1 : 0;
    EXPECT_EQ(g.degree(v), 2u + static_cast<u64>(moved));
  }
}

TEST(SwapNetwork, ContractNucleiGivesCompleteGraph) {
  // SN(2, Q_k): contracting each nucleus Q_k yields K_{2^k} (one inter-
  // cluster link between every pair of nuclei).
  for (int k = 2; k <= 4; ++k) {
    const SwapNetwork sn({k, k});
    const Graph g = sn.graph();
    std::vector<u64> labels(sn.num_nodes());
    for (u64 v = 0; v < sn.num_nodes(); ++v) labels[v] = v >> k;
    const Graph q = g.contract(labels, pow2(k));
    EXPECT_TRUE(q.same_as(CompleteGraph(pow2(k)).graph())) << "k=" << k;
  }
}

TEST(SwapNetwork, Connected) {
  EXPECT_EQ(SwapNetwork({2, 2}).graph().connected_components(), 1u);
  EXPECT_EQ(SwapNetwork({3, 2, 2}).graph().connected_components(), 1u);
}

TEST(Isn, StepScheduleShape) {
  const IndirectSwapNetwork isn({3, 2, 2});
  // k1 exchanges, swap, k2 exchanges, swap, k3 exchanges.
  EXPECT_EQ(isn.num_steps(), 7 + 2);
  EXPECT_EQ(isn.num_stages(), 10);
  const auto& steps = isn.steps();
  for (int t = 0; t < isn.num_steps(); ++t) {
    const bool is_swap = (t == 3) || (t == 6);
    EXPECT_EQ(steps[static_cast<std::size_t>(t)].kind == IsnStep::Kind::kSwap, is_swap) << t;
  }
  EXPECT_EQ(steps[3].param, 2);  // level 2 swap
  EXPECT_EQ(steps[6].param, 3);  // level 3 swap
  // Exchange dims restart at 0 after each swap.
  EXPECT_EQ(steps[0].param, 0);
  EXPECT_EQ(steps[1].param, 1);
  EXPECT_EQ(steps[2].param, 2);
  EXPECT_EQ(steps[4].param, 0);
  EXPECT_EQ(steps[5].param, 1);
  EXPECT_EQ(steps[7].param, 0);
  EXPECT_EQ(steps[8].param, 1);
}

TEST(Isn, Fig1FourByFour) {
  // Figure 1: the 4x4 ISN with k_1 = k_2 = 1: 4 rows, 4 stages.
  const IndirectSwapNetwork isn({1, 1});
  EXPECT_EQ(isn.rows(), 4u);
  EXPECT_EQ(isn.num_stages(), 4);
  EXPECT_EQ(isn.num_nodes(), 16u);
  // Steps: exchange dim 0, swap level 2, exchange dim 0.
  EXPECT_EQ(isn.steps()[0].kind, IsnStep::Kind::kExchange);
  EXPECT_EQ(isn.steps()[1].kind, IsnStep::Kind::kSwap);
  EXPECT_EQ(isn.steps()[2].kind, IsnStep::Kind::kExchange);
  // The swap step for k=[1,1] exchanges bit 1 and bit 0.
  const auto out = isn.outgoing(0b01, 2);
  EXPECT_TRUE(out.is_swap);
  EXPECT_EQ(out.swap, 0b10u);
}

TEST(Isn, LinkAndNodeCounts) {
  const IndirectSwapNetwork isn({2, 2, 2});
  EXPECT_EQ(isn.rows(), 64u);
  EXPECT_EQ(isn.num_stages(), 9);  // 6 + 3 - 1 + 1
  const Graph g = isn.graph();
  EXPECT_EQ(g.num_nodes(), isn.num_nodes());
  EXPECT_EQ(g.num_edges(), isn.num_links());
  // 6 exchange steps x 2R links + 2 swap steps x R links.
  EXPECT_EQ(isn.num_links(), 6u * 128 + 2u * 64);
}

TEST(Isn, DegreeProfile) {
  const IndirectSwapNetwork isn({2, 2});
  const Graph g = isn.graph();
  const u64 r = isn.rows();
  // Stage 0: 2 outgoing (exchange).  Stage boundary around the swap step:
  // stage 2 has 2 in + 1 swap out = 3; stage 3 has 1 swap in + 2 out = 3.
  for (u64 u = 0; u < r; ++u) {
    EXPECT_EQ(g.degree(isn.node_id(u, 0)), 2u);
    EXPECT_EQ(g.degree(isn.node_id(u, 1)), 4u);
    EXPECT_EQ(g.degree(isn.node_id(u, 2)), 3u);
    EXPECT_EQ(g.degree(isn.node_id(u, 3)), 3u);
    EXPECT_EQ(g.degree(isn.node_id(u, 4)), 4u);
    EXPECT_EQ(g.degree(isn.node_id(u, 5)), 2u);
  }
}

TEST(Isn, SwapStepIsPerfectMatching) {
  const IndirectSwapNetwork isn({3, 2});
  // Step 4 (1-based) is the level-2 swap.
  std::vector<int> indeg(static_cast<std::size_t>(isn.rows()), 0);
  for (u64 u = 0; u < isn.rows(); ++u) {
    const auto out = isn.outgoing(u, 4);
    ASSERT_TRUE(out.is_swap);
    ++indeg[static_cast<std::size_t>(out.swap)];
  }
  for (const int d : indeg) EXPECT_EQ(d, 1);
}

TEST(Isn, Connected) {
  EXPECT_EQ(IndirectSwapNetwork({2, 2}).graph().connected_components(), 1u);
  EXPECT_EQ(IndirectSwapNetwork({3, 3, 3}).graph().connected_components(), 1u);
}

}  // namespace
}  // namespace bfly
