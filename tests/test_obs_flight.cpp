// bfly::obs packet flight recorder: the determinism contract and the
// analytics built on the recorded journeys.
//
// The load-bearing claims under test:
//   1. Sampling is a pure function of packet identity — SplitMix64(seed ^ id)
//      under a fixed threshold, first-budget-passers — so the admitted set is
//      bitwise identical across sweep thread counts and between the pristine
//      engine and the faulty engine on an empty FaultSet.
//   2. The latency decomposition queue_wait + transit + detour == latency
//      holds *exactly* (u64 arithmetic) on every delivered trace, pristine or
//      degraded, and detour is n hops per wrap.
//   3. Wire-length path attribution through layout geometry matches a
//      hand-computed B_3 path.
//   4. The JSON encoding round-trips bit-for-bit (checkpoint replay identity)
//      and the decoder rejects malformed documents instead of repairing them.
//   5. Observation changes nothing it observes: engine outcomes are
//      bit-unchanged by an attached recorder.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_routing.hpp"
#include "fault/fault_set.hpp"
#include "layout/butterfly_layout.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"  // for BFLY_OBS_ENABLED
#include "routing/routing.hpp"
#include "sim/sweep.hpp"
#include "util/check.hpp"

namespace bfly::obs {
namespace {

// --- sampling ----------------------------------------------------------------

TEST(FlightRecorderTest, DisabledRecorderAdmitsNothing) {
  FlightRecorder rec;  // default: budget 0
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.on_packet(0, 1, 2), 0u);
  EXPECT_EQ(rec.packets_seen(), 1u);
  EXPECT_TRUE(rec.empty());
}

TEST(FlightRecorderTest, ZeroExpectedPacketsAdmitsEveryPacketUntilBudget) {
  FlightRecorder rec(/*sample_budget=*/3, /*seed=*/7, /*expected_packets=*/0);
  EXPECT_EQ(rec.threshold(), ~u64{0});
  for (u64 id = 0; id < 10; ++id) rec.on_packet(id, id, id);
  ASSERT_EQ(rec.traces().size(), 3u);
  EXPECT_EQ(rec.packets_seen(), 10u);
  // First-N-passers with an all-pass threshold: ids 0, 1, 2 exactly.
  for (u64 i = 0; i < 3; ++i) EXPECT_EQ(rec.traces()[i].packet_id, i);
}

TEST(FlightRecorderTest, SamplingIsAPureFunctionOfPacketIdentity) {
  // Same (budget, seed, expected) fed the same creation stream: identical
  // admitted sets, no hidden state.  A short prefix of the stream admits a
  // prefix of the full run's traces — the checkpoint kill/resume shape.
  const u64 kSeed = 0x5eedu;
  FlightRecorder full(8, kSeed, 10'000);
  FlightRecorder half(8, kSeed, 10'000);
  for (u64 id = 0; id < 4000; ++id) full.on_packet(id / 7, id % 13, id % 11);
  for (u64 id = 0; id < 2000; ++id) half.on_packet(id / 7, id % 13, id % 11);
  ASSERT_LE(half.traces().size(), full.traces().size());
  for (std::size_t i = 0; i < half.traces().size(); ++i) {
    EXPECT_EQ(half.traces()[i].packet_id, full.traces()[i].packet_id);
    EXPECT_EQ(half.traces()[i].src, full.traces()[i].src);
    EXPECT_EQ(half.traces()[i].dst, full.traces()[i].dst);
    EXPECT_EQ(half.traces()[i].injected_at, full.traces()[i].injected_at);
  }
  // The hash gate actually thins: nowhere near all 4000 packets admitted,
  // but the budget still fills (threshold targets ~4x the budget).
  EXPECT_EQ(full.traces().size(), full.sample_budget());
}

TEST(FlightRecorderTest, HooksRejectMisuse) {
  FlightRecorder rec(2, 1, 0);
  const u64 h = rec.on_packet(10, 0, 3);
  ASSERT_NE(h, 0u);
  EXPECT_THROW(rec.on_hop(99, 10, 0, FlightEvent::kInject), InternalError);
  rec.on_hop(h, 10, 0, FlightEvent::kInject);
  // Hop cycles must strictly increase along a trace.
  EXPECT_THROW(rec.on_hop(h, 10, 1, FlightEvent::kAdvance), InternalError);
  rec.on_hop(h, 12, 1, FlightEvent::kAdvance);
  // Termination must follow the last hop, and is final.
  EXPECT_THROW(rec.on_delivered(h, 12), InternalError);
  rec.on_delivered(h, 13);
  EXPECT_THROW(rec.on_hop(h, 14, 2, FlightEvent::kAdvance), InternalError);
  EXPECT_THROW(rec.on_dropped(h, 15, kFlightDropQueueFull), InternalError);
}

// --- decomposition and blame (synthetic traces) ------------------------------

FlightTrace delivered_trace(u64 injected_at, std::vector<FlightHop> hops, u64 end_cycle) {
  FlightTrace t;
  t.packet_id = 0;
  t.src = 0;
  t.dst = 7;
  t.injected_at = injected_at;
  t.hops = std::move(hops);
  t.outcome = FlightOutcome::kDelivered;
  t.end_cycle = end_cycle;
  return t;
}

TEST(FlightDecompositionTest, HandCheckedSumsExactly) {
  // n = 3, injected at cycle 0; waits 1, 0, 1 around the three hops; delivered
  // at cycle 5.  latency = 6 = queue_wait 2 + transit 4 + detour 0.
  const FlightTrace t = delivered_trace(
      0,
      {{0, 1, FlightEvent::kInject}, {2, 19, FlightEvent::kAdvance}, {3, 39, FlightEvent::kAdvance}},
      5);
  const FlightDecomposition d = decompose_flight(t, 3);
  EXPECT_EQ(d.latency, 6u);
  EXPECT_EQ(d.queue_wait, 2u);
  EXPECT_EQ(d.transit, 4u);
  EXPECT_EQ(d.detour, 0u);
  EXPECT_EQ(d.queue_wait + d.transit + d.detour, d.latency);
  const std::vector<u64> waits = flight_hop_waits(t);
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_EQ(waits[0], 1u);
  EXPECT_EQ(waits[1], 0u);
  EXPECT_EQ(waits[2], 1u);
}

TEST(FlightDecompositionTest, WrappedTraceChargesNHopsPerWrap) {
  // Two passes through a dimension-2 fabric (one wrap): 4 hops, zero waits.
  // latency = 5 = transit 3 + detour 2.
  const FlightTrace t = delivered_trace(0,
                                        {{0, 0, FlightEvent::kInject},
                                         {1, 4, FlightEvent::kAdvance},
                                         {2, 1, FlightEvent::kWrap},
                                         {3, 5, FlightEvent::kMisroute}},
                                        4);
  const FlightDecomposition d = decompose_flight(t, 2);
  EXPECT_EQ(d.latency, 5u);
  EXPECT_EQ(d.queue_wait, 0u);
  EXPECT_EQ(d.transit, 3u);
  EXPECT_EQ(d.detour, 2u);
}

TEST(FlightDecompositionTest, RejectsNonDeliveredAndPartialPasses) {
  FlightTrace in_flight = delivered_trace(0, {{0, 0, FlightEvent::kInject}}, 0);
  in_flight.outcome = FlightOutcome::kInFlight;
  EXPECT_THROW(decompose_flight(in_flight, 1), InvalidArgument);
  // 2 hops in a dimension-3 fabric is not a whole number of passes.
  const FlightTrace partial = delivered_trace(
      0, {{0, 0, FlightEvent::kInject}, {1, 16, FlightEvent::kAdvance}}, 2);
  EXPECT_THROW(decompose_flight(partial, 3), InvalidArgument);
}

TEST(FlightBlameTest, AggregatesWaitsByLinkAndStage) {
  // Two traces in a dimension-2, 4-row fabric (links 0..15; stage = link/8).
  // Link 3 is visited twice with waits 2 and 6; link 9 once with wait 1.
  const FlightTrace a = delivered_trace(
      0, {{0, 3, FlightEvent::kInject}, {3, 9, FlightEvent::kAdvance}}, 5);
  const FlightTrace b = delivered_trace(
      10, {{10, 3, FlightEvent::kInject}, {17, 8, FlightEvent::kAdvance}}, 18);
  const std::vector<FlightTrace> traces = {a, b};
  const FlightBlame blame = flight_blame(traces, 2, 4);
  ASSERT_EQ(blame.links.size(), 3u);
  // Heaviest wait_sum first: link 3 (2 + 6 = 8), then link 9 (1), then 8 (0).
  EXPECT_EQ(blame.links[0].link, 3u);
  EXPECT_EQ(blame.links[0].stage, 0);
  EXPECT_EQ(blame.links[0].visits, 2u);
  EXPECT_EQ(blame.links[0].wait_sum, 8u);
  EXPECT_EQ(blame.links[0].wait_max, 6u);
  EXPECT_EQ(blame.links[0].wait_p99, 6u);
  EXPECT_EQ(blame.links[1].link, 9u);
  EXPECT_EQ(blame.links[1].stage, 1);
  ASSERT_EQ(blame.stage_wait_sum.size(), 2u);
  EXPECT_EQ(blame.stage_wait_sum[0], 8u);
  EXPECT_EQ(blame.stage_wait_sum[1], 1u);
  EXPECT_EQ(blame.stage_visits[0], 2u);
  EXPECT_EQ(blame.stage_visits[1], 2u);
}

// --- wire-length path attribution -------------------------------------------

TEST(FlightDistanceTest, MatchesHandComputedB3Path) {
  // The all-cross bit-fixing path 0 -> 7 in B_3 visits, by hand:
  //   stage 0, row 0, cross -> link (0*8 + 0)*2 + 1 = 1
  //   stage 1, row 1, cross -> link (1*8 + 1)*2 + 1 = 19
  //   stage 2, row 3, cross -> link (2*8 + 3)*2 + 1 = 39
  const int n = 3;
  std::vector<u64> path;
  const RouteResult route = route_packet(n, FaultSet(n), {}, 0, 7, &path);
  ASSERT_TRUE(route.delivered);
  ASSERT_EQ(path, (std::vector<u64>{1, 19, 39}));

  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(n));
  const std::vector<i64> lengths = link_wire_lengths(plan);
  const SwapButterfly& net = plan.network();
  ASSERT_EQ(lengths.size(), static_cast<std::size_t>(net.num_links()));
  for (const i64 len : lengths) EXPECT_GT(len, 0);

  // Independent per-link lookup: key the layout's wires by their endpoint
  // node ids and resolve each hop through rho's inverse, bypassing
  // link_wire_lengths' index arithmetic entirely.
  const Layout layout = plan.materialize();
  std::map<std::pair<u64, u64>, i64> by_nodes;
  for (const Wire& wire : layout.wires()) {
    if (!wire.from_node || !wire.to_node) continue;
    by_nodes[{*wire.from_node, *wire.to_node}] = wire.length();
  }
  ASSERT_EQ(by_nodes.size(), static_cast<std::size_t>(net.num_links()));
  const u64 rows = net.rows();
  const auto physical_row = [&](int stage, u64 butterfly_row) {
    for (u64 u = 0; u < rows; ++u) {
      if (net.rho(stage, u) == butterfly_row) return u;
    }
    ADD_FAILURE() << "no physical row maps to butterfly row " << butterfly_row;
    return u64{0};
  };
  const u64 butterfly_rows[] = {0, 1, 3, 7};  // 0 -> 7, crossing every stage
  i64 expected = 0;
  for (int s = 0; s < n; ++s) {
    const u64 from = static_cast<u64>(s) * rows + physical_row(s, butterfly_rows[s]);
    const u64 to = static_cast<u64>(s + 1) * rows + physical_row(s + 1, butterfly_rows[s + 1]);
    ASSERT_TRUE(by_nodes.count({from, to})) << "stage " << s;
    expected += by_nodes[{from, to}];
  }

  FlightTrace t = delivered_trace(
      0, {{0, 1, FlightEvent::kInject}, {1, 19, FlightEvent::kAdvance}, {2, 39, FlightEvent::kAdvance}},
      3);
  EXPECT_EQ(flight_distance(t, lengths), expected);
  // Out-of-table links are rejected, not read out of bounds.
  t.hops[0].link = static_cast<u64>(lengths.size());
  EXPECT_THROW(flight_distance(t, lengths), InvalidArgument);
}

TEST(FlightDistanceTest, TotalAttachedWireLengthIsConserved) {
  // Every layout wire lands in exactly one link slot: the per-link table and
  // the raw wire list agree on the total routed length.
  const ButterflyLayoutPlan plan(ButterflyLayoutPlan::choose_parameters(4));
  const std::vector<i64> lengths = link_wire_lengths(plan);
  i64 table_total = 0;
  for (const i64 len : lengths) table_total += len;
  i64 wire_total = 0;
  const Layout layout = plan.materialize();
  for (const Wire& wire : layout.wires()) {
    if (wire.from_node && wire.to_node) wire_total += wire.length();
  }
  EXPECT_EQ(table_total, wire_total);
}

// --- JSON round-trip ---------------------------------------------------------

FlightRecorder populated_recorder() {
  FlightRecorder rec(4, 0xdeadbeefcafe1234u, 0);
  const u64 a = rec.on_packet(0, 0, 5);
  rec.on_hop(a, 0, 1, FlightEvent::kInject);
  rec.on_hop(a, 2, 19, FlightEvent::kAdvance);
  rec.on_hop(a, 3, 39, FlightEvent::kMisroute);
  rec.on_delivered(a, 4);
  const u64 b = rec.on_packet(1, 3, 6);
  rec.on_hop(b, 1, 7, FlightEvent::kInject);
  rec.on_dropped(b, 5, kFlightDropQueueFull);
  rec.on_packet(2, 1, 1);  // admitted, left in flight
  return rec;
}

TEST(FlightJsonTest, RoundTripIsBitwiseExact) {
  const FlightRecorder rec = populated_recorder();
  const FlightRecorder back = FlightRecorder::from_json(rec.to_json());
  EXPECT_TRUE(rec == back);
  EXPECT_EQ(rec.to_json().dump(), back.to_json().dump());
  // The full-u64 fields survive: seed needs all 64 bits (> 2^53).
  EXPECT_EQ(back.seed(), 0xdeadbeefcafe1234u);
}

/// `good` with its first trace replaced (json::Value has no mutable at(), so
/// malformed documents are rebuilt rather than edited in place).
json::Value with_first_trace(const json::Value& good, json::Value trace) {
  json::Value bad = good;
  json::Value traces = json::Value::array();
  traces.push_back(std::move(trace));
  for (std::size_t i = 1; i < good.at("traces").size(); ++i) {
    traces.push_back(good.at("traces").at(i));
  }
  bad.set("traces", std::move(traces));
  return bad;
}

/// The first trace of `good` with its first hop replaced by `hop`.
json::Value with_first_hop(const json::Value& good, const char* hop) {
  json::Value trace = good.at("traces").at(std::size_t{0});
  json::Value hops = json::Value::array();
  hops.push_back(json::Value::parse(hop));
  for (std::size_t i = 1; i < trace.at("hops").size(); ++i) {
    hops.push_back(trace.at("hops").at(i));
  }
  trace.set("hops", std::move(hops));
  return with_first_trace(good, std::move(trace));
}

TEST(FlightJsonTest, RejectsMalformedDocuments) {
  const json::Value good = populated_recorder().to_json();
  EXPECT_NO_THROW(FlightRecorder::from_json(good));

  json::Value bad = good;
  bad.set("v", json::Value::number(2));
  EXPECT_THROW(FlightRecorder::from_json(bad), InvalidArgument);

  bad = good;
  bad.set("seed", json::Value::string("not-hex"));
  EXPECT_THROW(FlightRecorder::from_json(bad), InvalidArgument);

  bad = good;
  bad.set("budget", json::Value::number(1));  // 3 traces > budget 1
  EXPECT_THROW(FlightRecorder::from_json(bad), InvalidArgument);

  // Outcome code out of range.
  json::Value trace = good.at("traces").at(std::size_t{0});
  trace.set("outcome", json::Value::number(3));
  EXPECT_THROW(FlightRecorder::from_json(with_first_trace(good, std::move(trace))),
               InvalidArgument);

  // Event code out of range; hop cycles that fail to increase (the first
  // trace's second hop is at cycle 2, so a first hop at cycle 2 collides).
  EXPECT_THROW(FlightRecorder::from_json(with_first_hop(good, "[0, 1, 4]")), InvalidArgument);
  EXPECT_THROW(FlightRecorder::from_json(with_first_hop(good, "[2, 1, 0]")), InvalidArgument);

  EXPECT_THROW(FlightRecorder::from_json(json::Value::parse("[]")), InvalidArgument);
}

TEST(FlightJsonTest, ChromeTraceIsValidJson) {
  const FlightRecorder rec = populated_recorder();
  const std::string trace = flight_chrome_trace_json(rec.traces(), /*rows=*/8);
  const json::Value doc = json::Value::parse(trace);
  ASSERT_TRUE(doc.is_object());
  const json::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // Trace a: 3 slices + deliver; trace b: 1 slice + drop; trace c (in
  // flight): nothing — its only hop has no known departure.
  EXPECT_EQ(events.size(), 6u);
  EXPECT_EQ(events.at(std::size_t{0}).at("ph").as_string(), "X");
  EXPECT_EQ(events.at(std::size_t{3}).at("ph").as_string(), "i");
}

// --- engine integration ------------------------------------------------------
//
// These run the real engines.  With BFLY_OBS compiled out the probe hooks
// vanish and the recorder stays empty — the tests then only assert the
// observation-changes-nothing half of the contract.

SweepPoint flight_point(u64 flight_budget, const FaultSet* faults = nullptr) {
  SweepPoint p;
  p.n = 6;
  p.offered_load = 0.5;
  p.cycles = 2000;
  p.seed = 42;
  p.warmup_cycles = 200;
  p.flight_budget = flight_budget;
  p.faults = faults;
  return p;
}

TEST(EngineFlightTest, RecorderLeavesTheOutcomeBitUnchanged) {
  const SweepPoint p = flight_point(0);
  const SaturationPoint without =
      simulate_saturation(p.n, p.offered_load, p.cycles, p.seed, p.warmup_cycles);
  FlightRecorder rec(64, p.seed, 0);
  const SaturationPoint with = simulate_saturation(p.n, p.offered_load, p.cycles, p.seed,
                                                   p.warmup_cycles, 0, nullptr, nullptr,
                                                   nullptr, &rec);
  EXPECT_EQ(without.delivered, with.delivered);
  EXPECT_EQ(without.max_queue, with.max_queue);
  EXPECT_DOUBLE_EQ(without.throughput, with.throughput);
  EXPECT_DOUBLE_EQ(without.avg_latency, with.avg_latency);
#if BFLY_OBS_ENABLED
  EXPECT_FALSE(rec.empty());
#else
  EXPECT_TRUE(rec.empty());
#endif
}

TEST(EngineFlightTest, SampledSetIsIdenticalAcrossThreadCounts) {
  const FaultSet faults = FaultSet::random_links(6, 0.03, 9);
  const std::vector<SweepPoint> points = {flight_point(32), flight_point(32, &faults)};
  const std::vector<SweepOutcome> serial = saturation_sweep(points, 1);
  const std::vector<SweepOutcome> two = saturation_sweep(points, 2);
  const std::vector<SweepOutcome> eight = saturation_sweep(points, 8);
  ASSERT_EQ(serial.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_TRUE(serial[i].flight == two[i].flight) << "point " << i;
    EXPECT_TRUE(serial[i].flight == eight[i].flight) << "point " << i;
  }
#if BFLY_OBS_ENABLED
  EXPECT_FALSE(serial[0].flight.empty());
  EXPECT_FALSE(serial[1].flight.empty());
#endif
}

TEST(EngineFlightTest, FaultyEngineOnEmptyFaultSetMatchesPristineBitwise) {
  // The strongest cross-engine claim: an empty FaultSet run records the
  // *same traces*, hop for hop, as the pristine engine — the creation
  // streams, sampling decisions, and queue dynamics all coincide.
  const SweepPoint p = flight_point(32);
  FlightRecorder pristine = make_flight_recorder(p);
  simulate_saturation(p.n, p.offered_load, p.cycles, p.seed, p.warmup_cycles, 0, nullptr,
                      nullptr, nullptr, &pristine);
  const FaultSet none(p.n);
  FlightRecorder faulty = make_flight_recorder(p);
  simulate_saturation_faulty(p.n, p.offered_load, p.cycles, p.seed, none, {},
                             p.warmup_cycles, 0, nullptr, nullptr, nullptr, &faulty);
  EXPECT_TRUE(pristine == faulty);
#if BFLY_OBS_ENABLED
  ASSERT_FALSE(pristine.empty());
#endif
}

#if BFLY_OBS_ENABLED
TEST(EngineFlightTest, EveryDeliveredTraceDecomposesExactly) {
  const FaultSet faults = FaultSet::random_links(6, 0.03, 9);
  const std::vector<SweepPoint> points = {flight_point(48), flight_point(48, &faults)};
  const std::vector<SweepOutcome> out = saturation_sweep(points, 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const FlightRecorder& rec = out[i].flight;
    ASSERT_FALSE(rec.empty()) << "point " << i;
    u64 delivered = 0;
    for (const FlightTrace& t : rec.traces()) {
      if (t.outcome == FlightOutcome::kDelivered) {
        ++delivered;
        const FlightDecomposition d = decompose_flight(t, points[i].n);
        EXPECT_EQ(d.queue_wait + d.transit + d.detour, d.latency);
        EXPECT_EQ(d.transit, static_cast<u64>(points[i].n) + 1);
        // Detour is exactly n hops per recorded wrap.
        u64 wraps = 0;
        for (const FlightHop& h : t.hops) {
          if (h.event == FlightEvent::kWrap) ++wraps;
        }
        EXPECT_EQ(d.detour, wraps * static_cast<u64>(points[i].n));
      } else if (t.outcome == FlightOutcome::kDropped) {
        EXPECT_LE(t.drop_reason, kFlightDropQueueFull);
      }
    }
    EXPECT_GT(delivered, 0u) << "point " << i;
  }
  // The pristine engine never misroutes or wraps.
  for (const FlightTrace& t : out[0].flight.traces()) {
    for (const FlightHop& h : t.hops) {
      EXPECT_TRUE(h.event == FlightEvent::kInject || h.event == FlightEvent::kAdvance);
    }
  }
}

TEST(EngineFlightTest, RecordedStateSurvivesTheJsonRoundTrip) {
  // The checkpoint-journal identity on real engine output, not synthetic
  // traces: decode(encode(x)) == x bit for bit.
  const std::vector<SweepPoint> points = {flight_point(32)};
  const std::vector<SweepOutcome> out = saturation_sweep(points, 1);
  ASSERT_FALSE(out[0].flight.empty());
  const FlightRecorder back = FlightRecorder::from_json(out[0].flight.to_json());
  EXPECT_TRUE(out[0].flight == back);
  EXPECT_EQ(out[0].flight.to_json().dump(), back.to_json().dump());
}
#endif  // BFLY_OBS_ENABLED

}  // namespace
}  // namespace bfly::obs
