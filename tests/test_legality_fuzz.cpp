// Randomized hardening of the legality checkers.
//
// Strategy: generate random *legal-by-construction* channel layouts (nodes
// in two rows, channel wires on private tracks with private terminal
// columns), assert the checkers accept them; then apply single random
// mutations that each break exactly one rule and assert the checkers reject.
// This guards the verifiers that everything else in the library leans on.
#include <gtest/gtest.h>

#include "layout/butterfly_layout.hpp"
#include "layout/legality.hpp"
#include "util/prng.hpp"

namespace bfly {
namespace {

struct RandomChannel {
  Layout layout;
  i64 track_y0 = 0;
  u64 num_wires = 0;
};

/// Two facing rows of nodes connected through a channel; wire i uses its own
/// terminal columns and its own track, with a random layer pair, so the
/// result is legal under both models by construction.
RandomChannel make_channel(u64 seed, u64 nodes_per_row, int max_layer_pairs) {
  Xoshiro256 rng(seed);
  RandomChannel ch;
  const i64 side = 8;
  const u64 wires = nodes_per_row * 4;  // 4 terminals per bottom node
  const i64 channel_height = static_cast<i64>(wires) + 2;
  const i64 top_row_y = side + channel_height;
  ch.track_y0 = side + 1;
  ch.num_wires = wires;

  for (u64 i = 0; i < nodes_per_row; ++i) {
    ch.layout.add_node(i, Rect::square(static_cast<i64>(i) * (side + 2), 0, side));
    ch.layout.add_node(1000 + i,
                       Rect::square(static_cast<i64>(i) * (side + 2), top_row_y, side));
  }
  // Random private track per wire (a shuffled permutation) and random layer
  // pair; terminals are unique per wire by construction (each wire has its
  // own source slot w%4 and its own destination slot w/nodes_per_row).
  std::vector<u64> track_of(wires);
  for (u64 w = 0; w < wires; ++w) track_of[w] = w;
  for (u64 i = wires - 1; i > 0; --i) std::swap(track_of[i], track_of[rng.below(i + 1)]);
  for (u64 w = 0; w < wires; ++w) {
    const u64 from = w / 4;
    const u64 to = w % nodes_per_row;
    const i64 from_x = static_cast<i64>(from) * (side + 2) + static_cast<i64>(w % 4);
    // Private terminal column on the destination node: offsets 4..7.
    const i64 to_x = static_cast<i64>(to) * (side + 2) + 4 + static_cast<i64>(w / nodes_per_row);
    const i64 track = ch.track_y0 + static_cast<i64>(track_of[w]);
    const int pair = static_cast<int>(rng.below(static_cast<u64>(max_layer_pairs)));
    const int v_layer = 2 * pair + 1;
    const int h_layer = 2 * pair + 2;
    ch.layout.add_wire(WireBuilder(Point{from_x, side - 1})
                           .from(from)
                           .to_y(track, v_layer)
                           .to_x(to_x, h_layer)
                           .to_y(top_row_y, v_layer)
                           .to(1000 + to)
                           .build());
  }
  return ch;
}

class ChannelFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ChannelFuzz, GeneratedChannelsAreLegal) {
  const RandomChannel ch = make_channel(GetParam(), 6, 3);
  const LegalityReport multi = check_multilayer(ch.layout);
  EXPECT_TRUE(multi.ok) << multi.summary();
}

TEST_P(ChannelFuzz, TwoLayerChannelsAreThompsonLegal) {
  const RandomChannel ch = make_channel(GetParam() ^ 0xabcd, 5, 1);
  const LegalityReport thompson = check_thompson(ch.layout);
  EXPECT_TRUE(thompson.ok) << thompson.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFuzz, ::testing::Range<u64>(1, 21),
                         [](const ::testing::TestParamInfo<u64>& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

// ---------------------------------------------------------------------------
// Mutations: each must be detected.
// ---------------------------------------------------------------------------

Layout mutate(const Layout& base, const std::function<void(std::vector<Wire>&)>& fn) {
  std::vector<Wire> wires(base.wires().begin(), base.wires().end());
  fn(wires);
  Layout out;
  for (const PlacedNode& n : base.nodes()) out.add_node(n.id, n.rect);
  for (Wire& w : wires) out.add_wire(std::move(w));
  return out;
}

class MutationFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(MutationFuzz, DuplicatedWireIsRejected) {
  const RandomChannel ch = make_channel(GetParam(), 5, 2);
  Xoshiro256 rng(GetParam() * 31);
  const Layout mutated = mutate(ch.layout, [&](std::vector<Wire>& wires) {
    wires.push_back(wires[rng.below(wires.size())]);  // exact overlap
  });
  EXPECT_FALSE(check_multilayer(mutated).ok);
}

TEST_P(MutationFuzz, TrackCollisionIsRejected) {
  const RandomChannel ch = make_channel(GetParam() ^ 0x1111, 5, 1);
  const Layout mutated = mutate(ch.layout, [&](std::vector<Wire>& wires) {
    // Move one wire's horizontal run onto the track of another wire whose
    // x-span overlaps it (such a pair always exists in these channels).
    for (std::size_t a = 0; a < wires.size(); ++a) {
      const Interval sa = make_interval(wires[a].points[1].x, wires[a].points[2].x);
      for (std::size_t b = a + 1; b < wires.size(); ++b) {
        const Interval sb = make_interval(wires[b].points[1].x, wires[b].points[2].x);
        if (!sa.overlaps(sb)) continue;
        wires[b].points[1].y = wires[a].points[1].y;
        wires[b].points[2].y = wires[a].points[2].y;
        return;
      }
    }
    FAIL() << "no overlapping pair found";
  });
  // Same track + same layer: either an overlap or an endpoint contact.
  EXPECT_FALSE(check_multilayer(mutated).ok);
}

TEST_P(MutationFuzz, DetachedTerminalIsRejected) {
  const RandomChannel ch = make_channel(GetParam() ^ 0x2222, 5, 2);
  Xoshiro256 rng(GetParam() * 41);
  const Layout mutated = mutate(ch.layout, [&](std::vector<Wire>& wires) {
    Wire& w = wires[rng.below(wires.size())];
    w.points.front().x += 1000;  // starts in free space now
    w.points[1].x += 1000;
  });
  EXPECT_FALSE(check_multilayer(mutated).ok);
  EXPECT_FALSE(check_thompson(mutated).ok);
}

TEST_P(MutationFuzz, LayerSquashIsRejected) {
  // Forcing every segment onto layer 1 creates same-layer crossings.
  const RandomChannel ch = make_channel(GetParam() ^ 0x3333, 6, 3);
  const Layout mutated = mutate(ch.layout, [&](std::vector<Wire>& wires) {
    for (Wire& w : wires) {
      for (int& layer : w.layers) layer = 1;
    }
  });
  EXPECT_FALSE(check_multilayer(mutated).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range<u64>(1, 11),
                         [](const ::testing::TestParamInfo<u64>& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

// The big constructions, fuzzed across node sizes and seeds of shape:
// every (k, L, W) combination here must produce a legal multilayer layout.
class ConstructionSweep
    : public ::testing::TestWithParam<std::tuple<std::vector<int>, int, i64, bool>> {};

TEST_P(ConstructionSweep, AlwaysLegal) {
  const auto& [k, L, node_side, fold] = GetParam();
  ButterflyLayoutOptions opt;
  opt.layers = L;
  opt.node_side = node_side;
  opt.fold_block_channels = fold;
  const ButterflyLayoutPlan plan(k, opt);
  const LegalityReport r = check_multilayer(plan.materialize());
  EXPECT_TRUE(r.ok) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConstructionSweep,
    ::testing::Values(std::make_tuple(std::vector<int>{2, 2, 2}, 2, 5, false),
                      std::make_tuple(std::vector<int>{2, 2, 2}, 3, 6, false),
                      std::make_tuple(std::vector<int>{3, 2, 2}, 4, 4, true),
                      std::make_tuple(std::vector<int>{2, 1, 1}, 2, 9, false),
                      std::make_tuple(std::vector<int>{3, 3, 1}, 6, 4, true),
                      std::make_tuple(std::vector<int>{2, 2, 2}, 5, 4, true),
                      std::make_tuple(std::vector<int>{3, 3, 3}, 7, 4, true),
                      std::make_tuple(std::vector<int>{1, 1, 1}, 4, 4, true)),
    [](const ::testing::TestParamInfo<std::tuple<std::vector<int>, int, i64, bool>>& pinfo) {
      std::string name = "k";
      for (const int v : std::get<0>(pinfo.param)) name += std::to_string(v);
      name += "_L" + std::to_string(std::get<1>(pinfo.param));
      name += "_W" + std::to_string(std::get<2>(pinfo.param));
      if (std::get<3>(pinfo.param)) name += "_fold";
      return name;
    });

}  // namespace
}  // namespace bfly
