#include "sim/sweep.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace bfly {

std::vector<SweepOutcome> saturation_sweep(std::span<const SweepPoint> points,
                                           std::size_t threads) {
  BFLY_TRACE_SCOPE("sim.saturation_sweep");
  std::vector<SweepOutcome> outcomes(points.size());
  if (points.empty()) return outcomes;
  if (threads == 0) threads = default_thread_count();

  // Element-wise chunking: each pool range runs its points in request order,
  // writing into the outcome slot for that index.  Counter/histogram traffic
  // from concurrent engines merges commutatively in the registry.
  parallel_for_chunked(0, points.size(), std::min(threads, points.size()),
                       [&](std::size_t lo, std::size_t hi, std::size_t /*tid*/) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           const SweepPoint& p = points[i];
                           if (p.faults == nullptr) {
                             outcomes[i].point = simulate_saturation(
                                 p.n, p.offered_load, p.cycles, p.seed, p.warmup_cycles,
                                 p.queue_capacity);
                           } else {
                             const FaultSaturationPoint fsp = simulate_saturation_faulty(
                                 p.n, p.offered_load, p.cycles, p.seed, *p.faults, p.routing,
                                 p.warmup_cycles, p.queue_capacity);
                             outcomes[i].point = fsp.point;
                             outcomes[i].tally = fsp.tally;
                           }
                         }
                       });

  // The engines' gauges are last-write-wins, which a parallel phase would
  // leave to the scheduler.  Re-set them from the last pristine / faulty
  // point in request order so the registry ends exactly as a serial
  // point-by-point run would leave it.
  for (std::size_t i = points.size(); i-- > 0;) {
    if (points[i].faults == nullptr) {
      obs::set(obs::get_gauge("routing.max_queue"),
               static_cast<double>(outcomes[i].point.max_queue));
      obs::set(obs::get_gauge("routing.throughput"), outcomes[i].point.throughput);
      break;
    }
  }
  for (std::size_t i = points.size(); i-- > 0;) {
    if (points[i].faults != nullptr) {
      obs::set(obs::get_gauge("fault.max_queue"),
               static_cast<double>(outcomes[i].point.max_queue));
      obs::set(obs::get_gauge("fault.throughput"), outcomes[i].point.throughput);
      break;
    }
  }
  return outcomes;
}

}  // namespace bfly
