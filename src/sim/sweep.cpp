#include "sim/sweep.hpp"

#include <cmath>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/sharded_sim.hpp"
#include "util/parallel.hpp"

namespace bfly {

void validate_sweep_point(const SweepPoint& point, std::size_t index) {
  const std::string where = "sweep point " + std::to_string(index) + ": ";
  BFLY_REQUIRE(point.n >= 1 && point.n <= 30,
               where + "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(point.cycles > 0, where + "cycles must be positive");
  BFLY_REQUIRE(point.warmup_cycles < point.cycles,
               where + "warmup_cycles must be less than cycles");
  BFLY_REQUIRE(std::isfinite(point.offered_load), where + "offered_load must be finite");
  BFLY_REQUIRE(point.offered_load >= 0.0 && point.offered_load <= 1.0,
               where + "offered_load is a probability (must be in [0, 1])");
  BFLY_REQUIRE(point.telemetry_budget == 0 || point.telemetry_budget >= 2,
               where + "telemetry_budget must be 0 (off) or >= 2 samples");
  BFLY_REQUIRE(point.flight_budget <= (u64{1} << 32),
               where + "flight_budget is a per-point trace cap, not a packet count");
  BFLY_REQUIRE(point.routing.misroute_budget >= 0,
               where + "misroute_budget must be non-negative");
  BFLY_REQUIRE(point.routing.wrap_budget >= 0, where + "wrap_budget must be non-negative");
  if (point.faults != nullptr) {
    BFLY_REQUIRE(point.faults->dimension() == point.n,
                 where + "fault set dimension does not match n");
  }
  if (point.schedule != nullptr) {
    BFLY_REQUIRE(point.schedule->dimension() == point.n,
                 where + "fault schedule dimension does not match n");
  }
  BFLY_REQUIRE(point.shard_count == 0 ||
                   (is_pow2(point.shard_count) && point.shard_count <= pow2(point.n)),
               where + "shard_count must be 0 (serial) or a power of two at most 2^n");
}

obs::FlightRecorder make_flight_recorder(const SweepPoint& point) {
  const u64 rows = pow2(point.n);
  const double expected =
      point.offered_load * static_cast<double>(rows) * static_cast<double>(point.cycles);
  return obs::FlightRecorder(point.flight_budget, point.seed,
                             static_cast<u64>(expected), point.n, rows);
}

SweepOutcome run_sweep_point(const SweepPoint& p, const CancelToken* cancel,
                             obs::TimeSeries* timeseries, obs::FlightRecorder* flight) {
  SweepOutcome outcome;
  // Sharded eligibility: the cycle-parallel engine carries neither probes
  // nor live schedules yet, so any of those sends the point to the serial
  // engines (documented fallback — the outcome then matches the
  // shard_count == 0 point bitwise).
  const bool sharded = p.shard_count > 0 && p.telemetry_budget == 0 &&
                       p.flight_budget == 0 && p.schedule == nullptr;
  if (sharded) {
    ShardedOptions opt;
    opt.shard_count = p.shard_count;
    opt.warmup_cycles = p.warmup_cycles;
    opt.queue_capacity = p.queue_capacity;
    opt.routing = p.routing;
    const ShardedSaturationPoint sp = simulate_saturation_sharded(
        p.n, p.offered_load, p.cycles, p.seed, opt, p.faults, cancel);
    outcome.point = sp.point;
    outcome.tally = sp.tally;
    return outcome;
  }
  if (!sweep_point_is_faulty(p)) {
    outcome.point = simulate_saturation(p.n, p.offered_load, p.cycles, p.seed,
                                        p.warmup_cycles, p.queue_capacity, cancel,
                                        timeseries, nullptr, flight);
    return outcome;
  }
  // A scheduled point without a static fault set starts from the pristine
  // base.
  std::optional<FaultSet> empty_base;
  if (p.faults == nullptr) empty_base.emplace(p.n);
  const FaultSet& base = p.faults != nullptr ? *p.faults : *empty_base;
  const FaultSaturationPoint fsp = simulate_saturation_faulty(
      p.n, p.offered_load, p.cycles, p.seed, base, p.routing, p.warmup_cycles,
      p.queue_capacity, cancel, timeseries, nullptr, flight, p.schedule);
  outcome.point = fsp.point;
  outcome.tally = fsp.tally;
  outcome.live = fsp.live;
  return outcome;
}

std::vector<SweepOutcome> saturation_sweep(std::span<const SweepPoint> points,
                                           std::size_t threads) {
  BFLY_TRACE_SCOPE("sim.saturation_sweep");
  for (std::size_t i = 0; i < points.size(); ++i) validate_sweep_point(points[i], i);
  std::vector<SweepOutcome> outcomes(points.size());
  if (points.empty()) return outcomes;
  if (threads == 0) threads = default_thread_count();

  // Element-wise chunking: each pool range runs its points in request order,
  // writing into the outcome slot for that index.  Counter/histogram traffic
  // from concurrent engines merges commutatively in the registry.
  parallel_for_chunked(0, points.size(), std::min(threads, points.size()),
                       [&](std::size_t lo, std::size_t hi, std::size_t /*tid*/) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           const SweepPoint& p = points[i];
                           // Each point gets its own TimeSeries (no sharing
                           // across pool threads), so telemetry stays bitwise
                           // deterministic for any pool size.  The series is
                           // installed in the outcome only when the engine
                           // actually filled it, so a BFLY_OBS=OFF build (where
                           // the probe compiles out) leaves the outcome exactly
                           // as a checkpoint replay would restore it.
                           obs::TimeSeries ts(std::max<u64>(p.telemetry_budget, 2));
                           obs::TimeSeries* ts_ptr =
                               p.telemetry_budget > 0 ? &ts : nullptr;
                           obs::FlightRecorder flight = make_flight_recorder(p);
                           obs::FlightRecorder* flight_ptr =
                               flight.enabled() ? &flight : nullptr;
                           outcomes[i] = run_sweep_point(p, nullptr, ts_ptr, flight_ptr);
                           if (!ts.empty()) outcomes[i].timeseries = std::move(ts);
                           if (!flight.empty()) outcomes[i].flight = std::move(flight);
                         }
                       });

  reset_sweep_gauges(points, outcomes);
  return outcomes;
}

void reset_sweep_gauges(std::span<const SweepPoint> points,
                        std::span<const SweepOutcome> outcomes,
                        const std::vector<std::uint8_t>* completed) {
  BFLY_REQUIRE(points.size() == outcomes.size(),
               "reset_sweep_gauges: points/outcomes size mismatch");
  // The engines' gauges are last-write-wins, which a parallel phase would
  // leave to the scheduler.  Re-set them from the last completed pristine /
  // faulty point in request order so the registry ends exactly as a serial
  // point-by-point run over the completed set would leave it.
  const auto is_completed = [&](std::size_t i) {
    return completed == nullptr || (*completed)[i] != 0;
  };
  for (std::size_t i = points.size(); i-- > 0;) {
    if (!sweep_point_is_faulty(points[i]) && is_completed(i)) {
      obs::set(obs::get_gauge("routing.max_queue"),
               static_cast<double>(outcomes[i].point.max_queue));
      obs::set(obs::get_gauge("routing.throughput"), outcomes[i].point.throughput);
      break;
    }
  }
  for (std::size_t i = points.size(); i-- > 0;) {
    if (sweep_point_is_faulty(points[i]) && is_completed(i)) {
      obs::set(obs::get_gauge("fault.max_queue"),
               static_cast<double>(outcomes[i].point.max_queue));
      obs::set(obs::get_gauge("fault.throughput"), outcomes[i].point.throughput);
      break;
    }
  }
}

}  // namespace bfly
