#include "sim/degradation.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfly {

DegradationSweep degradation_sweep(int n, std::span<const double> rates, u64 seed,
                                   const DegradationOptions& options) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(options.routing.misroute_budget >= 0, "misroute_budget must be non-negative");
  BFLY_REQUIRE(options.routing.wrap_budget >= 0, "wrap_budget must be non-negative");
  // Reject bad rates before any fault set is built, naming the offending
  // index (the validate_sweep_point style): a NaN or out-of-range rate would
  // otherwise surface as an opaque failure deep inside FaultSet.
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const std::string where = "degradation rate " + std::to_string(i) + ": ";
    BFLY_REQUIRE(std::isfinite(rates[i]), where + "rate must be finite");
    BFLY_REQUIRE(rates[i] >= 0.0 && rates[i] <= 1.0,
                 where + "rate is a probability (must be in [0, 1])");
  }
  // Build every rate's fault set up front (serial, deterministic); the
  // per-rate queued simulations are independent and can then run as one
  // batched sweep on any driver.  The outcomes are bitwise identical to the
  // seed's serial per-rate calls.
  DegradationSweep sweep;
  sweep.fault_sets.reserve(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    sweep.fault_sets.push_back(
        FaultSet::random_links(n, rates[i], seed ^ (0x9e3779b97f4a7c15ULL * (i + 1))));
  }
  sweep.sweep_points.resize(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    SweepPoint& sp = sweep.sweep_points[i];
    sp.n = n;
    sp.offered_load = options.offered_load;
    sp.cycles = options.sim_cycles;
    sp.seed = seed;
    sp.warmup_cycles = options.sim_warmup;
    sp.queue_capacity = options.queue_capacity;
    sp.faults = &sweep.fault_sets[i];
    sp.routing = options.routing;
  }
  return sweep;
}

std::vector<DegradationPoint> degradation_curve_from(int n, std::span<const double> rates,
                                                     u64 seed,
                                                     const DegradationOptions& options,
                                                     const DegradationSweep& sweep,
                                                     std::span<const SweepOutcome> sims) {
  BFLY_REQUIRE(sweep.fault_sets.size() == rates.size(),
               "degradation_curve_from: sweep does not match rates");
  BFLY_REQUIRE(sims.size() == rates.size(),
               "degradation_curve_from: outcome count does not match rates");
  std::vector<DegradationPoint> curve;
  curve.reserve(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const FaultSet& faults = sweep.fault_sets[i];

    DegradationPoint pt;
    pt.link_fault_rate = rates[i];
    pt.dead_links = faults.num_dead_links();

    const FaultLoadCensus census =
        measure_link_loads_faulty(n, options.census_packets, seed, faults, options.routing,
                                  options.census_threads);
    pt.delivered_fraction = census.delivered_fraction;
    pt.dropped_endpoint =
        census.tally.dropped[drop_index(DropReason::kEndpointDead)];
    pt.dropped_no_alive_link =
        census.tally.dropped[drop_index(DropReason::kNoAliveLink)];
    pt.dropped_budget =
        census.tally.dropped[drop_index(DropReason::kBudgetExhausted)];
    pt.misroutes = census.tally.misroutes;
    pt.wraps = census.tally.wraps;
    pt.imbalance = census.census.imbalance;

    if (n <= options.exact_reachability_max_n) {
      pt.reachability = exact_reachability(n, faults);
      pt.reachability_exact = true;
    } else {
      pt.reachability = census.delivered_fraction;
      pt.reachability_exact = false;
    }

    const SweepOutcome& sim = sims[i];
    pt.throughput = sim.point.throughput;
    pt.avg_latency = sim.point.avg_latency;
    pt.sim_delivered = sim.point.delivered;
    pt.sim_dropped_queue_full =
        sim.tally.dropped[drop_index(DropReason::kQueueFull)];

    obs::set(obs::get_gauge("fault.curve.reachability"), pt.reachability);
    obs::set(obs::get_gauge("fault.curve.throughput"), pt.throughput);
    curve.push_back(pt);
  }
  return curve;
}

std::vector<DegradationPoint> degradation_curve(int n, std::span<const double> rates, u64 seed,
                                                const DegradationOptions& options) {
  BFLY_TRACE_SCOPE("fault.degradation_curve");
  const DegradationSweep sweep = degradation_sweep(n, rates, seed, options);
  const std::vector<SweepOutcome> sims = saturation_sweep(sweep.sweep_points);
  return degradation_curve_from(n, rates, seed, options, sweep, sims);
}

ChipFaultImpact analyze_chip_fault(const HierarchicalPlan& plan, u64 chip,
                                   bool with_reachability) {
  BFLY_REQUIRE(!plan.k.empty(), "plan has no ISN parameters");
  const SwapButterfly sb(plan.k);
  const int n = sb.dimension();
  const u64 rows = sb.rows();
  const u64 chips = rows >> plan.rows_log2;
  BFLY_REQUIRE(chip < chips, "chip index out of range");

  ChipFaultImpact impact;
  impact.chip = chip;

  FaultSet faults(n);
  faults.fail_chip(sb, plan.rows_log2, chip);
  impact.nodes_lost = faults.num_dead_nodes();

  // Distinct butterfly rows with at least one dead node, via the per-stage
  // row maps rho_s of the chip's swap-butterfly row block.
  std::vector<std::uint8_t> row_hit(rows, 0);
  const u64 first_row = chip << plan.rows_log2;
  const u64 last_row = first_row + pow2(plan.rows_log2);
  for (int s = 0; s <= n; ++s) {
    for (u64 v = first_row; v < last_row; ++v) row_hit[sb.rho(s, v)] = 1;
  }
  for (const std::uint8_t hit : row_hit) impact.rows_touched += hit;

  // Off-module (swap) links incident to the chip become dead wires of the
  // board channel: count every swap-butterfly link with exactly one endpoint
  // in the chip's row block.
  for (int s = 0; s < n; ++s) {
    for (u64 v = 0; v < rows; ++v) {
      const u64 module_v = v >> plan.rows_log2;
      for (const u64 t : {sb.straight_target(v, s), sb.cross_target(v, s)}) {
        const u64 module_t = t >> plan.rows_log2;
        if ((module_v == chip) != (module_t == chip)) ++impact.dead_offmodule_links;
      }
    }
  }

  if (with_reachability) impact.reachability = exact_reachability(n, faults);
  return impact;
}

SpareChipSummary spare_chip_sensitivity(const HierarchicalPlan& plan) {
  BFLY_TRACE_SCOPE("fault.spare_chip_sensitivity");
  SpareChipSummary summary;
  summary.num_chips = plan.num_chips;
  summary.nodes_per_chip = plan.nodes_per_chip;
  summary.min_dead_offmodule_links = ~u64{0};
  summary.best_reachability = 0.0;
  summary.worst_reachability = 2.0;
  for (u64 chip = 0; chip < plan.num_chips; ++chip) {
    const ChipFaultImpact impact = analyze_chip_fault(plan, chip, /*with_reachability=*/true);
    summary.min_dead_offmodule_links =
        std::min(summary.min_dead_offmodule_links, impact.dead_offmodule_links);
    summary.max_dead_offmodule_links =
        std::max(summary.max_dead_offmodule_links, impact.dead_offmodule_links);
    summary.best_reachability = std::max(summary.best_reachability, impact.reachability);
    if (impact.reachability < summary.worst_reachability) {
      summary.worst_reachability = impact.reachability;
      summary.worst_chip = chip;
    }
  }
  obs::set(obs::get_gauge("fault.spare_chip.worst_reachability"), summary.worst_reachability);
  obs::set(obs::get_gauge("fault.spare_chip.max_dead_offmodule_links"),
           static_cast<double>(summary.max_dead_offmodule_links));
  return summary;
}

}  // namespace bfly
