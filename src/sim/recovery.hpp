// Recovery analytics: what a live fault event costs, and how fast the fabric
// comes back.
//
//  * analyze_recovery() reads a scheduled run's cycle-resolved telemetry
//    (the delivered/dropped channels a telemetry_budget > 0 point records)
//    against its FaultSchedule and reports, per fail epoch: the pre-event
//    delivered-throughput steady state, the time until the delivered rate
//    re-enters a band around it (the same rolling-window mean criterion as
//    obs::steady_state_onset, anchored at the pre-event mean instead of the
//    tail reference), and the packets lost during the transient.  Everything
//    is a pure function of the (deterministic) series and schedule, so the
//    numbers are exact-gateable in CI.
//  * availability_curve() sweeps MTBF/MTTR pairs: each point runs a seeded
//    random link schedule (FaultSchedule::random_links) through the queued
//    simulator next to a pristine baseline, and reports delivered-throughput
//    availability (delivered / pristine delivered), recovery statistics, and
//    the fault-kill loss count.  Split into sweep / curve_from / curve
//    exactly like degradation_curve, so benches can route the simulations
//    through a resilient driver.
//
// Lives in bfly::sim (above fault + obs) next to degradation.hpp: the static
// world's curve measures coexistence with faults, this one measures the
// transition into and out of them.
#pragma once

#include <span>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "obs/timeseries.hpp"
#include "sim/sweep.hpp"

namespace bfly {

struct RecoveryOptions {
  /// Rolling-window width (samples) for both the pre-event reference mean
  /// and the re-entry test; obs::steady_state_onset's default.
  std::size_t window = 8;
  /// Relative band around the pre-event mean.  Re-entry is one-sided
  /// (rate >= pre * (1 - tolerance)): post-repair overshoot above the old
  /// steady state is recovery, not a violation.
  double tolerance = 0.10;
};

/// One fail epoch (all fail events scheduled at the same cycle are one
/// disturbance) and its measured recovery.
struct RecoveryEvent {
  u64 fault_cycle = 0;
  /// Mean delivered rate (packets/cycle) over the `window` samples before
  /// the epoch — the throughput the fabric must re-attain.
  double pre_throughput = 0.0;
  bool recovered = false;
  u64 recovered_cycle = 0;           ///< valid iff recovered
  u64 time_to_recover_cycles = 0;    ///< recovered_cycle - fault_cycle, iff recovered
  /// Cumulative drop-channel delta from the last pre-event sample to the
  /// recovery sample (or to the end of the series when never recovered):
  /// packets the transient cost, exact integers.
  u64 packets_lost = 0;
};

struct RecoveryAnalysis {
  /// True when the series carried the needed channels and enough samples;
  /// false leaves everything else zero (e.g. BFLY_OBS=OFF builds, or a
  /// point that ran without a telemetry budget).
  bool applicable = false;
  std::vector<RecoveryEvent> events;  ///< one per distinct fail cycle, in order
  u64 events_recovered = 0;
  u64 packets_lost_total = 0;  ///< sum of per-event transient losses
  /// Mean delivered rate over the final `window` samples divided by the
  /// first epoch's pre_throughput: the residual degradation after all
  /// repairs settled (1.0 = full recovery, < 1 = lasting damage, 0 when no
  /// epoch had a measurable pre state).
  double residual_throughput = 0.0;
};

/// Analyzes one scheduled run.  `timeseries` must come from the engine that
/// ran `schedule` (the delivered/dropped channels are read; fail epochs come
/// from the schedule).  Returns applicable = false rather than throwing when
/// the series is empty or lacks the channels.
RecoveryAnalysis analyze_recovery(const obs::TimeSeries& timeseries,
                                  const FaultSchedule& schedule,
                                  const RecoveryOptions& options = {});

struct AvailabilityOptions {
  u64 sim_cycles = 4000;
  u64 sim_warmup = 0;  ///< keep 0: the availability ratio wants whole-run counts
  double offered_load = 0.6;
  u64 queue_capacity = 0;
  /// Telemetry budget for each point (>= 2); recovery analytics need the
  /// cycle-resolved series, so unlike other sweeps this is on by default.
  u64 telemetry_budget = 256;
  FaultRoutingOptions routing{};
  RecoveryOptions recovery{};
  LinkDeathPolicy link_death = LinkDeathPolicy::kKillInFlight;
};

struct AvailabilityPoint {
  u64 mtbf = 0;  ///< mean cycles between failures, per link
  u64 mttr = 0;  ///< mean cycles to repair, per link
  u64 fail_events = 0;    ///< schedule fail events applied during the run
  u64 repair_events = 0;
  /// Delivered packets / the pristine baseline's delivered packets (same
  /// load, cycles, and seed): the service level the fault process leaves.
  double availability = 0.0;
  double avg_time_to_recover = 0.0;  ///< over recovered epochs (0 when none)
  u64 events_total = 0;              ///< distinct fail epochs
  u64 events_recovered = 0;
  u64 packets_lost = 0;    ///< transient losses (recovery analysis)
  u64 packets_killed = 0;  ///< DropReason::kKilledByFault tally
};

/// The queued-simulation half of an availability curve, split like
/// DegradationSweep: sweep_points[0] is the pristine baseline,
/// sweep_points[i + 1] runs schedules[i] (the seeded random link schedule
/// for (mtbf[i], mttr[i])).  Keep the struct alive until the sweep has run.
struct AvailabilitySweep {
  std::vector<FaultSchedule> schedules;
  std::vector<SweepPoint> sweep_points;
};

/// Builds the baseline point plus one scheduled point per (mtbf, mttr) pair.
/// `mtbf` and `mttr` are paired spans of equal length; entries are validated
/// with index-carrying messages (mtbf >= 2, mttr >= 1).  The schedule for
/// pair i is FaultSchedule::random_links(n, mtbf[i], mttr[i], sim_cycles,
/// mix(seed, i)).
AvailabilitySweep availability_sweep(int n, std::span<const u64> mtbf,
                                     std::span<const u64> mttr, u64 seed,
                                     const AvailabilityOptions& options = {});

/// Assembles the curve from an availability_sweep()'s outcomes.  `sims` must
/// be the outcome vector of running `sweep.sweep_points` (any driver).
std::vector<AvailabilityPoint> availability_curve_from(int n, std::span<const u64> mtbf,
                                                       std::span<const u64> mttr, u64 seed,
                                                       const AvailabilityOptions& options,
                                                       const AvailabilitySweep& sweep,
                                                       std::span<const SweepOutcome> sims);

/// Convenience wrapper: availability_sweep -> saturation_sweep ->
/// availability_curve_from.
std::vector<AvailabilityPoint> availability_curve(int n, std::span<const u64> mtbf,
                                                  std::span<const u64> mttr, u64 seed,
                                                  const AvailabilityOptions& options = {});

}  // namespace bfly
