// Batched saturation sweeps: run many (offered_load, seed, FaultSet) queued
// simulations concurrently on the shared thread pool.
//
// Each sweep point is an independent simulation with its own RNG stream, so
// the outcome vector is bitwise identical to calling simulate_saturation /
// simulate_saturation_faulty point by point in order — for any pool size
// (tests/test_sim.cpp asserts both).  The only shared state the simulators
// touch is the obs registry: counter and histogram merges are commutative,
// and the engines' last-write-wins gauges (routing.max_queue,
// routing.throughput, fault.max_queue, fault.throughput) are re-set
// deterministically after the parallel phase from the last pristine / faulty
// point in request order, exactly as a serial run would leave them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_routing.hpp"
#include "fault/fault_set.hpp"
#include "obs/flight.hpp"
#include "obs/timeseries.hpp"
#include "routing/routing.hpp"

namespace bfly {

/// One queued-simulation request.  `faults == nullptr` runs the pristine
/// engine (simulate_saturation); otherwise the budgeted faulty engine runs
/// against *faults, which must outlive the sweep call.
struct SweepPoint {
  int n = 0;
  double offered_load = 0.0;
  u64 cycles = 0;
  u64 seed = 0;
  u64 warmup_cycles = 0;
  u64 queue_capacity = 0;
  /// Sample budget for cycle-resolved telemetry; 0 (the default) disables the
  /// probe and leaves the engine bit-for-bit as before.  Part of the
  /// checkpoint identity (exec::sweep_point_key hashes it), since it changes
  /// what an outcome carries.
  u64 telemetry_budget = 0;
  /// Sample budget for the per-packet flight recorder (obs/flight.hpp); 0
  /// (the default) disables it.  Like telemetry_budget it is part of the
  /// checkpoint identity: it changes what an outcome carries, so
  /// exec::sweep_point_key hashes it too.
  u64 flight_budget = 0;
  const FaultSet* faults = nullptr;
  FaultRoutingOptions routing{};
  /// Live fault timeline (fault/fault_schedule.hpp); nullptr (the default)
  /// keeps the fault world static.  A non-null schedule routes the point
  /// through the faulty engine even when `faults` is null (the base state is
  /// then the empty FaultSet) and joins the checkpoint identity via its
  /// content_hash().  Must outlive the sweep call.
  const FaultSchedule* schedule = nullptr;
  /// Power-of-two shard count for the cycle-parallel engine
  /// (routing/sharded_sim.hpp); 0 (the default) keeps the serial engines.
  /// A sharded point's outcome is a pure function of
  /// (n, offered_load, cycles, seed, shard_count) — *different* bits than
  /// the serial engines produce for the same parameters, so shard_count
  /// joins the checkpoint identity (exec::sweep_point_key hashes it; v5
  /// journal).  Points that also request telemetry, flight tracing, or a
  /// live schedule fall back to the serial engines (the probes are not
  /// wired into the sharded engine yet): their outcomes equal the
  /// shard_count == 0 outcome bitwise, under a distinct checkpoint key.
  u64 shard_count = 0;
};

/// True when the point needs the faulty engine: a static fault set, a live
/// schedule, or both.  Engine dispatch and gauge bookkeeping key off this.
inline bool sweep_point_is_faulty(const SweepPoint& point) {
  return point.faults != nullptr || point.schedule != nullptr;
}

/// The FlightRecorder a sweep point asks for: sampling seeded by the point's
/// own seed, with the admission threshold derived from the expected packet
/// count offered_load * 2^n * cycles.  Every layer that runs a point
/// (saturation_sweep, exec::run_sweep_resumable) constructs its recorder
/// through this one helper so the sampled subset is identical wherever the
/// point runs — that shared derivation is what makes checkpoint replay and
/// thread-count changes bitwise invisible.
obs::FlightRecorder make_flight_recorder(const SweepPoint& point);

/// Result of one sweep point.  `tally` is all-zero for pristine points;
/// `timeseries` is empty unless the point requested a telemetry budget (its
/// samples are a pure function of the point, so they replay bitwise
/// identically from checkpoints), and `flight` likewise holds recorded
/// per-packet traces only when the point set a flight_budget.
struct SweepOutcome {
  SaturationPoint point;
  FaultTally tally;
  /// Schedule-application counters; all zero unless the point carried one.
  LiveFaultStats live;
  obs::TimeSeries timeseries;
  obs::FlightRecorder flight;
};

/// Rejects malformed requests before any engine runs: cycles == 0,
/// warmup_cycles >= cycles, non-finite or out-of-[0,1] offered_load, and n
/// outside [1, 30] all throw InvalidArgument naming the offending point
/// index — instead of failing deep inside an engine or silently producing an
/// all-zero outcome.  Called by saturation_sweep and exec::run_sweep_resumable
/// on every point up front.
void validate_sweep_point(const SweepPoint& point, std::size_t index);

/// Runs one (already validated) sweep point through the right engine — the
/// single dispatch point shared by saturation_sweep and
/// exec::run_sweep_resumable, so engine-eligibility rules (sharded vs
/// serial, pristine vs faulty, schedule base-state) live in exactly one
/// place.  `timeseries` / `flight` may be null; a non-null `cancel` is
/// threaded into the engine.  The timeseries/flight sinks are installed
/// into the returned outcome by the *caller* (which owns their lifetime and
/// the cancellation-discard policy).
SweepOutcome run_sweep_point(const SweepPoint& point, const CancelToken* cancel,
                             obs::TimeSeries* timeseries, obs::FlightRecorder* flight);

/// Runs every point (in parallel, `threads` = max concurrency, 0 = default)
/// and returns outcomes indexed like `points`.
std::vector<SweepOutcome> saturation_sweep(std::span<const SweepPoint> points,
                                           std::size_t threads = 0);

/// Re-sets the engines' last-write-wins gauges (routing.max_queue,
/// routing.throughput, fault.max_queue, fault.throughput) from the last
/// pristine / faulty outcome in request order, exactly as a serial
/// point-by-point run would leave them.  `completed`, when non-null, marks
/// which outcome slots hold real results (resumable runs skip the rest);
/// null means all of them.  Shared by saturation_sweep and the exec layer.
void reset_sweep_gauges(std::span<const SweepPoint> points,
                        std::span<const SweepOutcome> outcomes,
                        const std::vector<std::uint8_t>* completed = nullptr);

}  // namespace bfly
