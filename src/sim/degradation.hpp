// Graceful-degradation analysis: how much service a faulted butterfly still
// delivers, and what a chip failure costs the Section 5 package.
//
//  * degradation_curve() sweeps link-fault rates and measures, per rate, the
//    BFS-oracle reachability, the budgeted router's delivered fraction and
//    drop breakdown (Monte-Carlo census), and saturation throughput/latency
//    (queued simulator).  Everything is seeded and bitwise deterministic, so
//    the curve can be gated as exact-match artifact stats in CI.
//  * analyze_chip_fault() / spare_chip_sensitivity() quantify packaging
//    robustness: killing one physical chip of the hierarchical plan's
//    row-block packing (mapped through the swap-butterfly isomorphism) loses
//    a fixed block of nodes and turns that chip's off-module links dead;
//    the sweep over chips reports the spare-provisioning picture — how bad
//    the worst single-chip failure is, measured by surviving reachability.
//
// Lives in bfly::sim (above fault + packaging) so the per-rate queued
// simulations can run as one batched saturation_sweep() on the shared pool.
#pragma once

#include <span>
#include <vector>

#include "fault/fault_routing.hpp"
#include "fault/fault_set.hpp"
#include "packaging/hierarchical.hpp"
#include "sim/sweep.hpp"

namespace bfly {

struct DegradationOptions {
  u64 census_packets = 200000;      ///< Monte-Carlo packets per rate
  std::size_t census_threads = 0;   ///< 0 = default (result is thread-count invariant)
  u64 sim_cycles = 2000;
  u64 sim_warmup = 200;
  double offered_load = 0.6;
  u64 queue_capacity = 0;           ///< 0 = unbounded queues
  FaultRoutingOptions routing{};
  /// Use the exhaustive BFS oracle for reachability up to this dimension;
  /// beyond it, reachability falls back to the census delivered fraction.
  int exact_reachability_max_n = 12;
};

struct DegradationPoint {
  double link_fault_rate = 0.0;
  u64 dead_links = 0;
  /// Fraction of (src, dst) pairs with *any* surviving path (BFS oracle when
  /// exact, else the router's delivered fraction — a lower bound).
  double reachability = 0.0;
  bool reachability_exact = false;
  /// Census (budgeted router, census_packets uniform random packets):
  double delivered_fraction = 0.0;
  u64 dropped_endpoint = 0;
  u64 dropped_no_alive_link = 0;
  u64 dropped_budget = 0;
  u64 misroutes = 0;
  u64 wraps = 0;
  double imbalance = 0.0;
  /// Queued saturation simulation at offered_load:
  double throughput = 0.0;
  double avg_latency = 0.0;
  u64 sim_delivered = 0;
  u64 sim_dropped_queue_full = 0;
};

/// The queued-simulation half of a degradation curve, split out so callers
/// can route the simulations through a resilient driver (e.g.
/// exec::run_sweep_resumable) instead of the plain saturation_sweep the
/// convenience wrapper uses.  Owns the per-rate fault sets; sweep_points[i]
/// references fault_sets[i], so keep the struct alive (moves are fine —
/// vector moves preserve element addresses) until the sweep has run.
struct DegradationSweep {
  std::vector<FaultSet> fault_sets;
  std::vector<SweepPoint> sweep_points;
};

/// Builds the fault set and queued-simulation request for every rate; the
/// fault set for rates[i] is FaultSet::random_links(n, rates[i], mix(seed, i)).
DegradationSweep degradation_sweep(int n, std::span<const double> rates, u64 seed,
                                   const DegradationOptions& options = {});

/// Assembles the curve from a degradation_sweep()'s simulation outcomes plus
/// the (serial, deterministic) census and reachability instruments.  `sims`
/// must be the outcome vector of running `sweep.sweep_points` (any driver).
std::vector<DegradationPoint> degradation_curve_from(int n, std::span<const double> rates,
                                                     u64 seed,
                                                     const DegradationOptions& options,
                                                     const DegradationSweep& sweep,
                                                     std::span<const SweepOutcome> sims);

/// One DegradationPoint per entry of `rates`; the fault set for rates[i] is
/// FaultSet::random_links(n, rates[i], mix(seed, i)).  A rate of 0 reproduces
/// the pristine instruments exactly.  Convenience wrapper: degradation_sweep
/// -> saturation_sweep -> degradation_curve_from.
std::vector<DegradationPoint> degradation_curve(int n, std::span<const double> rates, u64 seed,
                                                const DegradationOptions& options = {});

struct ChipFaultImpact {
  u64 chip = 0;
  u64 nodes_lost = 0;            ///< butterfly nodes hosted on the chip
  u64 rows_touched = 0;          ///< distinct butterfly rows losing >= 1 node
  u64 dead_offmodule_links = 0;  ///< off-chip (swap) links with an endpoint on the chip
  double reachability = 0.0;     ///< exact BFS reachability after the failure
};

/// Impact of failing one chip of the plan's row-block packing.  Reachability
/// is computed exactly when with_reachability is set (O(4^n * n)).
ChipFaultImpact analyze_chip_fault(const HierarchicalPlan& plan, u64 chip,
                                   bool with_reachability = true);

struct SpareChipSummary {
  u64 num_chips = 0;
  u64 nodes_per_chip = 0;
  u64 min_dead_offmodule_links = 0;
  u64 max_dead_offmodule_links = 0;
  double best_reachability = 1.0;   ///< least damaging single-chip failure
  double worst_reachability = 1.0;  ///< most damaging single-chip failure
  u64 worst_chip = 0;
};

/// Single-chip failure sweep over every chip of the plan: the input to a
/// spare-chip provisioning decision (how much service the worst single chip
/// failure costs, and whether any chip is disproportionately critical).
SpareChipSummary spare_chip_sensitivity(const HierarchicalPlan& plan);

}  // namespace bfly
