#include "sim/recovery.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfly {

namespace {

/// Per-sample delivered rate (packets/cycle) from the cumulative delivered
/// channel: rate[i] averages the deliveries between sample i-1 and sample i
/// (rate[0] averages from cycle 0).  Downsampling-safe — the cumulative
/// channel survives the series' stride doubling exactly.
std::vector<double> delivered_rate(const obs::TimeSeries& ts, std::size_t delivered_ch) {
  const std::vector<u64>& cycles = ts.cycles();
  std::vector<double> rate(cycles.size(), 0.0);
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const double prev = i > 0 ? ts.value(i - 1, delivered_ch) : 0.0;
    const u64 prev_cycle = i > 0 ? cycles[i - 1] : 0;
    const u64 span = cycles[i] - prev_cycle + (i == 0 ? 1 : 0);
    rate[i] = span > 0 ? (ts.value(i, delivered_ch) - prev) / static_cast<double>(span) : 0.0;
  }
  return rate;
}

double window_mean(std::span<const double> values, std::size_t begin, std::size_t end) {
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += values[i];
  return end > begin ? sum / static_cast<double>(end - begin) : 0.0;
}

}  // namespace

RecoveryAnalysis analyze_recovery(const obs::TimeSeries& timeseries,
                                  const FaultSchedule& schedule,
                                  const RecoveryOptions& options) {
  BFLY_REQUIRE(options.window >= 1, "recovery window must be at least 1 sample");
  BFLY_REQUIRE(options.tolerance >= 0.0 && options.tolerance < 1.0,
               "recovery tolerance must be in [0, 1)");
  RecoveryAnalysis out;
  const std::size_t delivered_ch = timeseries.channel_index(obs::kChannelDelivered);
  const std::size_t dropped_ch = timeseries.channel_index(obs::kChannelDropped);
  if (delivered_ch == obs::TimeSeries::npos || dropped_ch == obs::TimeSeries::npos ||
      timeseries.num_samples() < 2 * options.window) {
    return out;  // not applicable; all-zero analysis
  }
  out.applicable = true;
  const std::vector<u64>& cycles = timeseries.cycles();
  const std::vector<double> rate = delivered_rate(timeseries, delivered_ch);
  const std::size_t w = options.window;

  // Distinct fail cycles, in timeline order: simultaneous failures (e.g. a
  // chip event's whole node block) are one disturbance.
  std::vector<u64> epochs;
  for (const FaultEvent& e : schedule.events()) {
    if (e.action != FaultAction::kFail) continue;
    if (epochs.empty() || epochs.back() != e.cycle) epochs.push_back(e.cycle);
  }

  for (const u64 fault_cycle : epochs) {
    RecoveryEvent ev;
    ev.fault_cycle = fault_cycle;
    // First sample at or after the epoch.
    const std::size_t at = static_cast<std::size_t>(
        std::lower_bound(cycles.begin(), cycles.end(), fault_cycle) - cycles.begin());
    // Pre-event reference: the w samples strictly before the epoch.  An
    // epoch earlier than one full window has no measurable steady state —
    // the event is reported, but cannot recover.
    if (at >= w) {
      ev.pre_throughput = window_mean(rate, at - w, at);
      const double band = ev.pre_throughput * (1.0 - options.tolerance);
      // Departure: the first sample index r >= at whose *trailing* w-sample
      // mean leaves the band.  Right at the epoch the window is still full
      // of pre-event samples, so without this phase a real collapse would be
      // declared "recovered" before the dip is even visible in the mean.
      std::size_t departed = rate.size();
      for (std::size_t r = std::max(at, w - 1); r < rate.size(); ++r) {
        if (window_mean(rate, r + 1 - w, r + 1) < band) {
          departed = r;
          break;
        }
      }
      if (departed == rate.size()) {
        // The disturbance never pulled the windowed mean out of the band:
        // recovered instantly, time_to_recover_cycles = 0.
        ev.recovered = true;
        ev.recovered_cycle = fault_cycle;
      } else {
        // Re-entry: the first later sample whose trailing mean is back
        // inside — the same rolling-window mean machinery as
        // obs::steady_state_onset, anchored at the pre-event mean instead
        // of the tail reference, and one-sided (overshoot is recovery).
        for (std::size_t r = departed + 1; r < rate.size(); ++r) {
          if (window_mean(rate, r + 1 - w, r + 1) >= band) {
            ev.recovered = true;
            ev.recovered_cycle = cycles[r];
            ev.time_to_recover_cycles = cycles[r] - fault_cycle;
            break;
          }
        }
      }
    }
    // Transient loss: cumulative dropped delta from the last pre-event
    // sample to the recovery sample (or the end of the series).
    const std::size_t from = at > 0 ? at - 1 : 0;
    const std::size_t to = ev.recovered
                               ? static_cast<std::size_t>(
                                     std::lower_bound(cycles.begin(), cycles.end(),
                                                      ev.recovered_cycle) -
                                     cycles.begin())
                               : timeseries.num_samples() - 1;
    const double lost =
        timeseries.value(to, dropped_ch) - timeseries.value(from, dropped_ch);
    ev.packets_lost = lost > 0.0 ? static_cast<u64>(lost) : 0;
    if (ev.recovered) ++out.events_recovered;
    out.packets_lost_total += ev.packets_lost;
    out.events.push_back(ev);
  }

  // Residual degradation after everything settled: final-window mean over
  // the first epoch's pre-event steady state.
  for (const RecoveryEvent& ev : out.events) {
    if (ev.pre_throughput > 0.0) {
      out.residual_throughput =
          window_mean(rate, rate.size() - w, rate.size()) / ev.pre_throughput;
      break;
    }
  }
  return out;
}

AvailabilitySweep availability_sweep(int n, std::span<const u64> mtbf,
                                     std::span<const u64> mttr, u64 seed,
                                     const AvailabilityOptions& options) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(mtbf.size() == mttr.size(),
               "availability_sweep: mtbf and mttr spans must pair up");
  for (std::size_t i = 0; i < mtbf.size(); ++i) {
    const std::string where = "availability pair " + std::to_string(i) + ": ";
    BFLY_REQUIRE(mtbf[i] >= 2, where + "mtbf must be >= 2 cycles");
    BFLY_REQUIRE(mttr[i] >= 1, where + "mttr must be >= 1 cycle");
  }
  AvailabilitySweep sweep;
  sweep.schedules.reserve(mtbf.size());
  for (std::size_t i = 0; i < mtbf.size(); ++i) {
    FaultSchedule s = FaultSchedule::random_links(
        n, mtbf[i], mttr[i], options.sim_cycles, seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    s.set_link_death_policy(options.link_death);
    sweep.schedules.push_back(std::move(s));
  }
  sweep.sweep_points.resize(mtbf.size() + 1);
  for (std::size_t i = 0; i < sweep.sweep_points.size(); ++i) {
    SweepPoint& sp = sweep.sweep_points[i];
    sp.n = n;
    sp.offered_load = options.offered_load;
    sp.cycles = options.sim_cycles;
    sp.seed = seed;
    sp.warmup_cycles = options.sim_warmup;
    sp.queue_capacity = options.queue_capacity;
    sp.telemetry_budget = options.telemetry_budget;
    sp.routing = options.routing;
    // Point 0 is the pristine baseline the availability ratio divides by.
    if (i > 0) sp.schedule = &sweep.schedules[i - 1];
  }
  return sweep;
}

std::vector<AvailabilityPoint> availability_curve_from(int n, std::span<const u64> mtbf,
                                                       std::span<const u64> mttr, u64 /*seed*/,
                                                       const AvailabilityOptions& options,
                                                       const AvailabilitySweep& sweep,
                                                       std::span<const SweepOutcome> sims) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(sweep.schedules.size() == mtbf.size() && mtbf.size() == mttr.size(),
               "availability_curve_from: sweep does not match the mtbf/mttr spans");
  BFLY_REQUIRE(sims.size() == mtbf.size() + 1,
               "availability_curve_from: outcome count does not match the sweep");
  const u64 baseline_delivered = sims[0].point.delivered;
  std::vector<AvailabilityPoint> curve;
  curve.reserve(mtbf.size());
  for (std::size_t i = 0; i < mtbf.size(); ++i) {
    const SweepOutcome& sim = sims[i + 1];
    AvailabilityPoint pt;
    pt.mtbf = mtbf[i];
    pt.mttr = mttr[i];
    pt.fail_events = sim.live.fail_events;
    pt.repair_events = sim.live.repair_events;
    pt.availability = baseline_delivered > 0
                          ? static_cast<double>(sim.point.delivered) /
                                static_cast<double>(baseline_delivered)
                          : 0.0;
    pt.packets_killed = sim.tally.dropped[drop_index(DropReason::kKilledByFault)];
    const RecoveryAnalysis rec =
        analyze_recovery(sim.timeseries, sweep.schedules[i], options.recovery);
    pt.events_total = rec.events.size();
    pt.events_recovered = rec.events_recovered;
    pt.packets_lost = rec.packets_lost_total;
    u64 ttr_sum = 0;
    for (const RecoveryEvent& ev : rec.events) {
      if (ev.recovered) ttr_sum += ev.time_to_recover_cycles;
    }
    pt.avg_time_to_recover =
        rec.events_recovered > 0
            ? static_cast<double>(ttr_sum) / static_cast<double>(rec.events_recovered)
            : 0.0;
    obs::set(obs::get_gauge("fault.availability"), pt.availability);
    curve.push_back(pt);
  }
  return curve;
}

std::vector<AvailabilityPoint> availability_curve(int n, std::span<const u64> mtbf,
                                                  std::span<const u64> mttr, u64 seed,
                                                  const AvailabilityOptions& options) {
  BFLY_TRACE_SCOPE("fault.availability_curve");
  const AvailabilitySweep sweep = availability_sweep(n, mtbf, mttr, seed, options);
  const std::vector<SweepOutcome> sims = saturation_sweep(sweep.sweep_points);
  return availability_curve_from(n, mtbf, mttr, seed, options, sweep, sims);
}

}  // namespace bfly
