#include "fft/isn_fft.hpp"

#include <cmath>
#include <numbers>

namespace bfly {

namespace {
cplx twiddle(u64 numerator, u64 denominator) {
  const double angle =
      -2.0 * std::numbers::pi * static_cast<double>(numerator) / static_cast<double>(denominator);
  return {std::cos(angle), std::sin(angle)};
}
}  // namespace

std::vector<cplx> fft_on_swap_butterfly(const SwapButterfly& sb, std::span<const cplx> x) {
  const int n = sb.dimension();
  const u64 rows = sb.rows();
  BFLY_REQUIRE(x.size() == rows, "input size must be 2^{n_l}");

  // Stage 0 holds the bit-reversed input (decimation in time); rho_0 = id.
  std::vector<cplx> val(rows);
  for (u64 v = 0; v < rows; ++v) val[v] = x[bit_reverse(v, n)];

  std::vector<cplx> next(rows);
  for (int s = 0; s < n; ++s) {
    const bool boundary = sb.is_swap_transition(s);
    const int level = sb.level_of_transition(s);
    const int j = s - sb.prefix(level - 1);
    for (u64 w = 0; w < rows; ++w) {
      // In-neighbors of (w, s+1): both values arrive over real network links.
      const u64 u_straight = boundary ? sb.isn().sigma(level, w) : w;
      const u64 u_cross = boundary ? sb.isn().sigma(level, w ^ 1) : (w ^ pow2(j));
      BFLY_CHECK(sb.straight_target(u_straight, s) == w, "straight link must arrive at w");
      BFLY_CHECK(sb.cross_target(u_cross, s) == w, "cross link must arrive at w");

      const u64 r = sb.rho(s + 1, w);  // butterfly row of (w, s+1)
      const u64 r0 = r & ~pow2(s);
      const cplx W = twiddle(r0 & (pow2(s) - 1), pow2(s + 1));
      if ((r >> s) & 1) {
        // This node holds Y[r1] = X[r0] - W X[r1]: X[r0] arrives on the
        // cross link, X[r1] on the straight link.
        next[w] = val[u_cross] - W * val[u_straight];
      } else {
        next[w] = val[u_straight] + W * val[u_cross];
      }
    }
    val.swap(next);
  }

  // Stage n: node (v, n) holds the DFT coefficient of butterfly row rho_n(v).
  std::vector<cplx> out(rows);
  for (u64 v = 0; v < rows; ++v) out[sb.rho(n, v)] = val[v];
  return out;
}

std::vector<cplx> fft_reference(std::span<const cplx> x) {
  const u64 n = x.size();
  BFLY_REQUIRE(is_pow2(n), "FFT size must be a power of two");
  const int lg = ilog2(n);
  std::vector<cplx> a(n);
  for (u64 i = 0; i < n; ++i) a[bit_reverse(i, lg)] = x[i];
  for (int s = 0; s < lg; ++s) {
    const u64 half = pow2(s);
    const u64 m = half * 2;
    for (u64 k = 0; k < n; k += m) {
      for (u64 j = 0; j < half; ++j) {
        const cplx w = twiddle(j, m);
        const cplx t = w * a[k + j + half];
        const cplx u = a[k + j];
        a[k + j] = u + t;
        a[k + j + half] = u - t;
      }
    }
  }
  return a;
}

std::vector<cplx> dft_naive(std::span<const cplx> x) {
  const u64 n = x.size();
  std::vector<cplx> out(n);
  for (u64 k = 0; k < n; ++k) {
    cplx sum = 0;
    for (u64 j = 0; j < n; ++j) sum += x[j] * twiddle((j * k) % n, n);
    out[k] = sum;
  }
  return out;
}

double max_abs_error(std::span<const cplx> a, std::span<const cplx> b) {
  BFLY_REQUIRE(a.size() == b.size(), "size mismatch");
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) err = std::max(err, std::abs(a[i] - b[i]));
  return err;
}

}  // namespace bfly
