// FFT executed on the swap-butterfly flow graph (Sec. 2.2 / Appendix A.2).
//
// The paper's structural argument is that the ISN is the flow graph of an
// ascend-style FFT on the swap network, so bypassing swap stages yields a
// butterfly automorphism.  This module is the *functional* proof: it runs a
// radix-2 decimation-in-time FFT where stage-s values live on swap-butterfly
// nodes (v, s) -- i.e. every data movement follows an actual network link,
// and the twiddle of a node is derived from its butterfly row rho_s(v).  The
// result must equal the DFT bit-for-bit up to floating-point error, for
// every ISN parameterization.
#pragma once

#include <complex>
#include <vector>

#include "topology/swap_butterfly.hpp"

namespace bfly {

using cplx = std::complex<double>;

/// DFT (forward, e^{-2 pi i jk/N} convention) computed by propagating values
/// along the swap-butterfly's links.  Input x has 2^{n_l} entries in natural
/// order; output is the DFT in natural order.
std::vector<cplx> fft_on_swap_butterfly(const SwapButterfly& sb, std::span<const cplx> x);

/// Plain radix-2 FFT (in-place Cooley-Tukey) for cross-checking.
std::vector<cplx> fft_reference(std::span<const cplx> x);

/// Naive O(N^2) DFT, the independent ground truth.
std::vector<cplx> dft_naive(std::span<const cplx> x);

/// Largest elementwise magnitude difference.
double max_abs_error(std::span<const cplx> a, std::span<const cplx> b);

}  // namespace bfly
