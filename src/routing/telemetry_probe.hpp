// Shared cycle-loop instrumentation for the two saturation engines.
//
// SaturationProbe is the thin adapter between an engine's cycle loop and an
// obs::TimeSeries / obs::OccupancyFrames pair.  The cost contract it exists
// to enforce:
//   * disabled at compile time (BFLY_OBS_ENABLED=0) — every hook is an empty
//     inline function; the engines compile exactly as before the probes
//     existed;
//   * disabled at runtime (both sinks null, the default) — every hook is one
//     predictable branch on a bool the compiler keeps in a register;
//   * enabled — per-event hooks are plain integer/double accumulations, and
//     the O(links) occupancy gathers run only on sampling cycles, whose count
//     is bounded by the sample budget times log2(cycles) (the stride-doubling
//     schedule), not by the cycle count.
// Nothing here reads a clock or an RNG: the sample rows are a pure function
// of the packet stream, which is what keeps them bitwise identical across
// thread counts and checkpoint replay.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"  // for BFLY_OBS_ENABLED
#include "obs/timeseries.hpp"
#include "routing/packet_arena.hpp"
#include "util/bits.hpp"

namespace bfly::detail {

class SaturationProbe {
 public:
  SaturationProbe([[maybe_unused]] obs::TimeSeries* series,
                  [[maybe_unused]] obs::OccupancyFrames* frames,
                  [[maybe_unused]] int n, [[maybe_unused]] u64 rows) {
#if BFLY_OBS_ENABLED
    series_ = series;
    frames_ = frames;
    n_ = n;
    rows_ = rows;
    if (series_ != nullptr) {
      std::vector<std::string> channels;
      channels.reserve(static_cast<std::size_t>(n) + 7);
      for (int s = 0; s < n; ++s) channels.push_back("stage" + std::to_string(s));
      channels.emplace_back(obs::kChannelInFlight);
      channels.emplace_back(obs::kChannelInjected);
      channels.emplace_back(obs::kChannelDelivered);
      channels.emplace_back(obs::kChannelDropped);
      channels.emplace_back(obs::kChannelLatencySum);
      channels.emplace_back(obs::kChannelArenaFill);
      channels.emplace_back(obs::kChannelDeadLinks);
      row_.resize(channels.size());
      series_->reset_channels(std::move(channels));
    }
    active_ = series_ != nullptr;
#endif
  }

  /// True when any sink is attached (engines may use this to skip work that
  /// only feeds the probe).
  bool enabled() const {
#if BFLY_OBS_ENABLED
    return series_ != nullptr || frames_ != nullptr;
#else
    return false;
#endif
  }

  void on_injected([[maybe_unused]] u64 count) {
#if BFLY_OBS_ENABLED
    if (active_) injected_ += count;
#endif
  }

  void on_delivered([[maybe_unused]] u64 cycle, [[maybe_unused]] u64 injected_at) {
#if BFLY_OBS_ENABLED
    if (active_) {
      ++delivered_;
      latency_sum_ += static_cast<double>(cycle + 1 - injected_at);
    }
#endif
  }

  void on_dropped() {
#if BFLY_OBS_ENABLED
    if (active_) ++dropped_;
#endif
  }

  /// End-of-cycle sampling hook.  `in_flight` must equal the number of
  /// packets resident in the arena (both engines maintain exactly that
  /// invariant at end of cycle).  `dead_links` is the fabric's current dead
  /// link count — constant for static fault sets, time-varying under a live
  /// fault schedule (the sampled series makes the fault epoch visible), and
  /// 0 on the pristine engine.
  void sample([[maybe_unused]] u64 cycle, [[maybe_unused]] const PacketArena& arena,
              [[maybe_unused]] u64 in_flight, [[maybe_unused]] u64 dead_links) {
#if BFLY_OBS_ENABLED
    if (active_ && series_->want(cycle)) {
      std::size_t c = 0;
      for (int s = 0; s < n_; ++s) {
        const u64 base = static_cast<u64>(s) * rows_ * 2;
        u64 occupancy = 0;
        for (u64 link = base; link < base + rows_ * 2; ++link) {
          occupancy += arena.size(link);
        }
        row_[c++] = static_cast<double>(occupancy);
      }
      row_[c++] = static_cast<double>(in_flight);
      row_[c++] = static_cast<double>(injected_);
      row_[c++] = static_cast<double>(delivered_);
      row_[c++] = static_cast<double>(dropped_);
      row_[c++] = latency_sum_;
      row_[c++] = arena.capacity() == 0
                      ? 0.0
                      : static_cast<double>(in_flight) / static_cast<double>(arena.capacity());
      row_[c++] = static_cast<double>(dead_links);
      series_->record(cycle, row_);
    }
    if (frames_ != nullptr && frames_->want(cycle)) {
      frame_row_.resize(static_cast<std::size_t>(arena.num_links()));
      for (u64 link = 0; link < arena.num_links(); ++link) {
        frame_row_[static_cast<std::size_t>(link)] = static_cast<double>(arena.size(link));
      }
      frames_->record(cycle, frame_row_);
    }
#endif
  }

#if BFLY_OBS_ENABLED
 private:
  obs::TimeSeries* series_ = nullptr;
  obs::OccupancyFrames* frames_ = nullptr;
  bool active_ = false;
  int n_ = 0;
  u64 rows_ = 0;
  u64 injected_ = 0;
  u64 delivered_ = 0;
  u64 dropped_ = 0;
  double latency_sum_ = 0.0;
  std::vector<double> row_;
  std::vector<double> frame_row_;
#endif
};

/// The per-packet sibling of SaturationProbe: the thin adapter between an
/// engine's packet events and an obs::FlightRecorder.  Same cost contract —
/// compiled out entirely without BFLY_OBS, one predictable branch per hook
/// when no recorder is attached (the default), and when recording, plain
/// integer appends on the deterministically sampled subset only.
///
/// The engines must build their PacketArena with the flight lane iff
/// enabled() (the lane carries each sampled packet's handle through
/// move_front hops); on_advance reads it via front_flight, which safely
/// returns 0 ("unsampled") on lane-less arenas.
class FlightProbe {
 public:
  explicit FlightProbe([[maybe_unused]] obs::FlightRecorder* recorder) {
#if BFLY_OBS_ENABLED
    recorder_ = (recorder != nullptr && recorder->enabled()) ? recorder : nullptr;
#endif
  }

  bool enabled() const {
#if BFLY_OBS_ENABLED
    return recorder_ != nullptr;
#else
    return false;
#endif
  }

  /// Every created packet (sampled or not) flows through here, in creation
  /// order — packet identity is its position in this stream.  Returns the
  /// flight handle to store in the arena's flight lane (0 = unsampled).
  u64 on_packet([[maybe_unused]] u64 cycle, [[maybe_unused]] u64 src,
                [[maybe_unused]] u64 dst) {
#if BFLY_OBS_ENABLED
    if (recorder_ != nullptr) return recorder_->on_packet(cycle, src, dst);
#endif
    return 0;
  }

  /// The packet behind `handle` entered `link`'s FIFO during `cycle`.
  void on_push([[maybe_unused]] u64 handle, [[maybe_unused]] u64 cycle,
               [[maybe_unused]] u64 link, [[maybe_unused]] obs::FlightEvent event) {
#if BFLY_OBS_ENABLED
    if (recorder_ != nullptr && handle != 0) recorder_->on_hop(handle, cycle, link, event);
#endif
  }

  /// The front packet of `link` hops to `next_link` via move_front (the
  /// engines' payload-invariant fast path, which never surfaces a Packet).
  void on_advance([[maybe_unused]] const PacketArena& arena, [[maybe_unused]] u64 link,
                  [[maybe_unused]] u64 cycle, [[maybe_unused]] u64 next_link) {
#if BFLY_OBS_ENABLED
    if (recorder_ != nullptr) {
      const u64 handle = arena.front_flight(link);
      if (handle != 0) recorder_->on_hop(handle, cycle, next_link, obs::FlightEvent::kAdvance);
    }
#endif
  }

  void on_delivered([[maybe_unused]] u64 handle, [[maybe_unused]] u64 cycle) {
#if BFLY_OBS_ENABLED
    if (recorder_ != nullptr && handle != 0) recorder_->on_delivered(handle, cycle);
#endif
  }

  void on_dropped([[maybe_unused]] u64 handle, [[maybe_unused]] u64 cycle,
                  [[maybe_unused]] u64 reason) {
#if BFLY_OBS_ENABLED
    if (recorder_ != nullptr && handle != 0) recorder_->on_dropped(handle, cycle, reason);
#endif
  }

#if BFLY_OBS_ENABLED
 private:
  obs::FlightRecorder* recorder_ = nullptr;
#endif
};

}  // namespace bfly::detail
