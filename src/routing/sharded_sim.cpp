#include "routing/sharded_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>
#include <vector>

#include "fault/fault_set.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/packet_arena.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"
#include "util/spsc_ring.hpp"

namespace bfly {

namespace {

/// One packet crossing a shard boundary: everything the receiving shard
/// needs to re-materialize it at (row, stage + 1) of the ring's stage.
struct Hop {
  u64 row = 0;  ///< arrival row (global) — the cross link's far end
  u64 dst = 0;
  u64 injected_at = 0;
  u32 misroutes = 0;
  u32 wraps = 0;
};

/// Per-shard state: a private arena over the shard's local link range, its
/// own injection RNG stream, and private statistics merged in shard order at
/// the end of the run.
struct Shard {
  Shard(u64 local_links, bool with_budgets, u64 seed, u64 index)
      : arena(local_links, with_budgets),
        rng(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))) {}

  PacketArena arena;
  Xoshiro256 rng;
  std::vector<std::pair<u64, PacketArena::Packet>> wrapped;  ///< (row, pkt) re-entries

  // Post-warmup statistics (the serial engines' measurement convention).
  u64 delivered = 0;
  double latency_sum = 0.0;
  u64 measured_injections = 0;
  u64 dropped_queue_full = 0;  ///< pristine runs; faulty runs use the tally
  FaultTally tally;

  // Whole-run conservation ledger (every cycle, warmup included).
  u64 offered = 0;
  u64 injected = 0;
  u64 delivered_all = 0;
  u64 dropped_all = 0;
  u64 in_flight = 0;  ///< packets currently queued in this shard's arena
};

}  // namespace

ShardedSaturationPoint simulate_saturation_sharded(int n, double offered_load, u64 cycles,
                                                   u64 seed, const ShardedOptions& options,
                                                   const FaultSet* faults,
                                                   const CancelToken* cancel) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(std::isfinite(offered_load) && offered_load >= 0.0 && offered_load <= 1.0,
               "offered load is a probability");
  const u64 rows = pow2(n);
  u64 num_shards = options.shard_count;
  if (num_shards == 0) num_shards = std::min<u64>(rows, 8);
  BFLY_REQUIRE(is_pow2(num_shards) && num_shards <= rows,
               "shard_count must be a power of two, at most 2^n");
  if (faults != nullptr) {
    BFLY_REQUIRE(faults->dimension() == n, "fault set dimension mismatch");
  }
  BFLY_TRACE_SCOPE("routing.simulate_saturation_sharded");

  const u64 block = rows / num_shards;       // rows per shard (power of two)
  const int log2block = n - ilog2(num_shards);
  const int num_cross = ilog2(num_shards);   // stages whose cross links leave a shard
  const u64 local_links = static_cast<u64>(n) * block * 2;
  const bool faulty = faults != nullptr;
  const u64 queue_capacity = options.queue_capacity;
  const u32 misroute_budget = static_cast<u32>(std::max(options.routing.misroute_budget, 0));
  const u32 wrap_budget = static_cast<u32>(std::max(options.routing.wrap_budget, 0));

  std::size_t threads = options.threads != 0 ? options.threads : default_thread_count();
  threads = std::min<std::size_t>(threads, static_cast<std::size_t>(num_shards));

  std::deque<Shard> shards;
  for (u64 k = 0; k < num_shards; ++k) shards.emplace_back(local_links, faulty, seed, k);

  // One SPSC ring per (source shard, crossing stage).  A shard has `block`
  // cross links per stage and each link forwards at most its front packet per
  // cycle, so `block` slots can never overflow — the drain at the end of each
  // cycle empties every ring before the next advance phase refills it.
  std::deque<util::SpscRing<Hop>> rings;
  for (u64 k = 0; k < num_shards * static_cast<u64>(num_cross); ++k) {
    rings.emplace_back(static_cast<std::size_t>(block));
  }
  const auto ring_of = [&](u64 src_shard, int stage) -> util::SpscRing<Hop>& {
    return rings[src_shard * static_cast<u64>(num_cross) +
                 static_cast<u64>(stage - log2block)];
  };

  // Dense link id inside a shard's private arena: the shard owns the
  // contiguous per-stage ranges of its rows, indexed by local row.
  const auto local_link = [block](int stage, u64 local_row, bool cross) {
    return (static_cast<u64>(stage) * block + local_row) * 2 + (cross ? 1 : 0);
  };

  ShardedSaturationPoint out;
  out.shard_count = num_shards;
  SaturationPoint& result = out.point;
  result.offered_load = offered_load;

  u64 cycle = 0;
  bool measured = false;

  // Counts one drop into the shard's ledgers: the whole-run total always,
  // the post-warmup tally only inside the measurement window (the serial
  // faulty engine's convention).
  const auto count_drop = [&](Shard& sh, DropReason reason) {
    ++sh.dropped_all;
    if (measured) {
      if (faulty) {
        ++sh.tally.dropped[drop_index(reason)];
      } else {
        ++sh.dropped_queue_full;  // the only pristine drop reason
      }
    }
  };

  // Picks the stage-`stage` output link for a packet at global `row` and
  // enqueues it in `sh`'s arena (row must belong to sh), charging a misroute
  // when the packet must deflect — the faulty engines' deflection policy.
  // Returns false (after counting the drop) when the packet dies here.
  const auto enqueue_faulty = [&](Shard& sh, u64 row0, u64 row, int stage,
                                  PacketArena::Packet pkt) -> bool {
    const bool want = ((row ^ pkt.dst) >> stage) & 1;
    bool cross = want;
    if (!faults->link_alive(row, stage, want)) {
      if (!faults->link_alive(row, stage, !want)) {
        count_drop(sh, DropReason::kNoAliveLink);
        return false;
      }
      if (pkt.misroutes >= misroute_budget) {
        count_drop(sh, DropReason::kBudgetExhausted);
        return false;
      }
      ++pkt.misroutes;
      if (measured) ++sh.tally.misroutes;
      cross = !want;
    }
    const u64 link = local_link(stage, row - row0, cross);
    if (queue_capacity > 0 && sh.arena.size(link) >= queue_capacity) {
      count_drop(sh, DropReason::kQueueFull);
      return false;
    }
    sh.arena.push(link, pkt);
    return true;
  };

  // Phase A: advance every stage of one shard (descending, so a packet moves
  // at most one hop per cycle), apply shard-local wraps, then inject.  Cross
  // hops at stages >= log2block pop into the hand-off ring; everything else
  // mirrors the serial engines' cycle body on the shard's local link ranges.
  const auto phase_a = [&](u64 k) {
    Shard& sh = shards[k];
    const u64 row0 = k * block;
    sh.wrapped.clear();
    for (int s = n - 1; s >= 0; --s) {
      const u64 stage_base = static_cast<u64>(s) * block * 2;
      sh.arena.for_each_occupied(stage_base, stage_base + block * 2, [&](u64 link) {
        const u64 row = row0 + ((link - stage_base) >> 1);
        const bool cross = (link & 1) != 0;
        const u64 next_row = cross ? (row ^ pow2(s)) : row;
        if (cross && s >= log2block) {
          // The far end is another shard's row: hand the packet off.  The
          // receiving shard makes the arrival decision at the cycle barrier.
          const PacketArena::Packet pkt = sh.arena.pop(link);
          --sh.in_flight;
          const bool pushed =
              ring_of(k, s).try_push({next_row, pkt.dst, pkt.injected_at,
                                      pkt.misroutes, pkt.wraps});
          BFLY_CHECK(pushed, "sharded hand-off ring overflow");
          return;
        }
        if (!faulty) {
          if (s + 1 == n) {
            const PacketArena::Packet pkt = sh.arena.pop(link);
            --sh.in_flight;
            ++sh.delivered_all;
            if (measured) {
              ++sh.delivered;
              sh.latency_sum += static_cast<double>(cycle + 1 - pkt.injected_at);
            }
            return;
          }
          const u64 dst = sh.arena.front_dst(link);
          const bool next_cross = ((next_row ^ dst) >> (s + 1)) & 1;
          const u64 next_link = local_link(s + 1, next_row - row0, next_cross);
          if (queue_capacity > 0 && sh.arena.size(next_link) >= queue_capacity) {
            sh.arena.pop(link);
            --sh.in_flight;
            count_drop(sh, DropReason::kQueueFull);
          } else {
            sh.arena.move_front(link, next_link);
          }
          return;
        }
        // Faulty path — same structure as run_saturation_faulty: a
        // payload-invariant fast path when the wanted link at the next node
        // is alive, the full deflection enqueue otherwise.
        if (s + 1 < n) {
          const u64 dst = sh.arena.front_dst(link);
          const bool want = ((next_row ^ dst) >> (s + 1)) & 1;
          if (faults->link_alive(next_row, s + 1, want)) {
            const u64 next_link = local_link(s + 1, next_row - row0, want);
            if (queue_capacity > 0 && sh.arena.size(next_link) >= queue_capacity) {
              sh.arena.pop(link);
              --sh.in_flight;
              count_drop(sh, DropReason::kQueueFull);
            } else {
              sh.arena.move_front(link, next_link);
            }
            return;
          }
        }
        const PacketArena::Packet pkt = sh.arena.pop(link);
        if (s + 1 == n) {
          if (next_row == pkt.dst) {
            --sh.in_flight;
            ++sh.delivered_all;
            if (measured) {
              ++sh.delivered;
              ++sh.tally.delivered;
              sh.latency_sum += static_cast<double>(cycle + 1 - pkt.injected_at);
            }
          } else if (pkt.wraps < wrap_budget && faults->node_alive(next_row, 0)) {
            PacketArena::Packet w = pkt;
            ++w.wraps;
            if (measured) ++sh.tally.wraps;
            sh.wrapped.emplace_back(next_row, w);
          } else {
            --sh.in_flight;
            count_drop(sh, pkt.wraps < wrap_budget ? DropReason::kNoAliveLink
                                                   : DropReason::kBudgetExhausted);
          }
        } else if (!enqueue_faulty(sh, row0, next_row, s + 1, pkt)) {
          --sh.in_flight;
        }
      });
    }
    // Shard-local wraps re-enter at stage 0 after the sweep, before
    // injection — the serial ordering.  (A wrap decided at a hand-off
    // arrival re-enters during the drain phase instead; both orders are
    // fixed, so determinism is unaffected.)
    for (const auto& [row, pkt] : sh.wrapped) {
      if (!enqueue_faulty(sh, row0, row, 0, pkt)) --sh.in_flight;
    }
    // Inject from this shard's private stream — the census's fixed-chunk
    // seeding with the shard index as the chunk, which is what makes the run
    // a pure function of (n, load, cycles, seed, shard_count).
    u64 cycle_injections = 0;
    for (u64 local_row = 0; local_row < block; ++local_row) {
      if (sh.rng.uniform() < offered_load) {
        ++sh.offered;
        const u64 row = row0 + local_row;
        PacketArena::Packet pkt{sh.rng.below(rows), cycle, 0, 0, 0};
        if (faulty) {
          if (!faults->node_alive(row, 0) || !faults->node_alive(pkt.dst, n)) {
            count_drop(sh, DropReason::kEndpointDead);
            continue;
          }
          if (enqueue_faulty(sh, row0, row, 0, pkt)) {
            ++cycle_injections;
            ++sh.injected;
            if (measured) ++sh.measured_injections;
          }
        } else {
          const bool cross0 = ((row ^ pkt.dst) & 1) != 0;
          const u64 link = local_link(0, local_row, cross0);
          if (queue_capacity > 0 && sh.arena.size(link) >= queue_capacity) {
            count_drop(sh, DropReason::kQueueFull);
          } else {
            sh.arena.push(link, pkt);
            ++cycle_injections;
            ++sh.injected;
            if (measured) ++sh.measured_injections;
          }
        }
      }
    }
    sh.in_flight += cycle_injections;
  };

  // Phase B: drain this shard's inbound rings in fixed (stage ascending,
  // FIFO) order — every producer finished in phase A, so the drain sees the
  // complete cycle's hand-offs deterministically.  The receiving shard makes
  // the arrival decision: the stage-(s+1) output-link choice (with
  // deflection under faults) or the terminal deliver/wrap/drop.
  const auto phase_b = [&](u64 k) {
    Shard& sh = shards[k];
    const u64 row0 = k * block;
    for (int s = log2block; s < n; ++s) {
      const u64 src = k ^ (u64{1} << (s - log2block));
      util::SpscRing<Hop>& ring = ring_of(src, s);
      Hop hop;
      while (ring.try_pop(&hop)) {
        PacketArena::Packet pkt{hop.dst, hop.injected_at, hop.misroutes, hop.wraps, 0};
        if (s + 1 == n) {
          if (!faulty || hop.row == pkt.dst) {
            ++sh.delivered_all;
            if (measured) {
              ++sh.delivered;
              if (faulty) ++sh.tally.delivered;
              sh.latency_sum += static_cast<double>(cycle + 1 - pkt.injected_at);
            }
          } else if (pkt.wraps < wrap_budget && faults->node_alive(hop.row, 0)) {
            ++pkt.wraps;
            if (measured) ++sh.tally.wraps;
            if (enqueue_faulty(sh, row0, hop.row, 0, pkt)) ++sh.in_flight;
          } else {
            count_drop(sh, pkt.wraps < wrap_budget ? DropReason::kNoAliveLink
                                                   : DropReason::kBudgetExhausted);
          }
          continue;
        }
        if (faulty) {
          if (enqueue_faulty(sh, row0, hop.row, s + 1, pkt)) ++sh.in_flight;
          continue;
        }
        const bool next_cross = ((hop.row ^ pkt.dst) >> (s + 1)) & 1;
        const u64 link = local_link(s + 1, hop.row - row0, next_cross);
        if (queue_capacity > 0 && sh.arena.size(link) >= queue_capacity) {
          count_drop(sh, DropReason::kQueueFull);
        } else {
          sh.arena.push(link, pkt);
          ++sh.in_flight;
        }
      }
    }
  };

  // The cycle loop: two fork-join phases per cycle (advance || barrier ||
  // drain), shards claimed in contiguous ranges so every thread count walks
  // the same per-shard work.  Cancellation is polled only at the cycle
  // boundary — mid-cycle phases always run over all shards, so a cancelled
  // run stops with every shard at the same cycle (and the ledger exact).
  u64 simulated = cycles;
  for (cycle = 0; cycle < cycles; ++cycle) {
    if (cycle % kCancelPollCycles == 0 && CancelToken::cancelled(cancel)) {
      simulated = cycle;
      break;
    }
    measured = cycle >= options.warmup_cycles;
    if (threads <= 1) {
      for (u64 k = 0; k < num_shards; ++k) phase_a(k);
      for (u64 k = 0; k < num_shards; ++k) phase_b(k);
    } else {
      parallel_for_chunked(0, static_cast<std::size_t>(num_shards), threads,
                           [&](std::size_t lo, std::size_t hi, std::size_t /*tid*/) {
                             for (std::size_t k = lo; k < hi; ++k) phase_a(k);
                           });
      parallel_for_chunked(0, static_cast<std::size_t>(num_shards), threads,
                           [&](std::size_t lo, std::size_t hi, std::size_t /*tid*/) {
                             for (std::size_t k = lo; k < hi; ++k) phase_b(k);
                           });
    }
  }

  // Merge in shard order (the double sums too), so the result is independent
  // of which thread ran which shard.
  u64 measured_injections = 0;
  double total_latency = 0.0;
  for (const Shard& sh : shards) {
    result.delivered += sh.delivered;
    total_latency += sh.latency_sum;
    measured_injections += sh.measured_injections;
    result.max_queue = std::max(result.max_queue, sh.arena.max_size());
    out.offered_total += sh.offered;
    out.injected_total += sh.injected;
    out.delivered_total += sh.delivered_all;
    out.dropped_total += sh.dropped_all;
    out.in_flight_end += sh.in_flight;
    if (faulty) {
      out.tally.delivered += sh.tally.delivered;
      for (std::size_t r = 0; r < kNumDropReasons; ++r) {
        out.tally.dropped[r] += sh.tally.dropped[r];
      }
      out.tally.misroutes += sh.tally.misroutes;
      out.tally.wraps += sh.tally.wraps;
    } else {
      result.dropped_queue_full += sh.dropped_queue_full;
    }
  }
  if (faulty) result.dropped_queue_full = out.tally.dropped[drop_index(DropReason::kQueueFull)];
  BFLY_CHECK(out.conserved(), "sharded engine conservation violation");

  const double measured_cycles =
      simulated > options.warmup_cycles
          ? static_cast<double>(simulated - options.warmup_cycles)
          : 0.0;
  result.throughput =
      measured_cycles > 0.0
          ? static_cast<double>(result.delivered) / (measured_cycles * static_cast<double>(rows))
          : 0.0;
  result.per_node_injection = result.throughput / static_cast<double>(n + 1);
  result.avg_latency =
      result.delivered > 0 ? total_latency / static_cast<double>(result.delivered) : 0.0;

  // Commutative counter merges only — no gauges, so concurrent sharded
  // points in one sweep leave the registry deterministic without the
  // reset-after dance the serial engines need.
  obs::add(obs::get_counter("sharded.offered"), out.offered_total);
  obs::add(obs::get_counter("sharded.injected"), measured_injections);
  obs::add(obs::get_counter("sharded.delivered"), result.delivered);
  obs::add(obs::get_counter("sharded.dropped"), out.dropped_total);
  return out;
}

}  // namespace bfly
