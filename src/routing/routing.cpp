#include "routing/routing.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "routing/packet_arena.hpp"
#include "routing/telemetry_probe.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"

namespace bfly {

i64 butterfly_distance(int n, u64 r1, int s1, u64 r2, int s2) {
  BFLY_REQUIRE(n >= 1 && s1 >= 0 && s1 <= n && s2 >= 0 && s2 <= n, "bad node coordinates");
  // Bit b is fixed by traversing transition b (between stages b and b+1);
  // only the low n bits name transitions, so mask before scanning.
  const u64 diff = extract_bits(r1 ^ r2, 0, n);
  if (diff == 0) return std::abs(s1 - s2);
  const int lo_bit = lowest_set_bit(diff);
  const int hi_bit = highest_set_bit(diff);
  // The walk must cover the stage interval [lo_bit, hi_bit + 1]; the cheapest
  // sweep goes to one end first, then across, then to s2.
  const i64 a = std::min<i64>(lo_bit, std::min(s1, s2));
  const i64 b = std::max<i64>(hi_bit + 1, std::max(s1, s2));
  const i64 left_first = (s1 - a) + (b - a) + (b - s2);
  const i64 right_first = (b - s1) + (b - a) + (s2 - a);
  return std::min(left_first, right_first);
}

LoadCensus measure_link_loads(int n, u64 packets, u64 seed, std::size_t threads,
                              bool keep_link_loads, const CancelToken* cancel) {
  // n bounds the link-index space (n * 2^n * 2 dense ids): reject out-of-range
  // dimensions here instead of letting the shifts below overflow silently.
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_TRACE_SCOPE("routing.measure_link_loads");
  const Butterfly bf(n);
  const u64 rows = bf.rows();
  const u64 links = static_cast<u64>(n) * rows * 2;
  if (threads == 0) threads = default_thread_count();
  obs::Counter* packet_counter = obs::get_counter("routing.census.packets");

  // Packets are generated in fixed-size chunks, each with its own generator
  // seeded by (seed, chunk index); threads claim contiguous chunk ranges.
  // The per-link load sums are therefore identical no matter how many
  // threads execute the chunks.
  constexpr u64 kChunkPackets = u64{1} << 16;
  const u64 num_chunks = (packets + kChunkPackets - 1) / kChunkPackets;
  threads = std::min<std::size_t>(threads, std::max<u64>(num_chunks, 1));

  std::vector<std::vector<u64>> partial(threads, std::vector<u64>(links, 0));
  parallel_for_chunked(
      0, num_chunks, threads, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
        BFLY_TRACE_SCOPE("routing.census.worker");
        std::vector<u64>& loads = partial[tid];
        u64 routed = 0;
        for (std::size_t chunk = lo; chunk < hi; ++chunk) {
          // One poll per chunk (~64K packets): a tripped deadline abandons the
          // remaining chunks, leaving a partial census the caller discards.
          if (CancelToken::cancelled(cancel)) break;
          Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)));
          const u64 begin = static_cast<u64>(chunk) * kChunkPackets;
          const u64 end = std::min(packets, begin + kChunkPackets);
          for (u64 p = begin; p < end; ++p) {
            u64 row = rng.below(rows);
            const u64 dst = rng.below(rows);
            for (int s = 0; s < n; ++s) {
              const bool cross = ((row ^ dst) >> s) & 1;
              ++loads[link_index(bf, row, s, cross)];
              if (cross) row ^= pow2(s);
            }
          }
          routed += end - begin;
        }
        obs::add(packet_counter, routed);
      },
      cancel);

  LoadCensus census;
  census.packets = packets;
  if (keep_link_loads) census.link_loads.resize(links, 0);
  u64 total = 0;
  {
    BFLY_TRACE_SCOPE("routing.census.merge");
    // The per-link reduction runs on the pool too; per-range max/total
    // partials are combined in range order (u64 arithmetic), so the merged
    // statistics stay bitwise deterministic for any pool size.
    std::vector<u64> range_max(threads, 0);
    std::vector<u64> range_total(threads, 0);
    parallel_for_chunked(
        0, static_cast<std::size_t>(links), threads,
        [&](std::size_t lo, std::size_t hi, std::size_t tid) {
          u64 max_load = 0;
          u64 range_sum = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            u64 load = 0;
            for (std::size_t t = 0; t < threads; ++t) load += partial[t][i];
            if (keep_link_loads) census.link_loads[i] = load;
            max_load = std::max(max_load, load);
            range_sum += load;
          }
          range_max[tid] = max_load;
          range_total[tid] = range_sum;
        });
    for (std::size_t t = 0; t < threads; ++t) {
      census.max_link_load = std::max(census.max_link_load, range_max[t]);
      total += range_total[t];
    }
  }
  census.avg_link_load = static_cast<double>(total) / static_cast<double>(links);
  census.imbalance = census.avg_link_load > 0
                         ? static_cast<double>(census.max_link_load) / census.avg_link_load
                         : 0.0;
  census.avg_distance =
      packets > 0 ? static_cast<double>(total) / static_cast<double>(packets) : 0.0;
  obs::set(obs::get_gauge("routing.census.max_link_load"),
           static_cast<double>(census.max_link_load));
  obs::set(obs::get_gauge("routing.census.avg_link_load"), census.avg_link_load);
  obs::set(obs::get_gauge("routing.census.imbalance"), census.imbalance);
  return census;
}

double average_node_distance(int n, u64 samples, u64 seed, std::size_t threads) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(samples >= 1, "need at least one sample");
  BFLY_TRACE_SCOPE("routing.average_node_distance");
  const u64 rows = pow2(n);
  if (threads == 0) threads = default_thread_count();

  // Same fixed-chunk seeding scheme as measure_link_loads: the sample stream
  // is a function of (seed, chunk index) alone and the i64 chunk totals are
  // merged in chunk-range order, so the average is bitwise identical for any
  // thread count.
  constexpr u64 kChunkSamples = u64{1} << 16;
  const u64 num_chunks = (samples + kChunkSamples - 1) / kChunkSamples;
  threads = std::min<std::size_t>(threads, std::max<u64>(num_chunks, 1));

  std::vector<i64> partial(threads, 0);
  parallel_for_chunked(
      0, num_chunks, threads, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
        i64 total = 0;
        for (std::size_t chunk = lo; chunk < hi; ++chunk) {
          Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)));
          const u64 begin = static_cast<u64>(chunk) * kChunkSamples;
          const u64 end = std::min(samples, begin + kChunkSamples);
          for (u64 i = begin; i < end; ++i) {
            const u64 r1 = rng.below(rows);
            const u64 r2 = rng.below(rows);
            const int s1 = static_cast<int>(rng.below(static_cast<u64>(n) + 1));
            const int s2 = static_cast<int>(rng.below(static_cast<u64>(n) + 1));
            total += butterfly_distance(n, r1, s1, r2, s2);
          }
        }
        partial[tid] = total;
      });
  i64 total = 0;
  for (const i64 t : partial) total += t;
  return static_cast<double>(total) / static_cast<double>(samples);
}

u64 permutation_congestion(int n, std::span<const u64> perm) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  const Butterfly bf(n);
  const u64 rows = bf.rows();
  BFLY_REQUIRE(perm.size() == rows, "permutation must cover all rows");
  std::vector<u64> load(static_cast<std::size_t>(n) * rows * 2, 0);
  u64 worst = 0;
  for (u64 src = 0; src < rows; ++src) {
    u64 row = src;
    const u64 dst = perm[src];
    BFLY_REQUIRE(dst < rows, "permutation target out of range");
    for (int s = 0; s < n; ++s) {
      const bool cross = ((row ^ dst) >> s) & 1;
      const u64 l = ++load[link_index(bf, row, s, cross)];
      worst = std::max(worst, l);
      if (cross) row ^= pow2(s);
    }
  }
  return worst;
}

u64 bit_reversal_congestion(int n) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  const u64 rows = pow2(n);
  std::vector<u64> perm(rows);
  for (u64 r = 0; r < rows; ++r) perm[r] = bit_reverse(r, n);
  return permutation_congestion(n, perm);
}

SaturationPoint simulate_saturation(int n, double offered_load, u64 cycles, u64 seed,
                                    u64 warmup_cycles, u64 queue_capacity,
                                    const CancelToken* cancel,
                                    obs::TimeSeries* timeseries,
                                    obs::OccupancyFrames* frames,
                                    obs::FlightRecorder* flight) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(offered_load >= 0.0 && offered_load <= 1.0, "offered load is a probability");
  BFLY_TRACE_SCOPE("routing.simulate_saturation");
  const Butterfly bf(n);
  const u64 rows = bf.rows();
  const u64 links = static_cast<u64>(n) * rows * 2;

  // Hoisted metric handles: one registry lookup per call.  The simulator is
  // single-threaded, so per-delivery latency observations go through a
  // LocalHistogram buffer (plain array increments, merged once at the end)
  // rather than atomic observes — the per-packet tax must stay invisible
  // next to the rows * n queue operations each cycle performs.
  obs::Counter* injected_ctr = obs::get_counter("routing.injected");
  obs::Counter* delivered_ctr = obs::get_counter("routing.delivered");
  obs::LocalHistogram latency_hist(obs::get_histogram(
      "routing.latency_cycles", obs::Histogram::exponential_bounds(1, 2, 16)));
  obs::LocalHistogram depth_hist(obs::get_histogram(
      "routing.queue_depth", obs::Histogram::exponential_bounds(1, 2, 24)));

  // Per-packet flight tracing: the arena grows its flight-handle lane only
  // when a recorder is attached, so the disabled path is byte-for-byte the
  // pre-flight arena layout.
  detail::FlightProbe fprobe(flight);
  // Per-link FIFOs live in the flat slot arena: same push_back/pop_front
  // semantics as the seed's per-link deques (the *_reference oracle), zero
  // per-cycle heap traffic.
  PacketArena arena(links, /*with_budgets=*/false, /*with_flight=*/fprobe.enabled());
  Xoshiro256 rng(seed);
  // Cycle-resolved telemetry: every hook below is a no-op branch when both
  // sinks are null (the default) and compiles out entirely without BFLY_OBS.
  detail::SaturationProbe probe(timeseries, frames, n, rows);

  SaturationPoint result;
  result.offered_load = offered_load;
  u64 measured_injections = 0;
  u64 in_flight = 0;
  double total_latency = 0.0;

  // Returns false when the packet is dropped (bounded-queue mode only).
  const auto enqueue = [&](u64 row, int stage, u64 dst, u64 injected_at, bool measured,
                           u64 flight_handle) {
    const bool cross = ((row ^ dst) >> stage) & 1;
    const u64 link = (static_cast<u64>(stage) * rows + row) * 2 + (cross ? 1 : 0);
    if (queue_capacity > 0 && arena.size(link) >= queue_capacity) {
      if (measured) ++result.dropped_queue_full;
      probe.on_dropped();
      fprobe.on_dropped(flight_handle, injected_at, obs::kFlightDropQueueFull);
      return false;
    }
    fprobe.on_push(flight_handle, injected_at, link, obs::FlightEvent::kInject);
    arena.push(link, {dst, injected_at, 0, 0, flight_handle});
    return true;
  };

  u64 simulated = cycles;
  for (u64 cycle = 0; cycle < cycles; ++cycle) {
    if (cycle % kCancelPollCycles == 0 && CancelToken::cancelled(cancel)) {
      simulated = cycle;
      break;
    }
    const bool measured = cycle >= warmup_cycles;
    // Forward one packet per link, highest stage first so a packet moves at
    // most one hop per cycle.  For a fixed stage the dense link ids are the
    // contiguous range [stage * rows * 2, (stage + 1) * rows * 2), so the
    // occupancy bitmap walks non-empty links in exactly the (row, c) order
    // of the seed's full scan — and skips the empty ones for free.
    for (int s = n - 1; s >= 0; --s) {
      const u64 stage_base = static_cast<u64>(s) * rows * 2;
      arena.for_each_occupied(stage_base, stage_base + rows * 2, [&](u64 link) {
        const u64 row = (link - stage_base) >> 1;
        const bool cross = (link & 1) != 0;
        const u64 next_row = cross ? (row ^ pow2(s)) : row;
        if (s + 1 == n) {
          const PacketArena::Packet pkt = arena.pop(link);
          --in_flight;
          if (measured) {
            ++result.delivered;
            const double latency = static_cast<double>(cycle + 1 - pkt.injected_at);
            total_latency += latency;
            latency_hist.observe(latency);
          }
          probe.on_delivered(cycle, pkt.injected_at);
          fprobe.on_delivered(pkt.flight, cycle);
          return;
        }
        // Intermediate hop: the payload is invariant, so relink the slot onto
        // the next stage's FIFO instead of popping and re-pushing it.
        const u64 dst = arena.front_dst(link);
        const bool next_cross = ((next_row ^ dst) >> (s + 1)) & 1;
        const u64 next_link =
            (static_cast<u64>(s + 1) * rows + next_row) * 2 + (next_cross ? 1 : 0);
        if (queue_capacity > 0 && arena.size(next_link) >= queue_capacity) {
          const PacketArena::Packet pkt = arena.pop(link);
          if (measured) ++result.dropped_queue_full;
          probe.on_dropped();
          fprobe.on_dropped(pkt.flight, cycle, obs::kFlightDropQueueFull);
          --in_flight;
        } else {
          fprobe.on_advance(arena, link, cycle, next_link);
          arena.move_front(link, next_link);
        }
      });
    }
    // Inject.  Packet identity (the flight sampler's key) is the creation
    // counter inside on_packet — every drawn packet advances it, dropped or
    // not, keeping the id stream aligned with the faulty engine's.
    u64 cycle_injections = 0;
    for (u64 row = 0; row < rows; ++row) {
      if (rng.uniform() < offered_load) {
        const u64 dst = rng.below(rows);
        const u64 flight_handle = fprobe.on_packet(cycle, row, dst);
        if (enqueue(row, 0, dst, cycle, measured, flight_handle)) {
          ++cycle_injections;
          if (measured) ++measured_injections;
        }
      }
    }
    in_flight += cycle_injections;
    depth_hist.observe(static_cast<double>(in_flight));
    probe.on_injected(cycle_injections);
    probe.sample(cycle, arena, in_flight, /*dead_links=*/0);
  }
  latency_hist.flush();
  depth_hist.flush();

  result.max_queue = arena.max_size();
  // Average over the cycles actually simulated so a cancelled run still
  // reports meaningful (if noisier) rates; zero when the token tripped before
  // the first measured cycle.
  const double measured_cycles =
      simulated > warmup_cycles ? static_cast<double>(simulated - warmup_cycles) : 0.0;
  result.throughput =
      measured_cycles > 0.0
          ? static_cast<double>(result.delivered) / (measured_cycles * static_cast<double>(rows))
          : 0.0;
  result.per_node_injection = result.throughput / static_cast<double>(n + 1);
  result.avg_latency =
      result.delivered > 0 ? total_latency / static_cast<double>(result.delivered) : 0.0;
  obs::add(injected_ctr, measured_injections);
  obs::add(delivered_ctr, result.delivered);
  if (queue_capacity > 0) {
    obs::add(obs::get_counter("routing.dropped.queue_full"), result.dropped_queue_full);
  }
  obs::set(obs::get_gauge("routing.max_queue"), static_cast<double>(result.max_queue));
  obs::set(obs::get_gauge("routing.throughput"), result.throughput);
  return result;
}

}  // namespace bfly
