// Cycle-parallel sharded saturation engine: one large butterfly on all cores.
//
// simulate_saturation / simulate_saturation_faulty advance a single B_n on a
// single thread; sweep-level parallelism (sim/sweep.hpp) only helps when a
// *grid* of simulations is wanted.  This engine parallelizes one simulation:
// the 2^n rows are partitioned into `shard_count` power-of-two blocks, each
// shard owning the contiguous per-stage link ranges of its rows in a private
// PacketArena, and all shards advance concurrently on the persistent
// ThreadPool within each cycle.
//
// Sharding geometry.  With block = 2^n / shard_count, shard k owns rows
// [k*block, (k+1)*block).  The stage-s cross link flips row bit s, so a
// packet leaves its shard only when 2^s >= block — the low log2(block)
// stages are entirely shard-local, and exactly log2(shard_count) stages
// cross.  Cross hops travel through preallocated SPSC hand-off rings
// (util/spsc_ring.hpp), one per (source shard, crossing stage), drained at a
// deterministic barrier in fixed (stage, source) order by the receiving
// shard — which also makes the arrival's routing decision (next output link,
// or the terminal deliver/wrap/drop call), since that decision needs the
// destination row's queue and liveness state.
//
// Determinism contract.  Injection uses the repo's fixed-chunk seeding
// pattern: shard k draws from its own Xoshiro256 stream seeded by
// (seed, shard index) exactly like the census's per-chunk streams, per-shard
// statistics merge in shard order, and the two intra-cycle phases are
// fork-join barriers with a fixed drain order — so the result is a pure
// function of (n, offered_load, cycles, seed, shard_count), bitwise
// invariant across thread counts (tests/test_sharded_sim.cpp proves
// threads in {1, 2, 4, hardware} identical; the serial threads=1 run of
// *this* engine is the reference).  The sharded result is deliberately NOT
// bitwise equal to the serial engines — the injection RNG decomposes
// differently — but exact conservation (every offered packet is delivered,
// dropped, or still in flight at the end) and close statistical agreement
// are asserted against them.
//
// Scope.  Pristine and static-FaultSet runs (budgeted deflection routing
// with the same policy as fault/fault_routing.hpp).  Telemetry / flight
// probes and live FaultSchedules are not wired in: sweep points that request
// them fall back to the serial engines (docs/performance.md, "Sharded
// engine").  The registry sees only commutative counter merges
// (sharded.offered / injected / delivered / dropped), never gauges, so
// concurrent sharded points in one sweep stay report-deterministic.
#pragma once

#include <cstddef>

#include "fault/fault_routing.hpp"
#include "routing/routing.hpp"
#include "util/cancel.hpp"

namespace bfly {

struct ShardedOptions {
  /// Power-of-two number of row blocks, <= 2^n.  0 picks the fixed default
  /// min(2^n, 8) — machine-independent, so a defaulted run is still a pure
  /// function of its parameters.
  u64 shard_count = 0;
  /// Worker cap for the per-cycle phases (0 = default_thread_count()).  Never
  /// affects results, only wall-clock.
  std::size_t threads = 0;
  u64 warmup_cycles = 0;
  u64 queue_capacity = 0;  ///< 0 = unbounded per-link FIFOs
  /// Deflection budgets for static-fault runs (ignored when faults == nullptr).
  FaultRoutingOptions routing{};
};

/// Result of a sharded run: the serial engines' SaturationPoint / FaultTally
/// shapes (post-warmup, same formulas), plus an exact whole-run conservation
/// ledger counted over every cycle including warmup.
struct ShardedSaturationPoint {
  SaturationPoint point;
  /// Post-warmup drop/deflection accounting; all-zero for pristine runs.
  FaultTally tally;
  u64 shard_count = 0;

  // Conservation ledger.  offered counts every injection-RNG success;
  // injected the subset that entered a queue; every offered packet is
  // eventually delivered, dropped (at injection or in the fabric), or still
  // queued when the run ends, so offered == delivered + dropped + in_flight
  // holds exactly — the engine BFLY_CHECKs it before returning.
  u64 offered_total = 0;
  u64 injected_total = 0;
  u64 delivered_total = 0;
  u64 dropped_total = 0;
  u64 in_flight_end = 0;

  bool conserved() const {
    return offered_total == delivered_total + dropped_total + in_flight_end;
  }
};

/// Runs one B_n saturation simulation sharded across the thread pool.  A
/// non-null `faults` (dimension n, static) routes with the budgeted
/// deflection policy; a non-null `cancel` is polled every kCancelPollCycles
/// cycles at the cycle barrier, stopping all shards in sync so a cancelled
/// run still returns a consistent (conservation-exact) partial result.
ShardedSaturationPoint simulate_saturation_sharded(int n, double offered_load, u64 cycles,
                                                   u64 seed, const ShardedOptions& options = {},
                                                   const FaultSet* faults = nullptr,
                                                   const CancelToken* cancel = nullptr);

}  // namespace bfly
