// Random routing on butterfly networks: the empirical side of Theorem 2.1's
// lower bound.  The maximum injection rate of uniform random routing is
// Theta(1/log R) per network node (average distance Theta(log R), balanced
// link loads), so an M-node module needs Omega(M / log R) off-module links
// to sustain it -- which the Section 2.3 partitions meet within a constant.
//
// Two instruments:
//  * a Monte-Carlo link-load census over the stage-0 -> stage-n DAG
//    (multithreaded, deterministic per seed), and
//  * a synchronous queued simulation measuring delivered throughput and
//    latency as the offered load approaches saturation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "topology/butterfly.hpp"
#include "util/bits.hpp"
#include "util/cancel.hpp"

namespace bfly::obs {
class TimeSeries;
class OccupancyFrames;
class FlightRecorder;
}  // namespace bfly::obs

namespace bfly {

/// Dense id of the forward link (row, stage) -> stage+1 (cross or straight).
inline u64 link_index(const Butterfly& bf, u64 row, int stage, bool cross) {
  return (static_cast<u64>(stage) * bf.rows() + row) * 2 + (cross ? 1 : 0);
}

/// Shortest-path length between two arbitrary butterfly nodes (rows r1, r2 at
/// stages s1, s2): the walk must sweep every stage transition whose bit
/// differs, moving left/right along the stages.
i64 butterfly_distance(int n, u64 r1, int s1, u64 r2, int s2);

struct LoadCensus {
  u64 packets = 0;
  u64 max_link_load = 0;
  double avg_link_load = 0.0;
  double imbalance = 0.0;      ///< max / avg (1.0 = perfectly balanced)
  double avg_distance = 0.0;   ///< hops per packet (= n for the DAG workload)
  /// Per-link loads indexed by link_index(); empty unless the census was run
  /// with keep_link_loads (n * 2^n * 2 entries — sized for rendering, not for
  /// the big Monte-Carlo sweeps).
  std::vector<u64> link_loads;
};

/// Routes `packets` uniform random (source row, destination row) pairs
/// through the stage-0 -> stage-n DAG (bit-fixing: cross at stage s iff bit s
/// differs) and censuses per-link loads.  Packet streams are seeded per
/// fixed-size work chunk (not per thread), so the result is bitwise
/// deterministic for a fixed seed regardless of the thread count.  With
/// `keep_link_loads` the merged per-link totals are returned in
/// LoadCensus::link_loads (for congestion heatmaps) instead of being
/// discarded after the summary statistics.
///
/// A non-null `cancel` is polled once per 2^16-packet work chunk (and by the
/// pool before each unstarted range), so a deadline or explicit cancel stops
/// the census within one chunk per in-flight worker.  A cancelled census
/// returns with only the packets routed before the trip counted — a partial
/// result the caller must discard (the serving layer answers
/// deadline_exceeded instead of using it).  A run that completes without the
/// token tripping is bitwise identical to one with cancel == nullptr.
LoadCensus measure_link_loads(int n, u64 packets, u64 seed,
                              std::size_t threads = 0 /* 0 = default */,
                              bool keep_link_loads = false,
                              const CancelToken* cancel = nullptr);

/// Average shortest-path distance between uniformly random node pairs
/// (arbitrary stages): the Theta(log R) quantity in Theorem 2.1.  Samples are
/// drawn in fixed-size chunks seeded by (seed, chunk index) and the integer
/// chunk totals are merged in chunk order, so the result is bitwise identical
/// for every thread count (0 = default).
double average_node_distance(int n, u64 samples, u64 seed,
                             std::size_t threads = 0);

struct SaturationPoint {
  double offered_load = 0.0;     ///< injection probability per stage-0 row per cycle
  double throughput = 0.0;       ///< delivered packets per stage-0 row per cycle
  double avg_latency = 0.0;      ///< cycles from injection to delivery
  double per_node_injection = 0.0;  ///< throughput * R / N = throughput / (n+1)
  u64 delivered = 0;
  u64 max_queue = 0;
  u64 dropped_queue_full = 0;    ///< bounded-queue mode only (0 when unbounded)
};

/// How often the saturation engines poll their CancelToken: once per
/// kCancelPollCycles simulated cycles, so cancellation lands within one poll
/// batch per in-flight engine (the exec layer's latency bound).
inline constexpr u64 kCancelPollCycles = 64;

/// Synchronous store-and-forward simulation: every link moves one packet per
/// cycle; packets are injected at stage-0 rows with probability
/// `offered_load` per cycle and routed by bit-fixing.  Output queues are
/// unbounded by default; `queue_capacity > 0` bounds every output queue and
/// drops on full (counted, post-warmup, in dropped_queue_full) — making the
/// unbounded-queue assumption an explicit opt-in rather than an implicit one.
///
/// A non-null `cancel` is polled every kCancelPollCycles cycles; on
/// cancellation the simulation stops at the poll and returns rates averaged
/// over the cycles actually simulated (all-zero when cancelled before any
/// measured cycle).  A run that completes without the token tripping is
/// bitwise identical to one with cancel == nullptr.
///
/// A non-null `timeseries` receives cycle-resolved samples (per-stage queue
/// occupancy, in-flight count, cumulative injected/delivered/dropped and
/// latency sums, arena fill) under its own deterministic cycle-indexed
/// downsampling; a non-null `frames` receives full per-link occupancy
/// snapshots for heatmap-over-time rendering.  Both are keyed purely by
/// cycle index, so the samples are bitwise identical across thread counts
/// and checkpoint replay, and passing nullptr (the default) leaves the
/// simulation bit-for-bit unchanged.  With BFLY_OBS disabled at compile time
/// the probe hooks compile out entirely and both sinks stay empty.
///
/// A non-null enabled `flight` records full per-packet hop traces for a
/// deterministically sampled subset of packets (admission is a pure function
/// of SplitMix64(seed ^ packet id) — see obs/flight.hpp), under the same
/// observation-changes-nothing and bitwise-replay guarantees as the other
/// sinks.
SaturationPoint simulate_saturation(int n, double offered_load, u64 cycles, u64 seed,
                                    u64 warmup_cycles = 0, u64 queue_capacity = 0,
                                    const CancelToken* cancel = nullptr,
                                    obs::TimeSeries* timeseries = nullptr,
                                    obs::OccupancyFrames* frames = nullptr,
                                    obs::FlightRecorder* flight = nullptr);

/// Maximum link congestion when routing the *permutation* perm (one packet
/// per row) by bit-fixing through the DAG.  Uniform random permutations stay
/// near O(log R / log log R); the bit-reversal permutation concentrates
/// Theta(sqrt(R)) packets on single links -- the classic worst case that
/// motivates rearrangeable fabrics (Benes) for switches.
u64 permutation_congestion(int n, std::span<const u64> perm);

/// Congestion of the bit-reversal permutation (exactly 2^{floor((n-1)/2)} on
/// the middle-stage links).
u64 bit_reversal_congestion(int n);

}  // namespace bfly
