#include "routing/reference_sim.hpp"

#include <algorithm>
#include <deque>

#include "util/prng.hpp"

namespace bfly {

SaturationPoint simulate_saturation_reference(int n, double offered_load, u64 cycles, u64 seed,
                                              u64 warmup_cycles, u64 queue_capacity) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(offered_load >= 0.0 && offered_load <= 1.0, "offered load is a probability");
  const Butterfly bf(n);
  const u64 rows = bf.rows();

  struct Packet {
    u64 dst;
    u64 injected_at;
  };
  // One FIFO per forward link.
  std::vector<std::deque<Packet>> queues(static_cast<std::size_t>(n) * rows * 2);
  Xoshiro256 rng(seed);

  SaturationPoint result;
  result.offered_load = offered_load;
  u64 in_flight = 0;
  double total_latency = 0.0;

  // Returns false when the packet is dropped (bounded-queue mode only).
  const auto enqueue = [&](u64 row, int stage, const Packet& pkt, bool measured) {
    const bool cross = ((row ^ pkt.dst) >> stage) & 1;
    auto& q = queues[link_index(bf, row, stage, cross)];
    if (queue_capacity > 0 && q.size() >= queue_capacity) {
      if (measured) ++result.dropped_queue_full;
      return false;
    }
    q.push_back(pkt);
    return true;
  };

  for (u64 cycle = 0; cycle < cycles; ++cycle) {
    const bool measured = cycle >= warmup_cycles;
    // Forward one packet per link, highest stage first so a packet moves at
    // most one hop per cycle.
    for (int s = n - 1; s >= 0; --s) {
      for (u64 row = 0; row < rows; ++row) {
        for (int c = 0; c < 2; ++c) {
          auto& q = queues[link_index(bf, row, s, c == 1)];
          if (q.empty()) continue;
          const Packet pkt = q.front();
          q.pop_front();
          const u64 next_row = c == 1 ? (row ^ pow2(s)) : row;
          if (s + 1 == n) {
            --in_flight;
            if (measured) {
              ++result.delivered;
              total_latency += static_cast<double>(cycle + 1 - pkt.injected_at);
            }
          } else if (!enqueue(next_row, s + 1, pkt, measured)) {
            --in_flight;
          }
        }
      }
    }
    // Inject.
    u64 cycle_injections = 0;
    for (u64 row = 0; row < rows; ++row) {
      if (rng.uniform() < offered_load) {
        if (enqueue(row, 0, Packet{rng.below(rows), cycle}, measured)) {
          ++cycle_injections;
        }
      }
    }
    in_flight += cycle_injections;
  }

  for (const auto& q : queues) {
    result.max_queue = std::max(result.max_queue, static_cast<u64>(q.size()));
  }
  const double measured_cycles = static_cast<double>(cycles - warmup_cycles);
  result.throughput =
      static_cast<double>(result.delivered) / (measured_cycles * static_cast<double>(rows));
  result.per_node_injection = result.throughput / static_cast<double>(n + 1);
  result.avg_latency =
      result.delivered > 0 ? total_latency / static_cast<double>(result.delivered) : 0.0;
  return result;
}

}  // namespace bfly
