// The seed deque-based saturation simulator, kept verbatim (minus obs
// instrumentation, which never influenced the returned statistics) as the
// determinism oracle for the arena engine: simulate_saturation() must
// reproduce simulate_saturation_reference() bit for bit — every
// SaturationPoint field, for every (seed, load, queue_capacity) — which
// tests/test_routing.cpp asserts across seeds and modes.  bench_routing also
// times this reference serially against the arena-backed saturation_sweep to
// measure the engine speedup it records in bench/trajectories/.
//
// Do not "improve" this file: its value is that it does not change.
#pragma once

#include "routing/routing.hpp"

namespace bfly {

/// The seed implementation of simulate_saturation (per-link std::deque
/// FIFOs, single-threaded).  Same contract and RNG streams as the arena
/// engine; intentionally unoptimized.
SaturationPoint simulate_saturation_reference(int n, double offered_load, u64 cycles, u64 seed,
                                              u64 warmup_cycles = 0, u64 queue_capacity = 0);

}  // namespace bfly
