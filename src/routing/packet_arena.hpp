// Flat slot arena backing the saturation simulators' per-link FIFOs.
//
// The seed simulators kept one std::deque<Packet> per forward link — n * 2^n
// * 2 separately heap-allocated containers — and probed every link's header
// every cycle (the dominant cost at low occupancy: the headers alone are
// ~80 B * links of cache traffic per cycle).  The arena stores every
// in-flight packet in contiguous slot lanes and threads per-link FIFO chains
// through a shared `next` lane:
//
//   * payload lane — (dst, injected_at) paired in one 16-byte slot, so a
//     hop touches one payload cache line instead of two;
//   * budget lane — misroute/wrap counters packed into one u64, allocated
//     only for the fault simulator (with_budgets);
//   * occupancy bitmap — one bit per link, maintained on push/pop, so the
//     cycle loop iterates non-empty links with countr_zero instead of
//     probing every FIFO (for_each_occupied).
//
// Freed slots recycle through a free list: once the arena has grown to the
// simulation's peak population, a cycle performs zero heap traffic.
//
// Semantics are exactly deque push_back/pop_front per link (FIFO, one
// container per link), which is what makes the arena engines bit-identical to
// the seed simulators (asserted against the *_reference oracles in tests).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace bfly {

class PacketArena {
 public:
  /// One in-flight packet.  misroutes/wraps are stored only when the arena
  /// was built with_budgets (the fault simulator); the pristine simulator
  /// reads them back as 0.  `flight` is the packet's flight-recorder handle
  /// (0 = unsampled), stored only when built with_flight — it rides the same
  /// optional-lane scheme as the budgets, so runs without a recorder pay
  /// nothing for it.
  struct Packet {
    u64 dst = 0;
    u64 injected_at = 0;
    u32 misroutes = 0;
    u32 wraps = 0;
    u64 flight = 0;
  };

  static constexpr u32 kNil = ~u32{0};

  /// An empty arena over `links` FIFOs.  `initial_slots` preallocates packet
  /// capacity; the arena grows geometrically (amortized) beyond it.
  ///
  /// Both counts must fit the arena's 32-bit index width (kNil is the
  /// sentinel): slot ids are u32, and link FIFOs chain through those slots,
  /// so a dimension large enough to exceed them must fail loudly here rather
  /// than wrap deep inside a run.  The checks run before any allocation — an
  /// oversized request throws without first trying to reserve terabytes.
  explicit PacketArena(u64 links, bool with_budgets = false, bool with_flight = false,
                       std::size_t initial_slots = 4096)
      : with_budgets_(with_budgets), with_flight_(with_flight) {
    BFLY_REQUIRE(links < static_cast<u64>(kNil),
                 "PacketArena: link count exceeds the 32-bit index width");
    BFLY_REQUIRE(initial_slots < static_cast<std::size_t>(kNil),
                 "PacketArena: initial slot count exceeds the 32-bit index width");
    q_.resize(links);
    occupied_.resize((links + 63) / 64, 0);
    grow(initial_slots);
  }

  bool empty(u64 link) const { return q_[link].head == kNil; }
  u64 size(u64 link) const { return q_[link].size; }
  u64 num_links() const { return q_.size(); }

  /// Appends `p` to the back of `link`'s FIFO.
  void push(u64 link, const Packet& p) {
    const u32 slot = alloc();
    payload_[slot] = Payload{p.dst, p.injected_at};
    if (with_budgets_) {
      budgets_[slot] = static_cast<u64>(p.misroutes) | (static_cast<u64>(p.wraps) << 32);
    }
    if (with_flight_) flight_[slot] = p.flight;
    next_[slot] = kNil;
    LinkQ& q = q_[link];
    if (q.tail == kNil) {
      q.head = slot;
      occupied_[link >> 6] |= u64{1} << (link & 63);
    } else {
      next_[q.tail] = slot;
    }
    q.tail = slot;
    ++q.size;
  }

  /// dst of the front packet on `link` (must be non-empty).  Lets the
  /// simulators pick the output link before deciding between pop (delivery,
  /// drop, budget mutation) and the payload-invariant move_front fast path.
  u64 front_dst(u64 link) const { return payload_[q_[link].head].dst; }

  /// Flight-recorder handle of the front packet on `link` (must be
  /// non-empty); 0 on arenas built without the flight lane, matching the
  /// "unsampled" convention.
  u64 front_flight(u64 link) const {
    return with_flight_ ? flight_[q_[link].head] : 0;
  }

  /// Relinks the front slot of `from` (must be non-empty) onto the back of
  /// `to` without touching the payload or the free list.  A normal hop leaves
  /// dst/injected_at/budgets unchanged, so this replaces a pop+push pair —
  /// same FIFO semantics, roughly half the memory traffic.
  void move_front(u64 from, u64 to) {
    LinkQ& qf = q_[from];
    const u32 slot = qf.head;
    BFLY_CHECK(slot != kNil, "PacketArena::move_front on empty link");
    const u32 nxt = next_[slot];
    qf.head = nxt;
    if (nxt == kNil) {
      qf.tail = kNil;
      occupied_[from >> 6] &= ~(u64{1} << (from & 63));
    }
    --qf.size;
    next_[slot] = kNil;
    LinkQ& qt = q_[to];
    if (qt.tail == kNil) {
      qt.head = slot;
      occupied_[to >> 6] |= u64{1} << (to & 63);
    } else {
      next_[qt.tail] = slot;
    }
    qt.tail = slot;
    ++qt.size;
  }

  /// Pops the front of `link`'s FIFO (must be non-empty) and recycles the
  /// slot.
  Packet pop(u64 link) {
    LinkQ& q = q_[link];
    const u32 slot = q.head;
    BFLY_CHECK(slot != kNil, "PacketArena::pop on empty link");
    Packet p;
    p.dst = payload_[slot].dst;
    p.injected_at = payload_[slot].injected_at;
    if (with_budgets_) {
      const u64 b = budgets_[slot];
      p.misroutes = static_cast<u32>(b);
      p.wraps = static_cast<u32>(b >> 32);
    }
    if (with_flight_) p.flight = flight_[slot];
    const u32 n = next_[slot];
    q.head = n;
    if (n == kNil) {
      q.tail = kNil;
      occupied_[link >> 6] &= ~(u64{1} << (link & 63));
    }
    --q.size;
    next_[slot] = free_head_;
    free_head_ = slot;
    return p;
  }

  /// Calls fn(link) for every non-empty link in [begin, end), in increasing
  /// link order.  The occupancy word is snapshotted per 64-link block, so fn
  /// may pop the visited link (or push to links outside the current block)
  /// freely; the simulators' descending-stage sweeps only push into stages
  /// that were already visited, which keeps snapshot and visit-time
  /// occupancy identical.
  template <typename Fn>
  void for_each_occupied(u64 begin, u64 end, Fn&& fn) const {
    const u64 first_word = begin >> 6;
    const u64 last_word = (end + 63) >> 6;
    for (u64 w = first_word; w < last_word; ++w) {
      u64 bits = occupied_[w];
      const u64 base = w << 6;
      if (base < begin) bits &= ~u64{0} << (begin - base);
      if (end - base < 64) bits &= (u64{1} << (end - base)) - 1;
      while (bits != 0) {
        const int bit = lowest_set_bit(bits);
        bits &= bits - 1;
        if (bits != 0) {
          // Hide the scattered front-slot load of the next occupied link
          // behind this link's work (the headers themselves are dense and
          // stay cached; the payload/next lanes are what miss).
          const u32 ahead = q_[base + static_cast<u64>(lowest_set_bit(bits))].head;
          BFLY_PREFETCH(&payload_[ahead]);
          BFLY_PREFETCH(&next_[ahead]);
        }
        fn(base + static_cast<u64>(bit));
      }
    }
  }

  /// Total packet slots currently allocated (the denominator of the
  /// telemetry probes' arena_fill channel).  Grows geometrically with the
  /// peak population and never shrinks, so the sequence of capacities a run
  /// passes through is a deterministic function of the packet stream.
  u64 capacity() const { return payload_.size(); }

  /// Largest per-link FIFO size right now (the simulators' end-of-run
  /// max_queue statistic).
  u64 max_size() const {
    u32 m = 0;
    for (const LinkQ& q : q_) m = std::max(m, q.size);
    return m;
  }

 private:
  struct Payload {
    u64 dst;
    u64 injected_at;
  };

  /// Per-link FIFO header.  head/tail/size share one 16-byte struct so a hop
  /// dirties one cache line per endpoint instead of three.
  struct LinkQ {
    u32 head = kNil;
    u32 tail = kNil;
    u32 size = 0;
    u32 pad_ = 0;
  };

  u32 alloc() {
    if (free_head_ == kNil) grow(payload_.size());
    const u32 slot = free_head_;
    free_head_ = next_[slot];
    return slot;
  }

  void grow(std::size_t add) {
    const std::size_t old = payload_.size();
    const std::size_t grown = old + std::max<std::size_t>(add, 64);
    BFLY_CHECK(grown < static_cast<std::size_t>(kNil), "packet arena slot space exhausted");
    payload_.resize(grown);
    if (with_budgets_) budgets_.resize(grown);
    if (with_flight_) flight_.resize(grown);
    next_.resize(grown);
    // Chain the new slots onto the free list, lowest index at the head.
    for (std::size_t s = grown; s-- > old;) {
      next_[s] = free_head_;
      free_head_ = static_cast<u32>(s);
    }
  }

  bool with_budgets_;
  bool with_flight_;
  // Packet lanes (indexed by slot).
  std::vector<Payload> payload_;
  std::vector<u64> budgets_;  ///< misroutes | wraps << 32, with_budgets only
  std::vector<u64> flight_;   ///< flight-recorder handle, with_flight only
  std::vector<u32> next_;     ///< FIFO successor, or free-list successor
  // Per-link FIFO state (indexed by dense link id).
  std::vector<LinkQ> q_;
  std::vector<u64> occupied_;  ///< bit (link & 63) of word (link >> 6)
  u32 free_head_ = kNil;
};

}  // namespace bfly
