#include "core/bfly.hpp"

namespace bfly {

const char* version() { return "1.0.0"; }

}  // namespace bfly
