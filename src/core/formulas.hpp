// The paper's closed forms, collected in one place so that every bench and
// test compares measurements against the same expressions.
//
// Throughout, N = (n+1) 2^n is the node count of the n-dimensional
// butterfly, so N / log2(N) ~ 2^n and the paper's N^2/log^2 N leading terms
// reduce to powers of two in n.
#pragma once

#include <cmath>
#include <span>

#include "util/bits.hpp"

namespace bfly::formulas {

/// Number of nodes of B_n.
inline double nodes(int n) {
  return static_cast<double>(n + 1) * std::pow(2.0, n);
}

/// Thompson-model area leading term: N^2 / log2^2 N = 2^{2n}.
inline double thompson_area(int n) {
  return std::pow(2.0, 2 * n);
}

/// Thompson-model max wire length leading term: N / log2 N = 2^n.
inline double thompson_max_wire(int n) {
  return std::pow(2.0, n);
}

/// Theorem 4.1 area: 4 N^2 / (L^2 log2^2 N) for even L,
/// 4 N^2 / ((L^2 - 1) log2^2 N) for odd L.
inline double multilayer_area(int n, int L) {
  const double denom = (L % 2 == 0) ? static_cast<double>(L) * L
                                    : static_cast<double>(L) * L - 1.0;
  return 4.0 * std::pow(2.0, 2 * n) / denom;
}

/// Multilayer max wire length: 2 N / (L log2 N) = 2^{n+1} / L.
inline double multilayer_max_wire(int n, int L) {
  return std::pow(2.0, n + 1) / L;
}

/// Multilayer volume: 4 N^2 / (L log2^2 N).
inline double multilayer_volume(int n, int L) {
  return 4.0 * std::pow(2.0, 2 * n) / L;
}

/// Section 2.3: average off-module links per node of the row-block scheme,
/// as printed in the paper (assumes equal group sizes k_i = k_1).
inline double offmodule_links_per_node(int l, int k1, int n) {
  const double rows = std::pow(2.0, k1);
  return 4.0 * (l - 1) * (rows - 1) / ((n + 1) * rows);
}

/// Generalization of the Section 2.3 average to unequal group sizes: a
/// level-i swap link stays inside its module with probability 2^{-k_i}, so
/// the average is (4/(n+1)) sum_{i=2..l} (1 - 2^{-k_i}).  Reduces to
/// offmodule_links_per_node when all k_i are equal.
inline double offmodule_links_per_node_general(std::span<const int> k) {
  int n = 0;
  for (const int ki : k) n += ki;
  double sum = 0.0;
  for (std::size_t i = 1; i < k.size(); ++i) {
    sum += 1.0 - std::pow(2.0, -k[i]);
  }
  return 4.0 * sum / (n + 1);
}

/// The naive consecutive-row packing's asymptotic average (about 2).
inline double naive_offmodule_links_per_node() {
  return 2.0;
}

// ---------------------------------------------------------------------------
// Prior-art leading constants for butterfly layout area, all as multiples of
// N^2/log2^2 N (the paper's related-work comparison in the introduction).
// ---------------------------------------------------------------------------

/// Avior, Calamoneri, Even, Litman, Rosenberg [1]: upright rectangle, two
/// wire layers -- the 1 + o(1) optimum our Section 3 layout matches.
inline double avior_area_constant() { return 1.0; }

/// Muthukrishnan, Paterson, Sahinalp, Suel [16]: knock-knee model (usually
/// needs more than two layers to realize).
inline double knock_knee_area_constant() { return 2.0 / 3.0; }

/// Dinitz, Even, Kupershtok, Zapolotsky [10]: slanted encompassing rectangle
/// (wires at 45 degrees).
inline double dinitz_slanted_area_constant() { return 0.5; }

/// This paper under the multilayer model: 4 / L^2 (even L).
inline double multilayer_area_constant(int L) {
  return L % 2 == 0 ? 4.0 / (static_cast<double>(L) * L)
                    : 4.0 / (static_cast<double>(L) * L - 1.0);
}

}  // namespace bfly::formulas
