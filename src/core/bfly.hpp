// Umbrella header: the public API of the bflylayout library.
//
//   #include "core/bfly.hpp"
//
// pulls in the network topologies (butterflies, swap networks, ISNs and the
// swap-butterfly transformation of Section 2), the layout engine and the
// optimal butterfly layouts under the Thompson and multilayer grid models
// (Sections 3-4), the partitioning/packaging schemes and the hierarchical
// planner (Sections 2.3 and 5), the routing simulator behind the Theorem 2.1
// lower bound, the fault-injection / fault-tolerant-routing subsystem
// (bfly::fault, including live mid-run fault/repair schedules with spare-chip
// failover), the batched simulation sweeps, degradation analysis and recovery
// analytics (bfly::sim), the resilient execution layer (bfly::exec — cancellation,
// checkpoint/resume, retry), and the network FFT functional check.
#pragma once

#include "core/formulas.hpp"
#include "exec/checkpoint.hpp"
#include "exec/exec.hpp"
#include "fault/fault_routing.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/fault_set.hpp"
#include "fft/isn_fft.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "layout/butterfly_3d.hpp"
#include "layout/butterfly_layout.hpp"
#include "layout/collinear.hpp"
#include "layout/legality.hpp"
#include "layout/render.hpp"
#include "packaging/hierarchical.hpp"
#include "packaging/partition.hpp"
#include "routing/routing.hpp"
#include "routing/sharded_sim.hpp"
#include "sim/degradation.hpp"
#include "sim/recovery.hpp"
#include "sim/sweep.hpp"
#include "layout/hypercube_layout.hpp"
#include "layout/product_layout.hpp"
#include "topology/basic_graphs.hpp"
#include "topology/benes.hpp"
#include "topology/butterfly.hpp"
#include "topology/complete_graph.hpp"
#include "topology/generalized_hypercube.hpp"
#include "topology/hypercube.hpp"
#include "topology/isomorphism.hpp"
#include "topology/swap_butterfly.hpp"
#include "topology/swap_network.hpp"

namespace bfly {

/// Library version.
const char* version();

}  // namespace bfly
