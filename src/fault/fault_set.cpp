#include "fault/fault_set.hpp"

#include "util/prng.hpp"

namespace bfly {

FaultSet::FaultSet(int n) : n_(n), rows_(0) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "fault set dimension must be in [1, 30]");
  rows_ = pow2(n_);
  dead_links_.assign(num_links(), 0);
  dead_nodes_.assign(num_nodes(), 0);
}

void FaultSet::kill_link(u64 link) {
  if (dead_links_[link] == 0) {
    dead_links_[link] = 1;
    ++dead_link_count_;
  }
}

void FaultSet::fail_link(u64 row, int stage, bool cross) {
  BFLY_REQUIRE(row < rows_ && stage >= 0 && stage < n_, "link out of range");
  kill_link(link_id(row, stage, cross));
}

void FaultSet::fail_node(u64 row, int stage) {
  BFLY_REQUIRE(row < rows_ && stage >= 0 && stage <= n_, "node out of range");
  const u64 id = static_cast<u64>(stage) * rows_ + row;
  if (dead_nodes_[id] == 0) {
    dead_nodes_[id] = 1;
    ++dead_node_count_;
  }
  // Outgoing links (toward stage + 1).
  if (stage < n_) {
    kill_link(link_id(row, stage, false));
    kill_link(link_id(row, stage, true));
  }
  // Incoming links (from stage - 1): the straight link from the same row and
  // the cross link from the row differing in bit stage-1.
  if (stage > 0) {
    kill_link(link_id(row, stage - 1, false));
    kill_link(link_id(row ^ pow2(stage - 1), stage - 1, true));
  }
}

FaultSet FaultSet::random_links(int n, double rate, u64 seed) {
  BFLY_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault rate is a probability");
  FaultSet f(n);
  Xoshiro256 rng(seed);
  for (u64 link = 0; link < f.num_links(); ++link) {
    if (rng.uniform() < rate) f.kill_link(link);
  }
  return f;
}

FaultSet FaultSet::random_nodes(int n, double rate, u64 seed) {
  BFLY_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault rate is a probability");
  FaultSet f(n);
  Xoshiro256 rng(seed);
  for (int s = 0; s <= n; ++s) {
    for (u64 row = 0; row < f.rows(); ++row) {
      if (rng.uniform() < rate) f.fail_node(row, s);
    }
  }
  return f;
}

void FaultSet::fail_chip(const SwapButterfly& sb, int rows_log2, u64 chip) {
  BFLY_REQUIRE(sb.dimension() == n_, "swap-butterfly dimension mismatch");
  BFLY_REQUIRE(rows_log2 >= 0 && rows_log2 <= n_, "bad rows_log2");
  const u64 chips = rows_ >> rows_log2;
  BFLY_REQUIRE(chip < chips, "chip index out of range");
  const u64 first_row = chip << rows_log2;
  const u64 last_row = first_row + pow2(rows_log2);
  for (int s = 0; s <= n_; ++s) {
    for (u64 v = first_row; v < last_row; ++v) {
      fail_node(sb.rho(s, v), s);
    }
  }
}

}  // namespace bfly
