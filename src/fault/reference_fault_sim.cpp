#include "fault/reference_fault_sim.hpp"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "util/prng.hpp"

namespace bfly {

namespace {

inline u64 dense_link(u64 rows, u64 row, int stage, bool cross) {
  return (static_cast<u64>(stage) * rows + row) * 2 + (cross ? 1 : 0);
}

}  // namespace

FaultSaturationPoint simulate_saturation_faulty_reference(
    int n, double offered_load, u64 cycles, u64 seed, const FaultSet& faults,
    const FaultRoutingOptions& options, u64 warmup_cycles, u64 queue_capacity) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(offered_load >= 0.0 && offered_load <= 1.0, "offered load is a probability");
  BFLY_REQUIRE(faults.dimension() == n, "fault set dimension mismatch");
  const u64 rows = pow2(n);

  struct Packet {
    u64 dst;
    u64 injected_at;
    u32 misroutes;
    u32 wraps;
  };
  std::vector<std::deque<Packet>> queues(static_cast<std::size_t>(n) * rows * 2);
  Xoshiro256 rng(seed);

  FaultSaturationPoint out;
  SaturationPoint& result = out.point;
  FaultTally& tally = out.tally;
  result.offered_load = offered_load;
  u64 in_flight = 0;
  double total_latency = 0.0;

  const auto count_drop = [&](DropReason reason, bool measured) {
    if (measured) ++tally.dropped[drop_index(reason)];
  };

  // Picks the stage-`stage` output link for a packet at `row` and enqueues it
  // there, charging a misroute when the packet must deflect.  Returns false
  // (after counting the drop) when the packet dies here instead.
  const auto enqueue = [&](u64 row, int stage, Packet pkt, bool measured) -> bool {
    const bool want = ((row ^ pkt.dst) >> stage) & 1;
    bool cross = want;
    if (!faults.link_alive(row, stage, want)) {
      if (!faults.link_alive(row, stage, !want)) {
        count_drop(DropReason::kNoAliveLink, measured);
        return false;
      }
      if (pkt.misroutes >= static_cast<u32>(std::max(options.misroute_budget, 0))) {
        count_drop(DropReason::kBudgetExhausted, measured);
        return false;
      }
      ++pkt.misroutes;
      if (measured) ++tally.misroutes;
      cross = !want;
    }
    auto& q = queues[dense_link(rows, row, stage, cross)];
    if (queue_capacity > 0 && q.size() >= queue_capacity) {
      count_drop(DropReason::kQueueFull, measured);
      return false;
    }
    q.push_back(pkt);
    return true;
  };

  std::vector<std::pair<u64, Packet>> wrapped;  // (row, packet) awaiting re-entry
  for (u64 cycle = 0; cycle < cycles; ++cycle) {
    const bool measured = cycle >= warmup_cycles;
    // Forward one packet per link, highest stage first so a packet moves at
    // most one hop per cycle; wrapped packets re-enter at stage 0 only after
    // the sweep, for the same reason.
    wrapped.clear();
    for (int s = n - 1; s >= 0; --s) {
      for (u64 row = 0; row < rows; ++row) {
        for (int c = 0; c < 2; ++c) {
          auto& q = queues[dense_link(rows, row, s, c == 1)];
          if (q.empty()) continue;
          const Packet pkt = q.front();
          q.pop_front();
          const u64 next_row = c == 1 ? (row ^ pow2(s)) : row;
          if (s + 1 == n) {
            if (next_row == pkt.dst) {
              --in_flight;
              if (measured) {
                ++result.delivered;
                ++tally.delivered;
                total_latency += static_cast<double>(cycle + 1 - pkt.injected_at);
              }
            } else if (pkt.wraps < static_cast<u32>(std::max(options.wrap_budget, 0)) &&
                       faults.node_alive(next_row, 0)) {
              Packet w = pkt;
              ++w.wraps;
              if (measured) ++tally.wraps;
              wrapped.emplace_back(next_row, w);
            } else {
              --in_flight;
              count_drop(pkt.wraps < static_cast<u32>(std::max(options.wrap_budget, 0))
                             ? DropReason::kNoAliveLink
                             : DropReason::kBudgetExhausted,
                         measured);
            }
          } else if (!enqueue(next_row, s + 1, pkt, measured)) {
            --in_flight;
          }
        }
      }
    }
    for (const auto& [row, pkt] : wrapped) {
      if (!enqueue(row, 0, pkt, measured)) --in_flight;
    }
    // Inject.
    u64 cycle_injections = 0;
    for (u64 row = 0; row < rows; ++row) {
      if (rng.uniform() < offered_load) {
        const Packet pkt{rng.below(rows), cycle, 0, 0};
        if (!faults.node_alive(row, 0) || !faults.node_alive(pkt.dst, n)) {
          count_drop(DropReason::kEndpointDead, measured);
          continue;
        }
        if (enqueue(row, 0, pkt, measured)) {
          ++cycle_injections;
        }
      }
    }
    in_flight += cycle_injections;
  }

  for (const auto& q : queues) {
    result.max_queue = std::max(result.max_queue, static_cast<u64>(q.size()));
  }
  const double measured_cycles = static_cast<double>(cycles - warmup_cycles);
  result.throughput =
      static_cast<double>(result.delivered) / (measured_cycles * static_cast<double>(rows));
  result.per_node_injection = result.throughput / static_cast<double>(n + 1);
  result.avg_latency =
      result.delivered > 0 ? total_latency / static_cast<double>(result.delivered) : 0.0;
  result.dropped_queue_full = tally.dropped[drop_index(DropReason::kQueueFull)];
  return out;
}

}  // namespace bfly
