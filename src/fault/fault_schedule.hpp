// Live faults: a deterministic timeline of mid-run fail/repair events, and
// the mutable liveness overlay the saturation engines consult while one is
// attached.
//
// A FaultSchedule extends the static FaultSet model (fault_set.hpp) with
// *time*: each event names a cycle, an action (fail or repair), and a target
// (one link, one node, or one whole chip of the Section 5 packaging plan).
// Schedules are built by explicit surgery (fail_link_at, repair_node_at,
// fail_chip_at, ...) or by seeded MTBF/MTTR-style random generation
// (random_links — one PRNG pass in link-index order, so an
// (n, mtbf, mttr, horizon, seed) tuple always names the same schedule).
// Events are kept sorted by cycle (stable within a cycle), the whole object
// round-trips through JSON bitwise, and content_hash() folds every
// outcome-relevant field into one u64 so the exec checkpoint can key
// scheduled sweep points by content.
//
// A LiveFaultState is the engine-facing overlay: it starts from a base
// FaultSet and applies the schedule's events at cycle boundaries
// (advance_to, called once per cycle in ascending order).  Liveness is
// *counted* — each link/node carries the number of active failure causes, so
// overlapping faults (an explicit link fault under a node fault under a chip
// fault) repair in any order without resurrecting a link that another cause
// still holds dead.  The router keeps reading liveness through the same
// one-byte link_alive_index fast path as the static FaultSet.
//
// Spare-chip failover: the Section 5 packaging provisions spare chips, and
// the FailoverPolicy models wiring one in.  When a chip-fail event fires and
// a spare remains, the spare is consumed and — after detection_latency
// cycles — the failed chip's rows are remapped through it: every node the
// chip fault killed is repaired (its failure cause removed) in one cycle.  A
// chip that fails with no spares left stays dead until an explicit
// repair-chip event.
//
// Determinism contract (tests/test_fault_schedule.cpp): attaching an empty
// schedule leaves the faulty engine bitwise identical to the static path; a
// schedule whose events all sit at cycle 0 is bitwise identical to the
// equivalent static FaultSet; and scheduled sweep points kill/resume
// bit-identically at every prefix across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "obs/json.hpp"
#include "packaging/hierarchical.hpp"
#include "topology/swap_butterfly.hpp"

namespace bfly {

enum class FaultAction : int {
  kFail = 0,
  kRepair = 1,
};

enum class FaultTarget : int {
  kLink = 0,
  kNode = 1,
  kChip = 2,  ///< one chip of the attached packaging plan's row-block packing
};

/// What happens to packets already queued on a link the moment it dies.
enum class LinkDeathPolicy : int {
  /// Drain the dying link's FIFO: every resident packet is dropped with
  /// DropReason::kKilledByFault at the fault cycle.
  kKillInFlight = 0,
  /// Leave them: a packet already on the wire finishes its traversal and the
  /// router deflects it at the next node, where liveness is consulted again.
  kDeflect = 1,
};

/// One timeline entry.  `row`/`stage`/`cross` address link and node targets;
/// `chip` addresses chip targets (the other fields are zero there).
struct FaultEvent {
  u64 cycle = 0;
  FaultAction action = FaultAction::kFail;
  FaultTarget target = FaultTarget::kLink;
  u64 row = 0;
  int stage = 0;
  bool cross = false;
  u64 chip = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Spare-chip failover parameters (Section 5 provisioning).
struct FailoverPolicy {
  u64 spare_chips = 0;        ///< spares available to absorb chip failures
  u64 detection_latency = 0;  ///< cycles from chip death to the spare remap

  friend bool operator==(const FailoverPolicy&, const FailoverPolicy&) = default;
};

class FaultSchedule {
 public:
  /// An empty schedule over B_n.  Requires 1 <= n <= 30.
  explicit FaultSchedule(int n);

  int dimension() const { return n_; }
  u64 rows() const { return rows_; }
  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  /// Cycle of the last event (0 when empty).
  u64 last_event_cycle() const { return events_.empty() ? 0 : events_.back().cycle; }

  // --- explicit surgery ------------------------------------------------------
  // Events insert in cycle order (stable within a cycle: later insertions at
  // the same cycle apply later).  Range checks match FaultSet's.

  void fail_link_at(u64 cycle, u64 row, int stage, bool cross);
  void repair_link_at(u64 cycle, u64 row, int stage, bool cross);
  void fail_node_at(u64 cycle, u64 row, int stage);
  void repair_node_at(u64 cycle, u64 row, int stage);

  /// Chip events address one chip of the row-block packing; a plan must be
  /// attached first.  The low-level overload takes the ISN parameters
  /// directly (what the JSON codec round-trips).
  void attach_plan(const HierarchicalPlan& plan);
  void attach_plan(std::vector<int> k, int rows_log2);
  bool has_plan() const { return !plan_k_.empty(); }
  const std::vector<int>& plan_k() const { return plan_k_; }
  int plan_rows_log2() const { return plan_rows_log2_; }
  u64 num_chips() const;

  void fail_chip_at(u64 cycle, u64 chip);
  void repair_chip_at(u64 cycle, u64 chip);

  // --- policies --------------------------------------------------------------

  void set_failover(FailoverPolicy policy) { failover_ = policy; }
  const FailoverPolicy& failover() const { return failover_; }
  void set_link_death_policy(LinkDeathPolicy policy) { link_death_ = policy; }
  LinkDeathPolicy link_death_policy() const { return link_death_; }

  // --- seeded random generation ---------------------------------------------

  /// MTBF/MTTR-style link schedule over [0, horizon): every link starts
  /// alive and flips state by per-cycle Bernoulli trials — an alive link
  /// fails with probability 1/mtbf each cycle, a dead one repairs with
  /// probability 1/mttr (geometric up/down times with those means).  One
  /// PRNG pass in link-index order, integer arithmetic only, so the
  /// (n, mtbf, mttr, horizon, seed) tuple is bitwise deterministic on every
  /// platform.  Requires mtbf >= 2 and mttr >= 1 (cycles).
  static FaultSchedule random_links(int n, u64 mtbf, u64 mttr, u64 horizon, u64 seed);

  // --- persistence -----------------------------------------------------------

  /// Stable JSON encoding (events in timeline order; the document a
  /// $BFLY_SCHEDULE_FILE artifact carries).
  json::Value to_json() const;
  /// Strictly validating decoder; throws InvalidArgument on any shape, code,
  /// or range violation.  Round-trips bitwise: from_json(to_json(s)) == s.
  static FaultSchedule from_json(const json::Value& v);

  /// FNV-1a content hash over every outcome-relevant field — dimension,
  /// policies, plan parameters, and the full event timeline.  Two schedules
  /// hash equal iff an engine run would be indistinguishable; this is what
  /// joins exec::sweep_point_key for scheduled points.
  u64 content_hash() const;

  friend bool operator==(const FaultSchedule& a, const FaultSchedule& b);

 private:
  void insert_event(FaultEvent event);
  void require_link(u64 row, int stage) const;
  void require_node(u64 row, int stage) const;
  void require_chip(u64 chip) const;

  int n_;
  u64 rows_;
  std::vector<FaultEvent> events_;  ///< sorted by cycle, stable
  FailoverPolicy failover_{};
  LinkDeathPolicy link_death_ = LinkDeathPolicy::kKillInFlight;
  std::vector<int> plan_k_;  ///< empty = no plan attached
  int plan_rows_log2_ = 0;
};

/// Counters a live run accumulates while applying its schedule.
struct LiveFaultStats {
  u64 fail_events = 0;    ///< fail events applied (links + nodes + chips)
  u64 repair_events = 0;  ///< explicit repair events applied
  u64 failovers = 0;      ///< spare-chip remaps completed
  u64 spares_used = 0;    ///< spares consumed (scheduled at chip death)
  u64 links_killed = 0;   ///< alive -> dead link transitions
  u64 links_revived = 0;  ///< dead -> alive link transitions

  friend bool operator==(const LiveFaultStats&, const LiveFaultStats&) = default;
};

/// The engine-facing mutable overlay: base FaultSet liveness plus the
/// schedule's events applied up to the current cycle, with per-cause
/// counting so overlapping faults repair soundly.  Single-threaded, like the
/// engines that own it.
class LiveFaultState {
 public:
  /// Requires base.dimension() == schedule.dimension(); the schedule must
  /// outlive this object.
  LiveFaultState(const FaultSet& base, const FaultSchedule& schedule);

  int dimension() const { return n_; }
  u64 rows() const { return rows_; }

  // Same read interface (and the same one-byte fast path) as FaultSet.
  bool link_alive_index(u64 link) const { return dead_links_[link] == 0; }
  bool link_alive(u64 row, int stage, bool cross) const {
    return dead_links_[(static_cast<u64>(stage) * rows_ + row) * 2 + (cross ? 1 : 0)] == 0;
  }
  bool node_alive(u64 row, int stage) const {
    return dead_nodes_[static_cast<u64>(stage) * rows_ + row] == 0;
  }
  u64 num_dead_links() const { return dead_link_count_; }
  u64 num_dead_nodes() const { return dead_node_count_; }

  /// Applies every event scheduled at exactly `cycle`, then any spare-chip
  /// failover whose detection latency elapses at `cycle`.  Call once per
  /// cycle in ascending order (the engines call it at the top of each cycle,
  /// before routing).  When `newly_dead_links` is non-null it receives the
  /// dense indices of links that transitioned alive -> dead this cycle and
  /// are still dead afterwards, in ascending order — the kill-in-flight
  /// drain set.
  void advance_to(u64 cycle, std::vector<u64>* newly_dead_links);

  const LiveFaultStats& stats() const { return stats_; }

 private:
  struct PendingFailover {
    u64 ready_cycle = 0;
    u64 chip = 0;
  };

  void apply_link(u64 link, bool fail);
  void apply_node(u64 row, int stage, bool fail);
  void apply_chip(u64 chip, bool fail);
  void apply_event(const FaultEvent& event, u64 cycle);

  int n_;
  u64 rows_;
  const FaultSchedule* schedule_;
  std::vector<std::uint16_t> link_causes_;  ///< active failure causes per link
  std::vector<std::uint16_t> node_causes_;
  std::vector<std::uint8_t> dead_links_;  ///< derived byte map (causes > 0)
  std::vector<std::uint8_t> dead_nodes_;
  u64 dead_link_count_ = 0;
  u64 dead_node_count_ = 0;
  std::size_t next_event_ = 0;  ///< cursor into schedule_->events()
  std::vector<PendingFailover> pending_;  ///< FIFO, ready cycles non-decreasing
  std::size_t pending_head_ = 0;
  u64 spares_left_ = 0;
  std::vector<SwapButterfly> sb_;  ///< 0 or 1 elements (lazy plan instance)
  std::vector<u64> touched_;      ///< links touched this advance (for the drain set)
  LiveFaultStats stats_;
};

}  // namespace bfly
