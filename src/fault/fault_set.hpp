// Fault model for butterfly fabrics: which links and nodes of B_n are dead.
//
// The paper's Theorem 2.1 argument and the Section 5 packaging example assume
// a pristine fabric.  A production interconnect must keep serving traffic when
// links, switches, or whole chips fail, so this subsystem makes failure a
// first-class, *deterministic* object: a FaultSet is a dense link/node
// liveness map over B_n, built either by explicit surgery (fail_link,
// fail_node), by seeded random injection (random_links, random_nodes — one
// single-threaded PRNG pass, so a (n, rate, seed) triple always names the
// same fault set), or chip-granularly through the Section 5 packaging plan:
// fail_chip() kills every butterfly node hosted on one physical chip of the
// row-block packing, mapped through the swap-butterfly isomorphism rho_s.
//
// Node faults induce link faults: a dead switch can neither accept nor emit
// packets, so all of its incident links are marked dead too.  Hot routing
// loops therefore only ever test link liveness (one byte load per hop);
// node liveness only matters at injection and delivery endpoints.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/butterfly.hpp"
#include "topology/swap_butterfly.hpp"
#include "util/bits.hpp"

namespace bfly {

class FaultSet {
 public:
  /// An all-alive fault set over B_n.  Requires 1 <= n <= 30.
  explicit FaultSet(int n);

  int dimension() const { return n_; }
  u64 rows() const { return rows_; }
  u64 num_links() const { return static_cast<u64>(n_) * rows_ * 2; }
  u64 num_nodes() const { return static_cast<u64>(n_ + 1) * rows_; }

  bool empty() const { return dead_link_count_ == 0 && dead_node_count_ == 0; }
  u64 num_dead_links() const { return dead_link_count_; }  ///< explicit + induced
  u64 num_dead_nodes() const { return dead_node_count_; }

  /// Kills the forward link (row, stage) -> stage+1 (straight or cross).
  void fail_link(u64 row, int stage, bool cross);
  /// Kills the node (row, stage) and every link incident to it.
  void fail_node(u64 row, int stage);

  bool link_alive(u64 row, int stage, bool cross) const {
    BFLY_REQUIRE(row < rows_ && stage >= 0 && stage < n_, "link out of range");
    return dead_links_[link_id(row, stage, cross)] == 0;
  }
  bool node_alive(u64 row, int stage) const {
    BFLY_REQUIRE(row < rows_ && stage >= 0 && stage <= n_, "node out of range");
    return dead_nodes_[static_cast<u64>(stage) * rows_ + row] == 0;
  }
  /// Unchecked liveness by dense link index (see routing's link_index()) —
  /// the one-byte-load fast path for per-hop tests in routing loops.
  bool link_alive_index(u64 link) const { return dead_links_[link] == 0; }

  /// Each of the n * 2^n * 2 links fails independently with probability
  /// `rate` (one PRNG pass in link-index order: bitwise deterministic).
  static FaultSet random_links(int n, double rate, u64 seed);
  /// Each of the (n+1) * 2^n nodes fails independently with probability
  /// `rate`; incident links are induced dead.
  static FaultSet random_nodes(int n, double rate, u64 seed);

  /// Chip-granular fault through the packaging plan: the row-block packing
  /// places swap-butterfly rows [chip * 2^rows_log2, (chip+1) * 2^rows_log2)
  /// (all stages) on one chip; this kills the *butterfly* image of every one
  /// of those nodes under the isomorphism (v, s) -> (rho_s(v), s).  Requires
  /// sb.dimension() == dimension().
  void fail_chip(const SwapButterfly& sb, int rows_log2, u64 chip);

 private:
  u64 link_id(u64 row, int stage, bool cross) const {
    return (static_cast<u64>(stage) * rows_ + row) * 2 + (cross ? 1 : 0);
  }
  void kill_link(u64 link);

  int n_;
  u64 rows_;
  std::vector<std::uint8_t> dead_links_;  ///< indexed by dense link index
  std::vector<std::uint8_t> dead_nodes_;  ///< indexed by stage * rows + row
  u64 dead_link_count_ = 0;
  u64 dead_node_count_ = 0;
};

}  // namespace bfly
