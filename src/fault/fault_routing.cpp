#include "fault/fault_routing.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "routing/packet_arena.hpp"
#include "routing/telemetry_probe.hpp"
#include "util/parallel.hpp"
#include "util/prng.hpp"

namespace bfly {

namespace {

/// Dense forward-link index without a Butterfly instance (same layout as
/// routing's link_index()).
inline u64 dense_link(u64 rows, u64 row, int stage, bool cross) {
  return (static_cast<u64>(stage) * rows + row) * 2 + (cross ? 1 : 0);
}

/// The single-packet walk shared by route_packet() and the census.  on_link
/// is called with the dense index of every traversed link.
template <typename OnLink>
RouteResult route_one(int n, u64 rows, const FaultSet& faults, const FaultRoutingOptions& options,
                      u64 src, u64 dst, OnLink&& on_link) {
  RouteResult res;
  if (!faults.node_alive(src, 0) || !faults.node_alive(dst, n)) {
    res.reason = DropReason::kEndpointDead;
    return res;
  }
  u64 row = src;
  int stage = 0;
  for (;;) {
    if (stage == n) {
      if (row == dst) {
        res.delivered = true;
        return res;
      }
      if (res.wraps >= options.wrap_budget) {
        res.reason = DropReason::kBudgetExhausted;
        return res;
      }
      if (!faults.node_alive(row, 0)) {
        res.reason = DropReason::kNoAliveLink;
        return res;
      }
      ++res.wraps;
      stage = 0;
      continue;
    }
    const bool want = ((row ^ dst) >> stage) & 1;
    bool cross = want;
    if (!faults.link_alive_index(dense_link(rows, row, stage, want))) {
      if (!faults.link_alive_index(dense_link(rows, row, stage, !want))) {
        res.reason = DropReason::kNoAliveLink;
        return res;
      }
      if (res.misroutes >= options.misroute_budget) {
        res.reason = DropReason::kBudgetExhausted;
        return res;
      }
      ++res.misroutes;
      cross = !want;
    }
    on_link(dense_link(rows, row, stage, cross));
    ++res.hops;
    if (cross) row ^= pow2(stage);
    ++stage;
  }
}

void export_tally_metrics(const FaultTally& tally) {
  obs::add(obs::get_counter("fault.delivered"), tally.delivered);
  obs::add(obs::get_counter("fault.dropped.endpoint"),
           tally.dropped[drop_index(DropReason::kEndpointDead)]);
  obs::add(obs::get_counter("fault.dropped.no_alive_link"),
           tally.dropped[drop_index(DropReason::kNoAliveLink)]);
  obs::add(obs::get_counter("fault.dropped.budget_exhausted"),
           tally.dropped[drop_index(DropReason::kBudgetExhausted)]);
  obs::add(obs::get_counter("fault.dropped.queue_full"),
           tally.dropped[drop_index(DropReason::kQueueFull)]);
  obs::add(obs::get_counter("fault.dropped.killed_by_fault"),
           tally.dropped[drop_index(DropReason::kKilledByFault)]);
  obs::add(obs::get_counter("fault.misroutes"), tally.misroutes);
  obs::add(obs::get_counter("fault.wraps"), tally.wraps);
}

}  // namespace

RouteResult route_packet(int n, const FaultSet& faults, const FaultRoutingOptions& options,
                         u64 src, u64 dst, std::vector<u64>* path_links) {
  BFLY_REQUIRE(faults.dimension() == n, "fault set dimension mismatch");
  const u64 rows = pow2(n);
  BFLY_REQUIRE(src < rows && dst < rows, "row out of range");
  return route_one(n, rows, faults, options, src, dst, [&](u64 link) {
    if (path_links != nullptr) path_links->push_back(link);
  });
}

FaultLoadCensus measure_link_loads_faulty(int n, u64 packets, u64 seed, const FaultSet& faults,
                                          const FaultRoutingOptions& options,
                                          std::size_t threads, bool keep_link_loads) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(faults.dimension() == n, "fault set dimension mismatch");
  BFLY_TRACE_SCOPE("fault.measure_link_loads");
  const u64 rows = pow2(n);
  const u64 links = static_cast<u64>(n) * rows * 2;
  if (threads == 0) threads = default_thread_count();
  obs::Counter* packet_counter = obs::get_counter("fault.census.packets");

  // Identical fixed-chunk seeding to measure_link_loads(): packet streams are
  // a function of (seed, chunk index) alone, so per-link sums and drop
  // tallies are bitwise deterministic for any thread count — and, with an
  // empty FaultSet, identical to the pristine census (every packet takes its
  // preferred link for exactly n hops).
  constexpr u64 kChunkPackets = u64{1} << 16;
  const u64 num_chunks = (packets + kChunkPackets - 1) / kChunkPackets;
  threads = std::min<std::size_t>(threads, std::max<u64>(num_chunks, 1));

  std::vector<std::vector<u64>> partial(threads, std::vector<u64>(links, 0));
  std::vector<FaultTally> partial_tally(threads);
  parallel_for_chunked(
      0, num_chunks, threads, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
        BFLY_TRACE_SCOPE("fault.census.worker");
        std::vector<u64>& loads = partial[tid];
        FaultTally& tally = partial_tally[tid];
        u64 routed = 0;
        for (std::size_t chunk = lo; chunk < hi; ++chunk) {
          Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ULL * (chunk + 1)));
          const u64 begin = static_cast<u64>(chunk) * kChunkPackets;
          const u64 end = std::min(packets, begin + kChunkPackets);
          for (u64 p = begin; p < end; ++p) {
            const u64 src = rng.below(rows);
            const u64 dst = rng.below(rows);
            const RouteResult res = route_one(n, rows, faults, options, src, dst,
                                              [&](u64 link) { ++loads[link]; });
            if (res.delivered) {
              ++tally.delivered;
            } else {
              ++tally.dropped[drop_index(res.reason)];
            }
            tally.misroutes += static_cast<u64>(res.misroutes);
            tally.wraps += static_cast<u64>(res.wraps);
          }
          routed += end - begin;
        }
        obs::add(packet_counter, routed);
      });

  FaultLoadCensus out;
  out.census.packets = packets;
  if (keep_link_loads) out.census.link_loads.resize(links, 0);
  u64 total = 0;
  {
    BFLY_TRACE_SCOPE("fault.census.merge");
    // Same pool-backed per-range reduction as the pristine census: u64
    // max/total partials combined in range order keep the merged statistics
    // bitwise deterministic for any pool size.
    std::vector<u64> range_max(threads, 0);
    std::vector<u64> range_total(threads, 0);
    parallel_for_chunked(
        0, static_cast<std::size_t>(links), threads,
        [&](std::size_t lo, std::size_t hi, std::size_t tid) {
          u64 max_load = 0;
          u64 range_sum = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            u64 load = 0;
            for (std::size_t t = 0; t < threads; ++t) load += partial[t][i];
            if (keep_link_loads) out.census.link_loads[i] = load;
            max_load = std::max(max_load, load);
            range_sum += load;
          }
          range_max[tid] = max_load;
          range_total[tid] = range_sum;
        });
    for (std::size_t t = 0; t < threads; ++t) {
      out.census.max_link_load = std::max(out.census.max_link_load, range_max[t]);
      total += range_total[t];
    }
    for (const FaultTally& t : partial_tally) {
      out.tally.delivered += t.delivered;
      for (std::size_t r = 0; r < kNumDropReasons; ++r) out.tally.dropped[r] += t.dropped[r];
      out.tally.misroutes += t.misroutes;
      out.tally.wraps += t.wraps;
    }
  }
  out.census.avg_link_load = static_cast<double>(total) / static_cast<double>(links);
  out.census.imbalance =
      out.census.avg_link_load > 0
          ? static_cast<double>(out.census.max_link_load) / out.census.avg_link_load
          : 0.0;
  out.census.avg_distance =
      packets > 0 ? static_cast<double>(total) / static_cast<double>(packets) : 0.0;
  out.delivered_fraction =
      packets > 0 ? static_cast<double>(out.tally.delivered) / static_cast<double>(packets)
                  : 0.0;
  export_tally_metrics(out.tally);
  obs::set(obs::get_gauge("fault.census.delivered_fraction"), out.delivered_fraction);
  obs::set(obs::get_gauge("fault.census.max_link_load"),
           static_cast<double>(out.census.max_link_load));
  return out;
}

namespace {

/// The queued-simulator cycle loop, generic over the liveness provider:
/// `Liveness` is FaultSet (static faults, `live` == nullptr) or
/// LiveFaultState (a schedule is attached; `live` aliases `faults` so the
/// loop can advance the overlay at cycle boundaries).  One body, two
/// instantiations — the liveness reads stay the same one-byte loads either
/// way, which is what makes the empty-schedule bitwise-identity contract
/// hold by construction.
template <typename Liveness>
FaultSaturationPoint run_saturation_faulty(int n, double offered_load, u64 cycles, u64 seed,
                                           const Liveness& faults,
                                           const FaultRoutingOptions& options,
                                           u64 warmup_cycles, u64 queue_capacity,
                                           const CancelToken* cancel,
                                           obs::TimeSeries* timeseries,
                                           obs::OccupancyFrames* frames,
                                           obs::FlightRecorder* flight, LiveFaultState* live,
                                           LinkDeathPolicy death_policy) {
  BFLY_TRACE_SCOPE("fault.simulate_saturation");
  const u64 rows = pow2(n);

  obs::Counter* injected_ctr = obs::get_counter("fault.injected");
  obs::LocalHistogram latency_hist(obs::get_histogram(
      "fault.latency_cycles", obs::Histogram::exponential_bounds(1, 2, 16)));
  obs::LocalHistogram depth_hist(obs::get_histogram(
      "fault.queue_depth", obs::Histogram::exponential_bounds(1, 2, 24)));

  // Per-link FIFOs in the flat slot arena (budget lanes enabled), same
  // push_back/pop_front semantics as the seed's per-link deques — the
  // *_reference oracle asserts bit-identical results.
  using Packet = PacketArena::Packet;
  const u64 links = static_cast<u64>(n) * rows * 2;
  // Per-packet flight tracing rides the arena's optional flight lane, grown
  // only when a recorder is attached.
  detail::FlightProbe fprobe(flight);
  PacketArena arena(links, /*with_budgets=*/true, /*with_flight=*/fprobe.enabled());
  Xoshiro256 rng(seed);
  // Same cycle-resolved telemetry hooks (and the same cost contract) as the
  // pristine engine; see routing/telemetry_probe.hpp.
  detail::SaturationProbe probe(timeseries, frames, n, rows);

  FaultSaturationPoint out;
  SaturationPoint& result = out.point;
  FaultTally& tally = out.tally;
  result.offered_load = offered_load;
  u64 measured_injections = 0;
  u64 in_flight = 0;
  double total_latency = 0.0;

  const auto count_drop = [&](DropReason reason, bool measured, u64 flight_handle,
                              u64 cycle) {
    if (measured) ++tally.dropped[drop_index(reason)];
    // The telemetry drop channel is cumulative over *all* cycles (the tally
    // stays post-warmup-only), so warmup drops are visible in the series.
    probe.on_dropped();
    fprobe.on_dropped(flight_handle, cycle, static_cast<u64>(drop_index(reason)));
  };

  // Picks the stage-`stage` output link for a packet at `row` and enqueues it
  // there, charging a misroute when the packet must deflect.  Returns false
  // (after counting the drop) when the packet dies here instead.  `entry` is
  // the flight-trace event for how the packet reached this node (inject,
  // advance, wrap); a deflection overrides it with kMisroute.
  const auto enqueue = [&](u64 row, int stage, Packet pkt, bool measured, u64 cycle,
                           obs::FlightEvent entry) -> bool {
    const bool want = ((row ^ pkt.dst) >> stage) & 1;
    bool cross = want;
    if (!faults.link_alive(row, stage, want)) {
      if (!faults.link_alive(row, stage, !want)) {
        count_drop(DropReason::kNoAliveLink, measured, pkt.flight, cycle);
        return false;
      }
      if (pkt.misroutes >= static_cast<u32>(std::max(options.misroute_budget, 0))) {
        count_drop(DropReason::kBudgetExhausted, measured, pkt.flight, cycle);
        return false;
      }
      ++pkt.misroutes;
      if (measured) ++tally.misroutes;
      cross = !want;
      entry = obs::FlightEvent::kMisroute;
    }
    const u64 link = dense_link(rows, row, stage, cross);
    if (queue_capacity > 0 && arena.size(link) >= queue_capacity) {
      count_drop(DropReason::kQueueFull, measured, pkt.flight, cycle);
      return false;
    }
    fprobe.on_push(pkt.flight, cycle, link, entry);
    arena.push(link, pkt);
    return true;
  };

  std::vector<std::pair<u64, Packet>> wrapped;  // (row, packet) awaiting re-entry
  std::vector<u64> newly_dead;  // links killed this cycle (live schedules only)
  u64 simulated = cycles;
  for (u64 cycle = 0; cycle < cycles; ++cycle) {
    if (cycle % kCancelPollCycles == 0 && CancelToken::cancelled(cancel)) {
      simulated = cycle;
      break;
    }
    const bool measured = cycle >= warmup_cycles;
    if (live != nullptr) {
      // Apply this cycle's scheduled fail/repair events (and any spare-chip
      // failover whose detection latency elapsed) before anything routes,
      // so an event at cycle c already governs cycle c's hops.
      live->advance_to(cycle,
                       death_policy == LinkDeathPolicy::kKillInFlight ? &newly_dead : nullptr);
      if (death_policy == LinkDeathPolicy::kKillInFlight) {
        for (const u64 link : newly_dead) {
          // Drain the dying link's FIFO: those packets are on the wire the
          // moment it fails.  Under kDeflect they stay queued instead and
          // the router re-tests liveness at their next hop.
          while (arena.size(link) > 0) {
            const Packet dead = arena.pop(link);
            --in_flight;
            count_drop(DropReason::kKilledByFault, measured, dead.flight, cycle);
          }
        }
      }
    }
    // Forward one packet per link, highest stage first so a packet moves at
    // most one hop per cycle; wrapped packets re-enter at stage 0 only after
    // the sweep, for the same reason.
    wrapped.clear();
    for (int s = n - 1; s >= 0; --s) {
      // For a fixed stage the dense link ids are contiguous, so the
      // occupancy bitmap walks non-empty links in exactly the (row, c)
      // order of the seed's full scan — and skips the empty ones for free.
      const u64 stage_base = static_cast<u64>(s) * rows * 2;
      arena.for_each_occupied(stage_base, stage_base + rows * 2, [&](u64 link) {
        const u64 row = (link - stage_base) >> 1;
        const bool cross = (link & 1) != 0;
        const u64 next_row = cross ? (row ^ pow2(s)) : row;
        if (s + 1 < n) {
          // Intermediate hop on an alive wanted link leaves the payload
          // (dst, injected_at, budgets) unchanged: relink the slot instead of
          // popping and re-pushing.  Misroutes fall through to the seed's
          // full enqueue path below.
          const u64 dst = arena.front_dst(link);
          const bool want = ((next_row ^ dst) >> (s + 1)) & 1;
          if (faults.link_alive(next_row, s + 1, want)) {
            const u64 next_link = dense_link(rows, next_row, s + 1, want);
            if (queue_capacity > 0 && arena.size(next_link) >= queue_capacity) {
              const Packet dead = arena.pop(link);
              count_drop(DropReason::kQueueFull, measured, dead.flight, cycle);
              --in_flight;
            } else {
              fprobe.on_advance(arena, link, cycle, next_link);
              arena.move_front(link, next_link);
            }
            return;
          }
        }
        const Packet pkt = arena.pop(link);
        if (s + 1 == n) {
          if (next_row == pkt.dst) {
            --in_flight;
            if (measured) {
              ++result.delivered;
              ++tally.delivered;
              const double latency = static_cast<double>(cycle + 1 - pkt.injected_at);
              total_latency += latency;
              latency_hist.observe(latency);
            }
            probe.on_delivered(cycle, pkt.injected_at);
            fprobe.on_delivered(pkt.flight, cycle);
          } else if (pkt.wraps < static_cast<u32>(std::max(options.wrap_budget, 0)) &&
                     faults.node_alive(next_row, 0)) {
            Packet w = pkt;
            ++w.wraps;
            if (measured) ++tally.wraps;
            wrapped.emplace_back(next_row, w);
          } else {
            --in_flight;
            count_drop(pkt.wraps < static_cast<u32>(std::max(options.wrap_budget, 0))
                           ? DropReason::kNoAliveLink
                           : DropReason::kBudgetExhausted,
                       measured, pkt.flight, cycle);
          }
        } else if (!enqueue(next_row, s + 1, pkt, measured, cycle,
                            obs::FlightEvent::kAdvance)) {
          --in_flight;
        }
      });
    }
    for (const auto& [row, pkt] : wrapped) {
      if (!enqueue(row, 0, pkt, measured, cycle, obs::FlightEvent::kWrap)) --in_flight;
    }
    // Inject.
    u64 cycle_injections = 0;
    for (u64 row = 0; row < rows; ++row) {
      if (rng.uniform() < offered_load) {
        Packet pkt{rng.below(rows), cycle, 0, 0};
        // Sample *before* the endpoint check so the packet-id stream matches
        // the pristine engine's exactly under an empty FaultSet.
        pkt.flight = fprobe.on_packet(cycle, row, pkt.dst);
        if (!faults.node_alive(row, 0) || !faults.node_alive(pkt.dst, n)) {
          count_drop(DropReason::kEndpointDead, measured, pkt.flight, cycle);
          continue;
        }
        if (enqueue(row, 0, pkt, measured, cycle, obs::FlightEvent::kInject)) {
          ++cycle_injections;
          if (measured) ++measured_injections;
        }
      }
    }
    in_flight += cycle_injections;
    depth_hist.observe(static_cast<double>(in_flight));
    probe.on_injected(cycle_injections);
    probe.sample(cycle, arena, in_flight, faults.num_dead_links());
  }
  latency_hist.flush();
  depth_hist.flush();

  result.max_queue = arena.max_size();
  // Same partial-result convention as simulate_saturation: average over the
  // cycles actually simulated when the token tripped mid-run.
  const double measured_cycles =
      simulated > warmup_cycles ? static_cast<double>(simulated - warmup_cycles) : 0.0;
  result.throughput =
      measured_cycles > 0.0
          ? static_cast<double>(result.delivered) / (measured_cycles * static_cast<double>(rows))
          : 0.0;
  result.per_node_injection = result.throughput / static_cast<double>(n + 1);
  result.avg_latency =
      result.delivered > 0 ? total_latency / static_cast<double>(result.delivered) : 0.0;
  result.dropped_queue_full = tally.dropped[drop_index(DropReason::kQueueFull)];
  obs::add(injected_ctr, measured_injections);
  export_tally_metrics(tally);
  obs::set(obs::get_gauge("fault.max_queue"), static_cast<double>(result.max_queue));
  obs::set(obs::get_gauge("fault.throughput"), result.throughput);
  return out;
}

}  // namespace

FaultSaturationPoint simulate_saturation_faulty(int n, double offered_load, u64 cycles,
                                                u64 seed, const FaultSet& faults,
                                                const FaultRoutingOptions& options,
                                                u64 warmup_cycles, u64 queue_capacity,
                                                const CancelToken* cancel,
                                                obs::TimeSeries* timeseries,
                                                obs::OccupancyFrames* frames,
                                                obs::FlightRecorder* flight,
                                                const FaultSchedule* schedule) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(offered_load >= 0.0 && offered_load <= 1.0, "offered load is a probability");
  BFLY_REQUIRE(faults.dimension() == n, "fault set dimension mismatch");
  if (schedule == nullptr) {
    return run_saturation_faulty(n, offered_load, cycles, seed, faults, options, warmup_cycles,
                                 queue_capacity, cancel, timeseries, frames, flight,
                                 /*live=*/nullptr, LinkDeathPolicy::kKillInFlight);
  }
  BFLY_REQUIRE(schedule->dimension() == n, "fault schedule dimension mismatch");
  LiveFaultState live(faults, *schedule);
  FaultSaturationPoint out = run_saturation_faulty(
      n, offered_load, cycles, seed, live, options, warmup_cycles, queue_capacity, cancel,
      timeseries, frames, flight, &live, schedule->link_death_policy());
  out.live = live.stats();
  return out;
}

std::vector<std::uint8_t> reachable_destinations(int n, const FaultSet& faults, u64 src_row) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  BFLY_REQUIRE(faults.dimension() == n, "fault set dimension mismatch");
  const u64 rows = pow2(n);
  BFLY_REQUIRE(src_row < rows, "row out of range");
  std::vector<std::uint8_t> out(rows, 0);
  if (!faults.node_alive(src_row, 0)) return out;

  const u64 states = rows * static_cast<u64>(n + 1);
  std::vector<std::uint8_t> seen(states, 0);
  std::vector<u64> queue;
  const auto push = [&](u64 row, int stage) {
    const u64 id = static_cast<u64>(stage) * rows + row;
    if (seen[id]) return;
    seen[id] = 1;
    queue.push_back(id);
  };
  push(src_row, 0);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const u64 id = queue[head];
    const u64 row = id % rows;
    const int stage = static_cast<int>(id / rows);
    if (stage == n) {
      out[row] = 1;
      // Recirculation: a packet at an output can re-enter the fabric.
      if (faults.node_alive(row, 0)) push(row, 0);
      continue;
    }
    // Dead links never lead into dead nodes (node faults kill incident
    // links), so link liveness alone gates the forward expansion.
    if (faults.link_alive(row, stage, false)) push(row, stage + 1);
    if (faults.link_alive(row, stage, true)) push(row ^ pow2(stage), stage + 1);
  }
  return out;
}

double exact_reachability(int n, const FaultSet& faults) {
  BFLY_TRACE_SCOPE("fault.exact_reachability");
  const u64 rows = pow2(n);
  // Each source row's BFS is independent; pool threads claim contiguous row
  // ranges and the u64 per-range pair counts are summed in range order, so
  // the fraction is bitwise identical for any pool size.
  const std::size_t threads =
      std::min<std::size_t>(default_thread_count(), static_cast<std::size_t>(rows));
  std::vector<u64> partial(threads, 0);
  parallel_for_chunked(
      0, static_cast<std::size_t>(rows), threads,
      [&](std::size_t lo, std::size_t hi, std::size_t tid) {
        u64 pairs = 0;
        for (std::size_t src = lo; src < hi; ++src) {
          const std::vector<std::uint8_t> reach =
              reachable_destinations(n, faults, static_cast<u64>(src));
          for (const std::uint8_t r : reach) pairs += r;
        }
        partial[tid] = pairs;
      });
  u64 reachable_pairs = 0;
  for (const u64 p : partial) reachable_pairs += p;
  const double fraction = static_cast<double>(reachable_pairs) /
                          (static_cast<double>(rows) * static_cast<double>(rows));
  obs::set(obs::get_gauge("fault.reachability"), fraction);
  return fraction;
}

}  // namespace bfly
