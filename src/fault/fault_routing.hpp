// Fault-tolerant routing on butterfly fabrics, and the degraded-mode
// counterparts of the two routing instruments (routing/routing.hpp).
//
// Policy.  Greedy bit-fixing with bounded deterministic deflection:
//
//   * At (row, s) the packet prefers the bit-fixing link (cross iff bit s of
//     row^dst differs).  If that link is dead it *misroutes* over the other
//     stage-s link when that one is alive and misroute budget remains —
//     deliberately arriving with bit s wrong but on a different trajectory.
//   * A packet reaching stage n on the wrong row *wraps*: it re-enters the
//     fabric at (row, 0) (output-to-input recirculation, the wrapped-butterfly
//     reading of B_n) and runs another bit-fixing pass, provided wrap budget
//     remains.  Because a misroute changed the row, the second pass needs
//     different physical links, which may all be alive.
//   * A packet is dropped — and *counted, with a reason* — when both stage-s
//     links are dead (kNoAliveLink), when a budget runs out
//     (kBudgetExhausted), when its source or destination switch is dead
//     (kEndpointDead), or, in the queued simulator's bounded-queue mode, when
//     the chosen output queue is full (kQueueFull).
//
// Every routing decision is a pure function of (row, dst, FaultSet, budgets):
// no randomness beyond workload generation, so the census keeps the
// fixed-chunk seeding discipline of measure_link_loads and stays bitwise
// deterministic per seed across thread counts — and with an *empty* FaultSet
// both instruments reproduce their pristine counterparts bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "fault/fault_set.hpp"
#include "routing/routing.hpp"

namespace bfly {

struct FaultRoutingOptions {
  /// Total deflections (wrong-link hops) a packet may take over its lifetime.
  int misroute_budget = 8;
  /// Extra stage-n -> stage-0 recirculation passes after the first.
  int wrap_budget = 2;
};

enum class DropReason : int {
  kEndpointDead = 0,    ///< source or destination switch is dead
  kNoAliveLink = 1,     ///< both forward links at the current node are dead
  kBudgetExhausted = 2, ///< misroute or wrap budget ran out
  kQueueFull = 3,       ///< bounded-queue simulator: chosen output queue full
  kKilledByFault = 4,   ///< in-flight packet on a link a live schedule killed
};
inline constexpr std::size_t kNumDropReasons = 5;

/// Index of a DropReason in FaultTally::dropped.
inline constexpr std::size_t drop_index(DropReason r) { return static_cast<std::size_t>(r); }

/// Delivery / drop / deflection accounting shared by census and simulator.
struct FaultTally {
  u64 delivered = 0;
  std::array<u64, kNumDropReasons> dropped{};  ///< indexed by DropReason
  u64 misroutes = 0;  ///< total deflected hops across all packets
  u64 wraps = 0;      ///< total recirculation passes across all packets

  u64 total_dropped() const {
    u64 t = 0;
    for (const u64 d : dropped) t += d;
    return t;
  }
};

/// Outcome of routing a single packet.
struct RouteResult {
  bool delivered = false;
  DropReason reason = DropReason::kEndpointDead;  ///< valid iff !delivered
  int hops = 0;       ///< links traversed (wraps are free)
  int misroutes = 0;
  int wraps = 0;
};

/// Routes one packet from (src, stage 0) to (dst, stage n) under the policy
/// above.  When `path_links` is non-null the dense indices of the traversed
/// links are appended in order (for tests and visualization).
RouteResult route_packet(int n, const FaultSet& faults, const FaultRoutingOptions& options,
                         u64 src, u64 dst, std::vector<u64>* path_links = nullptr);

struct FaultLoadCensus {
  LoadCensus census;            ///< loads over *attempted* hops, incl. misroutes
  FaultTally tally;
  double delivered_fraction = 0.0;  ///< delivered / packets (1.0 when fault-free)
};

/// Fault-aware Monte-Carlo census: same workload, chunk seeding, and
/// determinism contract as measure_link_loads(); with an empty FaultSet the
/// embedded LoadCensus is bitwise identical to it for the same seed.
FaultLoadCensus measure_link_loads_faulty(int n, u64 packets, u64 seed,
                                          const FaultSet& faults,
                                          const FaultRoutingOptions& options = {},
                                          std::size_t threads = 0,
                                          bool keep_link_loads = false);

struct FaultSaturationPoint {
  SaturationPoint point;
  FaultTally tally;
  /// Schedule-application counters; all zero unless a FaultSchedule was
  /// attached to the run.
  LiveFaultStats live;
};

/// Fault-aware synchronous queued simulation: same injection process and RNG
/// stream as simulate_saturation(); with an empty FaultSet and
/// queue_capacity == 0 the embedded SaturationPoint is bitwise identical to
/// it.  queue_capacity > 0 bounds every output queue (drop-on-full, counted
/// as kQueueFull).  A non-null `cancel` is polled every kCancelPollCycles
/// cycles exactly like simulate_saturation: the run stops at the poll and
/// averages over the cycles actually simulated; an uncancelled run is
/// bitwise unchanged.  Non-null `timeseries` / `frames` receive the same
/// cycle-resolved telemetry as simulate_saturation (per-stage occupancy,
/// in-flight, cumulative injected/delivered/dropped/latency, arena fill),
/// deterministic and bit-unchanged when left null.  A non-null enabled
/// `flight` records per-packet hop traces (inject/advance/misroute/wrap
/// entries, deliver/drop terminals) for the deterministically sampled subset
/// — with an empty FaultSet the recorded state is bitwise identical to the
/// pristine engine's for the same parameters (the creation streams coincide).
///
/// A non-null `schedule` makes the fault world *live*: `faults` becomes the
/// cycle-0 base state and the schedule's fail/repair events apply at cycle
/// boundaries through a LiveFaultState overlay (fault/fault_schedule.hpp) —
/// spare-chip failover included.  Under LinkDeathPolicy::kKillInFlight,
/// packets resident on a link the moment it dies are drained and counted as
/// kKilledByFault before any packet moves that cycle; under kDeflect they
/// stay queued and the router deflects them on their next hop.  Determinism:
/// an *empty* schedule is bitwise identical to passing schedule == nullptr,
/// and a schedule whose events all sit at cycle 0 is bitwise identical to
/// the equivalent pre-faulted static FaultSet (events at cycle c apply
/// before cycle c routes any packet).
FaultSaturationPoint simulate_saturation_faulty(int n, double offered_load, u64 cycles,
                                                u64 seed, const FaultSet& faults,
                                                const FaultRoutingOptions& options = {},
                                                u64 warmup_cycles = 0,
                                                u64 queue_capacity = 0,
                                                const CancelToken* cancel = nullptr,
                                                obs::TimeSeries* timeseries = nullptr,
                                                obs::OccupancyFrames* frames = nullptr,
                                                obs::FlightRecorder* flight = nullptr,
                                                const FaultSchedule* schedule = nullptr);

/// BFS oracle on the faulted fabric (alive forward links plus stage-n ->
/// stage-0 recirculation): out[d] != 0 iff (d, stage n) is reachable from
/// (src_row, stage 0).  This is the ground truth the budgeted router is
/// cross-checked against: the router can only deliver reachable pairs.
std::vector<std::uint8_t> reachable_destinations(int n, const FaultSet& faults, u64 src_row);

/// Fraction of the 4^n ordered (src, dst) row pairs still routable per the
/// BFS oracle.  Exhaustive — O(4^n * n); intended for n <= ~12.
double exact_reachability(int n, const FaultSet& faults);

}  // namespace bfly
