#include "fault/fault_schedule.hpp"

#include <algorithm>

#include "util/fileio.hpp"
#include "util/prng.hpp"

namespace bfly {

FaultSchedule::FaultSchedule(int n) : n_(n), rows_(0) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "fault schedule dimension must be in [1, 30]");
  rows_ = pow2(n_);
}

void FaultSchedule::insert_event(FaultEvent event) {
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.cycle,
      [](u64 cycle, const FaultEvent& e) { return cycle < e.cycle; });
  events_.insert(pos, event);
}

void FaultSchedule::require_link(u64 row, int stage) const {
  BFLY_REQUIRE(row < rows_ && stage >= 0 && stage < n_, "link out of range");
}

void FaultSchedule::require_node(u64 row, int stage) const {
  BFLY_REQUIRE(row < rows_ && stage >= 0 && stage <= n_, "node out of range");
}

void FaultSchedule::require_chip(u64 chip) const {
  BFLY_REQUIRE(has_plan(), "chip events need an attached packaging plan");
  BFLY_REQUIRE(chip < num_chips(), "chip index out of range");
}

void FaultSchedule::fail_link_at(u64 cycle, u64 row, int stage, bool cross) {
  require_link(row, stage);
  insert_event({cycle, FaultAction::kFail, FaultTarget::kLink, row, stage, cross, 0});
}

void FaultSchedule::repair_link_at(u64 cycle, u64 row, int stage, bool cross) {
  require_link(row, stage);
  insert_event({cycle, FaultAction::kRepair, FaultTarget::kLink, row, stage, cross, 0});
}

void FaultSchedule::fail_node_at(u64 cycle, u64 row, int stage) {
  require_node(row, stage);
  insert_event({cycle, FaultAction::kFail, FaultTarget::kNode, row, stage, false, 0});
}

void FaultSchedule::repair_node_at(u64 cycle, u64 row, int stage) {
  require_node(row, stage);
  insert_event({cycle, FaultAction::kRepair, FaultTarget::kNode, row, stage, false, 0});
}

void FaultSchedule::attach_plan(const HierarchicalPlan& plan) {
  attach_plan(plan.k, plan.rows_log2);
}

void FaultSchedule::attach_plan(std::vector<int> k, int rows_log2) {
  BFLY_REQUIRE(plan_k_.empty(), "a packaging plan is already attached");
  BFLY_REQUIRE(!k.empty(), "plan needs at least one ISN level");
  BFLY_REQUIRE(SwapButterfly(k).dimension() == n_, "plan dimension mismatch");
  BFLY_REQUIRE(rows_log2 >= 0 && rows_log2 <= n_, "bad rows_log2");
  plan_k_ = std::move(k);
  plan_rows_log2_ = rows_log2;
}

u64 FaultSchedule::num_chips() const {
  BFLY_REQUIRE(has_plan(), "no packaging plan attached");
  return rows_ >> plan_rows_log2_;
}

void FaultSchedule::fail_chip_at(u64 cycle, u64 chip) {
  require_chip(chip);
  insert_event({cycle, FaultAction::kFail, FaultTarget::kChip, 0, 0, false, chip});
}

void FaultSchedule::repair_chip_at(u64 cycle, u64 chip) {
  require_chip(chip);
  insert_event({cycle, FaultAction::kRepair, FaultTarget::kChip, 0, 0, false, chip});
}

FaultSchedule FaultSchedule::random_links(int n, u64 mtbf, u64 mttr, u64 horizon, u64 seed) {
  BFLY_REQUIRE(mtbf >= 2, "mean time between failures must be >= 2 cycles");
  BFLY_REQUIRE(mttr >= 1, "mean time to repair must be >= 1 cycle");
  BFLY_REQUIRE(horizon >= 1, "schedule horizon must cover at least one cycle");
  FaultSchedule s(n);
  const u64 num_links = static_cast<u64>(n) * s.rows_ * 2;
  Xoshiro256 rng(seed);
  // One pass in link-index order; each link's up/down holding times are
  // geometric with means mtbf / mttr, drawn as per-cycle integer Bernoulli
  // trials (below(m) == 0 has probability exactly 1/m) — no floating point,
  // so the schedule is bitwise reproducible on every platform and libm.
  std::vector<FaultEvent> events;
  for (u64 link = 0; link < num_links; ++link) {
    const u64 row = (link / 2) % s.rows_;
    const int stage = static_cast<int>(link / (2 * s.rows_));
    const bool cross = (link & 1) != 0;
    bool dead = false;
    for (u64 cycle = 0; cycle < horizon; ++cycle) {
      if (!dead) {
        if (rng.below(mtbf) == 0) {
          events.push_back({cycle, FaultAction::kFail, FaultTarget::kLink, row, stage, cross, 0});
          dead = true;
        }
      } else {
        if (rng.below(mttr) == 0) {
          events.push_back({cycle, FaultAction::kRepair, FaultTarget::kLink, row, stage, cross, 0});
          dead = false;
        }
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.cycle < b.cycle; });
  s.events_ = std::move(events);
  return s;
}

json::Value FaultSchedule::to_json() const {
  json::Value v = json::Value::object();
  v.set("v", json::Value::number(1));
  v.set("n", json::Value::number(n_));
  v.set("link_death_policy", json::Value::number(static_cast<int>(link_death_)));
  json::Value fo = json::Value::object();
  fo.set("spare_chips", json::Value::number(failover_.spare_chips));
  fo.set("detection_latency", json::Value::number(failover_.detection_latency));
  v.set("failover", std::move(fo));
  if (has_plan()) {
    json::Value plan = json::Value::object();
    json::Value k = json::Value::array();
    for (const int ki : plan_k_) k.push_back(json::Value::number(ki));
    plan.set("k", std::move(k));
    plan.set("rows_log2", json::Value::number(plan_rows_log2_));
    v.set("plan", std::move(plan));
  }
  json::Value events = json::Value::array();
  for (const FaultEvent& e : events_) {
    json::Value ev = json::Value::array();
    ev.push_back(json::Value::number(e.cycle));
    ev.push_back(json::Value::number(static_cast<int>(e.action)));
    ev.push_back(json::Value::number(static_cast<int>(e.target)));
    ev.push_back(json::Value::number(e.row));
    ev.push_back(json::Value::number(e.stage));
    ev.push_back(json::Value::number(e.cross ? 1 : 0));
    ev.push_back(json::Value::number(e.chip));
    events.push_back(std::move(ev));
  }
  v.set("events", std::move(events));
  return v;
}

FaultSchedule FaultSchedule::from_json(const json::Value& v) {
  BFLY_REQUIRE(v.is_object(), "schedule: not an object");
  BFLY_REQUIRE(v.at("v").as_u64() == 1, "schedule: unknown format version");
  const u64 n = v.at("n").as_u64();
  BFLY_REQUIRE(n >= 1 && n <= 30, "schedule: dimension out of range");
  FaultSchedule s(static_cast<int>(n));
  const u64 policy = v.at("link_death_policy").as_u64();
  BFLY_REQUIRE(policy <= 1, "schedule: bad link death policy code");
  s.link_death_ = static_cast<LinkDeathPolicy>(policy);
  const json::Value& fo = v.at("failover");
  BFLY_REQUIRE(fo.is_object(), "schedule: failover must be an object");
  s.failover_.spare_chips = fo.at("spare_chips").as_u64();
  s.failover_.detection_latency = fo.at("detection_latency").as_u64();
  if (const json::Value* plan = v.find("plan")) {
    BFLY_REQUIRE(plan->is_object(), "schedule: plan must be an object");
    const json::Value& k = plan->at("k");
    BFLY_REQUIRE(k.is_array() && k.size() > 0, "schedule: plan.k must be a non-empty array");
    std::vector<int> kv;
    kv.reserve(k.size());
    for (std::size_t i = 0; i < k.size(); ++i) {
      const u64 ki = k.at(i).as_u64();
      BFLY_REQUIRE(ki >= 1 && ki <= 30, "schedule: plan.k entry out of range");
      kv.push_back(static_cast<int>(ki));
    }
    const u64 rl = plan->at("rows_log2").as_u64();
    BFLY_REQUIRE(rl <= n, "schedule: plan.rows_log2 out of range");
    s.attach_plan(std::move(kv), static_cast<int>(rl));
  }
  const json::Value& events = v.at("events");
  BFLY_REQUIRE(events.is_array(), "schedule: events must be an array");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& ev = events.at(i);
    BFLY_REQUIRE(ev.is_array() && ev.size() == 7,
                 "schedule: event must be [cycle, action, target, row, stage, cross, chip]");
    const u64 cycle = ev.at(std::size_t{0}).as_u64();
    const u64 action = ev.at(std::size_t{1}).as_u64();
    BFLY_REQUIRE(action <= 1, "schedule: bad action code");
    const u64 target = ev.at(std::size_t{2}).as_u64();
    BFLY_REQUIRE(target <= 2, "schedule: bad target code");
    const u64 row = ev.at(std::size_t{3}).as_u64();
    const u64 stage = ev.at(std::size_t{4}).as_u64();
    BFLY_REQUIRE(stage <= n, "schedule: event stage out of range");
    const u64 cross = ev.at(std::size_t{5}).as_u64();
    BFLY_REQUIRE(cross <= 1, "schedule: event cross flag must be 0 or 1");
    const u64 chip = ev.at(std::size_t{6}).as_u64();
    const bool fail = action == 0;
    // Route through the surgery API so every range check applies.
    switch (static_cast<FaultTarget>(target)) {
      case FaultTarget::kLink:
        if (fail) {
          s.fail_link_at(cycle, row, static_cast<int>(stage), cross != 0);
        } else {
          s.repair_link_at(cycle, row, static_cast<int>(stage), cross != 0);
        }
        break;
      case FaultTarget::kNode:
        if (fail) {
          s.fail_node_at(cycle, row, static_cast<int>(stage));
        } else {
          s.repair_node_at(cycle, row, static_cast<int>(stage));
        }
        break;
      case FaultTarget::kChip:
        if (fail) {
          s.fail_chip_at(cycle, chip);
        } else {
          s.repair_chip_at(cycle, chip);
        }
        break;
    }
  }
  return s;
}

u64 FaultSchedule::content_hash() const {
  util::Fnv1a64 h;
  h.update(static_cast<u64>(n_));
  h.update(static_cast<u64>(link_death_));
  h.update(failover_.spare_chips);
  h.update(failover_.detection_latency);
  h.update(static_cast<u64>(plan_k_.size()));
  for (const int ki : plan_k_) h.update(static_cast<u64>(ki));
  h.update(static_cast<u64>(plan_rows_log2_));
  h.update(static_cast<u64>(events_.size()));
  for (const FaultEvent& e : events_) {
    h.update(e.cycle);
    h.update(static_cast<u64>(e.action));
    h.update(static_cast<u64>(e.target));
    h.update(e.row);
    h.update(static_cast<u64>(e.stage));
    h.update(e.cross ? 1 : 0);
    h.update(e.chip);
  }
  return h.digest();
}

bool operator==(const FaultSchedule& a, const FaultSchedule& b) {
  return a.n_ == b.n_ && a.events_ == b.events_ && a.failover_ == b.failover_ &&
         a.link_death_ == b.link_death_ && a.plan_k_ == b.plan_k_ &&
         a.plan_rows_log2_ == b.plan_rows_log2_;
}

// ---------------------------------------------------------------------------
// LiveFaultState
// ---------------------------------------------------------------------------

LiveFaultState::LiveFaultState(const FaultSet& base, const FaultSchedule& schedule)
    : n_(schedule.dimension()), rows_(schedule.rows()), schedule_(&schedule) {
  BFLY_REQUIRE(base.dimension() == schedule.dimension(),
               "fault set / schedule dimension mismatch");
  const u64 links = base.num_links();
  link_causes_.assign(links, 0);
  dead_links_.assign(links, 0);
  for (u64 link = 0; link < links; ++link) {
    // A base fault counts as one standing cause (its multiplicity — explicit
    // vs node-induced — is flattened by FaultSet's byte map).
    if (!base.link_alive_index(link)) {
      link_causes_[link] = 1;
      dead_links_[link] = 1;
    }
  }
  const u64 nodes = base.num_nodes();
  node_causes_.assign(nodes, 0);
  dead_nodes_.assign(nodes, 0);
  for (int s = 0; s <= n_; ++s) {
    for (u64 row = 0; row < rows_; ++row) {
      if (!base.node_alive(row, s)) {
        const u64 id = static_cast<u64>(s) * rows_ + row;
        node_causes_[id] = 1;
        dead_nodes_[id] = 1;
      }
    }
  }
  dead_link_count_ = base.num_dead_links();
  dead_node_count_ = base.num_dead_nodes();
  spares_left_ = schedule.failover().spare_chips;
  if (schedule.has_plan()) sb_.emplace_back(schedule.plan_k());
}

void LiveFaultState::apply_link(u64 link, bool fail) {
  if (fail) {
    if (++link_causes_[link] == 1) {
      dead_links_[link] = 1;
      ++dead_link_count_;
      ++stats_.links_killed;
      touched_.push_back(link);
    }
  } else {
    // Guarded: a repair with no standing cause is a no-op, so surplus
    // repairs (or overlapping-cause orderings) can never resurrect a link
    // another cause still holds dead.
    if (link_causes_[link] > 0 && --link_causes_[link] == 0) {
      dead_links_[link] = 0;
      --dead_link_count_;
      ++stats_.links_revived;
    }
  }
}

void LiveFaultState::apply_node(u64 row, int stage, bool fail) {
  const u64 id = static_cast<u64>(stage) * rows_ + row;
  if (fail) {
    if (++node_causes_[id] == 1) {
      dead_nodes_[id] = 1;
      ++dead_node_count_;
    }
  } else {
    if (node_causes_[id] == 0) return;  // nothing to undo
    if (--node_causes_[id] == 0) {
      dead_nodes_[id] = 0;
      --dead_node_count_;
    }
  }
  // Induced incident links, the same set FaultSet::fail_node kills: a node
  // fault adds one cause to each, a node repair removes it.
  const auto link_id = [this](u64 r, int s, bool cross) {
    return (static_cast<u64>(s) * rows_ + r) * 2 + (cross ? 1 : 0);
  };
  if (stage < n_) {
    apply_link(link_id(row, stage, false), fail);
    apply_link(link_id(row, stage, true), fail);
  }
  if (stage > 0) {
    apply_link(link_id(row, stage - 1, false), fail);
    apply_link(link_id(row ^ pow2(stage - 1), stage - 1, true), fail);
  }
}

void LiveFaultState::apply_chip(u64 chip, bool fail) {
  BFLY_CHECK(!sb_.empty(), "chip event without an attached plan");
  const SwapButterfly& sb = sb_.front();
  const int rows_log2 = schedule_->plan_rows_log2();
  const u64 first_row = chip << rows_log2;
  const u64 last_row = first_row + pow2(rows_log2);
  for (int s = 0; s <= n_; ++s) {
    for (u64 v = first_row; v < last_row; ++v) {
      apply_node(sb.rho(s, v), s, fail);
    }
  }
}

void LiveFaultState::apply_event(const FaultEvent& event, u64 /*cycle*/) {
  const bool fail = event.action == FaultAction::kFail;
  if (fail) {
    ++stats_.fail_events;
  } else {
    ++stats_.repair_events;
  }
  switch (event.target) {
    case FaultTarget::kLink:
      apply_link((static_cast<u64>(event.stage) * rows_ + event.row) * 2 + (event.cross ? 1 : 0),
                 fail);
      break;
    case FaultTarget::kNode:
      apply_node(event.row, event.stage, fail);
      break;
    case FaultTarget::kChip:
      apply_chip(event.chip, fail);
      if (fail && spares_left_ > 0) {
        // Consume the spare now; the remap completes detection_latency
        // cycles after the chip died.
        --spares_left_;
        ++stats_.spares_used;
        pending_.push_back({event.cycle + schedule_->failover().detection_latency, event.chip});
      }
      break;
  }
}

void LiveFaultState::advance_to(u64 cycle, std::vector<u64>* newly_dead_links) {
  touched_.clear();
  const std::vector<FaultEvent>& events = schedule_->events();
  while (next_event_ < events.size() && events[next_event_].cycle <= cycle) {
    apply_event(events[next_event_], cycle);
    ++next_event_;
  }
  // Spare-chip failovers whose detection latency elapsed: undo the chip
  // fault's causes, remapping its rows through the spare.  Ready cycles are
  // non-decreasing (event cycles are, and the latency is constant).
  while (pending_head_ < pending_.size() && pending_[pending_head_].ready_cycle <= cycle) {
    apply_chip(pending_[pending_head_].chip, /*fail=*/false);
    ++stats_.failovers;
    ++pending_head_;
  }
  if (newly_dead_links != nullptr) {
    newly_dead_links->clear();
    std::sort(touched_.begin(), touched_.end());
    u64 prev = ~u64{0};
    for (const u64 link : touched_) {
      // Keep links that transitioned alive -> dead this cycle and are still
      // dead after all of the cycle's events and failovers settled.
      if (link != prev && dead_links_[link] != 0) newly_dead_links->push_back(link);
      prev = link;
    }
  }
}

}  // namespace bfly
