// The seed deque-based faulty saturation simulator, kept verbatim (minus obs
// instrumentation, which never influenced the returned statistics) as the
// determinism oracle for the arena engine: simulate_saturation_faulty() must
// reproduce simulate_saturation_faulty_reference() bit for bit — every
// SaturationPoint and FaultTally field, for every (seed, load, FaultSet,
// budgets, queue_capacity) — which tests/test_fault.cpp asserts across seeds
// and fault rates.  bench_fault also times this reference serially against
// the arena-backed engine to measure the speedup recorded in
// bench/trajectories/.
//
// Do not "improve" this file: its value is that it does not change.
#pragma once

#include "fault/fault_routing.hpp"

namespace bfly {

/// The seed implementation of simulate_saturation_faulty (per-link std::deque
/// FIFOs, single-threaded).  Same contract and RNG streams as the arena
/// engine; intentionally unoptimized.
FaultSaturationPoint simulate_saturation_faulty_reference(
    int n, double offered_load, u64 cycles, u64 seed, const FaultSet& faults,
    const FaultRoutingOptions& options = {}, u64 warmup_cycles = 0, u64 queue_capacity = 0);

}  // namespace bfly
