// Indirect swap networks (Appendix A.2).
//
// The ISN derived from SN(l, Q_k1) is the flow graph of the bottom-up FFT
// algorithm on the swap network:
//
//   level 1:             k_1 exchange steps over nucleus dims 0..k_1-1
//   for i = 2..l:        1 swap step (level-i inter-cluster forwarding)
//                        followed by k_i exchange steps over dims 0..k_i-1
//
// giving m = n_l + (l-1) steps and m+1 stages of R = 2^{n_l} nodes each.
// An exchange step over dim j contributes, for every row u, a straight link
// (u,t-1)--(u,t) and a cross link (u,t-1)--(u xor 2^j, t).  A level-i swap
// step contributes the perfect matching (u,t-1)--(sigma_i(u), t).
#pragma once

#include <vector>

#include "topology/graph.hpp"
#include "topology/swap_network.hpp"
#include "util/bits.hpp"

namespace bfly {

enum class LinkKind { kStraight, kCross, kSwap };

/// One pipeline step of the ISN (between stage t-1 and stage t).
struct IsnStep {
  enum class Kind { kExchange, kSwap };
  Kind kind;
  /// Exchange: local dimension j. Swap: level i (>= 2).
  int param;
};

class IndirectSwapNetwork {
 public:
  /// k[i-1] = k_i; same feasibility constraints as SwapNetwork.
  explicit IndirectSwapNetwork(std::vector<int> k);

  int levels() const { return static_cast<int>(k_.size()); }
  int dimension() const { return n_; }
  u64 rows() const { return pow2(n_); }
  int num_steps() const { return static_cast<int>(steps_.size()); }
  int num_stages() const { return num_steps() + 1; }
  u64 num_nodes() const { return rows() * static_cast<u64>(num_stages()); }
  const std::vector<int>& group_sizes() const { return k_; }
  const std::vector<IsnStep>& steps() const { return steps_; }
  int prefix(int i) const { return sn_.prefix(i); }

  u64 node_id(u64 row, int stage) const {
    BFLY_REQUIRE(row < rows() && stage >= 0 && stage < num_stages(), "ISN node out of range");
    return static_cast<u64>(stage) * rows() + row;
  }
  u64 row_of(u64 id) const { return id % rows(); }
  int stage_of(u64 id) const { return static_cast<int>(id / rows()); }

  /// sigma_i of the underlying swap network.
  u64 sigma(int level, u64 row) const { return sn_.sigma(level, row); }

  /// Targets in stage t of the links leaving (row, t-1); step index t in
  /// [1, num_steps()].  Exchange steps have a straight and a cross target;
  /// swap steps have a single swap target.
  struct Outgoing {
    u64 straight = ~u64{0};  ///< valid for exchange steps
    u64 cross = ~u64{0};     ///< valid for exchange steps
    u64 swap = ~u64{0};      ///< valid for swap steps
    bool is_swap = false;
  };
  Outgoing outgoing(u64 row, int step) const;

  Graph graph() const;

  /// Total number of links.
  u64 num_links() const;

 private:
  std::vector<int> k_;
  SwapNetwork sn_;
  std::vector<IsnStep> steps_;
  int n_;
};

}  // namespace bfly
