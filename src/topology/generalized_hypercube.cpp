#include "topology/generalized_hypercube.hpp"

namespace bfly {

GeneralizedHypercube::GeneralizedHypercube(std::vector<u64> radices, u64 multiplicity)
    : radices_(std::move(radices)), num_nodes_(1), multiplicity_(multiplicity) {
  BFLY_REQUIRE(!radices_.empty(), "generalized hypercube needs at least one digit");
  BFLY_REQUIRE(multiplicity >= 1, "multiplicity must be positive");
  for (const u64 r : radices_) {
    BFLY_REQUIRE(r >= 1, "radix must be positive");
    num_nodes_ *= r;
  }
}

u64 GeneralizedHypercube::num_links() const {
  // Each node has (radix_i - 1) neighbors along digit i.
  u64 degree_sum = 0;
  for (const u64 r : radices_) degree_sum += r - 1;
  return multiplicity_ * num_nodes_ * degree_sum / 2;
}

std::vector<u64> GeneralizedHypercube::digits(u64 id) const {
  BFLY_REQUIRE(id < num_nodes_, "node id out of range");
  std::vector<u64> out(radices_.size());
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    out[i] = id % radices_[i];
    id /= radices_[i];
  }
  return out;
}

u64 GeneralizedHypercube::encode(std::span<const u64> digits) const {
  BFLY_REQUIRE(digits.size() == radices_.size(), "digit count mismatch");
  u64 id = 0;
  for (std::size_t i = radices_.size(); i-- > 0;) {
    BFLY_REQUIRE(digits[i] < radices_[i], "digit out of range");
    id = id * radices_[i] + digits[i];
  }
  return id;
}

Graph GeneralizedHypercube::graph() const {
  Graph g(num_nodes_);
  g.reserve_edges(num_links());
  for (u64 v = 0; v < num_nodes_; ++v) {
    u64 stride = 1;
    u64 rest = v;
    for (const u64 radix : radices_) {
      const u64 digit = rest % radix;
      rest /= radix;
      // Connect to every strictly larger digit value in this position; the
      // smaller side adds the edge so each pair is added exactly once.
      for (u64 other = digit + 1; other < radix; ++other) {
        const u64 w = v + (other - digit) * stride;
        for (u64 r = 0; r < multiplicity_; ++r) g.add_edge(v, w);
      }
      stride *= radix;
    }
  }
  return g;
}

}  // namespace bfly
