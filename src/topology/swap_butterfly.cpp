#include "topology/swap_butterfly.hpp"

namespace bfly {

SwapButterfly::SwapButterfly(std::vector<int> k) : k_(k), isn_(std::move(k)), n_(isn_.dimension()) {}

int SwapButterfly::level_of_transition(int s) const {
  BFLY_REQUIRE(s >= 0 && s < n_, "stage transition out of range");
  // Transition s -> s+1 realizes butterfly dimension s, which belongs to the
  // unique level i with n_{i-1} <= s < n_i.
  for (int i = 1; i <= levels(); ++i) {
    if (s < prefix(i)) return i;
  }
  BFLY_CHECK(false, "transition must belong to some level");
  return -1;
}

u64 SwapButterfly::straight_target(u64 row, int s) const {
  BFLY_REQUIRE(row < rows(), "row out of range");
  const int i = level_of_transition(s);
  if (i >= 2 && s == prefix(i - 1)) {
    // Level boundary: the (doubled) swap link reconnected through the
    // bypassed stage to the straight link of the first level-i exchange.
    return isn_.sigma(i, row);
  }
  return row;
}

u64 SwapButterfly::cross_target(u64 row, int s) const {
  BFLY_REQUIRE(row < rows(), "row out of range");
  const int i = level_of_transition(s);
  if (i >= 2 && s == prefix(i - 1)) {
    return isn_.sigma(i, row) ^ 1;
  }
  const int j = s - prefix(i - 1);  // local dimension within level i
  return row ^ pow2(j);
}

u64 SwapButterfly::rho(int stage, u64 row) const {
  BFLY_REQUIRE(stage >= 0 && stage <= n_, "stage out of range");
  BFLY_REQUIRE(row < rows(), "row out of range");
  // Apply sigma_{i(stage)} innermost, then sigma_{i-1}, ..., sigma_2.
  // sigma_i has been applied once the pipeline passed stage n_{i-1} + 1,
  // i.e. for all i >= 2 with prefix(i-1) < stage.
  u64 v = row;
  for (int i = levels(); i >= 2; --i) {
    if (prefix(i - 1) < stage) v = isn_.sigma(i, v);
  }
  return v;
}

std::vector<u64> SwapButterfly::isomorphism_to_butterfly() const {
  const Butterfly target(n_);
  std::vector<u64> map(num_nodes());
  for (int s = 0; s <= n_; ++s) {
    for (u64 v = 0; v < rows(); ++v) {
      map[node_id(v, s)] = target.node_id(rho(s, v), s);
    }
  }
  return map;
}

Graph SwapButterfly::graph() const {
  Graph g(num_nodes());
  g.reserve_edges(num_links());
  for (int s = 0; s < n_; ++s) {
    for (u64 u = 0; u < rows(); ++u) {
      g.add_edge(node_id(u, s), node_id(straight_target(u, s), s + 1));
      g.add_edge(node_id(u, s), node_id(cross_target(u, s), s + 1));
    }
  }
  return g;
}

}  // namespace bfly
