#include "topology/graph.hpp"

#include <algorithm>
#include <numeric>

namespace bfly {

void Graph::add_edge(u64 u, u64 v) {
  BFLY_REQUIRE(u < num_nodes_ && v < num_nodes_, "add_edge: endpoint out of range");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  finalized_ = false;
}

void Graph::finalize() const {
  if (finalized_) return;
  offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  targets_.assign(offsets_.back(), 0);
  std::vector<u64> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    targets_[cursor[u]++] = v;
    targets_[cursor[v]++] = u;
  }
  for (u64 v = 0; v < num_nodes_; ++v) {
    std::sort(targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
  finalized_ = true;
}

u64 Graph::degree(u64 v) const {
  BFLY_REQUIRE(v < num_nodes_, "degree: node out of range");
  finalize();
  return offsets_[v + 1] - offsets_[v];
}

std::span<const u64> Graph::neighbors(u64 v) const {
  BFLY_REQUIRE(v < num_nodes_, "neighbors: node out of range");
  finalize();
  return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
}

u64 Graph::multiplicity(u64 u, u64 v) const {
  const auto nb = neighbors(u);
  const auto [lo, hi] = std::equal_range(nb.begin(), nb.end(), v);
  return static_cast<u64>(hi - lo);
}

std::vector<u64> Graph::degree_histogram() const {
  finalize();
  std::vector<u64> histogram;
  for (u64 v = 0; v < num_nodes_; ++v) {
    const u64 d = degree(v);
    if (d >= histogram.size()) histogram.resize(d + 1, 0);
    ++histogram[d];
  }
  return histogram;
}

u64 Graph::connected_components() const {
  finalize();
  std::vector<u64> component(num_nodes_, ~u64{0});
  std::vector<u64> stack;
  u64 count = 0;
  for (u64 start = 0; start < num_nodes_; ++start) {
    if (component[start] != ~u64{0}) continue;
    ++count;
    component[start] = count;
    stack.push_back(start);
    while (!stack.empty()) {
      const u64 v = stack.back();
      stack.pop_back();
      for (const u64 w : neighbors(v)) {
        if (component[w] == ~u64{0}) {
          component[w] = count;
          stack.push_back(w);
        }
      }
    }
  }
  return count;
}

Graph Graph::contract(std::span<const u64> labels, u64 num_clusters,
                      bool keep_self_loops) const {
  BFLY_REQUIRE(labels.size() == num_nodes_, "contract: one label per node required");
  Graph quotient(num_clusters);
  quotient.reserve_edges(num_edges());
  for (const auto& [u, v] : edges_) {
    const u64 cu = labels[u];
    const u64 cv = labels[v];
    BFLY_REQUIRE(cu < num_clusters && cv < num_clusters, "contract: label out of range");
    if (cu == cv && !keep_self_loops) continue;
    quotient.add_edge(cu, cv);
  }
  return quotient;
}

bool Graph::same_as(const Graph& other) const {
  if (num_nodes_ != other.num_nodes_ || edges_.size() != other.edges_.size()) return false;
  auto mine = edges_;
  auto theirs = other.edges_;
  std::sort(mine.begin(), mine.end());
  std::sort(theirs.begin(), theirs.end());
  return mine == theirs;
}

}  // namespace bfly
