// Small graph factories used by the product-network layouts (paths, cycles,
// k-ary n-cube tori).
#pragma once

#include <span>

#include "topology/graph.hpp"

namespace bfly {

/// Path P_n: 0 - 1 - ... - n-1.
Graph path_graph(u64 n);

/// Cycle C_n (n >= 3).
Graph cycle_graph(u64 n);

/// k-ary d-cube torus: k^d nodes, +-1 (mod k) links along each digit.
/// For k == 2 the double link degenerates to a single hypercube link.
Graph torus_graph(u64 k, int d);

}  // namespace bfly
