// Static undirected (multi)graph with CSR adjacency.
//
// All network topologies in the library materialize into this representation
// for structural verification (degree profiles, isomorphism checks, and
// contraction into supernode quotient graphs).  Node ids are dense [0, n).
// Parallel edges are first-class: the paper's constructions (swap-link
// doubling, replicated collinear wires) are genuinely multigraphs.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace bfly {

class Graph {
 public:
  Graph() = default;
  explicit Graph(u64 num_nodes) : num_nodes_(num_nodes) {}

  u64 num_nodes() const { return num_nodes_; }
  u64 num_edges() const { return static_cast<u64>(edges_.size()); }

  /// Adds an undirected edge {u, v}. Self-loops and parallel edges allowed.
  void add_edge(u64 u, u64 v);

  /// Reserve capacity for `m` edges.
  void reserve_edges(u64 m) { edges_.reserve(m); }

  /// The raw edge list in insertion order (endpoints canonicalized u <= v).
  std::span<const std::pair<u64, u64>> edges() const { return edges_; }

  /// Builds the CSR adjacency (idempotent; invalidated by add_edge).
  void finalize() const;

  /// Degree of node v (self-loops count twice). Finalizes if needed.
  u64 degree(u64 v) const;

  /// Neighbors of v, sorted ascending (with multiplicity). Finalizes if needed.
  std::span<const u64> neighbors(u64 v) const;

  /// Number of parallel edges between u and v.
  u64 multiplicity(u64 u, u64 v) const;

  /// True iff {u, v} is an edge (any multiplicity).
  bool has_edge(u64 u, u64 v) const { return multiplicity(u, v) > 0; }

  /// Degree histogram: result[d] = number of nodes with degree d.
  std::vector<u64> degree_histogram() const;

  /// Number of connected components (isolated nodes count).
  u64 connected_components() const;

  /// Quotient multigraph: contract node i into cluster labels[i].
  /// Edges inside a cluster become self-loops and are dropped unless
  /// `keep_self_loops` is set.  Parallel inter-cluster edges are preserved.
  Graph contract(std::span<const u64> labels, u64 num_clusters,
                 bool keep_self_loops = false) const;

  /// Structural equality as labeled multigraphs (same node count and same
  /// multiset of edges).
  bool same_as(const Graph& other) const;

 private:
  u64 num_nodes_ = 0;
  std::vector<std::pair<u64, u64>> edges_;
  // CSR cache (mutable: finalize() is logically const).
  mutable bool finalized_ = false;
  mutable std::vector<u64> offsets_;
  mutable std::vector<u64> targets_;
};

}  // namespace bfly
