// Generalized hypercube of Bhuyan & Agrawal [4]: nodes are mixed-radix
// tuples (d_{r-1}, ..., d_0) with d_i in [0, radix_i); two nodes are adjacent
// iff they differ in exactly one digit.  Section 3 of the paper shows that
// contracting each block of the swap-butterfly yields a 2-dimensional
// radix-2^(n/3) generalized hypercube (with link multiplicity 4), which is
// what licenses the per-row / per-column collinear channel wiring.
#pragma once

#include <vector>

#include "topology/graph.hpp"
#include "util/bits.hpp"

namespace bfly {

class GeneralizedHypercube {
 public:
  /// radices[i] is the radix of digit i (least significant digit first).
  explicit GeneralizedHypercube(std::vector<u64> radices, u64 multiplicity = 1);

  u64 num_nodes() const { return num_nodes_; }
  u64 num_digits() const { return static_cast<u64>(radices_.size()); }
  u64 multiplicity() const { return multiplicity_; }
  u64 num_links() const;

  /// Mixed-radix decode of node id (least significant digit first).
  std::vector<u64> digits(u64 id) const;
  u64 encode(std::span<const u64> digits) const;

  Graph graph() const;

 private:
  std::vector<u64> radices_;
  u64 num_nodes_;
  u64 multiplicity_;
};

}  // namespace bfly
