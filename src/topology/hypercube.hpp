// The binary hypercube Q_k: 2^k nodes, edges between addresses at Hamming
// distance one.  Serves as the nucleus of swap networks (Appendix A.1).
#pragma once

#include "topology/graph.hpp"
#include "util/bits.hpp"

namespace bfly {

class Hypercube {
 public:
  explicit Hypercube(int k);

  int dimension() const { return k_; }
  u64 num_nodes() const { return pow2(k_); }
  u64 num_links() const { return static_cast<u64>(k_) * pow2(k_ - 1); }

  /// Neighbor across dimension d.
  u64 neighbor(u64 v, int d) const {
    BFLY_REQUIRE(d >= 0 && d < k_, "hypercube dimension out of range");
    return v ^ pow2(d);
  }

  Graph graph() const;

 private:
  int k_;
};

}  // namespace bfly
