#include "topology/isomorphism.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace bfly {

namespace {
void explain(std::string* why, const std::string& message) {
  if (why != nullptr) *why = message;
}
}  // namespace

bool is_isomorphism(const Graph& a, const Graph& b, std::span<const u64> map, std::string* why) {
  if (a.num_nodes() != b.num_nodes()) {
    explain(why, "node counts differ");
    return false;
  }
  if (a.num_edges() != b.num_edges()) {
    explain(why, "edge counts differ");
    return false;
  }
  if (map.size() != a.num_nodes()) {
    explain(why, "mapping size does not match node count");
    return false;
  }

  std::vector<bool> hit(b.num_nodes(), false);
  for (std::size_t v = 0; v < map.size(); ++v) {
    if (map[v] >= b.num_nodes()) {
      explain(why, "mapping target out of range");
      return false;
    }
    if (hit[map[v]]) {
      std::ostringstream os;
      os << "mapping is not injective at target " << map[v];
      explain(why, os.str());
      return false;
    }
    hit[map[v]] = true;
  }

  std::vector<std::pair<u64, u64>> mapped;
  mapped.reserve(a.num_edges());
  for (const auto& [u, v] : a.edges()) {
    u64 mu = map[u];
    u64 mv = map[v];
    if (mu > mv) std::swap(mu, mv);
    mapped.emplace_back(mu, mv);
  }
  std::vector<std::pair<u64, u64>> expected(b.edges().begin(), b.edges().end());
  std::sort(mapped.begin(), mapped.end());
  std::sort(expected.begin(), expected.end());
  if (mapped != expected) {
    // Locate the first discrepancy for diagnostics.
    for (std::size_t i = 0; i < mapped.size(); ++i) {
      if (mapped[i] != expected[i]) {
        std::ostringstream os;
        os << "edge multiset mismatch at sorted position " << i << ": mapped ("
           << mapped[i].first << "," << mapped[i].second << ") vs expected ("
           << expected[i].first << "," << expected[i].second << ")";
        explain(why, os.str());
        break;
      }
    }
    return false;
  }
  return true;
}

}  // namespace bfly
