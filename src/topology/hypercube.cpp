#include "topology/hypercube.hpp"

namespace bfly {

Hypercube::Hypercube(int k) : k_(k) {
  BFLY_REQUIRE(k >= 1 && k <= 30, "hypercube dimension must be in [1, 30]");
}

Graph Hypercube::graph() const {
  const u64 n = num_nodes();
  Graph g(n);
  g.reserve_edges(num_links());
  for (u64 v = 0; v < n; ++v) {
    for (int d = 0; d < k_; ++d) {
      const u64 w = neighbor(v, d);
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

}  // namespace bfly
