#include "topology/benes.hpp"

namespace bfly {

Benes::Benes(int n) : n_(n) {
  BFLY_REQUIRE(n >= 1 && n <= 20, "Benes dimension must be in [1, 20]");
}

Graph Benes::graph() const {
  Graph g(num_nodes());
  g.reserve_edges(num_links());
  const u64 r = rows();
  for (int t = 0; t < num_transitions(); ++t) {
    const int d = transition_dim(t);
    for (u64 u = 0; u < r; ++u) {
      g.add_edge(node_id(u, t), node_id(u, t + 1));
      g.add_edge(node_id(u, t), node_id(u ^ pow2(d), t + 1));
    }
  }
  return g;
}

namespace {

/// One recursion level of the looping algorithm: choose, for every source of
/// the (sub)permutation, which half (bit value after the outer transition)
/// its packet takes, such that source pairs and destination pairs split.
/// perm has even size M; out_half[src] in {0, 1}.
void color_halves(std::span<const u64> perm, std::vector<int>* out_half) {
  const u64 m = perm.size();
  std::vector<u64> inverse(m);
  for (u64 s = 0; s < m; ++s) inverse[perm[s]] = s;
  out_half->assign(m, -1);
  for (u64 seed = 0; seed < m; ++seed) {
    if ((*out_half)[seed] != -1) continue;
    // Alternate: fix seed to half 0, then follow the constraint cycle:
    // source-pair partner takes the other half; the source mapping to the
    // destination-pair partner of our destination must also take the other
    // half, and so on until the loop closes.
    u64 src = seed;
    int half = 0;
    while ((*out_half)[src] == -1) {
      (*out_half)[src] = half;
      const u64 partner = src ^ 1;          // source pair constraint
      (*out_half)[partner] = 1 - half;
      const u64 dst_partner = perm[partner] ^ 1;  // destination pair constraint
      src = inverse[dst_partner];
      half = 1 - (*out_half)[partner];  // equals `half`; kept for clarity
    }
  }
}

/// Recursive path construction.  `perm` is the permutation over the reduced
/// index space (size M = 2^{n-j}); `paths[i]` receives the reduced row after
/// each of the 2(n-j) transitions of the sub-network.
void route_rec(std::span<const u64> perm, std::vector<std::vector<u64>>* paths) {
  const u64 m = perm.size();
  if (m == 1) {
    (*paths)[0].clear();
    return;
  }
  std::vector<int> half;
  color_halves(perm, &half);

  // Sub-permutations over M/2 indices (the reduced row >> 1), one per half.
  std::vector<u64> sub_perm[2] = {std::vector<u64>(m / 2), std::vector<u64>(m / 2)};
  std::vector<u64> sub_src[2] = {std::vector<u64>(m / 2), std::vector<u64>(m / 2)};
  for (u64 s = 0; s < m; ++s) {
    const int b = half[s];
    sub_perm[b][s >> 1] = perm[s] >> 1;
    sub_src[b][s >> 1] = s;
  }

  std::vector<std::vector<u64>> sub_paths[2];
  for (int b = 0; b < 2; ++b) {
    sub_paths[b].assign(m / 2, {});
    route_rec(sub_perm[b], &sub_paths[b]);
  }

  // Assemble: src --(outer in, set bit0 = half)--> sub-network on bits >= 1
  // --(outer out, set bit0 = dst bit0)--> dst.
  for (u64 s = 0; s < m; ++s) {
    const int b = half[s];
    const u64 entry = ((s >> 1) << 1) | static_cast<u64>(b);
    std::vector<u64>& path = (*paths)[s];
    path.clear();
    path.push_back(entry);
    for (const u64 sub_row : sub_paths[b][s >> 1]) {
      path.push_back((sub_row << 1) | static_cast<u64>(b));
    }
    path.push_back(perm[s]);
  }
}

}  // namespace

std::vector<std::vector<u64>> Benes::route_permutation(std::span<const u64> perm) const {
  const u64 r = rows();
  BFLY_REQUIRE(perm.size() == r, "permutation must cover all rows");
  std::vector<bool> seen(r, false);
  for (const u64 d : perm) {
    BFLY_REQUIRE(d < r, "permutation target out of range");
    BFLY_REQUIRE(!seen[d], "permutation must be a bijection");
    seen[d] = true;
  }

  std::vector<std::vector<u64>> inner(r);
  route_rec(perm, &inner);

  // Prepend the source stage-0 rows.
  std::vector<std::vector<u64>> paths(r);
  for (u64 s = 0; s < r; ++s) {
    paths[s].reserve(static_cast<std::size_t>(num_stages()));
    paths[s].push_back(s);
    for (const u64 row : inner[s]) paths[s].push_back(row);
    BFLY_CHECK(paths[s].size() == static_cast<std::size_t>(num_stages()),
               "path must visit every stage exactly once");
  }
  return paths;
}

}  // namespace bfly
