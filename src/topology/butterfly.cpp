#include "topology/butterfly.hpp"

namespace bfly {

Butterfly::Butterfly(int n) : n_(n), rows_(0) {
  BFLY_REQUIRE(n >= 1 && n <= 30, "butterfly dimension must be in [1, 30]");
  rows_ = pow2(n_);
}

Graph Butterfly::graph() const {
  Graph g(num_nodes());
  g.reserve_edges(num_links());
  for (int s = 0; s < n_; ++s) {
    for (u64 u = 0; u < rows_; ++u) {
      g.add_edge(node_id(u, s), node_id(straight_target(u, s), s + 1));
      g.add_edge(node_id(u, s), node_id(cross_target(u, s), s + 1));
    }
  }
  return g;
}

}  // namespace bfly
