#include "topology/swap_network.hpp"

#include <numeric>

namespace bfly {

int validate_swap_parameters(std::span<const int> k) {
  BFLY_REQUIRE(!k.empty(), "swap network needs at least one level");
  BFLY_REQUIRE(k[0] >= 1, "k_1 must be at least 1");
  int n = k[0];
  for (std::size_t i = 1; i < k.size(); ++i) {
    BFLY_REQUIRE(k[i] >= 1, "all k_i must be at least 1");
    BFLY_REQUIRE(k[i] <= n, "k_i must not exceed n_{i-1} (swapped bit ranges must be disjoint)");
    n += k[i];
  }
  BFLY_REQUIRE(n <= 30, "total dimension n_l must be at most 30");
  return n;
}

SwapNetwork::SwapNetwork(std::vector<int> k) : k_(std::move(k)), n_(0) {
  n_ = validate_swap_parameters(k_);
  prefix_.resize(k_.size() + 1, 0);
  for (std::size_t i = 0; i < k_.size(); ++i) prefix_[i + 1] = prefix_[i] + k_[i];
}

Graph SwapNetwork::graph() const {
  const u64 nodes = num_nodes();
  Graph g(nodes);
  const int k1 = k_[0];
  for (u64 v = 0; v < nodes; ++v) {
    // Nucleus (group 1) hypercube links.
    for (int d = 0; d < k1; ++d) {
      const u64 w = v ^ pow2(d);
      if (v < w) g.add_edge(v, w);
    }
    // Level-i inter-cluster links.
    for (int i = 2; i <= levels(); ++i) {
      const u64 w = sigma(i, v);
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

}  // namespace bfly
