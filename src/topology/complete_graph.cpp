#include "topology/complete_graph.hpp"

namespace bfly {

CompleteGraph::CompleteGraph(u64 n, u64 multiplicity) : n_(n), multiplicity_(multiplicity) {
  BFLY_REQUIRE(n >= 1, "complete graph needs at least one node");
  BFLY_REQUIRE(multiplicity >= 1, "multiplicity must be positive");
}

Graph CompleteGraph::graph() const {
  Graph g(n_);
  g.reserve_edges(num_links());
  for (u64 u = 0; u < n_; ++u) {
    for (u64 v = u + 1; v < n_; ++v) {
      for (u64 r = 0; r < multiplicity_; ++r) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace bfly
