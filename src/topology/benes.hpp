// Benes networks: the rearrangeable non-blocking fabric the paper's
// introduction cites alongside butterflies ("many network switches/routers
// are based on butterfly, Benes, or related interconnection topologies").
//
// We realize the Benes network as two back-to-back butterflies sharing the
// middle stage: 2n+1 stages of 2^n rows, where transition t flips bit t for
// t < n (ascend) and bit 2n-1-t for t >= n (descend).  Its layout is two
// mirrored copies of the Section 3 butterfly layout; its defining property
// -- any permutation of the 2^n inputs routes along node-disjoint paths --
// is implemented by the classic looping (2-coloring) algorithm and verified
// by tests on every path.
#pragma once

#include <span>
#include <vector>

#include "topology/graph.hpp"
#include "util/bits.hpp"

namespace bfly {

class Benes {
 public:
  explicit Benes(int n);

  int dimension() const { return n_; }
  u64 rows() const { return pow2(n_); }
  int num_stages() const { return 2 * n_ + 1; }
  int num_transitions() const { return 2 * n_; }
  u64 num_nodes() const { return rows() * static_cast<u64>(num_stages()); }
  u64 num_links() const { return rows() * 2 * static_cast<u64>(num_transitions()); }

  /// The bit flipped by transition t (0-based): ascend then descend.
  int transition_dim(int t) const {
    BFLY_REQUIRE(t >= 0 && t < num_transitions(), "transition out of range");
    return t < n_ ? t : 2 * n_ - 1 - t;
  }

  u64 node_id(u64 row, int stage) const {
    BFLY_REQUIRE(row < rows() && stage >= 0 && stage < num_stages(), "node out of range");
    return static_cast<u64>(stage) * rows() + row;
  }

  Graph graph() const;

  /// Routes the permutation `perm` (perm[src] = dst, a bijection on rows)
  /// with the looping algorithm.  Returns one path per source: the row
  /// occupied at each of the 2n+1 stages.  The paths are node-disjoint per
  /// stage (hence link-disjoint), which the tests verify.
  std::vector<std::vector<u64>> route_permutation(std::span<const u64> perm) const;

 private:
  int n_;
};

}  // namespace bfly
