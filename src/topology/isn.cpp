#include "topology/isn.hpp"

namespace bfly {

IndirectSwapNetwork::IndirectSwapNetwork(std::vector<int> k)
    : k_(k), sn_(std::move(k)), n_(sn_.dimension()) {
  // Level 1: exchange over nucleus dims 0..k_1-1.
  for (int j = 0; j < k_[0]; ++j) {
    steps_.push_back({IsnStep::Kind::kExchange, j});
  }
  // Levels 2..l: swap forwarding, then exchanges over dims 0..k_i-1.
  for (int i = 2; i <= levels(); ++i) {
    steps_.push_back({IsnStep::Kind::kSwap, i});
    for (int j = 0; j < k_[static_cast<std::size_t>(i - 1)]; ++j) {
      steps_.push_back({IsnStep::Kind::kExchange, j});
    }
  }
  BFLY_CHECK(static_cast<int>(steps_.size()) == n_ + levels() - 1,
             "ISN must have n_l + l - 1 steps");
}

IndirectSwapNetwork::Outgoing IndirectSwapNetwork::outgoing(u64 row, int step) const {
  BFLY_REQUIRE(step >= 1 && step <= num_steps(), "ISN step out of range");
  BFLY_REQUIRE(row < rows(), "ISN row out of range");
  const IsnStep& st = steps_[static_cast<std::size_t>(step - 1)];
  Outgoing out;
  if (st.kind == IsnStep::Kind::kExchange) {
    out.straight = row;
    out.cross = row ^ pow2(st.param);
  } else {
    out.is_swap = true;
    out.swap = sigma(st.param, row);
  }
  return out;
}

Graph IndirectSwapNetwork::graph() const {
  Graph g(num_nodes());
  g.reserve_edges(num_links());
  const u64 r = rows();
  for (int t = 1; t <= num_steps(); ++t) {
    for (u64 u = 0; u < r; ++u) {
      const Outgoing out = outgoing(u, t);
      const u64 from = node_id(u, t - 1);
      if (out.is_swap) {
        g.add_edge(from, node_id(out.swap, t));
      } else {
        g.add_edge(from, node_id(out.straight, t));
        g.add_edge(from, node_id(out.cross, t));
      }
    }
  }
  return g;
}

u64 IndirectSwapNetwork::num_links() const {
  u64 links = 0;
  for (const IsnStep& st : steps_) {
    links += (st.kind == IsnStep::Kind::kExchange) ? 2 * rows() : rows();
  }
  return links;
}

}  // namespace bfly
