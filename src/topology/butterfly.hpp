// The n-dimensional butterfly network B_n.
//
// Nodes are pairs (row, stage) with row in [0, 2^n) and stage in [0, n].
// Between stage s and s+1 every row u has a *straight* link to (u, s+1) and a
// *cross* link to (u XOR 2^s, s+1) -- the LSB-first "ascend" convention used
// by the paper's FFT argument (Sec. 2.2).  B_n has (n+1)*2^n nodes and
// n*2^(n+1) links.
#pragma once

#include <vector>

#include "topology/graph.hpp"
#include "util/bits.hpp"

namespace bfly {

class Butterfly {
 public:
  /// Requires 1 <= n <= 30 (node ids must fit comfortably in u64).
  explicit Butterfly(int n);

  int dimension() const { return n_; }
  u64 rows() const { return rows_; }
  int num_stages() const { return n_ + 1; }
  u64 num_nodes() const { return rows_ * static_cast<u64>(n_ + 1); }
  u64 num_links() const { return static_cast<u64>(n_) * rows_ * 2; }

  /// Dense node id; stage-major so each stage is a contiguous block.
  u64 node_id(u64 row, int stage) const {
    BFLY_REQUIRE(row < rows_ && stage >= 0 && stage <= n_, "butterfly node out of range");
    return static_cast<u64>(stage) * rows_ + row;
  }
  u64 row_of(u64 id) const { return id % rows_; }
  int stage_of(u64 id) const { return static_cast<int>(id / rows_); }

  /// Endpoints of the two links leaving (row, stage) toward stage+1.
  u64 straight_target(u64 row, int stage) const {
    BFLY_REQUIRE(stage < n_, "no links beyond last stage");
    (void)stage;
    return row;
  }
  u64 cross_target(u64 row, int stage) const {
    BFLY_REQUIRE(stage < n_, "no links beyond last stage");
    return row ^ pow2(stage);
  }

  /// Materializes the full graph (stage-major node ids).
  Graph graph() const;

 private:
  int n_;
  u64 rows_;
};

}  // namespace bfly
