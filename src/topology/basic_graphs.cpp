#include "topology/basic_graphs.hpp"

namespace bfly {

Graph path_graph(u64 n) {
  BFLY_REQUIRE(n >= 1, "path needs at least one node");
  Graph g(n);
  for (u64 i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle_graph(u64 n) {
  BFLY_REQUIRE(n >= 3, "cycle needs at least three nodes");
  Graph g(n);
  for (u64 i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

Graph torus_graph(u64 k, int d) {
  BFLY_REQUIRE(k >= 2 && d >= 1, "torus needs radix >= 2 and dimension >= 1");
  u64 nodes = 1;
  for (int i = 0; i < d; ++i) nodes *= k;
  Graph g(nodes);
  for (u64 v = 0; v < nodes; ++v) {
    u64 stride = 1;
    for (int digit = 0; digit < d; ++digit) {
      const u64 x = (v / stride) % k;
      // +1 neighbor only (each undirected link added once); for k == 2 the
      // +1 and -1 neighbors coincide, giving the hypercube link.
      const u64 w = v - x * stride + ((x + 1) % k) * stride;
      if (k == 2) {
        if (v < w) g.add_edge(v, w);
      } else {
        g.add_edge(v, w);
      }
      stride *= k;
    }
  }
  return g;
}

}  // namespace bfly
