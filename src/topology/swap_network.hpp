// Swap networks SN(l, Q_k1) and hierarchical swap networks (Appendix A.1).
//
// A node address has n_l = k_1 + ... + k_l bits, partitioned into groups; the
// i-th group (from the right, 1-based) holds k_i bits at positions
// [n_{i-1}, n_i).  Links:
//   (a) nucleus links: addresses differing in exactly one bit of group 1;
//   (b) level-i inter-cluster links (i >= 2): u -- sigma_i(u), where sigma_i
//       swaps group i with the rightmost k_i bits.  sigma_i is an involution;
//       fixed points (group i equal to the low k_i bits) yield no link.
// Validity requires k_i <= n_{i-1} for all i >= 2 so the swapped ranges are
// disjoint.  HSN(l, Q_k) is the special case k_1 = ... = k_l.
#pragma once

#include <vector>

#include "topology/graph.hpp"
#include "util/bits.hpp"

namespace bfly {

/// Validates a swap-network / ISN parameter vector (k_1, ..., k_l).
/// Throws InvalidArgument when infeasible; returns total bits n_l otherwise.
int validate_swap_parameters(std::span<const int> k);

class SwapNetwork {
 public:
  /// k[i-1] = k_i.  Requires l >= 1, k_1 >= 1, and k_i <= n_{i-1} for i >= 2.
  explicit SwapNetwork(std::vector<int> k);

  int levels() const { return static_cast<int>(k_.size()); }
  int dimension() const { return n_; }
  u64 num_nodes() const { return pow2(n_); }
  const std::vector<int>& group_sizes() const { return k_; }

  /// n_i = k_1 + ... + k_i (prefix[0] = 0 = n_0).
  int prefix(int i) const {
    BFLY_REQUIRE(i >= 0 && i <= levels(), "prefix level out of range");
    return prefix_[static_cast<std::size_t>(i)];
  }

  /// The level-i inter-cluster permutation (i in [2, l]).
  u64 sigma(int level, u64 node) const {
    BFLY_REQUIRE(level >= 2 && level <= levels(), "sigma level out of range");
    return swap_bit_groups(node, prefix(level - 1), k_[static_cast<std::size_t>(level - 1)]);
  }

  Graph graph() const;

 private:
  std::vector<int> k_;
  std::vector<int> prefix_;
  int n_;
};

}  // namespace bfly
