// Swap-butterflies: the ISN-to-butterfly transformation of Section 2.2.
//
// Take the ISN derived from SN(l, Q_k1).  Each swap stage is *bypassed*: the
// swap links are doubled and reconnected through the removed stage to the two
// links (straight and cross over local dim 0) that followed it.  The result
// has n_l + 1 stages of 2^{n_l} rows and is an automorphism (i.e., a relabeled
// copy) of the butterfly B_{n_l}:
//
//   * stage transition s -> s+1 inside level i (local dim j = s - n_{i-1} > 0):
//       straight (u,s)--(u,s+1), cross (u,s)--(u xor 2^j, s+1)
//   * at a level boundary s = n_{i-1} (i >= 2), the transition fuses the
//     level-i swap with the first exchange of level i:
//       straight-kind (u,s)--(sigma_i(u), s+1),
//       cross-kind    (u,s)--(sigma_i(u) xor 1, s+1)
//
// The explicit isomorphism onto B_{n_l} maps (v, s) to (rho_s(v), s) where
// rho_s = sigma_2 o sigma_3 o ... o sigma_{i(s)}  (innermost applied first)
// and i(s) counts the boundaries strictly before stage s.  This class exposes
// the transformation, the row maps rho_s, and the full node mapping, which
// tests verify edge-by-edge against an independently constructed B_{n_l}.
#pragma once

#include <vector>

#include "topology/butterfly.hpp"
#include "topology/graph.hpp"
#include "topology/isn.hpp"

namespace bfly {

class SwapButterfly {
 public:
  explicit SwapButterfly(std::vector<int> k);

  int levels() const { return static_cast<int>(k_.size()); }
  int dimension() const { return n_; }
  u64 rows() const { return pow2(n_); }
  int num_stages() const { return n_ + 1; }
  u64 num_nodes() const { return rows() * static_cast<u64>(num_stages()); }
  u64 num_links() const { return static_cast<u64>(n_) * rows() * 2; }
  const std::vector<int>& group_sizes() const { return k_; }
  int prefix(int i) const { return isn_.prefix(i); }
  const IndirectSwapNetwork& isn() const { return isn_; }

  u64 node_id(u64 row, int stage) const {
    BFLY_REQUIRE(row < rows() && stage >= 0 && stage <= n_, "swap-butterfly node out of range");
    return static_cast<u64>(stage) * rows() + row;
  }
  u64 row_of(u64 id) const { return id % rows(); }
  int stage_of(u64 id) const { return static_cast<int>(id / rows()); }

  /// The level whose exchange phase realizes transition s -> s+1 (s in [0,n)).
  int level_of_transition(int s) const;

  /// True iff transition s -> s+1 crosses a level boundary, i.e. its links
  /// are doubled swap links of the underlying ISN (these are exactly the
  /// inter-module links of the packaging scheme of Section 2.3).
  bool is_swap_transition(int s) const { return level_of_transition(s) >= 2 && s == prefix(level_of_transition(s) - 1); }

  /// Targets in stage s+1 of the two links leaving (row, s).
  u64 straight_target(u64 row, int s) const;
  u64 cross_target(u64 row, int s) const;

  /// Row map rho_s realizing the isomorphism onto B_{n_l} at stage s.
  u64 rho(int stage, u64 row) const;

  /// Full node mapping onto an identically-sized Butterfly(n_l):
  /// result[node_id(v, s)] = Butterfly::node_id(rho_s(v), s).
  std::vector<u64> isomorphism_to_butterfly() const;

  Graph graph() const;

 private:
  std::vector<int> k_;
  IndirectSwapNetwork isn_;
  int n_;
};

}  // namespace bfly
