// Multigraph isomorphism *verification* (not search): given an explicit node
// mapping, check that it is a bijection carrying the edge multiset of `a`
// exactly onto the edge multiset of `b`.  The paper's Section 2.2 claim --
// the swap-butterfly is an automorphism of B_n -- reduces to this check with
// the constructive mapping rho.
#pragma once

#include <span>
#include <string>

#include "topology/graph.hpp"

namespace bfly {

/// Returns true iff `map` (node of `a` -> node of `b`) is an isomorphism of
/// labeled multigraphs.  On failure, *why (if non-null) describes the first
/// violation found.
bool is_isomorphism(const Graph& a, const Graph& b, std::span<const u64> map,
                    std::string* why = nullptr);

}  // namespace bfly
