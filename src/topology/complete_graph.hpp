// Complete graphs K_N and complete multigraphs (every pair joined by a fixed
// number of parallel links).  The collinear layout of Appendix B lays these
// out; the inter-block wiring of Section 3 is a complete multigraph with
// multiplicity 2^(2+k1-k2).
#pragma once

#include "topology/graph.hpp"
#include "util/bits.hpp"

namespace bfly {

class CompleteGraph {
 public:
  /// N nodes, `multiplicity` parallel links per unordered pair (default 1).
  explicit CompleteGraph(u64 n, u64 multiplicity = 1);

  u64 num_nodes() const { return n_; }
  u64 multiplicity() const { return multiplicity_; }
  u64 num_links() const { return multiplicity_ * n_ * (n_ - 1) / 2; }

  /// Bisection width of K_N (paper, Appendix B): floor(N^2/4) links cross any
  /// balanced cut, times the multiplicity.
  u64 bisection_width() const { return multiplicity_ * ((n_ * n_) / 4); }

  Graph graph() const;

 private:
  u64 n_;
  u64 multiplicity_;
};

}  // namespace bfly
