#include "packaging/hierarchical.hpp"

#include <algorithm>

#include "layout/collinear.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfly {

namespace {

/// Splits n into l = ceil(n/k1) groups: k1 first, then k1-sized groups, with
/// whatever remains as the last group.  Returns empty if infeasible.
std::vector<int> split_with_nucleus(int n, int k1) {
  std::vector<int> k{k1};
  int remaining = n - k1;
  while (remaining > 0) {
    const int next = std::min(k1, remaining);
    k.push_back(next);
    remaining -= next;
  }
  // Feasibility (k_i <= n_{i-1}) holds automatically: every k_i <= k_1.
  return k;
}

u64 fold_positions(u64 logical, int layers, bool horizontal) {
  const u64 groups = layers % 2 == 0 ? static_cast<u64>(layers) / 2
                     : horizontal    ? (static_cast<u64>(layers) + 1) / 2
                                     : (static_cast<u64>(layers) - 1) / 2;
  return static_cast<u64>(ceil_div(static_cast<i64>(logical), static_cast<i64>(groups)));
}

}  // namespace

i64 HierarchicalPlan::board_side(int layers) const {
  // Square boards arise for k2 == k3 (e.g. the paper's 8x8 example); for the
  // general case this returns the larger of the two dimensions.
  BFLY_REQUIRE(layers >= 2, "at least two board wiring layers required");
  const i64 row_positions =
      static_cast<i64>(fold_positions(logical_tracks_per_channel, layers, /*horizontal=*/true));
  const i64 col_positions =
      grid_rows <= 1
          ? 0
          : static_cast<i64>(fold_positions(logical_tracks_per_channel, layers, false));
  const i64 width = static_cast<i64>(grid_cols) * (chip_side + col_positions);
  const i64 height = static_cast<i64>(grid_rows) * (chip_side + row_positions);
  return std::max(width, height);
}

i64 HierarchicalPlan::board_area(int layers) const {
  BFLY_REQUIRE(layers >= 2, "at least two board wiring layers required");
  const i64 row_positions =
      static_cast<i64>(fold_positions(logical_tracks_per_channel, layers, /*horizontal=*/true));
  const i64 col_positions =
      grid_rows <= 1
          ? 0
          : static_cast<i64>(fold_positions(logical_tracks_per_channel, layers, false));
  const i64 width = static_cast<i64>(grid_cols) * (chip_side + col_positions);
  const i64 height = static_cast<i64>(grid_rows) * (chip_side + row_positions);
  return width * height;
}

i64 HierarchicalPlan::max_board_wire(int layers) const {
  // The longest board wire spans a full chip row (or column).
  return board_side(layers);
}

HierarchicalPlan plan_hierarchical(int n, const ChipConstraints& constraints) {
  BFLY_REQUIRE(n >= 2, "hierarchical planning needs dimension >= 2");
  BFLY_TRACE_SCOPE("packaging.plan_hierarchical");
  for (int k1 = n - 1; k1 >= 1; --k1) {
    const std::vector<int> k = split_with_nucleus(n, k1);
    const SwapButterfly sb(k);
    const Partition partition = row_block_partition(sb, k1);
    const PartitionStats stats = evaluate_partition(sb.graph(), partition);
    if (stats.max_offmodule_links_per_module > constraints.max_offchip_links) continue;
    if (k.size() >= 2) {
      // The chip edge must host the channel terminals; otherwise a smaller
      // nucleus (fewer, thinner channels) is needed.
      const u64 mult = pow2(2 + k1 - k[1]);
      const u64 incident = mult * (pow2(k[1]) - 1);
      const u64 per_edge = constraints.split_terminals
                               ? static_cast<u64>(ceil_div(static_cast<i64>(incident), 2))
                               : incident;
      if (per_edge > static_cast<u64>(constraints.chip_side)) continue;
    }

    HierarchicalPlan plan;
    plan.n = n;
    plan.k = k;
    plan.rows_log2 = k1;
    plan.nodes_per_chip = pow2(k1) * static_cast<u64>(n + 1);
    plan.num_chips = stats.num_modules;
    plan.offchip_links_per_chip = stats.max_offmodule_links_per_module;
    const int k2 = k.size() >= 2 ? k[1] : 0;
    const int k3 = k.size() >= 3 ? k[2] : 0;
    plan.grid_cols = pow2(k2);
    plan.grid_rows = pow2(k3);
    plan.chip_side = constraints.chip_side;

    // Collinear K_{2^k2} channel with replication 2^{2+k1-k2}; the paper's
    // optimization moves the type-1 (adjacent-chip) class into the gap
    // between the chips, saving one class of tracks.
    if (k2 > 0) {
      const u64 mult = pow2(2 + k1 - k2);
      const u64 full = collinear_track_count(pow2(k2), mult);
      plan.logical_tracks_per_channel = full - mult;
      const u64 incident = mult * (pow2(k2) - 1);
      plan.terminals_per_edge = constraints.split_terminals
                                    ? static_cast<u64>(ceil_div(static_cast<i64>(incident), 2))
                                    : incident;
    }
    obs::set(obs::get_gauge("packaging.num_chips"), static_cast<double>(plan.num_chips));
    obs::set(obs::get_gauge("packaging.offchip_links_per_chip"),
             static_cast<double>(plan.offchip_links_per_chip));
    obs::set(obs::get_gauge("packaging.tracks_per_channel"),
             static_cast<double>(plan.logical_tracks_per_channel));
    obs::set(obs::get_gauge("packaging.nodes_per_chip"),
             static_cast<double>(plan.nodes_per_chip));
    return plan;
  }
  throw InvalidArgument("no row-block partition satisfies the pin budget");
}

u64 naive_chip_count(int n, u64 max_offchip_links) {
  const Butterfly bf(n);
  const u64 rows = max_naive_rows_within_pins(bf, max_offchip_links);
  BFLY_REQUIRE(rows >= 1, "pin budget too small for even one row per chip");
  return static_cast<u64>(ceil_div(static_cast<i64>(bf.rows()), static_cast<i64>(rows)));
}

u64 naive_chip_count_paper_estimate(int n, u64 max_offchip_links) {
  const u64 rows = max_offchip_links / (2 * static_cast<u64>(n + 1));
  BFLY_REQUIRE(rows >= 1, "pin budget too small for even one row per chip");
  return static_cast<u64>(ceil_div(static_cast<i64>(pow2(n)), static_cast<i64>(rows)));
}

}  // namespace bfly
