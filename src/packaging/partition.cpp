#include "packaging/partition.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfly {

PartitionStats evaluate_partition(const Graph& graph, const Partition& partition) {
  BFLY_REQUIRE(partition.module_of.size() == graph.num_nodes(),
               "partition must label every node");
  PartitionStats stats;
  stats.num_modules = partition.num_modules;

  std::vector<u64> nodes_per_module(partition.num_modules, 0);
  for (const u64 m : partition.module_of) {
    BFLY_REQUIRE(m < partition.num_modules, "module label out of range");
    ++nodes_per_module[m];
  }
  stats.max_nodes_per_module =
      nodes_per_module.empty() ? 0 : *std::max_element(nodes_per_module.begin(), nodes_per_module.end());
  stats.min_nodes_per_module =
      nodes_per_module.empty() ? 0 : *std::min_element(nodes_per_module.begin(), nodes_per_module.end());

  std::vector<u64> offlinks_per_module(partition.num_modules, 0);
  for (const auto& [a, b] : graph.edges()) {
    const u64 ma = partition.module_of[a];
    const u64 mb = partition.module_of[b];
    if (ma == mb) continue;
    ++stats.total_offmodule_links;
    ++offlinks_per_module[ma];
    ++offlinks_per_module[mb];
  }
  stats.max_offmodule_links_per_module =
      offlinks_per_module.empty()
          ? 0
          : *std::max_element(offlinks_per_module.begin(), offlinks_per_module.end());
  if (graph.num_nodes() > 0) {
    stats.avg_offmodule_links_per_node =
        2.0 * static_cast<double>(stats.total_offmodule_links) /
        static_cast<double>(graph.num_nodes());
  }
  return stats;
}

Partition row_block_partition(const SwapButterfly& sb, int rows_log2) {
  BFLY_REQUIRE(rows_log2 >= 0 && rows_log2 <= sb.dimension(),
               "rows per module must divide the row count");
  Partition p;
  p.num_modules = sb.rows() >> rows_log2;
  p.module_of.resize(sb.num_nodes());
  for (u64 id = 0; id < sb.num_nodes(); ++id) {
    p.module_of[id] = sb.row_of(id) >> rows_log2;
  }
  return p;
}

Partition nucleus_partition(const SwapButterfly& sb) {
  Partition p;
  p.module_of.resize(sb.num_nodes());
  const int l = sb.levels();
  // Per level i: modules are (row >> k_i) groups.  Module ids are laid out
  // level-major.
  std::vector<u64> level_base(static_cast<std::size_t>(l) + 1, 0);
  for (int i = 1; i <= l; ++i) {
    const int ki = sb.group_sizes()[static_cast<std::size_t>(i - 1)];
    level_base[static_cast<std::size_t>(i)] =
        level_base[static_cast<std::size_t>(i - 1)] + (sb.rows() >> ki);
  }
  p.num_modules = level_base[static_cast<std::size_t>(l)];

  for (int s = 0; s <= sb.dimension(); ++s) {
    // Stage s belongs to the level whose exchange phase ends at n_i >= s;
    // boundary stages n_{i-1} stay with level i-1 (their outgoing links are
    // the doubled swap links, which become the off-module links).
    int level = 1;
    while (s > sb.prefix(level)) ++level;
    const int ki = sb.group_sizes()[static_cast<std::size_t>(level - 1)];
    for (u64 u = 0; u < sb.rows(); ++u) {
      p.module_of[sb.node_id(u, s)] =
          level_base[static_cast<std::size_t>(level - 1)] + (u >> ki);
    }
  }
  return p;
}

Partition naive_row_partition(const Butterfly& bf, u64 rows_per_module) {
  BFLY_REQUIRE(rows_per_module >= 1, "rows per module must be positive");
  Partition p;
  p.num_modules = static_cast<u64>(
      ceil_div(static_cast<i64>(bf.rows()), static_cast<i64>(rows_per_module)));
  p.module_of.resize(bf.num_nodes());
  for (u64 id = 0; id < bf.num_nodes(); ++id) {
    p.module_of[id] = bf.row_of(id) / rows_per_module;
  }
  return p;
}

double predicted_offmodule_links_per_node(int l, int k1, int n) {
  const double rows = static_cast<double>(pow2(k1));
  return 4.0 * (l - 1) * (rows - 1) / ((n + 1) * rows);
}

u64 theorem21_max_nodes(int k1) { return pow2(k1) * static_cast<u64>(k1 + 1); }

u64 theorem21_max_offlinks(int k1) { return pow2(k1 + 2); }

std::vector<PackagingLevel> multilevel_packaging(const SwapButterfly& sb) {
  BFLY_TRACE_SCOPE("packaging.multilevel");
  const Graph g = sb.graph();
  const int n = sb.dimension();
  std::vector<PackagingLevel> out;
  for (int j = 1; j < sb.levels(); ++j) {
    PackagingLevel level;
    level.level = j;
    const int nj = sb.prefix(j);
    level.rows_per_module = pow2(nj);
    level.stats = evaluate_partition(g, row_block_partition(sb, nj));
    double sum = 0.0;
    for (int i = j + 1; i <= sb.levels(); ++i) {
      sum += 1.0 - 1.0 / static_cast<double>(
                             pow2(sb.group_sizes()[static_cast<std::size_t>(i - 1)]));
    }
    level.predicted_avg = 4.0 * sum / (n + 1);
    // The paper's Section 5 per-level numbers, exported as gauges.
    const std::string prefix = "packaging.level" + std::to_string(j);
    obs::set(obs::get_gauge(prefix + ".offmodule_links"),
             static_cast<double>(level.stats.max_offmodule_links_per_module));
    obs::set(obs::get_gauge(prefix + ".avg_offmodule_links_per_node"),
             level.stats.avg_offmodule_links_per_node);
    obs::set(obs::get_gauge(prefix + ".num_modules"),
             static_cast<double>(level.stats.num_modules));
    out.push_back(std::move(level));
  }
  return out;
}

u64 max_naive_rows_within_pins(const Butterfly& bf, u64 max_pins) {
  const Graph g = bf.graph();
  u64 best = 0;
  for (u64 q = 1; q <= bf.rows(); ++q) {
    const Partition p = naive_row_partition(bf, q);
    const PartitionStats stats = evaluate_partition(g, p);
    if (stats.max_offmodule_links_per_module <= max_pins) {
      best = q;
    } else if (best > 0) {
      // Off-module pressure grows with q once q exceeds 1; stop at the first
      // failure after a success.
      break;
    }
  }
  return best;
}

}  // namespace bfly
