// The hierarchical layout model (Section 5): chips on a board, boards in a
// cabinet, each level with its own pin / area / wire-width constraints.
//
// The planner reproduces the paper's worked example: a 9-dimensional
// butterfly on pin-limited chips (64 off-chip links, side 20, unit-width
// level-2 links) packs 8 consecutive swap-butterfly rows (80 nodes) per
// chip, uses 64 chips in an 8x8 grid, wires chip rows/columns with the
// collinear K_8 layout with quadruple links (64 tracks, 60 after moving
// neighbor links into the gap between their chips), and needs board area
// 409.6K with 2 wiring layers, 160K with 4, and 78.4K with 8.  The naive
// consecutive-row packing fits only 3 rows per chip and needs 171 chips.
#pragma once

#include <vector>

#include "packaging/partition.hpp"
#include "topology/swap_butterfly.hpp"

namespace bfly {

struct ChipConstraints {
  u64 max_offchip_links = 64;
  i64 chip_side = 20;
  /// Split each chip's channel terminals across opposite edges (the paper's
  /// halving trick that lets a chip of side 16 terminate 28 row links).
  bool split_terminals = true;
};

struct HierarchicalPlan {
  int n = 0;                   ///< butterfly dimension
  std::vector<int> k;          ///< ISN parameters used for the partition
  int rows_log2 = 0;           ///< log2(rows per chip)
  u64 nodes_per_chip = 0;
  u64 num_chips = 0;
  u64 offchip_links_per_chip = 0;  ///< maximum over chips (counted exactly)
  u64 grid_rows = 0;               ///< chip grid (2^k3 x 2^k2)
  u64 grid_cols = 0;
  u64 logical_tracks_per_channel = 0;  ///< collinear K tracks, after the
                                       ///< neighbor-link optimization
  i64 chip_side = 0;
  u64 terminals_per_edge = 0;  ///< channel terminals a chip edge must host

  /// Board side and area when L wiring layers are available on the board.
  i64 board_side(int layers) const;
  i64 board_area(int layers) const;
  /// Longest board-level wire (a full row/column span).
  i64 max_board_wire(int layers) const;
};

/// Plans a two-level (chip + board) package of an n-dimensional butterfly:
/// picks the largest k_1 whose row-block partition respects the pin budget,
/// splitting n into l = ceil(n/k_1) groups.
HierarchicalPlan plan_hierarchical(int n, const ChipConstraints& constraints);

/// Chips required by the naive consecutive-row packing under the same pin
/// budget, with off-chip links counted exactly on the graph.  (Exact
/// counting fits 4 aligned rows of B_9 into 64 pins -> 128 chips.)
u64 naive_chip_count(int n, u64 max_offchip_links);

/// The paper's coarser estimate for the same quantity: every node is charged
/// ~2 off-module links, so at most floor(pins / (2(n+1))) rows fit -- 3 rows
/// and ceil(512/3) = 171 chips for the Section 5 example.
u64 naive_chip_count_paper_estimate(int n, u64 max_offchip_links);

}  // namespace bfly
