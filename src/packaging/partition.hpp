// Partitioning and packaging of butterfly networks (Section 2.3).
//
// A partition assigns every network node to a module (chip / board / MCM).
// The figure of merit is the number of off-module links: the paper's scheme
// places 2^k1 consecutive rows of the swap-butterfly per module so that all
// straight and cross links stay inside modules and only (doubled) swap links
// leave, giving an average of 4(l-1)(2^k1 - 1) / ((n_l+1) 2^k1) off-module
// links per node -- a Theta(log N) improvement over the naive scheme that
// packs consecutive rows of a plain butterfly.
#pragma once

#include <span>
#include <vector>

#include "topology/butterfly.hpp"
#include "topology/graph.hpp"
#include "topology/swap_butterfly.hpp"

namespace bfly {

struct Partition {
  std::vector<u64> module_of;  ///< node id -> module id (dense)
  u64 num_modules = 0;
};

struct PartitionStats {
  u64 num_modules = 0;
  u64 max_nodes_per_module = 0;
  u64 min_nodes_per_module = 0;
  u64 total_offmodule_links = 0;      ///< links with endpoints in two modules
  u64 max_offmodule_links_per_module = 0;
  double avg_offmodule_links_per_node = 0.0;  ///< 2 * off-links / nodes
};

/// Counts off-module links of `partition` on `graph` (each off-module link
/// contributes one pin on each side, hence the factor 2 in the per-node
/// average -- this matches the paper's "4(l-1) swap links per row" counting,
/// where each link is counted in both endpoint rows).
PartitionStats evaluate_partition(const Graph& graph, const Partition& partition);

/// Paper scheme 1: every `2^rows_log2` consecutive rows of the swap-butterfly
/// (all stages) form a module.  rows_log2 defaults to k_1.
Partition row_block_partition(const SwapButterfly& sb, int rows_log2);

/// Paper scheme 2 (Theorem 2.1): one nucleus butterfly per module.  Level-i
/// modules hold stages [n_{i-1}+1, n_i] (level 1: [0, n_1]) of 2^{k_i} rows
/// sharing all row bits above bit k_i.
Partition nucleus_partition(const SwapButterfly& sb);

/// Baseline: q consecutive rows of a *plain* butterfly per module.
Partition naive_row_partition(const Butterfly& bf, u64 rows_per_module);

/// The closed form of Section 2.3 for the row-block scheme.
double predicted_offmodule_links_per_node(int l, int k1, int n);

/// Theorem 2.1's bounds for the nucleus scheme on ISN(l, B_k1).
u64 theorem21_max_nodes(int k1);      // 2^k1 (k1 + 1) nodes (B_k1 including both end stages)
u64 theorem21_max_offlinks(int k1);   // 2^{k1+2}

/// Largest number of consecutive plain-butterfly rows per module such that
/// every module has at most `max_pins` off-module links (the Section 5
/// baseline: 3 rows for the 9-dimensional butterfly with 64 pins).
u64 max_naive_rows_within_pins(const Butterfly& bf, u64 max_pins);

// ---------------------------------------------------------------------------
// Multi-level packaging (Sec. 2.3, final paragraph): "the proposed
// partitioning and packaging methods can be extended to the case where there
// are more than two levels in the packaging hierarchy."
//
// Level j of the hierarchy groups 2^{n_j} consecutive rows (chips at j = 1,
// boards at j = 2, cabinets at j = 3, ...).  A level-i swap link stays inside
// a level-j module iff i <= j, so only higher-level swap links cross level-j
// boundaries and the per-node average at level j is
// (4/(n+1)) sum_{i > j} (1 - 2^{-k_i}).
// ---------------------------------------------------------------------------

struct PackagingLevel {
  int level = 0;            ///< j = 1 .. l-1
  u64 rows_per_module = 0;  ///< 2^{n_j}
  PartitionStats stats;
  double predicted_avg = 0.0;  ///< the closed form above
};

/// Evaluates every level of the packaging hierarchy induced by the ISN's
/// group structure.  Returns l-1 levels (the level-l "module" is the whole
/// machine).
std::vector<PackagingLevel> multilevel_packaging(const SwapButterfly& sb);

}  // namespace bfly
