#include "layout/track_assign.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "obs/trace.hpp"

namespace bfly {

TrackAssignment assign_tracks_left_edge(std::span<const Interval> intervals) {
  BFLY_TRACE_SCOPE("layout.assign_tracks_left_edge");
  TrackAssignment result;
  result.track.assign(intervals.size(), 0);
  std::vector<std::size_t> order(intervals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(intervals[a].lo, intervals[a].hi) <
           std::tie(intervals[b].lo, intervals[b].hi);
  });
  // Min-heap of (last hi, track id): reuse a track only when the previous
  // interval ends strictly before the new one begins.
  using Entry = std::pair<i64, u64>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> free_at;
  for (const std::size_t i : order) {
    BFLY_REQUIRE(!intervals[i].empty(), "track assignment requires non-empty intervals");
    if (!free_at.empty() && free_at.top().first < intervals[i].lo) {
      const auto [hi, track] = free_at.top();
      free_at.pop();
      result.track[i] = track;
      free_at.emplace(intervals[i].hi, track);
    } else {
      result.track[i] = result.num_tracks++;
      free_at.emplace(intervals[i].hi, result.track[i]);
    }
  }
  return result;
}

u64 max_point_congestion(std::span<const Interval> intervals) {
  std::vector<std::pair<i64, int>> events;
  events.reserve(intervals.size() * 2);
  for (const Interval& iv : intervals) {
    events.emplace_back(iv.lo, +1);
    events.emplace_back(iv.hi + 1, -1);
  }
  std::sort(events.begin(), events.end());
  u64 best = 0;
  i64 current = 0;
  for (const auto& [pos, delta] : events) {
    current += delta;
    best = std::max(best, static_cast<u64>(std::max<i64>(current, 0)));
  }
  return best;
}

}  // namespace bfly
