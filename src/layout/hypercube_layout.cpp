#include "layout/hypercube_layout.hpp"

#include <algorithm>
#include <cmath>

#include "layout/track_assign.hpp"

namespace bfly {

namespace {

/// Left-edge track assignment for the dimension-d links inside one grid line
/// of `count` nodes with terminal pitch `pitch` (the overlap structure is
/// pitch-invariant for any pitch >= the number of dims, so the caller can
/// assign tracks before the final cell size is known).
/// Returns tracks indexed by (d * count + lower endpoint).
std::pair<std::vector<u64>, u64> assign_line_tracks(int dims, u64 count, i64 pitch) {
  std::vector<Interval> intervals;
  std::vector<std::pair<int, u64>> net_of;  // (d, lower node)
  for (int d = 0; d < dims; ++d) {
    for (u64 c = 0; c < count; ++c) {
      if ((c >> d) & 1) continue;  // lower endpoint only
      const u64 c2 = c | pow2(d);
      intervals.push_back(make_interval(static_cast<i64>(c) * pitch + d,
                                        static_cast<i64>(c2) * pitch + d));
      net_of.emplace_back(d, c);
    }
  }
  const TrackAssignment assignment = assign_tracks_left_edge(intervals);
  std::vector<u64> table(static_cast<std::size_t>(dims) * count, ~u64{0});
  for (std::size_t i = 0; i < net_of.size(); ++i) {
    const auto& [d, c] = net_of[i];
    table[static_cast<std::size_t>(d) * count + c] = assignment.track[i];
  }
  return {std::move(table), assignment.num_tracks};
}

}  // namespace

HypercubeLayoutPlan::HypercubeLayoutPlan(int n, HypercubeLayoutOptions options)
    : n_(n), mr_(n / 2), mc_(n - n / 2), options_(options) {
  BFLY_REQUIRE(n >= 2 && n <= 26, "hypercube layout supports n in [2, 26]");
  BFLY_REQUIRE(options_.layers >= 2, "at least two wiring layers are required");
  // One terminal per dimension on the top (row dims) and right (column dims)
  // edges, plus one spare unit so the two edges never meet at the corner.
  const i64 min_side = std::max<i64>(4, std::max(mr_, mc_) + 1);
  node_side_ = options_.node_side == 0 ? min_side : options_.node_side;
  BFLY_REQUIRE(node_side_ >= min_side, "node side must host one terminal per dimension");

  auto [row_table, row_tracks] = assign_line_tracks(mc_, grid_cols(), node_side_);
  row_track_of_ = std::move(row_table);
  row_tracks_ = row_tracks;
  auto [col_table, col_tracks] = assign_line_tracks(mr_, grid_rows(), node_side_);
  col_track_of_ = std::move(col_table);
  col_tracks_ = col_tracks;

  const int L = options_.layers;
  row_groups_ = L % 2 == 0 ? static_cast<u64>(L) / 2 : (static_cast<u64>(L) + 1) / 2;
  col_groups_ = L % 2 == 0 ? static_cast<u64>(L) / 2 : std::max<u64>(1, (static_cast<u64>(L) - 1) / 2);
  row_positions_ = ceil_div(static_cast<i64>(row_tracks_), static_cast<i64>(row_groups_));
  col_positions_ = ceil_div(static_cast<i64>(col_tracks_), static_cast<i64>(col_groups_));

  cell_width_ = node_side_ + col_positions_;
  cell_height_ = node_side_ + row_positions_;
}

i64 HypercubeLayoutPlan::fold(u64 track, bool horizontal, int* v_layer, int* h_layer) const {
  const int L = options_.layers;
  const u64 groups = horizontal ? row_groups_ : col_groups_;
  const u64 g = track % groups;
  const i64 position = static_cast<i64>(track / groups);
  if (L % 2 == 0) {
    *v_layer = static_cast<int>(2 * g + 1);
    *h_layer = static_cast<int>(2 * g + 2);
  } else if (horizontal) {
    *h_layer = static_cast<int>(2 * g + 1);
    *v_layer = std::min(static_cast<int>(2 * g + 2), L - 1);
  } else {
    *v_layer = static_cast<int>(2 * g + 2);
    *h_layer = std::min(static_cast<int>(2 * g + 3), L);
  }
  return position;
}

void HypercubeLayoutPlan::for_each_node(const std::function<void(u64, Rect)>& fn) const {
  const u64 nodes = pow2(n_);
  for (u64 v = 0; v < nodes; ++v) {
    fn(v, Rect::square(node_x0(v), node_y0(v), node_side_));
  }
}

void HypercubeLayoutPlan::for_each_wire(const std::function<void(Wire&&)>& fn) const {
  const u64 nodes = pow2(n_);
  for (u64 v = 0; v < nodes; ++v) {
    // Row-channel dims: lower endpoint emits.
    for (int d = 0; d < mc_; ++d) {
      if ((v >> d) & 1) continue;
      const u64 w = v | pow2(d);
      const u64 c = grid_col_of(v);
      const u64 track = row_track_of_[static_cast<std::size_t>(d) * grid_cols() + c];
      int vl = 0;
      int hl = 0;
      const i64 pos = fold(track, /*horizontal=*/true, &vl, &hl);
      const i64 track_y = node_y0(v) + node_side_ + pos;
      fn(WireBuilder(Point{node_x0(v) + d, node_y0(v) + node_side_ - 1})
             .from(v)
             .to_y(track_y, vl)
             .to_x(node_x0(w) + d, hl)
             .to_y(node_y0(w) + node_side_ - 1, vl)
             .to(w)
             .build());
    }
    // Column-channel dims.
    for (int d = mc_; d < n_; ++d) {
      if ((v >> d) & 1) continue;
      const u64 w = v | pow2(d);
      const int local = d - mc_;
      const u64 r = grid_row_of(v);
      const u64 track = col_track_of_[static_cast<std::size_t>(local) * grid_rows() + r];
      int vl = 0;
      int hl = 0;
      const i64 pos = fold(track, /*horizontal=*/false, &vl, &hl);
      const i64 track_x =
          static_cast<i64>(grid_col_of(v)) * cell_width_ + node_side_ + pos;
      fn(WireBuilder(Point{node_x0(v) + node_side_ - 1, node_y0(v) + local})
             .from(v)
             .to_x(track_x, hl)
             .to_y(node_y0(w) + local, vl)
             .to_x(node_x0(w) + node_side_ - 1, hl)
             .to(w)
             .build());
    }
  }
}

Layout HypercubeLayoutPlan::materialize() const {
  Layout layout;
  for_each_node([&](u64 id, Rect r) { layout.add_node(id, r); });
  for_each_wire([&](Wire&& w) { layout.add_wire(std::move(w)); });
  return layout;
}

LayoutMetrics HypercubeLayoutPlan::metrics() const {
  LayoutMetrics m;
  Rect box;
  for_each_node([&](u64, Rect r) { box = box.united(r); });
  for_each_wire([&](Wire&& w) {
    box = box.united(w.bbox());
    const i64 len = w.length();
    m.max_wire_length = std::max(m.max_wire_length, len);
    m.total_wire_length += len;
    for (const int layer : w.layers) m.num_layers = std::max(m.num_layers, layer);
    ++m.num_wires;
  });
  m.width = box.width();
  m.height = box.height();
  m.area = m.width * m.height;
  m.volume = static_cast<i64>(m.num_layers) * m.area;
  m.num_nodes = pow2(n_);
  return m;
}

double HypercubeLayoutPlan::area_lower_bound(int n) {
  const double bisection = std::pow(2.0, n - 1);
  return bisection * bisection;
}

}  // namespace bfly
