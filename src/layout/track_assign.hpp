// Left-edge track assignment: pack 1-D intervals into the minimum number of
// tracks such that intervals sharing a track are strictly disjoint (they may
// not even touch at an endpoint, since a shared endpoint would be a shared
// grid point between different wires).  Used by the intra-block channel
// router of the butterfly layout.
#pragma once

#include <span>
#include <vector>

#include "layout/geometry.hpp"

namespace bfly {

struct TrackAssignment {
  /// track[i] = track index of intervals[i].
  std::vector<u64> track;
  u64 num_tracks = 0;
};

/// Greedy left-edge algorithm; optimal for interval graph coloring.
TrackAssignment assign_tracks_left_edge(std::span<const Interval> intervals);

/// The maximum number of intervals covering a single point (clique lower
/// bound; the left-edge algorithm meets it for touching-free packings of
/// intervals with pairwise-distinct endpoints).
u64 max_point_congestion(std::span<const Interval> intervals);

}  // namespace bfly
