// Strictly optimal collinear layouts of complete graphs (Appendix B).
//
// The N nodes of K_N are placed along a row; a link joining nodes whose
// indices differ by i is "type i".  Type-i links are packed into
// min(i, N-i) horizontal tracks (same residue class mod i shares a track for
// i <= N/2; each link gets its own track for i > N/2), for a total of
// floor(N^2/4) tracks -- exactly the bisection-width lower bound, and 25%
// below the Chen-Agrawal layout [6] this improves on.
//
// Every wire of the multigraph variant (each link replicated `multiplicity`
// times; Section 3 uses multiplicity 2^(2+k1-k2)) is routed explicitly:
// vertical drops on layer 1, track runs on layer 2, with per-(node, neighbor,
// replica) terminal columns so the construction is machine-checkably legal
// under both the Thompson and the multilayer model.
#pragma once

#include <vector>

#include "layout/layout.hpp"

namespace bfly {

struct CollinearOptions {
  /// Parallel wires per link of K_N.
  u64 multiplicity = 1;
  /// Reorder tracks so that long-span types sit closest to the node row,
  /// reducing the maximum wire length (paper: "we can reverse the order of
  /// horizontal tracks so that the maximum wire length is reduced").
  bool reverse_tracks = false;
};

struct CollinearLayout {
  Layout layout;
  u64 num_nodes = 0;
  u64 multiplicity = 1;
  u64 num_tracks = 0;
  i64 node_side = 0;
  /// track_of[(i, j, r)] for i < j: the track index used by replica r.
  /// Flattened: see track_index().
  std::vector<u64> track_assignment;

  u64 track_index(u64 i, u64 j, u64 r) const;
};

/// Lays out K_N with the Appendix-B track assignment.  N >= 2.
CollinearLayout collinear_complete_graph(u64 n, const CollinearOptions& options = {});

/// floor(N^2/4) * multiplicity: the number of tracks the Appendix-B layout
/// uses, equal to the bisection-width lower bound for collinear layouts.
u64 collinear_track_count(u64 n, u64 multiplicity = 1);

/// Track count of the prior collinear layout of [6, Theorem 1] (Chen &
/// Agrawal's dBCube paper): 4(4^(log2 N - 1) - 1)/3 for N a power of two.
u64 chen_agrawal_track_count(u64 n);

/// Maximum cut congestion over all "scan line" cuts between adjacent node
/// positions -- the lower bound argument: every link crossing the cut needs
/// its own track there.  Equals floor(N^2/4) at the middle cut.
u64 collinear_cut_lower_bound(u64 n, u64 multiplicity = 1);

}  // namespace bfly
