#include "layout/butterfly_layout.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfly {

namespace {

/// Layer pair (vertical-run layer, horizontal-run layer) for a folded channel
/// group.  Even L pairs (2g+1, 2g+2); odd L follows the paper's Sec. 4.2
/// odd-layer-count rule: horizontal groups on layers 1,3,...,L, vertical
/// groups on layers 2,4,...,L-1, with each wire's V assigned to the even
/// layer adjacent to its H layer so that every bend via spans exactly two
/// neighboring layers.
struct LayerPair {
  int v = 1;
  int h = 2;
};

LayerPair row_group_layers(int L, u64 g) {
  if (L % 2 == 0) {
    return {static_cast<int>(2 * g + 1), static_cast<int>(2 * g + 2)};
  }
  const int h = static_cast<int>(2 * g + 1);
  const int v = std::min(static_cast<int>(2 * g + 2), L - 1);
  return {v, h};
}

LayerPair col_group_layers(int L, u64 g) {
  if (L % 2 == 0) {
    return {static_cast<int>(2 * g + 1), static_cast<int>(2 * g + 2)};
  }
  return {static_cast<int>(2 * g + 2), static_cast<int>(2 * g + 3)};
}

LayerPair internal_layers(int L, u64 g = 0) {
  // Intra-block pair of fold group g (group 0 without block folding).
  if (L % 2 == 0) {
    return {static_cast<int>(2 * g + 1), static_cast<int>(2 * g + 2)};
  }
  return {static_cast<int>(2 * g + 2), static_cast<int>(2 * g + 1)};
}

u64 fold_groups_h(int L) { return L % 2 == 0 ? static_cast<u64>(L) / 2 : (static_cast<u64>(L) + 1) / 2; }
u64 fold_groups_v(int L) { return L % 2 == 0 ? static_cast<u64>(L) / 2 : (static_cast<u64>(L) - 1) / 2; }

std::vector<u64> build_type_base(u64 b, u64 mult) {
  // Logical track base per link type d (Appendix B): type d gets
  // min(d, b-d) classes of `mult` replica tracks each.
  std::vector<u64> base(b, 0);
  for (u64 d = 1; d + 1 < b; ++d) {
    base[d + 1] = base[d] + std::min(d, b - d) * mult;
  }
  return base;
}

u64 collinear_logical_track(const std::vector<u64>& type_base, u64 b, u64 mult, u64 p, u64 q,
                            u64 r) {
  BFLY_CHECK(p < q && q < b && r < mult, "collinear track lookup out of range");
  const u64 d = q - p;
  const u64 cls = (d <= b - d) ? (p % d) : p;
  return type_base[d] + cls * mult + r;
}

}  // namespace

std::vector<int> ButterflyLayoutPlan::choose_parameters(int n) {
  BFLY_REQUIRE(n >= 3, "the recursive grid layout needs dimension n >= 3");
  switch (n % 3) {
    case 0:
      return {n / 3, n / 3, n / 3};
    case 1:
      return {(n + 2) / 3, (n - 1) / 3, (n - 1) / 3};
    default:
      return {(n + 1) / 3, (n + 1) / 3, (n - 2) / 3};
  }
}

ButterflyLayoutPlan::ButterflyLayoutPlan(std::vector<int> k, ButterflyLayoutOptions options)
    : k_(k), options_(options), sb_(std::move(k)), n_(sb_.dimension()) {
  BFLY_TRACE_SCOPE("layout.plan");
  BFLY_REQUIRE(k_.size() == 3, "the grid layout is driven by a 3-level ISN");
  BFLY_REQUIRE(options_.layers >= 2, "at least two wiring layers are required");
  BFLY_REQUIRE(options_.node_side >= 4, "node side must fit 4 terminal offsets");
  node_side_ = options_.node_side;

  const int k1 = k_[0];
  const u64 rows_per_block = pow2(k1);

  // --- inter-block channel folding -------------------------------------------
  const u64 bc = grid_cols();
  const u64 br = grid_rows();
  row_mult_ = pow2(2 + k_[0] - k_[1]);
  col_mult_ = pow2(2 + k_[0] - k_[2]);
  row_fold_.logical_tracks = collinear_track_count(bc, row_mult_);
  col_fold_.logical_tracks = collinear_track_count(br, col_mult_);
  row_fold_.groups = fold_groups_h(options_.layers);
  col_fold_.groups = fold_groups_v(options_.layers);
  row_fold_.positions =
      static_cast<i64>(ceil_div(static_cast<i64>(row_fold_.logical_tracks),
                                static_cast<i64>(row_fold_.groups)));
  col_fold_.positions =
      static_cast<i64>(ceil_div(static_cast<i64>(col_fold_.logical_tracks),
                                static_cast<i64>(col_fold_.groups)));

  row_type_base_ = build_type_base(bc, row_mult_);
  col_type_base_ = build_type_base(br, col_mult_);

  // --- intra-block channel folding tables -------------------------------------
  if (options_.fold_block_channels) {
    BFLY_TRACE_SCOPE("layout.plan.fold_tables");
    build_fold_tables();
  }

  // --- intra-block channels --------------------------------------------------
  BFLY_TRACE_SCOPE("layout.plan.assign_tracks");
  chan_width_.assign(static_cast<std::size_t>(n_), 0);
  exchange_track_.assign(static_cast<std::size_t>(n_), {});
  const i64 g_int = internal_group_count();
  for (int s = 0; s < n_; ++s) {
    if (sb_.is_swap_transition(s)) {
      chan_width_[static_cast<std::size_t>(s)] =
          swap_channel_width(sb_.level_of_transition(s));
      continue;
    }
    const int level = sb_.level_of_transition(s);
    const int j = s - sb_.prefix(level - 1);
    // Block-local net intervals: out terminal (offset 2/3) of (u, s) to in
    // terminal (offset 0/1) of the target row at stage s+1.
    std::vector<Interval> intervals;
    intervals.reserve(2 * rows_per_block);
    for (u64 u = 0; u < rows_per_block; ++u) {
      const i64 y_out_straight = static_cast<i64>(u) * node_side_ + 2;
      const i64 y_in_straight = static_cast<i64>(u) * node_side_ + 0;
      intervals.push_back(make_interval(y_out_straight, y_in_straight));
      const u64 w = u ^ pow2(j);
      const i64 y_out_cross = static_cast<i64>(u) * node_side_ + 3;
      const i64 y_in_cross = static_cast<i64>(w) * node_side_ + 1;
      intervals.push_back(make_interval(y_out_cross, y_in_cross));
    }
    TrackAssignment assignment = assign_tracks_left_edge(intervals);
    const i64 tracks = static_cast<i64>(assignment.num_tracks);
    chan_width_[static_cast<std::size_t>(s)] =
        options_.fold_block_channels ? ceil_div(tracks, g_int) : tracks;
    exchange_track_[static_cast<std::size_t>(s)] = std::move(assignment.track);
  }

  col_x0_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (int s = 0; s < n_; ++s) {
    col_x0_[static_cast<std::size_t>(s) + 1] =
        col_x0_[static_cast<std::size_t>(s)] + node_side_ + chan_width_[static_cast<std::size_t>(s)];
  }
  block_width_ = col_x0_[static_cast<std::size_t>(n_)] + node_side_;

  service_height_ = options_.fold_block_channels ? l3_width_
                                                 : static_cast<i64>(4 * rows_per_block);
  block_height_ = service_height_ + static_cast<i64>(rows_per_block) * node_side_;

  cell_width_ = block_width_ + col_fold_.positions;
  cell_height_ = block_height_ + row_fold_.positions;
}

int ButterflyLayoutPlan::internal_group_count() const {
  if (!options_.fold_block_channels) return 1;
  return options_.layers % 2 == 0 ? options_.layers / 2
                                  : std::max(1, (options_.layers - 1) / 2);
}

i64 ButterflyLayoutPlan::swap_channel_width(int level) const {
  if (!options_.fold_block_channels) return static_cast<i64>(4 * pow2(k_[0]));
  return level == 2 ? l2_width_ : l3_width_;
}

void ButterflyLayoutPlan::build_fold_tables() {
  const int k1 = k_[0];
  const u64 rows_per_block = pow2(k1);
  const u64 slots = 4 * rows_per_block;

  // One table per grid position along the channel's axis.  Each slot maps to
  // a physical track: cross-block endpoints get dense peer-monotone ranks
  // within their channel group (groups overlay a shared x-range); in-block
  // endpoints take a trailing dedicated range.
  const auto build = [&](int level, u64 positions_along, const std::vector<u64>& type_base,
                         u64 mult, u64 blocks_along, u64 num_groups,
                         std::vector<std::vector<i64>>* tables, i64* width) {
    const int ki = k_[static_cast<std::size_t>(level - 1)];
    const u64 mask = pow2(ki) - 1;
    const u64 side_count = pow2(k1 - ki + 1);
    const u64 group_sentinel = ~u64{0};
    // Wires overlaid at the same physical track must differ in their
    // *vertical-run layer* (drops and in-channel verticals share x).  With
    // odd L two horizontal groups can map to the same V layer, so rank by
    // the V layer, not by the raw channel group.
    const auto overlay_class = [&](u64 channel_group) -> u64 {
      const LayerPair lp = (level == 2) ? row_group_layers(options_.layers, channel_group)
                                        : col_group_layers(options_.layers, channel_group);
      return static_cast<u64>(lp.v);
    };

    // First pass: per-position slot groups; global max widths.
    std::vector<std::vector<u64>> slot_group(positions_along, std::vector<u64>(slots, 0));
    u64 max_group_width = 0;
    u64 max_internal = 0;
    for (u64 p = 0; p < positions_along; ++p) {
      std::vector<u64> group_count;
      u64 internal_count = 0;
      for (u64 loc = 0; loc < rows_per_block; ++loc) {
        for (int kind = 0; kind < 2; ++kind) {
          // OUT endpoint at this block toward peer q.
          const u64 q_out = loc & mask;
          const u64 sub = ((loc >> ki) << 1) | static_cast<u64>(kind);
          const u64 slot_out = q_out * (2 * side_count) + sub;
          if (q_out == p) {
            slot_group[p][slot_out] = group_sentinel;
            ++internal_count;
          } else {
            const u64 r = (p < q_out) ? sub : side_count + sub;
            const u64 logical = collinear_logical_track(type_base, blocks_along, mult,
                                                        std::min(p, q_out), std::max(p, q_out), r);
            const u64 g = overlay_class(logical % num_groups);
            slot_group[p][slot_out] = g;
            if (g >= group_count.size()) group_count.resize(g + 1, 0);
            ++group_count[g];
          }
          // IN endpoint at this block from peer q_in.
          const u64 q_in = (loc ^ static_cast<u64>(kind != 0 ? 1 : 0)) & mask;
          const u64 slot_in = q_in * (2 * side_count) + side_count + sub;
          if (q_in == p) {
            slot_group[p][slot_in] = group_sentinel;
            ++internal_count;
          } else {
            const u64 r = (q_in < p) ? sub : side_count + sub;
            const u64 logical = collinear_logical_track(type_base, blocks_along, mult,
                                                        std::min(p, q_in), std::max(p, q_in), r);
            const u64 g = overlay_class(logical % num_groups);
            slot_group[p][slot_in] = g;
            if (g >= group_count.size()) group_count.resize(g + 1, 0);
            ++group_count[g];
          }
        }
      }
      for (const u64 c : group_count) max_group_width = std::max(max_group_width, c);
      max_internal = std::max(max_internal, internal_count);
    }

    // Second pass: assign physical tracks in slot order.
    tables->assign(positions_along, std::vector<i64>(slots, -1));
    for (u64 p = 0; p < positions_along; ++p) {
      std::vector<u64> next_rank;
      u64 next_internal = 0;
      for (u64 slot = 0; slot < slots; ++slot) {
        const u64 g = slot_group[p][slot];
        if (g == group_sentinel) {
          (*tables)[p][slot] = static_cast<i64>(max_group_width + next_internal++);
        } else {
          if (g >= next_rank.size()) next_rank.resize(g + 1, 0);
          (*tables)[p][slot] = static_cast<i64>(next_rank[g]++);
        }
      }
    }
    *width = static_cast<i64>(max_group_width + max_internal);
  };

  build(2, grid_cols(), row_type_base_, row_mult_, grid_cols(), row_fold_.groups,
        &l2_fold_, &l2_width_);
  build(3, grid_rows(), col_type_base_, col_mult_, grid_rows(), col_fold_.groups,
        &l3_fold_, &l3_width_);
}

i64 ButterflyLayoutPlan::folded_swap_track(int level, bool out, u64 row, int kind) const {
  const i64 slot = swap_channel_slot(level, out, row, kind);
  if (!options_.fold_block_channels) return slot;
  const u64 b = block_of_row(row);
  const u64 p = (level == 2) ? grid_col_of_block(b) : grid_row_of_block(b);
  const auto& tables = (level == 2) ? l2_fold_ : l3_fold_;
  return tables[p][static_cast<u64>(slot)];
}

i64 ButterflyLayoutPlan::terminal_y(u64 row, int offset) const {
  return block_y0(block_of_row(row)) + service_height_ +
         static_cast<i64>(local_row(row)) * node_side_ + offset;
}

i64 ButterflyLayoutPlan::column_x0(int s) const { return col_x0_[static_cast<std::size_t>(s)]; }

i64 ButterflyLayoutPlan::channel_track_x(int s, i64 t) const {
  BFLY_CHECK(t >= 0 && t < chan_width_[static_cast<std::size_t>(s)], "channel track out of range");
  return col_x0_[static_cast<std::size_t>(s)] + node_side_ + t;
}

i64 ButterflyLayoutPlan::row_track_y(u64 grid_row, u64 logical_track, int* h_layer,
                                     int* v_layer) const {
  // Interleaved folding (group = logical mod G): consecutive logical tracks
  // land in different groups, so the replica runs of any block pair spread
  // evenly across groups -- this keeps the folded swap-channel widths close
  // to (endpoints / G) instead of concentrating in one group.
  const u64 group = logical_track % row_fold_.groups;
  const u64 position = logical_track / row_fold_.groups;
  const LayerPair lp = row_group_layers(options_.layers, group);
  *h_layer = lp.h;
  *v_layer = lp.v;
  return static_cast<i64>(grid_row) * cell_height_ + block_height_ + static_cast<i64>(position);
}

i64 ButterflyLayoutPlan::col_track_x(u64 grid_col, u64 logical_track, int* h_layer,
                                     int* v_layer) const {
  const u64 group = logical_track % col_fold_.groups;
  const u64 position = logical_track / col_fold_.groups;
  const LayerPair lp = col_group_layers(options_.layers, group);
  *h_layer = lp.h;
  *v_layer = lp.v;
  return static_cast<i64>(grid_col) * cell_width_ + block_width_ + static_cast<i64>(position);
}

void ButterflyLayoutPlan::for_each_node(const std::function<void(u64, Rect)>& fn) const {
  const u64 rows = sb_.rows();
  for (int s = 0; s <= n_; ++s) {
    for (u64 u = 0; u < rows; ++u) {
      const i64 x = block_x0(block_of_row(u)) + column_x0(s);
      const i64 y = terminal_y(u, 0);
      fn(sb_.node_id(u, s), Rect::square(x, y, node_side_));
    }
  }
}

void ButterflyLayoutPlan::emit_exchange_wire(u64 u, int s, int kind,
                                             const std::function<void(Wire&&)>& fn) const {
  const int level = sb_.level_of_transition(s);
  const int j = s - sb_.prefix(level - 1);
  const u64 w = kind == 0 ? u : (u ^ pow2(j));
  const u64 net = 2 * local_row(u) + static_cast<u64>(kind);
  i64 track = static_cast<i64>(exchange_track_[static_cast<std::size_t>(s)][net]);
  u64 fold_group = 0;
  if (options_.fold_block_channels) {
    const i64 positions = chan_width_[static_cast<std::size_t>(s)];
    fold_group = static_cast<u64>(track / positions);
    track = track % positions;
  }
  const LayerPair lp = internal_layers(options_.layers, fold_group);

  const i64 bx = block_x0(block_of_row(u));
  const i64 from_x = bx + column_x0(s) + node_side_ - 1;
  const i64 from_y = terminal_y(u, 2 + kind);
  const i64 track_x = bx + channel_track_x(s, track);
  const i64 to_x = bx + column_x0(s + 1);
  const i64 to_y = terminal_y(w, kind);

  fn(WireBuilder(Point{from_x, from_y})
         .from(sb_.node_id(u, s))
         .to_x(track_x, lp.h)
         .to_y(to_y, lp.v)
         .to_x(to_x, lp.h)
         .to(sb_.node_id(w, s + 1))
         .build());
}

i64 ButterflyLayoutPlan::swap_channel_slot(int level, bool out, u64 row, int kind) const {
  const int ki = k_[static_cast<std::size_t>(level - 1)];
  const u64 loc = local_row(row);
  const u64 mask = pow2(ki) - 1;
  // Peer block position along the channel's grid axis: for an outgoing link
  // it is sigma's target (the low k_i bits of the row); for an incoming link
  // it is the source block's position (undo the cross-kind bit flip first).
  const u64 peer = out ? (loc & mask) : ((loc ^ (kind != 0 ? 1u : 0u)) & mask);
  const u64 group_size = pow2(k_[0] - ki + 2);
  const u64 sub = (out ? 0 : group_size / 2) + (((loc >> ki) << 1) | static_cast<u64>(kind));
  return static_cast<i64>(peer * group_size + sub);
}

u64 ButterflyLayoutPlan::boundary_replica(int level, u64 u, int kind) const {
  // Index of this link among the links between its (source, dest) block pair:
  // links sourced at the lower-indexed block come first, ordered by
  // (local row >> k_i, kind); then the higher-indexed block's links.
  const int ki = k_[static_cast<std::size_t>(level - 1)];
  const u64 u_loc = local_row(u);
  const u64 side_index = ((u_loc >> ki) << 1) | static_cast<u64>(kind);
  const u64 side_count = pow2(k_[0] - ki + 1);

  const u64 w = (kind == 0) ? sb_.isn().sigma(level, u) : (sb_.isn().sigma(level, u) ^ 1);
  const u64 a = block_of_row(u);
  const u64 b = block_of_row(w);
  BFLY_CHECK(a != b, "boundary_replica is only defined for inter-block links");
  const u64 pos_a = (level == 2) ? grid_col_of_block(a) : grid_row_of_block(a);
  const u64 pos_b = (level == 2) ? grid_col_of_block(b) : grid_row_of_block(b);
  return (pos_a < pos_b) ? side_index : side_count + side_index;
}

void ButterflyLayoutPlan::emit_level2_wire(u64 u, int kind,
                                           const std::function<void(Wire&&)>& fn) const {
  const int s = sb_.prefix(1);  // transition n1 -> n1+1
  const u64 w = (kind == 0) ? sb_.isn().sigma(2, u) : (sb_.isn().sigma(2, u) ^ 1);
  const u64 a = block_of_row(u);
  const u64 b = block_of_row(w);

  const i64 out_track = folded_swap_track(2, /*out=*/true, u, kind);
  const i64 in_track = folded_swap_track(2, /*out=*/false, w, kind);
  const i64 from_x = block_x0(a) + column_x0(s) + node_side_ - 1;
  const i64 from_y = terminal_y(u, 2 + kind);
  const i64 to_x = block_x0(b) + column_x0(s + 1);
  const i64 to_y = terminal_y(w, kind);
  const i64 out_x = block_x0(a) + channel_track_x(s, out_track);
  const i64 in_x = block_x0(b) + channel_track_x(s, in_track);

  if (a == b) {
    const LayerPair lp = internal_layers(options_.layers);
    fn(WireBuilder(Point{from_x, from_y})
           .from(sb_.node_id(u, s))
           .to_x(out_x, lp.h)
           .to_y(to_y, lp.v)
           .to_x(to_x, lp.h)
           .to(sb_.node_id(w, s + 1))
           .build());
    return;
  }

  const u64 pa = grid_col_of_block(a);
  const u64 pb = grid_col_of_block(b);
  const u64 r = boundary_replica(2, u, kind);
  const u64 logical = collinear_logical_track(row_type_base_, grid_cols(), row_mult_,
                                              std::min(pa, pb), std::max(pa, pb), r);
  int h_layer = 0;
  int v_layer = 0;
  const i64 track_y = row_track_y(grid_row_of_block(a), logical, &h_layer, &v_layer);

  fn(WireBuilder(Point{from_x, from_y})
         .from(sb_.node_id(u, s))
         .to_x(out_x, h_layer)
         .to_y(track_y, v_layer)
         .to_x(in_x, h_layer)
         .to_y(to_y, v_layer)
         .to_x(to_x, h_layer)
         .to(sb_.node_id(w, s + 1))
         .build());
}

void ButterflyLayoutPlan::emit_level3_wire(u64 u, int kind,
                                           const std::function<void(Wire&&)>& fn) const {
  const int s = sb_.prefix(2);  // transition n2 -> n2+1
  const u64 w = (kind == 0) ? sb_.isn().sigma(3, u) : (sb_.isn().sigma(3, u) ^ 1);
  const u64 a = block_of_row(u);
  const u64 b = block_of_row(w);

  const i64 out_track = folded_swap_track(3, /*out=*/true, u, kind);
  const i64 in_track = folded_swap_track(3, /*out=*/false, w, kind);
  const i64 from_x = block_x0(a) + column_x0(s) + node_side_ - 1;
  const i64 from_y = terminal_y(u, 2 + kind);
  const i64 to_x = block_x0(b) + column_x0(s + 1);
  const i64 to_y = terminal_y(w, kind);
  const i64 out_x = block_x0(a) + channel_track_x(s, out_track);
  const i64 in_x = block_x0(b) + channel_track_x(s, in_track);

  if (a == b) {
    const LayerPair lp = internal_layers(options_.layers);
    fn(WireBuilder(Point{from_x, from_y})
           .from(sb_.node_id(u, s))
           .to_x(out_x, lp.h)
           .to_y(to_y, lp.v)
           .to_x(to_x, lp.h)
           .to(sb_.node_id(w, s + 1))
           .build());
    return;
  }

  // Service-channel exit to the vertical channel right of the grid column.
  // The service row reuses the slot index, so slots double as the per-block
  // service track order (again peer-monotone for shared column tracks).
  const i64 service_out_y = block_y0(a) + out_track;
  const i64 service_in_y = block_y0(b) + in_track;
  const u64 pa = grid_row_of_block(a);
  const u64 pb = grid_row_of_block(b);
  const u64 r = boundary_replica(3, u, kind);
  const u64 logical = collinear_logical_track(col_type_base_, grid_rows(), col_mult_,
                                              std::min(pa, pb), std::max(pa, pb), r);
  int h_layer = 0;
  int v_layer = 0;
  const i64 track_x = col_track_x(grid_col_of_block(a), logical, &h_layer, &v_layer);

  fn(WireBuilder(Point{from_x, from_y})
         .from(sb_.node_id(u, s))
         .to_x(out_x, h_layer)
         .to_y(service_out_y, v_layer)
         .to_x(track_x, h_layer)
         .to_y(service_in_y, v_layer)
         .to_x(in_x, h_layer)
         .to_y(to_y, v_layer)
         .to_x(to_x, h_layer)
         .to(sb_.node_id(w, s + 1))
         .build());
}

void ButterflyLayoutPlan::for_each_wire(const std::function<void(Wire&&)>& fn) const {
  const u64 rows = sb_.rows();
  for (int s = 0; s < n_; ++s) {
    const bool boundary = sb_.is_swap_transition(s);
    const int level = sb_.level_of_transition(s);
    for (u64 u = 0; u < rows; ++u) {
      for (int kind = 0; kind < 2; ++kind) {
        if (!boundary) {
          emit_exchange_wire(u, s, kind, fn);
        } else if (level == 2) {
          emit_level2_wire(u, kind, fn);
        } else {
          emit_level3_wire(u, kind, fn);
        }
      }
    }
  }
}

Layout ButterflyLayoutPlan::materialize() const {
  BFLY_TRACE_SCOPE("layout.materialize");
  Layout layout;
  {
    BFLY_TRACE_SCOPE("layout.place_nodes");
    for_each_node([&](u64 id, Rect r) { layout.add_node(id, r); });
  }
  {
    BFLY_TRACE_SCOPE("layout.route_wires");
    for_each_wire([&](Wire&& w) { layout.add_wire(std::move(w)); });
  }
  return layout;
}

LayoutMetrics ButterflyLayoutPlan::metrics() const {
  BFLY_TRACE_SCOPE("layout.metrics");
  LayoutMetrics m;
  Rect box;
  for_each_node([&](u64, Rect r) { box = box.united(r); });
  for_each_wire([&](Wire&& w) {
    box = box.united(w.bbox());
    const i64 len = w.length();
    m.max_wire_length = std::max(m.max_wire_length, len);
    m.total_wire_length += len;
    for (const int layer : w.layers) m.num_layers = std::max(m.num_layers, layer);
    ++m.num_wires;
  });
  m.width = box.width();
  m.height = box.height();
  m.area = m.width * m.height;
  m.volume = static_cast<i64>(m.num_layers) * m.area;
  m.num_nodes = sb_.num_nodes();
  obs::set(obs::get_gauge("layout.area"), static_cast<double>(m.area));
  obs::set(obs::get_gauge("layout.max_wire_length"), static_cast<double>(m.max_wire_length));
  obs::set(obs::get_gauge("layout.num_wires"), static_cast<double>(m.num_wires));
  return m;
}

std::vector<i64> link_wire_lengths(const ButterflyLayoutPlan& plan) {
  const SwapButterfly& net = plan.network();
  const u64 rows = net.rows();
  std::vector<i64> lengths(static_cast<std::size_t>(net.num_links()), 0);
  plan.for_each_wire([&](Wire&& wire) {
    BFLY_CHECK(wire.from_node.has_value() && wire.to_node.has_value(),
               "layout wire is not attached to nodes");
    const int s = net.stage_of(*wire.from_node);
    BFLY_CHECK(net.stage_of(*wire.to_node) == s + 1, "layout wire is not a stage link");
    // Map both endpoints through the stage row maps: the dense id must be the
    // one the *butterfly* simulators use, not the swap-butterfly labeling.
    const u64 r1 = net.rho(s, net.row_of(*wire.from_node));
    const u64 r2 = net.rho(s + 1, net.row_of(*wire.to_node));
    const bool cross = r1 != r2;
    const u64 link = (static_cast<u64>(s) * rows + r1) * 2 + (cross ? 1 : 0);
    lengths[static_cast<std::size_t>(link)] = wire.length();
  });
  return lengths;
}

}  // namespace bfly
