#include "layout/layout.hpp"

#include <algorithm>

namespace bfly {

void Layout::add_node(u64 id, Rect rect) {
  BFLY_REQUIRE(!rect.empty(), "node rectangle must be non-empty");
  BFLY_REQUIRE(!node_index_.contains(id), "duplicate node id");
  node_index_.emplace(id, nodes_.size());
  nodes_.push_back(PlacedNode{id, rect});
}

void Layout::add_wire(Wire wire) {
  BFLY_REQUIRE(wire.points.size() >= 2, "wire must have at least one segment");
  BFLY_REQUIRE(wire.layers.size() + 1 == wire.points.size(),
               "wire must carry one layer per segment");
  for (std::size_t i = 0; i + 1 < wire.points.size(); ++i) {
    const Point& a = wire.points[i];
    const Point& b = wire.points[i + 1];
    BFLY_REQUIRE((a.x == b.x) != (a.y == b.y),
                 "wire segments must be axis-parallel and of nonzero length");
    BFLY_REQUIRE(wire.layers[i] >= 1, "wire segments must run on layers >= 1");
  }
  wires_.push_back(std::move(wire));
}

const PlacedNode& Layout::node(u64 id) const {
  const auto it = node_index_.find(id);
  BFLY_REQUIRE(it != node_index_.end(), "unknown node id");
  return nodes_[it->second];
}

Rect Layout::bounding_box() const {
  Rect box;
  for (const PlacedNode& n : nodes_) box = box.united(n.rect);
  for (const Wire& w : wires_) box = box.united(w.bbox());
  return box;
}

LayoutMetrics Layout::metrics() const {
  LayoutMetrics m;
  const Rect box = bounding_box();
  m.width = box.width();
  m.height = box.height();
  m.area = m.width * m.height;
  m.num_nodes = nodes_.size();
  m.num_wires = wires_.size();
  for (const Wire& w : wires_) {
    const i64 len = w.length();
    m.max_wire_length = std::max(m.max_wire_length, len);
    m.total_wire_length += len;
    for (const int layer : w.layers) m.num_layers = std::max(m.num_layers, layer);
  }
  m.volume = static_cast<i64>(m.num_layers) * m.area;
  return m;
}

}  // namespace bfly
