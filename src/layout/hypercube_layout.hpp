// Grid layouts of hypercubes -- the paper's conclusion notes that the same
// collinear-layout machinery yields efficient layouts "for butterfly
// networks and many other networks, such as hypercubes and k-ary n-cubes"
// (cf. the authors' FRONTIERS'99 hypercube layouts [26]).
//
// Q_n with n = m_r + m_c is placed as a 2^{m_r} x 2^{m_c} grid of nodes
// (node v at grid row v >> m_c, column v & (2^{m_c}-1)).  Dimension-d links
// with d < m_c stay inside a grid row and are wired in the horizontal
// channel above it; higher dimensions stay inside a grid column and use the
// vertical channel to its right.  Channel tracks come from the left-edge
// assignment over the link intervals (every row/column is an identical copy
// of the collinear layout of Q_{m_c} / Q_{m_r}).  With L layers the channel
// tracks fold into layer groups exactly as in the butterfly layout.
//
// The Thompson lower bound for Q_n is bisection^2 = (N/2)^2; the bench
// reports measured area against it.
#pragma once

#include <functional>

#include "layout/layout.hpp"
#include "topology/hypercube.hpp"

namespace bfly {

struct HypercubeLayoutOptions {
  int layers = 2;
  /// Node side; at least max(4, n) so each dimension gets a terminal.
  i64 node_side = 0;  ///< 0 = auto
};

class HypercubeLayoutPlan {
 public:
  explicit HypercubeLayoutPlan(int n, HypercubeLayoutOptions options = {});

  int dimension() const { return n_; }
  int row_dims() const { return mc_; }  ///< dims wired in row channels
  int col_dims() const { return mr_; }
  u64 grid_rows() const { return pow2(mr_); }
  u64 grid_cols() const { return pow2(mc_); }
  i64 node_side() const { return node_side_; }
  u64 row_channel_tracks() const { return row_tracks_; }
  u64 col_channel_tracks() const { return col_tracks_; }
  i64 width() const { return static_cast<i64>(grid_cols()) * cell_width_; }
  i64 height() const { return static_cast<i64>(grid_rows()) * cell_height_; }

  void for_each_node(const std::function<void(u64, Rect)>& fn) const;
  void for_each_wire(const std::function<void(Wire&&)>& fn) const;
  Layout materialize() const;
  LayoutMetrics metrics() const;

  /// Thompson-model lower bound: (bisection width)^2 = (N/2)^2.
  static double area_lower_bound(int n);

 private:
  u64 grid_row_of(u64 v) const { return v >> mc_; }
  u64 grid_col_of(u64 v) const { return v & (pow2(mc_) - 1); }
  i64 node_x0(u64 v) const { return static_cast<i64>(grid_col_of(v)) * cell_width_; }
  i64 node_y0(u64 v) const { return static_cast<i64>(grid_row_of(v)) * cell_height_; }
  /// (group, position, layers) of a folded channel track.
  i64 fold(u64 track, bool horizontal, int* v_layer, int* h_layer) const;

  int n_;
  int mr_;
  int mc_;
  HypercubeLayoutOptions options_;
  i64 node_side_ = 0;
  u64 row_tracks_ = 0;  // unfolded
  u64 col_tracks_ = 0;
  i64 row_positions_ = 0;  // folded
  i64 col_positions_ = 0;
  u64 row_groups_ = 1;
  u64 col_groups_ = 1;
  i64 cell_width_ = 0;
  i64 cell_height_ = 0;
  std::vector<u64> row_track_of_;  // per (node-in-row, dim) net -> track
  std::vector<u64> col_track_of_;
};

}  // namespace bfly
