// Wires: rectilinear polylines with a wiring layer per segment.
//
// Layer 0 is the active layer (network nodes); wire segments run on layers
// 1..L.  A wire's endpoints attach to nodes: the checker inserts implicit
// vertical (z-direction) vias from the node surface (layer 0) up to the
// first/last segment's layer, and between consecutive segments on different
// layers.  Under the Thompson model the layers are interpreted as the
// conventional two-layer H/V discipline.
#pragma once

#include <optional>
#include <vector>

#include "layout/geometry.hpp"

namespace bfly {

struct Wire {
  /// Polyline vertices; size >= 2.  Consecutive points differ in exactly one
  /// coordinate (axis-parallel segments of nonzero length).
  std::vector<Point> points;
  /// layers[i] is the wiring layer of segment points[i] -> points[i+1].
  std::vector<int> layers;
  /// Node ids the endpoints attach to (checked against node rects).
  std::optional<u64> from_node;
  std::optional<u64> to_node;

  std::size_t num_segments() const { return layers.size(); }

  /// Wire length in grid edges (x-y only; z vias are not counted, matching
  /// the paper's wire-length accounting).
  i64 length() const {
    i64 total = 0;
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      total += std::abs(points[i + 1].x - points[i].x) + std::abs(points[i + 1].y - points[i].y);
    }
    return total;
  }

  /// Bounding box of the polyline.
  Rect bbox() const {
    Rect r;
    for (const Point& p : points) r = r.united(p);
    return r;
  }
};

/// Convenience builder for the common up-over-down channel route patterns.
class WireBuilder {
 public:
  explicit WireBuilder(Point start) { points_.push_back(start); }

  /// Extends the wire to (x, current y) on `layer`; no-op when already there.
  WireBuilder& to_x(i64 x, int layer) {
    if (x != points_.back().x) add({x, points_.back().y}, layer);
    return *this;
  }
  /// Extends the wire to (current x, y) on `layer`; no-op when already there.
  WireBuilder& to_y(i64 y, int layer) {
    if (y != points_.back().y) add({points_.back().x, y}, layer);
    return *this;
  }

  WireBuilder& from(u64 node) {
    wire_from_ = node;
    return *this;
  }
  WireBuilder& to(u64 node) {
    wire_to_ = node;
    return *this;
  }

  Wire build() {
    BFLY_REQUIRE(points_.size() >= 2, "wire must have at least one segment");
    Wire w;
    w.points = std::move(points_);
    w.layers = std::move(layers_);
    w.from_node = wire_from_;
    w.to_node = wire_to_;
    return w;
  }

 private:
  void add(Point p, int layer) {
    BFLY_REQUIRE(layer >= 1, "wire segments must run on layers >= 1");
    points_.push_back(p);
    layers_.push_back(layer);
  }

  std::vector<Point> points_;
  std::vector<int> layers_;
  std::optional<u64> wire_from_;
  std::optional<u64> wire_to_;
};

}  // namespace bfly
