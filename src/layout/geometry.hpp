// Integer rectilinear geometry primitives for VLSI grid layouts.
//
// Coordinates are 64-bit signed grid indices.  Following the Thompson model
// convention, "width" of an x-interval [x0, x1] counts grid columns
// (x1 - x0 + 1): a single track has width 1.  All geometry in the library is
// exact; no floating point.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace bfly {

struct Point {
  i64 x = 0;
  i64 y = 0;
  friend bool operator==(const Point&, const Point&) = default;
  friend auto operator<=>(const Point&, const Point&) = default;
};

/// Closed axis-aligned rectangle [x0, x1] x [y0, y1] of grid points.
struct Rect {
  i64 x0 = 0;
  i64 y0 = 0;
  i64 x1 = -1;  // empty by default
  i64 y1 = -1;

  static Rect square(i64 x, i64 y, i64 side) {
    BFLY_REQUIRE(side >= 1, "square side must be positive");
    return Rect{x, y, x + side - 1, y + side - 1};
  }

  bool empty() const { return x1 < x0 || y1 < y0; }
  i64 width() const { return empty() ? 0 : x1 - x0 + 1; }
  i64 height() const { return empty() ? 0 : y1 - y0 + 1; }
  i64 area() const { return width() * height(); }

  bool contains(Point p) const {
    return !empty() && p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  bool intersects(const Rect& o) const {
    return !empty() && !o.empty() && x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
  /// Smallest rectangle containing both.
  Rect united(const Rect& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return Rect{std::min(x0, o.x0), std::min(y0, o.y0), std::max(x1, o.x1), std::max(y1, o.y1)};
  }
  Rect united(Point p) const { return united(Rect{p.x, p.y, p.x, p.y}); }

  friend bool operator==(const Rect&, const Rect&) = default;
};

enum class Orientation { kHorizontal, kVertical };

/// Closed 1-D integer interval [lo, hi].
struct Interval {
  i64 lo = 0;
  i64 hi = -1;
  bool empty() const { return hi < lo; }
  i64 length() const { return empty() ? 0 : hi - lo + 1; }
  bool contains(i64 v) const { return v >= lo && v <= hi; }
  bool overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

inline Interval make_interval(i64 a, i64 b) {
  return a <= b ? Interval{a, b} : Interval{b, a};
}

}  // namespace bfly
