// Rendering of layouts to SVG (for inspecting the Fig. 3 / Fig. 4 style
// constructions) and to coarse ASCII art (for terminal-friendly smoke
// output in examples).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "layout/layout.hpp"

namespace bfly {

struct RenderOptions {
  /// Pixels per grid unit in the SVG output.
  double scale = 4.0;
  /// Color wires by layer (otherwise all wires are drawn alike).
  bool color_by_layer = true;
  /// Optional congestion overlay: one heat value in [0, 1] per wire,
  /// index-aligned with layout.wires().  When set it overrides the layer
  /// coloring — each wire is drawn on a blue → yellow → red ramp (heat_color)
  /// with its stroke width scaled by heat, so hot links read at a glance.
  const std::vector<double>* wire_heat = nullptr;
  /// Optional fault overlay: wires flagged here (index-aligned with
  /// layout.wires()) are *dead links* and render distinctly — thin, dashed,
  /// neutral gray — overriding heat and layer coloring, so failed hardware
  /// is unmistakable next to the congestion ramp.
  const std::vector<bool>* wire_dead = nullptr;
};

/// The heatmap color ramp: 0 → cool blue, 0.5 → yellow, 1 → red, as an SVG
/// "#rrggbb" string.  Values outside [0, 1] are clamped.
std::string heat_color(double t);

/// Renders the layout as a standalone SVG document.
///
/// Output is byte-deterministic: float formatting is pinned to the classic
/// ("C") locale regardless of the process-global locale, and nothing in the
/// document depends on thread count, wall clock, or iteration order — two
/// renders of the same layout and options are byte-identical
/// (tests/test_render_determinism.cpp).
std::string render_svg(const Layout& layout, const RenderOptions& options = {});

/// Heatmap-over-time film strip: one small-multiple congestion frame per
/// entry of `frames`, laid out left-to-right then top-to-bottom, each frame
/// the full layout rendered with that frame's heat vector (index-aligned
/// with layout.wires(), values in [0, 1] — the caller normalizes occupancy
/// counts, e.g. by queue capacity).  `cycles` is parallel to `frames` and
/// captions each frame with its simulation cycle; pass an empty span to
/// skip captions.  `options.wire_heat` is ignored (each frame supplies its
/// own); `wire_dead` and the rest apply to every frame.  Deterministic the
/// same way render_svg is.
struct HeatmapFilmOptions {
  RenderOptions base;
  /// Frames per row of the strip (>= 1).
  int columns = 4;
  /// Pixel gap between adjacent frames (also the caption band height).
  double gap = 14.0;
};
std::string render_svg_small_multiples(const Layout& layout,
                                       std::span<const std::vector<double>> frames,
                                       std::span<const u64> cycles,
                                       const HeatmapFilmOptions& options = {});

/// Coarse ASCII rendering onto a `cols` x `rows` character canvas:
/// '#' = node, '-' / '|' = wire, '+' = both orientations.
std::string render_ascii(const Layout& layout, int cols = 100, int rows = 40);

/// Figure 1/2-style multistage network diagram: stages left to right, rows
/// top to bottom, one line per link.  Works for any multistage network
/// presented as (rows, stages, link enumerator).
std::string render_multistage_svg(
    u64 rows, int stages,
    const std::function<void(const std::function<void(u64, int, u64)>&)>& for_each_link);

}  // namespace bfly
