#include "layout/collinear.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfly {

u64 collinear_track_count(u64 n, u64 multiplicity) {
  return multiplicity * ((n * n) / 4);
}

u64 chen_agrawal_track_count(u64 n) {
  BFLY_REQUIRE(is_pow2(n) && n >= 2, "Chen-Agrawal count defined for powers of two");
  // 4 (4^{log2 n - 1} - 1) / 3
  const int lg = ilog2(n);
  const u64 p = pow2(2 * (lg - 1));  // 4^{lg-1}
  return 4 * (p - 1) / 3;
}

u64 collinear_cut_lower_bound(u64 n, u64 multiplicity) {
  u64 best = 0;
  // Cut between positions c-1 and c: links (i, j) with i < c <= j.
  for (u64 c = 1; c < n; ++c) {
    const u64 crossing = c * (n - c);
    best = std::max(best, crossing);
  }
  return best * multiplicity;
}

u64 CollinearLayout::track_index(u64 i, u64 j, u64 r) const {
  BFLY_REQUIRE(i < j && j < num_nodes && r < multiplicity, "bad link coordinates");
  // Flattened by canonical link order: for each i < j, link slot
  // lin = i * num_nodes + j (sparse but simple).
  return track_assignment[(i * num_nodes + j) * multiplicity + r];
}

CollinearLayout collinear_complete_graph(u64 n, const CollinearOptions& options) {
  BFLY_REQUIRE(n >= 2, "collinear layout needs at least 2 nodes");
  BFLY_TRACE_SCOPE("collinear.layout");
  const u64 mult = options.multiplicity;
  BFLY_REQUIRE(mult >= 1, "multiplicity must be positive");

  CollinearLayout result;
  result.num_nodes = n;
  result.multiplicity = mult;
  result.num_tracks = collinear_track_count(n, mult);

  // Node squares: degree (n-1)*mult terminals on the top edge.
  const i64 side = static_cast<i64>((n - 1) * mult);
  result.node_side = side;
  {
    BFLY_TRACE_SCOPE("collinear.place_nodes");
    for (u64 i = 0; i < n; ++i) {
      result.layout.add_node(i, Rect::square(static_cast<i64>(i) * side, 0, side));
    }
  }
  const i64 node_top = side - 1;

  // Terminal column on node i's top edge for the wire toward neighbor j,
  // replica r: neighbors in ascending order, replicas within.
  const auto term_x = [&](u64 i, u64 j, u64 r) -> i64 {
    const u64 slot = (j < i ? j : j - 1) * mult + r;
    return static_cast<i64>(i) * side + static_cast<i64>(slot);
  };

  // Track base offsets per type: type d occupies min(d, n-d) classes, each
  // with `mult` replica tracks.
  std::vector<u64> type_base(n, 0);
  for (u64 d = 1; d + 1 < n; ++d) {
    type_base[d + 1] = type_base[d] + std::min(d, n - d) * mult;
  }
  const u64 total_logical =
      type_base[n - 1] + std::min<u64>(n - 1, n - (n - 1)) * mult;
  BFLY_CHECK(total_logical == result.num_tracks, "track census must match floor(N^2/4)");

  // Logical -> physical track order (optionally reversed so that the longest
  // spans, which live in the highest types, get the lowest tracks).
  const auto physical_track = [&](u64 logical) -> u64 {
    return options.reverse_tracks ? (result.num_tracks - 1 - logical) : logical;
  };

  result.track_assignment.assign(n * n * mult, ~u64{0});

  BFLY_TRACE_SCOPE("collinear.assign_tracks");
  for (u64 i = 0; i < n; ++i) {
    for (u64 j = i + 1; j < n; ++j) {
      const u64 d = j - i;
      // Track class within the type (paper, Appendix B).
      const u64 cls = (d <= n - d) ? (i % d) : i;  // i in [0, n-d) for long types
      for (u64 r = 0; r < mult; ++r) {
        const u64 logical = type_base[d] + cls * mult + r;
        const u64 track = physical_track(logical);
        result.track_assignment[(i * n + j) * mult + r] = track;
        const i64 track_y = node_top + 1 + static_cast<i64>(track);
        const i64 xa = term_x(i, j, r);
        const i64 xb = term_x(j, i, r);
        Wire w = WireBuilder(Point{xa, node_top})
                     .from(i)
                     .to_y(track_y, 1)
                     .to_x(xb, 2)
                     .to_y(node_top, 1)
                     .to(j)
                     .build();
        result.layout.add_wire(std::move(w));
      }
    }
  }
  obs::set(obs::get_gauge("collinear.num_tracks"), static_cast<double>(result.num_tracks));
  obs::add(obs::get_counter("collinear.wires"),
           static_cast<u64>(result.layout.wires().size()));
  return result;
}

}  // namespace bfly
