#include "layout/product_layout.hpp"

#include <algorithm>

#include "layout/track_assign.hpp"

namespace bfly {

ProductLayoutPlan::FactorWiring ProductLayoutPlan::wire_factor(const Graph& g, i64 pitch) {
  FactorWiring w;
  w.incident.assign(g.num_nodes(), {});
  const auto edges = g.edges();
  w.slot_of_edge_lo.assign(edges.size(), 0);
  w.slot_of_edge_hi.assign(edges.size(), 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto& [a, b] = edges[e];
    BFLY_REQUIRE(a != b, "product layout requires loop-free factors");
    w.slot_of_edge_lo[e] = w.incident[a].size();
    w.incident[a].emplace_back(e, w.slot_of_edge_lo[e]);
    w.slot_of_edge_hi[e] = w.incident[b].size();
    w.incident[b].emplace_back(e, w.slot_of_edge_hi[e]);
  }
  for (const auto& inc : w.incident) {
    w.max_degree = std::max(w.max_degree, static_cast<u64>(inc.size()));
  }
  std::vector<Interval> intervals;
  intervals.reserve(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto& [a, b] = edges[e];
    intervals.push_back(make_interval(
        static_cast<i64>(a) * pitch + static_cast<i64>(w.slot_of_edge_lo[e]),
        static_cast<i64>(b) * pitch + static_cast<i64>(w.slot_of_edge_hi[e])));
  }
  const TrackAssignment assignment = assign_tracks_left_edge(intervals);
  w.edge_track = assignment.track;
  w.tracks = assignment.num_tracks;
  return w;
}

ProductLayoutPlan::ProductLayoutPlan(Graph rows_graph, Graph cols_graph,
                                     ProductLayoutOptions options)
    : rows_graph_(std::move(rows_graph)), cols_graph_(std::move(cols_graph)), options_(options) {
  BFLY_REQUIRE(rows_graph_.num_nodes() >= 1 && cols_graph_.num_nodes() >= 1,
               "factors must be non-empty");
  BFLY_REQUIRE(options_.layers >= 2, "at least two wiring layers are required");

  // Max degree decides the node side (one terminal slot per incident edge on
  // the top edge for column-factor links and on the right edge for
  // row-factor links, plus a corner spare).
  u64 max_deg = 0;
  for (u64 v = 0; v < rows_graph_.num_nodes(); ++v) max_deg = std::max(max_deg, rows_graph_.degree(v));
  for (u64 v = 0; v < cols_graph_.num_nodes(); ++v) max_deg = std::max(max_deg, cols_graph_.degree(v));
  const i64 min_side = std::max<i64>(4, static_cast<i64>(max_deg) + 1);
  node_side_ = options_.node_side == 0 ? min_side : options_.node_side;
  BFLY_REQUIRE(node_side_ >= min_side, "node side must host one terminal per incident link");

  row_wiring_ = wire_factor(cols_graph_, node_side_);
  col_wiring_ = wire_factor(rows_graph_, node_side_);
  row_tracks_ = row_wiring_.tracks;
  col_tracks_ = col_wiring_.tracks;

  const int L = options_.layers;
  row_groups_ = L % 2 == 0 ? static_cast<u64>(L) / 2 : (static_cast<u64>(L) + 1) / 2;
  col_groups_ =
      L % 2 == 0 ? static_cast<u64>(L) / 2 : std::max<u64>(1, (static_cast<u64>(L) - 1) / 2);
  row_positions_ =
      row_tracks_ == 0 ? 0 : ceil_div(static_cast<i64>(row_tracks_), static_cast<i64>(row_groups_));
  col_positions_ =
      col_tracks_ == 0 ? 0 : ceil_div(static_cast<i64>(col_tracks_), static_cast<i64>(col_groups_));

  cell_width_ = node_side_ + col_positions_;
  cell_height_ = node_side_ + row_positions_;
}

i64 ProductLayoutPlan::fold(u64 track, bool horizontal, int* v_layer, int* h_layer) const {
  const int L = options_.layers;
  const u64 groups = horizontal ? row_groups_ : col_groups_;
  const u64 g = track % groups;
  const i64 position = static_cast<i64>(track / groups);
  if (L % 2 == 0) {
    *v_layer = static_cast<int>(2 * g + 1);
    *h_layer = static_cast<int>(2 * g + 2);
  } else if (horizontal) {
    *h_layer = static_cast<int>(2 * g + 1);
    *v_layer = std::min(static_cast<int>(2 * g + 2), L - 1);
  } else {
    *v_layer = static_cast<int>(2 * g + 2);
    *h_layer = std::min(static_cast<int>(2 * g + 3), L);
  }
  return position;
}

void ProductLayoutPlan::for_each_node(const std::function<void(u64, Rect)>& fn) const {
  for (u64 i = 0; i < grid_rows(); ++i) {
    for (u64 j = 0; j < grid_cols(); ++j) {
      fn(node_id(i, j), Rect::square(static_cast<i64>(j) * cell_width_,
                                     static_cast<i64>(i) * cell_height_, node_side_));
    }
  }
}

void ProductLayoutPlan::for_each_wire(const std::function<void(Wire&&)>& fn) const {
  const auto col_edges = cols_graph_.edges();
  const auto row_edges = rows_graph_.edges();
  // Column-factor links, one copy per grid row, in the row channels.
  for (u64 i = 0; i < grid_rows(); ++i) {
    const i64 y0 = static_cast<i64>(i) * cell_height_;
    for (std::size_t e = 0; e < col_edges.size(); ++e) {
      const auto& [a, b] = col_edges[e];
      int vl = 0;
      int hl = 0;
      const i64 pos = fold(row_wiring_.edge_track[e], /*horizontal=*/true, &vl, &hl);
      const i64 track_y = y0 + node_side_ + pos;
      const i64 ax = static_cast<i64>(a) * cell_width_ +
                     static_cast<i64>(row_wiring_.slot_of_edge_lo[e]);
      const i64 bx = static_cast<i64>(b) * cell_width_ +
                     static_cast<i64>(row_wiring_.slot_of_edge_hi[e]);
      fn(WireBuilder(Point{ax, y0 + node_side_ - 1})
             .from(node_id(i, a))
             .to_y(track_y, vl)
             .to_x(bx, hl)
             .to_y(y0 + node_side_ - 1, vl)
             .to(node_id(i, b))
             .build());
    }
  }
  // Row-factor links, one copy per grid column, in the column channels.
  for (u64 j = 0; j < grid_cols(); ++j) {
    const i64 x0 = static_cast<i64>(j) * cell_width_;
    for (std::size_t e = 0; e < row_edges.size(); ++e) {
      const auto& [a, b] = row_edges[e];
      int vl = 0;
      int hl = 0;
      const i64 pos = fold(col_wiring_.edge_track[e], /*horizontal=*/false, &vl, &hl);
      const i64 track_x = x0 + node_side_ + pos;
      const i64 ay = static_cast<i64>(a) * cell_height_ +
                     static_cast<i64>(col_wiring_.slot_of_edge_lo[e]);
      const i64 by = static_cast<i64>(b) * cell_height_ +
                     static_cast<i64>(col_wiring_.slot_of_edge_hi[e]);
      fn(WireBuilder(Point{x0 + node_side_ - 1, ay})
             .from(node_id(a, j))
             .to_x(track_x, hl)
             .to_y(by, vl)
             .to_x(x0 + node_side_ - 1, hl)
             .to(node_id(b, j))
             .build());
    }
  }
}

Layout ProductLayoutPlan::materialize() const {
  Layout layout;
  for_each_node([&](u64 id, Rect r) { layout.add_node(id, r); });
  for_each_wire([&](Wire&& w) { layout.add_wire(std::move(w)); });
  return layout;
}

LayoutMetrics ProductLayoutPlan::metrics() const {
  LayoutMetrics m;
  Rect box;
  for_each_node([&](u64, Rect r) { box = box.united(r); });
  for_each_wire([&](Wire&& w) {
    box = box.united(w.bbox());
    const i64 len = w.length();
    m.max_wire_length = std::max(m.max_wire_length, len);
    m.total_wire_length += len;
    for (const int layer : w.layers) m.num_layers = std::max(m.num_layers, layer);
    ++m.num_wires;
  });
  m.width = box.width();
  m.height = box.height();
  m.area = m.width * m.height;
  m.volume = static_cast<i64>(m.num_layers) * m.area;
  m.num_nodes = num_nodes();
  return m;
}

Graph ProductLayoutPlan::product_graph() const {
  Graph g(num_nodes());
  for (u64 i = 0; i < grid_rows(); ++i) {
    for (const auto& [a, b] : cols_graph_.edges()) g.add_edge(node_id(i, a), node_id(i, b));
  }
  for (u64 j = 0; j < grid_cols(); ++j) {
    for (const auto& [a, b] : rows_graph_.edges()) g.add_edge(node_id(a, j), node_id(b, j));
  }
  return g;
}

}  // namespace bfly
