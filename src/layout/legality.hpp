// Machine-checked layout legality.
//
// Two rule sets, matching the paper's two models:
//
// * Thompson model (Sec. 3.1): layers are ignored; horizontal and vertical
//   segments form the two implicit wiring layers.  Different wires may not
//   share a point with the same orientation (no overlaps), may cross only
//   properly (interior-to-interior; a shared endpoint would be a knock-knee
//   or an overlapped via), and no segment may enter a node square except for
//   a wire touching its own terminal node at exactly its endpoint.
//
// * Multilayer 2-D grid model (Sec. 4.1): wires are 3-D grid paths that must
//   be node- and edge-disjoint.  Segments carry explicit layers (1..L);
//   z-direction vias are implied at layer changes (bends) and at terminals
//   (from the node surface on layer 1 to the first/last segment's layer).
//   Different wires may not share any 3-D grid point: same-layer segments may
//   neither overlap nor cross, vias block their full z-range at their (x, y),
//   and network nodes occupy their rectangle on layer 1.
//
// The checkers are exact (no sampling) and run in O(S log S) for S segments.
#pragma once

#include <string>
#include <vector>

#include "layout/layout.hpp"

namespace bfly {

struct LegalityReport {
  bool ok = true;
  /// Human-readable descriptions of violations (capped at `max_violations`).
  std::vector<std::string> violations;
  u64 segments_checked = 0;
  u64 vias_checked = 0;

  explicit operator bool() const { return ok; }
  std::string summary() const;
};

/// Thompson-model check (2 implicit layers).
LegalityReport check_thompson(const Layout& layout, std::size_t max_violations = 8);

/// Multilayer 2-D grid model check (explicit layers, implied vias).
LegalityReport check_multilayer(const Layout& layout, std::size_t max_violations = 8);

}  // namespace bfly
