// Multilayer 3-D grid layouts with multiple active layers (the Sec. 4.2
// closing construction): a (k1+k2+k3+k4)-dimensional butterfly is built from
// 2^k4 stacked copies of the 2-D multilayer layout of the (k1+k2+k3)-
// dimensional butterfly (each block additionally hosting a nucleus B_k4
// column), with the level-4 swap links running *vertically* between copies,
// connected like a collinear layout of a 2^k4-node complete graph along z.
//
// The footprint is real, measured geometry (a ButterflyLayoutPlan); the
// z-direction is accounted analytically: every inter-copy link occupies a
// private (x, y) grid point through the layer stack (the per-block
// feedthrough demand is checked against the measured block area), and the
// z-channel between adjacent copies must fit the collinear K_{2^k4} track
// count.  The paper's stated optimum L = Theta(sqrt(N)/log N) for volume is
// exposed through a sweep helper.
#pragma once

#include "layout/butterfly_layout.hpp"

namespace bfly {

struct Butterfly3DOptions {
  /// Wiring layers available inside each copy's 2-D layout.
  int layers_per_copy = 2;
  i64 node_side = 4;
  bool fold_block_channels = true;
};

struct Butterfly3DPlan {
  std::vector<int> k;  ///< {k1, k2, k3, k4}
  int n = 0;           ///< total dimension
  u64 copies = 0;      ///< 2^k4 active layers (L_A)
  // Footprint (from the real 2-D plan of {k1,k2,k3}, widened by one extra
  // stage column per copy for the B_k4 nucleus stages).
  i64 footprint_width = 0;
  i64 footprint_height = 0;
  i64 footprint_area = 0;
  // z accounting.
  int layers_per_copy = 0;
  int total_layers = 0;  ///< copies * (1 active + layers_per_copy wiring)
  i64 volume = 0;        ///< total_layers * footprint_area
  i64 max_wire_length = 0;  ///< max(intra-copy wire, tallest vertical link)
  u64 feedthroughs_per_block = 0;  ///< vertical link endpoints per block
  bool feedthroughs_fit = false;   ///< block area hosts the feedthrough grid
};

/// Plans the stacked layout; k must have exactly 4 groups with k4 >= 1 and
/// the usual feasibility constraints.
Butterfly3DPlan plan_butterfly_3d(const std::vector<int>& k,
                                  const Butterfly3DOptions& options = {});

/// Volume over a sweep of stack heights for an n-dimensional butterfly:
/// returns (k4, volume) pairs for every feasible split with k1 = k2 = k3.
std::vector<std::pair<int, i64>> volume_sweep(int n, const Butterfly3DOptions& options = {});

}  // namespace bfly
