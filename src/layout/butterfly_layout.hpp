// Optimal butterfly layouts under the Thompson and multilayer grid models
// (Sections 3 and 4): the recursive grid layout scheme.
//
// The n-dimensional butterfly is realized as the swap-butterfly of
// ISN(k1, k2, k3) (k1 + k2 + k3 = n).  Every 2^k1 consecutive rows form a
// *block*; blocks are arranged as a 2^k3 x 2^k2 grid.  sigma_2 links connect
// blocks within a grid row and are wired in the horizontal channel above the
// row using the collinear layout of K_{2^k2} with every wire replicated
// 2^(2+k1-k2) times; sigma_3 links use the vertical channel right of each
// grid column (K_{2^k3}, replication 2^(2+k1-k3)).  Exchange links are routed
// inside blocks by a left-edge channel router.  With L wiring layers the
// channel tracks are folded into groups wired on layer pairs, giving the
// Theorem 4.1 area/wire-length/volume.
//
// The same construction both *materializes* into explicit geometry (checked
// by the Thompson / multilayer legality checkers) and *streams* its wires to
// compute exact metrics for sizes too large to hold in memory.  The two
// paths share one wire enumerator, so the streamed metrics are the metrics
// of the real layout.
#pragma once

#include <functional>
#include <vector>

#include "layout/collinear.hpp"
#include "layout/layout.hpp"
#include "layout/track_assign.hpp"
#include "topology/swap_butterfly.hpp"

namespace bfly {

struct ButterflyLayoutOptions {
  /// Number of wiring layers L >= 2 (Thompson model corresponds to L = 2).
  int layers = 2;
  /// Side of each network node square; >= 4 (degree-4 nodes).  The
  /// scalability claim (Sec. 3/4): any side o(sqrt(N)/(L log N)) leaves the
  /// leading constants unchanged.
  i64 node_side = 4;
  /// Fold the *intra-block* channels (exchange channels, swap channels, and
  /// the level-3 service region) across the layer groups as well.  The
  /// paper's construction leaves block internals on two layers (they are an
  /// o() term); folding them makes the measured area track Theorem 4.1's
  /// 1/L^2 scaling at practical sizes instead of only asymptotically.
  /// Cross-block wires keep all segments on their own channel group's layer
  /// pair, so every via still spans exactly two adjacent layers.
  bool fold_block_channels = false;
};

/// Per-direction channel track folding (Sec. 4.2).
struct ChannelFold {
  u64 logical_tracks = 0;  ///< unfolded track count (Thompson)
  u64 groups = 1;          ///< number of layer-pair groups
  i64 positions = 0;       ///< physical track positions = ceil(logical/groups)
};

class ButterflyLayoutPlan {
 public:
  /// k must have exactly 3 levels; see choose_parameters for the paper's
  /// general-dimension rule.
  ButterflyLayoutPlan(std::vector<int> k, ButterflyLayoutOptions options = {});

  /// The Section 3.3 parameter rule: split n into (k1, k2, k3) with
  /// k1 >= k2 >= k3 and k1 - k3 <= 1.  Requires n >= 3.
  static std::vector<int> choose_parameters(int n);

  const SwapButterfly& network() const { return sb_; }
  const ButterflyLayoutOptions& options() const { return options_; }

  // Derived dimensions (exact, shared with the geometry).
  i64 block_width() const { return block_width_; }
  i64 block_height() const { return block_height_; }
  i64 cell_width() const { return cell_width_; }
  i64 cell_height() const { return cell_height_; }
  u64 grid_cols() const { return pow2(k_[1]); }  ///< blocks per grid row
  u64 grid_rows() const { return pow2(k_[2]); }
  const ChannelFold& row_fold() const { return row_fold_; }
  const ChannelFold& col_fold() const { return col_fold_; }
  i64 width() const { return static_cast<i64>(grid_cols()) * cell_width_; }
  i64 height() const { return static_cast<i64>(grid_rows()) * cell_height_; }

  /// Streams every node rectangle (id = SwapButterfly::node_id).
  void for_each_node(const std::function<void(u64, Rect)>& fn) const;
  /// Streams every wire of the layout.
  void for_each_wire(const std::function<void(Wire&&)>& fn) const;

  /// Full geometry, feasible for moderate n (memory ~ num_links).
  Layout materialize() const;
  /// Exact metrics via streaming (no geometry retained).
  LayoutMetrics metrics() const;

 private:
  // --- coordinate helpers ---------------------------------------------------
  u64 block_of_row(u64 row) const { return row >> k_[0]; }
  u64 local_row(u64 row) const { return row & (pow2(k_[0]) - 1); }
  u64 grid_row_of_block(u64 b) const { return b >> k_[1]; }
  u64 grid_col_of_block(u64 b) const { return b & (pow2(k_[1]) - 1); }
  i64 block_x0(u64 b) const { return static_cast<i64>(grid_col_of_block(b)) * cell_width_; }
  i64 block_y0(u64 b) const { return static_cast<i64>(grid_row_of_block(b)) * cell_height_; }
  /// y of terminal `offset` (0..3) on node (row, stage).
  i64 terminal_y(u64 row, int offset) const;
  /// x of the left/right edge terminals of stage column s.
  i64 column_x0(int s) const;
  /// x of intra-channel track t in the channel between stages s and s+1
  /// (block-local).
  i64 channel_track_x(int s, i64 t) const;
  /// Absolute x of row-channel / column-channel physical positions.
  i64 row_track_y(u64 grid_row, u64 logical_track, int* h_layer, int* v_layer) const;
  i64 col_track_x(u64 grid_col, u64 logical_track, int* h_layer, int* v_layer) const;

  void emit_exchange_wire(u64 u, int s, int kind, const std::function<void(Wire&&)>& fn) const;
  void emit_level2_wire(u64 u, int kind, const std::function<void(Wire&&)>& fn) const;
  void emit_level3_wire(u64 u, int kind, const std::function<void(Wire&&)>& fn) const;

  /// Replica index of the boundary link leaving (u, kind) among all links
  /// between its block pair, plus the collinear track lookup.
  u64 boundary_replica(int level, u64 u, int kind) const;

  /// Slot (vertical track index for level-2, service/track index for
  /// level-3) of a link endpoint within its block's swap channel.  Slots are
  /// ordered primarily by the *peer block position*, which is what makes
  /// spans of links sharing a collinear track monotone and disjoint.
  i64 swap_channel_slot(int level, bool out, u64 row, int kind) const;

  /// With fold_block_channels: the physical swap-channel track of an
  /// endpoint.  Cross-block endpoints of the same channel group get dense
  /// peer-monotone ranks and overlay the groups on a shared x-range;
  /// in-block links live in a dedicated trailing range.  Without folding,
  /// returns the raw slot.
  i64 folded_swap_track(int level, bool out, u64 row, int kind) const;
  /// Width of the (possibly folded) level-2/3 swap channel.
  i64 swap_channel_width(int level) const;
  void build_fold_tables();

  /// Layer pair for intra-block wiring of internal fold group g.
  int internal_group_count() const;

  std::vector<int> k_;
  ButterflyLayoutOptions options_;
  SwapButterfly sb_;
  int n_;
  i64 node_side_;

  // Intra-block channel structure.
  std::vector<i64> chan_width_;                 // per transition s
  std::vector<std::vector<u64>> exchange_track_;  // per transition: net -> track
  std::vector<i64> col_x0_;                     // per stage column (block-local)
  i64 service_height_ = 0;
  i64 block_width_ = 0;
  i64 block_height_ = 0;

  // Channel folding.
  ChannelFold row_fold_;
  ChannelFold col_fold_;
  i64 cell_width_ = 0;
  i64 cell_height_ = 0;

  // Collinear track tables for inter-block channels.
  std::vector<u64> row_type_base_;  // per type d, base logical track
  std::vector<u64> col_type_base_;
  u64 row_mult_ = 0;
  u64 col_mult_ = 0;

  // Block-channel folding (fold_block_channels).  For level 2 the tables are
  // per grid-column position; for level 3 per grid-row position.  Each maps
  // a swap-channel slot to its folded physical track.
  std::vector<std::vector<i64>> l2_fold_;  // [column position][slot] -> track
  std::vector<std::vector<i64>> l3_fold_;
  i64 l2_width_ = 0;  // folded channel width (max over positions)
  i64 l3_width_ = 0;
};

/// Physical wire length of every butterfly link of the laid-out network,
/// indexed by the routing layer's dense link id
/// (stage * rows + row) * 2 + cross, where `row` is the *butterfly* row of
/// the link's stage-s endpoint (the plan's swap-butterfly rows are mapped
/// through rho).  This is the bridge between the simulators' per-hop traces
/// and the layout's geometry: feeding the table to obs::flight_distance
/// prices a recorded packet journey in routing tracks actually traveled.
/// Streams the wires (no geometry retained); O(num_links) memory.
std::vector<i64> link_wire_lengths(const ButterflyLayoutPlan& plan);

}  // namespace bfly
