#include "layout/legality.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfly {

std::string LegalityReport::summary() const {
  if (ok) {
    std::ostringstream os;
    os << "legal (" << segments_checked << " segments, " << vias_checked << " vias)";
    return os.str();
  }
  std::ostringstream os;
  os << violations.size() << "+ violations; first: " << (violations.empty() ? "?" : violations[0]);
  return os.str();
}

namespace {

struct CheckSeg {
  u64 wire = 0;
  u32 index = 0;  // segment index within the wire
  int layer = 0;
  Orientation orient = Orientation::kHorizontal;
  i64 fixed = 0;   // y for horizontal, x for vertical
  Interval range;  // x-range for horizontal, y-range for vertical

  Point low_point() const {
    return orient == Orientation::kHorizontal ? Point{range.lo, fixed} : Point{fixed, range.lo};
  }
  Point high_point() const {
    return orient == Orientation::kHorizontal ? Point{range.hi, fixed} : Point{fixed, range.hi};
  }
  bool covers(Point p) const {
    return orient == Orientation::kHorizontal ? (p.y == fixed && range.contains(p.x))
                                              : (p.x == fixed && range.contains(p.y));
  }
};

struct Via {
  u64 wire = 0;
  Point p;
  int zlo = 0;
  int zhi = 0;
};

class Reporter {
 public:
  Reporter(LegalityReport* report, std::size_t cap) : report_(report), cap_(cap) {}

  bool full() const { return report_->violations.size() >= cap_; }

  template <typename... Args>
  void violation(Args&&... args) {
    report_->ok = false;
    if (full()) return;
    std::ostringstream os;
    (os << ... << args);
    report_->violations.push_back(os.str());
  }

 private:
  LegalityReport* report_;
  std::size_t cap_;
};

std::string point_str(Point p) {
  std::ostringstream os;
  os << '(' << p.x << ',' << p.y << ')';
  return os.str();
}

/// Decomposes all wires into canonical segments.
std::vector<CheckSeg> extract_segments(const Layout& layout) {
  std::vector<CheckSeg> segs;
  for (std::size_t w = 0; w < layout.wires().size(); ++w) {
    const Wire& wire = layout.wires()[w];
    for (std::size_t i = 0; i + 1 < wire.points.size(); ++i) {
      const Point a = wire.points[i];
      const Point b = wire.points[i + 1];
      CheckSeg s;
      s.wire = static_cast<u64>(w);
      s.index = static_cast<u32>(i);
      s.layer = wire.layers[i];
      if (a.y == b.y) {
        s.orient = Orientation::kHorizontal;
        s.fixed = a.y;
        s.range = make_interval(a.x, b.x);
      } else {
        s.orient = Orientation::kVertical;
        s.fixed = a.x;
        s.range = make_interval(a.y, b.y);
      }
      segs.push_back(s);
    }
  }
  return segs;
}

/// Vias implied by layer changes at bends and by terminal attachment.
/// Terminal vias run from the node surface (layer 1) to the segment layer.
std::vector<Via> extract_vias(const Layout& layout) {
  std::vector<Via> vias;
  for (std::size_t w = 0; w < layout.wires().size(); ++w) {
    const Wire& wire = layout.wires()[w];
    if (wire.from_node.has_value()) {
      vias.push_back(Via{w, wire.points.front(), 1, wire.layers.front()});
    }
    if (wire.to_node.has_value()) {
      vias.push_back(Via{w, wire.points.back(), 1, wire.layers.back()});
    }
    for (std::size_t i = 0; i + 1 < wire.layers.size(); ++i) {
      if (wire.layers[i] != wire.layers[i + 1]) {
        vias.push_back(Via{w, wire.points[i + 1], std::min(wire.layers[i], wire.layers[i + 1]),
                           std::max(wire.layers[i], wire.layers[i + 1])});
      }
    }
  }
  return vias;
}

bool same_wire_adjacent(const CheckSeg& a, const CheckSeg& b) {
  return a.wire == b.wire && (a.index + 1 == b.index || b.index + 1 == a.index);
}

/// Checks that segments of equal orientation in the same group (same implicit
/// or explicit layer and same fixed coordinate) never share a point, except a
/// wire's own consecutive segments touching at the junction.
void check_collinear_overlaps(std::vector<CheckSeg>& segs, Reporter& rep,
                              const char* model_name) {
  std::sort(segs.begin(), segs.end(), [](const CheckSeg& a, const CheckSeg& b) {
    return std::tie(a.layer, a.orient, a.fixed, a.range.lo, a.range.hi) <
           std::tie(b.layer, b.orient, b.fixed, b.range.lo, b.range.hi);
  });
  // Within each (layer, orient, fixed) line, sorted by lo, any overlap must
  // involve the running max-hi segment seen so far; carry it in O(1).
  auto same_line = [](const CheckSeg& a, const CheckSeg& b) {
    return a.layer == b.layer && a.orient == b.orient && a.fixed == b.fixed;
  };
  auto report_pair = [&](const CheckSeg& a, const CheckSeg& b) {
    const bool touch_only = (b.range.lo == a.range.hi);
    if (touch_only && same_wire_adjacent(a, b)) return;
    if (rep.full()) return;
    rep.violation(model_name, ": collinear overlap between wire ", a.wire, " seg ", a.index,
                  " and wire ", b.wire, " seg ", b.index, " at ", point_str(b.low_point()));
  };
  std::size_t carry = 0;  // index of the running max-hi segment in this line
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (i == 0 || !same_line(segs[carry], segs[i])) {
      carry = i;
      continue;
    }
    if (segs[i].range.lo <= segs[carry].range.hi) report_pair(segs[carry], segs[i]);
    if (i != carry + 1 && segs[i].range.lo <= segs[i - 1].range.hi) {
      report_pair(segs[i - 1], segs[i]);
    }
    if (segs[i].range.hi > segs[carry].range.hi) carry = i;
    if (rep.full()) return;
  }
}

/// Orthogonal crossing discipline between horizontal set `hs` and vertical
/// set `vs` (both already restricted to one class, e.g. one layer).
/// `allow_proper`: proper (interior x interior) crossings are legal (Thompson
/// model); improper contacts (a shared endpoint) are always illegal except a
/// wire's own consecutive segments meeting at their bend.
void check_crossings(std::vector<CheckSeg> hs, std::vector<CheckSeg> vs, bool allow_proper,
                     Reporter& rep, const char* model_name) {
  if (hs.empty() || vs.empty()) return;
  // Sweep over x.  Events: horizontal segment activates at range.lo and
  // deactivates after range.hi; vertical segments are queried at their x.
  struct Event {
    i64 x;
    int kind;  // 0 = activate H, 1 = deactivate H, 2 = query V
    std::size_t idx;
  };
  std::vector<Event> events;
  events.reserve(hs.size() * 2 + vs.size());
  for (std::size_t i = 0; i < hs.size(); ++i) {
    events.push_back({hs[i].range.lo, 0, i});
    events.push_back({hs[i].range.hi + 1, 1, i});
  }
  for (std::size_t i = 0; i < vs.size(); ++i) {
    events.push_back({vs[i].fixed, 2, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return std::tie(a.x, a.kind) < std::tie(b.x, b.kind);
  });
  // Active horizontals keyed by y.
  std::multimap<i64, std::size_t> active;
  for (const Event& e : events) {
    if (e.kind == 0) {
      active.emplace(hs[e.idx].fixed, e.idx);
    } else if (e.kind == 1) {
      const auto [lo, hi] = active.equal_range(hs[e.idx].fixed);
      for (auto it = lo; it != hi; ++it) {
        if (it->second == e.idx) {
          active.erase(it);
          break;
        }
      }
    } else {
      const CheckSeg& v = vs[e.idx];
      for (auto it = active.lower_bound(v.range.lo);
           it != active.end() && it->first <= v.range.hi; ++it) {
        const CheckSeg& h = hs[it->second];
        const Point cross{v.fixed, h.fixed};
        const bool h_interior = cross.x > h.range.lo && cross.x < h.range.hi;
        const bool v_interior = cross.y > v.range.lo && cross.y < v.range.hi;
        if (allow_proper && h_interior && v_interior) continue;
        if (same_wire_adjacent(h, v)) continue;
        if (rep.full()) return;
        rep.violation(model_name, ": illegal contact between horizontal wire ", h.wire, " seg ",
                      h.index, " and vertical wire ", v.wire, " seg ", v.index, " at ",
                      point_str(cross));
      }
    }
  }
}

/// Node clearance: `claims` are 1-D vertical ranges or points at a given x
/// that must not touch any node rectangle, except that a wire may touch its
/// own terminal node at exactly its endpoint.
struct NodeClaim {
  i64 x;
  Interval y_range;
  u64 wire;
  // Endpoint exemptions: the wire's terminal points/nodes.
};

void check_node_clearance(const Layout& layout, const std::vector<NodeClaim>& claims,
                          Reporter& rep, const char* model_name) {
  if (layout.nodes().empty() || claims.empty()) return;
  // Sweep over x with active node rectangles keyed by y0.  Node rects with
  // overlapping x but overlapping y would themselves be illegal; checked in
  // check_nodes_disjoint, so the active set has disjoint y-intervals.
  struct Event {
    i64 x;
    int kind;  // 0 = node out, 1 = node in, 2 = claim
    std::size_t idx;
  };
  std::vector<Event> events;
  events.reserve(layout.nodes().size() * 2 + claims.size());
  for (std::size_t i = 0; i < layout.nodes().size(); ++i) {
    const Rect& r = layout.nodes()[i].rect;
    events.push_back({r.x0, 1, i});
    events.push_back({r.x1 + 1, 0, i});
  }
  for (std::size_t i = 0; i < claims.size(); ++i) events.push_back({claims[i].x, 2, i});
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return std::tie(a.x, a.kind) < std::tie(b.x, b.kind);
  });
  std::map<i64, std::size_t> active;  // y0 -> node index
  for (const Event& e : events) {
    if (e.kind == 1) {
      active.emplace(layout.nodes()[e.idx].rect.y0, e.idx);
    } else if (e.kind == 0) {
      active.erase(layout.nodes()[e.idx].rect.y0);
    } else {
      const NodeClaim& c = claims[e.idx];
      // Find nodes whose [y0, y1] overlaps c.y_range.
      auto it = active.upper_bound(c.y_range.hi);
      while (it != active.begin()) {
        --it;
        const PlacedNode& node = layout.nodes()[it->second];
        if (node.rect.y1 < c.y_range.lo) break;
        // Overlap [lo, hi]:
        const i64 lo = std::max(node.rect.y0, c.y_range.lo);
        const i64 hi = std::min(node.rect.y1, c.y_range.hi);
        // Exemption: single-point touch at the claiming wire's endpoint on
        // its own terminal node.
        const Wire& wire = layout.wires()[c.wire];
        bool exempt = false;
        if (lo == hi) {
          const Point touch{c.x, lo};
          if (wire.from_node.has_value() && wire.points.front() == touch &&
              layout.node(*wire.from_node).rect.contains(touch)) {
            exempt = true;
          }
          if (wire.to_node.has_value() && wire.points.back() == touch &&
              layout.node(*wire.to_node).rect.contains(touch)) {
            exempt = true;
          }
        }
        if (!exempt) {
          if (rep.full()) return;
          rep.violation(model_name, ": wire ", c.wire, " intrudes into node ", node.id, " at x=",
                        c.x, " y=[", lo, ",", hi, "]");
        }
      }
    }
  }
}

void check_nodes_disjoint(const Layout& layout, Reporter& rep) {
  // Sweep over x; active rects must have disjoint y-intervals.  Out-events
  // sort before in-events at the same x so that x-adjacent rects never
  // appear simultaneously active.
  struct Event {
    i64 x;
    int kind;  // 0 out, 1 in
    std::size_t idx;
  };
  std::vector<Event> events;
  events.reserve(layout.nodes().size() * 2);
  for (std::size_t i = 0; i < layout.nodes().size(); ++i) {
    events.push_back({layout.nodes()[i].rect.x0, 1, i});
    events.push_back({layout.nodes()[i].rect.x1 + 1, 0, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return std::tie(a.x, a.kind) < std::tie(b.x, b.kind);
  });
  std::map<i64, std::size_t> active;  // y0 -> node index
  for (const Event& e : events) {
    const Rect& r = layout.nodes()[e.idx].rect;
    if (e.kind == 0) {
      auto it = active.find(r.y0);
      if (it != active.end() && it->second == e.idx) active.erase(it);
      continue;
    }
    // Check neighbors in y for overlap.
    auto it = active.lower_bound(r.y0);
    bool conflict = false;
    if (it != active.end() && layout.nodes()[it->second].rect.y0 <= r.y1) conflict = true;
    if (it != active.begin()) {
      auto prev = std::prev(it);
      if (layout.nodes()[prev->second].rect.y1 >= r.y0) conflict = true;
    }
    if (conflict) {
      rep.violation("nodes: overlapping node rectangles involving node ",
                    layout.nodes()[e.idx].id);
      if (rep.full()) return;
    }
    active.emplace(r.y0, e.idx);
  }
}

void check_wire_terminals(const Layout& layout, Reporter& rep) {
  for (std::size_t w = 0; w < layout.wires().size(); ++w) {
    const Wire& wire = layout.wires()[w];
    if (wire.from_node.has_value()) {
      if (!layout.has_node(*wire.from_node)) {
        rep.violation("terminals: wire ", w, " references unknown from-node ", *wire.from_node);
      } else if (!layout.node(*wire.from_node).rect.contains(wire.points.front())) {
        rep.violation("terminals: wire ", w, " start ", point_str(wire.points.front()),
                      " is not on node ", *wire.from_node);
      }
    }
    if (wire.to_node.has_value()) {
      if (!layout.has_node(*wire.to_node)) {
        rep.violation("terminals: wire ", w, " references unknown to-node ", *wire.to_node);
      } else if (!layout.node(*wire.to_node).rect.contains(wire.points.back())) {
        rep.violation("terminals: wire ", w, " end ", point_str(wire.points.back()),
                      " is not on node ", *wire.to_node);
      }
    }
    if (rep.full()) return;
  }
}

/// Point-coverage index over one (layer, orientation) class.
class SegmentIndex {
 public:
  explicit SegmentIndex(const std::vector<CheckSeg>& segs) {
    for (const CheckSeg& s : segs) by_fixed_[s.fixed].push_back(s);
    for (auto& [fixed, list] : by_fixed_) {
      std::sort(list.begin(), list.end(),
                [](const CheckSeg& a, const CheckSeg& b) { return a.range.lo < b.range.lo; });
    }
  }

  /// Returns a segment covering coordinate `along` at `fixed`, or nullptr.
  /// (Assumes non-overlapping segments within a line, which the overlap check
  /// enforces; with overlaps present, any one covering segment is returned.)
  const CheckSeg* covering(i64 fixed, i64 along) const {
    const auto it = by_fixed_.find(fixed);
    if (it == by_fixed_.end()) return nullptr;
    const auto& list = it->second;
    auto pos = std::upper_bound(list.begin(), list.end(), along,
                                [](i64 v, const CheckSeg& s) { return v < s.range.lo; });
    // Segments within a legal line are disjoint except for single-point
    // touches, so at most two candidates can cover `along`.
    for (int back = 0; back < 2 && pos != list.begin(); ++back) {
      --pos;
      if (pos->range.hi >= along) return &*pos;
    }
    return nullptr;
  }

 private:
  std::map<i64, std::vector<CheckSeg>> by_fixed_;
};

}  // namespace

LegalityReport check_thompson(const Layout& layout, std::size_t max_violations) {
  BFLY_TRACE_SCOPE("legality.thompson");
  LegalityReport report;
  Reporter rep(&report, max_violations);
  check_nodes_disjoint(layout, rep);
  check_wire_terminals(layout, rep);

  std::vector<CheckSeg> segs;
  {
    BFLY_TRACE_SCOPE("legality.extract_segments");
    segs = extract_segments(layout);
  }
  report.segments_checked = segs.size();
  obs::add(obs::get_counter("legality.segments_checked"), report.segments_checked);
  // Thompson: layers are implicit (H plane / V plane); normalize layer to 0.
  std::vector<CheckSeg> hs;
  std::vector<CheckSeg> vs;
  for (CheckSeg s : segs) {
    s.layer = 0;
    (s.orient == Orientation::kHorizontal ? hs : vs).push_back(s);
  }
  {
    BFLY_TRACE_SCOPE("legality.collinear_overlaps");
    std::vector<CheckSeg> all = hs;
    all.insert(all.end(), vs.begin(), vs.end());
    check_collinear_overlaps(all, rep, "thompson");
  }
  {
    BFLY_TRACE_SCOPE("legality.crossings");
    check_crossings(hs, vs, /*allow_proper=*/true, rep, "thompson");
  }

  // Node clearance for every segment: claims are vertical ranges per x; a
  // horizontal segment contributes its two endpoints plus is handled by
  // treating it as |range| point claims -- too expensive.  Instead, check
  // horizontal segments with the transposed sweep: reuse claims with x/y
  // swapped by building a transposed layout view.  For simplicity and
  // exactness we emit claims for vertical segments directly and transpose
  // horizontal ones.
  BFLY_TRACE_SCOPE("legality.node_clearance");
  std::vector<NodeClaim> v_claims;
  for (const CheckSeg& s : vs) v_claims.push_back({s.fixed, s.range, s.wire});
  check_node_clearance(layout, v_claims, rep, "thompson");

  // Transposed check for horizontal segments.
  Layout transposed;
  for (const PlacedNode& n : layout.nodes()) {
    transposed.add_node(n.id, Rect{n.rect.y0, n.rect.x0, n.rect.y1, n.rect.x1});
  }
  for (const Wire& w : layout.wires()) {
    Wire t = w;
    for (Point& p : t.points) std::swap(p.x, p.y);
    transposed.add_wire(std::move(t));
  }
  std::vector<NodeClaim> h_claims;
  for (const CheckSeg& s : hs) h_claims.push_back({s.fixed, s.range, s.wire});
  check_node_clearance(transposed, h_claims, rep, "thompson(h)");

  return report;
}

LegalityReport check_multilayer(const Layout& layout, std::size_t max_violations) {
  BFLY_TRACE_SCOPE("legality.multilayer");
  LegalityReport report;
  Reporter rep(&report, max_violations);
  check_nodes_disjoint(layout, rep);
  check_wire_terminals(layout, rep);

  std::vector<CheckSeg> segs;
  {
    BFLY_TRACE_SCOPE("legality.extract_segments");
    segs = extract_segments(layout);
  }
  report.segments_checked = segs.size();
  obs::add(obs::get_counter("legality.segments_checked"), report.segments_checked);

  // Same-layer collinear overlap.
  {
    BFLY_TRACE_SCOPE("legality.collinear_overlaps");
    std::vector<CheckSeg> all = segs;
    check_collinear_overlaps(all, rep, "multilayer");
  }

  // Same-layer crossings: in the 3-D grid model paths must be node-disjoint,
  // so even proper crossings are illegal within a layer.
  int max_layer = 1;
  for (const CheckSeg& s : segs) max_layer = std::max(max_layer, s.layer);
  std::vector<std::vector<CheckSeg>> h_by_layer(static_cast<std::size_t>(max_layer) + 1);
  std::vector<std::vector<CheckSeg>> v_by_layer(static_cast<std::size_t>(max_layer) + 1);
  for (const CheckSeg& s : segs) {
    auto& bucket = (s.orient == Orientation::kHorizontal ? h_by_layer : v_by_layer);
    bucket[static_cast<std::size_t>(s.layer)].push_back(s);
  }
  {
    BFLY_TRACE_SCOPE("legality.crossings");
    for (int layer = 1; layer <= max_layer; ++layer) {
      check_crossings(h_by_layer[static_cast<std::size_t>(layer)],
                      v_by_layer[static_cast<std::size_t>(layer)],
                      /*allow_proper=*/false, rep, "multilayer");
    }
  }

  // Vias: block their (x, y) column across [zlo, zhi].
  std::vector<Via> vias = extract_vias(layout);
  report.vias_checked = vias.size();
  obs::add(obs::get_counter("legality.vias_checked"), report.vias_checked);
  {
    BFLY_TRACE_SCOPE("legality.vias");
    std::sort(vias.begin(), vias.end(), [](const Via& a, const Via& b) {
      return std::tie(a.p.x, a.p.y, a.zlo) < std::tie(b.p.x, b.p.y, b.zlo);
    });
    for (std::size_t i = 0; i + 1 < vias.size(); ++i) {
      const Via& a = vias[i];
      const Via& b = vias[i + 1];
      if (a.p == b.p && b.zlo <= a.zhi) {
        if (a.wire == b.wire) continue;  // same wire stacking at its own bend
        if (rep.full()) break;
        rep.violation("multilayer: via collision between wires ", a.wire, " and ", b.wire,
                      " at ", point_str(a.p));
      }
    }
    // Via vs same-(x,y) segments on intermediate layers.
    std::vector<SegmentIndex> h_index;
    std::vector<SegmentIndex> v_index;
    h_index.reserve(static_cast<std::size_t>(max_layer) + 1);
    v_index.reserve(static_cast<std::size_t>(max_layer) + 1);
    for (int layer = 0; layer <= max_layer; ++layer) {
      h_index.emplace_back(h_by_layer[static_cast<std::size_t>(layer)]);
      v_index.emplace_back(v_by_layer[static_cast<std::size_t>(layer)]);
    }
    for (const Via& via : vias) {
      for (int z = via.zlo; z <= via.zhi && !rep.full(); ++z) {
        const CheckSeg* h = h_index[static_cast<std::size_t>(z)].covering(via.p.y, via.p.x);
        const CheckSeg* v = v_index[static_cast<std::size_t>(z)].covering(via.p.x, via.p.y);
        for (const CheckSeg* s : {h, v}) {
          if (s == nullptr) continue;
          if (s->wire == via.wire) continue;  // a wire may thread its own via
          rep.violation("multilayer: via of wire ", via.wire, " at ", point_str(via.p),
                        " collides with wire ", s->wire, " on layer ", z);
        }
      }
      if (rep.full()) break;
    }
  }

  // Node clearance on layer 1: vertical layer-1 segments, horizontal layer-1
  // segments (via the transposed sweep), and via feet (z range includes 1).
  BFLY_TRACE_SCOPE("legality.node_clearance");
  std::vector<NodeClaim> v_claims;
  for (const CheckSeg& s : v_by_layer[1]) v_claims.push_back({s.fixed, s.range, s.wire});
  for (const Via& via : vias) {
    if (via.zlo <= 1 && via.zhi >= 1) {
      v_claims.push_back({via.p.x, Interval{via.p.y, via.p.y}, via.wire});
    }
  }
  check_node_clearance(layout, v_claims, rep, "multilayer");

  if (!h_by_layer[1].empty()) {
    Layout transposed;
    for (const PlacedNode& n : layout.nodes()) {
      transposed.add_node(n.id, Rect{n.rect.y0, n.rect.x0, n.rect.y1, n.rect.x1});
    }
    for (const Wire& w : layout.wires()) {
      Wire t = w;
      for (Point& p : t.points) std::swap(p.x, p.y);
      transposed.add_wire(std::move(t));
    }
    std::vector<NodeClaim> h_claims;
    for (const CheckSeg& s : h_by_layer[1]) h_claims.push_back({s.fixed, s.range, s.wire});
    check_node_clearance(transposed, h_claims, rep, "multilayer(h)");
  }

  return report;
}

}  // namespace bfly
