// Grid layouts of Cartesian product networks G_rows x G_cols -- the general
// machinery behind the conclusion's "hypercubes and k-ary n-cubes" (and the
// homogeneous product networks of Fernandez & Efe [12], which the paper
// cites for related layout work).
//
// Nodes (i, j) sit on a |G_rows| x |G_cols| grid.  Every grid row is an
// identical copy of G_cols, wired in the horizontal channel above it with
// left-edge-assigned tracks; every grid column is a copy of G_rows in the
// vertical channel to its right.  Channel tracks fold over L layer groups
// exactly as in the butterfly layout.  Tori, meshes, Hamming graphs, and
// hypercubes (Q_n = Q_a x Q_b) all drop out of this one generator.
#pragma once

#include <functional>

#include "layout/layout.hpp"
#include "topology/graph.hpp"

namespace bfly {

struct ProductLayoutOptions {
  int layers = 2;
  i64 node_side = 0;  ///< 0 = auto (max degree + 1, at least 4)
};

class ProductLayoutPlan {
 public:
  /// Both factor graphs are copied; they must be loop-free.
  ProductLayoutPlan(Graph rows_graph, Graph cols_graph, ProductLayoutOptions options = {});

  u64 grid_rows() const { return rows_graph_.num_nodes(); }
  u64 grid_cols() const { return cols_graph_.num_nodes(); }
  u64 num_nodes() const { return grid_rows() * grid_cols(); }
  i64 node_side() const { return node_side_; }
  u64 row_channel_tracks() const { return row_tracks_; }
  u64 col_channel_tracks() const { return col_tracks_; }

  u64 node_id(u64 i, u64 j) const { return i * grid_cols() + j; }

  void for_each_node(const std::function<void(u64, Rect)>& fn) const;
  void for_each_wire(const std::function<void(Wire&&)>& fn) const;
  Layout materialize() const;
  LayoutMetrics metrics() const;

  /// The product graph itself (for structural cross-checks).
  Graph product_graph() const;

 private:
  struct FactorWiring {
    // Terminal slot of each (node, incident edge) pair and track per edge.
    std::vector<std::vector<std::pair<u64, u64>>> incident;  // node -> (edge, slot)
    std::vector<u64> edge_track;
    std::vector<u64> slot_of_edge_lo;  // per edge: slot at the lower endpoint
    std::vector<u64> slot_of_edge_hi;
    u64 tracks = 0;
    u64 max_degree = 0;
  };
  static FactorWiring wire_factor(const Graph& g, i64 pitch);

  i64 fold(u64 track, bool horizontal, int* v_layer, int* h_layer) const;

  Graph rows_graph_;
  Graph cols_graph_;
  ProductLayoutOptions options_;
  i64 node_side_ = 0;
  FactorWiring row_wiring_;  // wiring of G_cols inside each grid row
  FactorWiring col_wiring_;
  u64 row_tracks_ = 0;
  u64 col_tracks_ = 0;
  u64 row_groups_ = 1;
  u64 col_groups_ = 1;
  i64 row_positions_ = 0;
  i64 col_positions_ = 0;
  i64 cell_width_ = 0;
  i64 cell_height_ = 0;
};

}  // namespace bfly
