#include "layout/butterfly_3d.hpp"

#include <algorithm>

#include "layout/collinear.hpp"

namespace bfly {

Butterfly3DPlan plan_butterfly_3d(const std::vector<int>& k, const Butterfly3DOptions& options) {
  BFLY_REQUIRE(k.size() == 4, "the stacked layout is driven by a 4-level ISN");
  validate_swap_parameters(k);
  const int k4 = k[3];

  Butterfly3DPlan plan;
  plan.k = k;
  plan.n = k[0] + k[1] + k[2] + k4;
  plan.copies = pow2(k4);
  plan.layers_per_copy = options.layers_per_copy;

  // The per-copy 2-D layout: a {k1,k2,k3} butterfly layout.  Each copy also
  // hosts its share of the level-4 exchange stages (a nucleus B_k4 per
  // block); within a copy these appear as k4 extra stage columns of the same
  // exchange-channel structure, which we account for by widening every block
  // with k4 extra (node column + widest exchange channel) strips.
  ButterflyLayoutOptions opt2d;
  opt2d.layers = options.layers_per_copy;
  opt2d.node_side = options.node_side;
  opt2d.fold_block_channels = options.fold_block_channels;
  const ButterflyLayoutPlan base({k[0], k[1], k[2]}, opt2d);

  const i64 widest_exchange =
      options.node_side + static_cast<i64>(pow2(k[0])) * options.node_side / 2 + 2;
  const i64 extra_per_block = k4 * widest_exchange;
  const u64 grid_cols = base.grid_cols();
  plan.footprint_width = base.width() + static_cast<i64>(grid_cols) * extra_per_block;
  plan.footprint_height = base.height();
  plan.footprint_area = plan.footprint_width * plan.footprint_height;

  // z accounting: each copy needs 1 active layer + layers_per_copy wiring
  // layers; vertical level-4 links thread the stack at private (x, y)
  // points, so they consume no extra layers -- but each block must host the
  // feedthrough grid: 4 * 2^k1 endpoints per (block, copy boundary), doubled
  // links, placed on the block's own footprint.
  plan.total_layers = static_cast<int>(plan.copies) * (1 + options.layers_per_copy);
  plan.volume = static_cast<i64>(plan.total_layers) * plan.footprint_area;

  plan.feedthroughs_per_block = 4 * pow2(k[0]) * (plan.copies - 1);
  const i64 block_area =
      (base.block_width() + extra_per_block) * base.block_height();
  plan.feedthroughs_fit =
      static_cast<i64>(plan.feedthroughs_per_block) <= block_area / 2;

  // Max wire: the longest intra-copy wire, or the tallest vertical run
  // (collinear-in-z: the longest inter-copy link spans the full stack).
  const LayoutMetrics m2d = base.metrics();
  const i64 tallest_vertical = static_cast<i64>(plan.copies) * (1 + options.layers_per_copy);
  plan.max_wire_length = std::max(m2d.max_wire_length + extra_per_block * 4, tallest_vertical);
  return plan;
}

std::vector<std::pair<int, i64>> volume_sweep(int n, const Butterfly3DOptions& options) {
  std::vector<std::pair<int, i64>> out;
  for (int k4 = 1; k4 < n - 2; ++k4) {
    const int rest = n - k4;
    if (rest < 3) break;
    std::vector<int> k = ButterflyLayoutPlan::choose_parameters(rest);
    if (k4 > k[0] + k[1] + k[2] - k[2]) {
      // k4 <= n_3 is required by the swap-network feasibility rule.
    }
    k.push_back(k4);
    try {
      const Butterfly3DPlan plan = plan_butterfly_3d(k, options);
      if (plan.feedthroughs_fit) out.emplace_back(k4, plan.volume);
    } catch (const InvalidArgument&) {
      // infeasible split (k4 too large); skip
    }
  }
  return out;
}

}  // namespace bfly
