#include "layout/render.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <locale>
#include <sstream>
#include <vector>

#include "obs/trace.hpp"

namespace bfly {

namespace {
constexpr std::array<const char*, 8> kLayerColors = {
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#e377c2"};
constexpr const char* kDeadWireColor = "#9e9e9e";

/// Byte-determinism guard: stream float formatting must not follow the
/// process-global locale (a de_DE-style locale would emit "3,5" and corrupt
/// the SVG), so every SVG stream is pinned to the classic "C" locale.
std::ostringstream make_svg_stream() {
  std::ostringstream svg;
  svg.imbue(std::locale::classic());
  return svg;
}

/// Emits the nodes + wires of one layout view translated by (ox, oy) pixels
/// — the shared body of render_svg (one view at the origin) and
/// render_svg_small_multiples (one view per frame).
void emit_layout_body(std::ostringstream& svg, const Layout& layout, const Rect& box,
                      const RenderOptions& options, double ox, double oy) {
  const double s = options.scale;
  const auto tx = [&](i64 x) { return ox + (static_cast<double>(x - box.x0) + 0.5) * s; };
  // SVG y grows downward; flip so larger grid y is higher.
  const auto ty = [&](i64 y) { return oy + (static_cast<double>(box.y1 - y) + 0.5) * s; };

  for (const PlacedNode& n : layout.nodes()) {
    svg << "<rect x=\"" << tx(n.rect.x0) - 0.5 * s << "\" y=\"" << ty(n.rect.y1) - 0.5 * s
        << "\" width=\"" << static_cast<double>(n.rect.width()) * s << "\" height=\""
        << static_cast<double>(n.rect.height()) * s
        << "\" fill=\"#dddddd\" stroke=\"#333333\" stroke-width=\"1\"/>\n";
  }
  const std::vector<Wire>& wires = layout.wires();
  for (std::size_t wi = 0; wi < wires.size(); ++wi) {
    const Wire& wire = wires[wi];
    const bool dead =
        options.wire_dead != nullptr && wi < options.wire_dead->size() && (*options.wire_dead)[wi];
    std::string heat;
    double width = 1.0;
    if (!dead && options.wire_heat != nullptr && wi < options.wire_heat->size()) {
      const double t = (*options.wire_heat)[wi];
      heat = heat_color(t);
      width = 1.0 + 1.5 * std::clamp(t, 0.0, 1.0);
    }
    for (std::size_t i = 0; i + 1 < wire.points.size(); ++i) {
      const char* color =
          dead          ? kDeadWireColor
          : !heat.empty() ? heat.c_str()
          : options.color_by_layer
              ? kLayerColors[static_cast<std::size_t>(wire.layers[i]) % kLayerColors.size()]
              : "#1f77b4";
      svg << "<line x1=\"" << tx(wire.points[i].x) << "\" y1=\"" << ty(wire.points[i].y)
          << "\" x2=\"" << tx(wire.points[i + 1].x) << "\" y2=\"" << ty(wire.points[i + 1].y)
          << "\" stroke=\"" << color << "\" stroke-width=\"" << width << "\"";
      if (dead) svg << " stroke-dasharray=\"5 4\"";
      svg << "/>\n";
    }
  }
}
}  // namespace

std::string heat_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Two linear segments through (0.25, 0.45, 0.85) blue, (0.95, 0.85, 0.25)
  // yellow, (0.85, 0.15, 0.10) red.
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;
  if (t < 0.5) {
    const double u = t * 2.0;
    r = 0.25 + (0.95 - 0.25) * u;
    g = 0.45 + (0.85 - 0.45) * u;
    b = 0.85 + (0.25 - 0.85) * u;
  } else {
    const double u = (t - 0.5) * 2.0;
    r = 0.95 + (0.85 - 0.95) * u;
    g = 0.85 + (0.15 - 0.85) * u;
    b = 0.25 + (0.10 - 0.25) * u;
  }
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", static_cast<unsigned>(r * 255.0 + 0.5),
                static_cast<unsigned>(g * 255.0 + 0.5), static_cast<unsigned>(b * 255.0 + 0.5));
  return buf;
}

std::string render_svg(const Layout& layout, const RenderOptions& options) {
  BFLY_TRACE_SCOPE("layout.render_svg");
  const Rect box = layout.bounding_box();
  const double s = options.scale;
  std::ostringstream svg = make_svg_stream();
  const double w = static_cast<double>(box.width()) * s;
  const double h = static_cast<double>(box.height()) * s;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
      << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  emit_layout_body(svg, layout, box, options, 0.0, 0.0);
  svg << "</svg>\n";
  return svg.str();
}

std::string render_svg_small_multiples(const Layout& layout,
                                       std::span<const std::vector<double>> frames,
                                       std::span<const u64> cycles,
                                       const HeatmapFilmOptions& options) {
  BFLY_TRACE_SCOPE("layout.render_svg_small_multiples");
  BFLY_REQUIRE(!frames.empty(), "film strip needs at least one frame");
  BFLY_REQUIRE(options.columns >= 1, "film strip needs at least one column");
  BFLY_REQUIRE(cycles.empty() || cycles.size() == frames.size(),
               "cycles must be empty or parallel to frames");

  const Rect box = layout.bounding_box();
  const double s = options.base.scale;
  const double fw = static_cast<double>(box.width()) * s;
  const double fh = static_cast<double>(box.height()) * s;
  const double gap = options.gap;
  const std::size_t cols =
      std::min(frames.size(), static_cast<std::size_t>(options.columns));
  const std::size_t rows = (frames.size() + cols - 1) / cols;
  // Each cell: frame plus a caption band of `gap` pixels below it.
  const double cell_w = fw + gap;
  const double cell_h = fh + 2.0 * gap;
  const double w = gap + cell_w * static_cast<double>(cols);
  const double h = gap + cell_h * static_cast<double>(rows);

  std::ostringstream svg = make_svg_stream();
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
      << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const double ox = gap + cell_w * static_cast<double>(f % cols);
    const double oy = gap + cell_h * static_cast<double>(f / cols);
    RenderOptions frame_options = options.base;
    frame_options.wire_heat = &frames[f];
    svg << "<rect x=\"" << ox - 1.0 << "\" y=\"" << oy - 1.0 << "\" width=\"" << fw + 2.0
        << "\" height=\"" << fh + 2.0
        << "\" fill=\"none\" stroke=\"#cccccc\" stroke-width=\"1\"/>\n";
    emit_layout_body(svg, layout, box, frame_options, ox, oy);
    if (!cycles.empty()) {
      svg << "<text x=\"" << ox << "\" y=\"" << oy + fh + gap << "\" font-family=\"monospace\""
          << " font-size=\"" << gap - 2.0 << "\" fill=\"#333333\">cycle " << cycles[f]
          << "</text>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string render_ascii(const Layout& layout, int cols, int rows) {
  BFLY_REQUIRE(cols > 0 && rows > 0, "canvas must be positive");
  const Rect box = layout.bounding_box();
  if (box.empty()) return "(empty layout)\n";
  std::vector<std::string> canvas(static_cast<std::size_t>(rows),
                                  std::string(static_cast<std::size_t>(cols), ' '));
  const auto cx = [&](i64 x) {
    return static_cast<int>((x - box.x0) * (cols - 1) / std::max<i64>(1, box.width() - 1));
  };
  const auto cy = [&](i64 y) {
    // Flip: higher grid y at the top of the canvas.
    return rows - 1 -
           static_cast<int>((y - box.y0) * (rows - 1) / std::max<i64>(1, box.height() - 1));
  };
  const auto plot = [&](int c, int r, char ch) {
    if (c < 0 || c >= cols || r < 0 || r >= rows) return;
    char& cell = canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    if (cell == '#') return;  // nodes win
    if (ch == '#') {
      cell = '#';
    } else if (cell == ' ') {
      cell = ch;
    } else if (cell != ch) {
      cell = '+';
    }
  };

  for (const Wire& wire : layout.wires()) {
    for (std::size_t i = 0; i + 1 < wire.points.size(); ++i) {
      const Point a = wire.points[i];
      const Point b = wire.points[i + 1];
      if (a.y == b.y) {
        const int r = cy(a.y);
        for (int c = std::min(cx(a.x), cx(b.x)); c <= std::max(cx(a.x), cx(b.x)); ++c) {
          plot(c, r, '-');
        }
      } else {
        const int c = cx(a.x);
        for (int r = std::min(cy(a.y), cy(b.y)); r <= std::max(cy(a.y), cy(b.y)); ++r) {
          plot(c, r, '|');
        }
      }
    }
  }
  for (const PlacedNode& n : layout.nodes()) {
    for (int c = cx(n.rect.x0); c <= cx(n.rect.x1); ++c) {
      for (int r = cy(n.rect.y1); r <= cy(n.rect.y0); ++r) plot(c, r, '#');
    }
  }

  std::string out;
  for (const std::string& line : canvas) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string render_multistage_svg(
    u64 rows, int stages,
    const std::function<void(const std::function<void(u64, int, u64)>&)>& for_each_link) {
  BFLY_REQUIRE(rows >= 1 && stages >= 2, "need at least one row and two stages");
  const double dx = 80.0;
  const double dy = 40.0;
  const double margin = 30.0;
  const double w = margin * 2 + dx * (stages - 1);
  const double h = margin * 2 + dy * static_cast<double>(rows - 1);
  const auto px = [&](int s) { return margin + dx * s; };
  const auto py = [&](u64 r) { return margin + dy * static_cast<double>(r); };

  std::ostringstream svg = make_svg_stream();
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
      << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for_each_link([&](u64 from_row, int from_stage, u64 to_row) {
    const bool straight = from_row == to_row;
    svg << "<line x1=\"" << px(from_stage) << "\" y1=\"" << py(from_row) << "\" x2=\""
        << px(from_stage + 1) << "\" y2=\"" << py(to_row) << "\" stroke=\""
        << (straight ? "#999999" : "#1f77b4") << "\" stroke-width=\"1\"/>\n";
  });
  for (int s = 0; s < stages; ++s) {
    for (u64 r = 0; r < rows; ++r) {
      svg << "<circle cx=\"" << px(s) << "\" cy=\"" << py(r)
          << "\" r=\"4\" fill=\"#333333\"/>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace bfly
