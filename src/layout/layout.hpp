// The Layout container: placed nodes + routed wires + measured metrics.
//
// Metrics are *measured from the constructed geometry* (bounding boxes and
// polyline lengths), never recomputed from the paper's closed forms; the
// benches compare these measurements against the closed forms.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "layout/geometry.hpp"
#include "layout/wire.hpp"

namespace bfly {

struct PlacedNode {
  u64 id = 0;
  Rect rect;
};

struct LayoutMetrics {
  i64 width = 0;            ///< grid columns of the bounding rectangle
  i64 height = 0;           ///< grid rows of the bounding rectangle
  i64 area = 0;             ///< width * height
  i64 max_wire_length = 0;  ///< longest wire (grid edges, x-y only)
  i64 total_wire_length = 0;
  int num_layers = 0;  ///< highest wiring layer used
  i64 volume = 0;      ///< num_layers * area (multilayer grid model)
  u64 num_nodes = 0;
  u64 num_wires = 0;
};

class Layout {
 public:
  Layout() = default;

  /// Places a node; ids must be unique.
  void add_node(u64 id, Rect rect);
  /// Adds a routed wire (validated for rectilinearity on insertion).
  void add_wire(Wire wire);

  const std::vector<PlacedNode>& nodes() const { return nodes_; }
  const std::vector<Wire>& wires() const { return wires_; }
  bool has_node(u64 id) const { return node_index_.contains(id); }
  const PlacedNode& node(u64 id) const;

  Rect bounding_box() const;
  LayoutMetrics metrics() const;

 private:
  std::vector<PlacedNode> nodes_;
  std::vector<Wire> wires_;
  std::unordered_map<u64, std::size_t> node_index_;
};

}  // namespace bfly
