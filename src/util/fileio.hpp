// Crash-safe file I/O for run reports, SVG artifacts, and sweep checkpoints.
//
// The failure mode these helpers close off: a process killed mid-write leaves
// a torn file — a half-written SVG, or a truncated JSON line that poisons the
// baseline gate.  atomic_write_file gives all-or-nothing replacement (readers
// see the old contents or the new, never a prefix); append_line_durable gives
// at-most-one-torn-tail appends for checkpoint journals, which the torn-line-
// tolerant readers in exec/checkpoint and bflyreport then skip.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bfly::util {

/// Writes `contents` to `path` atomically: writes `path` + ".tmp", fsyncs,
/// then renames over `path`.  On any failure the destination is untouched
/// (the temp file may remain) and InvalidArgument is thrown.  The rename is
/// atomic only within one filesystem, which holds for the sibling temp path.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Appends `line` + '\n' to `path` (creating it if absent) and fsyncs before
/// returning, so a completed call survives an immediate crash.  A crash *
/// during* the call can leave a torn final line; readers of such journals
/// must tolerate exactly that (see exec::load_checkpoint).  Throws
/// InvalidArgument on I/O failure.
void append_line_durable(const std::string& path, std::string_view line);

/// Streaming FNV-1a 64-bit hash — the checkpoint keying hash.  Stable across
/// platforms and runs (no seeding), cheap, and good enough to distinguish
/// sweep points within one grid; not cryptographic.
class Fnv1a64 {
 public:
  Fnv1a64& update(std::string_view bytes) {
    for (const char c : bytes) mix(static_cast<unsigned char>(c));
    return *this;
  }
  Fnv1a64& update(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix(static_cast<unsigned char>(v >> (8 * i)));
    return *this;
  }
  std::uint64_t digest() const { return state_; }

 private:
  void mix(unsigned char byte) {
    state_ ^= byte;
    state_ *= 0x100000001b3ULL;
  }
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// digest() formatted as 16 lowercase hex digits (the checkpoint key format).
std::string to_hex16(std::uint64_t value);

}  // namespace bfly::util
