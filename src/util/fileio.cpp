#include "util/fileio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "util/check.hpp"

namespace bfly::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw InvalidArgument(what + " '" + path + "': " + std::strerror(errno));
}

/// write(2) until everything is out, retrying on EINTR.
void write_all(int fd, std::string_view bytes, const std::string& path) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw_errno("cannot write", path);
    }
    p += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
}

/// RAII fd so the throw paths below cannot leak descriptors.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  BFLY_REQUIRE(!path.empty(), "atomic_write_file: empty path");
  const std::string tmp = path + ".tmp";
  {
    Fd f;
    f.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (f.fd < 0) throw_errno("cannot create", tmp);
    write_all(f.fd, contents, tmp);
    // Flush the data before the rename publishes the name; otherwise a crash
    // can leave the *new* name pointing at zero-length content.
    if (::fsync(f.fd) != 0) throw_errno("cannot fsync", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) throw_errno("cannot rename into", path);
}

void append_line_durable(const std::string& path, std::string_view line) {
  BFLY_REQUIRE(!path.empty(), "append_line_durable: empty path");
  Fd f;
  f.fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (f.fd < 0) throw_errno("cannot open for append", path);
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line);
  buf.push_back('\n');
  // One write(2) call for line+'\n': O_APPEND makes the offset update atomic,
  // and a single buffer means a crash tears at most the final line instead of
  // interleaving two.
  write_all(f.fd, buf, path);
  if (::fsync(f.fd) != 0) throw_errno("cannot fsync", path);
}

std::string to_hex16(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace bfly::util
