// Bit-field utilities used throughout the swap-network / butterfly machinery.
//
// Node addresses are unsigned 64-bit integers whose bits are partitioned into
// "groups" (Appendix A of the paper).  The central primitive is
// swap_bit_groups(), realizing the level-i inter-cluster permutation sigma_i
// that exchanges bit group [lo, lo+len) with the rightmost len bits.
#pragma once

#include <bit>
#include <cstdint>

#include "util/check.hpp"

/// Best-effort cache prefetch hint; a no-op on compilers without the builtin.
#if defined(__GNUC__) || defined(__clang__)
#define BFLY_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define BFLY_PREFETCH(addr) ((void)0)
#endif

namespace bfly {

using u64 = std::uint64_t;
using u32 = std::uint32_t;
using i64 = std::int64_t;

/// 2^e as u64. Requires 0 <= e < 64.
constexpr u64 pow2(int e) {
  return u64{1} << e;
}

/// floor(log2(x)) for x > 0.
constexpr int ilog2(u64 x) {
  return 63 - std::countl_zero(x);
}

/// Index of the least-significant set bit for x > 0 (std::countr_zero).
constexpr int lowest_set_bit(u64 x) {
  return std::countr_zero(x);
}

/// Index of the most-significant set bit for x > 0 (std::bit_width - 1).
constexpr int highest_set_bit(u64 x) {
  return static_cast<int>(std::bit_width(x)) - 1;
}

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(u64 x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Extract `len` bits of `x` starting at bit `lo` (LSB = bit 0).
constexpr u64 extract_bits(u64 x, int lo, int len) {
  if (len == 0) return 0;
  return (x >> lo) & (len >= 64 ? ~u64{0} : (pow2(len) - 1));
}

/// Return `x` with bits [lo, lo+len) replaced by the low `len` bits of `v`.
constexpr u64 deposit_bits(u64 x, int lo, int len, u64 v) {
  if (len == 0) return x;
  const u64 mask = (len >= 64 ? ~u64{0} : (pow2(len) - 1)) << lo;
  return (x & ~mask) | ((v << lo) & mask);
}

/// The swap-network permutation sigma: exchange bit group [lo, lo+len) with
/// the rightmost `len` bits [0, len).  Requires lo >= len (the groups must not
/// overlap) or lo == 0 (identity).  This is an involution.
constexpr u64 swap_bit_groups(u64 x, int lo, int len) {
  if (len == 0 || lo == 0) return x;
  const u64 high = extract_bits(x, lo, len);
  const u64 low = extract_bits(x, 0, len);
  u64 y = deposit_bits(x, lo, len, low);
  y = deposit_bits(y, 0, len, high);
  return y;
}

/// Reverse the low `n` bits of x (bits >= n must be zero).
constexpr u64 bit_reverse(u64 x, int n) {
  u64 r = 0;
  for (int i = 0; i < n; ++i) {
    r = (r << 1) | ((x >> i) & 1);
  }
  return r;
}

/// ceil(a / b) for positive integers.
constexpr i64 ceil_div(i64 a, i64 b) {
  return (a + b - 1) / b;
}

}  // namespace bfly
