#include "util/flags.hpp"

namespace bfly::util {

bool parse_bounded_u64(const char* text, u64 min_value, u64 max_value, u64* out) {
  if (text == nullptr || *text == '\0') return false;
  u64 value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    const u64 digit = static_cast<u64>(*p - '0');
    // Reject before the multiply/add can wrap: value * 10 + digit > max is a
    // bounds failure whether or not it also overflows u64.
    if (value > max_value / 10 || (value == max_value / 10 && digit > max_value % 10)) {
      return false;
    }
    value = value * 10 + digit;
  }
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

}  // namespace bfly::util
