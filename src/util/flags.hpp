// Strict command-line flag value parsing for the tools and bench binaries.
//
// Every numeric flag in the project follows one contract: the value must be a
// plain bounded decimal integer parsed against the *whole* string — "4x",
// "1e3", "-2", "" and out-of-range values are usage errors the binary reports
// with exit status 2, never silently truncated the way atoi/strtoul would.
// parse_bounded_u64 is that contract in one place; parse_thread_count
// (util/parallel.hpp) and the bflyd/bflyreport flag handlers all delegate to
// it with their own bounds.
#pragma once

#include "util/bits.hpp"

namespace bfly::util {

/// Strict full-string parse of a bounded unsigned decimal flag value:
/// accepts a plain decimal integer in [min_value, max_value] and nothing
/// else.  Leading '+', signs, whitespace, exponents, hex, and any trailing
/// garbage are all rejected (returns false, *out untouched), as is any value
/// outside the bounds — the accumulator is overflow-guarded, so
/// "99999999999999999999999" is rejected rather than wrapped.
bool parse_bounded_u64(const char* text, u64 min_value, u64 max_value, u64* out);

}  // namespace bfly::util
