// Lightweight precondition / invariant checking for the bfly library.
//
// BFLY_REQUIRE is for *user-facing* argument validation: it always fires and
// throws bfly::InvalidArgument so callers can recover.
// BFLY_CHECK is for *internal* invariants: it always fires (the library is
// about producing provably-legal artifacts, so we never compile checks out)
// and throws bfly::InternalError.
#pragma once

#include <stdexcept>
#include <string>

namespace bfly {

/// Thrown when a public API precondition is violated.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an internal invariant fails (a bug in the library).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file, int line,
                                         const std::string& msg);
[[noreturn]] void throw_internal_error(const char* expr, const char* file, int line,
                                       const std::string& msg);
}  // namespace detail

}  // namespace bfly

#define BFLY_REQUIRE(cond, msg)                                                  \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::bfly::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                            \
  } while (false)

#define BFLY_CHECK(cond, msg)                                                    \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::bfly::detail::throw_internal_error(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                            \
  } while (false)
