// Fork-join parallelism for the routing simulators and bulk verifiers.
//
// parallel_for_chunked keeps its historical contract — contiguous ceil-divided
// ranges, tid = range index, first exception wins — but since the sweep work
// it executes on the persistent process-wide ThreadPool (util/thread_pool.hpp)
// instead of spawning fresh std::threads per call.  `threads` therefore bounds
// the number of *ranges* (and so the partition handed to `body`), not the
// worker count; the pool supplies the concurrency.  Callers that need a pool
// with its own lifetime construct a ThreadPool directly.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/check.hpp"

namespace bfly {

/// Number of worker threads to use by default (at least 1).  Callers that
/// accept a user override (--threads / $BFLY_THREADS) validate it through
/// parse_thread_count and pass the result down as an explicit `threads`
/// argument; the default is consulted only when no override is given.
std::size_t default_thread_count();

/// Strict full-string parse of a thread-count override ("--threads" flag or
/// the $BFLY_THREADS variable): accepts a plain positive decimal integer in
/// [1, 4096] and nothing else — "4x", "", "0", "-2", and "1e3" are all
/// rejected (returns false, *out untouched) so callers can exit with a
/// usage error instead of silently truncating like atoi would.  The bounds
/// discipline is util::parse_bounded_u64 (util/flags.hpp), which bflyd's
/// --port/--max-inflight/--queue-depth/--default-deadline-ms flags share.
bool parse_thread_count(const char* text, std::size_t* out);

/// Statically partitions [begin, end) into `threads` contiguous chunks and
/// runs `body(chunk_begin, chunk_end, chunk_index)` on each, in parallel on
/// the shared ThreadPool.  Blocks until every chunk completes; exceptions
/// thrown by any chunk are rethrown (first one wins).  The partition is a
/// pure function of (begin, end, threads), so fixed-chunk-seeded callers are
/// bitwise deterministic for any pool size.  When `cancel` trips, chunks not
/// yet started are skipped (see ThreadPool::run_chunked for the contract).
void parallel_for_chunked(std::size_t begin, std::size_t end, std::size_t threads,
                          const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                          const CancelToken* cancel = nullptr);

/// Element-wise parallel for with default thread count.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace bfly
