// Minimal fork-join parallelism for the routing simulator and bulk verifiers.
//
// We deliberately avoid a global thread pool singleton: callers create a
// ThreadTeam where they need one (C++ Core Guidelines I.3) and its lifetime
// scopes the workers.  parallel_for is a convenience over a one-shot team.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace bfly {

/// Number of worker threads to use by default (at least 1).
std::size_t default_thread_count();

/// Statically partitions [begin, end) into `threads` contiguous chunks and
/// runs `body(chunk_begin, chunk_end, thread_index)` on each in parallel.
/// Exceptions thrown by any chunk are rethrown (first one wins).
void parallel_for_chunked(std::size_t begin, std::size_t end, std::size_t threads,
                          const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Element-wise parallel for with default thread count.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace bfly
