// Bounded single-producer / single-consumer ring buffer: the cross-shard
// hand-off lane of the sharded saturation engine (routing/sharded_sim.hpp).
//
// One shard (the producer) pushes the packets that leave its row block during
// a cycle's advance phase; the partner shard (the consumer) drains them at the
// cycle barrier.  The phases are already separated by the thread pool's
// fork-join barrier, but the ring keeps its own acquire/release discipline so
// it is also correct — and TSan-clean — when producer and consumer genuinely
// overlap (the two-thread stress test in tests/test_sharded_sim.cpp runs it
// that way on purpose).
//
// Design: power-of-two capacity, monotonically increasing u64 head/tail
// counters (indices are taken mod capacity via a mask, so the counters never
// wrap in any realistic run), each counter on its own cache line to keep the
// producer and consumer from false-sharing.  No allocation after
// construction: try_push fails on a full ring instead of growing, which is
// exactly the contract the sharded engine wants — its rings are sized so a
// cycle can never overflow them, and a failed push is a logic error there.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace bfly::util {

template <typename T>
class SpscRing {
 public:
  /// A ring holding up to `capacity` items (must be a power of two).
  explicit SpscRing(std::size_t capacity) : mask_(capacity - 1), slots_(capacity) {
    BFLY_REQUIRE(capacity > 0 && is_pow2(capacity),
                 "SpscRing capacity must be a power of two");
  }

  // The atomics pin each instance in place; store rings in containers that
  // never relocate elements (std::deque + emplace_back).
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// True when the ring holds no items.  Exact only on the consumer side (or
  /// when no producer is active), like any SPSC size probe.
  bool empty() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

  /// Producer side: appends `item`; false (item untouched) when full.
  bool try_push(const T& item) {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    const u64 head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    slots_[static_cast<std::size_t>(tail) & mask_] = item;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops the oldest item into *out; false when empty.
  bool try_pop(T* out) {
    const u64 head = head_.load(std::memory_order_relaxed);
    const u64 tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = slots_[static_cast<std::size_t>(head) & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<u64> head_{0};  ///< next slot the consumer reads
  alignas(64) std::atomic<u64> tail_{0};  ///< next slot the producer writes
};

}  // namespace bfly::util
