// Cooperative cancellation for long-running parallel work.
//
// A CancelToken is a tiny shared flag + optional steady-clock deadline that a
// controller sets once and workers poll cheaply.  It lives in util (below the
// thread pool) so every layer — ThreadPool::run_chunked, the packet engines'
// cycle loops, the exec sweep supervisor — can accept `const CancelToken*`
// without new dependencies.
//
// Contract:
//   * cancelled() is sticky: once it returns true it returns true forever
//     (request_cancel() cannot be undone, and steady_clock never goes back).
//   * Polling is wait-free: one relaxed atomic load, plus a clock read only
//     when a deadline is armed.  Cheap enough for every-few-cycles polls in
//     the packet engines.
//   * Cancellation is cooperative and best-effort: workers observe the token
//     at their own poll points, so work stops within O(one poll interval),
//     not instantly.  Workers that were never handed the token run to
//     completion.
//
// Memory ordering: the token carries no payload — it only answers "should I
// stop?" — so relaxed loads/stores suffice.  Any data handoff around a
// cancellation (e.g. partial results) is synchronized by the thread pool's
// own region completion, not by the token.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace bfly {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation.  Sticky; safe from any thread, any number of
  /// times.
  void request_cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) a deadline `budget` from now on the steady clock.
  /// After the deadline passes, cancelled() and expired() report true.
  template <class Rep, class Period>
  void set_deadline_after(std::chrono::duration<Rep, Period> budget) {
    const auto when = std::chrono::steady_clock::now() + budget;
    deadline_ns_.store(when.time_since_epoch().count(), std::memory_order_relaxed);
  }

  /// Removes any armed deadline (an explicit request_cancel still sticks).
  void clear_deadline() { deadline_ns_.store(0, std::memory_order_relaxed); }

  /// Arms the deadline at absolute steady-clock time `when`, but only ever
  /// *later*: an armed deadline earlier than `when` moves out to it, a later
  /// one is kept, and an unarmed token is simply armed.  This is the
  /// coalescing primitive the serving layer's single-flight cache uses — a
  /// request joining an in-flight computation may extend its deadline so the
  /// shared work survives long enough for the most patient waiter, and no
  /// joiner can ever shorten another's budget.  Safe from any thread (CAS-max
  /// loop); callers that mean "no deadline at all" must not call this.
  void extend_deadline_until(std::chrono::steady_clock::time_point when) {
    const std::int64_t ns = when.time_since_epoch().count();
    std::int64_t cur = deadline_ns_.load(std::memory_order_relaxed);
    while (cur == 0 || cur < ns) {
      if (deadline_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) break;
    }
  }

  /// The armed deadline as a steady-clock time point; meaningful only when
  /// has_deadline().
  bool has_deadline() const { return deadline_ns_.load(std::memory_order_relaxed) != 0; }
  std::chrono::steady_clock::time_point deadline() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(deadline_ns_.load(std::memory_order_relaxed)));
  }

  /// True iff request_cancel() was called (deadline not considered).
  bool cancel_requested() const { return cancel_requested_.load(std::memory_order_relaxed); }

  /// True iff a deadline is armed and has passed.
  bool expired() const {
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >= deadline;
  }

  /// The poll: explicit request OR expired deadline.
  bool cancelled() const { return cancel_requested() || expired(); }

  /// Null-tolerant poll for APIs that thread `const CancelToken*` through.
  static bool cancelled(const CancelToken* token) {
    return token != nullptr && token->cancelled();
  }

 private:
  std::atomic<bool> cancel_requested_{false};
  // steady_clock time_since_epoch in the clock's native ticks; 0 = no
  // deadline armed (tick 0 is the clock's epoch, unreachable in practice).
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace bfly
