#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/parallel.hpp"

namespace bfly {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  slots_ = std::make_unique<WorkerSlot[]>(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t worker) {
  WorkerSlot& slot = slots_[worker];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    const auto t1 = std::chrono::steady_clock::now();
    // Relaxed: each worker touches only its own slot; stats() reads are a
    // monotone snapshot, not a synchronization point.
    slot.tasks.fetch_add(1, std::memory_order_relaxed);
    slot.busy_us.fetch_add(
        static_cast<u64>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count()),
        std::memory_order_relaxed);
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  assists_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats stats;
  stats.assists = assists_.load(std::memory_order_relaxed);
  stats.tasks_executed = stats.assists;
  stats.worker_tasks.reserve(workers_.size());
  stats.worker_busy_us.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const u64 tasks = slots_[i].tasks.load(std::memory_order_relaxed);
    stats.worker_tasks.push_back(tasks);
    stats.worker_busy_us.push_back(slots_[i].busy_us.load(std::memory_order_relaxed));
    stats.tasks_executed += tasks;
  }
  return stats;
}

void ThreadPool::run_chunked(
    std::size_t begin, std::size_t end, std::size_t max_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    const CancelToken* cancel) {
  BFLY_REQUIRE(begin <= end, "run_chunked: begin must not exceed end");
  const std::size_t n = end - begin;
  if (n == 0) return;
  if (CancelToken::cancelled(cancel)) return;  // nothing starts after cancel
  const std::size_t chunks = std::max<std::size_t>(1, std::min(max_chunks, n));
  if (chunks == 1) {
    body(begin, end, 0);
    return;
  }

  // Region-local completion state.  run_chunked does not return before
  // remaining hits 0, so stack references captured by the task closures stay
  // valid for their whole lifetime.
  struct Region {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr first_error;
  } region;

  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(chunks);
  for (std::size_t t = 0; t < chunks; ++t) {
    const std::size_t lo = begin + t * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    ranges.emplace_back(lo, hi);
  }
  region.remaining = ranges.size();

  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t t = 0; t < ranges.size(); ++t) {
      const auto [lo, hi] = ranges[t];
      queue_.emplace_back([&region, &body, cancel, lo, hi, t] {
        try {
          // The cancellation gate: a range that dequeues after the token
          // trips is skipped — no new work starts after cancel.  It still
          // runs the completion epilogue below so the waiting caller's
          // region resolves normally.
          if (!CancelToken::cancelled(cancel)) body(lo, hi, t);
        } catch (...) {
          const std::lock_guard<std::mutex> rl(region.mu);
          if (!region.first_error) region.first_error = std::current_exception();
        }
        {
          // Notify under the lock: once the waiter observes remaining == 0 it
          // returns and destroys `region`, so the cv must not be touched
          // after this critical section.
          const std::lock_guard<std::mutex> rl(region.mu);
          --region.remaining;
          region.done.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // Help-while-wait: run queued tasks (ours or a sibling region's) until our
  // region completes; sleep only when the queue is empty.
  for (;;) {
    {
      const std::lock_guard<std::mutex> rl(region.mu);
      if (region.remaining == 0) break;
    }
    if (!try_run_one()) {
      std::unique_lock<std::mutex> rl(region.mu);
      region.done.wait(rl, [&region] { return region.remaining == 0; });
    }
  }
  if (region.first_error) std::rethrow_exception(region.first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace bfly
