// A persistent worker pool for the routing simulators and bulk verifiers.
//
// The original parallel_for_chunked spawned (and joined) fresh std::threads on
// every call; fine for one 2M-packet census, ruinous for sweeps that issue
// hundreds of small parallel regions.  ThreadPool keeps its workers alive
// across submissions, so a region costs two mutex handoffs instead of N
// thread creations.
//
// Scheduling is help-while-wait: the submitting thread does not sleep until
// its region completes — it pulls queued tasks (its own or anyone else's) and
// executes them inline, only blocking when the queue is empty and its region
// is still running elsewhere.  Two consequences:
//
//   * Nested submissions cannot deadlock.  A worker that submits a region
//     from inside a task drains the queue itself, so progress never depends
//     on a worker that is blocked waiting.
//   * A pool of W workers gives W+1 runnable lanes while a caller waits,
//     and ThreadPool(1) still overlaps caller and worker.
//
// Determinism contract: the pool schedules *which thread* runs a chunk, never
// *what* the chunk computes.  run_chunked() partitions exactly like the old
// parallel_for_chunked (ceil-divided contiguous ranges, tid = range index),
// so any caller that keys its work off (chunk range, tid) — the fixed-chunk
// seeding discipline used throughout routing — produces bit-identical results
// for every pool size.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/bits.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"

namespace bfly {

class ThreadPool {
 public:
  /// Spawns `threads` persistent workers (0 = default_thread_count()).
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Utilization counters, cheap enough to stay always-on: workers count
  /// their own tasks and busy time into per-worker cache-line-padded slots
  /// (relaxed atomics — no cross-worker contention), and callers that pull a
  /// task inline during help-while-wait count as assists.  A snapshot taken
  /// while regions are in flight is a consistent lower bound, not a barrier.
  struct Stats {
    u64 tasks_executed = 0;  ///< tasks run anywhere: worker loops + assists
    u64 assists = 0;         ///< tasks a waiting submitter ran inline
    std::vector<u64> worker_tasks;    ///< per-worker task counts
    std::vector<u64> worker_busy_us;  ///< per-worker time spent inside tasks
  };
  Stats stats() const;

  /// Statically partitions [begin, end) into at most `max_chunks` contiguous
  /// ranges (ceil-divided, same arithmetic as the historical
  /// parallel_for_chunked) and runs `body(range_begin, range_end, range_index)`
  /// for each, blocking until all complete.  Exceptions thrown by ranges are
  /// rethrown in the caller (first one captured wins); the remaining ranges
  /// still run to completion.  Safe to call from inside a pool task.
  ///
  /// When `cancel` is non-null and becomes cancelled, ranges that have not
  /// started yet are skipped entirely (their body never runs); ranges already
  /// running finish on their own — pass the same token into the body if it
  /// should stop early too.  run_chunked still waits for every range to
  /// start-or-skip, so stack captures stay valid and the partition always
  /// fully resolves.  Cancellation never throws; the caller inspects the
  /// token to learn work was skipped.
  void run_chunked(std::size_t begin, std::size_t end, std::size_t max_chunks,
                   const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                   const CancelToken* cancel = nullptr);

  /// The process-wide pool (default_thread_count() workers, created on first
  /// use) that parallel_for_chunked and the sweep drivers submit to.
  static ThreadPool& shared();

 private:
  void worker_loop(std::size_t worker);
  /// Pops and runs one queued task; false when the queue was empty.
  bool try_run_one();

  /// One per worker, padded so two workers bumping their own counters never
  /// share a cache line.
  struct alignas(64) WorkerSlot {
    std::atomic<u64> tasks{0};
    std::atomic<u64> busy_us{0};
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::unique_ptr<WorkerSlot[]> slots_;
  std::atomic<u64> assists_{0};
  std::vector<std::thread> workers_;
};

}  // namespace bfly
