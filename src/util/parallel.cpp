#include "util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

namespace bfly {

std::size_t default_thread_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void parallel_for_chunked(std::size_t begin, std::size_t end, std::size_t threads,
                          const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  BFLY_REQUIRE(begin <= end, "parallel_for_chunked: begin must not exceed end");
  const std::size_t n = end - begin;
  if (n == 0) return;
  threads = std::max<std::size_t>(1, std::min(threads, n));
  if (threads == 1) {
    body(begin, end, 0);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (n + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t lo = begin + t * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&, lo, hi, t] {
      try {
        body(lo, hi, t);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(begin, end, default_thread_count(),
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

}  // namespace bfly
